//===- bench/bench_json_check.cpp - BENCH_*.json validator ----*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates that every file named on the command line parses as JSON
/// (full-document, recursive-descent, no dependencies) — the loud-
/// failure backstop run_benches.sh runs after each bench so a broken
/// BENCH_<suite>.json emitter fails the run instead of silently
/// corrupting the tracked perf trajectory. Exits non-zero naming the
/// first offending file and byte offset.
///
/// `--require a,b,c` additionally demands that each named metric appears
/// in every file (as a BenchJson `"name": "<key>"` entry), so a bench
/// that silently stops emitting a tracked metric — e.g. the inlining
/// section of BENCH_exec.json — fails the run instead of leaving a hole
/// in the trajectory.
///
//===----------------------------------------------------------------------===//

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

class JsonParser {
public:
  explicit JsonParser(const std::string &S) : S(S) {}

  /// Whole-document parse; on failure Error/At describe the problem.
  bool run() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    if (I != S.size())
      return fail("trailing content after document");
    return true;
  }

  std::string Error;
  size_t At = 0;

private:
  bool fail(const char *Msg) {
    if (Error.empty()) {
      Error = Msg;
      At = I;
    }
    return false;
  }

  void skipWs() {
    while (I != S.size() && (S[I] == ' ' || S[I] == '\t' || S[I] == '\n' ||
                             S[I] == '\r'))
      ++I;
  }

  bool lit(const char *L) {
    size_t N = std::char_traits<char>::length(L);
    if (S.compare(I, N, L) != 0)
      return fail("invalid literal");
    I += N;
    return true;
  }

  bool string() {
    if (I == S.size() || S[I] != '"')
      return fail("expected string");
    ++I;
    while (I != S.size() && S[I] != '"') {
      if (static_cast<unsigned char>(S[I]) < 0x20)
        return fail("raw control character in string");
      if (S[I] == '\\') {
        ++I;
        if (I == S.size())
          return fail("truncated escape");
        char E = S[I];
        if (E == 'u') {
          for (unsigned K = 0; K != 4; ++K)
            if (++I == S.size() || !std::isxdigit(
                                       static_cast<unsigned char>(S[I])))
              return fail("bad \\u escape");
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return fail("bad escape character");
        }
      }
      ++I;
    }
    if (I == S.size())
      return fail("unterminated string");
    ++I; // Closing quote.
    return true;
  }

  bool number() {
    size_t Start = I;
    if (I != S.size() && S[I] == '-')
      ++I;
    if (I == S.size() || !std::isdigit(static_cast<unsigned char>(S[I])))
      return fail("expected digit");
    while (I != S.size() && std::isdigit(static_cast<unsigned char>(S[I])))
      ++I;
    if (I != S.size() && S[I] == '.') {
      ++I;
      if (I == S.size() || !std::isdigit(static_cast<unsigned char>(S[I])))
        return fail("expected fraction digits");
      while (I != S.size() && std::isdigit(static_cast<unsigned char>(S[I])))
        ++I;
    }
    if (I != S.size() && (S[I] == 'e' || S[I] == 'E')) {
      ++I;
      if (I != S.size() && (S[I] == '+' || S[I] == '-'))
        ++I;
      if (I == S.size() || !std::isdigit(static_cast<unsigned char>(S[I])))
        return fail("expected exponent digits");
      while (I != S.size() && std::isdigit(static_cast<unsigned char>(S[I])))
        ++I;
    }
    return I != Start;
  }

  bool value() {
    if (++Depth > 128)
      return fail("nesting too deep");
    bool Ok = valueInner();
    --Depth;
    return Ok;
  }

  bool valueInner() {
    skipWs();
    if (I == S.size())
      return fail("unexpected end of document");
    switch (S[I]) {
    case '{': {
      ++I;
      skipWs();
      if (I != S.size() && S[I] == '}') {
        ++I;
        return true;
      }
      for (;;) {
        skipWs();
        if (!string())
          return false;
        skipWs();
        if (I == S.size() || S[I] != ':')
          return fail("expected ':' in object");
        ++I;
        if (!value())
          return false;
        skipWs();
        if (I != S.size() && S[I] == ',') {
          ++I;
          continue;
        }
        if (I != S.size() && S[I] == '}') {
          ++I;
          return true;
        }
        return fail("expected ',' or '}' in object");
      }
    }
    case '[': {
      ++I;
      skipWs();
      if (I != S.size() && S[I] == ']') {
        ++I;
        return true;
      }
      for (;;) {
        if (!value())
          return false;
        skipWs();
        if (I != S.size() && S[I] == ',') {
          ++I;
          continue;
        }
        if (I != S.size() && S[I] == ']') {
          ++I;
          return true;
        }
        return fail("expected ',' or ']' in array");
      }
    }
    case '"':
      return string();
    case 't':
      return lit("true");
    case 'f':
      return lit("false");
    case 'n':
      return lit("null");
    default:
      return number();
    }
  }

  const std::string &S;
  size_t I = 0;
  unsigned Depth = 0;
};

/// True when the document carries a BenchJson metric entry named \p Key
/// (the emitter writes exactly `"name": "<key>"`; keys never contain
/// characters that need JSON escaping).
bool hasMetric(const std::string &Doc, const std::string &Key) {
  return Doc.find("\"name\": \"" + Key + "\"") != std::string::npos;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Required;
  int A = 1;
  if (A < argc && std::strcmp(argv[A], "--require") == 0) {
    if (++A == argc) {
      std::fprintf(stderr, "bench_json_check: --require needs a key list\n");
      return 2;
    }
    std::string Keys = argv[A++];
    for (size_t Pos = 0; Pos <= Keys.size();) {
      size_t Comma = Keys.find(',', Pos);
      if (Comma == std::string::npos)
        Comma = Keys.size();
      if (Comma > Pos)
        Required.push_back(Keys.substr(Pos, Comma - Pos));
      Pos = Comma + 1;
    }
  }
  if (A == argc) {
    std::fprintf(stderr, "usage: %s [--require a,b,c] <file.json>...\n",
                 argv[0]);
    return 2;
  }
  for (; A != argc; ++A) {
    std::ifstream In(argv[A], std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "bench_json_check: cannot open %s\n", argv[A]);
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Doc = Buf.str();
    if (Doc.empty()) {
      std::fprintf(stderr, "bench_json_check: %s is empty\n", argv[A]);
      return 1;
    }
    JsonParser P(Doc);
    if (!P.run()) {
      std::fprintf(stderr,
                   "bench_json_check: %s: invalid JSON at byte %zu: %s\n",
                   argv[A], P.At, P.Error.c_str());
      return 1;
    }
    for (const std::string &Key : Required)
      if (!hasMetric(Doc, Key)) {
        std::fprintf(stderr,
                     "bench_json_check: %s: required metric \"%s\" missing\n",
                     argv[A], Key.c_str());
        return 1;
      }
    std::printf("bench_json_check: %s OK\n", argv[A]);
  }
  return 0;
}
