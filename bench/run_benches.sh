#!/usr/bin/env sh
# Runs the tracked benchmark suites and drops their machine-readable
# results (BENCH_exec.json, BENCH_serve.json) at the repository root so
# the perf trajectory is comparable across checkouts.
#
# Usage: bench/run_benches.sh [build-dir]
#   build-dir defaults to ./build (must already be configured and built;
#   `cmake --build <build-dir> --target bench_exec bench_serve` first).
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$REPO_ROOT/build"}
BENCH_DIR="$BUILD_DIR/bench"

for BIN in bench_exec bench_serve; do
  if [ ! -x "$BENCH_DIR/$BIN" ]; then
    echo "error: $BENCH_DIR/$BIN not found or not executable." >&2
    echo "Build it with: cmake --build \"$BUILD_DIR\" --target $BIN" >&2
    exit 1
  fi
done

export SAFETSA_BENCH_DIR="$REPO_ROOT"

echo "== bench_exec (tree-walk vs tier 0 vs tier 1) =="
"$BENCH_DIR/bench_exec"

echo
echo "== bench_serve (distribution layer) =="
"$BENCH_DIR/bench_serve"

echo
echo "Results: $REPO_ROOT/BENCH_exec.json $REPO_ROOT/BENCH_serve.json"
