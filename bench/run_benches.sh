#!/usr/bin/env sh
# Runs the tracked benchmark suites and drops their machine-readable
# results (BENCH_exec.json, BENCH_gc.json, BENCH_serve.json,
# BENCH_scaling.json) at the
# repository root so the perf trajectory is comparable across checkouts.
# Every emitted BENCH_*.json is validated with bench_json_check; a bench
# that emits invalid (or no) JSON fails the run loudly.
#
# Usage: bench/run_benches.sh [--smoke] [build-dir]
#   build-dir defaults to ./build (must already be configured and built;
#   `cmake --build <build-dir>` first).
#   --smoke: tiny iteration counts, results written under
#   <build-dir>/bench-smoke instead of the repo root (so a smoke run
#   never clobbers the tracked numbers), acceptance gates reported but
#   not enforced. This is what the bench_smoke ctest entry runs, so the
#   bench binaries are exercised in tier-1 verification.
set -eu

SMOKE=0
if [ "${1:-}" = "--smoke" ]; then
  SMOKE=1
  shift
fi

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$REPO_ROOT/build"}
BENCH_DIR="$BUILD_DIR/bench"

for BIN in bench_exec bench_gc bench_serve bench_scaling bench_json_check; do
  if [ ! -x "$BENCH_DIR/$BIN" ]; then
    echo "error: $BENCH_DIR/$BIN not found or not executable." >&2
    echo "Build it with: cmake --build \"$BUILD_DIR\" --target $BIN" >&2
    exit 1
  fi
done

if [ "$SMOKE" = 1 ]; then
  export SAFETSA_BENCH_SMOKE=1
  export SAFETSA_BENCH_DIR="$BUILD_DIR/bench-smoke"
  mkdir -p "$SAFETSA_BENCH_DIR"
  GBENCH_ARGS="--benchmark_min_time=0.01"
else
  export SAFETSA_BENCH_DIR="$REPO_ROOT"
  GBENCH_ARGS=""
fi

# Fails loudly (exit 1) when the just-emitted BENCH_<suite>.json is
# missing, not valid JSON, or (second arg) missing a required metric.
check_json() {
  JSON="$SAFETSA_BENCH_DIR/BENCH_$1.json"
  if [ ! -f "$JSON" ]; then
    echo "error: $1 bench did not emit $JSON" >&2
    exit 1
  fi
  if [ -n "${2:-}" ]; then
    "$BENCH_DIR/bench_json_check" --require "$2" "$JSON"
  else
    "$BENCH_DIR/bench_json_check" "$JSON"
  fi
}

echo "== bench_exec (tree-walk vs tier 0 vs tier 1 vs inlined tier 1) =="
"$BENCH_DIR/bench_exec"
check_json exec \
  inline_geomean,inline_geomean_callheavy,inline_callheavy_programs,inline_min_speedup,inline_sites_total,inline_guard_misses

echo
echo "== bench_gc (safepoint overhead + reclaim throughput) =="
"$BENCH_DIR/bench_gc"
check_json gc

echo
echo "== bench_scaling (warm-path thread scaling) =="
"$BENCH_DIR/bench_scaling"
check_json scaling

echo
echo "== bench_serve (distribution layer) =="
# shellcheck disable=SC2086
"$BENCH_DIR/bench_serve" $GBENCH_ARGS
check_json serve

echo
echo "== safetsa-gen (fixed-seed differential smoke sweep) =="
# Grammar-aware generator soak: a fixed seed range through the full
# tier/codec/GC configuration matrix (DESIGN.md §15). Seed count follows
# SAFETSA_GEN_SEEDS (default 200, the same knob the gen ctest label
# uses); reproducers for any divergence land under the build tree, never
# the repo root. Deliberately emits no BENCH_*.json — it is a
# correctness sweep, not a tracked perf suite, so bench_json_check
# --require stays scoped to the real benchmark artifacts above.
GEN_BIN="$BUILD_DIR/src/driver/safetsa-gen"
if [ -x "$GEN_BIN" ]; then
  "$GEN_BIN" --seeds "${SAFETSA_GEN_SEEDS:-200}" \
             --dump "$BUILD_DIR/gen-dumps"
else
  echo "error: $GEN_BIN not found or not executable." >&2
  echo "Build it with: cmake --build \"$BUILD_DIR\" --target safetsa-gen" >&2
  exit 1
fi

echo
echo "Results: $SAFETSA_BENCH_DIR/BENCH_exec.json" \
     "$SAFETSA_BENCH_DIR/BENCH_gc.json" \
     "$SAFETSA_BENCH_DIR/BENCH_scaling.json" \
     "$SAFETSA_BENCH_DIR/BENCH_serve.json"
