//===- bench/BenchUtil.h - Shared benchmark plumbing ----------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table-reproduction benchmarks: compile a corpus
/// program to all representations and collect the static metrics the
/// paper reports, plus the machine-readable BENCH_<suite>.json emitter
/// every bench writes so the perf trajectory is tracked across PRs.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_BENCH_BENCHUTIL_H
#define SAFETSA_BENCH_BENCHUTIL_H

#include "bytecode/BCCompiler.h"
#include "bytecode/BCFile.h"
#include "codec/Codec.h"
#include "corpus/Corpus.h"
#include "driver/Compiler.h"
#include "opt/Optimizer.h"
#include "tsa/Verifier.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace safetsa {

/// Machine-readable benchmark sink: collects named metrics and writes
/// them as BENCH_<suite>.json (flat {"suite", "metrics": [{name, value,
/// unit}]}) into $SAFETSA_BENCH_DIR, or the working directory when unset.
/// Intentionally dependency-free — the trajectory tooling only needs
/// stable keys and numbers, not a JSON library.
class BenchJson {
public:
  explicit BenchJson(std::string Suite) : Suite(std::move(Suite)) {}

  void add(const std::string &Name, double Value,
           const std::string &Unit = "") {
    Metrics.push_back({Name, Unit, Value});
  }

  /// Writes BENCH_<suite>.json; returns the path ("" on I/O failure).
  std::string write() const {
    std::string Path;
    if (const char *Dir = std::getenv("SAFETSA_BENCH_DIR")) {
      Path = Dir;
      if (!Path.empty() && Path.back() != '/')
        Path += '/';
    }
    Path += "BENCH_" + Suite + ".json";
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F)
      return "";
    std::fprintf(F, "{\n  \"suite\": \"%s\",\n  \"metrics\": [",
                 escaped(Suite).c_str());
    for (size_t I = 0; I != Metrics.size(); ++I)
      std::fprintf(F, "%s\n    {\"name\": \"%s\", \"value\": %.6g, "
                      "\"unit\": \"%s\"}",
                   I ? "," : "", escaped(Metrics[I].Name).c_str(),
                   Metrics[I].Value, escaped(Metrics[I].Unit).c_str());
    std::fprintf(F, "\n  ]\n}\n");
    std::fclose(F);
    std::printf("\nwrote %s (%zu metrics)\n", Path.c_str(), Metrics.size());
    return Path;
  }

private:
  struct Metric {
    std::string Name, Unit;
    double Value;
  };

  static std::string escaped(const std::string &S) {
    std::string Out;
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out.push_back('\\');
      if (static_cast<unsigned char>(C) >= 0x20)
        Out.push_back(C);
    }
    return Out;
  }

  std::string Suite;
  std::vector<Metric> Metrics;
};

/// All static metrics for one corpus program.
struct ProgramMetrics {
  std::string Name;
  // Sizes in bytes.
  size_t BytecodeBytes = 0;
  size_t TSABytes = 0;
  size_t TSAOptBytes = 0;
  // Instruction counts.
  unsigned BytecodeInsts = 0;
  unsigned TSAInsts = 0;
  unsigned TSAOptInsts = 0;
  // Figure 6 counters.
  unsigned PhisBefore = 0, PhisAfter = 0;
  unsigned NullChecksBefore = 0, NullChecksAfter = 0;
  unsigned IndexChecksBefore = 0, IndexChecksAfter = 0;
  OptStats Opt;
};

inline ProgramMetrics measureProgram(const CorpusProgram &P,
                                     const OptOptions &Options = {}) {
  ProgramMetrics M;
  M.Name = P.Name;

  auto C = compileMJ(P.Name, P.Source);
  if (!C->ok()) {
    std::fprintf(stderr, "corpus program %s failed to compile:\n%s\n",
                 P.Name, C->renderDiagnostics().c_str());
    std::exit(1);
  }
  TSAVerifier V(*C->TSA);
  if (!V.verify()) {
    std::fprintf(stderr, "corpus program %s failed verification\n", P.Name);
    std::exit(1);
  }

  BCCompiler BCC(C->Types, *C->Table);
  auto BC = BCC.compile(C->AST);
  M.BytecodeInsts = BC->countInstructions();
  M.BytecodeBytes = writeBCModule(*BC).size();

  M.TSAInsts = C->TSA->countInstructions();
  M.TSABytes = encodeModule(*C->TSA).size();
  M.PhisBefore = C->TSA->countOpcode(Opcode::Phi);
  M.NullChecksBefore = C->TSA->countOpcode(Opcode::NullCheck);
  M.IndexChecksBefore = C->TSA->countOpcode(Opcode::IndexCheck);

  M.Opt = optimizeModule(*C->TSA, Options);
  M.TSAOptInsts = C->TSA->countInstructions();
  M.TSAOptBytes = encodeModule(*C->TSA).size();
  M.PhisAfter = C->TSA->countOpcode(Opcode::Phi);
  M.NullChecksAfter = C->TSA->countOpcode(Opcode::NullCheck);
  M.IndexChecksAfter = C->TSA->countOpcode(Opcode::IndexCheck);
  return M;
}

/// Percentage delta rendered like the paper's tables (negative = fewer).
inline int deltaPercent(unsigned Before, unsigned After) {
  if (Before == 0)
    return 0;
  return static_cast<int>(
      (static_cast<long>(After) - static_cast<long>(Before)) * 100 /
      static_cast<long>(Before));
}

} // namespace safetsa

#endif // SAFETSA_BENCH_BENCHUTIL_H
