//===- bench/BenchUtil.h - Shared benchmark plumbing ----------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table-reproduction benchmarks: compile a corpus
/// program to all representations and collect the static metrics the
/// paper reports.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_BENCH_BENCHUTIL_H
#define SAFETSA_BENCH_BENCHUTIL_H

#include "bytecode/BCCompiler.h"
#include "bytecode/BCFile.h"
#include "codec/Codec.h"
#include "corpus/Corpus.h"
#include "driver/Compiler.h"
#include "opt/Optimizer.h"
#include "tsa/Verifier.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace safetsa {

/// All static metrics for one corpus program.
struct ProgramMetrics {
  std::string Name;
  // Sizes in bytes.
  size_t BytecodeBytes = 0;
  size_t TSABytes = 0;
  size_t TSAOptBytes = 0;
  // Instruction counts.
  unsigned BytecodeInsts = 0;
  unsigned TSAInsts = 0;
  unsigned TSAOptInsts = 0;
  // Figure 6 counters.
  unsigned PhisBefore = 0, PhisAfter = 0;
  unsigned NullChecksBefore = 0, NullChecksAfter = 0;
  unsigned IndexChecksBefore = 0, IndexChecksAfter = 0;
  OptStats Opt;
};

inline ProgramMetrics measureProgram(const CorpusProgram &P,
                                     const OptOptions &Options = {}) {
  ProgramMetrics M;
  M.Name = P.Name;

  auto C = compileMJ(P.Name, P.Source);
  if (!C->ok()) {
    std::fprintf(stderr, "corpus program %s failed to compile:\n%s\n",
                 P.Name, C->renderDiagnostics().c_str());
    std::exit(1);
  }
  TSAVerifier V(*C->TSA);
  if (!V.verify()) {
    std::fprintf(stderr, "corpus program %s failed verification\n", P.Name);
    std::exit(1);
  }

  BCCompiler BCC(C->Types, *C->Table);
  auto BC = BCC.compile(C->AST);
  M.BytecodeInsts = BC->countInstructions();
  M.BytecodeBytes = writeBCModule(*BC).size();

  M.TSAInsts = C->TSA->countInstructions();
  M.TSABytes = encodeModule(*C->TSA).size();
  M.PhisBefore = C->TSA->countOpcode(Opcode::Phi);
  M.NullChecksBefore = C->TSA->countOpcode(Opcode::NullCheck);
  M.IndexChecksBefore = C->TSA->countOpcode(Opcode::IndexCheck);

  M.Opt = optimizeModule(*C->TSA, Options);
  M.TSAOptInsts = C->TSA->countInstructions();
  M.TSAOptBytes = encodeModule(*C->TSA).size();
  M.PhisAfter = C->TSA->countOpcode(Opcode::Phi);
  M.NullChecksAfter = C->TSA->countOpcode(Opcode::NullCheck);
  M.IndexChecksAfter = C->TSA->countOpcode(Opcode::IndexCheck);
  return M;
}

/// Percentage delta rendered like the paper's tables (negative = fewer).
inline int deltaPercent(unsigned Before, unsigned After) {
  if (Before == 0)
    return 0;
  return static_cast<int>(
      (static_cast<long>(After) - static_cast<long>(Before)) * 100 /
      static_cast<long>(Before));
}

} // namespace safetsa

#endif // SAFETSA_BENCH_BENCHUTIL_H
