//===- bench/bench_figure6.cpp - Paper Figure 6 reproduction --*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 6: per benchmark program, the number of phi,
/// null-check, and array-check instructions before and after producer-side
/// optimization, with deltas. The paper's shape claims: phis drop by more
/// than 30% in most cases (31% on average from DCE), null checks by
/// 30-70%, array checks visibly only on array-heavy programs.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <cstdio>

using namespace safetsa;

int main() {
  std::printf("Figure 6: Phi-, Null-Check and Array-Check instructions "
              "before and after optimization\n\n");
  std::printf("%-20s | %6s %6s %5s | %6s %6s %5s | %6s %6s %5s\n",
              "Program", "PhiB", "PhiA", "d%", "NullB", "NullA", "d%",
              "IdxB", "IdxA", "d%");
  std::printf("---------------------+---------------------+----------------"
              "-----+---------------------\n");

  unsigned TPB = 0, TPA = 0, TNB = 0, TNA = 0, TIB = 0, TIA = 0;
  for (const CorpusProgram &P : getCorpus()) {
    ProgramMetrics M = measureProgram(P);
    auto Cell = [](unsigned B, unsigned A, char *Buf) {
      if (B == 0)
        std::snprintf(Buf, 8, "N/A");
      else
        std::snprintf(Buf, 8, "%d", deltaPercent(B, A));
      return Buf;
    };
    char D1[8], D2[8], D3[8];
    std::printf("%-20s | %6u %6u %5s | %6u %6u %5s | %6u %6u %5s\n",
                M.Name.c_str(), M.PhisBefore, M.PhisAfter,
                Cell(M.PhisBefore, M.PhisAfter, D1), M.NullChecksBefore,
                M.NullChecksAfter,
                Cell(M.NullChecksBefore, M.NullChecksAfter, D2),
                M.IndexChecksBefore, M.IndexChecksAfter,
                Cell(M.IndexChecksBefore, M.IndexChecksAfter, D3));
    TPB += M.PhisBefore;
    TPA += M.PhisAfter;
    TNB += M.NullChecksBefore;
    TNA += M.NullChecksAfter;
    TIB += M.IndexChecksBefore;
    TIA += M.IndexChecksAfter;
  }
  std::printf("---------------------+---------------------+----------------"
              "-----+---------------------\n");
  std::printf("%-20s | %6u %6u %4d%% | %6u %6u %4d%% | %6u %6u %4d%%\n",
              "TOTAL", TPB, TPA, deltaPercent(TPB, TPA), TNB, TNA,
              deltaPercent(TNB, TNA), TIB, TIA, deltaPercent(TIB, TIA));
  std::printf("\nShape checks (paper claims): phi reduction > 30%% in most "
              "cases (31%% average),\nnull-check reduction 30-70%%, "
              "array-check reductions on array-heavy programs only.\n");

  BenchJson Json("figure6");
  Json.add("total_phis_before", TPB, "insts");
  Json.add("total_phis_after", TPA, "insts");
  Json.add("phi_delta", deltaPercent(TPB, TPA), "%");
  Json.add("total_null_checks_before", TNB, "insts");
  Json.add("total_null_checks_after", TNA, "insts");
  Json.add("null_check_delta", deltaPercent(TNB, TNA), "%");
  Json.add("total_index_checks_before", TIB, "insts");
  Json.add("total_index_checks_after", TIA, "insts");
  Json.add("index_check_delta", deltaPercent(TIB, TIA), "%");
  Json.write();
  return 0;
}
