//===- bench/GBenchJson.h - google-benchmark JSON tee ---------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adapter wiring the google-benchmark suites into the BENCH_<suite>.json
/// emitter: a reporter that tees every run into a BenchJson while still
/// printing the normal console table, and SAFETSA_BENCHMARK_MAIN(suite),
/// a BENCHMARK_MAIN() replacement that installs it and writes the file
/// after the run.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_BENCH_GBENCHJSON_H
#define SAFETSA_BENCH_GBENCHJSON_H

#include "bench/BenchUtil.h"

#include <benchmark/benchmark.h>

namespace safetsa {

class JsonTeeReporter : public benchmark::ConsoleReporter {
public:
  explicit JsonTeeReporter(std::string Suite) : Json(std::move(Suite)) {}

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs)
      if (!R.error_occurred)
        Json.add(R.benchmark_name(), R.GetAdjustedRealTime(),
                 benchmark::GetTimeUnitString(R.time_unit));
    ConsoleReporter::ReportRuns(Runs);
  }

  void write() const { Json.write(); }

private:
  BenchJson Json;
};

} // namespace safetsa

/// Drop-in BENCHMARK_MAIN() that also emits BENCH_<suite>.json.
#define SAFETSA_BENCHMARK_MAIN(SUITE)                                        \
  int main(int argc, char **argv) {                                          \
    ::benchmark::Initialize(&argc, argv);                                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))                \
      return 1;                                                              \
    ::safetsa::JsonTeeReporter Reporter(#SUITE);                             \
    ::benchmark::RunSpecifiedBenchmarks(&Reporter);                          \
    ::benchmark::Shutdown();                                                 \
    Reporter.write();                                                        \
    return 0;                                                                \
  }

#endif // SAFETSA_BENCH_GBENCHJSON_H
