//===- bench/bench_encoding.cpp - Wire-format size ablation ---*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies the context-bounded prefix coding (§7): the same symbol
/// stream packed with equal-probability prefix codes vs. byte-aligned
/// varints, against the bytecode class file, before and after
/// optimization. Also breaks the paper's size caveat out: "a substantial
/// amount of each file consists of symbolic linking information and
/// constants" — measured here by encoding a module stripped of method
/// bodies.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <cstdio>

using namespace safetsa;

int main() {
  std::printf("Encoding ablation: context-bounded prefix code vs naive "
              "byte-aligned symbols\n\n");
  std::printf("%-20s | %8s | %8s %8s %6s | %8s %8s %6s\n", "Program",
              "BC bytes", "prefix", "naive", "ratio", "prefixO", "naiveO",
              "ratio");
  std::printf("---------------------+----------+--------------------------+"
              "--------------------------\n");

  size_t TotBC = 0, TotP = 0, TotN = 0, TotPO = 0, TotNO = 0;
  for (const CorpusProgram &P : getCorpus()) {
    auto C = compileMJ(P.Name, P.Source);
    if (!C->ok())
      return 1;
    BCCompiler BCC(C->Types, *C->Table);
    auto BC = BCC.compile(C->AST);
    size_t BCBytes = writeBCModule(*BC).size();

    size_t Prefix = encodeModule(*C->TSA, CodecMode::Prefix).size();
    size_t Naive = encodeModule(*C->TSA, CodecMode::Naive).size();
    optimizeModule(*C->TSA);
    size_t PrefixO = encodeModule(*C->TSA, CodecMode::Prefix).size();
    size_t NaiveO = encodeModule(*C->TSA, CodecMode::Naive).size();

    std::printf("%-20s | %8zu | %8zu %8zu %5u%% | %8zu %8zu %5u%%\n",
                P.Name, BCBytes, Prefix, Naive,
                static_cast<unsigned>(100.0 * Prefix / Naive), PrefixO,
                NaiveO, static_cast<unsigned>(100.0 * PrefixO / NaiveO));
    TotBC += BCBytes;
    TotP += Prefix;
    TotN += Naive;
    TotPO += PrefixO;
    TotNO += NaiveO;
  }
  std::printf("---------------------+----------+--------------------------+"
              "--------------------------\n");
  std::printf("%-20s | %8zu | %8zu %8zu %5u%% | %8zu %8zu %5u%%\n", "TOTAL",
              TotBC, TotP, TotN,
              static_cast<unsigned>(100.0 * TotP / TotN), TotPO, TotNO,
              static_cast<unsigned>(100.0 * TotPO / TotNO));

  // Symbolic-linking overhead: encode a module whose method bodies were
  // emptied, leaving declarations, names, and constants.
  size_t TotLink = 0, TotFull = 0;
  for (const CorpusProgram &P : getCorpus()) {
    auto C = compileMJ(P.Name, P.Source);
    TotFull += encodeModule(*C->TSA).size();
    C->TSA->Methods.clear();
    TotLink += encodeModule(*C->TSA).size();
  }
  std::printf("\nSymbolic linking information (declarations/names only, no "
              "bodies):\n  %zu of %zu bytes (%u%%) — the paper's "
              "explanation for why file-size\n  gains trail "
              "instruction-count gains.\n",
              TotLink, TotFull,
              static_cast<unsigned>(100.0 * TotLink / TotFull));

  BenchJson Json("encoding");
  Json.add("total_bytecode_bytes", static_cast<double>(TotBC), "bytes");
  Json.add("total_prefix_bytes", static_cast<double>(TotP), "bytes");
  Json.add("total_naive_bytes", static_cast<double>(TotN), "bytes");
  Json.add("total_prefix_opt_bytes", static_cast<double>(TotPO), "bytes");
  Json.add("total_naive_opt_bytes", static_cast<double>(TotNO), "bytes");
  Json.add("prefix_vs_naive", 100.0 * TotP / TotN, "%");
  Json.add("prefix_vs_naive_opt", 100.0 * TotPO / TotNO, "%");
  Json.add("linking_bytes", static_cast<double>(TotLink), "bytes");
  Json.add("linking_vs_full", 100.0 * TotLink / TotFull, "%");
  Json.write();
  return 0;
}
