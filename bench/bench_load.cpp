//===- bench/bench_load.cpp - Consumer-side load throughput ---*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the consumer-side load path over the corpus wire bytes
/// (google-benchmark): how fast a receiving system turns SafeTSA mobile
/// code into a verified in-memory module.
///
///   - Fused: one pass — decodeModule with FusedVerify, where the
///     residual semantic checks ride along the phase-2/phase-3 walks and
///     a successful decode is a verified module.
///   - LegacyTwoPass: the pre-fusion pipeline — structural-only decode,
///     then a standalone TSAVerifier pass plus the paper's counter check.
///
/// Both report bytes_per_second over the total wire size and a methods/s
/// counter, so the speedup and absolute load rate read off directly.
/// A batch variant exercises BatchCompiler::load, the span-based
/// pre-allocated-slot entry point the embedding driver uses.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "driver/BatchCompiler.h"

#include <benchmark/benchmark.h>

using namespace safetsa;

namespace {

struct Encoded {
  std::vector<uint8_t> Wire;
  size_t NumMethods = 0;
};

const std::vector<Encoded> &corpusWires() {
  static std::vector<Encoded> Wires = [] {
    std::vector<Encoded> Out;
    for (const CorpusProgram &P : getCorpus()) {
      auto C = compileMJ(P.Name, P.Source);
      if (!C->ok())
        std::abort();
      Encoded E;
      E.Wire = encodeModule(*C->TSA);
      E.NumMethods = C->TSA->Methods.size();
      Out.push_back(std::move(E));
    }
    return Out;
  }();
  return Wires;
}

size_t totalWireBytes() {
  size_t N = 0;
  for (const Encoded &E : corpusWires())
    N += E.Wire.size();
  return N;
}

size_t totalMethods() {
  size_t N = 0;
  for (const Encoded &E : corpusWires())
    N += E.NumMethods;
  return N;
}

void reportThroughput(benchmark::State &State) {
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(totalWireBytes()));
  State.counters["methods_per_s"] = benchmark::Counter(
      static_cast<double>(State.iterations()) *
          static_cast<double>(totalMethods()),
      benchmark::Counter::kIsRate);
}

/// The fused load path: decode success == verified module.
void BM_LoadFused(benchmark::State &State) {
  const auto &Wires = corpusWires();
  for (auto _ : State) {
    for (const Encoded &E : Wires) {
      std::string Err;
      auto Unit = decodeModule(ByteSpan(E.Wire), &Err,
                               DecodeOptions{CodecMode::Prefix, true});
      if (!Unit)
        std::abort();
      benchmark::DoNotOptimize(Unit);
    }
  }
  reportThroughput(State);
}
BENCHMARK(BM_LoadFused);

/// The pre-fusion pipeline: structural decode with the scalar
/// bit-at-a-time reader, then the standalone verifier and the counter
/// check as separate consumer passes.
void BM_LoadLegacyTwoPass(benchmark::State &State) {
  const auto &Wires = corpusWires();
  for (auto _ : State) {
    for (const Encoded &E : Wires) {
      std::string Err;
      auto Unit =
          decodeModule(ByteSpan(E.Wire), &Err,
                       DecodeOptions{CodecMode::Prefix, false, false});
      if (!Unit)
        std::abort();
      TSAVerifier V(*Unit->Module);
      if (!V.verify())
        std::abort();
      if (!counterCheckModule(*Unit->Module))
        std::abort();
      benchmark::DoNotOptimize(Unit);
    }
  }
  reportThroughput(State);
}
BENCHMARK(BM_LoadLegacyTwoPass);

/// The batch driver's consumer entry point: spans into shared buffers,
/// results in pre-allocated slots, pool-parallel across units.
void BM_LoadBatch(benchmark::State &State) {
  const auto &Wires = corpusWires();
  std::vector<ByteSpan> Spans;
  for (const Encoded &E : Wires)
    Spans.emplace_back(E.Wire);
  BatchCompiler BC;
  for (auto _ : State) {
    auto Results = BC.load(Spans);
    for (const BatchLoadResult &R : Results)
      if (!R.ok())
        std::abort();
    benchmark::DoNotOptimize(Results);
  }
  reportThroughput(State);
}
BENCHMARK(BM_LoadBatch);

} // namespace

#include "bench/GBenchJson.h"
SAFETSA_BENCHMARK_MAIN(load)
