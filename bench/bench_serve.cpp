//===- bench/bench_serve.cpp - Distribution-layer throughput --*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Throughput of the src/serve distribution layer over the corpus
/// (google-benchmark), at 1/4/8 client threads:
///
///   - FetchWire: the framed FETCH path over per-thread pipe connections
///     dispatched onto the server's pool — raw byte-serving rate.
///   - LoadCold: cache-backed consumer loads with the verified-module
///     cache cleared every iteration — every load pays the fused
///     decode+verify.
///   - LoadWarm: the same loads against a primed cache — zero decodes,
///     the paid-once-per-digest verification amortized to nothing.
///
/// Warm throughput dwarfing cold is the subsystem's reason to exist: a
/// server can hand out verified modules at memory speed because the
/// cache keys on content digests (same digest, same bytes, same
/// verdict).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "serve/CodeClient.h"
#include "serve/CodeServer.h"

#include <benchmark/benchmark.h>

using namespace safetsa;

namespace {

struct ServeFixture {
  CodeServer Server;
  std::vector<Digest> Digests;
  size_t WireBytes = 0;

  ServeFixture()
      : Server(CodeServerOptions{/*CacheBytes=*/256u << 20,
                                 /*CacheShards=*/8,
                                 /*Threads=*/16,
                                 /*VerifyOnPublish=*/true,
                                 /*StoreDir=*/""}) {
    for (const CorpusProgram &P : getCorpus()) {
      auto C = compileMJ(P.Name, P.Source);
      if (!C->ok())
        std::abort();
      std::vector<uint8_t> Wire = encodeModule(*C->TSA);
      WireBytes += Wire.size();
      std::string Err;
      Digests.push_back(Server.publish(ByteSpan(Wire), &Err));
      if (!Err.empty())
        std::abort();
    }
  }
};

ServeFixture &fixture() {
  static ServeFixture F;
  return F;
}

/// Framed FETCH over the protocol, one pipe connection per client
/// thread, connections served by the server's dispatch pool.
void BM_ServeFetchWire(benchmark::State &State) {
  ServeFixture &F = fixture();
  TransportPair Pair = makePipePair();
  F.Server.attach(std::move(Pair.Server));
  CodeClient Client(*Pair.Client);
  for (auto _ : State) {
    for (const Digest &D : F.Digests) {
      std::vector<uint8_t> Out;
      std::string Err;
      if (!Client.fetch(D, Out, &Err))
        std::abort();
      benchmark::DoNotOptimize(Out);
    }
  }
  Client.close();
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(F.WireBytes));
  State.counters["modules_per_s"] = benchmark::Counter(
      static_cast<double>(State.iterations()) *
          static_cast<double>(F.Digests.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeFetchWire)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void reportLoad(benchmark::State &State, const ServeFixture &F) {
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(F.WireBytes));
  State.counters["modules_per_s"] = benchmark::Counter(
      static_cast<double>(State.iterations()) *
          static_cast<double>(F.Digests.size()),
      benchmark::Counter::kIsRate);
}

void loadAll(ServeFixture &F) {
  for (const Digest &D : F.Digests) {
    std::string Err;
    auto Unit = F.Server.load(D, &Err);
    if (!Unit)
      std::abort();
    benchmark::DoNotOptimize(Unit);
  }
}

/// Cold cache: thread 0 clears the verified-module cache each iteration,
/// so loads keep paying the fused decode+verify (exactly cold at 1
/// thread, a decode-dominated mix at 4/8).
void BM_ServeLoadCold(benchmark::State &State) {
  ServeFixture &F = fixture();
  for (auto _ : State) {
    if (State.thread_index() == 0)
      F.Server.getCache().clear();
    loadAll(F);
  }
  reportLoad(State, F);
}
BENCHMARK(BM_ServeLoadCold)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

/// Warm cache: primed by publish; every load is a hit and no decode
/// runs. The gap to LoadCold is the per-fetch verification cost the
/// content-addressed cache eliminates.
void BM_ServeLoadWarm(benchmark::State &State) {
  ServeFixture &F = fixture();
  if (State.thread_index() == 0)
    loadAll(F); // Prime (publish already decoded; this covers clears).
  for (auto _ : State)
    loadAll(F);
  reportLoad(State, F);
}
BENCHMARK(BM_ServeLoadWarm)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

} // namespace

#include "bench/GBenchJson.h"
SAFETSA_BENCHMARK_MAIN(serve)
