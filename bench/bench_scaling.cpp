//===- bench/bench_scaling.cpp - Warm-path thread scaling -----*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures how the warm (paid-once, read-mostly) paths scale with
/// threads — the property the lock-free ModuleCache hit path and the
/// striped tier-0 profile counters exist to provide:
///
///   - Warm getPrepared hits: every thread loops loadPrepared over the
///     primed corpus (snapshot probe + striped counter bump; never takes
///     a shard mutex). Reported as hits/sec at 1/2/4/8 threads, plus
///     warm_hit_scaling_8t = throughput(8t) / throughput(1t).
///   - Corpus exec sweeps: every thread executes the full corpus from
///     the SAME tier-0 PreparedModule objects (per-thread Runtime), so
///     always-on profiling is the only cross-thread traffic. Reported as
///     sweeps/sec at 1/2/4/8 threads plus exec_sweep_scaling_8t.
///
/// Acceptance (enforced only when the host actually has >= 8 hardware
/// threads — scaling cannot be demonstrated on fewer cores than the
/// thread count, so smaller hosts report the metrics without gating):
/// warm_hit_scaling_8t >= 4.0 and exec_sweep_scaling_8t >= 2.0.
/// Emits BENCH_scaling.json either way.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "exec/ExecUnit.h"
#include "serve/CodeServer.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace safetsa;

namespace {

using Clock = std::chrono::steady_clock;

bool smokeMode() {
  const char *E = std::getenv("SAFETSA_BENCH_SMOKE");
  return E && *E && !(E[0] == '0' && E[1] == '\0');
}

/// Runs \p Work concurrently on \p NThreads for at least \p Seconds
/// (each worker re-checks the clock between work items) and returns
/// total completed items per second. One warm-up item per thread runs
/// untimed so first-touch costs (TLS stripe assignment, lazy pools) stay
/// out of the window.
template <typename WorkFn>
double throughputAt(unsigned NThreads, double Seconds, WorkFn &&Work) {
  std::vector<std::thread> Workers;
  std::atomic<uint64_t> Items{0};
  std::atomic<bool> Go{false};
  for (unsigned T = 0; T != NThreads; ++T)
    Workers.emplace_back([&] {
      Work();
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      Clock::time_point End =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(Seconds));
      uint64_t Mine = 0;
      do {
        Work();
        ++Mine;
      } while (Clock::now() < End);
      Items.fetch_add(Mine, std::memory_order_relaxed);
    });
  Clock::time_point Start = Clock::now();
  Go.store(true, std::memory_order_release);
  for (std::thread &W : Workers)
    W.join();
  double Elapsed =
      std::chrono::duration<double>(Clock::now() - Start).count();
  return static_cast<double>(Items.load()) / Elapsed;
}

} // namespace

int main() {
  const bool Smoke = smokeMode();
  const unsigned HW = std::thread::hardware_concurrency();
  std::printf("Warm-path thread scaling (%u hardware thread%s)%s\n\n", HW,
              HW == 1 ? "" : "s", Smoke ? " [smoke]" : "");

  // One server, corpus published and primed: every measured load below
  // is a pure warm hit. MaxTier 0 pins the profiling tier so the loop
  // exercises the settled lock-free fast path, not tier escalation.
  CodeServer Server(CodeServerOptions{/*CacheBytes=*/256u << 20,
                                      /*CacheShards=*/8,
                                      /*Threads=*/4,
                                      /*VerifyOnPublish=*/true,
                                      /*StoreDir=*/""});
  std::vector<Digest> Digests;
  std::vector<std::unique_ptr<CompiledProgram>> Programs;
  std::vector<std::unique_ptr<PreparedModule>> Prepared;
  for (const CorpusProgram &P : getCorpus()) {
    auto C = compileMJ(P.Name, P.Source);
    if (!C->ok()) {
      std::fprintf(stderr, "%s failed to compile\n", P.Name);
      return 1;
    }
    std::vector<uint8_t> Wire = encodeModule(*C->TSA);
    std::string Err;
    Digests.push_back(Server.publish(ByteSpan(Wire), &Err));
    if (!Err.empty()) {
      std::fprintf(stderr, "publish failed: %s\n", Err.c_str());
      return 1;
    }
    auto PM = prepareModule(*C->TSA);
    if (!PM) {
      std::fprintf(stderr, "%s failed to lower\n", P.Name);
      return 1;
    }
    Prepared.push_back(std::move(PM));
    Programs.push_back(std::move(C));
  }
  for (const Digest &D : Digests) {
    std::string Err;
    if (!Server.loadPrepared(D, /*MaxTier=*/0, &Err)) {
      std::fprintf(stderr, "prime failed: %s\n", Err.c_str());
      return 1;
    }
  }

  BenchJson Json("scaling");
  const double WarmSecs = Smoke ? 0.02 : 0.4;
  const double ExecSecs = Smoke ? 0.02 : 0.8;
  const unsigned ThreadCounts[] = {1, 2, 4, 8};

  // Section 1: warm getPrepared hits. One work item = one loadPrepared
  // over every corpus digest (so the per-item cost is big enough that
  // the duration check does not dominate).
  std::printf("Warm getPrepared hits (all %zu corpus digests per op):\n",
              Digests.size());
  double WarmTput[4] = {};
  for (unsigned I = 0; I != 4; ++I) {
    unsigned N = ThreadCounts[I];
    double OpsPerSec = throughputAt(N, WarmSecs, [&] {
      std::string Err;
      for (const Digest &D : Digests)
        if (!Server.loadPrepared(D, /*MaxTier=*/0, &Err))
          std::abort();
    });
    WarmTput[I] = OpsPerSec * static_cast<double>(Digests.size());
    std::printf("  %u thread%s: %12.0f hits/sec  (%.0f ns/hit)\n", N,
                N == 1 ? " " : "s", WarmTput[I],
                1e9 * N / WarmTput[I]);
    char Key[48];
    std::snprintf(Key, sizeof(Key), "warm_hits_per_sec/%u_threads", N);
    Json.add(Key, WarmTput[I], "hits/s");
  }
  double WarmScaling8 = WarmTput[3] / WarmTput[0];
  double Warm8v4 = WarmTput[3] / WarmTput[2];
  std::printf("  scaling 8t/1t: %.2fx   8t/4t: %.2fx\n", WarmScaling8,
              Warm8v4);
  Json.add("warm_hit_scaling_8t", WarmScaling8, "x");
  Json.add("warm_hit_8t_over_4t", Warm8v4, "x");

  // Section 2: corpus exec sweeps on shared tier-0 modules (always-on
  // profiling active — the cross-thread traffic the striped counters
  // were built for).
  std::printf("\nExec sweeps, shared tier-0 modules (corpus sweeps/sec):\n");
  double ExecTput[4] = {};
  for (unsigned I = 0; I != 4; ++I) {
    unsigned N = ThreadCounts[I];
    ExecTput[I] = throughputAt(N, ExecSecs, [&] {
      for (size_t P = 0; P != Prepared.size(); ++P) {
        Runtime RT(*Programs[P]->Table);
        TSAExec X(*Prepared[P], RT);
        if (X.runMain().Err != RuntimeError::None)
          std::abort();
      }
    });
    std::printf("  %u thread%s: %10.1f\n", N, N == 1 ? " " : "s",
                ExecTput[I]);
    char Key[48];
    std::snprintf(Key, sizeof(Key), "exec_sweeps_per_sec/%u_threads", N);
    Json.add(Key, ExecTput[I], "sweeps/s");
  }
  double ExecScaling8 = ExecTput[3] / ExecTput[0];
  std::printf("  scaling 8t/1t: %.2fx\n", ExecScaling8);
  Json.add("exec_sweep_scaling_8t", ExecScaling8, "x");
  Json.add("hardware_threads", static_cast<double>(HW), "threads");
  Json.write();

  if (Smoke) {
    std::printf("\n[smoke] gates reported, not enforced\n");
    return 0;
  }
  if (HW < 8) {
    std::printf("\nNOTE: %u hardware thread%s — 8-thread scaling gates "
                "(warm >= 4.0x, exec >= 2.0x) reported, not enforced.\n",
                HW, HW == 1 ? "" : "s");
    return 0;
  }
  bool Failed = false;
  if (WarmScaling8 < 4.0) {
    std::fprintf(stderr,
                 "FAIL: warm_hit_scaling_8t %.2fx below 4.0x gate\n",
                 WarmScaling8);
    Failed = true;
  }
  if (ExecScaling8 < 2.0) {
    std::fprintf(stderr,
                 "FAIL: exec_sweep_scaling_8t %.2fx below 2.0x gate\n",
                 ExecScaling8);
    Failed = true;
  }
  if (Warm8v4 < 0.90) {
    std::fprintf(stderr,
                 "FAIL: warm hits at 8 threads slower than at 4 "
                 "(%.2fx)\n",
                 Warm8v4);
    Failed = true;
  }
  return Failed ? 1 : 0;
}
