//===- bench/bench_verify_time.cpp - Verification cost --------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Times consumer-side verification of the two formats over the corpus
/// (google-benchmark): the JVM-style dataflow fixpoint over stack/local
/// types vs. SafeTSA's structural pass, whose reference checking
/// degenerates to per-plane counters (§9: "checking that all operand
/// accesses to the stack are valid — which requires a data flow analysis
/// — decreases the runtime of applications significantly … In SafeTSA
/// this verification phase is done by checking if a value has already
/// been defined, which can be implemented using simple counters").
/// Decode time is also reported: for SafeTSA, decode itself re-derives
/// CFG/dominators, i.e. the preprocessing a JIT would otherwise redo.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "bytecode/BCVerifier.h"

#include <benchmark/benchmark.h>

using namespace safetsa;

namespace {

struct Compiled {
  std::unique_ptr<CompiledProgram> C;
  std::unique_ptr<BCModule> BC;
  std::vector<uint8_t> TSAWire;
  std::vector<uint8_t> BCWire;
};

const std::vector<Compiled> &allCompiled() {
  static std::vector<Compiled> Programs = [] {
    std::vector<Compiled> Out;
    for (const CorpusProgram &P : getCorpus()) {
      Compiled X;
      X.C = compileMJ(P.Name, P.Source);
      if (!X.C->ok())
        std::abort();
      BCCompiler BCC(X.C->Types, *X.C->Table);
      X.BC = BCC.compile(X.C->AST);
      X.TSAWire = encodeModule(*X.C->TSA);
      X.BCWire = writeBCModule(*X.BC);
      Out.push_back(std::move(X));
    }
    return Out;
  }();
  return Programs;
}

void BM_BytecodeDataflowVerify(benchmark::State &State) {
  const auto &Programs = allCompiled();
  uint64_t Iterations = 0;
  for (auto _ : State) {
    for (const Compiled &X : Programs) {
      BCVerifier V(*X.BC);
      bool Ok = V.verify();
      benchmark::DoNotOptimize(Ok);
      Iterations += V.getIterationCount();
    }
  }
  State.counters["dataflow_iters"] =
      benchmark::Counter(static_cast<double>(Iterations),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BytecodeDataflowVerify);

void BM_SafeTSAVerify(benchmark::State &State) {
  const auto &Programs = allCompiled();
  for (auto _ : State) {
    for (const Compiled &X : Programs) {
      TSAVerifier V(*X.C->TSA);
      bool Ok = V.verify();
      benchmark::DoNotOptimize(Ok);
    }
  }
}
BENCHMARK(BM_SafeTSAVerify);

void BM_SafeTSACounterCheck(benchmark::State &State) {
  // The paper's residual check in isolation: references only, assuming
  // typing is intact by construction of the wire format.
  const auto &Programs = allCompiled();
  for (auto _ : State) {
    for (const Compiled &X : Programs) {
      bool Ok = counterCheckModule(*X.C->TSA);
      benchmark::DoNotOptimize(Ok);
    }
  }
}
BENCHMARK(BM_SafeTSACounterCheck);

void BM_BytecodeReadAndVerify(benchmark::State &State) {
  const auto &Programs = allCompiled();
  for (auto _ : State) {
    for (const Compiled &X : Programs) {
      std::string Err;
      auto M = readBCModule(X.BCWire, &Err);
      if (!M)
        std::abort();
      BCVerifier V(*M);
      bool Ok = V.verify();
      benchmark::DoNotOptimize(Ok);
    }
  }
}
BENCHMARK(BM_BytecodeReadAndVerify);

void BM_SafeTSADecodeAndVerify(benchmark::State &State) {
  const auto &Programs = allCompiled();
  for (auto _ : State) {
    for (const Compiled &X : Programs) {
      std::string Err;
      auto Unit = decodeModule(X.TSAWire, &Err);
      if (!Unit)
        std::abort();
      TSAVerifier V(*Unit->Module);
      bool Ok = V.verify();
      benchmark::DoNotOptimize(Ok);
    }
  }
}
BENCHMARK(BM_SafeTSADecodeAndVerify);

} // namespace

#include "bench/GBenchJson.h"
SAFETSA_BENCHMARK_MAIN(verify_time)
