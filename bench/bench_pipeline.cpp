//===- bench/bench_pipeline.cpp - Toolchain throughput --------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark timings for every pipeline stage over the whole
/// corpus: front end, SafeTSA generation, optimization, encoding,
/// decoding, bytecode compilation, and both executions. Not a paper
/// table; it documents where time goes in this implementation and guards
/// against accidental quadratic regressions.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "bytecode/BCInterp.h"
#include "exec/TSAInterp.h"

#include <benchmark/benchmark.h>

using namespace safetsa;

namespace {

void BM_FrontEnd(benchmark::State &State) {
  for (auto _ : State)
    for (const CorpusProgram &P : getCorpus()) {
      auto C = compileMJ(P.Name, P.Source, /*EmitTSA=*/false);
      benchmark::DoNotOptimize(C->ok());
    }
}
BENCHMARK(BM_FrontEnd);

void BM_FrontEndPlusTSAGen(benchmark::State &State) {
  for (auto _ : State)
    for (const CorpusProgram &P : getCorpus()) {
      auto C = compileMJ(P.Name, P.Source);
      benchmark::DoNotOptimize(C->TSA.get());
    }
}
BENCHMARK(BM_FrontEndPlusTSAGen);

void BM_Optimize(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    std::vector<std::unique_ptr<CompiledProgram>> Compiled;
    for (const CorpusProgram &P : getCorpus())
      Compiled.push_back(compileMJ(P.Name, P.Source));
    State.ResumeTiming();
    for (auto &C : Compiled) {
      OptStats S = optimizeModule(*C->TSA);
      benchmark::DoNotOptimize(S.CSERemoved);
    }
  }
}
BENCHMARK(BM_Optimize);

void BM_Encode(benchmark::State &State) {
  std::vector<std::unique_ptr<CompiledProgram>> Compiled;
  for (const CorpusProgram &P : getCorpus())
    Compiled.push_back(compileMJ(P.Name, P.Source));
  size_t Bytes = 0;
  for (auto _ : State)
    for (auto &C : Compiled) {
      std::vector<uint8_t> Wire = encodeModule(*C->TSA);
      Bytes += Wire.size();
      benchmark::DoNotOptimize(Wire.data());
    }
  State.SetBytesProcessed(static_cast<int64_t>(Bytes));
}
BENCHMARK(BM_Encode);

void BM_Decode(benchmark::State &State) {
  std::vector<std::vector<uint8_t>> Wires;
  for (const CorpusProgram &P : getCorpus()) {
    auto C = compileMJ(P.Name, P.Source);
    Wires.push_back(encodeModule(*C->TSA));
  }
  size_t Bytes = 0;
  for (auto _ : State)
    for (const auto &W : Wires) {
      std::string Err;
      auto Unit = decodeModule(W, &Err);
      if (!Unit)
        std::abort();
      Bytes += W.size();
      benchmark::DoNotOptimize(Unit->Module.get());
    }
  State.SetBytesProcessed(static_cast<int64_t>(Bytes));
}
BENCHMARK(BM_Decode);

void BM_CounterCheck(benchmark::State &State) {
  // The consumer's per-operand hot loop: one flat array index per operand
  // after the plane-interning rewrite (was an ordered-map walk).
  std::vector<std::unique_ptr<CompiledProgram>> Compiled;
  for (const CorpusProgram &P : getCorpus())
    Compiled.push_back(compileMJ(P.Name, P.Source));
  for (auto _ : State)
    for (auto &C : Compiled) {
      bool Ok = counterCheckModule(*C->TSA);
      if (!Ok)
        std::abort();
      benchmark::DoNotOptimize(Ok);
    }
}
BENCHMARK(BM_CounterCheck);

void BM_FullVerify(benchmark::State &State) {
  std::vector<std::unique_ptr<CompiledProgram>> Compiled;
  for (const CorpusProgram &P : getCorpus())
    Compiled.push_back(compileMJ(P.Name, P.Source));
  for (auto _ : State)
    for (auto &C : Compiled) {
      TSAVerifier V(*C->TSA);
      bool Ok = V.verify();
      if (!Ok)
        std::abort();
      benchmark::DoNotOptimize(Ok);
    }
}
BENCHMARK(BM_FullVerify);

void BM_BytecodeCompile(benchmark::State &State) {
  std::vector<std::unique_ptr<CompiledProgram>> Compiled;
  for (const CorpusProgram &P : getCorpus())
    Compiled.push_back(compileMJ(P.Name, P.Source, /*EmitTSA=*/false));
  for (auto _ : State)
    for (auto &C : Compiled) {
      BCCompiler BCC(C->Types, *C->Table);
      auto BC = BCC.compile(C->AST);
      benchmark::DoNotOptimize(BC->countInstructions());
    }
}
BENCHMARK(BM_BytecodeCompile);

void BM_ExecuteTSA(benchmark::State &State) {
  // One representative program to keep iteration times sane.
  auto C = compileMJ("Sorter", findCorpusProgram("Sorter")->Source);
  optimizeModule(*C->TSA);
  for (auto _ : State) {
    Runtime RT(*C->Table);
    TSAInterpreter I(*C->TSA, RT);
    ExecResult R = I.runMain();
    if (!R.ok())
      std::abort();
    benchmark::DoNotOptimize(RT.getOutput().size());
  }
}
BENCHMARK(BM_ExecuteTSA);

void BM_ExecuteBytecode(benchmark::State &State) {
  auto C = compileMJ("Sorter", findCorpusProgram("Sorter")->Source,
                     /*EmitTSA=*/false);
  BCCompiler BCC(C->Types, *C->Table);
  auto BC = BCC.compile(C->AST);
  for (auto _ : State) {
    Runtime RT(*C->Table);
    BCInterpreter I(*BC, RT, C->Types);
    ExecResult R = I.runMain();
    if (!R.ok())
      std::abort();
    benchmark::DoNotOptimize(RT.getOutput().size());
  }
}
BENCHMARK(BM_ExecuteBytecode);

} // namespace

#include "bench/GBenchJson.h"
SAFETSA_BENCHMARK_MAIN(pipeline)
