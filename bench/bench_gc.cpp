//===- bench/bench_gc.cpp - GC overhead and reclaim throughput -*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cost of the precise collector (src/gc, DESIGN.md §13), two ways:
///
///  1. Mutator overhead: the full exec corpus timed with the collector
///     enabled at its default budget (safepoint polls + frame-chain
///     bookkeeping armed, no collection actually fires) vs.
///     GcOptions::Disable. Acceptance: gc_overhead_geomean <= 1.10 —
///     safepoints must cost at most 10% on ordinary code.
///
///  2. Collection throughput: an allocation-heavy churn workload run
///     under a tight budget so the collector fires continuously;
///     reports cycles, cells reclaimed, average stop-the-world pause,
///     and reclaim throughput, and checks the heap actually stayed
///     bounded.
///
/// Emits BENCH_gc.json (wired into run_benches.sh and the bench_smoke
/// ctest entry; gates enforced only in full runs).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "exec/ExecUnit.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

using namespace safetsa;

namespace {

bool smokeMode() {
  const char *E = std::getenv("SAFETSA_BENCH_SMOKE");
  return E && *E && !(E[0] == '0' && E[1] == '\0');
}

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

template <typename Fn> double timePerRun(unsigned Reps, Fn &&Run) {
  Clock::time_point Start = Clock::now();
  for (unsigned I = 0; I != Reps; ++I)
    Run();
  return secondsSince(Start) / Reps;
}

/// One prepared run under the given GC policy; returns the trap kind.
RuntimeError runOnce(const PreparedModule &PM, ClassTable &Table,
                     const GcOptions &G, std::string *Out = nullptr) {
  Runtime RT(Table, 200'000'000, G);
  TSAExec X(PM, RT);
  ExecResult R = X.runMain();
  if (Out)
    *Out = RT.getOutput();
  return R.Err;
}

/// Allocation-heavy churn: every iteration builds and drops a small
/// object graph, so a tight budget forces continuous collection.
const char *kChurnSrc =
    "class Box { int v; int[] payload; Box link; } "
    "class Main { static int work(int i) { "
    "Box a = new Box(); a.payload = new int[16]; "
    "Box b = new Box(); b.payload = new int[4]; "
    "a.link = b; b.v = i; a.payload[7] = i; "
    "return a.payload[7] + b.v; } "
    "static void main() { int i = 0; int s = 0; "
    "while (i < 30000) { s = s + work(i); i = i + 1; } "
    "IO.printInt(s); } }";

} // namespace

int main() {
  const bool Smoke = smokeMode();
  std::printf("GC: safepoint overhead and reclaim throughput%s\n\n",
              Smoke ? " [smoke]" : "");

  GcOptions GcOn;       // Defaults: enabled, budget never trips here.
  GcOptions GcOff;
  GcOff.Disable = true;

  BenchJson Json("gc");

  //===--------------------------------------------------------------===//
  // 1. Mutator overhead on the corpus: GC-armed vs. disabled.
  //===--------------------------------------------------------------===//

  std::printf("%-20s | %10s %10s | %8s\n", "Program", "gc-off us",
              "gc-on us", "overhead");
  std::printf("---------------------+-----------------------+---------\n");

  double LogSum = 0;
  size_t Programs = 0;
  double WorstOverhead = 0;
  std::string WorstProgram;
  for (const CorpusProgram &P : getCorpus()) {
    auto Program = compileMJ(P.Name, P.Source);
    if (!Program->ok()) {
      std::fprintf(stderr, "%s failed to compile:\n%s\n", P.Name,
                   Program->renderDiagnostics().c_str());
      return 1;
    }
    auto PM = prepareModule(*Program->TSA);
    if (!PM) {
      std::fprintf(stderr, "%s failed to lower\n", P.Name);
      return 1;
    }
    // Cross-check first: byte-identical output under both policies.
    std::string OffOut, OnOut;
    RuntimeError OffErr = runOnce(*PM, *Program->Table, GcOff, &OffOut);
    RuntimeError OnErr = runOnce(*PM, *Program->Table, GcOn, &OnOut);
    if (OffErr != OnErr || OffOut != OnOut) {
      std::fprintf(stderr, "%s diverged between GC on/off\n", P.Name);
      return 1;
    }

    double Once =
        timePerRun(1, [&] { runOnce(*PM, *Program->Table, GcOff); });
    double Target = Smoke ? 0.001 : 0.04;
    unsigned Reps =
        Once >= Target
            ? 1
            : static_cast<unsigned>(std::min(
                  Smoke ? 50.0 : 10000.0, std::ceil(Target / Once)));
    double OffSec =
        timePerRun(Reps, [&] { runOnce(*PM, *Program->Table, GcOff); });
    double OnSec =
        timePerRun(Reps, [&] { runOnce(*PM, *Program->Table, GcOn); });
    double Overhead = OnSec / OffSec;
    LogSum += std::log(Overhead);
    ++Programs;
    if (Overhead > WorstOverhead) {
      WorstOverhead = Overhead;
      WorstProgram = P.Name;
    }
    std::printf("%-20s | %10.1f %10.1f | %7.3fx\n", P.Name, OffSec * 1e6,
                OnSec * 1e6, Overhead);
    Json.add(std::string("gc_overhead/") + P.Name, Overhead, "x");
  }
  double OverheadGeomean = std::exp(LogSum / Programs);
  std::printf("---------------------+-----------------------+---------\n");
  std::printf("%-20s | %21s | %7.3fx  (acceptance: <= 1.10x)\n",
              "GEOMEAN", "", OverheadGeomean);

  //===--------------------------------------------------------------===//
  // 2. Reclaim throughput under a tight budget.
  //===--------------------------------------------------------------===//

  auto Churn = compileMJ("churn.mj", kChurnSrc);
  if (!Churn->ok()) {
    std::fprintf(stderr, "churn failed to compile:\n%s\n",
                 Churn->renderDiagnostics().c_str());
    return 1;
  }
  auto ChurnPM = prepareModule(*Churn->TSA);
  if (!ChurnPM) {
    std::fprintf(stderr, "churn failed to lower\n");
    return 1;
  }
  GcOptions Tight;
  Tight.HeapBudget = 16u << 10; // ~16 KiB: collect every few hundred cells.
  Runtime RT(*Churn->Table, 200'000'000, Tight);
  {
    TSAExec X(*ChurnPM, RT);
    Clock::time_point Start = Clock::now();
    ExecResult R = X.runMain();
    double ChurnSec = secondsSince(Start);
    if (R.Err != RuntimeError::None) {
      std::fprintf(stderr, "churn trapped: %s\n", runtimeErrorName(R.Err));
      return 1;
    }
    const GcStats &S = RT.gcStats();
    double AvgPauseUs = S.Cycles ? S.PauseNs / 1e3 / S.Cycles : 0;
    double ReclaimPerSec =
        S.PauseNs ? S.CellsReclaimed / (S.PauseNs / 1e9) : 0;
    std::printf("\nChurn (tight budget): %llu cycles, %llu cells reclaimed, "
                "%.1fus avg pause, %.0f cells/s reclaim, %zu heap cells, "
                "%.1fms total\n",
                static_cast<unsigned long long>(S.Cycles),
                static_cast<unsigned long long>(S.CellsReclaimed),
                AvgPauseUs, ReclaimPerSec, RT.heapCells(), ChurnSec * 1e3);
    Json.add("gc_churn_cycles", static_cast<double>(S.Cycles), "");
    Json.add("gc_churn_cells_reclaimed",
             static_cast<double>(S.CellsReclaimed), "cells");
    Json.add("gc_churn_avg_pause_us", AvgPauseUs, "us");
    Json.add("gc_churn_reclaim_cells_per_s", ReclaimPerSec, "cells/s");
    Json.add("gc_churn_heap_cells", static_cast<double>(RT.heapCells()),
             "cells");
    if (!Smoke && S.Cycles == 0) {
      std::fprintf(stderr, "FAIL: tight-budget churn never collected\n");
      return 1;
    }
    // Bounded-memory proof at bench scale: 90000 allocations must not
    // leave anywhere near 90000 cells.
    if (RT.heapCells() > 10000) {
      std::fprintf(stderr, "FAIL: churn heap grew to %zu cells\n",
                   RT.heapCells());
      return 1;
    }
  }

  Json.add("gc_overhead_geomean", OverheadGeomean, "x");
  Json.add("gc_overhead_worst", WorstOverhead, "x");
  Json.write();

  if (Smoke) {
    std::printf("\n[smoke] gates reported, not enforced\n");
    return 0;
  }
  if (OverheadGeomean > 1.10) {
    std::fprintf(stderr,
                 "FAIL: GC overhead geomean %.3fx above 1.10x gate "
                 "(worst %.3fx on %s)\n",
                 OverheadGeomean, WorstOverhead, WorstProgram.c_str());
    return 1;
  }
  return 0;
}
