//===- bench/bench_exec.cpp - Tree-walk vs prepared execution -*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the quickened execution units against the tree-walking
/// interpreter over the corpus: per-program wall time for both
/// interpreters (outputs cross-checked every run), the corpus geomean
/// speedup (acceptance: prepared >= 3x), the one-time lowering cost that
/// speedup has to amortize, and prepared-execution throughput at 1/4/8
/// threads sharing one PreparedModule per program. A second section
/// re-quickens every profiled module to tier 1 (inline caches,
/// devirtualization, superinstruction fusion, speculative inlining) and
/// times it against the tier-0 profiling interpreter; the call-heavy
/// subset — programs whose profile recorded at least one virtual
/// dispatch — carries its own geomean (acceptance: tier 1 >= 1.25x). A
/// third section isolates speculative inlining (DESIGN.md §14): the same
/// profiled modules re-quickened with splicing disabled versus the
/// spliced forms, interleaved best-of-five; the call-heavy subset here
/// is picked by flattened-call density — at least one dynamic call
/// through a spliced site per 16 executed instructions (spliced-site
/// profile heat per tier-0 run over fuel-metered instructions per run),
/// with a 100k-instruction floor so the ratio reflects steady-state
/// interpretation rather than per-run VM setup — and must show >= 1.15x.
/// Emits BENCH_exec.json.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "exec/ExecUnit.h"
#include "exec/TSAInterp.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

using namespace safetsa;

namespace {

/// --smoke support (run_benches.sh --smoke / the bench_smoke ctest
/// entry): tiny rep counts so the binary is exercised end to end in
/// tier-1 verification; acceptance gates are reported but not enforced,
/// because sub-millisecond measurement windows are pure noise.
bool smokeMode() {
  const char *E = std::getenv("SAFETSA_BENCH_SMOKE");
  return E && *E && !(E[0] == '0' && E[1] == '\0');
}

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

struct ProgramRun {
  std::string Name;
  std::unique_ptr<CompiledProgram> Program;
  std::unique_ptr<PreparedModule> Prepared;
  std::unique_ptr<PreparedModule> Tier1; ///< Default (spliced) tier 1.
  double TreeSeconds = 0;   ///< Per tree-walk runMain.
  double PrepSeconds = 0;   ///< Per prepared runMain.
  unsigned Reps = 1;
  /// Profiled tier-0 executions at the moment the spliced tier 1 was
  /// built: Tiering.InlinedHeat summed over this many runs, so dividing
  /// recovers per-run flattened-call counts for the density rule.
  uint64_t Tier0Runs = 0;
};

ExecResult runTree(const TSAModule &M, ClassTable &Table,
                   std::string *Output = nullptr) {
  Runtime RT(Table);
  TSAInterpreter Interp(M, RT);
  ExecResult R = Interp.runMain();
  if (Output)
    *Output = RT.getOutput();
  return R;
}

ExecResult runPrep(const PreparedModule &PM, ClassTable &Table,
                   std::string *Output = nullptr) {
  Runtime RT(Table);
  TSAExec Exec(PM, RT);
  ExecResult R = Exec.runMain();
  if (Output)
    *Output = RT.getOutput();
  return R;
}

/// Times \p Fn over \p Reps fresh executions; returns seconds per run.
template <typename Fn> double timePerRun(unsigned Reps, Fn &&Run) {
  Clock::time_point Start = Clock::now();
  for (unsigned I = 0; I != Reps; ++I)
    Run();
  return secondsSince(Start) / Reps;
}

} // namespace

int main() {
  const bool Smoke = smokeMode();
  std::printf("Execution: prepared units vs tree-walking interpreter%s\n\n",
              Smoke ? " [smoke]" : "");

  // Compile and lower every corpus program, timing the lowering itself —
  // that is the one-time cost the per-run speedup has to amortize.
  std::vector<ProgramRun> Runs;
  double PrepareSeconds = 0;
  size_t TotalCode = 0;
  for (const CorpusProgram &P : getCorpus()) {
    ProgramRun R;
    R.Name = P.Name;
    R.Program = compileMJ(P.Name, P.Source);
    if (!R.Program->ok()) {
      std::fprintf(stderr, "%s failed to compile:\n%s\n", P.Name,
                   R.Program->renderDiagnostics().c_str());
      return 1;
    }
    Clock::time_point Start = Clock::now();
    R.Prepared = prepareModule(*R.Program->TSA);
    PrepareSeconds += secondsSince(Start);
    if (!R.Prepared) {
      std::fprintf(stderr, "%s failed to lower\n", P.Name);
      return 1;
    }
    TotalCode += R.Prepared->totalCode();
    Runs.push_back(std::move(R));
  }

  // Cross-check before timing anything: both interpreters must agree on
  // the trap kind and every byte of output.
  for (ProgramRun &R : Runs) {
    std::string TreeOut, PrepOut;
    ExecResult TR = runTree(*R.Program->TSA, *R.Program->Table, &TreeOut);
    ExecResult PR = runPrep(*R.Prepared, *R.Program->Table, &PrepOut);
    if (TR.Err != PR.Err || TreeOut != PrepOut) {
      std::fprintf(stderr,
                   "%s diverged: tree-walk %s (%zu bytes), prepared %s "
                   "(%zu bytes)\n",
                   R.Name.c_str(), runtimeErrorName(TR.Err), TreeOut.size(),
                   runtimeErrorName(PR.Err), PrepOut.size());
      return 1;
    }
  }

  std::printf("%-20s | %10s %10s | %7s\n", "Program", "tree us", "prep us",
              "speedup");
  std::printf("---------------------+-----------------------+--------\n");

  BenchJson Json("exec");
  double LogSum = 0;
  for (ProgramRun &R : Runs) {
    // Calibrate repetitions off a single tree-walk run so each side
    // measures for roughly 40ms, then time both at the same rep count.
    double Once = timePerRun(
        1, [&] { runTree(*R.Program->TSA, *R.Program->Table); });
    double Target = Smoke ? 0.001 : 0.04;
    R.Reps = Once >= Target
                 ? 1
                 : static_cast<unsigned>(
                       std::min(Smoke ? 50.0 : 10000.0,
                                std::ceil(Target / Once)));
    R.TreeSeconds = timePerRun(
        R.Reps, [&] { runTree(*R.Program->TSA, *R.Program->Table); });
    R.PrepSeconds = timePerRun(
        R.Reps, [&] { runPrep(*R.Prepared, *R.Program->Table); });
    double Speedup = R.TreeSeconds / R.PrepSeconds;
    LogSum += std::log(Speedup);
    std::printf("%-20s | %10.1f %10.1f | %6.2fx\n", R.Name.c_str(),
                R.TreeSeconds * 1e6, R.PrepSeconds * 1e6, Speedup);
    Json.add("speedup/" + R.Name, Speedup, "x");
  }
  double Geomean = std::exp(LogSum / Runs.size());
  std::printf("---------------------+-----------------------+--------\n");
  std::printf("%-20s | %21s | %6.2fx  (acceptance: >= 3x)\n", "GEOMEAN", "",
              Geomean);

  std::printf("\nOne-time lowering cost: %zu prepared instructions in "
              "%.2fms (%.0f insts/ms)\n",
              TotalCode, PrepareSeconds * 1e3,
              TotalCode / (PrepareSeconds * 1e3));

  // Thread scaling: every worker executes the full corpus from the SAME
  // PreparedModule objects (per-thread Runtime + TSAExec), the sharing
  // pattern a warm ModuleCache produces. Reported as corpus sweeps/sec.
  std::printf("\nPrepared throughput, shared modules (corpus sweeps/sec):\n");
  for (unsigned NThreads : {1u, 4u, 8u}) {
    const unsigned SweepsPerThread = Smoke ? 1 : 8;
    Clock::time_point Start = Clock::now();
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T != NThreads; ++T)
      Workers.emplace_back([&] {
        for (unsigned S = 0; S != SweepsPerThread; ++S)
          for (ProgramRun &R : Runs)
            runPrep(*R.Prepared, *R.Program->Table);
      });
    for (std::thread &W : Workers)
      W.join();
    double Sweeps = double(NThreads) * SweepsPerThread / secondsSince(Start);
    std::printf("  %u thread%s: %8.1f\n", NThreads,
                NThreads == 1 ? " " : "s", Sweeps);
    char Key[32];
    std::snprintf(Key, sizeof(Key), "sweeps_per_sec/%u_threads", NThreads);
    Json.add(Key, Sweeps, "sweeps/s");
  }

  // Tier 1: every module was profiled by the timing loop above (tier 0
  // records receiver classes and invocation counts as it runs), so
  // re-quickening here resolves inline caches from a hot, settled
  // profile — exactly what ModuleCache does when a module crosses the
  // hot threshold. Parity is re-checked against the tree-walker before
  // any timing, then tier 1 is timed at the same rep counts as tier 0.
  std::printf("\nTier 1 (profile-guided re-quickening) vs tier 0:\n");
  std::printf("%-20s | %10s %10s | %7s\n", "Program", "t0 us", "t1 us",
              "speedup");
  std::printf("---------------------+-----------------------+--------\n");
  double ReprepareSeconds = 0;
  double T1LogSum = 0, CallLogSum = 0;
  unsigned CallCount = 0;
  uint64_t FusedTotal = 0, MonoTotal = 0, MonoGuardedTotal = 0,
           PolyTotal = 0, DevirtTotal = 0, FusionGuardedTotal = 0;
  uint64_t ICHitsTotal = 0, ICMissesTotal = 0;
  double MinSpeedup = 1e30;
  std::string MinProgram;
  for (ProgramRun &R : Runs) {
    const bool CallHeavy = R.Prepared->Profile &&
                           R.Prepared->Profile->totalDispatchSamples() > 0;
    if (R.Prepared->Profile && R.Prepared->MainUnit)
      R.Tier0Runs =
          R.Prepared->Profile->invocations(R.Prepared->MainUnit->Index);
    Clock::time_point Start = Clock::now();
    auto T1 = reprepareModule(*R.Prepared);
    ReprepareSeconds += secondsSince(Start);
    if (!T1) {
      std::fprintf(stderr, "%s failed to re-quicken\n", R.Name.c_str());
      return 1;
    }

    std::string TreeOut, T1Out;
    ExecResult TR = runTree(*R.Program->TSA, *R.Program->Table, &TreeOut);
    ExecResult PR = runPrep(*T1, *R.Program->Table, &T1Out);
    if (TR.Err != PR.Err || TreeOut != T1Out) {
      std::fprintf(stderr, "%s tier-1 diverged from tree-walk: %s vs %s\n",
                   R.Name.c_str(), runtimeErrorName(TR.Err),
                   runtimeErrorName(PR.Err));
      return 1;
    }

    // Re-measure tier 0 here, interleaved with tier 1 and keeping the
    // best of five rounds per side: the earlier tier-0 table ran
    // minutes ago under different cache/frequency conditions, noise only
    // ever adds time, and the ratio is what the acceptance gate checks.
    double T0Seconds = R.PrepSeconds, T1Seconds = 1e30;
    for (unsigned Round = 0, Rounds = Smoke ? 2 : 5; Round != Rounds;
         ++Round) {
      T0Seconds = std::min(
          T0Seconds, timePerRun(R.Reps, [&] {
            runPrep(*R.Prepared, *R.Program->Table);
          }));
      T1Seconds = std::min(
          T1Seconds,
          timePerRun(R.Reps, [&] { runPrep(*T1, *R.Program->Table); }));
    }
    double Speedup = T0Seconds / T1Seconds;
    T1LogSum += std::log(Speedup);
    if (CallHeavy) {
      CallLogSum += std::log(Speedup);
      ++CallCount;
    }
    if (Speedup < MinSpeedup) {
      MinSpeedup = Speedup;
      MinProgram = R.Name;
    }
    std::printf("%-20s | %10.1f %10.1f | %6.2fx  %s%s\n", R.Name.c_str(),
                T0Seconds * 1e6, T1Seconds * 1e6, Speedup,
                CallHeavy ? "[call-heavy] " : "",
                renderTierSummary(*T1).c_str());
    Json.add("tier1_speedup/" + R.Name, Speedup, "x");

    for (unsigned Op = static_cast<unsigned>(XOp::BrCmpLtI);
         Op <= static_cast<unsigned>(XOp::MoveJmp); ++Op)
      FusedTotal += T1->countOp(static_cast<XOp>(Op));
    // Monomorphic sites are counted from the lowering-time
    // classification, not from DispatchMono opcodes: on this
    // whole-program corpus closed-world devirtualization turns nearly
    // every single-receiver site into a guard-free CallUnit, so the
    // opcode count alone reads 0 (the old tier1_mono_sites artifact).
    MonoTotal += T1->Tiering.MonoLoweredDirect;
    MonoGuardedTotal += T1->Tiering.MonoICs;
    PolyTotal += T1->Tiering.PolyICs;
    DevirtTotal += T1->Tiering.DevirtCalls;
    FusionGuardedTotal += T1->Tiering.FusionGuardedUnits;
    ICHitsTotal += T1->ICHits.load();
    ICMissesTotal += T1->ICMisses.load();
    R.Tier1 = std::move(T1); // The inlining section below re-times it.
  }
  double T1Geomean = std::exp(T1LogSum / Runs.size());
  double CallGeomean =
      CallCount ? std::exp(CallLogSum / CallCount) : 1.0;
  std::printf("---------------------+-----------------------+--------\n");
  std::printf("%-20s | %21s | %6.2fx\n", "GEOMEAN (all)", "", T1Geomean);
  std::printf("%-20s | %21s | %6.2fx  (acceptance: >= 1.25x, %u programs)\n",
              "GEOMEAN (call-heavy)", "", CallGeomean, CallCount);
  std::printf("%-20s | %21s | %6.2fx  (%s; acceptance: >= 0.95x)\n",
              "MIN (per-unit gate)", "", MinSpeedup, MinProgram.c_str());
  std::printf("\nRe-quickening cost: %.2fms total; %llu mono (%llu guarded, "
              "rest devirted) + %llu poly sites, %llu devirt calls, "
              "%llu fused insts, %llu fusion-guarded units; %llu IC hits / "
              "%llu misses during timing\n",
              ReprepareSeconds * 1e3,
              static_cast<unsigned long long>(MonoTotal),
              static_cast<unsigned long long>(MonoGuardedTotal),
              static_cast<unsigned long long>(PolyTotal),
              static_cast<unsigned long long>(DevirtTotal),
              static_cast<unsigned long long>(FusedTotal),
              static_cast<unsigned long long>(FusionGuardedTotal),
              static_cast<unsigned long long>(ICHitsTotal),
              static_cast<unsigned long long>(ICMissesTotal));

  // Speculative inlining isolated: the same profiled modules
  // re-quickened with splicing disabled are the pre-inlining tier 1;
  // the section above already built (and parity-checked) the spliced
  // forms under the default budget. Both sides interleaved at the same
  // rep counts, best of five rounds, so the ratio charges inlining
  // alone — not drift in cache or frequency state.
  std::printf("\nTier-1 speculative inlining (spliced vs call-preserving "
              "tier 1):\n");
  std::printf("%-20s | %10s %10s | %7s\n", "Program", "off us", "on us",
              "speedup");
  std::printf("---------------------+-----------------------+--------\n");
  double InlLogSum = 0, InlCallLogSum = 0;
  unsigned InlCallCount = 0;
  uint64_t InlinedSitesTotal = 0, InlineGuardMissTotal = 0;
  double InlMinSpeedup = 1e30;
  std::string InlMinProgram;
  for (ProgramRun &R : Runs) {
    PrepareOptions Off;
    Off.NoInlining = true;
    auto T1Off = reprepareModule(*R.Prepared, Off);
    if (!T1Off) {
      std::fprintf(stderr, "%s failed to re-quicken (NoInlining)\n",
                   R.Name.c_str());
      return 1;
    }
    std::string TreeOut, OffOut;
    ExecResult TR = runTree(*R.Program->TSA, *R.Program->Table, &TreeOut);
    ExecResult PR = runPrep(*T1Off, *R.Program->Table, &OffOut);
    if (TR.Err != PR.Err || TreeOut != OffOut) {
      std::fprintf(stderr,
                   "%s inline-free tier 1 diverged from tree-walk: "
                   "%s vs %s\n",
                   R.Name.c_str(), runtimeErrorName(TR.Err),
                   runtimeErrorName(PR.Err));
      return 1;
    }

    const uint32_t Spliced = R.Tier1->Tiering.InlinedSites;
    // Call-heavy membership is decided by flattened-call density, and
    // both inputs are deterministic: spliced-site profile heat divided
    // by the tier-0 runs that accumulated it gives dynamic calls per
    // run, and one fuel-metered execution of the splice-free tier 1
    // gives instructions per run. Short programs are floored out —
    // under ~100k instructions a run is mostly VM setup, which splicing
    // cannot touch, so the ratio would misclassify them.
    const uint64_t MeterFuel = 1'000'000'000;
    uint64_t InstsPerRun = 0;
    {
      Runtime RT(*R.Program->Table, MeterFuel);
      TSAExec Exec(*T1Off, RT);
      Exec.runMain();
      InstsPerRun = MeterFuel - RT.fuelLeft();
    }
    double HeatPerRun =
        static_cast<double>(R.Tier1->Tiering.InlinedHeat) /
        static_cast<double>(R.Tier0Runs ? R.Tier0Runs : 1);
    double CallsPerKilo =
        InstsPerRun ? 1e3 * HeatPerRun / static_cast<double>(InstsPerRun)
                    : 0.0;
    const bool InlCallHeavy =
        CallsPerKilo * 16 >= 1000 && InstsPerRun >= 100000;
    double OffSeconds = 1e30, OnSeconds = 1e30;
    for (unsigned Round = 0, Rounds = Smoke ? 2 : 5; Round != Rounds;
         ++Round) {
      OffSeconds = std::min(
          OffSeconds,
          timePerRun(R.Reps, [&] { runPrep(*T1Off, *R.Program->Table); }));
      OnSeconds = std::min(
          OnSeconds, timePerRun(R.Reps, [&] {
            runPrep(*R.Tier1, *R.Program->Table);
          }));
    }
    double Speedup = OffSeconds / OnSeconds;
    InlLogSum += std::log(Speedup);
    if (InlCallHeavy) {
      InlCallLogSum += std::log(Speedup);
      ++InlCallCount;
    }
    if (Speedup < InlMinSpeedup) {
      InlMinSpeedup = Speedup;
      InlMinProgram = R.Name;
    }
    std::printf("%-20s | %10.1f %10.1f | %6.2fx  %s%u site%s spliced, "
                "%.0f flattened calls/kinst\n",
                R.Name.c_str(), OffSeconds * 1e6, OnSeconds * 1e6, Speedup,
                InlCallHeavy ? "[call-heavy] " : "", Spliced,
                Spliced == 1 ? "" : "s", CallsPerKilo);
    Json.add("inline_speedup/" + R.Name, Speedup, "x");
    InlinedSitesTotal += Spliced;
    InlineGuardMissTotal += R.Tier1->InlineGuardMisses.load();
  }
  double InlGeomean = std::exp(InlLogSum / Runs.size());
  double InlCallGeomean =
      InlCallCount ? std::exp(InlCallLogSum / InlCallCount) : 1.0;
  std::printf("---------------------+-----------------------+--------\n");
  std::printf("%-20s | %21s | %6.2fx\n", "GEOMEAN (all)", "", InlGeomean);
  std::printf("%-20s | %21s | %6.2fx  (acceptance: >= 1.15x, %u programs)\n",
              "GEOMEAN (call-heavy)", "", InlCallGeomean, InlCallCount);
  std::printf("%-20s | %21s | %6.2fx  (%s)\n", "MIN", "", InlMinSpeedup,
              InlMinProgram.c_str());
  std::printf("\nSplices: %llu sites inlined corpus-wide; %llu receiver-"
              "guard misses during timing (misses fall back to the "
              "preserved DispatchMono, no deoptimization)\n",
              static_cast<unsigned long long>(InlinedSitesTotal),
              static_cast<unsigned long long>(InlineGuardMissTotal));

  Json.add("geomean_speedup", Geomean, "x");
  Json.add("prepare_ms_total", PrepareSeconds * 1e3, "ms");
  Json.add("prepared_insts_total", static_cast<double>(TotalCode), "insts");
  Json.add("tier1_geomean", T1Geomean, "x");
  Json.add("tier1_geomean_callheavy", CallGeomean, "x");
  Json.add("tier1_callheavy_programs", static_cast<double>(CallCount), "");
  Json.add("reprepare_ms_total", ReprepareSeconds * 1e3, "ms");
  Json.add("tier1_mono_sites", static_cast<double>(MonoTotal), "sites");
  Json.add("tier1_mono_guarded", static_cast<double>(MonoGuardedTotal),
           "sites");
  Json.add("tier1_poly_sites", static_cast<double>(PolyTotal), "sites");
  Json.add("tier1_devirt_sites", static_cast<double>(DevirtTotal), "sites");
  Json.add("tier1_fused_insts", static_cast<double>(FusedTotal), "insts");
  Json.add("tier1_fusion_guarded_units",
           static_cast<double>(FusionGuardedTotal), "units");
  Json.add("tier1_min_speedup", MinSpeedup, "x");
  Json.add("tier1_ic_hits", static_cast<double>(ICHitsTotal), "");
  Json.add("tier1_ic_misses", static_cast<double>(ICMissesTotal), "");
  Json.add("inline_geomean", InlGeomean, "x");
  Json.add("inline_geomean_callheavy", InlCallGeomean, "x");
  Json.add("inline_callheavy_programs",
           static_cast<double>(InlCallCount), "");
  Json.add("inline_min_speedup", InlMinSpeedup, "x");
  Json.add("inline_sites_total", static_cast<double>(InlinedSitesTotal),
           "sites");
  Json.add("inline_guard_misses",
           static_cast<double>(InlineGuardMissTotal), "");
  Json.write();

  if (Smoke) {
    std::printf("\n[smoke] gates reported, not enforced\n");
    return 0;
  }
  bool Failed = false;
  if (Geomean < 3.0) {
    std::fprintf(stderr, "FAIL: geomean speedup %.2fx below 3x target\n",
                 Geomean);
    Failed = true;
  }
  if (CallCount && CallGeomean < 1.25) {
    std::fprintf(stderr,
                 "FAIL: tier-1 call-heavy geomean %.2fx below 1.25x target\n",
                 CallGeomean);
    Failed = true;
  }
  // Per-unit regression gate: tier 1 must not make any single program
  // materially slower than its own tier-0 form (the fusion guard in
  // prepareModule is the mechanism that keeps this true).
  if (MinSpeedup < 0.95) {
    std::fprintf(stderr,
                 "FAIL: tier-1 min speedup %.2fx (%s) below 0.95x gate\n",
                 MinSpeedup, MinProgram.c_str());
    Failed = true;
  }
  // Inlining gate: over the call-heavy subset (>= 1 flattened dynamic
  // call per 16 executed instructions, >= 100k instructions per run),
  // the spliced tier 1 must beat the call-preserving tier 1 by
  // >= 1.15x. An empty subset also fails: the corpus contains programs
  // built to qualify, so losing them means the splicer regressed.
  if (!InlCallCount || InlCallGeomean < 1.15) {
    std::fprintf(stderr,
                 "FAIL: inlining call-heavy geomean %.2fx below 1.15x "
                 "target (%u programs)\n",
                 InlCallGeomean, InlCallCount);
    Failed = true;
  }
  return Failed ? 1 : 0;
}
