//===- bench/bench_ablation.cpp - Optimization attribution ----*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces §8's pass-attribution claims by running each optimization
/// configuration separately: the paper reports constant propagation worth
/// ~1-2% of program size, DCE ~3-7% of instructions (mostly phis), and
/// CSE 5-14%, plus the §7 claim that DCE removes 31% of phi instructions
/// on average. Also measures the §8-outlook field-sensitive Mem variant
/// and the eager-vs-pruned phi construction.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "ssagen/TSAGen.h"

#include <cstdio>

using namespace safetsa;

namespace {

struct Config {
  const char *Name;
  OptOptions Options;
};

unsigned instsUnder(const CorpusProgram &P, const OptOptions &Options,
                    unsigned *PhiBefore = nullptr,
                    unsigned *PhiAfter = nullptr) {
  auto C = compileMJ(P.Name, P.Source);
  if (!C->ok())
    std::exit(1);
  if (PhiBefore)
    *PhiBefore = C->TSA->countOpcode(Opcode::Phi);
  optimizeModule(*C->TSA, Options);
  if (PhiAfter)
    *PhiAfter = C->TSA->countOpcode(Opcode::Phi);
  return C->TSA->countInstructions();
}

} // namespace

int main() {
  OptOptions None;
  None.ConstantPropagation = false;
  None.CSE = false;
  None.DCE = false;
  None.CheckTransport = false;
  OptOptions OnlyCP = None;
  OnlyCP.ConstantPropagation = true;
  OptOptions OnlyDCE = None;
  OnlyDCE.DCE = true;
  OptOptions OnlyCSE = None;
  OnlyCSE.CSE = true;
  OptOptions All; // Defaults: CP + CSE + DCE + check transport.
  OptOptions AllField = All;
  AllField.FieldSensitiveMem = true;

  const Config Configs[] = {
      {"baseline (none)", None}, {"CP only", OnlyCP},
      {"DCE only", OnlyDCE},     {"CSE only", OnlyCSE},
      {"full pipeline", All},       {"all + field-sens Mem", AllField},
  };

  std::printf("Optimization ablation (instruction counts after each "
              "configuration)\n\n");
  std::printf("%-20s", "Program");
  for (const Config &C : Configs)
    std::printf(" | %19s", C.Name);
  std::printf("\n");

  std::vector<unsigned> Totals(std::size(Configs), 0);
  unsigned PhiB = 0, PhiA = 0;
  for (const CorpusProgram &P : getCorpus()) {
    std::printf("%-20s", P.Name);
    for (size_t I = 0; I != std::size(Configs); ++I) {
      unsigned PB = 0, PA = 0;
      unsigned N = instsUnder(P, Configs[I].Options, &PB, &PA);
      if (std::string(Configs[I].Name) == "DCE only") {
        PhiB += PB;
        PhiA += PA;
      }
      Totals[I] += N;
      std::printf(" | %19u", N);
    }
    std::printf("\n");
  }
  std::printf("%-20s", "TOTAL");
  for (unsigned T : Totals)
    std::printf(" | %19u", T);
  std::printf("\n\nAttribution vs baseline (paper §8: CP ~1-2%%, DCE "
              "~3-7%%, CSE ~5-14%%):\n");
  for (size_t I = 1; I != std::size(Configs); ++I)
    std::printf("  %-22s: -%d%%\n", Configs[I].Name,
                -deltaPercent(Totals[0], Totals[I]));
  std::printf("\nDCE phi elimination (paper §7: 31%% average): %u -> %u "
              "(%d%%)\n",
              PhiB, PhiA, deltaPercent(PhiB, PhiA));

  // Eager vs pruned construction: how many phis the naive single-pass
  // construction inserts vs the improved one.
  unsigned EagerPhis = 0, PrunedPhis = 0;
  for (const CorpusProgram &P : getCorpus()) {
    auto C = compileMJ(P.Name, P.Source);
    EagerPhis += C->TSA->countOpcode(Opcode::Phi);
    // Recompile with pruned phis.
    auto C2 = compileMJ(P.Name, P.Source, /*EmitTSA=*/false);
    TSAGenOptions G;
    G.EagerPhis = false;
    TSAGenerator Gen(C2->Types, *C2->Table, G);
    auto Pruned = Gen.generate(C2->AST);
    PrunedPhis += Pruned->countOpcode(Opcode::Phi);
  }
  std::printf("\nConstruction ablation (§7 'improved handling of return, "
              "continue and break'):\n");
  std::printf("  eager single-pass phis : %u\n", EagerPhis);
  std::printf("  pruned construction    : %u (%d%%)\n", PrunedPhis,
              deltaPercent(EagerPhis, PrunedPhis));

  BenchJson Json("ablation");
  for (size_t I = 0; I != std::size(Configs); ++I)
    Json.add(std::string("total_insts/") + Configs[I].Name, Totals[I],
             "insts");
  Json.add("dce_phis_before", PhiB, "insts");
  Json.add("dce_phis_after", PhiA, "insts");
  Json.add("eager_phis", EagerPhis, "insts");
  Json.add("pruned_phis", PrunedPhis, "insts");
  Json.write();
  return 0;
}
