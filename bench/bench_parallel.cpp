//===- bench/bench_parallel.cpp - Batch throughput scaling ----*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Batch throughput of the parallel pipeline at 1/2/4/8 worker threads.
/// Two scopes:
///  - BM_BatchFullPipeline: compile -> encode -> decode -> verify per
///    unit, the whole producer+consumer round trip.
///  - BM_BatchEncodeVerify: the hot serving path only — modules are
///    pre-compiled outside the timed region; workers encode, decode, and
///    verify. This is the path a mobile-code server scales on.
/// Items/second is compilation units; compare across thread counts for
/// the scaling curve. (On a single-core host the curve is flat — the
/// pool still works, there is just no hardware to scale onto.)
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "driver/BatchCompiler.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

using namespace safetsa;

namespace {

/// Corpus replicated to give the pool enough units to spread.
constexpr int Replication = 4;

std::vector<BatchJob> replicatedJobs() {
  std::vector<BatchJob> Jobs;
  for (int R = 0; R != Replication; ++R)
    for (const CorpusProgram &P : getCorpus())
      Jobs.push_back({P.Name, P.Source});
  return Jobs;
}

void BM_BatchFullPipeline(benchmark::State &State) {
  const std::vector<BatchJob> Jobs = replicatedJobs();
  BatchOptions Opts;
  Opts.Threads = static_cast<unsigned>(State.range(0));
  int64_t Units = 0;
  for (auto _ : State) {
    BatchCompiler BC(Opts);
    std::vector<BatchResult> Results = BC.run(Jobs);
    for (const BatchResult &R : Results)
      if (!R.ok())
        std::abort();
    Units += static_cast<int64_t>(Results.size());
    benchmark::DoNotOptimize(Results.data());
  }
  State.SetItemsProcessed(Units);
}
BENCHMARK(BM_BatchFullPipeline)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_BatchEncodeVerify(benchmark::State &State) {
  // Compile once, outside the timed region; each unit owns its module.
  std::vector<std::unique_ptr<CompiledProgram>> Compiled;
  for (int R = 0; R != Replication; ++R)
    for (const CorpusProgram &P : getCorpus()) {
      auto C = compileMJ(P.Name, P.Source);
      if (!C->ok())
        std::abort();
      Compiled.push_back(std::move(C));
    }

  const unsigned Threads = static_cast<unsigned>(State.range(0));
  int64_t Units = 0;
  for (auto _ : State) {
    ThreadPool Pool(Threads);
    for (auto &C : Compiled)
      Pool.submit([&C] {
        std::vector<uint8_t> Wire = encodeModule(*C->TSA);
        std::string Err;
        auto Unit = decodeModule(Wire, &Err);
        if (!Unit || !counterCheckModule(*Unit->Module))
          std::abort();
        benchmark::DoNotOptimize(Unit->Module.get());
      });
    Pool.wait();
    Units += static_cast<int64_t>(Compiled.size());
  }
  State.SetItemsProcessed(Units);
}
BENCHMARK(BM_BatchEncodeVerify)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace

#include "bench/GBenchJson.h"
SAFETSA_BENCHMARK_MAIN(parallel)
