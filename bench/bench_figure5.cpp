//===- bench/bench_figure5.cpp - Paper Figure 5 reproduction --*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 5: per benchmark program, file sizes in bytes and
/// instruction counts for Java-style bytecode vs SafeTSA vs optimized
/// SafeTSA. The paper's shape claims: SafeTSA needs far fewer
/// instructions than stack bytecode (mostly < 40% in the paper's corpus);
/// optimization removes >10% more on check- and expression-heavy classes;
/// encoded SafeTSA files are no larger than class files despite carrying
/// explicit checks.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <cstdio>

using namespace safetsa;

int main() {
  std::printf("Figure 5: SafeTSA class files compared to Java class files\n");
  std::printf("(sizes in bytes; instruction counts exclude constant/param "
              "preloads, as in the paper)\n\n");
  std::printf("%-20s | %9s %9s %9s | %8s %8s %8s\n", "Program",
              "BC bytes", "TSA byte", "TSAopt b", "BC insts", "TSA inst",
              "TSAopt");
  std::printf("---------------------+-------------------------------+------"
              "---------------------\n");

  size_t TotBCB = 0, TotTB = 0, TotTOB = 0;
  unsigned TotBCI = 0, TotTI = 0, TotTOI = 0;
  for (const CorpusProgram &P : getCorpus()) {
    ProgramMetrics M = measureProgram(P);
    std::printf("%-20s | %9zu %9zu %9zu | %8u %8u %8u\n", M.Name.c_str(),
                M.BytecodeBytes, M.TSABytes, M.TSAOptBytes, M.BytecodeInsts,
                M.TSAInsts, M.TSAOptInsts);
    TotBCB += M.BytecodeBytes;
    TotTB += M.TSABytes;
    TotTOB += M.TSAOptBytes;
    TotBCI += M.BytecodeInsts;
    TotTI += M.TSAInsts;
    TotTOI += M.TSAOptInsts;
  }
  std::printf("---------------------+-------------------------------+------"
              "---------------------\n");
  std::printf("%-20s | %9zu %9zu %9zu | %8u %8u %8u\n", "TOTAL", TotBCB,
              TotTB, TotTOB, TotBCI, TotTI, TotTOI);
  std::printf("\nShape checks (paper claims):\n");
  std::printf("  SafeTSA instructions / bytecode instructions : %3u%%  "
              "(paper: mostly < 100%%, often < 40%%)\n",
              static_cast<unsigned>(100.0 * TotTI / TotBCI));
  std::printf("  optimized / unoptimized SafeTSA instructions : %3u%%  "
              "(paper: >10%% reduction in most cases)\n",
              static_cast<unsigned>(100.0 * TotTOI / TotTI));
  std::printf("  SafeTSA bytes / bytecode bytes               : %3u%%  "
              "(paper: usually smaller)\n",
              static_cast<unsigned>(100.0 * TotTB / TotBCB));

  BenchJson Json("figure5");
  Json.add("total_bytecode_bytes", static_cast<double>(TotBCB), "bytes");
  Json.add("total_tsa_bytes", static_cast<double>(TotTB), "bytes");
  Json.add("total_tsa_opt_bytes", static_cast<double>(TotTOB), "bytes");
  Json.add("total_bytecode_insts", TotBCI, "insts");
  Json.add("total_tsa_insts", TotTI, "insts");
  Json.add("total_tsa_opt_insts", TotTOI, "insts");
  Json.add("tsa_vs_bytecode_insts", 100.0 * TotTI / TotBCI, "%");
  Json.add("opt_vs_unopt_insts", 100.0 * TotTOI / TotTI, "%");
  Json.add("tsa_vs_bytecode_bytes", 100.0 * TotTB / TotBCB, "%");
  Json.write();
  return 0;
}
