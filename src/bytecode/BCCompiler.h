//===- bytecode/BCCompiler.h - AST to stack bytecode ----------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles the type-checked MJ AST to the baseline stack bytecode, in the
/// style of javac: conditions compile to conditional branches, comparisons
/// used as values expand to branch/push patterns, `i++` on int locals uses
/// iinc, and assignments-as-expressions use dup/dup_x patterns. This gives
/// Figure 5 a realistic bytecode baseline rather than a strawman.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_BYTECODE_BCCOMPILER_H
#define SAFETSA_BYTECODE_BCCOMPILER_H

#include "ast/AST.h"
#include "bytecode/Bytecode.h"

#include <memory>

namespace safetsa {

/// Compiles a sema-checked program to a BCModule (with resolution side
/// tables filled for direct interpretation).
class BCCompiler {
public:
  BCCompiler(TypeContext &Types, ClassTable &Table)
      : Types(Types), Table(Table) {}

  std::unique_ptr<BCModule> compile(const Program &P);

private:
  TypeContext &Types;
  ClassTable &Table;
};

} // namespace safetsa

#endif // SAFETSA_BYTECODE_BCCOMPILER_H
