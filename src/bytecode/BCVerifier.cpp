//===- bytecode/BCVerifier.cpp --------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bytecode/BCVerifier.h"

#include <deque>
#include <map>
#include <sstream>

using namespace safetsa;

void BCVerifier::error(const BCMethod &M, size_t PC, const std::string &Msg) {
  std::ostringstream OS;
  const std::string &Name =
      M.NameIndex < Module.Pool.size() ? Module.Pool[M.NameIndex].Str
                                       : "<method>";
  OS << Name << " @" << PC << ": " << Msg;
  Errors.push_back(OS.str());
}

BCVerifier::AType BCVerifier::descKind(char C) {
  switch (C) {
  case 'I':
  case 'Z':
  case 'C':
    return AType::Int;
  case 'D':
    return AType::Double;
  default:
    return AType::Ref;
  }
}

bool BCVerifier::mergeInto(VState &Dst, const VState &Src) {
  if (!Dst.Reached) {
    Dst = Src;
    Dst.Reached = true;
    return true;
  }
  bool Changed = false;
  if (Dst.Stack.size() != Src.Stack.size()) {
    // Inconsistent stack depths are a hard error; poison the state by
    // clearing it so the caller reports once.
    return false;
  }
  for (size_t I = 0; I != Dst.Stack.size(); ++I)
    if (Dst.Stack[I] != Src.Stack[I] && Dst.Stack[I] != AType::Top) {
      Dst.Stack[I] = AType::Top;
      Changed = true;
    }
  for (size_t I = 0; I != Dst.Locals.size(); ++I)
    if (Dst.Locals[I] != Src.Locals[I] && Dst.Locals[I] != AType::Top) {
      Dst.Locals[I] = AType::Top;
      Changed = true;
    }
  return Changed;
}

bool BCVerifier::verify() {
  bool Ok = true;
  for (const BCClass &C : Module.Classes)
    for (const BCMethod &M : C.Methods)
      Ok &= verifyMethod(C, M);
  return Ok;
}

bool BCVerifier::verifyMethod(const BCClass &Class, const BCMethod &M) {
  size_t ErrorsBefore = Errors.size();
  const std::vector<uint8_t> &Code = M.Code;

  // Pass 1: instruction boundaries.
  std::map<size_t, unsigned> Boundaries; // offset -> index
  std::vector<size_t> Offsets;
  for (size_t PC = 0; PC < Code.size();) {
    uint8_t Raw = Code[PC];
    if (Raw > static_cast<uint8_t>(BC::Return)) {
      error(M, PC, "invalid opcode");
      return false;
    }
    BC Op = static_cast<BC>(Raw);
    unsigned Width = bcOperandWidth(Op);
    if (PC + 1 + Width > Code.size()) {
      error(M, PC, "truncated instruction");
      return false;
    }
    Boundaries[PC] = static_cast<unsigned>(Offsets.size());
    Offsets.push_back(PC);
    PC += 1 + Width;
  }
  if (Offsets.empty()) {
    error(M, 0, "empty code array");
    return false;
  }

  // Method descriptor -> initial locals.
  const std::string &Desc =
      M.DescIndex < Module.Pool.size() ? Module.Pool[M.DescIndex].Str : "()V";
  std::vector<AType> Params;
  if (!M.isStatic())
    Params.push_back(AType::Ref); // this
  for (size_t I = 1; I < Desc.size() && Desc[I] != ')';) {
    Params.push_back(descKind(Desc[I]));
    if (Desc[I] == '[') {
      while (I < Desc.size() && Desc[I] == '[')
        ++I;
      if (I < Desc.size() && Desc[I] == 'L')
        while (I < Desc.size() && Desc[I] != ';')
          ++I;
      ++I;
    } else if (Desc[I] == 'L') {
      while (I < Desc.size() && Desc[I] != ';')
        ++I;
      ++I;
    } else {
      ++I;
    }
  }
  char RetDesc = 'V';
  if (auto P = Desc.find(')'); P != std::string::npos && P + 1 < Desc.size())
    RetDesc = Desc[P + 1];

  if (Params.size() > M.MaxLocals) {
    error(M, 0, "parameters exceed max_locals");
    return false;
  }

  std::vector<VState> States(Offsets.size());
  VState Entry;
  Entry.Reached = true;
  Entry.Locals.assign(M.MaxLocals, AType::Top);
  for (size_t I = 0; I != Params.size(); ++I)
    Entry.Locals[I] = Params[I];
  States[0] = Entry;

  std::deque<unsigned> Worklist;
  Worklist.push_back(0);
  std::vector<bool> InList(Offsets.size(), false);
  InList[0] = true;

  auto PoolKind = [&](uint16_t Idx,
                      PoolEntry::Kind K) -> const PoolEntry * {
    if (Idx == 0 || Idx >= Module.Pool.size())
      return nullptr;
    const PoolEntry &E = Module.Pool[Idx];
    return E.K == K ? &E : nullptr;
  };

  bool Failed = false;

  while (!Worklist.empty() && !Failed) {
    unsigned Idx = Worklist.front();
    Worklist.pop_front();
    InList[Idx] = false;
    ++Iterations;

    size_t PC = Offsets[Idx];
    BC Op = static_cast<BC>(Code[PC]);
    VState S = States[Idx];

    auto Fail = [&](const std::string &Msg) {
      error(M, PC, Msg);
      Failed = true;
    };
    auto Push = [&](AType T) {
      S.Stack.push_back(T);
      if (S.Stack.size() > M.MaxStack)
        Fail("operand stack exceeds max_stack");
    };
    auto PopAny = [&]() -> AType {
      if (S.Stack.empty()) {
        Fail("operand stack underflow");
        return AType::Top;
      }
      AType T = S.Stack.back();
      S.Stack.pop_back();
      return T;
    };
    auto Pop = [&](AType Want) {
      AType Got = PopAny();
      if (!Failed && Got != Want)
        Fail("operand type mismatch");
    };
    auto LocalIdx = [&](size_t At) -> unsigned {
      unsigned Slot = Code[At];
      if (Slot >= M.MaxLocals) {
        Fail("local slot out of range");
        return 0;
      }
      return Slot;
    };
    auto U16At = [&](size_t At) {
      return static_cast<uint16_t>((Code[At] << 8) | Code[At + 1]);
    };

    bool FallThrough = true;
    int BranchTarget = -1;

    switch (Op) {
    case BC::Nop:
      break;
    case BC::AConstNull:
      Push(AType::Ref);
      break;
    case BC::IConst0:
    case BC::IConst1:
    case BC::BIPush:
    case BC::SIPush:
      Push(AType::Int);
      break;
    case BC::Ldc: {
      const PoolEntry *E = nullptr;
      uint16_t PIdx = U16At(PC + 1);
      if (PIdx != 0 && PIdx < Module.Pool.size())
        E = &Module.Pool[PIdx];
      if (!E)
        Fail("ldc references a bad pool entry");
      else if (E->K == PoolEntry::Kind::Int)
        Push(AType::Int);
      else if (E->K == PoolEntry::Kind::Double)
        Push(AType::Double);
      else if (E->K == PoolEntry::Kind::StrChars)
        Push(AType::Ref);
      else
        Fail("ldc of a non-constant entry");
      break;
    }
    case BC::ILoad: {
      unsigned Slot = LocalIdx(PC + 1);
      if (!Failed && S.Locals[Slot] != AType::Int)
        Fail("iload of a non-int local");
      Push(AType::Int);
      break;
    }
    case BC::DLoad: {
      unsigned Slot = LocalIdx(PC + 1);
      if (!Failed && S.Locals[Slot] != AType::Double)
        Fail("dload of a non-double local");
      Push(AType::Double);
      break;
    }
    case BC::ALoad: {
      unsigned Slot = LocalIdx(PC + 1);
      if (!Failed && S.Locals[Slot] != AType::Ref)
        Fail("aload of a non-reference local");
      Push(AType::Ref);
      break;
    }
    case BC::IStore: {
      Pop(AType::Int);
      unsigned Slot = LocalIdx(PC + 1);
      if (!Failed)
        S.Locals[Slot] = AType::Int;
      break;
    }
    case BC::DStore: {
      Pop(AType::Double);
      unsigned Slot = LocalIdx(PC + 1);
      if (!Failed)
        S.Locals[Slot] = AType::Double;
      break;
    }
    case BC::AStore: {
      Pop(AType::Ref);
      unsigned Slot = LocalIdx(PC + 1);
      if (!Failed)
        S.Locals[Slot] = AType::Ref;
      break;
    }
    case BC::IInc: {
      unsigned Slot = LocalIdx(PC + 1);
      if (!Failed && S.Locals[Slot] != AType::Int)
        Fail("iinc of a non-int local");
      break;
    }
    case BC::Pop:
      PopAny();
      break;
    case BC::Dup: {
      AType A = PopAny();
      Push(A);
      Push(A);
      break;
    }
    case BC::DupX1: {
      AType A = PopAny(), B = PopAny();
      Push(A);
      Push(B);
      Push(A);
      break;
    }
    case BC::DupX2: {
      AType A = PopAny(), B = PopAny(), C = PopAny();
      Push(A);
      Push(C);
      Push(B);
      Push(A);
      break;
    }
    case BC::Dup2: {
      AType A = PopAny(), B = PopAny();
      Push(B);
      Push(A);
      Push(B);
      Push(A);
      break;
    }
    case BC::Swap: {
      AType A = PopAny(), B = PopAny();
      Push(A);
      Push(B);
      break;
    }
    case BC::IAdd:
    case BC::ISub:
    case BC::IMul:
    case BC::IDiv:
    case BC::IRem:
    case BC::IAnd:
    case BC::IOr:
    case BC::IXor:
    case BC::IShl:
    case BC::IShr:
      Pop(AType::Int);
      Pop(AType::Int);
      Push(AType::Int);
      break;
    case BC::INeg:
      Pop(AType::Int);
      Push(AType::Int);
      break;
    case BC::DAdd:
    case BC::DSub:
    case BC::DMul:
    case BC::DDiv:
      Pop(AType::Double);
      Pop(AType::Double);
      Push(AType::Double);
      break;
    case BC::DNeg:
      Pop(AType::Double);
      Push(AType::Double);
      break;
    case BC::DCmpL:
    case BC::DCmpG:
      Pop(AType::Double);
      Pop(AType::Double);
      Push(AType::Int);
      break;
    case BC::I2D:
      Pop(AType::Int);
      Push(AType::Double);
      break;
    case BC::D2I:
      Pop(AType::Double);
      Push(AType::Int);
      break;
    case BC::I2C:
      Pop(AType::Int);
      Push(AType::Int);
      break;
    case BC::Goto:
      FallThrough = false;
      BranchTarget = static_cast<int>(PC) +
                     static_cast<int16_t>(U16At(PC + 1));
      break;
    case BC::IfEq:
    case BC::IfNe:
    case BC::IfLt:
    case BC::IfGe:
    case BC::IfGt:
    case BC::IfLe:
      Pop(AType::Int);
      BranchTarget = static_cast<int>(PC) +
                     static_cast<int16_t>(U16At(PC + 1));
      break;
    case BC::IfICmpEq:
    case BC::IfICmpNe:
    case BC::IfICmpLt:
    case BC::IfICmpGe:
    case BC::IfICmpGt:
    case BC::IfICmpLe:
      Pop(AType::Int);
      Pop(AType::Int);
      BranchTarget = static_cast<int>(PC) +
                     static_cast<int16_t>(U16At(PC + 1));
      break;
    case BC::IfACmpEq:
    case BC::IfACmpNe:
      Pop(AType::Ref);
      Pop(AType::Ref);
      BranchTarget = static_cast<int>(PC) +
                     static_cast<int16_t>(U16At(PC + 1));
      break;
    case BC::IfNull:
    case BC::IfNonNull:
      Pop(AType::Ref);
      BranchTarget = static_cast<int>(PC) +
                     static_cast<int16_t>(U16At(PC + 1));
      break;
    case BC::GetField: {
      const PoolEntry *E = PoolKind(U16At(PC + 1), PoolEntry::Kind::FieldRef);
      if (!E) {
        Fail("getfield references a bad pool entry");
        break;
      }
      Pop(AType::Ref);
      Push(descKind(Module.Pool[E->DescIndex].Str[0]));
      break;
    }
    case BC::PutField: {
      const PoolEntry *E = PoolKind(U16At(PC + 1), PoolEntry::Kind::FieldRef);
      if (!E) {
        Fail("putfield references a bad pool entry");
        break;
      }
      Pop(descKind(Module.Pool[E->DescIndex].Str[0]));
      Pop(AType::Ref);
      break;
    }
    case BC::GetStatic: {
      const PoolEntry *E = PoolKind(U16At(PC + 1), PoolEntry::Kind::FieldRef);
      if (!E) {
        Fail("getstatic references a bad pool entry");
        break;
      }
      Push(descKind(Module.Pool[E->DescIndex].Str[0]));
      break;
    }
    case BC::PutStatic: {
      const PoolEntry *E = PoolKind(U16At(PC + 1), PoolEntry::Kind::FieldRef);
      if (!E) {
        Fail("putstatic references a bad pool entry");
        break;
      }
      Pop(descKind(Module.Pool[E->DescIndex].Str[0]));
      break;
    }
    case BC::InvokeVirtual:
    case BC::InvokeStatic:
    case BC::InvokeSpecial: {
      const PoolEntry *E =
          PoolKind(U16At(PC + 1), PoolEntry::Kind::MethodRef);
      if (!E) {
        Fail("invoke references a bad pool entry");
        break;
      }
      const std::string &MDesc = Module.Pool[E->DescIndex].Str;
      std::vector<AType> ArgKinds;
      for (size_t I = 1; I < MDesc.size() && MDesc[I] != ')';) {
        ArgKinds.push_back(descKind(MDesc[I]));
        if (MDesc[I] == '[') {
          while (I < MDesc.size() && MDesc[I] == '[')
            ++I;
          if (I < MDesc.size() && MDesc[I] == 'L')
            while (I < MDesc.size() && MDesc[I] != ';')
              ++I;
          ++I;
        } else if (MDesc[I] == 'L') {
          while (I < MDesc.size() && MDesc[I] != ';')
            ++I;
          ++I;
        } else {
          ++I;
        }
      }
      for (size_t I = ArgKinds.size(); I-- > 0;)
        Pop(ArgKinds[I]);
      if (Op != BC::InvokeStatic)
        Pop(AType::Ref);
      char Ret = 'V';
      if (auto P = MDesc.find(')');
          P != std::string::npos && P + 1 < MDesc.size())
        Ret = MDesc[P + 1];
      if (Ret != 'V')
        Push(descKind(Ret));
      break;
    }
    case BC::New: {
      if (!PoolKind(U16At(PC + 1), PoolEntry::Kind::Class)) {
        Fail("new references a bad pool entry");
        break;
      }
      Push(AType::Ref);
      break;
    }
    case BC::NewArray: {
      if (!PoolKind(U16At(PC + 1), PoolEntry::Kind::Class)) {
        Fail("newarray references a bad pool entry");
        break;
      }
      Pop(AType::Int);
      Push(AType::Ref);
      break;
    }
    case BC::ArrayLength:
      Pop(AType::Ref);
      Push(AType::Int);
      break;
    case BC::IALoad:
    case BC::CALoad:
    case BC::BALoad:
      Pop(AType::Int);
      Pop(AType::Ref);
      Push(AType::Int);
      break;
    case BC::DALoad:
      Pop(AType::Int);
      Pop(AType::Ref);
      Push(AType::Double);
      break;
    case BC::AALoad:
      Pop(AType::Int);
      Pop(AType::Ref);
      Push(AType::Ref);
      break;
    case BC::IAStore:
    case BC::CAStore:
    case BC::BAStore:
      Pop(AType::Int);
      Pop(AType::Int);
      Pop(AType::Ref);
      break;
    case BC::DAStore:
      Pop(AType::Double);
      Pop(AType::Int);
      Pop(AType::Ref);
      break;
    case BC::AAStore:
      Pop(AType::Ref);
      Pop(AType::Int);
      Pop(AType::Ref);
      break;
    case BC::CheckCast:
      if (!PoolKind(U16At(PC + 1), PoolEntry::Kind::Class)) {
        Fail("checkcast references a bad pool entry");
        break;
      }
      Pop(AType::Ref);
      Push(AType::Ref);
      break;
    case BC::InstanceOf:
      if (!PoolKind(U16At(PC + 1), PoolEntry::Kind::Class)) {
        Fail("instanceof references a bad pool entry");
        break;
      }
      Pop(AType::Ref);
      Push(AType::Int);
      break;
    case BC::IReturn:
      Pop(AType::Int);
      if (descKind(RetDesc) != AType::Int || RetDesc == 'V')
        Fail("ireturn from a non-int method");
      FallThrough = false;
      break;
    case BC::DReturn:
      Pop(AType::Double);
      if (RetDesc != 'D')
        Fail("dreturn from a non-double method");
      FallThrough = false;
      break;
    case BC::AReturn:
      Pop(AType::Ref);
      if (RetDesc == 'V' || descKind(RetDesc) != AType::Ref)
        Fail("areturn from a non-reference method");
      FallThrough = false;
      break;
    case BC::Return:
      if (RetDesc != 'V')
        Fail("void return from a value-returning method");
      FallThrough = false;
      break;
    }

    if (Failed)
      break;

    auto Propagate = [&](size_t Target) {
      auto It = Boundaries.find(Target);
      if (It == Boundaries.end()) {
        Fail("branch to a non-instruction boundary");
        return;
      }
      unsigned TIdx = It->second;
      VState Before = States[TIdx];
      bool WasReached = Before.Reached;
      if (WasReached && Before.Stack.size() != S.Stack.size()) {
        Fail("inconsistent stack depth at merge point");
        return;
      }
      if (mergeInto(States[TIdx], S) || !WasReached) {
        if (!InList[TIdx]) {
          Worklist.push_back(TIdx);
          InList[TIdx] = true;
        }
      }
    };

    if (BranchTarget >= 0)
      Propagate(static_cast<size_t>(BranchTarget));
    if (FallThrough) {
      size_t Next = PC + 1 + bcOperandWidth(Op);
      if (Next >= Code.size()) {
        Fail("control falls off the end of the code array");
      } else {
        Propagate(Next);
      }
    }

    // Exception edges: a fault may transfer from any covered instruction
    // to its handler with the operand stack cleared and the locals as
    // they were BEFORE the instruction (its effects never happened).
    for (const BCMethod::ExEntry &Entry : M.ExTable) {
      if (PC < Entry.Start || PC >= Entry.End)
        continue;
      auto HIt = Boundaries.find(Entry.Handler);
      if (HIt == Boundaries.end()) {
        Fail("exception handler is not an instruction boundary");
        break;
      }
      VState HandlerState = States[Idx]; // Pre-instruction state.
      HandlerState.Stack.clear();
      unsigned HIdx = HIt->second;
      bool WasReached = States[HIdx].Reached;
      if (WasReached && !States[HIdx].Stack.empty()) {
        Fail("exception handler entered with a non-empty stack");
        break;
      }
      if (mergeInto(States[HIdx], HandlerState) || !WasReached) {
        if (!InList[HIdx]) {
          Worklist.push_back(HIdx);
          InList[HIdx] = true;
        }
      }
    }
  }

  return Errors.size() == ErrorsBefore;
}
