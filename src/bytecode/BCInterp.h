//===- bytecode/BCInterp.h - Stack bytecode interpreter -------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interpreter for the baseline bytecode, running on the same Runtime as
/// the SafeTSA evaluator so differential tests compare identical heaps,
/// natives, and IO.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_BYTECODE_BCINTERP_H
#define SAFETSA_BYTECODE_BCINTERP_H

#include "bytecode/Bytecode.h"
#include "exec/Runtime.h"

namespace safetsa {

class BCInterpreter {
public:
  BCInterpreter(const BCModule &Module, Runtime &RT, TypeContext &Types)
      : Module(Module), RT(RT), Types(Types) {}

  /// Applies static-field initial values from the constant pool.
  void initializeStatics();

  ExecResult call(const MethodSymbol *Method, std::vector<Value> Args);

  /// Convenience: statics + `static main()`.
  ExecResult runMain();

private:
  Value execMethod(const BCMethod &M, std::vector<Value> Args, bool &Ok);
  Value poolValue(uint16_t Idx);

  bool fail(RuntimeError E) {
    if (Err == RuntimeError::None)
      Err = E;
    return false;
  }

  const BCModule &Module;
  Runtime &RT;
  TypeContext &Types;
  RuntimeError Err = RuntimeError::None;
  unsigned Depth = 0;
  static constexpr unsigned MaxDepth = 400;
};

} // namespace safetsa

#endif // SAFETSA_BYTECODE_BCINTERP_H
