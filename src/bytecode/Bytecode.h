//===- bytecode/Bytecode.h - Baseline stack bytecode ----------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline mobile-code substrate: a JVM-style stack bytecode with a
/// constant pool and class-file container, built from scratch so Figure 5
/// has both of its axes (instruction counts and file bytes) and so the
/// verification-cost comparison (dataflow fixpoint vs. SafeTSA counters)
/// can be measured on the same corpus. Opcode structure follows the JVM
/// closely (typed loads/stores, fused array ops like iaload carrying the
/// address computation + checks, conditional branches, invoke*), since
/// those properties are exactly what the paper contrasts against.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_BYTECODE_BYTECODE_H
#define SAFETSA_BYTECODE_BYTECODE_H

#include "sema/ClassTable.h"

#include <cstdint>
#include <string>
#include <vector>

namespace safetsa {

/// Bytecode opcodes. Operand widths are fixed per opcode (see
/// bcOperandWidth): pool indices are 2 bytes, local slots 1 byte, branch
/// offsets 2 bytes (signed, relative to the opcode's own offset).
enum class BC : uint8_t {
  Nop,
  // Constants.
  AConstNull,
  IConst0,
  IConst1,
  BIPush,    // 1-byte signed immediate.
  SIPush,    // 2-byte signed immediate.
  Ldc,       // 2-byte pool index (Int / Double / StrChars entries).
  // Locals (1-byte slot).
  ILoad,
  DLoad,
  ALoad,
  IStore,
  DStore,
  AStore,
  IInc,      // 1-byte slot + 1-byte signed delta.
  // Operand stack.
  Pop,
  Dup,
  DupX1,
  DupX2,
  Dup2,
  Swap,
  // Integer arithmetic (booleans and chars ride the int stack type).
  IAdd,
  ISub,
  IMul,
  IDiv,
  IRem,
  INeg,
  IAnd,
  IOr,
  IXor,
  IShl,
  IShr,
  // Double arithmetic.
  DAdd,
  DSub,
  DMul,
  DDiv,
  DNeg,
  DCmpL, // Pushes -1/0/1 (NaN -> -1), as the JVM's dcmpl.
  DCmpG, // Pushes -1/0/1 (NaN -> +1); used for < and <= like javac.
  // Conversions.
  I2D,
  D2I,
  I2C,
  // Branches (2-byte signed offset from the opcode).
  Goto,
  IfEq,
  IfNe,
  IfLt,
  IfGe,
  IfGt,
  IfLe,
  IfICmpEq,
  IfICmpNe,
  IfICmpLt,
  IfICmpGe,
  IfICmpGt,
  IfICmpLe,
  IfACmpEq,
  IfACmpNe,
  IfNull,
  IfNonNull,
  // Fields (2-byte pool index to FieldRef).
  GetField,
  PutField,
  GetStatic,
  PutStatic,
  // Calls (2-byte pool index to MethodRef).
  InvokeVirtual,
  InvokeStatic,
  InvokeSpecial, // Constructors.
  // Objects and arrays.
  New,         // 2-byte pool index to Class.
  NewArray,    // 2-byte pool index to a type descriptor (element type).
  ArrayLength, // Includes the implicit null check, like the JVM.
  IALoad,      // Fused: address computation + null + bounds + load.
  IAStore,
  DALoad,
  DAStore,
  AALoad,
  AAStore,
  CALoad,
  CAStore,
  BALoad,
  BAStore,
  CheckCast,  // 2-byte pool index.
  InstanceOf, // 2-byte pool index.
  // Returns.
  IReturn,
  DReturn,
  AReturn,
  Return
};

const char *bcName(BC Op);
/// Total width of the operand bytes following \p Op.
unsigned bcOperandWidth(BC Op);

/// Constant-pool entry.
struct PoolEntry {
  enum class Kind : uint8_t {
    Utf8,
    Int,
    Double,
    StrChars,  // char[] literal; Index names a Utf8 entry.
    Class,     // Index names a Utf8 entry (class name).
    FieldRef,  // ClassIndex + NameIndex + DescIndex.
    MethodRef  // ClassIndex + NameIndex + DescIndex.
  };
  Kind K = Kind::Utf8;
  std::string Str;
  int32_t IntVal = 0;
  double DblVal = 0.0;
  uint16_t Index = 0;      // Utf8 index for StrChars/Class.
  uint16_t ClassIndex = 0; // FieldRef/MethodRef.
  uint16_t NameIndex = 0;
  uint16_t DescIndex = 0;
};

/// One compiled method.
struct BCMethod {
  MethodSymbol *Symbol = nullptr; // Resolved (in-memory modules).
  uint16_t NameIndex = 0;
  uint16_t DescIndex = 0;
  uint8_t Flags = 0; // Bit 0: static; bit 1: constructor.
  uint16_t MaxStack = 0;
  uint16_t MaxLocals = 0;
  std::vector<uint8_t> Code;

  /// JVM-style exception table entry: faults at pc in [Start, End) jump
  /// to Handler with a cleared operand stack. Inner (nested) ranges come
  /// first, so the first covering entry is the innermost handler.
  struct ExEntry {
    uint16_t Start = 0;
    uint16_t End = 0;
    uint16_t Handler = 0;
  };
  std::vector<ExEntry> ExTable;

  bool isStatic() const { return Flags & 1; }

  /// Number of instructions (opcodes) in the code array.
  unsigned countInstructions() const;
};

/// One compiled class.
struct BCClass {
  ClassSymbol *Symbol = nullptr;
  uint16_t NameIndex = 0;
  uint16_t SuperIndex = 0; // Class pool entry; 0 for Object-rooted.
  struct Field {
    FieldSymbol *Symbol = nullptr; // Resolved (in-memory modules).
    uint16_t NameIndex = 0;
    uint16_t DescIndex = 0;
    uint8_t Flags = 0; // Bit 0: static.
    uint16_t InitPool = 0; // Constant-pool index of the static initializer
                           // value; 0 when none.
  };
  std::vector<Field> Fields;
  std::vector<BCMethod> Methods;
};

/// A compiled compilation unit (the bytecode analogue of TSAModule).
struct BCModule {
  ClassTable *Table = nullptr;
  std::vector<PoolEntry> Pool; // Entry 0 is reserved/unused.
  std::vector<BCClass> Classes;

  /// In-memory resolution side tables, indexed like Pool; filled by the
  /// compiler (and by the reader's linking step), consumed by the
  /// interpreter. Not part of the serialized form.
  std::vector<MethodSymbol *> PoolMethods;
  std::vector<FieldSymbol *> PoolFields;
  std::vector<Type *> PoolTypes;

  const PoolEntry &pool(uint16_t Idx) const {
    assert(Idx != 0 && Idx < Pool.size() && "bad constant-pool index");
    return Pool[Idx];
  }

  unsigned countInstructions() const {
    unsigned N = 0;
    for (const BCClass &C : Classes)
      for (const BCMethod &M : C.Methods)
        N += M.countInstructions();
    return N;
  }

  /// Looks up a compiled method body by symbol; null for natives.
  const BCMethod *findMethod(const MethodSymbol *Symbol) const {
    for (const BCClass &C : Classes)
      for (const BCMethod &M : C.Methods)
        if (M.Symbol == Symbol)
          return &M;
    return nullptr;
  }
};

/// JVM-style type descriptor for \p Ty ("I", "D", "Z", "C", "[I",
/// "LFoo;", "V" for void).
std::string typeDescriptor(const Type *Ty);

} // namespace safetsa

#endif // SAFETSA_BYTECODE_BYTECODE_H
