//===- bytecode/BCCompiler.cpp --------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bytecode/BCCompiler.h"

#include <unordered_map>

using namespace safetsa;

namespace {

/// Pool builder with interning.
class PoolBuilder {
public:
  explicit PoolBuilder(BCModule &M) : M(M) {
    M.Pool.emplace_back(); // Reserved entry 0.
    M.PoolMethods.push_back(nullptr);
    M.PoolFields.push_back(nullptr);
    M.PoolTypes.push_back(nullptr);
  }

  uint16_t utf8(const std::string &S) {
    auto It = Utf8Cache.find(S);
    if (It != Utf8Cache.end())
      return It->second;
    PoolEntry E;
    E.K = PoolEntry::Kind::Utf8;
    E.Str = S;
    uint16_t Idx = push(E, nullptr, nullptr, nullptr);
    Utf8Cache.emplace(S, Idx);
    return Idx;
  }

  uint16_t intConst(int32_t V) {
    auto It = IntCache.find(V);
    if (It != IntCache.end())
      return It->second;
    PoolEntry E;
    E.K = PoolEntry::Kind::Int;
    E.IntVal = V;
    uint16_t Idx = push(E, nullptr, nullptr, nullptr);
    IntCache.emplace(V, Idx);
    return Idx;
  }

  uint16_t dblConst(double V) {
    for (uint16_t I = 1; I < M.Pool.size(); ++I)
      if (M.Pool[I].K == PoolEntry::Kind::Double && M.Pool[I].DblVal == V)
        return I;
    PoolEntry E;
    E.K = PoolEntry::Kind::Double;
    E.DblVal = V;
    return push(E, nullptr, nullptr, nullptr);
  }

  uint16_t strChars(const std::string &S) {
    uint16_t U = utf8(S);
    for (uint16_t I = 1; I < M.Pool.size(); ++I)
      if (M.Pool[I].K == PoolEntry::Kind::StrChars && M.Pool[I].Index == U)
        return I;
    PoolEntry E;
    E.K = PoolEntry::Kind::StrChars;
    E.Index = U;
    return push(E, nullptr, nullptr, nullptr);
  }

  uint16_t classRef(const std::string &Name, Type *Resolved) {
    uint16_t U = utf8(Name);
    auto It = ClassCache.find(U);
    if (It != ClassCache.end())
      return It->second;
    PoolEntry E;
    E.K = PoolEntry::Kind::Class;
    E.Index = U;
    uint16_t Idx = push(E, nullptr, nullptr, Resolved);
    ClassCache.emplace(U, Idx);
    return Idx;
  }

  /// Class entry for an arbitrary (possibly array) type, keyed by its
  /// descriptor-ish name.
  uint16_t typeRef(Type *Ty) {
    return classRef(typeDescriptor(Ty), Ty);
  }

  uint16_t fieldRef(FieldSymbol *F) {
    auto It = FieldCache.find(F);
    if (It != FieldCache.end())
      return It->second;
    PoolEntry E;
    E.K = PoolEntry::Kind::FieldRef;
    E.ClassIndex = classRef(F->Owner->Name, nullptr);
    E.NameIndex = utf8(F->Name);
    E.DescIndex = utf8(typeDescriptor(F->Ty));
    uint16_t Idx = push(E, nullptr, F, nullptr);
    FieldCache.emplace(F, Idx);
    return Idx;
  }

  uint16_t methodRef(MethodSymbol *Mth) {
    auto It = MethodCache.find(Mth);
    if (It != MethodCache.end())
      return It->second;
    std::string Desc = "(";
    for (Type *T : Mth->ParamTys)
      Desc += typeDescriptor(T);
    Desc += ")" + typeDescriptor(Mth->RetTy);
    PoolEntry E;
    E.K = PoolEntry::Kind::MethodRef;
    E.ClassIndex = classRef(Mth->Owner->Name, nullptr);
    E.NameIndex = utf8(Mth->IsConstructor ? "<init>" : Mth->Name);
    E.DescIndex = utf8(Desc);
    uint16_t Idx = push(E, Mth, nullptr, nullptr);
    MethodCache.emplace(Mth, Idx);
    return Idx;
  }

private:
  uint16_t push(PoolEntry E, MethodSymbol *MS, FieldSymbol *FS, Type *Ty) {
    M.Pool.push_back(std::move(E));
    M.PoolMethods.push_back(MS);
    M.PoolFields.push_back(FS);
    M.PoolTypes.push_back(Ty);
    return static_cast<uint16_t>(M.Pool.size() - 1);
  }

  BCModule &M;
  std::unordered_map<std::string, uint16_t> Utf8Cache;
  std::unordered_map<int32_t, uint16_t> IntCache;
  std::unordered_map<uint16_t, uint16_t> ClassCache;
  std::unordered_map<const FieldSymbol *, uint16_t> FieldCache;
  std::unordered_map<const MethodSymbol *, uint16_t> MethodCache;
};

/// Per-method code generator.
class CodeGen {
public:
  CodeGen(TypeContext &Types, PoolBuilder &Pool, const MethodDecl &Decl,
          ClassSymbol *Class)
      : Types(Types), Pool(Pool), Decl(Decl), Class(Class) {}

  BCMethod run() {
    BCMethod Out;
    Out.Symbol = Decl.Symbol;
    bool IsInstance = !Decl.Symbol->IsStatic;
    Shift = IsInstance ? 1 : 0;
    NextTemp = static_cast<uint16_t>(Decl.Locals.size()) + Shift;
    MaxLocals = NextTemp;

    compileStmt(*Decl.Body);
    if (Decl.Symbol->RetTy->isVoid())
      emit(BC::Return, 0);

    Out.Flags = (Decl.Symbol->IsStatic ? 1 : 0) |
                (Decl.Symbol->IsConstructor ? 2 : 0);
    Out.MaxStack = MaxStack;
    Out.MaxLocals = MaxLocals;
    Out.Code = std::move(Code);
    Out.ExTable = std::move(ExTable);
    return Out;
  }

private:
  TypeContext &Types;
  PoolBuilder &Pool;
  const MethodDecl &Decl;
  ClassSymbol *Class;

  std::vector<uint8_t> Code;
  int CurStack = 0;
  uint16_t MaxStack = 0;
  uint16_t MaxLocals = 0;
  uint16_t NextTemp = 0;
  unsigned Shift = 0;

  struct Label {
    int Pos = -1;
    std::vector<size_t> Patches;
  };

  struct LoopLabels {
    Label *BreakL;
    Label *ContinueL;
  };
  std::vector<LoopLabels> Loops;
  std::vector<BCMethod::ExEntry> ExTable;

  //===--------------------------------------------------------------------===//
  // Emission
  //===--------------------------------------------------------------------===//

  void adjust(int Delta) {
    CurStack += Delta;
    assert(CurStack >= 0 && "operand stack underflow in compiler");
    if (CurStack > MaxStack)
      MaxStack = static_cast<uint16_t>(CurStack);
  }

  void emit(BC Op, int Delta) {
    Code.push_back(static_cast<uint8_t>(Op));
    adjust(Delta);
  }

  void emitU8(BC Op, uint8_t A, int Delta) {
    Code.push_back(static_cast<uint8_t>(Op));
    Code.push_back(A);
    adjust(Delta);
  }

  void emitU16(BC Op, uint16_t A, int Delta) {
    Code.push_back(static_cast<uint8_t>(Op));
    Code.push_back(static_cast<uint8_t>(A >> 8));
    Code.push_back(static_cast<uint8_t>(A & 0xff));
    adjust(Delta);
  }

  void emitIInc(uint8_t Slot, int8_t Delta) {
    Code.push_back(static_cast<uint8_t>(BC::IInc));
    Code.push_back(Slot);
    Code.push_back(static_cast<uint8_t>(Delta));
  }

  void bind(Label &L) {
    assert(L.Pos < 0 && "label bound twice");
    L.Pos = static_cast<int>(Code.size());
    for (size_t PatchAt : L.Patches) {
      int16_t Off = static_cast<int16_t>(L.Pos - (static_cast<int>(PatchAt) - 1));
      Code[PatchAt] = static_cast<uint8_t>(Off >> 8);
      Code[PatchAt + 1] = static_cast<uint8_t>(Off & 0xff);
    }
    L.Patches.clear();
  }

  void branch(BC Op, Label &L, int Delta) {
    size_t OpPos = Code.size();
    Code.push_back(static_cast<uint8_t>(Op));
    if (L.Pos >= 0) {
      int16_t Off = static_cast<int16_t>(L.Pos - static_cast<int>(OpPos));
      Code.push_back(static_cast<uint8_t>(Off >> 8));
      Code.push_back(static_cast<uint8_t>(Off & 0xff));
    } else {
      L.Patches.push_back(Code.size());
      Code.push_back(0);
      Code.push_back(0);
    }
    adjust(Delta);
  }

  uint16_t allocTemp() {
    uint16_t T = NextTemp++;
    if (NextTemp > MaxLocals)
      MaxLocals = NextTemp;
    return T;
  }

  /// Slot+1 holding `this` while compiling a field initializer at a `new`
  /// site (0 = no override, use local 0).
  uint16_t ThisSlotOverride = 0;

  void emitLoadThis() {
    if (ThisSlotOverride)
      emitU8(BC::ALoad, static_cast<uint8_t>(ThisSlotOverride - 1), +1);
    else
      emitU8(BC::ALoad, 0, +1);
  }

  //===--------------------------------------------------------------------===//
  // Typed helpers
  //===--------------------------------------------------------------------===//

  static bool isIntLike(const Type *Ty) {
    return Ty->isInt() || Ty->isBoolean() || Ty->isChar();
  }

  void emitLoadLocal(unsigned Slot, const Type *Ty) {
    BC Op = Ty->isDouble() ? BC::DLoad : Ty->isRef() ? BC::ALoad : BC::ILoad;
    emitU8(Op, static_cast<uint8_t>(Slot), +1);
  }

  void emitStoreLocal(unsigned Slot, const Type *Ty) {
    BC Op = Ty->isDouble() ? BC::DStore
                           : Ty->isRef() ? BC::AStore : BC::IStore;
    emitU8(Op, static_cast<uint8_t>(Slot), -1);
  }

  void emitIntConst(int32_t V) {
    if (V == 0)
      emit(BC::IConst0, +1);
    else if (V == 1)
      emit(BC::IConst1, +1);
    else if (V >= -128 && V <= 127)
      emitU8(BC::BIPush, static_cast<uint8_t>(V), +1);
    else if (V >= -32768 && V <= 32767)
      emitU16(BC::SIPush, static_cast<uint16_t>(V), +1);
    else
      emitU16(BC::Ldc, Pool.intConst(V), +1);
  }

  BC arrayLoadOp(const Type *Elem) {
    if (Elem->isDouble())
      return BC::DALoad;
    if (Elem->isChar())
      return BC::CALoad;
    if (Elem->isBoolean())
      return BC::BALoad;
    if (Elem->isInt())
      return BC::IALoad;
    return BC::AALoad;
  }

  BC arrayStoreOp(const Type *Elem) {
    if (Elem->isDouble())
      return BC::DAStore;
    if (Elem->isChar())
      return BC::CAStore;
    if (Elem->isBoolean())
      return BC::BAStore;
    if (Elem->isInt())
      return BC::IAStore;
    return BC::AAStore;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void compileStmt(const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Block:
      for (const StmtPtr &C : static_cast<const BlockStmt &>(S).Stmts)
        compileStmt(*C);
      return;
    case StmtKind::Empty:
      return;
    case StmtKind::VarDecl: {
      const auto &V = static_cast<const VarDeclStmt &>(S);
      if (V.Init)
        compileExpr(*V.Init);
      else
        compileDefault(V.Symbol->Ty);
      emitStoreLocal(V.Symbol->Index + Shift, V.Symbol->Ty);
      return;
    }
    case StmtKind::Expr:
      compileExprStmt(*static_cast<const ExprStmt &>(S).E);
      return;
    case StmtKind::If: {
      const auto &I = static_cast<const IfStmt &>(S);
      Label ElseL, EndL;
      compileCond(*I.Cond, ElseL, /*JumpIfTrue=*/false);
      compileStmt(*I.Then);
      if (I.Else) {
        branch(BC::Goto, EndL, 0);
        bind(ElseL);
        compileStmt(*I.Else);
        bind(EndL);
      } else {
        bind(ElseL);
      }
      return;
    }
    case StmtKind::While: {
      const auto &W = static_cast<const WhileStmt &>(S);
      Label StartL, ExitL;
      bind(StartL);
      compileCond(*W.Cond, ExitL, false);
      Loops.push_back({&ExitL, &StartL});
      compileStmt(*W.Body);
      Loops.pop_back();
      branch(BC::Goto, StartL, 0);
      bind(ExitL);
      return;
    }
    case StmtKind::DoWhile: {
      const auto &W = static_cast<const DoWhileStmt &>(S);
      Label StartL, CondL, ExitL;
      bind(StartL);
      Loops.push_back({&ExitL, &CondL});
      compileStmt(*W.Body);
      Loops.pop_back();
      bind(CondL);
      compileCond(*W.Cond, StartL, true);
      bind(ExitL);
      return;
    }
    case StmtKind::For: {
      const auto &F = static_cast<const ForStmt &>(S);
      if (F.Init)
        compileStmt(*F.Init);
      Label StartL, UpdateL, ExitL;
      bind(StartL);
      if (F.Cond)
        compileCond(*F.Cond, ExitL, false);
      Loops.push_back({&ExitL, &UpdateL});
      compileStmt(*F.Body);
      Loops.pop_back();
      bind(UpdateL);
      if (F.Update)
        compileExprStmt(*F.Update);
      branch(BC::Goto, StartL, 0);
      bind(ExitL);
      return;
    }
    case StmtKind::Return: {
      const auto &R = static_cast<const ReturnStmt &>(S);
      if (R.Value) {
        compileExpr(*R.Value);
        Type *Ty = Decl.Symbol->RetTy;
        emit(Ty->isDouble() ? BC::DReturn
                            : Ty->isRef() ? BC::AReturn : BC::IReturn,
             -1);
      } else {
        emit(BC::Return, 0);
      }
      return;
    }
    case StmtKind::Break:
      branch(BC::Goto, *Loops.back().BreakL, 0);
      return;
    case StmtKind::Continue:
      branch(BC::Goto, *Loops.back().ContinueL, 0);
      return;
    case StmtKind::Try: {
      const auto &T = static_cast<const TryStmt &>(S);
      uint16_t Start = static_cast<uint16_t>(Code.size());
      compileStmt(*T.Body);
      uint16_t End = static_cast<uint16_t>(Code.size());
      Label EndL;
      branch(BC::Goto, EndL, 0);
      uint16_t Handler = static_cast<uint16_t>(Code.size());
      compileStmt(*T.Handler);
      bind(EndL);
      // Entries for inner trys were appended while compiling the body, so
      // the table is ordered innermost-first; the interpreter takes the
      // first covering entry. An empty range (body emitted no code) would
      // cover nothing, so only record real ranges.
      if (End > Start)
        ExTable.push_back({Start, End, Handler});
      return;
    }
    }
  }

  void compileDefault(const Type *Ty) {
    if (Ty->isDouble())
      emitU16(BC::Ldc, Pool.dblConst(0.0), +1);
    else if (Ty->isRef())
      emit(BC::AConstNull, +1);
    else
      emit(BC::IConst0, +1);
  }

  /// Expression in statement position: avoid materializing unused results
  /// (javac-style).
  void compileExprStmt(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::Assign:
      compileAssign(static_cast<const AssignExpr &>(E), /*NeedValue=*/false);
      return;
    case ExprKind::Unary: {
      const auto &U = static_cast<const UnaryExpr &>(E);
      if (U.Op == UnaryOp::PreInc || U.Op == UnaryOp::PreDec ||
          U.Op == UnaryOp::PostInc || U.Op == UnaryOp::PostDec) {
        compileIncDec(U, /*NeedValue=*/false);
        return;
      }
      break;
    }
    case ExprKind::Call: {
      const auto &C = static_cast<const CallExpr &>(E);
      compileExpr(E);
      if (C.ResolvedMethod && !C.ResolvedMethod->RetTy->isVoid())
        emit(BC::Pop, -1);
      return;
    }
    default:
      break;
    }
    compileExpr(E);
    if (!E.Ty->isVoid())
      emit(BC::Pop, -1);
  }

  //===--------------------------------------------------------------------===//
  // Conditions (branch compilation, javac-style)
  //===--------------------------------------------------------------------===//

  void compileCond(const Expr &E, Label &Target, bool JumpIfTrue) {
    switch (E.Kind) {
    case ExprKind::BoolLiteral: {
      if (static_cast<const BoolLiteralExpr &>(E).Value == JumpIfTrue)
        branch(BC::Goto, Target, 0);
      return;
    }
    case ExprKind::Unary: {
      const auto &U = static_cast<const UnaryExpr &>(E);
      if (U.Op == UnaryOp::Not) {
        compileCond(*U.Operand, Target, !JumpIfTrue);
        return;
      }
      break;
    }
    case ExprKind::Binary: {
      const auto &B = static_cast<const BinaryExpr &>(E);
      switch (B.Op) {
      case BinaryOp::LAnd:
        if (JumpIfTrue) {
          Label FalseL;
          compileCond(*B.Lhs, FalseL, false);
          compileCond(*B.Rhs, Target, true);
          bind(FalseL);
        } else {
          compileCond(*B.Lhs, Target, false);
          compileCond(*B.Rhs, Target, false);
        }
        return;
      case BinaryOp::LOr:
        if (JumpIfTrue) {
          compileCond(*B.Lhs, Target, true);
          compileCond(*B.Rhs, Target, true);
        } else {
          Label TrueL;
          compileCond(*B.Lhs, TrueL, true);
          compileCond(*B.Rhs, Target, false);
          bind(TrueL);
        }
        return;
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge:
      case BinaryOp::Eq:
      case BinaryOp::Ne:
        compileCompare(B, Target, JumpIfTrue);
        return;
      default:
        break;
      }
      break;
    }
    default:
      break;
    }
    // Generic boolean value.
    compileExpr(E);
    branch(JumpIfTrue ? BC::IfNe : BC::IfEq, Target, -1);
  }

  void compileCompare(const BinaryExpr &B, Label &Target, bool JumpIfTrue) {
    Type *LTy = B.Lhs->Ty;
    bool RefCmp = LTy->isRef() || B.Rhs->Ty->isRef();
    bool DblCmp = LTy->isDouble();

    BinaryOp Op = B.Op;
    if (!JumpIfTrue) {
      switch (Op) {
      case BinaryOp::Lt:
        Op = BinaryOp::Ge;
        break;
      case BinaryOp::Le:
        Op = BinaryOp::Gt;
        break;
      case BinaryOp::Gt:
        Op = BinaryOp::Le;
        break;
      case BinaryOp::Ge:
        Op = BinaryOp::Lt;
        break;
      case BinaryOp::Eq:
        Op = BinaryOp::Ne;
        break;
      case BinaryOp::Ne:
        Op = BinaryOp::Eq;
        break;
      default:
        break;
      }
    }

    if (RefCmp) {
      // x == null uses the dedicated null branches.
      bool LhsNull = B.Lhs->Ty->isNull();
      bool RhsNull = B.Rhs->Ty->isNull();
      if (LhsNull || RhsNull) {
        compileExpr(LhsNull ? *B.Rhs : *B.Lhs);
        branch(Op == BinaryOp::Eq ? BC::IfNull : BC::IfNonNull, Target, -1);
        return;
      }
      compileExpr(*B.Lhs);
      compileExpr(*B.Rhs);
      branch(Op == BinaryOp::Eq ? BC::IfACmpEq : BC::IfACmpNe, Target, -2);
      return;
    }

    if (DblCmp) {
      compileExpr(*B.Lhs);
      compileExpr(*B.Rhs);
      // Like javac: dcmpg for < / <= and dcmpl for > / >=, chosen by the
      // ORIGINAL operator (not the branch-negated one), so that every
      // comparison involving NaN is false on both branch polarities.
      bool UseG = B.Op == BinaryOp::Lt || B.Op == BinaryOp::Le;
      emit(UseG ? BC::DCmpG : BC::DCmpL, -1);
      BC Br;
      switch (Op) {
      case BinaryOp::Lt:
        Br = BC::IfLt;
        break;
      case BinaryOp::Le:
        Br = BC::IfLe;
        break;
      case BinaryOp::Gt:
        Br = BC::IfGt;
        break;
      case BinaryOp::Ge:
        Br = BC::IfGe;
        break;
      case BinaryOp::Eq:
        Br = BC::IfEq;
        break;
      default:
        Br = BC::IfNe;
        break;
      }
      branch(Br, Target, -1);
      return;
    }

    // Integer-like (ints, chars, booleans).
    // Compare against zero uses the one-operand branches.
    auto IsZero = [](const Expr &E) {
      return E.Kind == ExprKind::IntLiteral &&
             static_cast<const IntLiteralExpr &>(E).Value == 0;
    };
    if (IsZero(*B.Rhs)) {
      compileExpr(*B.Lhs);
      BC Br;
      switch (Op) {
      case BinaryOp::Lt:
        Br = BC::IfLt;
        break;
      case BinaryOp::Le:
        Br = BC::IfLe;
        break;
      case BinaryOp::Gt:
        Br = BC::IfGt;
        break;
      case BinaryOp::Ge:
        Br = BC::IfGe;
        break;
      case BinaryOp::Eq:
        Br = BC::IfEq;
        break;
      default:
        Br = BC::IfNe;
        break;
      }
      branch(Br, Target, -1);
      return;
    }
    compileExpr(*B.Lhs);
    compileExpr(*B.Rhs);
    BC Br;
    switch (Op) {
    case BinaryOp::Lt:
      Br = BC::IfICmpLt;
      break;
    case BinaryOp::Le:
      Br = BC::IfICmpLe;
      break;
    case BinaryOp::Gt:
      Br = BC::IfICmpGt;
      break;
    case BinaryOp::Ge:
      Br = BC::IfICmpGe;
      break;
    case BinaryOp::Eq:
      Br = BC::IfICmpEq;
      break;
    default:
      Br = BC::IfICmpNe;
      break;
    }
    branch(Br, Target, -2);
  }

  /// Boolean expression as a stack value: branch + push 0/1.
  void condToValue(const Expr &E) {
    Label TrueL, EndL;
    compileCond(E, TrueL, true);
    emit(BC::IConst0, +1);
    branch(BC::Goto, EndL, 0);
    // The iconst path and the true path both end with one value; keep the
    // tracker consistent across the join.
    adjust(-1);
    bind(TrueL);
    emit(BC::IConst1, +1);
    bind(EndL);
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  void compileExpr(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::IntLiteral:
      emitIntConst(
          static_cast<int32_t>(static_cast<const IntLiteralExpr &>(E).Value));
      return;
    case ExprKind::DoubleLiteral:
      emitU16(BC::Ldc,
              Pool.dblConst(static_cast<const DoubleLiteralExpr &>(E).Value),
              +1);
      return;
    case ExprKind::BoolLiteral:
      emit(static_cast<const BoolLiteralExpr &>(E).Value ? BC::IConst1
                                                         : BC::IConst0,
           +1);
      return;
    case ExprKind::CharLiteral:
      emitIntConst(static_cast<unsigned char>(
          static_cast<const CharLiteralExpr &>(E).Value));
      return;
    case ExprKind::StringLiteral:
      emitU16(BC::Ldc,
              Pool.strChars(static_cast<const StringLiteralExpr &>(E).Value),
              +1);
      return;
    case ExprKind::NullLiteral:
      emit(BC::AConstNull, +1);
      return;
    case ExprKind::This:
      emitLoadThis();
      return;
    case ExprKind::Name: {
      const auto &N = static_cast<const NameExpr &>(E);
      switch (N.Resolution) {
      case NameResolution::Local:
        emitLoadLocal(N.ResolvedLocal->Index + Shift, N.ResolvedLocal->Ty);
        return;
      case NameResolution::FieldOfThis:
        emitLoadThis();
        emitU16(BC::GetField, Pool.fieldRef(N.ResolvedField), 0);
        return;
      case NameResolution::StaticField:
        emitU16(BC::GetStatic, Pool.fieldRef(N.ResolvedField), +1);
        return;
      default:
        assert(false && "unresolved name");
        return;
      }
    }
    case ExprKind::FieldAccess: {
      const auto &F = static_cast<const FieldAccessExpr &>(E);
      if (F.IsArrayLength) {
        compileExpr(*F.Base);
        emit(BC::ArrayLength, 0);
        return;
      }
      if (F.ResolvedField->IsStatic) {
        emitU16(BC::GetStatic, Pool.fieldRef(F.ResolvedField), +1);
        return;
      }
      compileExpr(*F.Base);
      emitU16(BC::GetField, Pool.fieldRef(F.ResolvedField), 0);
      return;
    }
    case ExprKind::Index: {
      const auto &I = static_cast<const IndexExpr &>(E);
      compileExpr(*I.Base);
      compileExpr(*I.Index);
      emit(arrayLoadOp(E.Ty), -1);
      return;
    }
    case ExprKind::Call:
      compileCall(static_cast<const CallExpr &>(E));
      return;
    case ExprKind::NewObject:
      compileNewObject(static_cast<const NewObjectExpr &>(E));
      return;
    case ExprKind::NewArray: {
      const auto &N = static_cast<const NewArrayExpr &>(E);
      compileExpr(*N.Length);
      emitU16(BC::NewArray, Pool.typeRef(E.Ty->getElemType()), 0);
      return;
    }
    case ExprKind::Unary:
      compileUnary(static_cast<const UnaryExpr &>(E));
      return;
    case ExprKind::Binary:
      compileBinary(static_cast<const BinaryExpr &>(E));
      return;
    case ExprKind::Assign:
      compileAssign(static_cast<const AssignExpr &>(E), /*NeedValue=*/true);
      return;
    case ExprKind::Cast:
      compileCast(static_cast<const CastExpr &>(E));
      return;
    case ExprKind::Instanceof: {
      const auto &I = static_cast<const InstanceofExpr &>(E);
      compileExpr(*I.Operand);
      emitU16(BC::InstanceOf, Pool.typeRef(I.ResolvedTarget), 0);
      return;
    }
    }
  }

  void compileUnary(const UnaryExpr &U) {
    switch (U.Op) {
    case UnaryOp::Neg:
      compileExpr(*U.Operand);
      emit(U.Operand->Ty->isDouble() ? BC::DNeg : BC::INeg, 0);
      return;
    case UnaryOp::Not:
      condToValue(U);
      return;
    case UnaryOp::BitNot:
      compileExpr(*U.Operand);
      emitIntConst(-1);
      emit(BC::IXor, -1);
      return;
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec:
      compileIncDec(U, /*NeedValue=*/true);
      return;
    }
  }

  void compileIncDec(const UnaryExpr &U, bool NeedValue) {
    bool IsInc = U.Op == UnaryOp::PreInc || U.Op == UnaryOp::PostInc;
    bool IsPost = U.Op == UnaryOp::PostInc || U.Op == UnaryOp::PostDec;
    const Expr &T = *U.Operand;
    Type *Ty = T.Ty;

    // Fast path: int local -> iinc.
    if (T.Kind == ExprKind::Name && Ty->isInt()) {
      const auto &N = static_cast<const NameExpr &>(T);
      if (N.Resolution == NameResolution::Local) {
        unsigned Slot = N.ResolvedLocal->Index + Shift;
        if (NeedValue && IsPost)
          emitLoadLocal(Slot, Ty);
        emitIInc(static_cast<uint8_t>(Slot), IsInc ? 1 : -1);
        if (NeedValue && !IsPost)
          emitLoadLocal(Slot, Ty);
        return;
      }
    }

    auto EmitDelta = [&] {
      if (Ty->isDouble()) {
        emitU16(BC::Ldc, Pool.dblConst(1.0), +1);
        emit(IsInc ? BC::DAdd : BC::DSub, -1);
      } else {
        emit(BC::IConst1, +1);
        emit(IsInc ? BC::IAdd : BC::ISub, -1);
        if (Ty->isChar())
          emit(BC::I2C, 0);
      }
    };

    switch (T.Kind) {
    case ExprKind::Name: { // Local (non-int) or field of this / static.
      const auto &N = static_cast<const NameExpr &>(T);
      if (N.Resolution == NameResolution::Local) {
        unsigned Slot = N.ResolvedLocal->Index + Shift;
        emitLoadLocal(Slot, Ty);
        if (NeedValue && IsPost)
          emit(BC::Dup, +1);
        EmitDelta();
        if (NeedValue && !IsPost)
          emit(BC::Dup, +1);
        emitStoreLocal(Slot, Ty);
        return;
      }
      if (N.Resolution == NameResolution::StaticField) {
        emitU16(BC::GetStatic, Pool.fieldRef(N.ResolvedField), +1);
        if (NeedValue && IsPost)
          emit(BC::Dup, +1);
        EmitDelta();
        if (NeedValue && !IsPost)
          emit(BC::Dup, +1);
        emitU16(BC::PutStatic, Pool.fieldRef(N.ResolvedField), -1);
        return;
      }
      // Field of this.
      emitLoadThis();
      emit(BC::Dup, +1);
      emitU16(BC::GetField, Pool.fieldRef(N.ResolvedField), 0);
      if (NeedValue && IsPost)
        emit(BC::DupX1, +1);
      EmitDelta();
      if (NeedValue && !IsPost)
        emit(BC::DupX1, +1);
      emitU16(BC::PutField, Pool.fieldRef(N.ResolvedField), -2);
      return;
    }
    case ExprKind::FieldAccess: {
      const auto &FA = static_cast<const FieldAccessExpr &>(T);
      if (FA.ResolvedField->IsStatic) {
        emitU16(BC::GetStatic, Pool.fieldRef(FA.ResolvedField), +1);
        if (NeedValue && IsPost)
          emit(BC::Dup, +1);
        EmitDelta();
        if (NeedValue && !IsPost)
          emit(BC::Dup, +1);
        emitU16(BC::PutStatic, Pool.fieldRef(FA.ResolvedField), -1);
        return;
      }
      compileExpr(*FA.Base);
      emit(BC::Dup, +1);
      emitU16(BC::GetField, Pool.fieldRef(FA.ResolvedField), 0);
      if (NeedValue && IsPost)
        emit(BC::DupX1, +1);
      EmitDelta();
      if (NeedValue && !IsPost)
        emit(BC::DupX1, +1);
      emitU16(BC::PutField, Pool.fieldRef(FA.ResolvedField), -2);
      return;
    }
    case ExprKind::Index: {
      const auto &IX = static_cast<const IndexExpr &>(T);
      compileExpr(*IX.Base);
      compileExpr(*IX.Index);
      emit(BC::Dup2, +2);
      emit(arrayLoadOp(Ty), -1);
      if (NeedValue && IsPost)
        emit(BC::DupX2, +1);
      EmitDelta();
      if (NeedValue && !IsPost)
        emit(BC::DupX2, +1);
      emit(arrayStoreOp(Ty), -3);
      return;
    }
    default:
      assert(false && "bad inc/dec target");
    }
  }

  void compileBinary(const BinaryExpr &B) {
    switch (B.Op) {
    case BinaryOp::LAnd:
    case BinaryOp::LOr:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      condToValue(B);
      return;
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      condToValue(B);
      return;
    default:
      break;
    }
    compileExpr(*B.Lhs);
    compileExpr(*B.Rhs);
    bool Dbl = B.Lhs->Ty->isDouble();
    switch (B.Op) {
    case BinaryOp::Add:
      emit(Dbl ? BC::DAdd : BC::IAdd, -1);
      return;
    case BinaryOp::Sub:
      emit(Dbl ? BC::DSub : BC::ISub, -1);
      return;
    case BinaryOp::Mul:
      emit(Dbl ? BC::DMul : BC::IMul, -1);
      return;
    case BinaryOp::Div:
      emit(Dbl ? BC::DDiv : BC::IDiv, -1);
      return;
    case BinaryOp::Rem:
      emit(BC::IRem, -1);
      return;
    case BinaryOp::BitAnd:
      emit(BC::IAnd, -1);
      return;
    case BinaryOp::BitOr:
      emit(BC::IOr, -1);
      return;
    case BinaryOp::BitXor:
      emit(BC::IXor, -1);
      return;
    case BinaryOp::Shl:
      emit(BC::IShl, -1);
      return;
    case BinaryOp::Shr:
      emit(BC::IShr, -1);
      return;
    default:
      assert(false && "handled above");
      return;
    }
  }

  void compileCast(const CastExpr &C) {
    compileExpr(*C.Operand);
    switch (C.Lowering) {
    case CastLowering::Identity:
    case CastLowering::CharToInt: // Chars are ints on the stack.
    case CastLowering::RefWiden:
      return;
    case CastLowering::IntToDouble:
      emit(BC::I2D, 0);
      return;
    case CastLowering::DoubleToInt:
      emit(BC::D2I, 0);
      return;
    case CastLowering::IntToChar:
      emit(BC::I2C, 0);
      return;
    case CastLowering::DoubleToChar:
      emit(BC::D2I, 0);
      emit(BC::I2C, 0);
      return;
    case CastLowering::RefNarrow:
      emitU16(BC::CheckCast, Pool.typeRef(C.Ty), 0);
      return;
    }
  }

  void compileCall(const CallExpr &C) {
    MethodSymbol *M = C.ResolvedMethod;
    int RetSlots = M->RetTy->isVoid() ? 0 : 1;
    if (C.Dispatch == DispatchKind::Static) {
      for (const ExprPtr &A : C.Args)
        compileExpr(*A);
      emitU16(BC::InvokeStatic, Pool.methodRef(M),
              RetSlots - static_cast<int>(C.Args.size()));
      return;
    }
    if (C.Base)
      compileExpr(*C.Base);
    else
      emitLoadThis();
    for (const ExprPtr &A : C.Args)
      compileExpr(*A);
    emitU16(BC::InvokeVirtual, Pool.methodRef(M),
            RetSlots - 1 - static_cast<int>(C.Args.size()));
  }

  void compileNewObject(const NewObjectExpr &N) {
    emitU16(BC::New, Pool.classRef(N.ResolvedClass->Name,
                                   Types.getClass(N.ResolvedClass)),
            +1);
    // Run instance-field initializers root-first (MJ allocation
    // semantics); the object is parked in a compiler temp so initializer
    // expressions can address it.
    bool HasInits = false;
    for (ClassSymbol *C = N.ResolvedClass; C && !C->IsBuiltin; C = C->Super)
      if (C->Decl)
        for (const FieldDecl &F : C->Decl->Fields)
          if (!F.IsStatic && F.Init)
            HasInits = true;

    if (HasInits) {
      uint16_t Temp = allocTemp();
      emitU8(BC::AStore, static_cast<uint8_t>(Temp), -1);
      std::vector<ClassSymbol *> Chain;
      for (ClassSymbol *C = N.ResolvedClass; C && !C->IsBuiltin;
           C = C->Super)
        Chain.push_back(C);
      for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
        ClassSymbol *C = *It;
        if (!C->Decl)
          continue;
        for (const FieldDecl &F : C->Decl->Fields) {
          if (F.IsStatic || !F.Init)
            continue;
          emitU8(BC::ALoad, static_cast<uint8_t>(Temp), +1);
          // Field initializers may reference `this` fields: compile with
          // `this` rebound to the temp slot.
          uint16_t SavedThis = ThisSlotOverride;
          ThisSlotOverride = Temp + 1; // +1 so 0 means "no override".
          compileExpr(*F.Init);
          ThisSlotOverride = SavedThis;
          emitU16(BC::PutField, Pool.fieldRef(F.Symbol), -2);
        }
      }
      emitU8(BC::ALoad, static_cast<uint8_t>(Temp), +1);
    }

    if (N.ResolvedCtor) {
      emit(BC::Dup, +1);
      for (const ExprPtr &A : N.Args)
        compileExpr(*A);
      emitU16(BC::InvokeSpecial, Pool.methodRef(N.ResolvedCtor),
              -1 - static_cast<int>(N.Args.size()));
    }
  }

  void compileAssign(const AssignExpr &A, bool NeedValue) {
    const Expr &T = *A.Target;

    auto CompileRhs = [&](bool LoadOldFirst) {
      // For compound assignment the old value is already on the stack when
      // this is called (LoadOldFirst true).
      compileExpr(*A.Value);
      if (!LoadOldFirst)
        return;
      bool Dbl = T.Ty->isDouble();
      switch (A.Op) {
      case AssignExpr::OpKind::Add:
        emit(Dbl ? BC::DAdd : BC::IAdd, -1);
        break;
      case AssignExpr::OpKind::Sub:
        emit(Dbl ? BC::DSub : BC::ISub, -1);
        break;
      case AssignExpr::OpKind::Mul:
        emit(Dbl ? BC::DMul : BC::IMul, -1);
        break;
      case AssignExpr::OpKind::Div:
        emit(Dbl ? BC::DDiv : BC::IDiv, -1);
        break;
      case AssignExpr::OpKind::Rem:
        emit(BC::IRem, -1);
        break;
      case AssignExpr::OpKind::None:
        break;
      }
    };
    bool Compound = A.Op != AssignExpr::OpKind::None;

    switch (T.Kind) {
    case ExprKind::Name: {
      const auto &N = static_cast<const NameExpr &>(T);
      if (N.Resolution == NameResolution::Local) {
        unsigned Slot = N.ResolvedLocal->Index + Shift;
        if (Compound)
          emitLoadLocal(Slot, T.Ty);
        CompileRhs(Compound);
        if (NeedValue)
          emit(BC::Dup, +1);
        emitStoreLocal(Slot, T.Ty);
        return;
      }
      if (N.Resolution == NameResolution::StaticField) {
        if (Compound)
          emitU16(BC::GetStatic, Pool.fieldRef(N.ResolvedField), +1);
        CompileRhs(Compound);
        if (NeedValue)
          emit(BC::Dup, +1);
        emitU16(BC::PutStatic, Pool.fieldRef(N.ResolvedField), -1);
        return;
      }
      // Instance field of this.
      emitLoadThis();
      if (Compound) {
        emit(BC::Dup, +1);
        emitU16(BC::GetField, Pool.fieldRef(N.ResolvedField), 0);
      }
      CompileRhs(Compound);
      if (NeedValue)
        emit(BC::DupX1, +1);
      emitU16(BC::PutField, Pool.fieldRef(N.ResolvedField), -2);
      return;
    }
    case ExprKind::FieldAccess: {
      const auto &FA = static_cast<const FieldAccessExpr &>(T);
      if (FA.ResolvedField->IsStatic) {
        if (Compound)
          emitU16(BC::GetStatic, Pool.fieldRef(FA.ResolvedField), +1);
        CompileRhs(Compound);
        if (NeedValue)
          emit(BC::Dup, +1);
        emitU16(BC::PutStatic, Pool.fieldRef(FA.ResolvedField), -1);
        return;
      }
      compileExpr(*FA.Base);
      if (Compound) {
        emit(BC::Dup, +1);
        emitU16(BC::GetField, Pool.fieldRef(FA.ResolvedField), 0);
      }
      CompileRhs(Compound);
      if (NeedValue)
        emit(BC::DupX1, +1);
      emitU16(BC::PutField, Pool.fieldRef(FA.ResolvedField), -2);
      return;
    }
    case ExprKind::Index: {
      const auto &IX = static_cast<const IndexExpr &>(T);
      compileExpr(*IX.Base);
      compileExpr(*IX.Index);
      if (Compound) {
        emit(BC::Dup2, +2);
        emit(arrayLoadOp(T.Ty), -1);
      }
      CompileRhs(Compound);
      if (NeedValue)
        emit(BC::DupX2, +1);
      emit(arrayStoreOp(T.Ty), -3);
      return;
    }
    default:
      assert(false && "bad assignment target");
    }
  }
};

} // namespace

std::unique_ptr<BCModule> BCCompiler::compile(const Program &P) {
  auto M = std::make_unique<BCModule>();
  M->Table = &Table;
  PoolBuilder Pool(*M);

  for (const auto &ClassDeclPtr : P.Classes) {
    if (!ClassDeclPtr->Symbol)
      continue;
    ClassSymbol *CS = ClassDeclPtr->Symbol;
    BCClass C;
    C.Symbol = CS;
    C.NameIndex = Pool.classRef(CS->Name, Types.getClass(CS));
    C.SuperIndex =
        CS->Super ? Pool.classRef(CS->Super->Name, Types.getClass(CS->Super))
                  : 0;

    for (const FieldDecl &F : ClassDeclPtr->Fields) {
      BCClass::Field BF;
      BF.Symbol = F.Symbol;
      BF.NameIndex = Pool.utf8(F.Name);
      BF.DescIndex = Pool.utf8(typeDescriptor(F.Symbol->Ty));
      BF.Flags = F.IsStatic ? 1 : 0;
      if (F.IsStatic && F.Init) {
        // Static initializers are constants (sema enforced); intern them.
        const Expr &E = *F.Init;
        if (E.Ty->isDouble()) {
          double V = E.Kind == ExprKind::DoubleLiteral
                         ? static_cast<const DoubleLiteralExpr &>(E).Value
                         : 0.0;
          BF.InitPool = Pool.dblConst(V);
        } else if (E.Kind == ExprKind::IntLiteral) {
          BF.InitPool = Pool.intConst(static_cast<int32_t>(
              static_cast<const IntLiteralExpr &>(E).Value));
        } else if (E.Kind == ExprKind::BoolLiteral) {
          BF.InitPool = Pool.intConst(
              static_cast<const BoolLiteralExpr &>(E).Value ? 1 : 0);
        } else if (E.Kind == ExprKind::CharLiteral) {
          BF.InitPool = Pool.intConst(static_cast<unsigned char>(
              static_cast<const CharLiteralExpr &>(E).Value));
        } else if (E.Kind == ExprKind::StringLiteral) {
          BF.InitPool = Pool.strChars(
              static_cast<const StringLiteralExpr &>(E).Value);
        }
        // Folded non-literal constants fall back to zero init here; the
        // TSA pipeline handles them exactly, and the corpus keeps static
        // initializers literal.
      }
      C.Fields.push_back(BF);
    }

    for (const auto &MD : ClassDeclPtr->Methods) {
      if (!MD->Symbol || !MD->Body)
        continue;
      CodeGen Gen(Types, Pool, *MD, CS);
      BCMethod BM = Gen.run();
      BM.NameIndex = Pool.utf8(MD->IsConstructor ? "<init>" : MD->Name);
      std::string Desc = "(";
      for (Type *T : MD->Symbol->ParamTys)
        Desc += typeDescriptor(T);
      Desc += ")" + typeDescriptor(MD->Symbol->RetTy);
      BM.DescIndex = Pool.utf8(Desc);
      C.Methods.push_back(std::move(BM));
    }
    M->Classes.push_back(std::move(C));
  }
  return M;
}
