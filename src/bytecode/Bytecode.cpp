//===- bytecode/Bytecode.cpp ----------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Bytecode.h"

using namespace safetsa;

const char *safetsa::bcName(BC Op) {
  switch (Op) {
  case BC::Nop:
    return "nop";
  case BC::AConstNull:
    return "aconst_null";
  case BC::IConst0:
    return "iconst_0";
  case BC::IConst1:
    return "iconst_1";
  case BC::BIPush:
    return "bipush";
  case BC::SIPush:
    return "sipush";
  case BC::Ldc:
    return "ldc";
  case BC::ILoad:
    return "iload";
  case BC::DLoad:
    return "dload";
  case BC::ALoad:
    return "aload";
  case BC::IStore:
    return "istore";
  case BC::DStore:
    return "dstore";
  case BC::AStore:
    return "astore";
  case BC::IInc:
    return "iinc";
  case BC::Pop:
    return "pop";
  case BC::Dup:
    return "dup";
  case BC::DupX1:
    return "dup_x1";
  case BC::DupX2:
    return "dup_x2";
  case BC::Dup2:
    return "dup2";
  case BC::Swap:
    return "swap";
  case BC::IAdd:
    return "iadd";
  case BC::ISub:
    return "isub";
  case BC::IMul:
    return "imul";
  case BC::IDiv:
    return "idiv";
  case BC::IRem:
    return "irem";
  case BC::INeg:
    return "ineg";
  case BC::IAnd:
    return "iand";
  case BC::IOr:
    return "ior";
  case BC::IXor:
    return "ixor";
  case BC::IShl:
    return "ishl";
  case BC::IShr:
    return "ishr";
  case BC::DAdd:
    return "dadd";
  case BC::DSub:
    return "dsub";
  case BC::DMul:
    return "dmul";
  case BC::DDiv:
    return "ddiv";
  case BC::DNeg:
    return "dneg";
  case BC::DCmpL:
    return "dcmpl";
  case BC::DCmpG:
    return "dcmpg";
  case BC::I2D:
    return "i2d";
  case BC::D2I:
    return "d2i";
  case BC::I2C:
    return "i2c";
  case BC::Goto:
    return "goto";
  case BC::IfEq:
    return "ifeq";
  case BC::IfNe:
    return "ifne";
  case BC::IfLt:
    return "iflt";
  case BC::IfGe:
    return "ifge";
  case BC::IfGt:
    return "ifgt";
  case BC::IfLe:
    return "ifle";
  case BC::IfICmpEq:
    return "if_icmpeq";
  case BC::IfICmpNe:
    return "if_icmpne";
  case BC::IfICmpLt:
    return "if_icmplt";
  case BC::IfICmpGe:
    return "if_icmpge";
  case BC::IfICmpGt:
    return "if_icmpgt";
  case BC::IfICmpLe:
    return "if_icmple";
  case BC::IfACmpEq:
    return "if_acmpeq";
  case BC::IfACmpNe:
    return "if_acmpne";
  case BC::IfNull:
    return "ifnull";
  case BC::IfNonNull:
    return "ifnonnull";
  case BC::GetField:
    return "getfield";
  case BC::PutField:
    return "putfield";
  case BC::GetStatic:
    return "getstatic";
  case BC::PutStatic:
    return "putstatic";
  case BC::InvokeVirtual:
    return "invokevirtual";
  case BC::InvokeStatic:
    return "invokestatic";
  case BC::InvokeSpecial:
    return "invokespecial";
  case BC::New:
    return "new";
  case BC::NewArray:
    return "newarray";
  case BC::ArrayLength:
    return "arraylength";
  case BC::IALoad:
    return "iaload";
  case BC::IAStore:
    return "iastore";
  case BC::DALoad:
    return "daload";
  case BC::DAStore:
    return "dastore";
  case BC::AALoad:
    return "aaload";
  case BC::AAStore:
    return "aastore";
  case BC::CALoad:
    return "caload";
  case BC::CAStore:
    return "castore";
  case BC::BALoad:
    return "baload";
  case BC::BAStore:
    return "bastore";
  case BC::CheckCast:
    return "checkcast";
  case BC::InstanceOf:
    return "instanceof";
  case BC::IReturn:
    return "ireturn";
  case BC::DReturn:
    return "dreturn";
  case BC::AReturn:
    return "areturn";
  case BC::Return:
    return "return";
  }
  return "op";
}

unsigned safetsa::bcOperandWidth(BC Op) {
  switch (Op) {
  case BC::BIPush:
    return 1;
  case BC::SIPush:
    return 2;
  case BC::Ldc:
    return 2;
  case BC::ILoad:
  case BC::DLoad:
  case BC::ALoad:
  case BC::IStore:
  case BC::DStore:
  case BC::AStore:
    return 1;
  case BC::IInc:
    return 2;
  case BC::Goto:
  case BC::IfEq:
  case BC::IfNe:
  case BC::IfLt:
  case BC::IfGe:
  case BC::IfGt:
  case BC::IfLe:
  case BC::IfICmpEq:
  case BC::IfICmpNe:
  case BC::IfICmpLt:
  case BC::IfICmpGe:
  case BC::IfICmpGt:
  case BC::IfICmpLe:
  case BC::IfACmpEq:
  case BC::IfACmpNe:
  case BC::IfNull:
  case BC::IfNonNull:
    return 2;
  case BC::GetField:
  case BC::PutField:
  case BC::GetStatic:
  case BC::PutStatic:
  case BC::InvokeVirtual:
  case BC::InvokeStatic:
  case BC::InvokeSpecial:
  case BC::New:
  case BC::NewArray:
  case BC::CheckCast:
  case BC::InstanceOf:
    return 2;
  default:
    return 0;
  }
}

unsigned BCMethod::countInstructions() const {
  unsigned N = 0;
  for (size_t I = 0; I < Code.size();) {
    BC Op = static_cast<BC>(Code[I]);
    I += 1 + bcOperandWidth(Op);
    ++N;
  }
  return N;
}

std::string safetsa::typeDescriptor(const Type *Ty) {
  if (!Ty || Ty->isVoid())
    return "V";
  if (Ty->isInt())
    return "I";
  if (Ty->isDouble())
    return "D";
  if (Ty->isBoolean())
    return "Z";
  if (Ty->isChar())
    return "C";
  if (Ty->isArray())
    return "[" + typeDescriptor(Ty->getElemType());
  if (Ty->isClass())
    return "L" + Ty->getClassSymbol()->Name + ";";
  return "V";
}
