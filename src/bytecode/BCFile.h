//===- bytecode/BCFile.h - Class-file serialization -----------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary container for bytecode modules — the "Java class file" axis of
/// Figure 5. A module (one MJ compilation unit) serializes to a single
/// byte vector: magic, constant pool, classes with fields and method code
/// attributes. The reader performs full bounds/shape validation (hostile
/// input returns an error, never UB), and link() re-resolves symbolic
/// references against a ClassTable so that read-back modules can run.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_BYTECODE_BCFILE_H
#define SAFETSA_BYTECODE_BCFILE_H

#include "bytecode/Bytecode.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace safetsa {

/// Serializes \p M (resolution side tables are not written).
std::vector<uint8_t> writeBCModule(const BCModule &M);

/// Parses a serialized module. Returns nullptr and sets \p Err on
/// malformed input.
std::unique_ptr<BCModule> readBCModule(const std::vector<uint8_t> &Bytes,
                                       std::string *Err);

/// Resolves the symbolic references of a freshly read module against
/// \p Table, filling the PoolMethods/PoolFields/PoolTypes side tables and
/// the Symbol fields. Returns false (with \p Err) when a reference does
/// not resolve — the bytecode analogue of link-time verification.
bool linkBCModule(BCModule &M, ClassTable &Table, TypeContext &Types,
                  std::string *Err);

/// Parses a JVM-style type descriptor ("I", "[D", "LFoo;"...).
Type *parseDescriptor(const std::string &Desc, TypeContext &Types,
                      ClassTable &Table);

} // namespace safetsa

#endif // SAFETSA_BYTECODE_BCFILE_H
