//===- bytecode/BCInterp.cpp ----------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bytecode/BCInterp.h"

#include <cmath>
#include <limits>

using namespace safetsa;

static int32_t wrap32(int64_t V) { return static_cast<int32_t>(V); }

/// Runtime exceptions an MJ catch-all handler intercepts (mirrors the
/// SafeTSA evaluator's set).
static bool isCatchable(RuntimeError E) {
  switch (E) {
  case RuntimeError::NullPointer:
  case RuntimeError::IndexOutOfBounds:
  case RuntimeError::DivisionByZero:
  case RuntimeError::ClassCast:
  case RuntimeError::NegativeArraySize:
    return true;
  default:
    return false;
  }
}

Value BCInterpreter::poolValue(uint16_t Idx) {
  const PoolEntry &E = Module.pool(Idx);
  switch (E.K) {
  case PoolEntry::Kind::Int:
    return Value::makeInt(E.IntVal);
  case PoolEntry::Kind::Double:
    return Value::makeDouble(E.DblVal);
  case PoolEntry::Kind::StrChars:
    return Value::makeRef(
        RT.internString(Module.pool(E.Index).Str, Types.getChar()));
  default:
    assert(false && "ldc of a non-constant pool entry");
    return Value();
  }
}

void BCInterpreter::initializeStatics() {
  for (const BCClass &C : Module.Classes)
    for (const BCClass::Field &F : C.Fields)
      if ((F.Flags & 1) && F.InitPool && F.Symbol)
        RT.setStatic(F.Symbol->Slot, poolValue(F.InitPool));
}

ExecResult BCInterpreter::runMain() {
  initializeStatics();
  ExecResult R;
  for (const BCClass &C : Module.Classes)
    for (const BCMethod &M : C.Methods)
      if (M.Symbol && M.Symbol->IsStatic && M.Symbol->Name == "main" &&
          M.Symbol->ParamTys.empty())
        return call(M.Symbol, {});
  R.Err = RuntimeError::Internal;
  return R;
}

ExecResult BCInterpreter::call(const MethodSymbol *Method,
                               std::vector<Value> Args) {
  Err = RuntimeError::None;
  ExecResult R;
  if (Method->isNative()) {
    R.Ret = RT.callNative(Method->Native, Args);
    return R;
  }
  const BCMethod *Body = Module.findMethod(Method);
  if (!Body) {
    R.Err = RuntimeError::Internal;
    return R;
  }
  bool Ok = true;
  Value Ret = execMethod(*Body, std::move(Args), Ok);
  R.Err = Ok ? RuntimeError::None : Err;
  R.Ret = Ret;
  return R;
}

Value BCInterpreter::execMethod(const BCMethod &M, std::vector<Value> Args,
                                bool &Ok) {
  if (Depth >= MaxDepth) {
    Ok = fail(RuntimeError::StackOverflow);
    return Value();
  }
  ++Depth;

  std::vector<Value> Locals(M.MaxLocals);
  for (size_t I = 0; I != Args.size() && I < Locals.size(); ++I)
    Locals[I] = Args[I];
  std::vector<Value> Stack;
  Stack.reserve(M.MaxStack + 4);

  auto Push = [&](Value V) { Stack.push_back(V); };
  auto Pop = [&]() {
    assert(!Stack.empty() && "operand stack underflow");
    Value V = Stack.back();
    Stack.pop_back();
    return V;
  };

  const std::vector<uint8_t> &Code = M.Code;
  size_t PC = 0;

  auto U8 = [&]() { return Code[PC++]; };
  auto U16 = [&]() {
    uint16_t V = static_cast<uint16_t>((Code[PC] << 8) | Code[PC + 1]);
    PC += 2;
    return V;
  };
  auto BranchTo = [&](size_t OpPos) {
    int16_t Off = static_cast<int16_t>((Code[PC] << 8) | Code[PC + 1]);
    PC = OpPos + Off;
  };

  auto Return = [&](Value V) {
    --Depth;
    return V;
  };

  size_t OpPos = 0;
  // True when the fault was dispatched to a handler in this frame: the
  // operand stack is cleared and execution resumes at the handler, the
  // JVM exception-table model.
  bool Recovered = false;
  auto Fault = [&](RuntimeError E) {
    if (isCatchable(E)) {
      for (const BCMethod::ExEntry &Entry : M.ExTable) {
        if (OpPos >= Entry.Start && OpPos < Entry.End &&
            Entry.Handler < Code.size()) {
          Stack.clear();
          PC = Entry.Handler;
          Err = RuntimeError::None; // A callee may have set it already.
          Recovered = true;
          return Value();
        }
      }
    }
    Ok = fail(E);
    --Depth;
    return Value();
  };

  while (true) {
    if (PC >= Code.size())
      return Fault(RuntimeError::Internal);
    if (!RT.burnFuel())
      return Fault(RuntimeError::OutOfFuel);

    OpPos = PC;
    BC Op = static_cast<BC>(Code[PC++]);
    switch (Op) {
    case BC::Nop:
      break;
    case BC::AConstNull:
      Push(Value::makeNull());
      break;
    case BC::IConst0:
      Push(Value::makeInt(0));
      break;
    case BC::IConst1:
      Push(Value::makeInt(1));
      break;
    case BC::BIPush:
      Push(Value::makeInt(static_cast<int8_t>(U8())));
      break;
    case BC::SIPush:
      Push(Value::makeInt(static_cast<int16_t>(U16())));
      break;
    case BC::Ldc:
      Push(poolValue(U16()));
      break;
    case BC::ILoad:
    case BC::DLoad:
    case BC::ALoad:
      Push(Locals[U8()]);
      break;
    case BC::IStore:
    case BC::DStore:
    case BC::AStore:
      Locals[U8()] = Pop();
      break;
    case BC::IInc: {
      uint8_t Slot = U8();
      int8_t Delta = static_cast<int8_t>(U8());
      Locals[Slot] = Value::makeInt(wrap32(int64_t(Locals[Slot].I) + Delta));
      break;
    }
    case BC::Pop:
      Pop();
      break;
    case BC::Dup: {
      Value V = Pop();
      Push(V);
      Push(V);
      break;
    }
    case BC::DupX1: {
      Value A = Pop(), B = Pop();
      Push(A);
      Push(B);
      Push(A);
      break;
    }
    case BC::DupX2: {
      Value A = Pop(), B = Pop(), C = Pop();
      Push(A);
      Push(C);
      Push(B);
      Push(A);
      break;
    }
    case BC::Dup2: {
      Value A = Pop(), B = Pop();
      Push(B);
      Push(A);
      Push(B);
      Push(A);
      break;
    }
    case BC::Swap: {
      Value A = Pop(), B = Pop();
      Push(A);
      Push(B);
      break;
    }
    case BC::IAdd: {
      Value B = Pop(), A = Pop();
      Push(Value::makeInt(wrap32(int64_t(A.I) + B.I)));
      break;
    }
    case BC::ISub: {
      Value B = Pop(), A = Pop();
      Push(Value::makeInt(wrap32(int64_t(A.I) - B.I)));
      break;
    }
    case BC::IMul: {
      Value B = Pop(), A = Pop();
      Push(Value::makeInt(wrap32(int64_t(A.I) * B.I)));
      break;
    }
    case BC::IDiv: {
      Value B = Pop(), A = Pop();
      if (B.I == 0)
        {
          Value FV = Fault(RuntimeError::DivisionByZero);
          if (!Recovered)
            return FV;
          Recovered = false;
          break;
        }
      if (A.I == std::numeric_limits<int32_t>::min() && B.I == -1)
        Push(Value::makeInt(A.I));
      else
        Push(Value::makeInt(A.I / B.I));
      break;
    }
    case BC::IRem: {
      Value B = Pop(), A = Pop();
      if (B.I == 0)
        {
          Value FV = Fault(RuntimeError::DivisionByZero);
          if (!Recovered)
            return FV;
          Recovered = false;
          break;
        }
      if (A.I == std::numeric_limits<int32_t>::min() && B.I == -1)
        Push(Value::makeInt(0));
      else
        Push(Value::makeInt(A.I % B.I));
      break;
    }
    case BC::INeg: {
      Value A = Pop();
      Push(Value::makeInt(wrap32(-int64_t(A.I))));
      break;
    }
    case BC::IAnd: {
      Value B = Pop(), A = Pop();
      Push(Value::makeInt(A.I & B.I));
      break;
    }
    case BC::IOr: {
      Value B = Pop(), A = Pop();
      Push(Value::makeInt(A.I | B.I));
      break;
    }
    case BC::IXor: {
      Value B = Pop(), A = Pop();
      Push(Value::makeInt(A.I ^ B.I));
      break;
    }
    case BC::IShl: {
      Value B = Pop(), A = Pop();
      Push(Value::makeInt(wrap32(int64_t(A.I) << (B.I & 31))));
      break;
    }
    case BC::IShr: {
      Value B = Pop(), A = Pop();
      Push(Value::makeInt(A.I >> (B.I & 31)));
      break;
    }
    case BC::DAdd: {
      Value B = Pop(), A = Pop();
      Push(Value::makeDouble(A.D + B.D));
      break;
    }
    case BC::DSub: {
      Value B = Pop(), A = Pop();
      Push(Value::makeDouble(A.D - B.D));
      break;
    }
    case BC::DMul: {
      Value B = Pop(), A = Pop();
      Push(Value::makeDouble(A.D * B.D));
      break;
    }
    case BC::DDiv: {
      Value B = Pop(), A = Pop();
      Push(Value::makeDouble(A.D / B.D));
      break;
    }
    case BC::DNeg: {
      Value A = Pop();
      Push(Value::makeDouble(-A.D));
      break;
    }
    case BC::DCmpL:
    case BC::DCmpG: {
      Value B = Pop(), A = Pop();
      int32_t R;
      if (std::isnan(A.D) || std::isnan(B.D))
        R = Op == BC::DCmpL ? -1 : 1;
      else
        R = A.D < B.D ? -1 : (A.D > B.D ? 1 : 0);
      Push(Value::makeInt(R));
      break;
    }
    case BC::I2D: {
      Value A = Pop();
      Push(Value::makeDouble(static_cast<double>(A.I)));
      break;
    }
    case BC::D2I: {
      Value A = Pop();
      int32_t R;
      if (std::isnan(A.D))
        R = 0;
      else if (A.D >= 2147483647.0)
        R = std::numeric_limits<int32_t>::max();
      else if (A.D <= -2147483648.0)
        R = std::numeric_limits<int32_t>::min();
      else
        R = static_cast<int32_t>(A.D);
      Push(Value::makeInt(R));
      break;
    }
    case BC::I2C: {
      Value A = Pop();
      Push(Value::makeInt(A.I & 0xff));
      break;
    }
    case BC::Goto:
      BranchTo(OpPos);
      break;
    case BC::IfEq:
    case BC::IfNe:
    case BC::IfLt:
    case BC::IfGe:
    case BC::IfGt:
    case BC::IfLe: {
      int32_t V = Pop().I;
      bool Take = false;
      switch (Op) {
      case BC::IfEq:
        Take = V == 0;
        break;
      case BC::IfNe:
        Take = V != 0;
        break;
      case BC::IfLt:
        Take = V < 0;
        break;
      case BC::IfGe:
        Take = V >= 0;
        break;
      case BC::IfGt:
        Take = V > 0;
        break;
      default:
        Take = V <= 0;
        break;
      }
      if (Take)
        BranchTo(OpPos);
      else
        PC += 2;
      break;
    }
    case BC::IfICmpEq:
    case BC::IfICmpNe:
    case BC::IfICmpLt:
    case BC::IfICmpGe:
    case BC::IfICmpGt:
    case BC::IfICmpLe: {
      int32_t B = Pop().I, A = Pop().I;
      bool Take = false;
      switch (Op) {
      case BC::IfICmpEq:
        Take = A == B;
        break;
      case BC::IfICmpNe:
        Take = A != B;
        break;
      case BC::IfICmpLt:
        Take = A < B;
        break;
      case BC::IfICmpGe:
        Take = A >= B;
        break;
      case BC::IfICmpGt:
        Take = A > B;
        break;
      default:
        Take = A <= B;
        break;
      }
      if (Take)
        BranchTo(OpPos);
      else
        PC += 2;
      break;
    }
    case BC::IfACmpEq:
    case BC::IfACmpNe: {
      Value B = Pop(), A = Pop();
      bool Take = Op == BC::IfACmpEq ? A.R == B.R : A.R != B.R;
      if (Take)
        BranchTo(OpPos);
      else
        PC += 2;
      break;
    }
    case BC::IfNull:
    case BC::IfNonNull: {
      Value A = Pop();
      bool Take = Op == BC::IfNull ? A.R == 0 : A.R != 0;
      if (Take)
        BranchTo(OpPos);
      else
        PC += 2;
      break;
    }
    case BC::GetField: {
      uint16_t Idx = U16();
      Value Obj = Pop();
      if (Obj.R == 0)
        {
          Value FV = Fault(RuntimeError::NullPointer);
          if (!Recovered)
            return FV;
          Recovered = false;
          break;
        }
      Push(RT.cell(Obj.R).Slots[Module.PoolFields[Idx]->Slot]);
      break;
    }
    case BC::PutField: {
      uint16_t Idx = U16();
      Value V = Pop();
      Value Obj = Pop();
      if (Obj.R == 0)
        {
          Value FV = Fault(RuntimeError::NullPointer);
          if (!Recovered)
            return FV;
          Recovered = false;
          break;
        }
      RT.cell(Obj.R).Slots[Module.PoolFields[Idx]->Slot] = V;
      break;
    }
    case BC::GetStatic:
      Push(RT.getStatic(Module.PoolFields[U16()]->Slot));
      break;
    case BC::PutStatic:
      RT.setStatic(Module.PoolFields[U16()]->Slot, Pop());
      break;
    case BC::InvokeVirtual:
    case BC::InvokeStatic:
    case BC::InvokeSpecial: {
      uint16_t Idx = U16();
      MethodSymbol *Callee = Module.PoolMethods[Idx];
      unsigned NArgs = static_cast<unsigned>(Callee->ParamTys.size());
      bool HasRecv = Op != BC::InvokeStatic;
      std::vector<Value> CallArgs(NArgs + (HasRecv ? 1 : 0));
      for (size_t I = CallArgs.size(); I-- > 0;)
        CallArgs[I] = Pop();
      if (HasRecv) {
        if (CallArgs[0].R == 0)
          {
            Value FV = Fault(RuntimeError::NullPointer);
            if (!Recovered)
              return FV;
            Recovered = false;
            break;
          }
        if (Op == BC::InvokeVirtual) {
          const HeapCell &Cell = RT.cell(CallArgs[0].R);
          assert(!Cell.isArray() && Callee->VTableSlot >= 0);
          Callee = Cell.Class->VTable[Callee->VTableSlot];
        }
      }
      Value Ret;
      if (Callee->isNative()) {
        Ret = RT.callNative(Callee->Native, CallArgs);
      } else {
        const BCMethod *Body = Module.findMethod(Callee);
        if (!Body)
          {
            Value FV = Fault(RuntimeError::Internal);
            if (!Recovered)
              return FV;
            Recovered = false;
            break;
          }
        bool CalleeOk = true;
        Ret = execMethod(*Body, std::move(CallArgs), CalleeOk);
        if (!CalleeOk) {
          // The callee recorded the error; try this frame's handlers.
          RuntimeError E = Err;
          Err = RuntimeError::None;
          Value FV = Fault(E);
          if (!Recovered) {
            --Depth;
            Ok = false;
            return FV;
          }
          Recovered = false;
          break;
        }
      }
      if (!Callee->RetTy->isVoid())
        Push(Ret);
      break;
    }
    case BC::New: {
      uint16_t Idx = U16();
      Type *Ty = Module.PoolTypes[Idx];
      Push(Value::makeRef(RT.allocObject(Ty->getClassSymbol())));
      break;
    }
    case BC::NewArray: {
      uint16_t Idx = U16();
      Type *Elem = Module.PoolTypes[Idx];
      Value Len = Pop();
      if (Len.I < 0)
        {
          Value FV = Fault(RuntimeError::NegativeArraySize);
          if (!Recovered)
            return FV;
          Recovered = false;
          break;
        }
      if (!RT.arrayFitsBudget(Len.I))
        {
          Value FV = Fault(RuntimeError::OutOfMemory);
          if (!Recovered)
            return FV;
          Recovered = false;
          break;
        }
      Push(Value::makeRef(RT.allocArray(Elem, Len.I)));
      break;
    }
    case BC::ArrayLength: {
      Value Arr = Pop();
      if (Arr.R == 0)
        {
          Value FV = Fault(RuntimeError::NullPointer);
          if (!Recovered)
            return FV;
          Recovered = false;
          break;
        }
      Push(Value::makeInt(
          static_cast<int32_t>(RT.cell(Arr.R).Slots.size())));
      break;
    }
    case BC::IALoad:
    case BC::DALoad:
    case BC::AALoad:
    case BC::CALoad:
    case BC::BALoad: {
      Value Index = Pop();
      Value Arr = Pop();
      if (Arr.R == 0)
        {
          Value FV = Fault(RuntimeError::NullPointer);
          if (!Recovered)
            return FV;
          Recovered = false;
          break;
        }
      HeapCell &Cell = RT.cell(Arr.R);
      if (Index.I < 0 ||
          static_cast<size_t>(Index.I) >= Cell.Slots.size())
        {
          Value FV = Fault(RuntimeError::IndexOutOfBounds);
          if (!Recovered)
            return FV;
          Recovered = false;
          break;
        }
      Value V = Cell.Slots[Index.I];
      // Chars and booleans widen to int on the stack.
      if (Op == BC::CALoad || Op == BC::BALoad)
        V = Value::makeInt(V.I);
      Push(V);
      break;
    }
    case BC::IAStore:
    case BC::DAStore:
    case BC::AAStore:
    case BC::CAStore:
    case BC::BAStore: {
      Value V = Pop();
      Value Index = Pop();
      Value Arr = Pop();
      if (Arr.R == 0)
        {
          Value FV = Fault(RuntimeError::NullPointer);
          if (!Recovered)
            return FV;
          Recovered = false;
          break;
        }
      HeapCell &Cell = RT.cell(Arr.R);
      if (Index.I < 0 ||
          static_cast<size_t>(Index.I) >= Cell.Slots.size())
        {
          Value FV = Fault(RuntimeError::IndexOutOfBounds);
          if (!Recovered)
            return FV;
          Recovered = false;
          break;
        }
      if (Op == BC::CAStore)
        V = Value::makeChar(static_cast<char>(V.I & 0xff));
      else if (Op == BC::BAStore)
        V = Value::makeBool(V.I != 0);
      Cell.Slots[Index.I] = V;
      break;
    }
    case BC::CheckCast: {
      uint16_t Idx = U16();
      Type *Ty = Module.PoolTypes[Idx];
      Value V = Pop();
      if (V.R != 0) {
        const HeapCell &Cell = RT.cell(V.R);
        bool IsOk;
        if (Ty->isArray())
          IsOk = Cell.isArray() && Cell.ArrayElemTy == Ty->getElemType();
        else
          IsOk = !Cell.isArray() &&
                 Cell.Class->isSubclassOf(Ty->getClassSymbol());
        if (!IsOk)
          {
            Value FV = Fault(RuntimeError::ClassCast);
            if (!Recovered)
              return FV;
            Recovered = false;
            break;
          }
      }
      Push(V);
      break;
    }
    case BC::InstanceOf: {
      uint16_t Idx = U16();
      Type *Ty = Module.PoolTypes[Idx];
      Value V = Pop();
      bool Is = false;
      if (V.R != 0) {
        const HeapCell &Cell = RT.cell(V.R);
        if (Ty->isArray())
          Is = Cell.isArray() && Cell.ArrayElemTy == Ty->getElemType();
        else
          Is = !Cell.isArray() &&
               Cell.Class->isSubclassOf(Ty->getClassSymbol());
      }
      Push(Value::makeBool(Is));
      break;
    }
    case BC::IReturn:
    case BC::DReturn:
    case BC::AReturn:
      return Return(Pop());
    case BC::Return:
      return Return(Value());
    }
  }
}
