//===- bytecode/BCVerifier.h - Dataflow verification ----------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline's verifier: a worklist abstract interpretation over
/// operand-stack and local types, in the style of the JVM's bytecode
/// verifier. This is exactly the "expensive verification phase …
/// requires a data flow analysis" that the paper contrasts with SafeTSA's
/// counter checks (§9); bench_verify_time measures the two against each
/// other on the same corpus.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_BYTECODE_BCVERIFIER_H
#define SAFETSA_BYTECODE_BCVERIFIER_H

#include "bytecode/Bytecode.h"

#include <string>
#include <vector>

namespace safetsa {

class BCVerifier {
public:
  explicit BCVerifier(const BCModule &Module) : Module(Module) {}

  /// Verifies every method; true when the module is type- and stack-safe.
  bool verify();

  bool verifyMethod(const BCClass &Class, const BCMethod &M);

  const std::vector<std::string> &getErrors() const { return Errors; }

  /// Number of dataflow iterations performed (for the cost benchmark).
  uint64_t getIterationCount() const { return Iterations; }

private:
  /// Coarse verification types: enough to stop type confusion between
  /// the integer, floating, and reference universes.
  enum class AType : uint8_t { Top, Int, Double, Ref };

  struct VState {
    bool Reached = false;
    std::vector<AType> Stack;
    std::vector<AType> Locals;
  };

  void error(const BCMethod &M, size_t PC, const std::string &Msg);

  static AType descKind(char C);
  bool mergeInto(VState &Dst, const VState &Src);

  const BCModule &Module;
  std::vector<std::string> Errors;
  uint64_t Iterations = 0;
};

} // namespace safetsa

#endif // SAFETSA_BYTECODE_BCVERIFIER_H
