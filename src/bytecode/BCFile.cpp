//===- bytecode/BCFile.cpp ------------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bytecode/BCFile.h"

#include <cstring>

using namespace safetsa;

static const uint32_t Magic = 0x4d4a4243; // "MJBC"
static const uint16_t Version = 1;

namespace {

class ByteWriter {
public:
  std::vector<uint8_t> Bytes;

  void u8(uint8_t V) { Bytes.push_back(V); }
  void u16(uint16_t V) {
    Bytes.push_back(static_cast<uint8_t>(V >> 8));
    Bytes.push_back(static_cast<uint8_t>(V));
  }
  void u32(uint32_t V) {
    u16(static_cast<uint16_t>(V >> 16));
    u16(static_cast<uint16_t>(V));
  }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    u32(static_cast<uint32_t>(Bits >> 32));
    u32(static_cast<uint32_t>(Bits));
  }
  void str(const std::string &S) {
    u16(static_cast<uint16_t>(S.size()));
    for (char C : S)
      Bytes.push_back(static_cast<uint8_t>(C));
  }
};

class ByteReader {
public:
  explicit ByteReader(const std::vector<uint8_t> &Bytes) : Bytes(Bytes) {}

  bool u8(uint8_t &V) {
    if (Pos >= Bytes.size())
      return false;
    V = Bytes[Pos++];
    return true;
  }
  bool u16(uint16_t &V) {
    uint8_t A, B;
    if (!u8(A) || !u8(B))
      return false;
    V = static_cast<uint16_t>((A << 8) | B);
    return true;
  }
  bool u32(uint32_t &V) {
    uint16_t A, B;
    if (!u16(A) || !u16(B))
      return false;
    V = (static_cast<uint32_t>(A) << 16) | B;
    return true;
  }
  bool f64(double &V) {
    uint32_t Hi, Lo;
    if (!u32(Hi) || !u32(Lo))
      return false;
    uint64_t Bits = (static_cast<uint64_t>(Hi) << 32) | Lo;
    std::memcpy(&V, &Bits, sizeof(V));
    return true;
  }
  bool str(std::string &S) {
    uint16_t Len;
    if (!u16(Len) || Pos + Len > Bytes.size())
      return false;
    S.assign(Bytes.begin() + Pos, Bytes.begin() + Pos + Len);
    Pos += Len;
    return true;
  }
  bool blob(std::vector<uint8_t> &Out, uint32_t Len) {
    if (Pos + Len > Bytes.size())
      return false;
    Out.assign(Bytes.begin() + Pos, Bytes.begin() + Pos + Len);
    Pos += Len;
    return true;
  }
  bool atEnd() const { return Pos == Bytes.size(); }

private:
  const std::vector<uint8_t> &Bytes;
  size_t Pos = 0;
};

} // namespace

std::vector<uint8_t> safetsa::writeBCModule(const BCModule &M) {
  ByteWriter W;
  W.u32(Magic);
  W.u16(Version);

  W.u16(static_cast<uint16_t>(M.Pool.size()));
  for (size_t I = 1; I < M.Pool.size(); ++I) {
    const PoolEntry &E = M.Pool[I];
    W.u8(static_cast<uint8_t>(E.K));
    switch (E.K) {
    case PoolEntry::Kind::Utf8:
      W.str(E.Str);
      break;
    case PoolEntry::Kind::Int:
      W.u32(static_cast<uint32_t>(E.IntVal));
      break;
    case PoolEntry::Kind::Double:
      W.f64(E.DblVal);
      break;
    case PoolEntry::Kind::StrChars:
    case PoolEntry::Kind::Class:
      W.u16(E.Index);
      break;
    case PoolEntry::Kind::FieldRef:
    case PoolEntry::Kind::MethodRef:
      W.u16(E.ClassIndex);
      W.u16(E.NameIndex);
      W.u16(E.DescIndex);
      break;
    }
  }

  W.u16(static_cast<uint16_t>(M.Classes.size()));
  for (const BCClass &C : M.Classes) {
    W.u16(C.NameIndex);
    W.u16(C.SuperIndex);
    W.u16(static_cast<uint16_t>(C.Fields.size()));
    for (const BCClass::Field &F : C.Fields) {
      W.u16(F.NameIndex);
      W.u16(F.DescIndex);
      W.u8(F.Flags);
      W.u16(F.InitPool);
    }
    W.u16(static_cast<uint16_t>(C.Methods.size()));
    for (const BCMethod &Mth : C.Methods) {
      W.u16(Mth.NameIndex);
      W.u16(Mth.DescIndex);
      W.u8(Mth.Flags);
      W.u16(Mth.MaxStack);
      W.u16(Mth.MaxLocals);
      W.u32(static_cast<uint32_t>(Mth.Code.size()));
      for (uint8_t B : Mth.Code)
        W.u8(B);
      W.u16(static_cast<uint16_t>(Mth.ExTable.size()));
      for (const BCMethod::ExEntry &E : Mth.ExTable) {
        W.u16(E.Start);
        W.u16(E.End);
        W.u16(E.Handler);
      }
    }
  }
  return std::move(W.Bytes);
}

std::unique_ptr<BCModule> safetsa::readBCModule(
    const std::vector<uint8_t> &Bytes, std::string *Err) {
  auto Fail = [&](const char *Msg) -> std::unique_ptr<BCModule> {
    if (Err)
      *Err = Msg;
    return nullptr;
  };

  ByteReader R(Bytes);
  uint32_t Mg;
  uint16_t Ver;
  if (!R.u32(Mg) || Mg != Magic)
    return Fail("bad magic");
  if (!R.u16(Ver) || Ver != Version)
    return Fail("unsupported version");

  auto M = std::make_unique<BCModule>();
  uint16_t PoolCount;
  if (!R.u16(PoolCount) || PoolCount == 0)
    return Fail("bad constant-pool count");
  M->Pool.resize(PoolCount);
  for (uint16_t I = 1; I < PoolCount; ++I) {
    uint8_t Tag;
    if (!R.u8(Tag) || Tag > static_cast<uint8_t>(PoolEntry::Kind::MethodRef))
      return Fail("bad constant-pool tag");
    PoolEntry &E = M->Pool[I];
    E.K = static_cast<PoolEntry::Kind>(Tag);
    switch (E.K) {
    case PoolEntry::Kind::Utf8:
      if (!R.str(E.Str))
        return Fail("truncated utf8 entry");
      break;
    case PoolEntry::Kind::Int: {
      uint32_t V;
      if (!R.u32(V))
        return Fail("truncated int entry");
      E.IntVal = static_cast<int32_t>(V);
      break;
    }
    case PoolEntry::Kind::Double:
      if (!R.f64(E.DblVal))
        return Fail("truncated double entry");
      break;
    case PoolEntry::Kind::StrChars:
    case PoolEntry::Kind::Class:
      if (!R.u16(E.Index) || E.Index == 0 || E.Index >= PoolCount)
        return Fail("bad utf8 reference");
      break;
    case PoolEntry::Kind::FieldRef:
    case PoolEntry::Kind::MethodRef:
      if (!R.u16(E.ClassIndex) || !R.u16(E.NameIndex) || !R.u16(E.DescIndex))
        return Fail("truncated member reference");
      if (E.ClassIndex == 0 || E.ClassIndex >= PoolCount ||
          E.NameIndex == 0 || E.NameIndex >= PoolCount || E.DescIndex == 0 ||
          E.DescIndex >= PoolCount)
        return Fail("bad member reference index");
      break;
    }
  }
  // Second pass: referenced entries must have the right kinds.
  for (uint16_t I = 1; I < PoolCount; ++I) {
    const PoolEntry &E = M->Pool[I];
    auto IsUtf8 = [&](uint16_t Idx) {
      return M->Pool[Idx].K == PoolEntry::Kind::Utf8;
    };
    switch (E.K) {
    case PoolEntry::Kind::StrChars:
    case PoolEntry::Kind::Class:
      if (!IsUtf8(E.Index))
        return Fail("reference is not utf8");
      break;
    case PoolEntry::Kind::FieldRef:
    case PoolEntry::Kind::MethodRef:
      if (M->Pool[E.ClassIndex].K != PoolEntry::Kind::Class ||
          !IsUtf8(E.NameIndex) || !IsUtf8(E.DescIndex))
        return Fail("member reference has wrong entry kinds");
      break;
    default:
      break;
    }
  }

  uint16_t NumClasses;
  if (!R.u16(NumClasses))
    return Fail("truncated class count");
  auto CheckClassIdx = [&](uint16_t Idx, bool AllowZero) {
    if (Idx == 0)
      return AllowZero;
    return Idx < PoolCount && M->Pool[Idx].K == PoolEntry::Kind::Class;
  };
  auto CheckUtf8Idx = [&](uint16_t Idx) {
    return Idx != 0 && Idx < PoolCount &&
           M->Pool[Idx].K == PoolEntry::Kind::Utf8;
  };
  for (unsigned CI = 0; CI != NumClasses; ++CI) {
    BCClass C;
    if (!R.u16(C.NameIndex) || !R.u16(C.SuperIndex))
      return Fail("truncated class header");
    if (!CheckClassIdx(C.NameIndex, false) ||
        !CheckClassIdx(C.SuperIndex, true))
      return Fail("bad class name reference");
    uint16_t NumFields;
    if (!R.u16(NumFields))
      return Fail("truncated field count");
    for (unsigned FI = 0; FI != NumFields; ++FI) {
      BCClass::Field F;
      if (!R.u16(F.NameIndex) || !R.u16(F.DescIndex) || !R.u8(F.Flags) ||
          !R.u16(F.InitPool))
        return Fail("truncated field");
      if (!CheckUtf8Idx(F.NameIndex) || !CheckUtf8Idx(F.DescIndex))
        return Fail("bad field reference");
      if (F.InitPool >= PoolCount)
        return Fail("bad field initializer index");
      C.Fields.push_back(F);
    }
    uint16_t NumMethods;
    if (!R.u16(NumMethods))
      return Fail("truncated method count");
    for (unsigned MI = 0; MI != NumMethods; ++MI) {
      BCMethod Mth;
      uint32_t CodeLen;
      if (!R.u16(Mth.NameIndex) || !R.u16(Mth.DescIndex) ||
          !R.u8(Mth.Flags) || !R.u16(Mth.MaxStack) ||
          !R.u16(Mth.MaxLocals) || !R.u32(CodeLen))
        return Fail("truncated method header");
      if (!CheckUtf8Idx(Mth.NameIndex) || !CheckUtf8Idx(Mth.DescIndex))
        return Fail("bad method reference");
      if (!R.blob(Mth.Code, CodeLen))
        return Fail("truncated method code");
      uint16_t NumEx;
      if (!R.u16(NumEx))
        return Fail("truncated exception-table count");
      for (unsigned EI = 0; EI != NumEx; ++EI) {
        BCMethod::ExEntry E;
        if (!R.u16(E.Start) || !R.u16(E.End) || !R.u16(E.Handler))
          return Fail("truncated exception-table entry");
        if (E.Start >= E.End || E.End > Mth.Code.size() ||
            E.Handler >= Mth.Code.size())
          return Fail("bad exception-table range");
        Mth.ExTable.push_back(E);
      }
      C.Methods.push_back(std::move(Mth));
    }
    M->Classes.push_back(std::move(C));
  }
  if (!R.atEnd())
    return Fail("trailing bytes after module");

  M->PoolMethods.assign(M->Pool.size(), nullptr);
  M->PoolFields.assign(M->Pool.size(), nullptr);
  M->PoolTypes.assign(M->Pool.size(), nullptr);
  return M;
}

Type *safetsa::parseDescriptor(const std::string &Desc, TypeContext &Types,
                               ClassTable &Table) {
  if (Desc.empty())
    return nullptr;
  if (Desc.size() == 1) {
    switch (Desc[0]) {
    case 'I':
      return Types.getInt();
    case 'D':
      return Types.getDouble();
    case 'Z':
      return Types.getBoolean();
    case 'C':
      return Types.getChar();
    case 'V':
      return Types.getVoid();
    default:
      break; // Could still be a one-letter class name.
    }
  }
  if (Desc[0] == '[') {
    Type *Elem = parseDescriptor(Desc.substr(1), Types, Table);
    if (!Elem || Elem->isVoid())
      return nullptr;
    return Types.getArray(Elem);
  }
  if (Desc[0] == 'L' && Desc.back() == ';') {
    ClassSymbol *C = Table.lookup(Desc.substr(1, Desc.size() - 2));
    return C ? Types.getClass(C) : nullptr;
  }
  // Bare class names appear for New/ClassRef pool entries. MJ class names
  // cannot contain '[' / ';' so the forms above never collide with them,
  // except the single descriptor letters, which MJ programs would shadow
  // as class names — the builtin table contains none, and sema would have
  // to accept such a class first for it to be referenced here.
  if (ClassSymbol *C = Table.lookup(Desc))
    return Types.getClass(C);
  return nullptr;
}

bool safetsa::linkBCModule(BCModule &M, ClassTable &Table, TypeContext &Types,
                           std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  M.Table = &Table;
  M.PoolMethods.assign(M.Pool.size(), nullptr);
  M.PoolFields.assign(M.Pool.size(), nullptr);
  M.PoolTypes.assign(M.Pool.size(), nullptr);

  auto Utf8 = [&](uint16_t Idx) -> const std::string & {
    return M.Pool[Idx].Str;
  };

  for (size_t I = 1; I < M.Pool.size(); ++I) {
    const PoolEntry &E = M.Pool[I];
    switch (E.K) {
    case PoolEntry::Kind::Class: {
      Type *Ty = parseDescriptor(Utf8(E.Index), Types, Table);
      if (!Ty)
        return Fail("unresolved class '" + Utf8(E.Index) + "'");
      M.PoolTypes[I] = Ty;
      break;
    }
    case PoolEntry::Kind::FieldRef: {
      const std::string &ClassName = Utf8(M.Pool[E.ClassIndex].Index);
      ClassSymbol *C = Table.lookup(ClassName);
      if (!C)
        return Fail("unresolved class '" + ClassName + "'");
      FieldSymbol *F = C->findField(Utf8(E.NameIndex));
      if (!F || typeDescriptor(F->Ty) != Utf8(E.DescIndex))
        return Fail("unresolved field '" + Utf8(E.NameIndex) + "'");
      M.PoolFields[I] = F;
      break;
    }
    case PoolEntry::Kind::MethodRef: {
      const std::string &ClassName = Utf8(M.Pool[E.ClassIndex].Index);
      ClassSymbol *C = Table.lookup(ClassName);
      if (!C)
        return Fail("unresolved class '" + ClassName + "'");
      const std::string &Name = Utf8(E.NameIndex);
      const std::string &Desc = Utf8(E.DescIndex);
      MethodSymbol *Found = nullptr;
      for (const ClassSymbol *S = C; S && !Found; S = S->Super)
        for (const auto &Mth : S->Methods) {
          std::string D = "(";
          for (Type *T : Mth->ParamTys)
            D += typeDescriptor(T);
          D += ")" + typeDescriptor(Mth->RetTy);
          std::string N = Mth->IsConstructor ? "<init>" : Mth->Name;
          if (N == Name && D == Desc) {
            Found = Mth.get();
            break;
          }
        }
      if (!Found)
        return Fail("unresolved method '" + Name + "'");
      M.PoolMethods[I] = Found;
      break;
    }
    default:
      break;
    }
  }

  for (BCClass &C : M.Classes) {
    const std::string &ClassName = Utf8(M.Pool[C.NameIndex].Index);
    ClassSymbol *CS = Table.lookup(ClassName);
    if (!CS)
      return Fail("unresolved class '" + ClassName + "'");
    C.Symbol = CS;
    for (BCClass::Field &F : C.Fields) {
      F.Symbol = CS->findField(Utf8(F.NameIndex));
      if (!F.Symbol)
        return Fail("unresolved field '" + Utf8(F.NameIndex) + "'");
    }
    for (BCMethod &Mth : C.Methods) {
      const std::string &Name = Utf8(Mth.NameIndex);
      const std::string &Desc = Utf8(Mth.DescIndex);
      for (const auto &Cand : CS->Methods) {
        std::string D = "(";
        for (Type *T : Cand->ParamTys)
          D += typeDescriptor(T);
        D += ")" + typeDescriptor(Cand->RetTy);
        std::string N = Cand->IsConstructor ? "<init>" : Cand->Name;
        if (N == Name && D == Desc) {
          Mth.Symbol = Cand.get();
          break;
        }
      }
      if (!Mth.Symbol)
        return Fail("unresolved method body '" + Name + "'");
    }
  }
  return true;
}
