//===- ast/AST.h - MJ abstract syntax trees -------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for MJ, the Java-subset source language (DESIGN.md §2). Nodes carry
/// a Kind tag for LLVM-style dispatch (no RTTI). Sema annotates expression
/// nodes in place (resolved types, symbols, dispatch kinds), and the
/// SafeTSA and bytecode generators both consume the annotated tree — the
/// AST plays the role of the paper's "Unified Abstract Syntax Tree".
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_AST_AST_H
#define SAFETSA_AST_AST_H

#include "support/SourceLoc.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace safetsa {

class Type;
struct ClassSymbol;
struct FieldSymbol;
struct MethodSymbol;

/// A local variable or parameter within one method body. Defined here (not
/// in sema) because MethodDecl owns its locals.
struct LocalSymbol {
  std::string Name;
  Type *Ty = nullptr;
  SourceLoc Loc;
  bool IsParam = false;
  /// Dense index within the method (params first), used by the bytecode
  /// backend as the JVM-style local slot and by SSA renaming as the
  /// variable key.
  unsigned Index = 0;
};

//===----------------------------------------------------------------------===//
// Type references (syntactic, pre-sema)
//===----------------------------------------------------------------------===//

enum class PrimTypeKind : uint8_t { Int, Boolean, Double, Char };

/// A syntactic mention of a type: a primitive or class name plus array
/// dimensions. Sema resolves it to a canonical Type.
struct TypeRef {
  enum class Kind : uint8_t { Prim, Named, Void } K = Kind::Void;
  PrimTypeKind Prim = PrimTypeKind::Int;
  std::string Name;
  unsigned ArrayDims = 0;
  SourceLoc Loc;

  static TypeRef makePrim(PrimTypeKind P, SourceLoc Loc) {
    TypeRef T;
    T.K = Kind::Prim;
    T.Prim = P;
    T.Loc = Loc;
    return T;
  }
  static TypeRef makeNamed(std::string Name, SourceLoc Loc) {
    TypeRef T;
    T.K = Kind::Named;
    T.Name = std::move(Name);
    T.Loc = Loc;
    return T;
  }
  static TypeRef makeVoid(SourceLoc Loc) {
    TypeRef T;
    T.K = Kind::Void;
    T.Loc = Loc;
    return T;
  }
  bool isVoid() const { return K == Kind::Void && ArrayDims == 0; }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  IntLiteral,
  DoubleLiteral,
  BoolLiteral,
  CharLiteral,
  StringLiteral,
  NullLiteral,
  Name,
  This,
  FieldAccess,
  Index,
  Call,
  NewObject,
  NewArray,
  Unary,
  Binary,
  Assign,
  Cast,
  Instanceof
};

/// Base of all expressions. Sema fills Ty with the canonical result type.
class Expr {
public:
  const ExprKind Kind;
  SourceLoc Loc;
  Type *Ty = nullptr; // Set by sema; Error type on failed analysis.

  virtual ~Expr();

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLiteralExpr : public Expr {
public:
  int64_t Value;
  IntLiteralExpr(int64_t Value, SourceLoc Loc)
      : Expr(ExprKind::IntLiteral, Loc), Value(Value) {}
};

class DoubleLiteralExpr : public Expr {
public:
  double Value;
  DoubleLiteralExpr(double Value, SourceLoc Loc)
      : Expr(ExprKind::DoubleLiteral, Loc), Value(Value) {}
};

class BoolLiteralExpr : public Expr {
public:
  bool Value;
  BoolLiteralExpr(bool Value, SourceLoc Loc)
      : Expr(ExprKind::BoolLiteral, Loc), Value(Value) {}
};

class CharLiteralExpr : public Expr {
public:
  char Value;
  CharLiteralExpr(char Value, SourceLoc Loc)
      : Expr(ExprKind::CharLiteral, Loc), Value(Value) {}
};

/// A string literal; its MJ type is char[] (a fresh array per evaluation
/// would be wasteful, so both back ends materialize it as a constant-pool
/// char array that programs must not mutate — documented MJ restriction).
class StringLiteralExpr : public Expr {
public:
  std::string Value;
  StringLiteralExpr(std::string Value, SourceLoc Loc)
      : Expr(ExprKind::StringLiteral, Loc), Value(std::move(Value)) {}
};

class NullLiteralExpr : public Expr {
public:
  explicit NullLiteralExpr(SourceLoc Loc) : Expr(ExprKind::NullLiteral, Loc) {}
};

/// How sema resolved a bare identifier.
enum class NameResolution : uint8_t {
  Unresolved,
  Local,       ///< A local variable or parameter (ResolvedLocal).
  FieldOfThis, ///< An instance field of the enclosing class (ResolvedField).
  StaticField, ///< A static field of the enclosing class (ResolvedField).
  ClassName    ///< A class name, legal only as a member-access base.
};

class NameExpr : public Expr {
public:
  std::string Name;
  NameResolution Resolution = NameResolution::Unresolved;
  LocalSymbol *ResolvedLocal = nullptr;
  FieldSymbol *ResolvedField = nullptr;
  ClassSymbol *ResolvedClass = nullptr;

  NameExpr(std::string Name, SourceLoc Loc)
      : Expr(ExprKind::Name, Loc), Name(std::move(Name)) {}
};

class ThisExpr : public Expr {
public:
  explicit ThisExpr(SourceLoc Loc) : Expr(ExprKind::This, Loc) {}
};

/// `base.name`. Sema resolves to an instance field, a static field (when
/// the base is a class name), or the built-in array `length`.
class FieldAccessExpr : public Expr {
public:
  ExprPtr Base;
  std::string Name;
  FieldSymbol *ResolvedField = nullptr;
  bool IsArrayLength = false;

  FieldAccessExpr(ExprPtr Base, std::string Name, SourceLoc Loc)
      : Expr(ExprKind::FieldAccess, Loc), Base(std::move(Base)),
        Name(std::move(Name)) {}
};

class IndexExpr : public Expr {
public:
  ExprPtr Base;
  ExprPtr Index;

  IndexExpr(ExprPtr Base, ExprPtr Index, SourceLoc Loc)
      : Expr(ExprKind::Index, Loc), Base(std::move(Base)),
        Index(std::move(Index)) {}
};

/// How a resolved call will be dispatched; mirrors the paper's xcall
/// (static binding) vs. xdispatch (dynamic binding) split.
enum class DispatchKind : uint8_t {
  Static,  ///< Static method: no receiver (paper: xcall).
  Direct,  ///< Instance method bound statically, e.g. constructors (xcall).
  Virtual  ///< Instance method through the vtable (paper: xdispatch).
};

/// `base.name(args)` or `name(args)` (implicit this / static). Overloads
/// are resolved by sema, which also inserts implicit argument conversions,
/// matching the paper's requirement that "the code producer is required to
/// resolve overloaded methods".
class CallExpr : public Expr {
public:
  ExprPtr Base; // Null for unqualified calls.
  std::string Name;
  std::vector<ExprPtr> Args;
  MethodSymbol *ResolvedMethod = nullptr;
  DispatchKind Dispatch = DispatchKind::Virtual;
  /// For unqualified instance-method calls, sema marks that the receiver is
  /// the implicit `this`.
  bool ImplicitThis = false;
  /// When the base was a class name (static call), sema records it here.
  ClassSymbol *BaseClass = nullptr;

  CallExpr(ExprPtr Base, std::string Name, std::vector<ExprPtr> Args,
           SourceLoc Loc)
      : Expr(ExprKind::Call, Loc), Base(std::move(Base)),
        Name(std::move(Name)), Args(std::move(Args)) {}
};

class NewObjectExpr : public Expr {
public:
  std::string ClassName;
  std::vector<ExprPtr> Args;
  ClassSymbol *ResolvedClass = nullptr;
  MethodSymbol *ResolvedCtor = nullptr; // Null when using the default ctor.

  NewObjectExpr(std::string ClassName, std::vector<ExprPtr> Args,
                SourceLoc Loc)
      : Expr(ExprKind::NewObject, Loc), ClassName(std::move(ClassName)),
        Args(std::move(Args)) {}
};

class NewArrayExpr : public Expr {
public:
  TypeRef ElemType;
  ExprPtr Length;

  NewArrayExpr(TypeRef ElemType, ExprPtr Length, SourceLoc Loc)
      : Expr(ExprKind::NewArray, Loc), ElemType(std::move(ElemType)),
        Length(std::move(Length)) {}
};

enum class UnaryOp : uint8_t {
  Neg,
  Not,
  BitNot,
  PreInc,
  PreDec,
  PostInc,
  PostDec
};

class UnaryExpr : public Expr {
public:
  UnaryOp Op;
  ExprPtr Operand;

  UnaryExpr(UnaryOp Op, ExprPtr Operand, SourceLoc Loc)
      : Expr(ExprKind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {}
};

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Shr,
  Lt,
  Gt,
  Le,
  Ge,
  Eq,
  Ne,
  LAnd, ///< Short-circuit; lowered to if-else per paper footnote 3.
  LOr   ///< Short-circuit; lowered to if-else per paper footnote 3.
};

class BinaryExpr : public Expr {
public:
  BinaryOp Op;
  ExprPtr Lhs;
  ExprPtr Rhs;

  BinaryExpr(BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs, SourceLoc Loc)
      : Expr(ExprKind::Binary, Loc), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
};

/// Assignment, including compound forms. For `a op= b` sema checks the
/// expanded `a = a op b`; the generators expand it the same way.
class AssignExpr : public Expr {
public:
  /// Compound operator, or none for plain '='.
  enum class OpKind : uint8_t { None, Add, Sub, Mul, Div, Rem } Op;
  ExprPtr Target;
  ExprPtr Value;

  AssignExpr(OpKind Op, ExprPtr Target, ExprPtr Value, SourceLoc Loc)
      : Expr(ExprKind::Assign, Loc), Op(Op), Target(std::move(Target)),
        Value(std::move(Value)) {}
};

/// What a (T)expr cast means after sema; maps directly onto SafeTSA's
/// cast machinery (§4 of the paper).
enum class CastLowering : uint8_t {
  Identity,      ///< Same type; no code.
  IntToDouble,   ///< Numeric widening.
  CharToInt,     ///< Numeric widening.
  DoubleToInt,   ///< Numeric narrowing (truncation toward zero).
  IntToChar,     ///< Numeric narrowing (low 16 bits semantics; we use 8).
  DoubleToChar,  ///< Via int.
  RefWiden,      ///< Upcast in Java terms; SafeTSA downcast (free).
  RefNarrow      ///< Downcast in Java terms; SafeTSA upcast (checked).
};

class CastExpr : public Expr {
public:
  TypeRef TargetType;
  ExprPtr Operand;
  CastLowering Lowering = CastLowering::Identity;

  CastExpr(TypeRef TargetType, ExprPtr Operand, SourceLoc Loc)
      : Expr(ExprKind::Cast, Loc), TargetType(std::move(TargetType)),
        Operand(std::move(Operand)) {}
};

class InstanceofExpr : public Expr {
public:
  ExprPtr Operand;
  TypeRef TargetType;
  Type *ResolvedTarget = nullptr;

  InstanceofExpr(ExprPtr Operand, TypeRef TargetType, SourceLoc Loc)
      : Expr(ExprKind::Instanceof, Loc), Operand(std::move(Operand)),
        TargetType(std::move(TargetType)) {}
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Block,
  VarDecl,
  Expr,
  If,
  While,
  DoWhile,
  For,
  Return,
  Break,
  Continue,
  Try,
  Empty
};

class Stmt {
public:
  const StmtKind Kind;
  SourceLoc Loc;

  virtual ~Stmt();

protected:
  Stmt(StmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
};

using StmtPtr = std::unique_ptr<Stmt>;

class BlockStmt : public Stmt {
public:
  std::vector<StmtPtr> Stmts;

  BlockStmt(std::vector<StmtPtr> Stmts, SourceLoc Loc)
      : Stmt(StmtKind::Block, Loc), Stmts(std::move(Stmts)) {}
};

class VarDeclStmt : public Stmt {
public:
  TypeRef DeclType;
  std::string Name;
  ExprPtr Init; // May be null.
  LocalSymbol *Symbol = nullptr;

  VarDeclStmt(TypeRef DeclType, std::string Name, ExprPtr Init, SourceLoc Loc)
      : Stmt(StmtKind::VarDecl, Loc), DeclType(std::move(DeclType)),
        Name(std::move(Name)), Init(std::move(Init)) {}
};

class ExprStmt : public Stmt {
public:
  ExprPtr E;

  ExprStmt(ExprPtr E, SourceLoc Loc) : Stmt(StmtKind::Expr, Loc),
                                       E(std::move(E)) {}
};

class IfStmt : public Stmt {
public:
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; // May be null.

  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceLoc Loc)
      : Stmt(StmtKind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
};

class WhileStmt : public Stmt {
public:
  ExprPtr Cond;
  StmtPtr Body;

  WhileStmt(ExprPtr Cond, StmtPtr Body, SourceLoc Loc)
      : Stmt(StmtKind::While, Loc), Cond(std::move(Cond)),
        Body(std::move(Body)) {}
};

class DoWhileStmt : public Stmt {
public:
  StmtPtr Body;
  ExprPtr Cond;

  DoWhileStmt(StmtPtr Body, ExprPtr Cond, SourceLoc Loc)
      : Stmt(StmtKind::DoWhile, Loc), Body(std::move(Body)),
        Cond(std::move(Cond)) {}
};

class ForStmt : public Stmt {
public:
  StmtPtr Init;   // VarDeclStmt or ExprStmt; may be null.
  ExprPtr Cond;   // May be null (infinite loop).
  ExprPtr Update; // May be null.
  StmtPtr Body;

  ForStmt(StmtPtr Init, ExprPtr Cond, ExprPtr Update, StmtPtr Body,
          SourceLoc Loc)
      : Stmt(StmtKind::For, Loc), Init(std::move(Init)), Cond(std::move(Cond)),
        Update(std::move(Update)), Body(std::move(Body)) {}
};

class ReturnStmt : public Stmt {
public:
  ExprPtr Value; // May be null for void returns.

  ReturnStmt(ExprPtr Value, SourceLoc Loc)
      : Stmt(StmtKind::Return, Loc), Value(std::move(Value)) {}
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(StmtKind::Break, Loc) {}
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(StmtKind::Continue, Loc) {}
};

/// `try Block catch Block`. MJ's catch is an untyped catch-all for the
/// runtime exceptions SafeTSA models (null, bounds, arithmetic, cast,
/// negative array size), including those unwinding out of callees; there
/// is no exception object, no user `throw`, and no `finally`.
class TryStmt : public Stmt {
public:
  StmtPtr Body;
  StmtPtr Handler;

  TryStmt(StmtPtr Body, StmtPtr Handler, SourceLoc Loc)
      : Stmt(StmtKind::Try, Loc), Body(std::move(Body)),
        Handler(std::move(Handler)) {}
};

class EmptyStmt : public Stmt {
public:
  explicit EmptyStmt(SourceLoc Loc) : Stmt(StmtKind::Empty, Loc) {}
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct ParamDecl {
  TypeRef DeclType;
  std::string Name;
  SourceLoc Loc;
  LocalSymbol *Symbol = nullptr;
};

struct FieldDecl {
  bool IsStatic = false;
  bool IsFinal = false;
  TypeRef DeclType;
  std::string Name;
  ExprPtr Init; // May be null.
  SourceLoc Loc;
  FieldSymbol *Symbol = nullptr;
};

struct MethodDecl {
  bool IsStatic = false;
  bool IsConstructor = false;
  TypeRef ReturnType; // Void TypeRef for constructors and void methods.
  std::string Name;
  std::vector<ParamDecl> Params;
  std::unique_ptr<BlockStmt> Body;
  SourceLoc Loc;
  MethodSymbol *Symbol = nullptr;
  /// All locals of the body including parameters, in declaration order;
  /// owned here, created by sema. LocalSymbol::Index indexes this vector.
  std::vector<std::unique_ptr<LocalSymbol>> Locals;
};

struct ClassDecl {
  std::string Name;
  std::string SuperName; // Empty => implicit Object.
  std::vector<FieldDecl> Fields;
  std::vector<std::unique_ptr<MethodDecl>> Methods;
  SourceLoc Loc;
  ClassSymbol *Symbol = nullptr;
};

/// One MJ compilation unit (a set of classes).
struct Program {
  std::vector<std::unique_ptr<ClassDecl>> Classes;
};

/// Textual dump of an annotated or unannotated AST, for tests and the
/// examples' --dump-ast mode.
std::string dumpAST(const Program &P);
std::string dumpExpr(const Expr &E);

} // namespace safetsa

#endif // SAFETSA_AST_AST_H
