//===- ast/AST.cpp - AST anchors and dumping ------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/AST.h"

#include <sstream>

using namespace safetsa;

// Out-of-line anchors so vtables are emitted once.
Expr::~Expr() = default;
Stmt::~Stmt() = default;

namespace {

/// Pretty-prints the AST as an indented s-expression-like tree.
class ASTDumper {
public:
  std::string dump(const Program &P) {
    for (const auto &C : P.Classes)
      dumpClass(*C);
    return OS.str();
  }

  std::string dump(const Expr &E) {
    dumpExpr(E);
    OS << '\n';
    return OS.str();
  }

private:
  std::ostringstream OS;
  unsigned Indent = 0;

  void line() {
    OS << '\n';
    for (unsigned I = 0; I != Indent; ++I)
      OS << "  ";
  }

  static std::string typeRefName(const TypeRef &T) {
    std::string S;
    switch (T.K) {
    case TypeRef::Kind::Prim:
      switch (T.Prim) {
      case PrimTypeKind::Int:
        S = "int";
        break;
      case PrimTypeKind::Boolean:
        S = "boolean";
        break;
      case PrimTypeKind::Double:
        S = "double";
        break;
      case PrimTypeKind::Char:
        S = "char";
        break;
      }
      break;
    case TypeRef::Kind::Named:
      S = T.Name;
      break;
    case TypeRef::Kind::Void:
      S = "void";
      break;
    }
    for (unsigned I = 0; I != T.ArrayDims; ++I)
      S += "[]";
    return S;
  }

  void dumpClass(const ClassDecl &C) {
    OS << "class " << C.Name;
    if (!C.SuperName.empty())
      OS << " extends " << C.SuperName;
    ++Indent;
    for (const FieldDecl &F : C.Fields) {
      line();
      OS << (F.IsStatic ? "static-field " : "field ") << typeRefName(F.DeclType)
         << ' ' << F.Name;
      if (F.Init) {
        OS << " = ";
        dumpExpr(*F.Init);
      }
    }
    for (const auto &M : C.Methods) {
      line();
      if (M->IsConstructor)
        OS << "constructor " << M->Name;
      else
        OS << (M->IsStatic ? "static-method " : "method ")
           << typeRefName(M->ReturnType) << ' ' << M->Name;
      OS << '(';
      for (size_t I = 0; I != M->Params.size(); ++I) {
        if (I)
          OS << ", ";
        OS << typeRefName(M->Params[I].DeclType) << ' ' << M->Params[I].Name;
      }
      OS << ')';
      ++Indent;
      dumpStmt(*M->Body);
      --Indent;
    }
    --Indent;
    OS << '\n';
  }

  void dumpStmt(const Stmt &S) {
    line();
    switch (S.Kind) {
    case StmtKind::Block: {
      OS << "block";
      ++Indent;
      for (const StmtPtr &Child : static_cast<const BlockStmt &>(S).Stmts)
        dumpStmt(*Child);
      --Indent;
      break;
    }
    case StmtKind::VarDecl: {
      const auto &V = static_cast<const VarDeclStmt &>(S);
      OS << "var " << typeRefName(V.DeclType) << ' ' << V.Name;
      if (V.Init) {
        OS << " = ";
        dumpExpr(*V.Init);
      }
      break;
    }
    case StmtKind::Expr:
      OS << "expr ";
      dumpExpr(*static_cast<const ExprStmt &>(S).E);
      break;
    case StmtKind::If: {
      const auto &I = static_cast<const IfStmt &>(S);
      OS << "if ";
      dumpExpr(*I.Cond);
      ++Indent;
      dumpStmt(*I.Then);
      --Indent;
      if (I.Else) {
        line();
        OS << "else";
        ++Indent;
        dumpStmt(*I.Else);
        --Indent;
      }
      break;
    }
    case StmtKind::While: {
      const auto &W = static_cast<const WhileStmt &>(S);
      OS << "while ";
      dumpExpr(*W.Cond);
      ++Indent;
      dumpStmt(*W.Body);
      --Indent;
      break;
    }
    case StmtKind::DoWhile: {
      const auto &W = static_cast<const DoWhileStmt &>(S);
      OS << "do-while ";
      dumpExpr(*W.Cond);
      ++Indent;
      dumpStmt(*W.Body);
      --Indent;
      break;
    }
    case StmtKind::For: {
      const auto &F = static_cast<const ForStmt &>(S);
      OS << "for";
      ++Indent;
      if (F.Init)
        dumpStmt(*F.Init);
      if (F.Cond) {
        line();
        OS << "cond ";
        dumpExpr(*F.Cond);
      }
      if (F.Update) {
        line();
        OS << "update ";
        dumpExpr(*F.Update);
      }
      dumpStmt(*F.Body);
      --Indent;
      break;
    }
    case StmtKind::Return: {
      const auto &R = static_cast<const ReturnStmt &>(S);
      OS << "return";
      if (R.Value) {
        OS << ' ';
        dumpExpr(*R.Value);
      }
      break;
    }
    case StmtKind::Break:
      OS << "break";
      break;
    case StmtKind::Continue:
      OS << "continue";
      break;
    case StmtKind::Try: {
      const auto &T = static_cast<const TryStmt &>(S);
      OS << "try";
      ++Indent;
      dumpStmt(*T.Body);
      --Indent;
      line();
      OS << "catch";
      ++Indent;
      dumpStmt(*T.Handler);
      --Indent;
      break;
    }
    case StmtKind::Empty:
      OS << "empty";
      break;
    }
  }

  static const char *unaryOpName(UnaryOp Op) {
    switch (Op) {
    case UnaryOp::Neg:
      return "-";
    case UnaryOp::Not:
      return "!";
    case UnaryOp::BitNot:
      return "~";
    case UnaryOp::PreInc:
      return "++pre";
    case UnaryOp::PreDec:
      return "--pre";
    case UnaryOp::PostInc:
      return "post++";
    case UnaryOp::PostDec:
      return "post--";
    }
    return "?";
  }

  static const char *binaryOpName(BinaryOp Op) {
    switch (Op) {
    case BinaryOp::Add:
      return "+";
    case BinaryOp::Sub:
      return "-";
    case BinaryOp::Mul:
      return "*";
    case BinaryOp::Div:
      return "/";
    case BinaryOp::Rem:
      return "%";
    case BinaryOp::BitAnd:
      return "&";
    case BinaryOp::BitOr:
      return "|";
    case BinaryOp::BitXor:
      return "^";
    case BinaryOp::Shl:
      return "<<";
    case BinaryOp::Shr:
      return ">>";
    case BinaryOp::Lt:
      return "<";
    case BinaryOp::Gt:
      return ">";
    case BinaryOp::Le:
      return "<=";
    case BinaryOp::Ge:
      return ">=";
    case BinaryOp::Eq:
      return "==";
    case BinaryOp::Ne:
      return "!=";
    case BinaryOp::LAnd:
      return "&&";
    case BinaryOp::LOr:
      return "||";
    }
    return "?";
  }

  void dumpExpr(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::IntLiteral:
      OS << static_cast<const IntLiteralExpr &>(E).Value;
      break;
    case ExprKind::DoubleLiteral:
      OS << static_cast<const DoubleLiteralExpr &>(E).Value;
      break;
    case ExprKind::BoolLiteral:
      OS << (static_cast<const BoolLiteralExpr &>(E).Value ? "true" : "false");
      break;
    case ExprKind::CharLiteral:
      OS << '\'' << static_cast<const CharLiteralExpr &>(E).Value << '\'';
      break;
    case ExprKind::StringLiteral:
      OS << '"' << static_cast<const StringLiteralExpr &>(E).Value << '"';
      break;
    case ExprKind::NullLiteral:
      OS << "null";
      break;
    case ExprKind::Name:
      OS << static_cast<const NameExpr &>(E).Name;
      break;
    case ExprKind::This:
      OS << "this";
      break;
    case ExprKind::FieldAccess: {
      const auto &F = static_cast<const FieldAccessExpr &>(E);
      OS << '(';
      dumpExpr(*F.Base);
      OS << '.' << F.Name << ')';
      break;
    }
    case ExprKind::Index: {
      const auto &I = static_cast<const IndexExpr &>(E);
      OS << '(';
      dumpExpr(*I.Base);
      OS << '[';
      dumpExpr(*I.Index);
      OS << "])";
      break;
    }
    case ExprKind::Call: {
      const auto &C = static_cast<const CallExpr &>(E);
      OS << '(';
      if (C.Base) {
        dumpExpr(*C.Base);
        OS << '.';
      }
      OS << C.Name << '(';
      for (size_t I = 0; I != C.Args.size(); ++I) {
        if (I)
          OS << ", ";
        dumpExpr(*C.Args[I]);
      }
      OS << "))";
      break;
    }
    case ExprKind::NewObject: {
      const auto &N = static_cast<const NewObjectExpr &>(E);
      OS << "(new " << N.ClassName << '(';
      for (size_t I = 0; I != N.Args.size(); ++I) {
        if (I)
          OS << ", ";
        dumpExpr(*N.Args[I]);
      }
      OS << "))";
      break;
    }
    case ExprKind::NewArray: {
      const auto &N = static_cast<const NewArrayExpr &>(E);
      OS << "(new " << typeRefName(N.ElemType) << '[';
      dumpExpr(*N.Length);
      OS << "])";
      break;
    }
    case ExprKind::Unary: {
      const auto &U = static_cast<const UnaryExpr &>(E);
      OS << '(' << unaryOpName(U.Op) << ' ';
      dumpExpr(*U.Operand);
      OS << ')';
      break;
    }
    case ExprKind::Binary: {
      const auto &B = static_cast<const BinaryExpr &>(E);
      OS << '(';
      dumpExpr(*B.Lhs);
      OS << ' ' << binaryOpName(B.Op) << ' ';
      dumpExpr(*B.Rhs);
      OS << ')';
      break;
    }
    case ExprKind::Assign: {
      const auto &A = static_cast<const AssignExpr &>(E);
      OS << '(';
      dumpExpr(*A.Target);
      switch (A.Op) {
      case AssignExpr::OpKind::None:
        OS << " = ";
        break;
      case AssignExpr::OpKind::Add:
        OS << " += ";
        break;
      case AssignExpr::OpKind::Sub:
        OS << " -= ";
        break;
      case AssignExpr::OpKind::Mul:
        OS << " *= ";
        break;
      case AssignExpr::OpKind::Div:
        OS << " /= ";
        break;
      case AssignExpr::OpKind::Rem:
        OS << " %= ";
        break;
      }
      dumpExpr(*A.Value);
      OS << ')';
      break;
    }
    case ExprKind::Cast: {
      const auto &C = static_cast<const CastExpr &>(E);
      OS << "((" << typeRefName(C.TargetType) << ") ";
      dumpExpr(*C.Operand);
      OS << ')';
      break;
    }
    case ExprKind::Instanceof: {
      const auto &I = static_cast<const InstanceofExpr &>(E);
      OS << '(';
      dumpExpr(*I.Operand);
      OS << " instanceof " << typeRefName(I.TargetType) << ')';
      break;
    }
    }
  }
};

} // namespace

std::string safetsa::dumpAST(const Program &P) { return ASTDumper().dump(P); }

std::string safetsa::dumpExpr(const Expr &E) { return ASTDumper().dump(E); }
