//===- lexer/Token.h - MJ tokens ------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token record produced by the MJ lexer. MJ is the
/// Java-subset source language of this reproduction (see DESIGN.md §2).
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_LEXER_TOKEN_H
#define SAFETSA_LEXER_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace safetsa {

enum class TokenKind : uint8_t {
  // Sentinels.
  Eof,
  Unknown,

  // Literals and identifiers.
  Identifier,
  IntLiteral,
  DoubleLiteral,
  CharLiteral,
  StringLiteral,

  // Keywords.
  KwClass,
  KwExtends,
  KwStatic,
  KwFinal,
  KwVoid,
  KwInt,
  KwBoolean,
  KwDouble,
  KwChar,
  KwIf,
  KwElse,
  KwWhile,
  KwDo,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwNew,
  KwThis,
  KwNull,
  KwTrue,
  KwFalse,
  KwInstanceof,
  KwTry,
  KwCatch,

  // Punctuation.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,

  // Operators.
  Assign,       // =
  Plus,         // +
  Minus,        // -
  Star,         // *
  Slash,        // /
  Percent,      // %
  Not,          // !
  Tilde,        // ~
  Less,         // <
  Greater,      // >
  LessEqual,    // <=
  GreaterEqual, // >=
  EqualEqual,   // ==
  NotEqual,     // !=
  AmpAmp,       // &&
  PipePipe,     // ||
  Amp,          // &
  Pipe,         // |
  Caret,        // ^
  Shl,          // <<
  Shr,          // >>
  PlusPlus,     // ++
  MinusMinus,   // --
  PlusAssign,   // +=
  MinusAssign,  // -=
  StarAssign,   // *=
  SlashAssign,  // /=
  PercentAssign // %=
};

/// Returns a human-readable spelling for diagnostics ("'{'", "identifier").
const char *tokenKindName(TokenKind Kind);

/// A single lexed token.
///
/// Text holds the raw source spelling (for identifiers and literals);
/// IntValue/DoubleValue hold the decoded payload of numeric and char
/// literals, and StringValue the unescaped body of string literals.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;
  int64_t IntValue = 0;
  double DoubleValue = 0.0;
  std::string StringValue;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace safetsa

#endif // SAFETSA_LEXER_TOKEN_H
