//===- lexer/Lexer.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lexer/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace safetsa;

const char *safetsa::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of file";
  case TokenKind::Unknown:
    return "invalid character";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::DoubleLiteral:
    return "double literal";
  case TokenKind::CharLiteral:
    return "char literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::KwClass:
    return "'class'";
  case TokenKind::KwExtends:
    return "'extends'";
  case TokenKind::KwStatic:
    return "'static'";
  case TokenKind::KwFinal:
    return "'final'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwBoolean:
    return "'boolean'";
  case TokenKind::KwDouble:
    return "'double'";
  case TokenKind::KwChar:
    return "'char'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwNew:
    return "'new'";
  case TokenKind::KwThis:
    return "'this'";
  case TokenKind::KwNull:
    return "'null'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwInstanceof:
    return "'instanceof'";
  case TokenKind::KwTry:
    return "'try'";
  case TokenKind::KwCatch:
    return "'catch'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Not:
    return "'!'";
  case TokenKind::Tilde:
    return "'~'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::NotEqual:
    return "'!='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::Shl:
    return "'<<'";
  case TokenKind::Shr:
    return "'>>'";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::MinusMinus:
    return "'--'";
  case TokenKind::PlusAssign:
    return "'+='";
  case TokenKind::MinusAssign:
    return "'-='";
  case TokenKind::StarAssign:
    return "'*='";
  case TokenKind::SlashAssign:
    return "'/='";
  case TokenKind::PercentAssign:
    return "'%='";
  }
  return "token";
}

static TokenKind lookupKeyword(const std::string &Text) {
  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"class", TokenKind::KwClass},
      {"extends", TokenKind::KwExtends},
      {"static", TokenKind::KwStatic},
      {"final", TokenKind::KwFinal},
      {"void", TokenKind::KwVoid},
      {"int", TokenKind::KwInt},
      {"boolean", TokenKind::KwBoolean},
      {"double", TokenKind::KwDouble},
      {"char", TokenKind::KwChar},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},
      {"do", TokenKind::KwDo},
      {"for", TokenKind::KwFor},
      {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue},
      {"new", TokenKind::KwNew},
      {"this", TokenKind::KwThis},
      {"null", TokenKind::KwNull},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
      {"instanceof", TokenKind::KwInstanceof},
      {"try", TokenKind::KwTry},
      {"catch", TokenKind::KwCatch},
  };
  auto It = Keywords.find(Text);
  return It == Keywords.end() ? TokenKind::Identifier : It->second;
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token Tok = lexToken();
    bool IsEof = Tok.is(TokenKind::Eof);
    Tokens.push_back(std::move(Tok));
    if (IsEof)
      break;
  }
  return Tokens;
}

Token Lexer::make(TokenKind Kind, size_t Begin) {
  Token Tok;
  Tok.Kind = Kind;
  Tok.Loc = SourceLoc(static_cast<uint32_t>(Begin));
  Tok.Text = Text.substr(Begin, Pos - Begin);
  return Tok;
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = here();
      Pos += 2;
      while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
        ++Pos;
      if (atEnd()) {
        Diags.error(Start, "unterminated block comment");
        return;
      }
      Pos += 2;
      continue;
    }
    return;
  }
}

Token Lexer::lexToken() {
  skipWhitespaceAndComments();
  size_t Begin = Pos;
  if (atEnd())
    return make(TokenKind::Eof, Begin);

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (C == '\'')
    return lexCharLiteral();
  if (C == '"')
    return lexStringLiteral();

  advance();
  switch (C) {
  case '{':
    return make(TokenKind::LBrace, Begin);
  case '}':
    return make(TokenKind::RBrace, Begin);
  case '(':
    return make(TokenKind::LParen, Begin);
  case ')':
    return make(TokenKind::RParen, Begin);
  case '[':
    return make(TokenKind::LBracket, Begin);
  case ']':
    return make(TokenKind::RBracket, Begin);
  case ';':
    return make(TokenKind::Semi, Begin);
  case ',':
    return make(TokenKind::Comma, Begin);
  case '.':
    return make(TokenKind::Dot, Begin);
  case '~':
    return make(TokenKind::Tilde, Begin);
  case '^':
    return make(TokenKind::Caret, Begin);
  case '+':
    if (match('+'))
      return make(TokenKind::PlusPlus, Begin);
    if (match('='))
      return make(TokenKind::PlusAssign, Begin);
    return make(TokenKind::Plus, Begin);
  case '-':
    if (match('-'))
      return make(TokenKind::MinusMinus, Begin);
    if (match('='))
      return make(TokenKind::MinusAssign, Begin);
    return make(TokenKind::Minus, Begin);
  case '*':
    if (match('='))
      return make(TokenKind::StarAssign, Begin);
    return make(TokenKind::Star, Begin);
  case '/':
    if (match('='))
      return make(TokenKind::SlashAssign, Begin);
    return make(TokenKind::Slash, Begin);
  case '%':
    if (match('='))
      return make(TokenKind::PercentAssign, Begin);
    return make(TokenKind::Percent, Begin);
  case '!':
    if (match('='))
      return make(TokenKind::NotEqual, Begin);
    return make(TokenKind::Not, Begin);
  case '=':
    if (match('='))
      return make(TokenKind::EqualEqual, Begin);
    return make(TokenKind::Assign, Begin);
  case '<':
    if (match('='))
      return make(TokenKind::LessEqual, Begin);
    if (match('<'))
      return make(TokenKind::Shl, Begin);
    return make(TokenKind::Less, Begin);
  case '>':
    if (match('='))
      return make(TokenKind::GreaterEqual, Begin);
    if (match('>'))
      return make(TokenKind::Shr, Begin);
    return make(TokenKind::Greater, Begin);
  case '&':
    if (match('&'))
      return make(TokenKind::AmpAmp, Begin);
    return make(TokenKind::Amp, Begin);
  case '|':
    if (match('|'))
      return make(TokenKind::PipePipe, Begin);
    return make(TokenKind::Pipe, Begin);
  default:
    break;
  }
  Diags.error(SourceLoc(static_cast<uint32_t>(Begin)),
              std::string("invalid character '") + C + "'");
  return make(TokenKind::Unknown, Begin);
}

Token Lexer::lexIdentifierOrKeyword() {
  size_t Begin = Pos;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_'))
    ++Pos;
  Token Tok = make(TokenKind::Identifier, Begin);
  Tok.Kind = lookupKeyword(Tok.Text);
  return Tok;
}

Token Lexer::lexNumber() {
  size_t Begin = Pos;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    Pos += 2;
    size_t DigitsBegin = Pos;
    while (!atEnd() && std::isxdigit(static_cast<unsigned char>(peek())))
      ++Pos;
    Token Tok = make(TokenKind::IntLiteral, Begin);
    if (Pos == DigitsBegin) {
      Diags.error(Tok.Loc, "hexadecimal literal has no digits");
      return Tok;
    }
    Tok.IntValue = static_cast<int64_t>(
        std::strtoull(Text.c_str() + DigitsBegin, nullptr, 16));
    return Tok;
  }

  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
    ++Pos;

  bool IsDouble = false;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsDouble = true;
    ++Pos;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      ++Pos;
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t Mark = Pos;
    ++Pos;
    if (peek() == '+' || peek() == '-')
      ++Pos;
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      IsDouble = true;
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    } else {
      Pos = Mark; // 'e' belongs to a following identifier, not the number.
    }
  }

  if (IsDouble) {
    Token Tok = make(TokenKind::DoubleLiteral, Begin);
    Tok.DoubleValue = std::strtod(Tok.Text.c_str(), nullptr);
    return Tok;
  }
  Token Tok = make(TokenKind::IntLiteral, Begin);
  errno = 0;
  Tok.IntValue =
      static_cast<int64_t>(std::strtoull(Tok.Text.c_str(), nullptr, 10));
  // MJ int literals must fit in 32 bits (as a magnitude; '-' is a separate
  // unary operator, and 2147483648 is accepted so that -2147483648 works,
  // matching Java's rule loosely but keeping the lexer context-free).
  if (Tok.IntValue > 2147483648LL)
    Diags.error(Tok.Loc, "integer literal too large for type 'int'");
  return Tok;
}

bool Lexer::lexEscapedChar(char Quote, char &Out) {
  if (atEnd() || peek() == Quote || peek() == '\n')
    return false;
  char C = advance();
  if (C != '\\') {
    Out = C;
    return true;
  }
  if (atEnd()) {
    Diags.error(here(), "unterminated escape sequence");
    return false;
  }
  char E = advance();
  switch (E) {
  case 'n':
    Out = '\n';
    return true;
  case 't':
    Out = '\t';
    return true;
  case 'r':
    Out = '\r';
    return true;
  case '0':
    Out = '\0';
    return true;
  case '\\':
    Out = '\\';
    return true;
  case '\'':
    Out = '\'';
    return true;
  case '"':
    Out = '"';
    return true;
  default:
    Diags.error(here(), std::string("invalid escape sequence '\\") + E + "'");
    Out = E;
    return true;
  }
}

Token Lexer::lexCharLiteral() {
  size_t Begin = Pos;
  advance(); // opening quote
  char Value = 0;
  if (!lexEscapedChar('\'', Value)) {
    Token Tok = make(TokenKind::CharLiteral, Begin);
    Diags.error(Tok.Loc, "empty char literal");
    return Tok;
  }
  if (!match('\'')) {
    Token Tok = make(TokenKind::CharLiteral, Begin);
    Diags.error(Tok.Loc, "unterminated char literal");
    Tok.IntValue = static_cast<unsigned char>(Value);
    return Tok;
  }
  Token Tok = make(TokenKind::CharLiteral, Begin);
  Tok.IntValue = static_cast<unsigned char>(Value);
  return Tok;
}

Token Lexer::lexStringLiteral() {
  size_t Begin = Pos;
  advance(); // opening quote
  std::string Value;
  char C = 0;
  while (lexEscapedChar('"', C))
    Value.push_back(C);
  if (!match('"')) {
    Token Tok = make(TokenKind::StringLiteral, Begin);
    Diags.error(Tok.Loc, "unterminated string literal");
    Tok.StringValue = std::move(Value);
    return Tok;
  }
  Token Tok = make(TokenKind::StringLiteral, Begin);
  Tok.StringValue = std::move(Value);
  return Tok;
}
