//===- lexer/Lexer.h - MJ lexer -------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MJ. Produces the full token vector up front;
/// compilation units are small enough that streaming buys nothing.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_LEXER_LEXER_H
#define SAFETSA_LEXER_LEXER_H

#include "lexer/Token.h"
#include "support/Diagnostics.h"

#include <vector>

namespace safetsa {

/// Turns an MJ source buffer into tokens.
///
/// Malformed input produces diagnostics plus best-effort tokens (an Unknown
/// token per bad character), so the parser can keep going and report more.
class Lexer {
public:
  Lexer(const std::string &Text, DiagnosticEngine &Diags)
      : Text(Text), Diags(Diags) {}
  /// The buffer is held by reference and must outlive the Lexer.
  Lexer(std::string &&, DiagnosticEngine &) = delete;

  /// Lexes the whole buffer. The result always ends with an Eof token.
  std::vector<Token> lexAll();

private:
  Token lexToken();
  Token lexIdentifierOrKeyword();
  Token lexNumber();
  Token lexCharLiteral();
  Token lexStringLiteral();

  /// Decodes one (possibly escaped) character of a char/string literal
  /// body; reports bad escapes. Returns false at the closing quote or EOF.
  bool lexEscapedChar(char Quote, char &Out);

  void skipWhitespaceAndComments();

  char peek(unsigned Ahead = 0) const {
    return Pos + Ahead < Text.size() ? Text[Pos + Ahead] : '\0';
  }
  char advance() { return Text[Pos++]; }
  bool match(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }
  SourceLoc here() const { return SourceLoc(static_cast<uint32_t>(Pos)); }
  bool atEnd() const { return Pos >= Text.size(); }

  Token make(TokenKind Kind, size_t Begin);

  const std::string &Text;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace safetsa

#endif // SAFETSA_LEXER_LEXER_H
