//===- corpus/Corpus.cpp - Benchmark programs (part 1) --------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace safetsa;

// Declared in CorpusMore.cpp.
namespace safetsa {
void appendCorpusPart2(std::vector<CorpusProgram> &Out);
}

//===----------------------------------------------------------------------===//
// sun.math analogues
//===----------------------------------------------------------------------===//

static const char *BigIntegerSrc = R"MJ(
// Arbitrary-precision unsigned integers on int[] magnitudes (base 10000),
// standing in for sun.math.BigInteger: array-heavy arithmetic with many
// bounds checks and loop-carried values.
class BigInt {
  int[] mag;   // little-endian base-10000 digits
  int len;

  BigInt(int capacity) {
    mag = new int[capacity];
    len = 1;
  }

  static BigInt fromInt(int v) {
    BigInt r = new BigInt(8);
    r.len = 0;
    if (v == 0) { r.mag[0] = 0; r.len = 1; return r; }
    while (v > 0) {
      r.mag[r.len] = v % 10000;
      v = v / 10000;
      r.len = r.len + 1;
    }
    return r;
  }

  BigInt copy(int extra) {
    BigInt r = new BigInt(len + extra);
    for (int i = 0; i < len; i++) r.mag[i] = mag[i];
    r.len = len;
    return r;
  }

  // this + other, non-destructive.
  BigInt add(BigInt other) {
    int n = len;
    if (other.len > n) n = other.len;
    BigInt r = new BigInt(n + 1);
    int carry = 0;
    int i = 0;
    while (i < n) {
      int a = 0;
      int b = 0;
      if (i < len) a = mag[i];
      if (i < other.len) b = other.mag[i];
      int s = a + b + carry;
      r.mag[i] = s % 10000;
      carry = s / 10000;
      i++;
    }
    if (carry > 0) { r.mag[n] = carry; r.len = n + 1; }
    else r.len = n;
    r.trim();
    return r;
  }

  // this * small (small < 10000).
  BigInt mulSmall(int small) {
    BigInt r = new BigInt(len + 2);
    int carry = 0;
    for (int i = 0; i < len; i++) {
      int p = mag[i] * small + carry;
      r.mag[i] = p % 10000;
      carry = p / 10000;
    }
    int j = len;
    while (carry > 0) {
      r.mag[j] = carry % 10000;
      carry = carry / 10000;
      j++;
    }
    if (j > len) r.len = j; else r.len = len;
    r.trim();
    return r;
  }

  // Full product.
  BigInt mul(BigInt other) {
    BigInt r = new BigInt(len + other.len + 1);
    for (int i = 0; i < len; i++) {
      int carry = 0;
      int d = mag[i];
      for (int j = 0; j < other.len; j++) {
        int p = r.mag[i + j] + d * other.mag[j] + carry;
        r.mag[i + j] = p % 10000;
        carry = p / 10000;
      }
      int k = i + other.len;
      while (carry > 0) {
        int p = r.mag[k] + carry;
        r.mag[k] = p % 10000;
        carry = p / 10000;
        k++;
      }
    }
    r.len = len + other.len + 1;
    r.trim();
    return r;
  }

  void trim() {
    while (len > 1 && mag[len - 1] == 0) len = len - 1;
  }

  int compare(BigInt other) {
    if (len != other.len) {
      if (len > other.len) return 1;
      return -1;
    }
    for (int i = len - 1; i >= 0; i--) {
      if (mag[i] != other.mag[i]) {
        if (mag[i] > other.mag[i]) return 1;
        return -1;
      }
    }
    return 0;
  }

  // Digit-sum mod 9999 as a cheap printable checksum.
  int checksum() {
    int s = 0;
    for (int i = 0; i < len; i++) s = (s * 7 + mag[i]) % 99991;
    return s;
  }

  void print() {
    // Most significant group has no leading zeros; the rest are padded.
    IO.printInt(mag[len - 1]);
    for (int i = len - 2; i >= 0; i--) {
      int g = mag[i];
      if (g < 1000) IO.printInt(0);
      if (g < 100) IO.printInt(0);
      if (g < 10) IO.printInt(0);
      IO.printInt(g);
    }
  }
}

class Main {
  static void main() {
    // 25! exactly.
    BigInt f = BigInt.fromInt(1);
    for (int i = 2; i <= 25; i++) f = f.mulSmall(i);
    f.print();
    IO.println();

    // fib(120) via bigint addition.
    BigInt a = BigInt.fromInt(0);
    BigInt b = BigInt.fromInt(1);
    for (int i = 0; i < 120; i++) {
      BigInt t = a.add(b);
      a = b;
      b = t;
    }
    a.print();
    IO.println();

    // 2^256 by repeated squaring.
    BigInt two = BigInt.fromInt(2);
    BigInt p = two;
    for (int i = 0; i < 8; i++) p = p.mul(p);
    IO.printInt(p.checksum());
    IO.println();
    IO.printInt(a.compare(b));
    IO.println();
  }
}
)MJ";

static const char *MutableBigIntSrc = R"MJ(
// In-place magnitude arithmetic, standing in for sun.math's
// MutableBigInteger: destructive updates, shifting, and subtraction-based
// gcd — heavy on array stores and redundant checks for CSE to remove.
class MutableBig {
  int[] d;      // base-10000 digits, little-endian
  int used;

  MutableBig(int cap) {
    d = new int[cap];
    used = 1;
  }

  void setInt(int v) {
    for (int i = 0; i < d.length; i++) d[i] = 0;
    used = 0;
    if (v == 0) { used = 1; return; }
    while (v > 0) {
      d[used] = v % 10000;
      v = v / 10000;
      used++;
    }
  }

  void copyFrom(MutableBig o) {
    for (int i = 0; i < o.used; i++) d[i] = o.d[i];
    for (int i = o.used; i < d.length; i++) d[i] = 0;
    used = o.used;
  }

  void addInPlace(MutableBig o) {
    int n = used;
    if (o.used > n) n = o.used;
    int carry = 0;
    for (int i = 0; i < n; i++) {
      int s = d[i] + o.d[i] + carry;
      d[i] = s % 10000;
      carry = s / 10000;
    }
    if (carry > 0) { d[n] = carry; n++; }
    used = n;
  }

  // this -= o, requires this >= o.
  void subInPlace(MutableBig o) {
    int borrow = 0;
    for (int i = 0; i < used; i++) {
      int s = d[i] - o.d[i] - borrow;
      if (s < 0) { s = s + 10000; borrow = 1; } else borrow = 0;
      d[i] = s;
    }
    while (used > 1 && d[used - 1] == 0) used = used - 1;
  }

  void shiftDigitLeft() {
    for (int i = used; i > 0; i--) d[i] = d[i - 1];
    d[0] = 0;
    used = used + 1;
  }

  void halve() {
    int rem = 0;
    for (int i = used - 1; i >= 0; i--) {
      int cur = rem * 10000 + d[i];
      d[i] = cur / 2;
      rem = cur % 2;
    }
    while (used > 1 && d[used - 1] == 0) used = used - 1;
  }

  boolean isZero() {
    return used == 1 && d[0] == 0;
  }

  boolean isEven() {
    return d[0] % 2 == 0;
  }

  int compare(MutableBig o) {
    if (used != o.used) {
      if (used > o.used) return 1;
      return -1;
    }
    for (int i = used - 1; i >= 0; i--) {
      if (d[i] != o.d[i]) {
        if (d[i] > o.d[i]) return 1;
        return -1;
      }
    }
    return 0;
  }

  int checksum() {
    int s = 0;
    for (int i = 0; i < used; i++) s = (s * 31 + d[i]) % 99991;
    return s;
  }
}

class Main {
  // Binary gcd on mutable magnitudes.
  static int gcdChecksum(int x, int y) {
    MutableBig a = new MutableBig(16);
    MutableBig b = new MutableBig(16);
    a.setInt(x);
    b.setInt(y);
    int shift = 0;
    while (!a.isZero() && !b.isZero() && a.isEven() && b.isEven()) {
      a.halve();
      b.halve();
      shift++;
    }
    while (!b.isZero()) {
      while (a.isEven() && !a.isZero()) a.halve();
      while (b.isEven() && !b.isZero()) b.halve();
      int c = a.compare(b);
      if (c >= 0) {
        a.subInPlace(b);
      } else {
        MutableBig t = new MutableBig(16);
        t.copyFrom(b);
        t.subInPlace(a);
        b.copyFrom(a);
        a.copyFrom(t);
      }
      if (a.isZero()) { a.copyFrom(b); b.setInt(0); }
    }
    for (int i = 0; i < shift; i++) a.addInPlace(a);
    return a.checksum();
  }

  static void main() {
    MutableBig acc = new MutableBig(64);
    acc.setInt(1);
    for (int i = 0; i < 30; i++) {
      acc.addInPlace(acc);   // doubling
      acc.shiftDigitLeft();  // *10000
    }
    IO.printInt(acc.checksum());
    IO.println();
    IO.printInt(gcdChecksum(123456, 987654));
    IO.println();
    IO.printInt(gcdChecksum(271828, 314159));
    IO.println();
  }
}
)MJ";

static const char *BigDecimalSrc = R"MJ(
// Fixed-point decimal arithmetic (scale 4) over int pairs, standing in
// for sun.math.BigDecimal: expression-heavy scalar code with rounding.
class Dec {
  int units;  // value = units + frac/10000, frac in [0, 10000)
  int frac;

  Dec(int u, int f) {
    units = u;
    frac = f;
    normalize();
  }

  void normalize() {
    if (frac >= 10000) {
      units = units + frac / 10000;
      frac = frac % 10000;
    }
    if (frac < 0) {
      int borrow = (-frac + 9999) / 10000;
      units = units - borrow;
      frac = frac + borrow * 10000;
    }
  }

  Dec plus(Dec o) {
    return new Dec(units + o.units, frac + o.frac);
  }

  Dec minus(Dec o) {
    return new Dec(units - o.units, frac - o.frac);
  }

  // Multiply by a small decimal given as scaled-10^4 integer.
  Dec timesScaled(int scaled) {
    // (units + frac/1e4) * scaled/1e4
    int hi = units * scaled;              // scaled by 1e4
    int lo = frac * scaled / 10000;       // scaled by 1e4
    int total = hi + lo;                  // value scaled by 1e4
    int u = total / 10000;
    int f = total % 10000;
    if (f < 0) { f = f + 10000; u = u - 1; }
    return new Dec(u, f);
  }

  int cmp(Dec o) {
    if (units != o.units) {
      if (units > o.units) return 1;
      return -1;
    }
    if (frac != o.frac) {
      if (frac > o.frac) return 1;
      return -1;
    }
    return 0;
  }

  void print() {
    IO.printInt(units);
    IO.printChar('.');
    int g = frac;
    if (g < 1000) IO.printInt(0);
    if (g < 100) IO.printInt(0);
    if (g < 10) IO.printInt(0);
    IO.printInt(g);
  }
}

class Main {
  // Compound-interest table at 3.75% on an initial balance, 24 periods.
  static void main() {
    Dec balance = new Dec(1000, 0);
    int rate = 10375; // 1.0375 scaled by 1e4
    int crossed = 0;
    Dec threshold = new Dec(1500, 0);
    for (int period = 1; period <= 24; period++) {
      balance = balance.timesScaled(rate);
      if (crossed == 0 && balance.cmp(threshold) >= 0) crossed = period;
    }
    balance.print();
    IO.println();
    IO.printInt(crossed);
    IO.println();

    // Telescoping sum exercising plus/minus.
    Dec acc = new Dec(0, 0);
    for (int i = 1; i <= 200; i++) {
      acc = acc.plus(new Dec(i, i * 7 % 10000));
      if (i % 3 == 0) acc = acc.minus(new Dec(i / 3, 0));
    }
    acc.print();
    IO.println();
  }
}
)MJ";

static const char *BitSieveSrc = R"MJ(
// Bit-packed sieve of Eratosthenes, standing in for sun.math.BitSieve:
// shift/mask arithmetic and tight array loops.
class BitSet {
  int[] words;

  BitSet(int bits) {
    words = new int[(bits + 31) / 32];
  }

  void set(int i) {
    words[i >> 5] = words[i >> 5] | (1 << (i & 31));
  }

  boolean get(int i) {
    return (words[i >> 5] & (1 << (i & 31))) != 0;
  }

  int popcount() {
    int total = 0;
    for (int w = 0; w < words.length; w++) {
      int v = words[w];
      for (int b = 0; b < 32; b++) {
        if ((v & 1) != 0) total++;
        v = (v >> 1) & 0x7fffffff;
      }
    }
    return total;
  }
}

class Sieve {
  BitSet composite;
  int limit;

  Sieve(int n) {
    limit = n;
    composite = new BitSet(n + 1);
    composite.set(0);
    composite.set(1);
    for (int p = 2; p * p <= n; p++) {
      if (!composite.get(p)) {
        for (int m = p * p; m <= n; m = m + p) composite.set(m);
      }
    }
  }

  int countPrimes() {
    int count = 0;
    for (int i = 2; i <= limit; i++)
      if (!composite.get(i)) count++;
    return count;
  }

  int nthPrime(int n) {
    int seen = 0;
    for (int i = 2; i <= limit; i++) {
      if (!composite.get(i)) {
        seen++;
        if (seen == n) return i;
      }
    }
    return -1;
  }
}

class Main {
  static void main() {
    Sieve s = new Sieve(50000);
    IO.printInt(s.countPrimes());
    IO.println();
    IO.printInt(s.nthPrime(1000));
    IO.println();
    IO.printInt(s.composite.popcount());
    IO.println();
  }
}
)MJ";

static const char *LinpackSrc = R"MJ(
// LU factorization with partial pivoting and back-substitution on a
// generated system — the Linpack kernel the paper measures. Double
// arithmetic, jagged double[][] matrices, daxpy inner loops.
class Linpack {
  static double absd(double x) {
    if (x < 0.0) return -x;
    return x;
  }

  // y[j..] += a * x[j..]
  static void daxpy(int n, double a, double[] x, int xoff, double[] y,
                    int yoff) {
    if (a == 0.0) return;
    for (int i = 0; i < n; i++) y[yoff + i] = y[yoff + i] + a * x[xoff + i];
  }

  static int idamax(int n, double[] x, int off) {
    int best = 0;
    double bestv = absd(x[off]);
    for (int i = 1; i < n; i++) {
      double v = absd(x[off + i]);
      if (v > bestv) { bestv = v; best = i; }
    }
    return best;
  }

  // Factor a (column-major columns as rows of the jagged array).
  static int dgefa(double[][] a, int n, int[] ipvt) {
    int info = 0;
    for (int k = 0; k < n - 1; k++) {
      double[] colk = a[k];
      int l = idamax(n - k, colk, k) + k;
      ipvt[k] = l;
      if (colk[l] == 0.0) { info = k + 1; continue; }
      if (l != k) {
        double t = colk[l];
        colk[l] = colk[k];
        colk[k] = t;
      }
      double inv = -1.0 / colk[k];
      for (int i = k + 1; i < n; i++) colk[i] = colk[i] * inv;
      for (int j = k + 1; j < n; j++) {
        double[] colj = a[j];
        double t = colj[l];
        if (l != k) {
          colj[l] = colj[k];
          colj[k] = t;
        }
        daxpy(n - k - 1, t, colk, k + 1, colj, k + 1);
      }
    }
    ipvt[n - 1] = n - 1;
    if (a[n - 1][n - 1] == 0.0) info = n;
    return info;
  }

  static void dgesl(double[][] a, int n, int[] ipvt, double[] b) {
    // forward elimination
    for (int k = 0; k < n - 1; k++) {
      int l = ipvt[k];
      double t = b[l];
      if (l != k) { b[l] = b[k]; b[k] = t; }
      daxpy(n - k - 1, t, a[k], k + 1, b, k + 1);
    }
    // back substitution
    for (int kb = 0; kb < n; kb++) {
      int k = n - kb - 1;
      b[k] = b[k] / a[k][k];
      double t = -b[k];
      daxpy(k, t, a[k], 0, b, 0);
    }
  }

  static int seed;

  static double nextRandom() {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    return (double) (seed % 10000) / 10000.0 - 0.5;
  }

  static void matgen(double[][] a, int n, double[] b) {
    seed = 1325;
    for (int j = 0; j < n; j++) {
      for (int i = 0; i < n; i++) a[j][i] = nextRandom();
    }
    for (int i = 0; i < n; i++) b[i] = 0.0;
    for (int j = 0; j < n; j++) {
      for (int i = 0; i < n; i++) b[i] = b[i] + a[j][i];
    }
  }

  static void main() {
    int n = 40;
    double[][] a = new double[n][];
    for (int j = 0; j < n; j++) a[j] = new double[n];
    double[] b = new double[n];
    int[] ipvt = new int[n];

    matgen(a, n, b);
    int info = dgefa(a, n, ipvt);
    dgesl(a, n, ipvt, b);

    // The exact solution is all ones; print the residual magnitude class.
    double worst = 0.0;
    for (int i = 0; i < n; i++) {
      double e = absd(b[i] - 1.0);
      if (e > worst) worst = e;
    }
    IO.printInt(info);
    IO.println();
    IO.printBool(worst < 0.0001);
    IO.println();
    // Scaled residual as an integer checksum.
    IO.printInt((int) (worst * 100000000.0));
    IO.println();
  }
}
)MJ";

static const char *ScannerSrc = R"MJ(
// Hand-written lexer over char[] input, standing in for
// sun.tools.java.Scanner: char-class tests, state machines, many
// redundant array accesses for the optimizer.
class Token {
  static int NUM = 1;
  static int IDENT = 2;
  static int OP = 3;
  static int LPAREN = 4;
  static int RPAREN = 5;
  static int EOF = 6;
}

class Scanner {
  char[] src;
  int pos;
  int kind;
  int numValue;
  int identHash;

  Scanner(char[] input) {
    src = input;
    pos = 0;
  }

  static boolean isDigit(char c) {
    return c >= '0' && c <= '9';
  }

  static boolean isAlpha(char c) {
    if (c >= 'a' && c <= 'z') return true;
    if (c >= 'A' && c <= 'Z') return true;
    return c == '_';
  }

  static boolean isSpace(char c) {
    if (c == ' ') return true;
    if (c == '\t') return true;
    return c == '\n';
  }

  void skipSpaceAndComments() {
    boolean more = true;
    while (more) {
      more = false;
      while (pos < src.length && isSpace(src[pos])) pos++;
      if (pos + 1 < src.length && src[pos] == '/' && src[pos + 1] == '/') {
        while (pos < src.length && src[pos] != '\n') pos++;
        more = true;
      }
    }
  }

  // Advances to the next token; sets kind and payloads.
  void next() {
    skipSpaceAndComments();
    if (pos >= src.length) { kind = Token.EOF; return; }
    char c = src[pos];
    if (isDigit(c)) {
      int v = 0;
      while (pos < src.length && isDigit(src[pos])) {
        v = v * 10 + (src[pos] - '0');
        pos++;
      }
      kind = Token.NUM;
      numValue = v;
      return;
    }
    if (isAlpha(c)) {
      int h = 0;
      while (pos < src.length && (isAlpha(src[pos]) || isDigit(src[pos]))) {
        h = (h * 131 + src[pos]) % 1000003;
        pos++;
      }
      kind = Token.IDENT;
      identHash = h;
      return;
    }
    pos++;
    if (c == '(') { kind = Token.LPAREN; return; }
    if (c == ')') { kind = Token.RPAREN; return; }
    kind = Token.OP;
    numValue = c;
  }
}

class Main {
  static void main() {
    char[] program = "alpha = 12 + beta_3 * (gamma - 45) / 7 // tail\n  delta9 = alpha * alpha + 100";
    Scanner s = new Scanner(program);
    int nums = 0;
    int idents = 0;
    int ops = 0;
    int parens = 0;
    int checksum = 0;
    s.next();
    while (s.kind != Token.EOF) {
      if (s.kind == Token.NUM) { nums++; checksum = (checksum * 13 + s.numValue) % 1000003; }
      else if (s.kind == Token.IDENT) { idents++; checksum = (checksum * 17 + s.identHash) % 1000003; }
      else if (s.kind == Token.LPAREN || s.kind == Token.RPAREN) parens++;
      else { ops++; checksum = (checksum * 19 + s.numValue) % 1000003; }
      s.next();
    }
    IO.printInt(nums);
    IO.printChar(' ');
    IO.printInt(idents);
    IO.printChar(' ');
    IO.printInt(ops);
    IO.printChar(' ');
    IO.printInt(parens);
    IO.println();
    IO.printInt(checksum);
    IO.println();
  }
}
)MJ";

const std::vector<CorpusProgram> &safetsa::getCorpus() {
  static std::vector<CorpusProgram> Corpus = [] {
    std::vector<CorpusProgram> C = {
        {"BigInteger", "sun.math.BigInteger", BigIntegerSrc},
        {"MutableBigInteger", "sun.math.MutableBigInteger",
         MutableBigIntSrc},
        {"BigDecimal", "sun.math.BigDecimal", BigDecimalSrc},
        {"BitSieve", "sun.math.BitSieve", BitSieveSrc},
        {"Linpack", "Linpack.Linpack", LinpackSrc},
        {"Scanner", "sun.tools.java.Scanner", ScannerSrc},
    };
    appendCorpusPart2(C);
    return C;
  }();
  return Corpus;
}

const CorpusProgram *safetsa::findCorpusProgram(const std::string &Name) {
  for (const CorpusProgram &P : getCorpus())
    if (Name == P.Name)
      return &P;
  return nullptr;
}
