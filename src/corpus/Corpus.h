//===- corpus/Corpus.h - MJ benchmark programs ----------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark corpus: MJ programs playing the roles of the paper's
/// measurement classes (sun.tools.javac / sun.tools.java / sun.math /
/// Linpack — see DESIGN.md §2 for the substitution argument). Each entry
/// is a self-contained compilation unit with a deterministic `main` that
/// prints a checksum, so the same corpus drives the size/instruction
/// tables (Figures 5 and 6), the optimization ablations, and the
/// differential semantics tests.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_CORPUS_CORPUS_H
#define SAFETSA_CORPUS_CORPUS_H

#include <string>
#include <vector>

namespace safetsa {

struct CorpusProgram {
  const char *Name;   ///< Row label (paper-analogous class name).
  const char *Role;   ///< Which paper benchmark the program stands in for.
  const char *Source; ///< MJ source text.
};

/// All corpus programs, in table order.
const std::vector<CorpusProgram> &getCorpus();

/// Looks up one program by name; null when absent.
const CorpusProgram *findCorpusProgram(const std::string &Name);

} // namespace safetsa

#endif // SAFETSA_CORPUS_CORPUS_H
