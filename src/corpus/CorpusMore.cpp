//===- corpus/CorpusMore.cpp - Benchmark programs (part 2) ----*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace safetsa;

namespace safetsa {
void appendCorpusPart2(std::vector<CorpusProgram> &Out);
} // namespace safetsa

static const char *ParserSrc = R"MJ(
// Recursive-descent expression parser and evaluator, standing in for
// sun.tools.java.Parser: deep call trees, many conditionals, token
// buffer built by a small scanner front end.
class Lexer {
  char[] src;
  int pos;

  Lexer(char[] input) {
    src = input;
    pos = 0;
  }

  static boolean isDigit(char c) {
    return c >= '0' && c <= '9';
  }

  // Returns the next token: digits fold into a value token encoded as
  // 1000 + value, operators return their char code, 0 means end.
  int next() {
    while (pos < src.length && src[pos] == ' ') pos++;
    if (pos >= src.length) return 0;
    char c = src[pos];
    if (isDigit(c)) {
      int v = 0;
      while (pos < src.length && isDigit(src[pos])) {
        v = v * 10 + (src[pos] - '0');
        pos++;
      }
      return 1000 + v;
    }
    pos++;
    return c;
  }
}

class Parser {
  int[] tokens;
  int cursor;
  int errors;

  Parser(char[] input) {
    Lexer lx = new Lexer(input);
    tokens = new int[256];
    int n = 0;
    int t = lx.next();
    while (t != 0) {
      tokens[n] = t;
      n++;
      t = lx.next();
    }
    tokens[n] = 0;
    cursor = 0;
    errors = 0;
  }

  int peek() {
    return tokens[cursor];
  }

  int take() {
    int t = tokens[cursor];
    if (t != 0) cursor++;
    return t;
  }

  // expr := term (('+'|'-') term)*
  int expr() {
    int v = term();
    while (peek() == '+' || peek() == '-') {
      int op = take();
      int r = term();
      if (op == '+') v = v + r; else v = v - r;
    }
    return v;
  }

  // term := factor (('*'|'/'|'%') factor)*
  int term() {
    int v = factor();
    while (peek() == '*' || peek() == '/' || peek() == '%') {
      int op = take();
      int r = factor();
      if (op == '*') v = v * r;
      else if (op == '/') { if (r == 0) { errors++; } else v = v / r; }
      else { if (r == 0) { errors++; } else v = v % r; }
    }
    return v;
  }

  // factor := NUM | '(' expr ')' | '-' factor
  int factor() {
    int t = peek();
    if (t >= 1000) { take(); return t - 1000; }
    if (t == '(') {
      take();
      int v = expr();
      if (peek() == ')') take(); else errors++;
      return v;
    }
    if (t == '-') {
      take();
      return -factor();
    }
    errors++;
    take();
    return 0;
  }
}

class Main {
  static int run(char[] text) {
    Parser p = new Parser(text);
    int v = p.expr();
    if (p.errors > 0) return -999999;
    return v;
  }

  static void main() {
    IO.printInt(run("1 + 2 * 3"));
    IO.println();
    IO.printInt(run("(1 + 2) * (3 + 4) - 5"));
    IO.println();
    IO.printInt(run("100 / 7 % 5 + -3"));
    IO.println();
    IO.printInt(run("((2 + 3) * (4 + 6)) / (1 + 1)"));
    IO.println();
    IO.printInt(run("8 * (((1 + 2) * (3 + 4)) - (5 * (6 - 7)))"));
    IO.println();
    IO.printInt(run("4 + * 5"));
    IO.println();
  }
}
)MJ";

static const char *SortSrc = R"MJ(
// Sorting workloads (quicksort, mergesort, insertion sort) over
// LCG-generated data, standing in for the container-heavy classes of
// sun.tools.javac: array shuffling, recursion, comparisons.
class Rng {
  int state;

  Rng(int seed) {
    state = seed;
  }

  int next() {
    state = (state * 1103515245 + 12345) & 0x7fffffff;
    return state;
  }

  int nextBounded(int bound) {
    return next() % bound;
  }
}

class Sorter {
  static void insertion(int[] a, int lo, int hi) {
    for (int i = lo + 1; i <= hi; i++) {
      int key = a[i];
      int j = i - 1;
      while (j >= lo && a[j] > key) {
        a[j + 1] = a[j];
        j--;
      }
      a[j + 1] = key;
    }
  }

  static void quick(int[] a, int lo, int hi) {
    if (hi - lo < 12) {
      insertion(a, lo, hi);
      return;
    }
    int mid = lo + (hi - lo) / 2;
    // Median-of-three pivot.
    if (a[mid] < a[lo]) { int t = a[mid]; a[mid] = a[lo]; a[lo] = t; }
    if (a[hi] < a[lo]) { int t = a[hi]; a[hi] = a[lo]; a[lo] = t; }
    if (a[hi] < a[mid]) { int t = a[hi]; a[hi] = a[mid]; a[mid] = t; }
    int pivot = a[mid];
    int i = lo;
    int j = hi;
    while (i <= j) {
      while (a[i] < pivot) i++;
      while (a[j] > pivot) j--;
      if (i <= j) {
        int t = a[i];
        a[i] = a[j];
        a[j] = t;
        i++;
        j--;
      }
    }
    quick(a, lo, j);
    quick(a, i, hi);
  }

  static void mergeSort(double[] a, double[] tmp, int lo, int hi) {
    if (hi - lo < 1) return;
    int mid = lo + (hi - lo) / 2;
    mergeSort(a, tmp, lo, mid);
    mergeSort(a, tmp, mid + 1, hi);
    int i = lo;
    int j = mid + 1;
    int k = lo;
    while (i <= mid && j <= hi) {
      if (a[i] <= a[j]) { tmp[k] = a[i]; i++; } else { tmp[k] = a[j]; j++; }
      k++;
    }
    while (i <= mid) { tmp[k] = a[i]; i++; k++; }
    while (j <= hi) { tmp[k] = a[j]; j++; k++; }
    for (int m = lo; m <= hi; m++) a[m] = tmp[m];
  }

  static boolean isSorted(int[] a) {
    for (int i = 1; i < a.length; i++)
      if (a[i - 1] > a[i]) return false;
    return true;
  }
}

class Main {
  static void main() {
    Rng rng = new Rng(20010617);
    int n = 2000;
    int[] data = new int[n];
    for (int i = 0; i < n; i++) data[i] = rng.nextBounded(100000);
    Sorter.quick(data, 0, n - 1);
    IO.printBool(Sorter.isSorted(data));
    IO.println();
    int checksum = 0;
    for (int i = 0; i < n; i++) checksum = (checksum * 31 + data[i]) % 1000003;
    IO.printInt(checksum);
    IO.println();

    double[] dd = new double[500];
    double[] tmp = new double[500];
    for (int i = 0; i < dd.length; i++)
      dd[i] = (double) rng.nextBounded(1000000) / 997.0;
    Sorter.mergeSort(dd, tmp, 0, dd.length - 1);
    boolean ok = true;
    for (int i = 1; i < dd.length; i++)
      if (dd[i - 1] > dd[i]) ok = false;
    IO.printBool(ok);
    IO.println();
    IO.printInt((int) (dd[250] * 1000.0));
    IO.println();
  }
}
)MJ";

static const char *HashMapSrc = R"MJ(
// Open-addressing int->int hash table with tombstones and rehashing,
// standing in for javac's symbol-table machinery (BatchEnvironment):
// probe loops, modular arithmetic, state-dependent control flow.
class IntMap {
  int[] keys;
  int[] vals;
  int[] state; // 0 empty, 1 used, 2 tombstone
  int size;
  int cap;

  IntMap(int capacity) {
    cap = capacity;
    keys = new int[cap];
    vals = new int[cap];
    state = new int[cap];
    size = 0;
  }

  static int hash(int k) {
    return (k * 0x9e3779b) & 0x7fffffff;
  }

  void put(int k, int v) {
    if ((size + 1) * 4 >= cap * 3) rehash();
    int i = hash(k) % cap;
    int firstTomb = -1;
    while (state[i] != 0) {
      if (state[i] == 1 && keys[i] == k) { vals[i] = v; return; }
      if (state[i] == 2 && firstTomb < 0) firstTomb = i;
      i = (i + 1) % cap;
    }
    if (firstTomb >= 0) i = firstTomb;
    keys[i] = k;
    vals[i] = v;
    state[i] = 1;
    size++;
  }

  int get(int k, int dflt) {
    int i = hash(k) % cap;
    while (state[i] != 0) {
      if (state[i] == 1 && keys[i] == k) return vals[i];
      i = (i + 1) % cap;
    }
    return dflt;
  }

  boolean remove(int k) {
    int i = hash(k) % cap;
    while (state[i] != 0) {
      if (state[i] == 1 && keys[i] == k) {
        state[i] = 2;
        size--;
        return true;
      }
      i = (i + 1) % cap;
    }
    return false;
  }

  void rehash() {
    int[] ok = keys;
    int[] ov = vals;
    int[] os = state;
    int oldCap = cap;
    cap = cap * 2 + 1;
    keys = new int[cap];
    vals = new int[cap];
    state = new int[cap];
    size = 0;
    for (int i = 0; i < oldCap; i++)
      if (os[i] == 1) put(ok[i], ov[i]);
  }
}

class Main {
  static void main() {
    IntMap m = new IntMap(17);
    // Insert, overwrite, remove in interleaved patterns.
    for (int i = 0; i < 3000; i++) m.put(i * 7 % 1999, i);
    for (int i = 0; i < 1999; i = i + 3) m.remove(i);
    for (int i = 0; i < 500; i++) m.put(i * 13 % 1999, i * i);
    int sum = 0;
    for (int i = 0; i < 1999; i++) sum = (sum + m.get(i, 1)) % 1000003;
    IO.printInt(m.size);
    IO.println();
    IO.printInt(sum);
    IO.println();
    IO.printBool(m.get(123456, -1) == -1);
    IO.println();
  }
}
)MJ";

static const char *ShapesSrc = R"MJ(
// Class hierarchy with virtual dispatch, overriding, instanceof, and
// checked downcasts — the OO-typing features behind the paper's
// xdispatch/upcast machinery (sun.tools.javac SourceClass analogue).
class Shape {
  int id;

  int area() { return 0; }
  int perimeter() { return 0; }
  boolean isRound() { return false; }
}

class Rect extends Shape {
  int w;
  int h;

  Rect(int width, int height) {
    w = width;
    h = height;
  }

  int area() { return w * h; }
  int perimeter() { return 2 * (w + h); }
}

class Square extends Rect {
  Square(int side) {
    w = side;
    h = side;
  }

  // Inherits area/perimeter; adds one override to force a deeper vtable.
  int perimeter() { return 4 * w; }
}

class Circle extends Shape {
  int r;

  Circle(int radius) {
    r = radius;
  }

  // Integer-scaled pi = 355/113.
  int area() { return 355 * r * r / 113; }
  int perimeter() { return 2 * 355 * r / 113; }
  boolean isRound() { return true; }
}

class Main {
  static void main() {
    Shape[] shapes = new Shape[12];
    for (int i = 0; i < shapes.length; i++) {
      int k = i % 3;
      if (k == 0) shapes[i] = new Rect(i + 1, i + 2);
      else if (k == 1) shapes[i] = new Square(i + 1);
      else shapes[i] = new Circle(i + 1);
    }

    int totalArea = 0;
    int totalPerim = 0;
    int roundCount = 0;
    int squareSides = 0;
    for (int i = 0; i < shapes.length; i++) {
      Shape s = shapes[i];
      totalArea = totalArea + s.area();
      totalPerim = totalPerim + s.perimeter();
      if (s.isRound()) roundCount++;
      if (s instanceof Square) {
        Square q = (Square) s;
        squareSides = squareSides + q.w;
      } else if (s instanceof Rect) {
        Rect r = (Rect) s;
        squareSides = squareSides + r.w - r.h;
      }
    }
    IO.printInt(totalArea);
    IO.println();
    IO.printInt(totalPerim);
    IO.println();
    IO.printInt(roundCount);
    IO.println();
    IO.printInt(squareSides);
    IO.println();

    // Upcast (free) and checked downcast round trip.
    Shape s = new Square(9);
    Rect r = (Rect) s;
    IO.printInt(r.area());
    IO.println();
    IO.printBool(r instanceof Square);
    IO.println();
  }
}
)MJ";

static const char *QueueGraphSrc = R"MJ(
// Linked structures: a FIFO queue of nodes and a breadth-first search
// over an adjacency-array graph — null-check-heavy pointer chasing
// (sun.tools.javac BatchParser analogue).
class Node {
  int value;
  Node next;

  Node(int v) {
    value = v;
  }
}

class Queue {
  Node head;
  Node tail;
  int count;

  void push(int v) {
    Node n = new Node(v);
    if (tail == null) {
      head = n;
      tail = n;
    } else {
      tail.next = n;
      tail = n;
    }
    count++;
  }

  int pop() {
    Node n = head;
    head = n.next;
    if (head == null) tail = null;
    count--;
    return n.value;
  }

  boolean isEmpty() {
    return head == null;
  }
}

class Graph {
  int[] edgeTo;   // flattened adjacency
  int[] offsets;  // node i owns edgeTo[offsets[i] .. offsets[i+1])
  int nodes;

  Graph(int n, int[] degrees) {
    nodes = n;
    offsets = new int[n + 1];
    int total = 0;
    for (int i = 0; i < n; i++) {
      offsets[i] = total;
      total = total + degrees[i];
    }
    offsets[n] = total;
    edgeTo = new int[total];
  }

  int bfsDistanceSum(int start) {
    int[] dist = new int[nodes];
    for (int i = 0; i < nodes; i++) dist[i] = -1;
    Queue q = new Queue();
    dist[start] = 0;
    q.push(start);
    int sum = 0;
    while (!q.isEmpty()) {
      int u = q.pop();
      sum = sum + dist[u];
      for (int e = offsets[u]; e < offsets[u + 1]; e++) {
        int v = edgeTo[e];
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          q.push(v);
        }
      }
    }
    return sum;
  }
}

class Main {
  static void main() {
    // Ring of 64 nodes plus chords at stride 9.
    int n = 64;
    int[] deg = new int[n];
    for (int i = 0; i < n; i++) deg[i] = 3;
    Graph g = new Graph(n, deg);
    for (int i = 0; i < n; i++) {
      int base = g.offsets[i];
      g.edgeTo[base] = (i + 1) % n;
      g.edgeTo[base + 1] = (i + n - 1) % n;
      g.edgeTo[base + 2] = (i + 9) % n;
    }
    IO.printInt(g.bfsDistanceSum(0));
    IO.println();
    IO.printInt(g.bfsDistanceSum(17));
    IO.println();

    // Queue stress: interleaved push/pop.
    Queue q = new Queue();
    int check = 0;
    for (int i = 0; i < 500; i++) {
      q.push(i * i % 101);
      if (i % 3 == 0) check = (check * 7 + q.pop()) % 1000003;
    }
    while (!q.isEmpty()) check = (check * 7 + q.pop()) % 1000003;
    IO.printInt(check);
    IO.println();
  }
}
)MJ";

static const char *MatrixSrc = R"MJ(
// Integer matrix kernels: multiply, transpose, power — straight-line
// loop nests with index expressions CSE can attack (Main analogue of
// sun.tools.javac.Main's table-driven loops).
class IntMatrix {
  int[] a; // row-major n*n
  int n;

  IntMatrix(int size) {
    n = size;
    a = new int[n * n];
  }

  int get(int r, int c) {
    return a[r * n + c];
  }

  void set(int r, int c, int v) {
    a[r * n + c] = v;
  }

  IntMatrix times(IntMatrix o) {
    IntMatrix r = new IntMatrix(n);
    for (int i = 0; i < n; i++) {
      for (int j = 0; j < n; j++) {
        int acc = 0;
        for (int k = 0; k < n; k++)
          acc = acc + get(i, k) * o.get(k, j);
        r.set(i, j, acc % 1000003);
      }
    }
    return r;
  }

  IntMatrix transpose() {
    IntMatrix r = new IntMatrix(n);
    for (int i = 0; i < n; i++)
      for (int j = 0; j < n; j++)
        r.set(j, i, get(i, j));
    return r;
  }

  int trace() {
    int t = 0;
    for (int i = 0; i < n; i++) t = (t + get(i, i)) % 1000003;
    return t;
  }

  int checksum() {
    int s = 0;
    for (int i = 0; i < a.length; i++) s = (s * 31 + a[i]) % 1000003;
    return s;
  }
}

class Main {
  static void main() {
    int n = 12;
    IntMatrix m = new IntMatrix(n);
    for (int i = 0; i < n; i++)
      for (int j = 0; j < n; j++)
        m.set(i, j, (i * 17 + j * 3 + 1) % 97);

    IntMatrix p = m;
    for (int e = 0; e < 4; e++) p = p.times(m);
    IO.printInt(p.trace());
    IO.println();
    IO.printInt(p.checksum());
    IO.println();

    IntMatrix t = m.transpose().times(m);
    IO.printInt(t.trace());
    IO.println();
    IO.printBool(t.transpose().checksum() == t.checksum());
    IO.println();
  }
}
)MJ";

static const char *BinaryCodeSrc = R"MJ(
// Exception-driven control flow over packed binary records, standing in
// for sun.tools.java.BinaryCode: a decoder that relies on try/catch for
// malformed-input handling (the paper's §7 exception translation).
class Cursor {
  int[] data;
  int pos;

  Cursor(int[] d) {
    data = d;
    pos = 0;
  }

  // Raises IndexOutOfBounds past the end; callers catch to detect EOF.
  int next() {
    int v = data[pos];
    pos++;
    return v;
  }
}

class Decoder {
  int records;
  int checksum;
  int errors;

  // Record format: tag, then tag-many payload words; tag 9 divides the
  // next two words (division by zero is a recoverable data error).
  void decodeAll(int[] stream) {
    Cursor c = new Cursor(stream);
    boolean eof = false;
    while (!eof) {
      try {
        int tag = c.next();
        if (tag == 9) {
          int a = c.next();
          int b = c.next();
          try {
            checksum = (checksum + a / b) % 1000003;
          } catch {
            errors++;
          }
        } else {
          int acc = 0;
          for (int i = 0; i < tag; i++) acc = acc * 31 + c.next();
          checksum = (checksum + acc) % 1000003;
        }
        records++;
      } catch {
        eof = true;
      }
    }
  }
}

class Main {
  static void main() {
    // A stream with valid records, one division record with b == 0, and
    // a truncated trailer.
    int[] stream = new int[20];
    stream[0] = 2; stream[1] = 11; stream[2] = 22;       // record 1
    stream[3] = 9; stream[4] = 100; stream[5] = 7;       // record 2: 14
    stream[6] = 1; stream[7] = 5;                        // record 3
    stream[8] = 9; stream[9] = 50; stream[10] = 0;       // record 4: err
    stream[11] = 3; stream[12] = 1; stream[13] = 2; stream[14] = 3;
    stream[15] = 0;                                      // record 6: empty
    stream[16] = 9; stream[17] = 81; stream[18] = 9;     // record 7: 9
    stream[19] = 5; // truncated: tag 5 with no payload -> EOF via catch

    Decoder d = new Decoder();
    d.decodeAll(stream);
    IO.printInt(d.records);
    IO.println();
    IO.printInt(d.checksum);
    IO.println();
    IO.printInt(d.errors);
    IO.println();

    // Checked accessor pattern: probe indices, counting failures.
    int ok = 0;
    int bad = 0;
    for (int i = -3; i < 23; i++) {
      try {
        int v = stream[i];
        ok++;
      } catch {
        bad++;
      }
    }
    IO.printInt(ok);
    IO.printChar(' ');
    IO.printInt(bad);
    IO.println();
  }
}
)MJ";

static const char *AssemblerSrc = R"MJ(
// Instruction emitter whose hot loop funnels every byte through layers
// of tiny accessor and append helpers, plus a monomorphic virtual opcode
// query — the call-dense shape behind javac's assembler
// (sun.tools.asm.Assembler analogue) and the measurement target for
// tier-1 call splicing.
class Buf {
  int[] data;
  int len;
  int checksum;

  // The emitter sizes its code buffer up front, so the append helper is
  // a straight store-and-count with no capacity branch.
  Buf(int cap) {
    data = new int[cap];
    len = 0;
    checksum = 0;
  }

  int size() { return len; }

  int at(int i) { return data[i]; }

  void put(int b) {
    data[len] = b;
    len = len + 1;
  }

  void tally(int b) { checksum = checksum + b * 31; }
}

class Instr {
  int op() { return 0; }
  int width() { return 1; }
}

class Narrow extends Instr {
  int code;

  Narrow(int c) { code = c; }

  int op() { return code; }
}

class Wide extends Instr {
  int operand;

  Wide(int v) { operand = v; }

  int op() { return 196; }
  int width() { return 2; }
}

class Main {
  static int emitCold(Buf b, Instr ins) {
    b.put(ins.op());
    b.tally(ins.op());
    return ins.width();
  }

  static void main() {
    Buf b = new Buf(65536);

    // Keep every Instr subclass live so the hot op() site below stays a
    // guarded (profiled-monomorphic) dispatch rather than folding away.
    Instr w = new Wide(7);
    Instr n0 = new Narrow(3);
    int wide = emitCold(b, w) + emitCold(b, n0);

    // Hot loop: five calls per byte — two virtual opcode queries, the
    // append and checksum helpers, and a length read — with almost no
    // straight-line work between them.
    Instr ins = new Narrow(42);
    int acc = wide;
    int i = 0;
    while (i < 50000) {
      b.put(ins.op());
      b.tally(ins.op());
      acc = acc + b.size();
      i = i + 1;
    }

    // Allocation under the same helpers: fresh instructions flow through
    // the spliced bodies while the collector runs.
    int alloc = 0;
    int j = 0;
    while (j < 600) {
      Narrow m = new Narrow(j % 200);
      alloc = alloc + m.op() + emitCold(b, m);
      j = j + 1;
    }

    // Faulting reads through a flattened accessor: the out-of-bounds
    // trap unwinds the spliced frame into this caller's handler.
    int ok = 0;
    int faults = 0;
    int k = -4;
    while (k < b.size() + 4) {
      try {
        ok = ok + b.at(k) % 7;
      } catch {
        faults = faults + 1;
      }
      k = k + 997;
    }

    IO.printInt(acc);
    IO.println();
    IO.printInt(b.checksum);
    IO.println();
    IO.printInt(alloc);
    IO.printChar(' ');
    IO.printInt(ok);
    IO.printChar(' ');
    IO.printInt(faults);
    IO.println();
  }
}
)MJ";

void safetsa::appendCorpusPart2(std::vector<CorpusProgram> &Out) {
  Out.push_back({"BinaryCode", "sun.tools.java.BinaryCode",
                 BinaryCodeSrc});
  Out.push_back({"Parser", "sun.tools.java.Parser", ParserSrc});
  Out.push_back({"Sorter", "sun.tools.javac.SourceMember", SortSrc});
  Out.push_back({"BatchEnvironment", "sun.tools.javac.BatchEnvironment",
                 HashMapSrc});
  Out.push_back({"SourceClass", "sun.tools.javac.SourceClass", ShapesSrc});
  Out.push_back({"BatchParser", "sun.tools.javac.BatchParser",
                 QueueGraphSrc});
  Out.push_back({"Main", "sun.tools.javac.Main", MatrixSrc});
  Out.push_back({"Assembler", "sun.tools.asm.Assembler", AssemblerSrc});
}
