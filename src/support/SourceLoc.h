//===- support/SourceLoc.h - Source positions -----------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-offset source locations and the SourceManager that maps them back to
/// human-readable line/column pairs for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SUPPORT_SOURCELOC_H
#define SAFETSA_SUPPORT_SOURCELOC_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace safetsa {

/// A position in a source buffer, as a byte offset.
///
/// Offset 0 is the first byte; an invalid location is represented by
/// SourceLoc() (offset == ~0u), which diagnostics print without position.
struct SourceLoc {
  uint32_t Offset = ~0u;

  SourceLoc() = default;
  explicit SourceLoc(uint32_t Offset) : Offset(Offset) {}

  bool isValid() const { return Offset != ~0u; }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Offset == B.Offset;
  }
};

/// A half-open range [Begin, End) of source bytes.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  SourceRange() = default;
  SourceRange(SourceLoc Begin, SourceLoc End) : Begin(Begin), End(End) {}
};

/// Owns a single source buffer and resolves SourceLocs to line/column.
///
/// The reproduction compiles one translation unit (a set of MJ classes in
/// one buffer) at a time, so a single-buffer manager suffices.
class SourceManager {
public:
  SourceManager() = default;
  SourceManager(std::string Name, std::string Text)
      : BufferName(std::move(Name)), Text(std::move(Text)) {
    computeLineStarts();
  }

  const std::string &getBufferName() const { return BufferName; }
  const std::string &getText() const { return Text; }

  /// Returns the 1-based line number containing \p Loc.
  unsigned getLine(SourceLoc Loc) const;

  /// Returns the 1-based column number of \p Loc within its line.
  unsigned getColumn(SourceLoc Loc) const;

  /// Returns the full text of the 1-based line \p Line (without newline).
  std::string getLineText(unsigned Line) const;

private:
  void computeLineStarts();

  std::string BufferName;
  std::string Text;
  std::vector<uint32_t> LineStarts; // Byte offset of each line's first char.
};

} // namespace safetsa

#endif // SAFETSA_SUPPORT_SOURCELOC_H
