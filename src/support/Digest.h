//===- support/Digest.h - Content digests for wire modules ----*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 128-bit FNV-1a content digests over encoded module bytes.
///
/// The distribution layer (src/serve) is content-addressed: a module is
/// named by the digest of its exact encoded bytes, never by any claimed
/// identity travelling inside the payload. That keying discipline is what
/// lets a server cache decoded+verified modules and serve them many times
/// while paying verification once per digest — two byte streams with the
/// same digest are the same stream, so a cached verification verdict
/// transfers (the whole-system trust-boundary framing of "The Meaning of
/// Memory Safety"). FNV-1a is not cryptographic; it is the right tool for
/// a deduplicating index, and the protocol re-verifies every module it
/// decodes regardless, so a crafted collision buys an attacker nothing
/// beyond a cache mix-up between two streams the verifier already vetted.
///
/// The function is fully deterministic: no per-process seed, no
/// endianness dependence (input is consumed byte-at-a-time), so digests
/// are stable across runs, machines, and store restarts — a requirement
/// for the directory-backed ModuleStore, whose file names are digests.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SUPPORT_DIGEST_H
#define SAFETSA_SUPPORT_DIGEST_H

#include "support/BitStream.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace safetsa {

/// A 128-bit content digest, printable as 32 lowercase hex digits
/// (high 64 bits first).
struct Digest {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const Digest &O) const { return Hi == O.Hi && Lo == O.Lo; }
  bool operator!=(const Digest &O) const { return !(*this == O); }
  bool operator<(const Digest &O) const {
    return Hi != O.Hi ? Hi < O.Hi : Lo < O.Lo;
  }

  /// 32 lowercase hex digits, most-significant first.
  std::string hex() const;

  /// Parses exactly 32 hex digits (either case); nullopt on anything else.
  static std::optional<Digest> fromHex(std::string_view Str);
};

/// FNV-1a 128 over \p Bytes. Deterministic across runs and platforms.
Digest digestOf(ByteSpan Bytes);

/// Hash functor so Digest can key unordered containers. The digest is
/// already uniformly mixed, so folding the halves is enough.
struct DigestHash {
  size_t operator()(const Digest &D) const {
    return static_cast<size_t>(D.Hi ^ (D.Lo * 0x9e3779b97f4a7c15ull));
  }
};

} // namespace safetsa

#endif // SAFETSA_SUPPORT_DIGEST_H
