//===- support/Digest.cpp -------------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Digest.h"

using namespace safetsa;

namespace {

// FNV-1a 128 parameters (draft-eastlake-fnv): the prime is
// 2^88 + 2^8 + 0x3b, the offset basis the standard 128-bit one.
constexpr uint64_t kPrimeHi = 0x0000000001000000ull; // 2^88 >> 64
constexpr uint64_t kPrimeLo = 0x000000000000013bull;
constexpr uint64_t kBasisHi = 0x6c62272e07bb0142ull;
constexpr uint64_t kBasisLo = 0x62b821756295c58dull;

/// High 64 bits of a 64x64 multiply, via 32-bit limbs so the code has no
/// compiler-extension dependence (__int128) and stays constant-behaviour
/// everywhere.
uint64_t mulHi64(uint64_t A, uint64_t B) {
  uint64_t ALo = A & 0xffffffffull, AHi = A >> 32;
  uint64_t BLo = B & 0xffffffffull, BHi = B >> 32;
  uint64_t LoLo = ALo * BLo;
  uint64_t HiLo = AHi * BLo + (LoLo >> 32);
  uint64_t LoHi = ALo * BHi + (HiLo & 0xffffffffull);
  return AHi * BHi + (HiLo >> 32) + (LoHi >> 32);
}

} // namespace

Digest safetsa::digestOf(ByteSpan Bytes) {
  uint64_t Hi = kBasisHi, Lo = kBasisLo;
  for (size_t I = 0; I != Bytes.Size; ++I) {
    Lo ^= Bytes.Data[I];
    // (Hi,Lo) *= prime, mod 2^128. The cross terms Hi*primeHi and the
    // carries out of bit 127 vanish mod 2^128.
    uint64_t NewLo = Lo * kPrimeLo;
    uint64_t NewHi = mulHi64(Lo, kPrimeLo) + Lo * kPrimeHi + Hi * kPrimeLo;
    Hi = NewHi;
    Lo = NewLo;
  }
  return Digest{Hi, Lo};
}

std::string Digest::hex() const {
  static const char *Hex = "0123456789abcdef";
  std::string Out(32, '0');
  for (unsigned I = 0; I != 16; ++I)
    Out[15 - I] = Hex[(Hi >> (4 * I)) & 0xf];
  for (unsigned I = 0; I != 16; ++I)
    Out[31 - I] = Hex[(Lo >> (4 * I)) & 0xf];
  return Out;
}

std::optional<Digest> Digest::fromHex(std::string_view Str) {
  if (Str.size() != 32)
    return std::nullopt;
  uint64_t Parts[2] = {0, 0};
  for (size_t I = 0; I != 32; ++I) {
    char C = Str[I];
    uint64_t Nibble;
    if (C >= '0' && C <= '9')
      Nibble = static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Nibble = static_cast<uint64_t>(C - 'a' + 10);
    else if (C >= 'A' && C <= 'F')
      Nibble = static_cast<uint64_t>(C - 'A' + 10);
    else
      return std::nullopt;
    Parts[I / 16] = (Parts[I / 16] << 4) | Nibble;
  }
  return Digest{Parts[0], Parts[1]};
}
