//===- support/SourceLoc.cpp ----------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/SourceLoc.h"

#include <algorithm>

using namespace safetsa;

void SourceManager::computeLineStarts() {
  LineStarts.clear();
  LineStarts.push_back(0);
  for (uint32_t I = 0, E = static_cast<uint32_t>(Text.size()); I != E; ++I)
    if (Text[I] == '\n')
      LineStarts.push_back(I + 1);
}

unsigned SourceManager::getLine(SourceLoc Loc) const {
  assert(Loc.isValid() && "querying line of invalid location");
  auto It = std::upper_bound(LineStarts.begin(), LineStarts.end(), Loc.Offset);
  return static_cast<unsigned>(It - LineStarts.begin());
}

unsigned SourceManager::getColumn(SourceLoc Loc) const {
  unsigned Line = getLine(Loc);
  return Loc.Offset - LineStarts[Line - 1] + 1;
}

std::string SourceManager::getLineText(unsigned Line) const {
  assert(Line >= 1 && Line <= LineStarts.size() && "line out of range");
  uint32_t Begin = LineStarts[Line - 1];
  uint32_t End = Line < LineStarts.size()
                     ? LineStarts[Line] - 1
                     : static_cast<uint32_t>(Text.size());
  return Text.substr(Begin, End - Begin);
}
