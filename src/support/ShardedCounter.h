//===- support/ShardedCounter.h - Striped relaxed counters ----*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A write-mostly event counter striped across cache-line-padded slots so
/// concurrent increments from different threads never contend on one
/// line. Each thread hashes to a stripe by a process-wide thread ordinal
/// (threadStripe(), also used by exec/Profile to stripe its tables);
/// add() is a single relaxed fetch_add on that stripe, and sum() folds
/// the stripes.
///
/// Exactness: every add() lands in exactly one atomic slot, so once the
/// writing threads are quiescent (joined, or simply not mid-add), sum()
/// is the exact total of all add() calls — not an approximation. A sum()
/// racing live writers returns a value between the counts at its first
/// and last stripe load (each load is atomic; no increment is ever lost
/// or double-counted), which is all the STATS wire needs: totals are
/// exact whenever they are observable.
///
/// Ordering: increments are relaxed on purpose. A counter never guards
/// other memory — readers of cached *contents* synchronize through the
/// cache's own acquire/release publication (DESIGN.md §12) — so the only
/// requirement is atomicity of each add, not ordering between adds.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SUPPORT_SHARDEDCOUNTER_H
#define SAFETSA_SUPPORT_SHARDEDCOUNTER_H

#include <atomic>
#include <cstdint>

namespace safetsa {

class ShardedCounter {
public:
  /// Power of two; 16 stripes of one cache line each (1 KiB per counter)
  /// is enough that even a 16-thread storm rarely shares a slot.
  static constexpr unsigned kStripes = 16;

  /// Process-wide small ordinal for the calling thread (0, 1, 2, ... in
  /// first-use order). Stable for the thread's lifetime; shared by every
  /// striped structure so one TLS slot serves them all.
  static unsigned threadStripe() {
    static std::atomic<unsigned> Next{0};
    thread_local const unsigned Stripe =
        Next.fetch_add(1, std::memory_order_relaxed);
    return Stripe;
  }

  void add(uint64_t N = 1) {
    Slots[threadStripe() % kStripes].V.fetch_add(N,
                                                 std::memory_order_relaxed);
  }

  uint64_t sum() const {
    uint64_t T = 0;
    for (const Slot &S : Slots)
      T += S.V.load(std::memory_order_relaxed);
    return T;
  }

private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> V{0};
  };
  Slot Slots[kStripes];
};

} // namespace safetsa

#endif // SAFETSA_SUPPORT_SHARDEDCOUNTER_H
