//===- support/SmallVector.h - Inline-storage vector ----------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector with N elements of inline storage, used for the small lists
/// the IR is made of (instruction operands, block edges, CST children).
///
/// The consumer load path allocates whole methods out of a bump arena, but
/// std::vector members still cost one heap round trip each — and a decoded
/// module is mostly such lists, almost all of length <= 4. Keeping the
/// common case inline removes the dominant allocation traffic from both
/// decode and teardown; long lists spill to the heap transparently.
///
/// Deliberately a subset of std::vector: contiguous T* iterators, no
/// allocator parameter, no shrink_to_fit. Spilled storage is released by
/// the destructor, so arena-owned IR nodes still need their destructor run
/// (BumpArena does).
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SUPPORT_SMALLVECTOR_H
#define SAFETSA_SUPPORT_SMALLVECTOR_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <new>
#include <type_traits>
#include <utility>

namespace safetsa {

template <typename T, unsigned N> class SmallVector {
public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;
  using reverse_iterator = std::reverse_iterator<iterator>;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;
  using size_type = size_t;

  SmallVector() = default;
  SmallVector(std::initializer_list<T> IL) { append(IL.begin(), IL.end()); }
  SmallVector(const SmallVector &O) { append(O.begin(), O.end()); }
  SmallVector(SmallVector &&O) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    takeFrom(O);
  }
  ~SmallVector() {
    destroyRange(Begin, Begin + Sz);
    if (!isInline())
      ::operator delete(Begin);
  }

  SmallVector &operator=(const SmallVector &O) {
    if (this != &O)
      assign(O.begin(), O.end());
    return *this;
  }
  SmallVector &operator=(SmallVector &&O) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (this == &O)
      return *this;
    destroyRange(Begin, Begin + Sz);
    if (!isInline())
      ::operator delete(Begin);
    Begin = inlineData();
    Sz = 0;
    Cap = N;
    takeFrom(O);
    return *this;
  }
  SmallVector &operator=(std::initializer_list<T> IL) {
    assign(IL.begin(), IL.end());
    return *this;
  }

  iterator begin() { return Begin; }
  iterator end() { return Begin + Sz; }
  const_iterator begin() const { return Begin; }
  const_iterator end() const { return Begin + Sz; }
  reverse_iterator rbegin() { return reverse_iterator(end()); }
  reverse_iterator rend() { return reverse_iterator(begin()); }
  const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

  size_t size() const { return Sz; }
  bool empty() const { return Sz == 0; }
  size_t capacity() const { return Cap; }
  T *data() { return Begin; }
  const T *data() const { return Begin; }

  T &operator[](size_t I) {
    assert(I < Sz && "index out of range");
    return Begin[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Sz && "index out of range");
    return Begin[I];
  }
  T &front() { return (*this)[0]; }
  const T &front() const { return (*this)[0]; }
  T &back() { return (*this)[Sz - 1]; }
  const T &back() const { return (*this)[Sz - 1]; }

  void reserve(size_t MinCap) {
    if (MinCap > Cap)
      grow(MinCap);
  }

  void clear() {
    destroyRange(Begin, Begin + Sz);
    Sz = 0;
  }

  void push_back(const T &V) {
    if (Sz == Cap) {
      T Tmp(V); // V may live in this vector; copy before growing.
      grow(Sz + 1);
      ::new (Begin + Sz) T(std::move(Tmp));
    } else {
      ::new (Begin + Sz) T(V);
    }
    ++Sz;
  }
  void push_back(T &&V) {
    if (Sz == Cap) {
      T Tmp(std::move(V));
      grow(Sz + 1);
      ::new (Begin + Sz) T(std::move(Tmp));
    } else {
      ::new (Begin + Sz) T(std::move(V));
    }
    ++Sz;
  }
  template <typename... ArgTys> T &emplace_back(ArgTys &&...Args) {
    if (Sz == Cap)
      grow(Sz + 1);
    ::new (Begin + Sz) T(std::forward<ArgTys>(Args)...);
    return Begin[Sz++];
  }

  void pop_back() {
    assert(Sz && "pop from empty vector");
    Begin[--Sz].~T();
  }

  void resize(size_t NewSize) {
    if (NewSize < Sz) {
      destroyRange(Begin + NewSize, Begin + Sz);
    } else {
      reserve(NewSize);
      for (size_t I = Sz; I != NewSize; ++I)
        ::new (Begin + I) T();
    }
    Sz = NewSize;
  }
  void resize(size_t NewSize, const T &V) {
    if (NewSize < Sz) {
      destroyRange(Begin + NewSize, Begin + Sz);
    } else {
      reserve(NewSize);
      for (size_t I = Sz; I != NewSize; ++I)
        ::new (Begin + I) T(V);
    }
    Sz = NewSize;
  }

  void assign(size_t Count, const T &V) {
    clear();
    resize(Count, V);
  }
  template <typename It> void assign(It First, It Last) {
    clear();
    append(First, Last);
  }

  template <typename It> void append(It First, It Last) {
    reserve(Sz + static_cast<size_t>(std::distance(First, Last)));
    for (; First != Last; ++First)
      ::new (Begin + Sz++) T(*First);
  }

  /// Inserts a range; the common Pos == end() case is a plain append.
  template <typename It> iterator insert(iterator Pos, It First, It Last) {
    size_t Idx = static_cast<size_t>(Pos - Begin);
    size_t OldSz = Sz;
    append(First, Last);
    std::rotate(Begin + Idx, Begin + OldSz, Begin + Sz);
    return Begin + Idx;
  }

  iterator insert(iterator Pos, const T &V) {
    size_t Idx = static_cast<size_t>(Pos - Begin);
    push_back(V);
    std::rotate(Begin + Idx, Begin + Sz - 1, Begin + Sz);
    return Begin + Idx;
  }

  iterator erase(iterator First, iterator Last) {
    iterator NewEnd = std::move(Last, Begin + Sz, First);
    destroyRange(NewEnd, Begin + Sz);
    Sz = static_cast<size_t>(NewEnd - Begin);
    return First;
  }
  iterator erase(iterator Pos) { return erase(Pos, Pos + 1); }

  friend bool operator==(const SmallVector &A, const SmallVector &B) {
    return std::equal(A.begin(), A.end(), B.begin(), B.end());
  }

private:
  T *inlineData() { return reinterpret_cast<T *>(Inline); }
  bool isInline() const {
    return Begin == reinterpret_cast<const T *>(Inline);
  }

  static void destroyRange(T *First, T *Last) {
    if constexpr (!std::is_trivially_destructible_v<T>)
      for (; First != Last; ++First)
        First->~T();
  }

  void grow(size_t MinCap) {
    size_t NewCap = Cap * 2 > MinCap ? Cap * 2 : MinCap;
    T *NewData = static_cast<T *>(::operator new(NewCap * sizeof(T)));
    for (size_t I = 0; I != Sz; ++I) {
      ::new (NewData + I) T(std::move(Begin[I]));
      Begin[I].~T();
    }
    if (!isInline())
      ::operator delete(Begin);
    Begin = NewData;
    Cap = NewCap;
  }

  /// Steals \p O's heap buffer, or element-moves its inline contents.
  /// Leaves \p O empty. *this must be empty and inline on entry.
  void takeFrom(SmallVector &O) {
    if (O.isInline()) {
      for (size_t I = 0; I != O.Sz; ++I)
        ::new (Begin + I) T(std::move(O.Begin[I]));
      Sz = O.Sz;
      destroyRange(O.Begin, O.Begin + O.Sz);
    } else {
      Begin = O.Begin;
      Sz = O.Sz;
      Cap = O.Cap;
      O.Begin = O.inlineData();
      O.Cap = N;
    }
    O.Sz = 0;
  }

  T *Begin = inlineData();
  size_t Sz = 0;
  size_t Cap = N;
  alignas(T) unsigned char Inline[N * sizeof(T)];
};

} // namespace safetsa

#endif // SAFETSA_SUPPORT_SMALLVECTOR_H
