//===- support/Arena.h - Bump-pointer arena allocation --------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena for the SafeTSA IR (Instruction, BasicBlock,
/// CSTNode). The consumer load path allocates tens of thousands of IR
/// nodes per module; per-node `new` was the dominant allocator traffic.
/// The arena hands out objects from large slabs, so allocation is a
/// pointer bump and teardown is one pass over the slab list instead of
/// one `free` per node.
///
/// Objects are never individually freed: passes that unlink nodes (DCE,
/// CSE) simply drop the pointers and the memory is reclaimed when the
/// owning method dies. Destructors of non-trivially-destructible types
/// are recorded and run at arena teardown, newest first.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SUPPORT_ARENA_H
#define SAFETSA_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace safetsa {

/// Monotonic slab allocator. Not thread-safe; each owner (one TSAMethod)
/// is confined to one thread at a time by the batch pipeline's design.
class BumpArena {
public:
  BumpArena() = default;
  BumpArena(BumpArena &&) = default;
  BumpArena &operator=(BumpArena &&) = default;
  BumpArena(const BumpArena &) = delete;
  BumpArena &operator=(const BumpArena &) = delete;

  ~BumpArena() { reset(); }

  /// Allocates \p Size bytes aligned to \p Align from the current slab,
  /// starting a new slab when it does not fit.
  void *allocate(size_t Size, size_t Align) {
    uintptr_t P = (reinterpret_cast<uintptr_t>(Cur) + Align - 1) &
                  ~(uintptr_t(Align) - 1);
    if (P + Size > reinterpret_cast<uintptr_t>(End)) {
      newSlab(Size + Align);
      P = (reinterpret_cast<uintptr_t>(Cur) + Align - 1) &
          ~(uintptr_t(Align) - 1);
    }
    Cur = reinterpret_cast<char *>(P + Size);
    return reinterpret_cast<void *>(P);
  }

  /// Constructs a T in the arena. The object lives until reset() or the
  /// arena is destroyed; there is no per-object destroy.
  template <typename T, typename... Args> T *create(Args &&...A) {
    void *Mem = allocate(sizeof(T), alignof(T));
    T *Obj = new (Mem) T(std::forward<Args>(A)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      Dtors.push_back({Obj, [](void *P) { static_cast<T *>(P)->~T(); }});
    return Obj;
  }

  /// Runs pending destructors and releases every slab.
  void reset() {
    for (auto It = Dtors.rbegin(); It != Dtors.rend(); ++It)
      It->Destroy(It->Obj);
    Dtors.clear();
    Slabs.clear();
    Cur = End = nullptr;
  }

  /// Total bytes reserved across slabs (capacity, not live objects).
  size_t bytesReserved() const {
    size_t N = 0;
    for (const auto &S : Slabs)
      N += S.Size;
    return N;
  }

private:
  struct Slab {
    std::unique_ptr<char[]> Mem;
    size_t Size;
  };
  struct DtorEntry {
    void *Obj;
    void (*Destroy)(void *);
  };

  void newSlab(size_t AtLeast) {
    // Slabs double up to a cap so small methods stay small and large
    // modules amortize to a handful of mmaps.
    size_t Size = Slabs.empty() ? 4096 : Slabs.back().Size * 2;
    if (Size > MaxSlab)
      Size = MaxSlab;
    if (Size < AtLeast)
      Size = AtLeast;
    Slabs.push_back({std::make_unique<char[]>(Size), Size});
    Cur = Slabs.back().Mem.get();
    End = Cur + Size;
  }

  static constexpr size_t MaxSlab = 256 * 1024;

  std::vector<Slab> Slabs;
  std::vector<DtorEntry> Dtors;
  char *Cur = nullptr;
  char *End = nullptr;
};

} // namespace safetsa

#endif // SAFETSA_SUPPORT_ARENA_H
