//===- support/Diagnostics.h - Error reporting ----------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small collecting diagnostic engine. Library code never throws; phases
/// report problems here and callers test hasErrors() between phases.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SUPPORT_DIAGNOSTICS_H
#define SAFETSA_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace safetsa {

enum class Severity { Note, Warning, Error };

/// One reported problem: severity, position, message.
struct Diagnostic {
  Severity Level = Severity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics across compiler phases.
///
/// Messages follow the LLVM style: lowercase first letter, no trailing
/// period. Rendering (with line/column and source excerpt) is separate from
/// collection so tests can assert on raw messages.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({Severity::Error, Loc, std::move(Message)});
    ++NumErrors;
  }

  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({Severity::Warning, Loc, std::move(Message)});
  }

  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({Severity::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned getNumErrors() const { return NumErrors; }
  const std::vector<Diagnostic> &getDiagnostics() const { return Diags; }

  /// Renders all diagnostics as "name:line:col: severity: message" lines,
  /// with a source excerpt and caret when \p SM is provided.
  std::string render(const SourceManager *SM) const;

  /// True if some diagnostic's message contains \p Needle (test helper).
  bool containsMessage(const std::string &Needle) const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace safetsa

#endif // SAFETSA_SUPPORT_DIAGNOSTICS_H
