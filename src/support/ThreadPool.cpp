//===- support/ThreadPool.cpp ---------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace safetsa;

ThreadPool::ThreadPool(unsigned NumThreads) {
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  if (Workers.empty()) {
    Task(); // Inline mode: no queue, no locks.
    return;
  }
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
    ++InFlight;
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return InFlight == 0; });
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      if (--InFlight == 0)
        AllDone.notify_all();
    }
  }
}

unsigned ThreadPool::defaultThreadCount() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}
