//===- support/BitStream.cpp ----------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BitStream.h"

using namespace safetsa;

unsigned safetsa::floorLog2(uint64_t X) {
  assert(X >= 1 && "floorLog2 of zero");
  unsigned Result = 0;
  while (X >>= 1)
    ++Result;
  return Result;
}

void BitWriter::writeFixed(uint64_t Value, unsigned NumBits) {
  assert(NumBits <= 64 && "too many bits");
  for (unsigned I = 0; I != NumBits; ++I)
    writeBit((Value >> I) & 1);
}

void BitWriter::writeBounded(uint64_t Value, uint64_t Bound) {
  assert(Bound >= 1 && "empty alphabet");
  assert(Value < Bound && "symbol outside alphabet");
  if (Bound == 1)
    return;
  unsigned K = floorLog2(Bound);
  uint64_t Short = (uint64_t(1) << (K + 1)) - Bound; // Symbols using K bits.
  // The symbol's own bits go MSB-first so that the code is prefix-free: a
  // short symbol's K-bit code never collides with the first K bits of a
  // long symbol's (K+1)-bit code, because long codes are >= Short*2.
  uint64_t Code = Value < Short ? Value : Value + Short;
  unsigned Len = Value < Short ? K : K + 1;
  for (unsigned I = Len; I != 0; --I)
    writeBit((Code >> (I - 1)) & 1);
}

void BitWriter::writeVarUint(uint64_t Value) {
  do {
    uint64_t Group = Value & 0x7f;
    Value >>= 7;
    writeBit(Value != 0);
    writeFixed(Group, 7);
  } while (Value != 0);
}

void BitWriter::writeString(const std::string &Str) {
  writeVarUint(Str.size());
  for (char C : Str)
    writeFixed(static_cast<uint8_t>(C), 8);
}

std::vector<uint8_t> BitWriter::take() {
  if (BitCount != 0)
    flushByte();
  return std::move(Bytes);
}

bool BitReader::readBit() {
  if (BitPos >= Bytes.size() * 8) {
    Overrun = true;
    return false;
  }
  bool Bit = (Bytes[BitPos / 8] >> (BitPos % 8)) & 1;
  ++BitPos;
  return Bit;
}

uint64_t BitReader::readFixed(unsigned NumBits) {
  assert(NumBits <= 64 && "too many bits");
  uint64_t Value = 0;
  for (unsigned I = 0; I != NumBits; ++I)
    Value |= static_cast<uint64_t>(readBit()) << I;
  return Value;
}

uint64_t BitReader::readBounded(uint64_t Bound) {
  assert(Bound >= 1 && "empty alphabet");
  if (Bound == 1)
    return 0;
  unsigned K = floorLog2(Bound);
  uint64_t Short = (uint64_t(1) << (K + 1)) - Bound;
  uint64_t Value = 0;
  for (unsigned I = 0; I != K; ++I)
    Value = (Value << 1) | readBit();
  if (Value < Short)
    return Value;
  // One more bit disambiguates the long codes; see writeBounded.
  Value = (Value << 1) | readBit();
  return Value - Short;
}

uint64_t BitReader::readVarUint() {
  uint64_t Value = 0;
  unsigned Shift = 0;
  bool More = true;
  while (More && Shift < 64) {
    More = readBit();
    Value |= readFixed(7) << Shift;
    Shift += 7;
  }
  return Value;
}

std::string BitReader::readString() {
  uint64_t Size = readVarUint();
  // Clamp against hostile length fields; the overrun flag will fire anyway
  // on truncated input, but avoid attempting a huge allocation first.
  if (Size > Bytes.size() * 8) {
    Overrun = true;
    return std::string();
  }
  std::string Str;
  Str.reserve(Size);
  for (uint64_t I = 0; I != Size; ++I)
    Str.push_back(static_cast<char>(readFixed(8)));
  return Str;
}
