//===- support/BitStream.cpp ----------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BitStream.h"

using namespace safetsa;

unsigned safetsa::floorLog2(uint64_t X) {
  assert(X >= 1 && "floorLog2 of zero");
  unsigned Result = 0;
  while (X >>= 1)
    ++Result;
  return Result;
}

void BitWriter::writeFixed(uint64_t Value, unsigned NumBits) {
  assert(NumBits <= 64 && "too many bits");
  for (unsigned I = 0; I != NumBits; ++I)
    writeBit((Value >> I) & 1);
}

void BitWriter::writeBounded(uint64_t Value, uint64_t Bound) {
  assert(Bound >= 1 && "empty alphabet");
  assert(Value < Bound && "symbol outside alphabet");
  if (Bound == 1)
    return;
  unsigned K = floorLog2(Bound);
  uint64_t Short = (uint64_t(1) << (K + 1)) - Bound; // Symbols using K bits.
  // The symbol's own bits go MSB-first so that the code is prefix-free: a
  // short symbol's K-bit code never collides with the first K bits of a
  // long symbol's (K+1)-bit code, because long codes are >= Short*2.
  uint64_t Code = Value < Short ? Value : Value + Short;
  unsigned Len = Value < Short ? K : K + 1;
  for (unsigned I = Len; I != 0; --I)
    writeBit((Code >> (I - 1)) & 1);
}

void BitWriter::writeVarUint(uint64_t Value) {
  do {
    uint64_t Group = Value & 0x7f;
    Value >>= 7;
    writeBit(Value != 0);
    writeFixed(Group, 7);
  } while (Value != 0);
}

void BitWriter::writeString(const std::string &Str) {
  writeVarUint(Str.size());
  for (char C : Str)
    writeFixed(static_cast<uint8_t>(C), 8);
}

std::vector<uint8_t> BitWriter::take() {
  if (BitCount != 0)
    flushByte();
  return std::move(Bytes);
}

namespace {

/// Full decode table for one truncated-binary alphabet: an entry for every
/// possible window of MaxLen upcoming stream bits, giving the symbol that
/// window starts with and its code length. Truncated-binary codes are
/// complete, so every window is covered.
struct PrefixTable {
  unsigned MaxLen = 0;
  std::vector<uint32_t> Entries; ///< Symbol << 8 | code length.
};

void buildPrefixTable(uint64_t Bound, PrefixTable &T) {
  unsigned K = floorLog2(Bound);
  uint64_t Short = (uint64_t(1) << (K + 1)) - Bound;
  // A power-of-two alphabet has only short (K-bit) codes.
  T.MaxLen = Short >= Bound ? K : K + 1;
  T.Entries.assign(uint64_t(1) << T.MaxLen, 0);
  for (uint64_t V = 0; V != Bound; ++V) {
    uint64_t Code = V < Short ? V : V + Short;
    unsigned Len = V < Short ? K : K + 1;
    // writeBounded emits code bits MSB-first into an LSB-first-packed
    // stream, so in the reader's peek window the code's MSB is bit 0.
    // Mirror the code into window order, then replicate the entry across
    // every completion of the unused high window bits.
    uint64_t Pattern = 0;
    for (unsigned J = 0; J != Len; ++J)
      Pattern |= ((Code >> (Len - 1 - J)) & 1) << J;
    uint32_t Entry = static_cast<uint32_t>(V) << 8 | Len;
    for (uint64_t Hi = 0; Hi != (uint64_t(1) << (T.MaxLen - Len)); ++Hi)
      T.Entries[Pattern | (Hi << Len)] = Entry;
  }
}

/// Tables depend only on the alphabet size and are immutable once built,
/// so they are shared by every reader on the thread (a batch consumer
/// decodes many modules over the same few dozen alphabet sizes).
std::vector<PrefixTable> &tableCache() {
  static thread_local std::vector<PrefixTable> Cache(BitReader::kMaxTableBound +
                                                     1);
  return Cache;
}

} // namespace

void BitReader::initTables() { Tables = &tableCache(); }

uint64_t BitReader::readFixed(unsigned NumBits) {
  assert(NumBits <= 64 && "too many bits");
  if (NumBits == 0)
    return 0;
  if (NumBits <= 32) {
    uint64_t Value = peek(NumBits);
    consume(NumBits);
    return Value;
  }
  uint64_t Lo = peek(32);
  consume(32);
  uint64_t Hi = peek(NumBits - 32);
  consume(NumBits - 32);
  return Lo | (Hi << 32);
}

uint64_t BitReader::readBounded(uint64_t Bound) {
  assert(Bound >= 1 && "empty alphabet");
  if (Bound == 1)
    return 0;
  if (UseTables && Bound <= kMaxTableBound) {
    PrefixTable &T = (*static_cast<std::vector<PrefixTable> *>(Tables))[Bound];
    if (T.Entries.empty())
      buildPrefixTable(Bound, T);
    uint32_t Entry = T.Entries[peek(T.MaxLen)];
    consume(Entry & 0xff);
    return Entry >> 8;
  }
  // Scalar path: rare large alphabets (deep dominator chains, huge
  // blocks) and readers constructed with UseTables off take the direct
  // MSB-first accumulation walk.
  unsigned K = floorLog2(Bound);
  uint64_t Short = (uint64_t(1) << (K + 1)) - Bound;
  uint64_t Value = 0;
  for (unsigned I = 0; I != K; ++I)
    Value = (Value << 1) | readBit();
  if (Value < Short)
    return Value;
  // One more bit disambiguates the long codes; see writeBounded.
  Value = (Value << 1) | readBit();
  return Value - Short;
}

uint64_t BitReader::readVarUint() {
  // Fast path: most wire varuints (operand counts, small lengths) fit one
  // 8-bit group — continuation bit clear, 7 value bits.
  uint64_t First = peek(8);
  if ((First & 1) == 0) {
    consume(8);
    return First >> 1;
  }
  uint64_t Value = 0;
  unsigned Shift = 0;
  bool More = true;
  while (More && Shift < 64) {
    More = readBit();
    Value |= readFixed(7) << Shift;
    Shift += 7;
  }
  return Value;
}

std::string BitReader::readString() {
  uint64_t Size = readVarUint();
  // Clamp against hostile length fields; the overrun flag will fire anyway
  // on truncated input, but avoid attempting a huge allocation first.
  if (Size > NumBits) {
    Overrun = true;
    return std::string();
  }
  std::string Str;
  Str.reserve(Size);
  for (uint64_t I = 0; I != Size; ++I)
    Str.push_back(static_cast<char>(readFixed(8)));
  return Str;
}
