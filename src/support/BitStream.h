//===- support/BitStream.h - Bit-granular IO ------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-level writer/reader used by the SafeTSA externalization.
///
/// The paper externalizes a program as "a sequence of symbols, where each
/// symbol is chosen from a finite set determined only by the preceding
/// context", packed with "a simple prefix encoding, which is similar to
/// what would result from using Huffman encoding with fixed equal
/// probabilities for all symbols". A Huffman code over N equiprobable
/// symbols is exactly the truncated-binary code, which writeBounded /
/// readBounded implement: floor(log2 N) bits for the first few symbols and
/// one more for the rest, zero bits when N == 1.
///
/// The reader is built for the consumer load path: it keeps up to 64 bits
/// buffered in a register and decodes bounded symbols through precomputed
/// per-alphabet-size tables (one lookup per symbol) instead of one shift
/// per bit.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SUPPORT_BITSTREAM_H
#define SAFETSA_SUPPORT_BITSTREAM_H

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace safetsa {

/// Accumulates bits LSB-first into a byte vector.
class BitWriter {
public:
  void writeBit(bool Bit) {
    BitBuf |= static_cast<uint64_t>(Bit) << BitCount;
    if (++BitCount == 8)
      flushByte();
  }

  /// Writes the low \p NumBits bits of \p Value, LSB first. NumBits <= 64.
  void writeFixed(uint64_t Value, unsigned NumBits);

  /// Writes \p Value from the alphabet {0, ..., Bound-1} with the
  /// truncated-binary (equal-probability Huffman) code. Bound >= 1; when
  /// Bound == 1 nothing is emitted because the symbol carries no
  /// information.
  void writeBounded(uint64_t Value, uint64_t Bound);

  /// Writes an arbitrary unsigned value as bit-granular LEB128 (7 value
  /// bits + 1 continuation bit per group).
  void writeVarUint(uint64_t Value);

  /// Writes a length-prefixed byte string (for symbolic linking info).
  void writeString(const std::string &Str);

  /// Pads to a byte boundary with zero bits and returns the buffer.
  std::vector<uint8_t> take();

  /// Pre-sizes the output buffer for an expected payload of \p NumBytes,
  /// avoiding reallocation churn on the hot encode path.
  void reserve(size_t NumBytes) { Bytes.reserve(NumBytes); }

  /// Number of bits written so far.
  size_t getBitCount() const { return Bytes.size() * 8 + BitCount; }

private:
  void flushByte() {
    Bytes.push_back(static_cast<uint8_t>(BitBuf & 0xff));
    BitBuf = 0;
    BitCount = 0;
  }

  std::vector<uint8_t> Bytes;
  uint64_t BitBuf = 0;
  unsigned BitCount = 0;
};

/// A non-owning view of wire bytes. Batch drivers hand the decoder a span
/// into a shared receive buffer; nothing is copied.
struct ByteSpan {
  const uint8_t *Data = nullptr;
  size_t Size = 0;

  ByteSpan() = default;
  ByteSpan(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  /*implicit*/ ByteSpan(const std::vector<uint8_t> &Bytes)
      : Data(Bytes.data()), Size(Bytes.size()) {}

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }
};

/// Decodes a bit stream produced by BitWriter.
///
/// Reads past the end of the buffer set a sticky overrun flag and yield
/// zeros; decoders check hasOverrun() instead of aborting, since truncated
/// input is an expected failure mode for mobile code.
///
/// Up to 64 bits of the stream are buffered in a register; refills load a
/// byte at a time, so the input needs no padding and truncation semantics
/// are exact. The reader does not own the bytes: the caller keeps the
/// buffer alive for the reader's lifetime.
class BitReader {
public:
  /// \p UseTables selects table-driven bounded-symbol decoding; pass
  /// false to force the scalar bit-at-a-time path (the pre-table decoder,
  /// kept as a benchmark baseline and as a differential oracle for the
  /// tables). Both paths consume identical bit counts and produce
  /// identical symbols on every stream, truncated ones included.
  explicit BitReader(ByteSpan Bytes, bool UseTables = true)
      : Data(Bytes.Data), NumBytes(Bytes.Size), NumBits(Bytes.Size * 8),
        UseTables(UseTables) {
    if (UseTables)
      initTables();
  }

  bool readBit() {
    bool Bit = peek(1) != 0;
    consume(1);
    return Bit;
  }

  uint64_t readFixed(unsigned NumBits);

  /// Reads a symbol from the alphabet {0, ..., Bound-1}; inverse of
  /// BitWriter::writeBounded. Returns 0 immediately when Bound == 1.
  /// Alphabets up to kMaxTableBound decode with one table lookup.
  uint64_t readBounded(uint64_t Bound);

  uint64_t readVarUint();
  std::string readString();

  bool hasOverrun() const { return Overrun; }

  /// Bits consumed so far (including zero bits synthesized past the end).
  size_t getBitPos() const { return Consumed; }

  /// Largest alphabet decoded through a table; larger bounds fall back to
  /// the bit loop. Bounds this size need 2*Bound table entries, so the
  /// cap keeps the per-alphabet tables in cache.
  static constexpr uint64_t kMaxTableBound = 1024;

private:
  /// Returns the next \p N stream bits (LSB = next bit) without consuming
  /// them; bits past the end of the buffer read as zero. N <= 57.
  uint64_t peek(unsigned N) {
    if (BufBits < N)
      refill();
    return Buf & ((uint64_t(1) << N) - 1);
  }

  /// Advances by \p N bits; sets the sticky overrun flag if this crosses
  /// the end of the buffer.
  void consume(unsigned N) {
    Consumed += N;
    if (Consumed > NumBits)
      Overrun = true;
    if (N >= BufBits) {
      // Only reachable when the stream is exhausted (refill tops the
      // buffer to >= 57 bits otherwise); the zero fill stands in for the
      // missing bits.
      Buf = 0;
      BufBits = 0;
    } else {
      Buf >>= N;
      BufBits -= N;
    }
  }

  void refill() {
    // Fast path: splat the next eight bytes over the buffer in one load.
    // Bits above BufBits that were already present are re-ORed with the
    // same stream bytes (BytePos only advances by whole bytes actually
    // accounted for), so the OR is idempotent and the buffer may hold a
    // few valid-but-uncounted bits — peek() masks them off.
    if constexpr (std::endian::native == std::endian::little) {
      if (BytePos + 8 <= NumBytes) {
        uint64_t Word;
        std::memcpy(&Word, Data + BytePos, 8);
        Buf |= Word << BufBits;
        BytePos += (63 - BufBits) >> 3;
        BufBits |= 56;
        return;
      }
    }
    while (BufBits <= 56 && BytePos != NumBytes) {
      Buf |= uint64_t(Data[BytePos++]) << BufBits;
      BufBits += 8;
    }
  }

  /// Binds this reader to the thread's shared prefix-table cache so the
  /// hot symbol loop avoids a thread-local lookup per symbol.
  void initTables();

  const uint8_t *Data = nullptr;
  size_t NumBytes = 0;
  size_t NumBits = 0;
  size_t BytePos = 0;   ///< Next byte to load into the buffer.
  uint64_t Buf = 0;     ///< Unconsumed stream bits, next bit in the LSB.
  unsigned BufBits = 0; ///< Valid bits in Buf.
  size_t Consumed = 0;
  bool Overrun = false;
  bool UseTables = true;
  /// Thread-local decode-table cache (opaque here; see BitStream.cpp),
  /// resolved once at construction instead of per readBounded call.
  void *Tables = nullptr;
};

/// Returns floor(log2(X)) for X >= 1.
unsigned floorLog2(uint64_t X);

} // namespace safetsa

#endif // SAFETSA_SUPPORT_BITSTREAM_H
