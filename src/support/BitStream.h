//===- support/BitStream.h - Bit-granular IO ------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-level writer/reader used by the SafeTSA externalization.
///
/// The paper externalizes a program as "a sequence of symbols, where each
/// symbol is chosen from a finite set determined only by the preceding
/// context", packed with "a simple prefix encoding, which is similar to
/// what would result from using Huffman encoding with fixed equal
/// probabilities for all symbols". A Huffman code over N equiprobable
/// symbols is exactly the truncated-binary code, which writeBounded /
/// readBounded implement: floor(log2 N) bits for the first few symbols and
/// one more for the rest, zero bits when N == 1.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SUPPORT_BITSTREAM_H
#define SAFETSA_SUPPORT_BITSTREAM_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace safetsa {

/// Accumulates bits LSB-first into a byte vector.
class BitWriter {
public:
  void writeBit(bool Bit) {
    BitBuf |= static_cast<uint64_t>(Bit) << BitCount;
    if (++BitCount == 8)
      flushByte();
  }

  /// Writes the low \p NumBits bits of \p Value, LSB first. NumBits <= 64.
  void writeFixed(uint64_t Value, unsigned NumBits);

  /// Writes \p Value from the alphabet {0, ..., Bound-1} with the
  /// truncated-binary (equal-probability Huffman) code. Bound >= 1; when
  /// Bound == 1 nothing is emitted because the symbol carries no
  /// information.
  void writeBounded(uint64_t Value, uint64_t Bound);

  /// Writes an arbitrary unsigned value as bit-granular LEB128 (7 value
  /// bits + 1 continuation bit per group).
  void writeVarUint(uint64_t Value);

  /// Writes a length-prefixed byte string (for symbolic linking info).
  void writeString(const std::string &Str);

  /// Pads to a byte boundary with zero bits and returns the buffer.
  std::vector<uint8_t> take();

  /// Pre-sizes the output buffer for an expected payload of \p NumBytes,
  /// avoiding reallocation churn on the hot encode path.
  void reserve(size_t NumBytes) { Bytes.reserve(NumBytes); }

  /// Number of bits written so far.
  size_t getBitCount() const { return Bytes.size() * 8 + BitCount; }

private:
  void flushByte() {
    Bytes.push_back(static_cast<uint8_t>(BitBuf & 0xff));
    BitBuf = 0;
    BitCount = 0;
  }

  std::vector<uint8_t> Bytes;
  uint64_t BitBuf = 0;
  unsigned BitCount = 0;
};

/// Decodes a bit stream produced by BitWriter.
///
/// Reads past the end of the buffer set a sticky overrun flag and yield
/// zeros; decoders check hasOverrun() instead of aborting, since truncated
/// input is an expected failure mode for mobile code.
class BitReader {
public:
  explicit BitReader(const std::vector<uint8_t> &Bytes) : Bytes(Bytes) {}

  bool readBit();
  uint64_t readFixed(unsigned NumBits);

  /// Reads a symbol from the alphabet {0, ..., Bound-1}; inverse of
  /// BitWriter::writeBounded. Returns 0 immediately when Bound == 1.
  uint64_t readBounded(uint64_t Bound);

  uint64_t readVarUint();
  std::string readString();

  bool hasOverrun() const { return Overrun; }

  /// Bits consumed so far.
  size_t getBitPos() const { return BitPos; }

private:
  const std::vector<uint8_t> &Bytes;
  size_t BitPos = 0;
  bool Overrun = false;
};

/// Returns floor(log2(X)) for X >= 1.
unsigned floorLog2(uint64_t X);

} // namespace safetsa

#endif // SAFETSA_SUPPORT_BITSTREAM_H
