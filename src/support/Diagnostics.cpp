//===- support/Diagnostics.cpp --------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace safetsa;

static const char *severityName(Severity S) {
  switch (S) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "unknown";
}

std::string DiagnosticEngine::render(const SourceManager *SM) const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    if (SM && D.Loc.isValid()) {
      unsigned Line = SM->getLine(D.Loc);
      unsigned Col = SM->getColumn(D.Loc);
      OS << SM->getBufferName() << ':' << Line << ':' << Col << ": "
         << severityName(D.Level) << ": " << D.Message << '\n';
      std::string Text = SM->getLineText(Line);
      OS << "  " << Text << "\n  ";
      for (unsigned I = 1; I < Col; ++I)
        OS << (I - 1 < Text.size() && Text[I - 1] == '\t' ? '\t' : ' ');
      OS << "^\n";
    } else {
      OS << severityName(D.Level) << ": " << D.Message << '\n';
    }
  }
  return OS.str();
}

bool DiagnosticEngine::containsMessage(const std::string &Needle) const {
  for (const Diagnostic &D : Diags)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}
