//===- support/ThreadPool.h - Fixed-size worker pool ----------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool with a FIFO work queue, used by the batch
/// compilation pipeline. Tasks are arbitrary callables; async() wraps a
/// callable in a std::future for result retrieval. The pool is inert
/// (runs everything inline in submit) when constructed with 0 workers,
/// so callers can express "sequential" without a second code path.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SUPPORT_THREADPOOL_H
#define SAFETSA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace safetsa {

class ThreadPool {
public:
  /// Spawns \p NumThreads workers. 0 => inline execution (no threads).
  explicit ThreadPool(unsigned NumThreads);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task; runs it inline when the pool has no workers.
  void submit(std::function<void()> Task);

  /// Enqueues a callable and returns a future for its result.
  template <typename Fn>
  auto async(Fn &&F) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto Task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(F));
    std::future<R> Fut = Task->get_future();
    submit([Task] { (*Task)(); });
    return Fut;
  }

  /// Blocks until every submitted task (queued or running) has finished.
  void wait();

  unsigned getNumThreads() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Reasonable worker count for this machine (>= 1).
  static unsigned defaultThreadCount();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable; ///< Signals workers.
  std::condition_variable AllDone;       ///< Signals wait().
  unsigned InFlight = 0;                 ///< Queued + currently running.
  bool Stopping = false;
};

} // namespace safetsa

#endif // SAFETSA_SUPPORT_THREADPOOL_H
