//===- serve/Transport.h - Byte-stream transports -------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-stream abstraction the PUBLISH/FETCH protocol runs over, and
/// its two implementations:
///
///  - an in-process pipe (two mutex+condvar byte queues), used by tests
///    and benches because it is deterministic and needs no OS resources;
///  - a POSIX stream socket wrapper, with factories for a socketpair and
///    for a genuine TCP loopback accept/connect pair, so the framing is
///    exercised against real kernel short reads/writes.
///
/// A Transport is one *end* of a full-duplex connection; makeXxxPair()
/// returns both ends. Each end may be used by one thread at a time (the
/// protocol is strictly request/response per connection; concurrency
/// comes from opening more connections).
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SERVE_TRANSPORT_H
#define SAFETSA_SERVE_TRANSPORT_H

#include <cstddef>
#include <cstdint>
#include <memory>

namespace safetsa {

class Transport {
public:
  virtual ~Transport() = default;

  /// Writes all \p Size bytes; false when the peer is gone.
  virtual bool writeAll(const uint8_t *Data, size_t Size) = 0;

  /// Reads exactly \p Size bytes unless the stream ends first; returns
  /// the number of bytes actually read (0 = clean EOF before any byte,
  /// short = truncated mid-object).
  virtual size_t readAll(uint8_t *Data, size_t Size) = 0;

  /// Half-close: the peer's next readAll() beyond buffered data sees
  /// EOF. Further writes on this end fail.
  virtual void closeSend() = 0;
};

/// Both ends of one connection. Naming is by role: Client is handed to a
/// CodeClient, Server to CodeServer::serveConnection / attach.
struct TransportPair {
  std::unique_ptr<Transport> Client;
  std::unique_ptr<Transport> Server;
};

/// Deterministic in-process pipe pair (no file descriptors).
TransportPair makePipePair();

/// AF_UNIX SOCK_STREAM socketpair. Returns empty pointers on failure
/// (resource-limited sandboxes).
TransportPair makeSocketPair();

/// Real loopback TCP: listen on 127.0.0.1:0, connect, accept. Returns
/// empty pointers when loopback networking is unavailable.
TransportPair makeLoopbackTcpPair();

} // namespace safetsa

#endif // SAFETSA_SERVE_TRANSPORT_H
