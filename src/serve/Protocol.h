//===- serve/Protocol.h - Framed PUBLISH/FETCH wire protocol --*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The distribution protocol's framing: every message is
///
///   [u32 payload length, little-endian] [u8 type] [payload bytes]
///
/// Request types (client -> server):
///   Publish : payload = encoded .stsa module bytes
///   Fetch   : payload = 16-byte digest (Hi then Lo, little-endian)
///   Stats   : empty payload
///
/// Response types (server -> client):
///   PublishOk : payload = 16-byte digest of the stored bytes
///   FetchOk   : payload = the exact bytes previously published
///   StatsOk   : payload = fixed array of little-endian u64 counters
///   NotFound  : empty (unknown digest)
///   Error     : payload = human-readable reason
///
/// Robustness contract (the attacker holds the channel): the length
/// prefix is bounds-checked against kMaxFramePayload BEFORE any
/// allocation sized by it, a truncated header/payload is a typed error
/// rather than a blocking read of garbage, and an unknown type byte is
/// rejected without consuming the payload into a structure. All failures
/// are values (FrameError), never exceptions or aborts.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SERVE_PROTOCOL_H
#define SAFETSA_SERVE_PROTOCOL_H

#include "serve/Transport.h"
#include "support/BitStream.h"
#include "support/Digest.h"

#include <cstdint>
#include <vector>

namespace safetsa {

enum class MsgType : uint8_t {
  // Requests.
  Publish = 0x01,
  Fetch = 0x02,
  Stats = 0x03,
  // Responses.
  PublishOk = 0x81,
  FetchOk = 0x82,
  StatsOk = 0x83,
  NotFound = 0x84,
  Error = 0x85,
};

/// True for any type byte the protocol defines (request or response).
bool isValidMsgType(uint8_t Byte);

/// Hard ceiling on one frame's payload. Nothing the system ships comes
/// near it; anything above is a corrupt or hostile length prefix and is
/// rejected before allocation.
constexpr size_t kMaxFramePayload = 64u << 20; // 64 MiB

enum class FrameError {
  None,      ///< Frame decoded.
  Closed,    ///< Clean EOF at a frame boundary (normal end of session).
  Truncated, ///< Stream ended inside a header or payload.
  Oversized, ///< Length prefix exceeds kMaxFramePayload.
  BadType,   ///< Type byte outside the protocol.
};

const char *frameErrorName(FrameError E);

struct Frame {
  MsgType Type = MsgType::Error;
  std::vector<uint8_t> Payload;
};

/// Appends one framed message to \p Out.
void appendFrame(std::vector<uint8_t> &Out, MsgType Type, ByteSpan Payload);

/// Frames and writes one message; false when the transport is gone.
bool writeFrame(Transport &T, MsgType Type, ByteSpan Payload);

/// Reads one frame, blocking. The length prefix is validated before the
/// payload buffer is sized, so a hostile 4 GiB prefix costs nothing.
FrameError readFrame(Transport &T, Frame &Out);

/// Non-blocking structural decode of one frame from an in-memory buffer
/// (the negative-path tests drive this directly). On success *Consumed is
/// the total frame size.
FrameError decodeFrame(ByteSpan Bytes, Frame &Out, size_t *Consumed);

/// 16-byte wire form of a digest (Hi then Lo, little-endian).
void appendDigest(std::vector<uint8_t> &Out, const Digest &D);

/// Parses the 16-byte wire form; false when \p Bytes is the wrong size.
bool readDigest(ByteSpan Bytes, Digest &Out);

} // namespace safetsa

#endif // SAFETSA_SERVE_PROTOCOL_H
