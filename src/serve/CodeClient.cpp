//===- serve/CodeClient.cpp -----------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/CodeClient.h"

using namespace safetsa;

static void setErr(std::string *Err, std::string Msg) {
  if (Err)
    *Err = std::move(Msg);
}

bool CodeClient::roundTrip(MsgType Request, ByteSpan Payload, Frame &Response,
                           std::string *Err) {
  if (!writeFrame(T, Request, Payload)) {
    setErr(Err, "transport write failed");
    return false;
  }
  FrameError E = readFrame(T, Response);
  if (E != FrameError::None) {
    setErr(Err, std::string("response framing: ") + frameErrorName(E));
    return false;
  }
  if (Response.Type == MsgType::Error) {
    setErr(Err, "server error: " + std::string(Response.Payload.begin(),
                                               Response.Payload.end()));
    return false;
  }
  return true;
}

bool CodeClient::publish(ByteSpan Module, Digest &Out, std::string *Err) {
  Frame R;
  if (!roundTrip(MsgType::Publish, Module, R, Err))
    return false;
  if (R.Type != MsgType::PublishOk || !readDigest(ByteSpan(R.Payload), Out)) {
    setErr(Err, "malformed PUBLISH response");
    return false;
  }
  // The server names content, it does not get to choose names: a digest
  // disagreeing with the local hash of the very bytes we sent is a
  // protocol violation, not a value to trust.
  if (Out != digestOf(Module)) {
    setErr(Err, "server returned a digest that does not match the "
                "published bytes");
    return false;
  }
  return true;
}

bool CodeClient::fetch(const Digest &D, std::vector<uint8_t> &Out,
                       std::string *Err) {
  std::vector<uint8_t> Payload;
  appendDigest(Payload, D);
  Frame R;
  if (!roundTrip(MsgType::Fetch, ByteSpan(Payload), R, Err))
    return false;
  if (R.Type == MsgType::NotFound) {
    setErr(Err, "not found: " + D.hex());
    return false;
  }
  if (R.Type != MsgType::FetchOk) {
    setErr(Err, "malformed FETCH response");
    return false;
  }
  Out = std::move(R.Payload);
  return true;
}

std::unique_ptr<DecodedUnit> CodeClient::fetchAndLoad(const Digest &D,
                                                      std::string *Err) {
  std::vector<uint8_t> Bytes;
  if (!fetch(D, Bytes, Err))
    return nullptr;
  // Content addressing end to end: bytes that do not hash to the digest
  // we asked for are a substitution, whatever they decode to.
  if (digestOf(ByteSpan(Bytes)) != D) {
    setErr(Err, "fetched bytes do not match requested digest");
    return nullptr;
  }
  std::string DecErr;
  auto Unit = decodeModule(ByteSpan(Bytes), &DecErr, DecodeOptions{});
  if (!Unit)
    setErr(Err, "fetched module failed fused decode+verify: " + DecErr);
  return Unit;
}

bool CodeClient::stats(ServeStats &Out, std::string *Err) {
  Frame R;
  if (!roundTrip(MsgType::Stats, ByteSpan(), R, Err))
    return false;
  if (R.Type != MsgType::StatsOk || !decodeStats(ByteSpan(R.Payload), Out)) {
    setErr(Err, "malformed STATS response");
    return false;
  }
  return true;
}
