//===- serve/CodeServer.cpp -----------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/CodeServer.h"

#include "exec/ExecUnit.h"

#include <algorithm>

using namespace safetsa;

std::vector<uint8_t> safetsa::encodeStats(const ServeStats &S) {
  const uint64_t Fields[kServeStatsFields] = {
      S.StoreModules,   S.StoreBytes,    S.DuplicatePublishes,
      S.Publishes,      S.Fetches,       S.FetchNotFound,
      S.VerifyFailures, S.CacheHits,     S.CacheMisses,
      S.CacheCoalesced, S.CacheEvictions, S.CacheDecodes,
      S.CacheDecodeFailures, S.CacheEntries, S.CacheBytes,
      S.CachePrepares, S.CacheReprepares, S.CacheICHits,
      S.CacheICMisses, S.GcCycles, S.GcCellsReclaimed,
      S.GcPauseNs, S.CacheInlinedSites, S.CacheInlineGuardMisses};
  std::vector<uint8_t> Out;
  Out.reserve(kServeStatsFields * 8);
  for (uint64_t F : Fields)
    for (unsigned I = 0; I != 8; ++I)
      Out.push_back(static_cast<uint8_t>(F >> (8 * I)));
  return Out;
}

bool safetsa::decodeStats(ByteSpan Bytes, ServeStats &Out) {
  if (Bytes.Size != kServeStatsFields * 8)
    return false;
  uint64_t Fields[kServeStatsFields];
  for (size_t F = 0; F != kServeStatsFields; ++F) {
    Fields[F] = 0;
    for (unsigned I = 0; I != 8; ++I)
      Fields[F] |= static_cast<uint64_t>(Bytes.Data[F * 8 + I]) << (8 * I);
  }
  Out.StoreModules = Fields[0];
  Out.StoreBytes = Fields[1];
  Out.DuplicatePublishes = Fields[2];
  Out.Publishes = Fields[3];
  Out.Fetches = Fields[4];
  Out.FetchNotFound = Fields[5];
  Out.VerifyFailures = Fields[6];
  Out.CacheHits = Fields[7];
  Out.CacheMisses = Fields[8];
  Out.CacheCoalesced = Fields[9];
  Out.CacheEvictions = Fields[10];
  Out.CacheDecodes = Fields[11];
  Out.CacheDecodeFailures = Fields[12];
  Out.CacheEntries = Fields[13];
  Out.CacheBytes = Fields[14];
  Out.CachePrepares = Fields[15];
  Out.CacheReprepares = Fields[16];
  Out.CacheICHits = Fields[17];
  Out.CacheICMisses = Fields[18];
  Out.GcCycles = Fields[19];
  Out.GcCellsReclaimed = Fields[20];
  Out.GcPauseNs = Fields[21];
  Out.CacheInlinedSites = Fields[22];
  Out.CacheInlineGuardMisses = Fields[23];
  return true;
}

CodeServer::CodeServer(CodeServerOptions Opts)
    : Opts(Opts), Store(Opts.StoreDir),
      Cache(Opts.CacheBytes, Opts.CacheShards),
      Pool(Opts.Threads == 0 ? ThreadPool::defaultThreadCount()
                             : Opts.Threads) {}

CodeServer::~CodeServer() { Pool.wait(); }

Digest CodeServer::publish(ByteSpan Bytes, std::string *Err) {
  Digest D = digestOf(Bytes);
  if (Opts.VerifyOnPublish) {
    // Verification = fused decode, paid once per digest: the verdict (and
    // the decoded module) lands in the cache, so the first consumer load
    // of a fresh publish is already warm.
    std::string DecErr;
    auto Unit = Cache.get(
        D, Bytes.Size,
        [&](std::string *E) { return decodeModule(Bytes, E, DecodeOptions{}); },
        &DecErr);
    if (!Unit) {
      ++VerifyFailures;
      if (Err)
        *Err = "module rejected: " + DecErr;
      return D;
    }
  }
  ++Publishes;
  Store.publish(Bytes);
  return D;
}

std::shared_ptr<const std::vector<uint8_t>>
CodeServer::fetchBytes(const Digest &D) {
  ++Fetches;
  auto Bytes = Store.fetch(D);
  if (!Bytes)
    ++FetchNotFound;
  return Bytes;
}

std::shared_ptr<const DecodedUnit> CodeServer::load(const Digest &D,
                                                    std::string *Err) {
  auto Bytes = Store.fetch(D);
  if (!Bytes) {
    if (Err)
      *Err = "unknown digest " + D.hex();
    return nullptr;
  }
  return Cache.get(
      D, Bytes->size(),
      [&](std::string *E) {
        return decodeModule(ByteSpan(*Bytes), E, DecodeOptions{});
      },
      Err);
}

std::shared_ptr<const PreparedModule>
CodeServer::loadPrepared(const Digest &D, std::string *Err) {
  return loadPrepared(D, Opts.MaxExecTier, Err);
}

std::shared_ptr<const PreparedModule>
CodeServer::loadPrepared(const Digest &D, uint32_t MaxTier, std::string *Err) {
  auto Bytes = Store.fetch(D);
  if (!Bytes) {
    if (Err)
      *Err = "unknown digest " + D.hex();
    return nullptr;
  }
  ModuleCache::TierPolicy Tier;
  Tier.MaxTier = std::min(MaxTier, Opts.MaxExecTier);
  Tier.HotThreshold = Opts.HotThreshold;
  Tier.Reprepare =
      [NoFusion = Opts.NoFusion, InlineBudget = Opts.InlineBudget,
       NoInlining = Opts.NoInlining](
          const std::shared_ptr<const PreparedModule> &T0,
          std::string *E) -> std::shared_ptr<const PreparedModule> {
    PrepareOptions PO;
    PO.NoFusion = NoFusion;
    PO.InlineBudget = InlineBudget;
    PO.NoInlining = NoInlining;
    auto T1 = reprepareModule(*T0, PO);
    if (!T1) {
      if (E)
        *E = "module exceeds prepared-form limits";
      return nullptr;
    }
    // Tier 1 points into the same decoded IR the tier-0 form does (and
    // its ICs point at tier-1 units only); keeping the tier-0 module —
    // whose own deleter keeps the decoded unit — pins everything.
    return std::shared_ptr<const PreparedModule>(
        T1.release(), [Keep = T0](const PreparedModule *P) { delete P; });
  };
  return Cache.getPrepared(
      D, Bytes->size(),
      [&](std::string *E) {
        return decodeModule(ByteSpan(*Bytes), E, DecodeOptions{});
      },
      [](const std::shared_ptr<const DecodedUnit> &Unit,
         std::string *E) -> std::shared_ptr<const PreparedModule> {
        auto PM = prepareModule(*Unit->Module);
        if (!PM) {
          if (E)
            *E = "module exceeds prepared-form limits";
          return nullptr;
        }
        // The prepared form points into the decoded unit's IR and type
        // tables; capturing the unit in the deleter keeps it alive for as
        // long as any caller holds the prepared module, independent of
        // cache eviction order.
        return std::shared_ptr<const PreparedModule>(
            PM.release(), [Keep = Unit](const PreparedModule *P) { delete P; });
      },
      Tier, Err);
}

ServeStats CodeServer::stats() const {
  ServeStats S;
  S.StoreModules = Store.size();
  S.StoreBytes = Store.totalBytes();
  S.DuplicatePublishes = Store.getDuplicatePublishes();
  S.Publishes = Publishes.load();
  S.Fetches = Fetches.load();
  S.FetchNotFound = FetchNotFound.load();
  S.VerifyFailures = VerifyFailures.load();
  CacheStats C = Cache.stats();
  S.CacheHits = C.Hits;
  S.CacheMisses = C.Misses;
  S.CacheCoalesced = C.Coalesced;
  S.CacheEvictions = C.Evictions;
  S.CacheDecodes = C.Decodes;
  S.CacheDecodeFailures = C.DecodeFailures;
  S.CacheEntries = C.Entries;
  S.CacheBytes = C.Bytes;
  S.CachePrepares = C.Prepares;
  S.CacheReprepares = C.Reprepares;
  S.CacheICHits = C.ICHits;
  S.CacheICMisses = C.ICMisses;
  S.CacheInlinedSites = C.InlinedSites;
  S.CacheInlineGuardMisses = C.InlineGuardMisses;
  // Process-wide striped aggregates; exact once collectors are quiescent
  // (same contract as the cache's counters).
  GcCounters &G = gcCounters();
  S.GcCycles = G.Cycles.sum();
  S.GcCellsReclaimed = G.CellsReclaimed.sum();
  S.GcPauseNs = G.PauseNs.sum();
  return S;
}

/// Handles one decoded request frame; false when the response could not
/// be written (connection gone).
bool CodeServer::handleFrame(Transport &T, const Frame &F) {
  switch (F.Type) {
  case MsgType::Publish: {
    std::string Err;
    Digest D = publish(ByteSpan(F.Payload), &Err);
    if (!Err.empty())
      return writeFrame(T, MsgType::Error, ByteSpan(
          reinterpret_cast<const uint8_t *>(Err.data()), Err.size()));
    std::vector<uint8_t> Payload;
    appendDigest(Payload, D);
    return writeFrame(T, MsgType::PublishOk, ByteSpan(Payload));
  }
  case MsgType::Fetch: {
    Digest D;
    if (!readDigest(ByteSpan(F.Payload), D)) {
      static const char Msg[] = "FETCH payload must be a 16-byte digest";
      return writeFrame(T, MsgType::Error,
                        ByteSpan(reinterpret_cast<const uint8_t *>(Msg),
                                 sizeof(Msg) - 1));
    }
    auto Bytes = fetchBytes(D);
    if (!Bytes)
      return writeFrame(T, MsgType::NotFound, ByteSpan());
    return writeFrame(T, MsgType::FetchOk, ByteSpan(*Bytes));
  }
  case MsgType::Stats: {
    std::vector<uint8_t> Payload = encodeStats(stats());
    return writeFrame(T, MsgType::StatsOk, ByteSpan(Payload));
  }
  default: {
    // A response type as a request: framing is still synced, so answer
    // with a typed error and keep the session.
    static const char Msg[] = "unexpected frame type";
    return writeFrame(T, MsgType::Error,
                      ByteSpan(reinterpret_cast<const uint8_t *>(Msg),
                               sizeof(Msg) - 1));
  }
  }
}

void CodeServer::serveConnection(Transport &T) {
  for (;;) {
    Frame F;
    FrameError E = readFrame(T, F);
    if (E == FrameError::Closed)
      return; // Normal end of session.
    if (E != FrameError::None) {
      // Corrupt framing desyncs the stream: report (best effort) and
      // drop the connection rather than guess at a resync point.
      const char *Msg = frameErrorName(E);
      writeFrame(T, MsgType::Error,
                 ByteSpan(reinterpret_cast<const uint8_t *>(Msg),
                          std::char_traits<char>::length(Msg)));
      T.closeSend();
      return;
    }
    if (!handleFrame(T, F))
      return;
  }
}

void CodeServer::attach(std::unique_ptr<Transport> T) {
  std::shared_ptr<Transport> Shared(std::move(T));
  Pool.submit([this, Shared] { serveConnection(*Shared); });
}

void CodeServer::wait() { Pool.wait(); }
