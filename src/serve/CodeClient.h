//===- serve/CodeClient.h - Client side of PUBLISH/FETCH ------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A consumer/producer endpoint speaking the framed protocol over one
/// Transport connection. Strictly request/response — one client per
/// connection, one thread per client; parallel traffic uses parallel
/// connections (see bench/bench_serve.cpp).
///
/// The client embodies the consumer's trust stance: publish() checks the
/// returned digest against a locally computed one (the server cannot
/// mislabel stored bytes), and fetchAndLoad() fused-decodes the fetched
/// bytes locally, so a tampering server yields a typed error, never an
/// unverified module.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SERVE_CODECLIENT_H
#define SAFETSA_SERVE_CODECLIENT_H

#include "serve/CodeServer.h"
#include "serve/Protocol.h"
#include "serve/Transport.h"

namespace safetsa {

class CodeClient {
public:
  /// The transport must outlive the client.
  explicit CodeClient(Transport &T) : T(T) {}

  /// Publishes encoded module bytes; fills \p Out with the server-issued
  /// digest (verified to equal the local digest of \p Module).
  bool publish(ByteSpan Module, Digest &Out, std::string *Err = nullptr);

  /// Fetches the exact bytes stored under \p D. False with "not found"
  /// in \p Err when the server has no such module.
  bool fetch(const Digest &D, std::vector<uint8_t> &Out,
             std::string *Err = nullptr);

  /// fetch() + local fused decode+verify: null on unknown digest, on a
  /// server returning bytes whose digest does not match \p D, or on
  /// bytes that fail to decode.
  std::unique_ptr<DecodedUnit> fetchAndLoad(const Digest &D,
                                            std::string *Err = nullptr);

  /// Server-side counters.
  bool stats(ServeStats &Out, std::string *Err = nullptr);

  /// Ends the session (the server's read sees EOF).
  void close() { T.closeSend(); }

private:
  /// One request/response exchange; false on transport or framing
  /// failure, or when the server answered Error.
  bool roundTrip(MsgType Request, ByteSpan Payload, Frame &Response,
                 std::string *Err);

  Transport &T;
};

} // namespace safetsa

#endif // SAFETSA_SERVE_CODECLIENT_H
