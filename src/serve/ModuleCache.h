//===- serve/ModuleCache.h - Sharded verified-module cache ----*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An N-way sharded cache of *decoded+verified* modules, keyed by
/// content digest. Because the fused codec makes decode success mean
/// verified (DESIGN.md §8), and because the key is the digest of the
/// exact encoded bytes, a cache hit soundly skips both decoding and
/// verification: same digest, same bytes, same verdict. Verification is
/// paid once per distinct module, not once per fetch — the economics the
/// distribution layer is built on.
///
/// Concurrency (full memory-ordering argument in DESIGN.md §12):
///  - Lock-free hit path: each shard publishes an immutable
///    open-addressed index of its ready entries under a globally-unique
///    snapshot id; readers keep a per-thread (shard, id) -> snapshot
///    cache validated by one acquire load of the id. A warm
///    get()/getPrepared() whose cached id still matches is an id load,
///    a probe, a relaxed Touched store, and a striped counter bump — no
///    lock and no shared atomic RMW at all, so warm throughput scales
///    with cores instead of serializing on the shard mutex (a stale
///    thread-local copy refreshes under a tiny publication mutex that
///    hits otherwise never touch).
///  - Shards: the digest picks a shard; each shard has its own mutex
///    (misses only), index, and byte budget (Capacity / NumShards).
///  - Single-flight admission: unchanged lock+condvar protocol. The
///    first fetcher of a digest inserts an in-flight entry and decodes
///    OUTSIDE the shard lock; concurrent fetchers of the same digest
///    block on the shard's condvar until the entry is ready instead of
///    redundantly decoding (stats().Decodes counts exactly one decode
///    per storm; tests assert it under TSan).
///  - Failed decodes are not cached: the entry is removed after waiters
///    are released, so a transiently missing/corrupt byte provider does
///    not poison the digest forever.
///  - Counters are support/ShardedCounter (cache-line-padded per-thread
///    stripes): hits never contend on a stats word either, and stats()
///    still sums to exact totals for the STATS wire.
///
/// Eviction is CLOCK (second chance) by charged bytes — callers charge
/// the wire size, a stable, cheap proxy for decoded footprint. A hit
/// sets the entry's Touched bit (relaxed; no lock); the evicting thread
/// sweeps the shard's ring under the lock, clearing Touched bits and
/// evicting the first untouched entry. Recency is thus approximate — a
/// concurrent hit may land just after the sweep passed — but that only
/// staleness-ranks *eviction*, never contents: whatever snapshot a
/// reader holds keeps its entries alive through shared_ptr, and a hit
/// served from a just-evicted snapshot still returns the correct,
/// immutable module for that digest. In-flight entries are not
/// evictable; the entry just admitted survives even when it alone
/// exceeds the shard budget (an oversized module still serves, it just
/// evicts everything else in its shard).
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SERVE_MODULECACHE_H
#define SAFETSA_SERVE_MODULECACHE_H

#include "codec/Codec.h"
#include "support/Digest.h"
#include "support/ShardedCounter.h"

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace safetsa {

struct CacheStats {
  uint64_t Hits = 0;      ///< Ready entry found.
  uint64_t Misses = 0;    ///< Absent; the caller's thread decoded.
  uint64_t Coalesced = 0; ///< Waited on another thread's in-flight decode.
  uint64_t Evictions = 0;
  uint64_t Decodes = 0;        ///< Decode attempts actually run.
  uint64_t DecodeFailures = 0; ///< Attempts that returned null.
  uint64_t Prepares = 0;       ///< Execution-prep lowerings actually run.
  uint64_t Reprepares = 0;     ///< Tier-1 re-quickenings actually run.
  /// Inline-cache guard hits/misses summed over *resident* tier-1
  /// modules at read time (an evicted module takes its tallies with it).
  uint64_t ICHits = 0;
  uint64_t ICMisses = 0;
  /// Speculative-inlining telemetry over resident tier-1 modules:
  /// prepare-time spliced sites, and runtime GuardInline receiver
  /// misses that fell back to the out-of-line dispatch (DESIGN.md §14).
  uint64_t InlinedSites = 0;
  uint64_t InlineGuardMisses = 0;
  size_t Entries = 0;          ///< Resident modules right now.
  size_t Bytes = 0;            ///< Charged bytes right now.
};

class PreparedModule;

class ModuleCache {
public:
  /// Produces the decoded unit for the digest being admitted; called at
  /// most once per digest per flight, outside all cache locks. Returns
  /// null and sets the error string on failure.
  using DecodeFn =
      std::function<std::unique_ptr<DecodedUnit>(std::string *Err)>;

  /// Lowers a decoded unit to executable form; called at most once per
  /// resident entry per flight, outside all cache locks. The returned
  /// shared_ptr must keep whatever it references alive (CodeServer passes
  /// a deleter capturing the decoded unit). Returns null and sets the
  /// error string on failure.
  using PrepareFn = std::function<std::shared_ptr<const PreparedModule>(
      const std::shared_ptr<const DecodedUnit> &Unit, std::string *Err)>;

  /// Re-quickens a hot tier-0 prepared module into tier 1 using its own
  /// gathered profile; called at most once per resident entry per flight,
  /// outside all cache locks (same lifetime contract as PrepareFn).
  /// Returns null and sets the error string on failure — the tier-0 form
  /// then keeps serving.
  using ReprepareFn = std::function<std::shared_ptr<const PreparedModule>(
      const std::shared_ptr<const PreparedModule> &T0, std::string *Err)>;

  /// Tier-escalation policy for the tiered getPrepared overload.
  struct TierPolicy {
    /// Highest tier to serve: 0 never re-prepares (pure profiling tier),
    /// 1 re-quickens once a method crosses HotThreshold.
    uint32_t MaxTier = 1;
    /// Per-method invocation count that makes the module hot.
    uint64_t HotThreshold = 32;
    ReprepareFn Reprepare;
  };

  /// \p CapacityBytes is split evenly across \p NumShards (each shard at
  /// least 1 byte so a zero/low capacity still admits-and-evicts sanely).
  explicit ModuleCache(size_t CapacityBytes, unsigned NumShards = 8);
  ~ModuleCache();

  ModuleCache(const ModuleCache &) = delete;
  ModuleCache &operator=(const ModuleCache &) = delete;

  /// The cache's only read path: returns the decoded+verified module for
  /// \p D, decoding via \p Decode on a miss (charging \p Charge bytes).
  /// Null only when the decode failed, with *Err set. Safe from any
  /// number of threads; concurrent calls for one digest decode once.
  /// Warm calls are lock-free (snapshot probe; see file header).
  std::shared_ptr<const DecodedUnit> get(const Digest &D, size_t Charge,
                                         const DecodeFn &Decode,
                                         std::string *Err);

  /// Like get(), but returns the *prepared* (directly executable) form,
  /// lowering it on first request and caching it on the same entry as the
  /// decoded module — so a warm hit returns executable code with zero
  /// re-decoding AND zero re-lowering (stats().Prepares counts lowerings
  /// actually run), lock-free. Single-flight per digest, like decoding.
  /// Null only on decode or prepare failure, with *Err set.
  std::shared_ptr<const PreparedModule> getPrepared(const Digest &D,
                                                    size_t Charge,
                                                    const DecodeFn &Decode,
                                                    const PrepareFn &Prepare,
                                                    std::string *Err);

  /// Tiered read path: serves the cached tier-1 form when one exists;
  /// otherwise serves tier 0 and, when the module's profile has crossed
  /// \p Tier.HotThreshold, re-quickens it to tier 1 first. Re-preparation
  /// is single-flight per entry and NON-blocking for rivals: while one
  /// thread re-quickens, every other request keeps executing tier 0, so a
  /// storm of N threads on one hot module runs exactly one reprepare
  /// (stats().Reprepares; asserted under TSan) and nobody stalls on the
  /// optimizer. Warm tier-1 (and cold-profile tier-0) hits are lock-free.
  std::shared_ptr<const PreparedModule>
  getPrepared(const Digest &D, size_t Charge, const DecodeFn &Decode,
              const PrepareFn &Prepare, const TierPolicy &Tier,
              std::string *Err);

  /// Aggregated over all shards. Exact: every get() lands in exactly one
  /// of Hits/Misses/Coalesced, and each counter is a ShardedCounter whose
  /// sum never loses or double-counts an increment.
  CacheStats stats() const;

  /// Drops every resident entry (in-flight decodes complete and are then
  /// dropped by their own admission path finding themselves unmapped).
  void clear();

  unsigned getNumShards() const { return NumShards; }

private:
  struct Entry;
  struct View;
  struct Snapshot;
  struct Shard;

  Shard &shardFor(const Digest &D);
  /// Rebuilds and publishes \p S's snapshot index from its authoritative
  /// map under a fresh globally-unique id. Caller holds S.M.
  static void publishIndex(Shard &S);
  /// The calling thread's view of \p S's index (may be null for an empty
  /// shard): lock-free when the thread-local cached id is current,
  /// refreshed under S.PubM otherwise. The pointer stays valid until
  /// this thread next refreshes the same cache slot — finish probing
  /// before any nested call that may load a snapshot again.
  static const Snapshot *currentSnapshot(Shard &S);
  /// CLOCK sweep until the shard is back under \p Capacity (or only the
  /// just-admitted entry remains). Caller holds S.M; caller publishes.
  void evictUnderLock(Shard &S, const Entry *JustAdmitted);

  const unsigned NumShards;
  const size_t ShardCapacity;
  std::vector<std::unique_ptr<Shard>> Shards;

  /// Striped event counters (lock-free add on hits; exact sums).
  ShardedCounter Hits, Misses, Coalesced, Evictions, Decodes,
      DecodeFailures, Prepares, Reprepares;
};

} // namespace safetsa

#endif // SAFETSA_SERVE_MODULECACHE_H
