//===- serve/Frame.cpp - Frame encode/decode ------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <cstring>

using namespace safetsa;

bool safetsa::isValidMsgType(uint8_t Byte) {
  switch (static_cast<MsgType>(Byte)) {
  case MsgType::Publish:
  case MsgType::Fetch:
  case MsgType::Stats:
  case MsgType::PublishOk:
  case MsgType::FetchOk:
  case MsgType::StatsOk:
  case MsgType::NotFound:
  case MsgType::Error:
    return true;
  }
  return false;
}

const char *safetsa::frameErrorName(FrameError E) {
  switch (E) {
  case FrameError::None:
    return "none";
  case FrameError::Closed:
    return "closed";
  case FrameError::Truncated:
    return "truncated frame";
  case FrameError::Oversized:
    return "oversized frame";
  case FrameError::BadType:
    return "bad frame type";
  }
  return "unknown";
}

static void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
  Out.push_back(static_cast<uint8_t>(V >> 16));
  Out.push_back(static_cast<uint8_t>(V >> 24));
}

static uint32_t getU32(const uint8_t *P) {
  return static_cast<uint32_t>(P[0]) | (static_cast<uint32_t>(P[1]) << 8) |
         (static_cast<uint32_t>(P[2]) << 16) |
         (static_cast<uint32_t>(P[3]) << 24);
}

void safetsa::appendFrame(std::vector<uint8_t> &Out, MsgType Type,
                          ByteSpan Payload) {
  putU32(Out, static_cast<uint32_t>(Payload.Size));
  Out.push_back(static_cast<uint8_t>(Type));
  Out.insert(Out.end(), Payload.Data, Payload.Data + Payload.Size);
}

bool safetsa::writeFrame(Transport &T, MsgType Type, ByteSpan Payload) {
  // One buffered write per frame so a frame is never interleaved with
  // another thread's on a shared transport by accident.
  std::vector<uint8_t> Buf;
  Buf.reserve(5 + Payload.Size);
  appendFrame(Buf, Type, Payload);
  return T.writeAll(Buf.data(), Buf.size());
}

FrameError safetsa::readFrame(Transport &T, Frame &Out) {
  uint8_t Header[5];
  size_t Got = T.readAll(Header, sizeof(Header));
  if (Got == 0)
    return FrameError::Closed;
  if (Got != sizeof(Header))
    return FrameError::Truncated;
  uint32_t Len = getU32(Header);
  // Bounds-check the attacker-controlled length BEFORE allocating.
  if (Len > kMaxFramePayload)
    return FrameError::Oversized;
  if (!isValidMsgType(Header[4]))
    return FrameError::BadType;
  Out.Type = static_cast<MsgType>(Header[4]);
  Out.Payload.resize(Len);
  if (Len != 0 && T.readAll(Out.Payload.data(), Len) != Len)
    return FrameError::Truncated;
  return FrameError::None;
}

FrameError safetsa::decodeFrame(ByteSpan Bytes, Frame &Out,
                                size_t *Consumed) {
  if (Bytes.Size == 0)
    return FrameError::Closed;
  if (Bytes.Size < 5)
    return FrameError::Truncated;
  uint32_t Len = getU32(Bytes.Data);
  if (Len > kMaxFramePayload)
    return FrameError::Oversized;
  if (!isValidMsgType(Bytes.Data[4]))
    return FrameError::BadType;
  if (Bytes.Size - 5 < Len)
    return FrameError::Truncated;
  Out.Type = static_cast<MsgType>(Bytes.Data[4]);
  Out.Payload.assign(Bytes.Data + 5, Bytes.Data + 5 + Len);
  if (Consumed)
    *Consumed = 5 + static_cast<size_t>(Len);
  return FrameError::None;
}

void safetsa::appendDigest(std::vector<uint8_t> &Out, const Digest &D) {
  for (unsigned I = 0; I != 8; ++I)
    Out.push_back(static_cast<uint8_t>(D.Hi >> (8 * I)));
  for (unsigned I = 0; I != 8; ++I)
    Out.push_back(static_cast<uint8_t>(D.Lo >> (8 * I)));
}

bool safetsa::readDigest(ByteSpan Bytes, Digest &Out) {
  if (Bytes.Size != 16)
    return false;
  Out.Hi = Out.Lo = 0;
  for (unsigned I = 0; I != 8; ++I)
    Out.Hi |= static_cast<uint64_t>(Bytes.Data[I]) << (8 * I);
  for (unsigned I = 0; I != 8; ++I)
    Out.Lo |= static_cast<uint64_t>(Bytes.Data[8 + I]) << (8 * I);
  return true;
}
