//===- serve/ModuleStore.h - Content-addressed module bytes ---*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressed storage of encoded `.stsa` byte vectors. A module's
/// name IS the digest of its exact bytes — publishing is therefore
/// idempotent (re-publishing identical bytes is a no-op yielding the same
/// digest) and a fetched buffer is bit-for-bit what some producer
/// published; there is no claimed-identity path by which a stream could
/// be substituted.
///
/// Optional directory persistence lays modules out as
/// `<dir>/<hh>/<rest-of-digest>.stsa` (first digest byte as a fan-out
/// subdirectory). On open, existing files are re-read and re-digested:
/// the index key is always the digest of the bytes actually on disk, so a
/// renamed or bit-rotted file can never impersonate another module — at
/// worst it appears under its own (new) digest and is never requested.
///
/// Thread-safe; fetched buffers are shared_ptr snapshots so readers are
/// immune to concurrent publishes.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SERVE_MODULESTORE_H
#define SAFETSA_SERVE_MODULESTORE_H

#include "support/BitStream.h"
#include "support/Digest.h"

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace safetsa {

class ModuleStore {
public:
  /// In-memory store; pass \p Dir to persist (created if absent, existing
  /// `.stsa` files loaded and re-keyed by their actual content digest).
  explicit ModuleStore(std::string Dir = "");

  /// Stores \p Bytes under their digest and returns it. Idempotent:
  /// publishing bytes already present touches nothing and bumps the
  /// duplicate counter.
  Digest publish(ByteSpan Bytes);

  /// The exact published bytes, or null for an unknown digest.
  std::shared_ptr<const std::vector<uint8_t>> fetch(const Digest &D) const;

  bool contains(const Digest &D) const;

  /// Number of distinct modules.
  size_t size() const;

  /// Sum of stored byte lengths.
  size_t totalBytes() const;

  /// Publishes that found their digest already present.
  uint64_t getDuplicatePublishes() const;

  /// Relative file path (subdir + name) a digest persists under.
  static std::string relativePath(const Digest &D);

private:
  void persist(const Digest &D,
               const std::shared_ptr<const std::vector<uint8_t>> &Bytes);
  void loadDir();

  mutable std::mutex M;
  std::unordered_map<Digest, std::shared_ptr<const std::vector<uint8_t>>,
                     DigestHash>
      Map;
  size_t Bytes = 0;
  uint64_t DuplicatePublishes = 0;
  std::string Dir; ///< Empty = no persistence.
};

} // namespace safetsa

#endif // SAFETSA_SERVE_MODULESTORE_H
