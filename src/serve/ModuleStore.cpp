//===- serve/ModuleStore.cpp ----------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/ModuleStore.h"

#include <filesystem>
#include <fstream>

using namespace safetsa;
namespace fs = std::filesystem;

ModuleStore::ModuleStore(std::string Dir) : Dir(std::move(Dir)) {
  if (!this->Dir.empty())
    loadDir();
}

std::string ModuleStore::relativePath(const Digest &D) {
  std::string Hex = D.hex();
  return Hex.substr(0, 2) + "/" + Hex.substr(2) + ".stsa";
}

Digest ModuleStore::publish(ByteSpan Bytes) {
  Digest D = digestOf(Bytes);
  auto Copy = std::make_shared<const std::vector<uint8_t>>(
      Bytes.Data, Bytes.Data + Bytes.Size);
  bool Fresh;
  {
    std::lock_guard<std::mutex> Lock(M);
    auto [It, Inserted] = Map.try_emplace(D);
    Fresh = Inserted;
    if (Inserted) {
      It->second = Copy;
      this->Bytes += Copy->size();
    } else {
      ++DuplicatePublishes;
    }
  }
  if (Fresh && !Dir.empty())
    persist(D, Copy);
  return D;
}

std::shared_ptr<const std::vector<uint8_t>>
ModuleStore::fetch(const Digest &D) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Map.find(D);
  return It == Map.end() ? nullptr : It->second;
}

bool ModuleStore::contains(const Digest &D) const {
  std::lock_guard<std::mutex> Lock(M);
  return Map.count(D) != 0;
}

size_t ModuleStore::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Map.size();
}

size_t ModuleStore::totalBytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return Bytes;
}

uint64_t ModuleStore::getDuplicatePublishes() const {
  std::lock_guard<std::mutex> Lock(M);
  return DuplicatePublishes;
}

void ModuleStore::persist(
    const Digest &D,
    const std::shared_ptr<const std::vector<uint8_t>> &Bytes) {
  std::error_code EC; // Persistence is best-effort: failures degrade to
                      // an in-memory store, they never fail a publish.
  fs::path Path = fs::path(Dir) / relativePath(D);
  fs::create_directories(Path.parent_path(), EC);
  if (EC)
    return;
  // Write to a temp name then rename, so a torn write can never leave a
  // file whose name claims a digest its bytes don't have.
  fs::path Tmp = Path;
  Tmp += ".tmp";
  {
    std::ofstream OS(Tmp, std::ios::binary | std::ios::trunc);
    if (!OS)
      return;
    OS.write(reinterpret_cast<const char *>(Bytes->data()),
             static_cast<std::streamsize>(Bytes->size()));
    if (!OS) {
      OS.close();
      fs::remove(Tmp, EC);
      return;
    }
  }
  fs::rename(Tmp, Path, EC);
  if (EC)
    fs::remove(Tmp, EC);
}

void ModuleStore::loadDir() {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC)
    return;
  for (const auto &Entry : fs::recursive_directory_iterator(Dir, EC)) {
    if (EC)
      break;
    if (!Entry.is_regular_file() || Entry.path().extension() != ".stsa")
      continue;
    std::ifstream IS(Entry.path(), std::ios::binary);
    if (!IS)
      continue;
    std::vector<uint8_t> Data((std::istreambuf_iterator<char>(IS)),
                              std::istreambuf_iterator<char>());
    // Re-key by actual content: the file name is a hint, never trusted.
    Digest D = digestOf(ByteSpan(Data));
    std::lock_guard<std::mutex> Lock(M);
    auto [It, Inserted] = Map.try_emplace(D);
    if (Inserted) {
      It->second =
          std::make_shared<const std::vector<uint8_t>>(std::move(Data));
      Bytes += It->second->size();
    }
  }
}
