//===- serve/Transport.cpp ------------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Transport.h"

#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

#include <arpa/inet.h>
#include <cerrno>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace safetsa;

//===----------------------------------------------------------------------===//
// In-process pipe
//===----------------------------------------------------------------------===//

namespace {

/// One direction of the pipe: a byte queue with blocking reads. Writers
/// never block (the queue is unbounded; protocol messages are bounded by
/// the frame size limit, enforced above this layer).
struct PipeQueue {
  std::mutex M;
  std::condition_variable DataAvailable;
  std::deque<uint8_t> Bytes;
  bool Closed = false;

  bool write(const uint8_t *Data, size_t Size) {
    std::lock_guard<std::mutex> Lock(M);
    if (Closed)
      return false;
    Bytes.insert(Bytes.end(), Data, Data + Size);
    DataAvailable.notify_all();
    return true;
  }

  size_t read(uint8_t *Data, size_t Size) {
    std::unique_lock<std::mutex> Lock(M);
    size_t Got = 0;
    while (Got != Size) {
      DataAvailable.wait(Lock, [&] { return !Bytes.empty() || Closed; });
      if (Bytes.empty())
        break; // Closed and drained.
      while (Got != Size && !Bytes.empty()) {
        Data[Got++] = Bytes.front();
        Bytes.pop_front();
      }
    }
    return Got;
  }

  void close() {
    std::lock_guard<std::mutex> Lock(M);
    Closed = true;
    DataAvailable.notify_all();
  }
};

/// One end of the pipe: reads from one queue, writes the other.
class PipeTransport : public Transport {
public:
  PipeTransport(std::shared_ptr<PipeQueue> In, std::shared_ptr<PipeQueue> Out)
      : In(std::move(In)), Out(std::move(Out)) {}
  ~PipeTransport() override { Out->close(); }

  bool writeAll(const uint8_t *Data, size_t Size) override {
    return Out->write(Data, Size);
  }
  size_t readAll(uint8_t *Data, size_t Size) override {
    return In->read(Data, Size);
  }
  void closeSend() override { Out->close(); }

private:
  std::shared_ptr<PipeQueue> In;
  std::shared_ptr<PipeQueue> Out;
};

} // namespace

TransportPair safetsa::makePipePair() {
  auto AtoB = std::make_shared<PipeQueue>();
  auto BtoA = std::make_shared<PipeQueue>();
  TransportPair P;
  P.Client = std::make_unique<PipeTransport>(BtoA, AtoB);
  P.Server = std::make_unique<PipeTransport>(AtoB, BtoA);
  return P;
}

//===----------------------------------------------------------------------===//
// POSIX sockets
//===----------------------------------------------------------------------===//

namespace {

class SocketTransport : public Transport {
public:
  explicit SocketTransport(int Fd) : Fd(Fd) {}
  ~SocketTransport() override {
    if (Fd >= 0)
      ::close(Fd);
  }

  bool writeAll(const uint8_t *Data, size_t Size) override {
    while (Size != 0) {
      // MSG_NOSIGNAL: a vanished peer must surface as a failed write,
      // not a process-killing SIGPIPE.
      ssize_t N = ::send(Fd, Data, Size, MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Data += N;
      Size -= static_cast<size_t>(N);
    }
    return true;
  }

  size_t readAll(uint8_t *Data, size_t Size) override {
    size_t Got = 0;
    while (Got != Size) {
      ssize_t N = ::recv(Fd, Data + Got, Size - Got, 0);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        break;
      }
      if (N == 0)
        break; // EOF.
      Got += static_cast<size_t>(N);
    }
    return Got;
  }

  void closeSend() override { ::shutdown(Fd, SHUT_WR); }

private:
  int Fd;
};

} // namespace

TransportPair safetsa::makeSocketPair() {
  int Fds[2];
  TransportPair P;
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) != 0)
    return P;
  P.Client = std::make_unique<SocketTransport>(Fds[0]);
  P.Server = std::make_unique<SocketTransport>(Fds[1]);
  return P;
}

TransportPair safetsa::makeLoopbackTcpPair() {
  TransportPair P;
  int Listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Listener < 0)
    return P;

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = 0; // Ephemeral port; read it back for connect.
  socklen_t Len = sizeof(Addr);
  if (::bind(Listener, reinterpret_cast<sockaddr *>(&Addr), Len) != 0 ||
      ::listen(Listener, 1) != 0 ||
      ::getsockname(Listener, reinterpret_cast<sockaddr *>(&Addr), &Len) !=
          0) {
    ::close(Listener);
    return P;
  }

  int ClientFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ClientFd < 0) {
    ::close(Listener);
    return P;
  }
  if (::connect(ClientFd, reinterpret_cast<sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    ::close(ClientFd);
    ::close(Listener);
    return P;
  }
  int ServerFd = ::accept(Listener, nullptr, nullptr);
  ::close(Listener);
  if (ServerFd < 0) {
    ::close(ClientFd);
    return P;
  }
  P.Client = std::make_unique<SocketTransport>(ClientFd);
  P.Server = std::make_unique<SocketTransport>(ServerFd);
  return P;
}
