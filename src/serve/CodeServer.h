//===- serve/CodeServer.h - PUBLISH/FETCH code distribution ---*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The distribution service tying the three layers together: a
/// content-addressed ModuleStore for encoded bytes, a sharded ModuleCache
/// of decoded+verified modules, and the framed protocol served over any
/// Transport, with connections dispatched onto a support/ThreadPool.
///
/// Trust model (paper + "The Meaning of Memory Safety"): the channel is
/// untrusted, the bytes are the unit of identity. PUBLISH verifies the
/// module by fused-decoding it once (through the cache, so the verdict is
/// remembered per digest) and refuses storage on failure — the store
/// never serves bytes that do not decode to a verified module. FETCH
/// returns the exact stored bytes; a consumer re-verifies for free by
/// fused-decoding them, or calls load() in-process to share the server's
/// cached decoded module without paying any decode at all on a warm hit.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SERVE_CODESERVER_H
#define SAFETSA_SERVE_CODESERVER_H

#include "gc/GC.h"
#include "serve/ModuleCache.h"
#include "serve/ModuleStore.h"
#include "serve/Protocol.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <memory>
#include <vector>

namespace safetsa {

/// Server-wide counters, also the STATS response payload (fixed array of
/// little-endian u64 in field order).
struct ServeStats {
  uint64_t StoreModules = 0;
  uint64_t StoreBytes = 0;
  uint64_t DuplicatePublishes = 0;
  uint64_t Publishes = 0;
  uint64_t Fetches = 0;
  uint64_t FetchNotFound = 0;
  uint64_t VerifyFailures = 0; ///< PUBLISH payloads that failed decode.
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheCoalesced = 0;
  uint64_t CacheEvictions = 0;
  uint64_t CacheDecodes = 0;
  uint64_t CacheDecodeFailures = 0;
  uint64_t CacheEntries = 0;
  uint64_t CacheBytes = 0;
  uint64_t CachePrepares = 0; ///< Execution-prep lowerings actually run.
  uint64_t CacheReprepares = 0; ///< Tier-1 re-quickenings actually run.
  uint64_t CacheICHits = 0;     ///< IC guard hits, resident tier-1 modules.
  uint64_t CacheICMisses = 0;   ///< IC guard misses (vtable fallbacks).
  /// Process-wide GC telemetry (gc/GC.h gcCounters(), striped like the
  /// profile counters): collections, cells reclaimed, and total
  /// stop-the-world pause time across every Runtime this process ran.
  uint64_t GcCycles = 0;
  uint64_t GcCellsReclaimed = 0;
  uint64_t GcPauseNs = 0;
  /// Speculative-inlining telemetry over resident tier-1 modules
  /// (DESIGN.md §14): call sites spliced at re-preparation, and
  /// GuardInline receiver misses that took the out-of-line fallback.
  uint64_t CacheInlinedSites = 0;
  uint64_t CacheInlineGuardMisses = 0;
};

/// Number of u64 fields in the STATS payload.
constexpr size_t kServeStatsFields = 24;

std::vector<uint8_t> encodeStats(const ServeStats &S);
bool decodeStats(ByteSpan Bytes, ServeStats &Out);

struct CodeServerOptions {
  /// Decoded-module cache budget, charged at wire size per module.
  size_t CacheBytes = 64u << 20;
  unsigned CacheShards = 8;
  /// Connection-dispatch pool size; 0 = hardware concurrency. Each
  /// attached connection occupies one worker for its lifetime.
  unsigned Threads = 0;
  /// Verify (fused-decode) modules at PUBLISH time and reject failures.
  /// Off, hostile publishes park in the store until first load.
  bool VerifyOnPublish = true;
  /// Directory for persistent storage; empty = in-memory only.
  std::string StoreDir;
  /// Highest execution tier loadPrepared serves: 0 = profiling tier only,
  /// 1 (default) = re-quicken hot modules with inline caches, closed-world
  /// devirtualization, and superinstruction fusion (DESIGN.md §11).
  uint32_t MaxExecTier = 1;
  /// Per-method invocation count at which a module becomes hot and
  /// loadPrepared re-quickens it to tier 1.
  uint64_t HotThreshold = 32;
  /// Disable superinstruction fusion in tier-1 streams (also settable
  /// process-wide via SAFETSA_EXEC_NOFUSION).
  bool NoFusion = false;
  /// Speculative-inlining callee size ceiling for tier-1 re-preparation
  /// (PrepareOptions::InlineBudget; DESIGN.md §14).
  uint32_t InlineBudget = 24;
  /// Disable speculative inlining in tier-1 streams (also settable
  /// process-wide via SAFETSA_EXEC_NOINLINE).
  bool NoInlining = false;
  /// Heap-collection policy for executions this server's modules feed:
  /// workers executing a loaded module construct their Runtime with
  /// these knobs (see gc/GC.h). The default keeps long-running servers
  /// bounded at ~64 MiB of live cells per runtime.
  GcOptions Gc = {};
};

class CodeServer {
public:
  explicit CodeServer(CodeServerOptions Opts = {});
  ~CodeServer();

  //===------------------------------------------------------------------===//
  // In-process entry points (what the protocol handlers call; also the
  // integration surface for BatchCompiler and benches).
  //===------------------------------------------------------------------===//

  /// Verifies (when configured) and stores \p Bytes; returns their
  /// digest. On verification failure nothing is stored, \p Err is set,
  /// and the returned digest is still the content digest (callers may
  /// log it).
  Digest publish(ByteSpan Bytes, std::string *Err);

  /// The exact published bytes, or null when unknown.
  std::shared_ptr<const std::vector<uint8_t>> fetchBytes(const Digest &D);

  /// Cache-backed consumer load: the decoded+verified module for \p D.
  /// A warm hit does no decoding (asserted by tests via getStats). Null
  /// with \p Err set when the digest is unknown or its bytes fail decode.
  std::shared_ptr<const DecodedUnit> load(const Digest &D, std::string *Err);

  /// Cache-backed *executable* load: the prepared (quickened) form of the
  /// module for \p D, lowered once per resident cache entry. A warm hit
  /// does no decoding and no re-lowering — it returns directly executable
  /// code (stats().CachePrepares counts lowerings actually run). The
  /// returned module keeps its decoded unit alive internally. When the
  /// options allow tier 1 and the module's tier-0 profile has crossed
  /// HotThreshold, the cache re-quickens it (once, single-flight;
  /// stats().CacheReprepares) and serves the tier-1 form thereafter.
  std::shared_ptr<const PreparedModule> loadPrepared(const Digest &D,
                                                     std::string *Err);

  /// Like loadPrepared but with an explicit tier ceiling (min'd with the
  /// configured MaxExecTier): 0 forces the profiling tier, letting
  /// callers (BatchCompiler's MaxExecTier knob, the benches) pin a tier.
  std::shared_ptr<const PreparedModule>
  loadPrepared(const Digest &D, uint32_t MaxTier, std::string *Err);

  ServeStats stats() const;

  ModuleStore &getStore() { return Store; }
  ModuleCache &getCache() { return Cache; }

  //===------------------------------------------------------------------===//
  // Protocol service
  //===------------------------------------------------------------------===//

  /// Serves one connection until clean EOF or a fatal framing error;
  /// blocking, callable from any thread.
  void serveConnection(Transport &T);

  /// Hands the connection to the dispatch pool and returns immediately.
  void attach(std::unique_ptr<Transport> T);

  /// Blocks until every attached connection has finished.
  void wait();

private:
  bool handleFrame(Transport &T, const Frame &F);

  CodeServerOptions Opts;
  ModuleStore Store;
  ModuleCache Cache;
  ThreadPool Pool;
  std::atomic<uint64_t> Publishes{0};
  std::atomic<uint64_t> Fetches{0};
  std::atomic<uint64_t> FetchNotFound{0};
  std::atomic<uint64_t> VerifyFailures{0};
};

} // namespace safetsa

#endif // SAFETSA_SERVE_CODESERVER_H
