//===- serve/ModuleCache.cpp ----------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/ModuleCache.h"

#include "exec/ExecUnit.h"

#include <algorithm>
#include <atomic>

using namespace safetsa;

/// One cached (or in-flight) module. Waiters hold the shared_ptr, so an
/// entry outlives its eviction or a cache clear without dangling.
struct ModuleCache::Entry {
  size_t Charge = 0;
  std::shared_ptr<const DecodedUnit> Unit; ///< Null until ready / on failure.
  /// Execution-prepared form, lowered lazily on the first getPrepared()
  /// and cached beside the decoded unit (its deleter keeps Unit alive, so
  /// eviction order between the two can never dangle).
  std::shared_ptr<const PreparedModule> Prepared;
  /// Tier-1 (re-quickened) form, produced once the tier-0 profile goes
  /// hot; shares the entry so decoded unit, tier-0, and tier-1 code are
  /// evicted together and the tier-1 deleters keep their sources alive.
  std::shared_ptr<const PreparedModule> PreparedT1;
  std::string Error;
  bool Ready = false;
  bool Preparing = false; ///< A thread is lowering this entry right now.
  bool RepreparingT1 = false; ///< A thread is re-quickening right now.
  /// CLOCK second-chance bit. Set (relaxed, lock-free) by every hit;
  /// cleared by the evicting sweep under the shard lock. Starts false so
  /// an entry that is admitted and never re-referenced is first in line,
  /// which preserves the LRU-like victim order the eviction tests pin.
  std::atomic<bool> Touched{false};
};

/// One slot of a shard's published index: the digest, the entry (for the
/// Touched bit), and plain copies of the servable forms. Views are built
/// under the shard lock and immutable afterwards — readers only ever
/// copy these shared_ptrs, so no field is ever written concurrently with
/// a read.
struct ModuleCache::View {
  Digest D{0, 0};
  std::shared_ptr<Entry> E; ///< Null = empty slot.
  std::shared_ptr<const DecodedUnit> Unit;
  std::shared_ptr<const PreparedModule> Prepared;
  std::shared_ptr<const PreparedModule> PreparedT1;
};

/// Immutable open-addressed index of a shard's ready entries (linear
/// probing, power-of-two capacity, load factor <= 1/2 so a probe always
/// terminates on an empty slot).
struct ModuleCache::Snapshot {
  size_t Mask = 0;
  std::vector<View> Slots;

  const View *find(const Digest &D) const {
    for (size_t I = DigestHash()(D) & Mask;; I = (I + 1) & Mask) {
      const View &V = Slots[I];
      if (!V.E)
        return nullptr;
      if (V.D == D)
        return &V;
    }
  }
};

struct ModuleCache::Shard {
  std::mutex M;
  std::condition_variable ReadyCV;
  /// Authoritative state (ready + in-flight entries). Guarded by M.
  std::unordered_map<Digest, std::shared_ptr<Entry>, DigestHash> Map;
  /// CLOCK ring of resident (ready) digests + the sweep hand. Guarded by
  /// M. Invariant: ring members are exactly the Ready entries of Map.
  std::vector<Digest> Clock;
  size_t Hand = 0;
  size_t Bytes = 0;
  /// Index publication (the lock-free read path's source of truth).
  /// Snap is guarded by PubM — a tiny critical section touched only by
  /// publishers (who already hold M) and by readers *refreshing a stale
  /// thread-local copy*; a reader whose cached SnapId still matches
  /// never takes any lock. SnapId values come from a process-global
  /// monotonic counter, so no two shards (even at a reused address)
  /// ever publish the same id — which is what makes the thread-local
  /// cache's (shard, id) match test sound.
  std::mutex PubM;
  std::shared_ptr<const Snapshot> Snap; ///< Guarded by PubM.
  std::atomic<uint64_t> SnapId{0};      ///< Globally unique; release-stored.
};

/// Process-global snapshot id allocator (never reused, never zero).
static std::atomic<uint64_t> NextSnapId{0};

ModuleCache::ModuleCache(size_t CapacityBytes, unsigned NumShards)
    : NumShards(std::max(1u, NumShards)),
      ShardCapacity(std::max<size_t>(1, CapacityBytes / this->NumShards)) {
  Shards.reserve(this->NumShards);
  for (unsigned I = 0; I != this->NumShards; ++I) {
    Shards.push_back(std::make_unique<Shard>());
    // A fresh id even for the empty shard keeps ids unique per shard
    // instance, so a stale thread-local slot from a destroyed cache at
    // the same address can never false-match.
    Shards.back()->SnapId.store(NextSnapId.fetch_add(1) + 1,
                                std::memory_order_relaxed);
  }
}

ModuleCache::~ModuleCache() = default;

ModuleCache::Shard &ModuleCache::shardFor(const Digest &D) {
  // The digest is already uniformly mixed; any fold spreads shards well.
  return *Shards[static_cast<size_t>(D.Hi ^ D.Lo) % NumShards];
}

void ModuleCache::publishIndex(Shard &S) {
  size_t N = S.Clock.size();
  size_t Cap = 8;
  while (Cap < 2 * (N + 1))
    Cap <<= 1;
  auto Snap = std::make_shared<Snapshot>();
  Snap->Mask = Cap - 1;
  Snap->Slots.resize(Cap);
  for (const auto &KV : S.Map) {
    const std::shared_ptr<Entry> &E = KV.second;
    if (!E->Ready)
      continue; // In-flight: not servable, not published.
    size_t I = DigestHash()(KV.first) & Snap->Mask;
    while (Snap->Slots[I].E)
      I = (I + 1) & Snap->Mask;
    View &V = Snap->Slots[I];
    V.D = KV.first;
    V.E = E;
    V.Unit = E->Unit;
    V.Prepared = E->Prepared;
    V.PreparedT1 = E->PreparedT1;
  }
  // Publish under PubM, then release-store the new id. A reader either
  // (a) observes the new id via its acquire load, misses its
  // thread-local cache, and copies Snap under PubM (the mutex orders the
  // View contents), or (b) still observes the old id and keeps serving
  // its cached — fully constructed — old snapshot. Either way it never
  // sees a partially built index.
  uint64_t Id = NextSnapId.fetch_add(1) + 1;
  std::lock_guard<std::mutex> PubLock(S.PubM);
  S.Snap = std::move(Snap);
  S.SnapId.store(Id, std::memory_order_release);
}

const ModuleCache::Snapshot *ModuleCache::currentSnapshot(Shard &S) {
  // Per-thread direct-mapped cache of (shard, id) -> snapshot. The hot
  // path is one acquire load plus a TLS compare: no lock, no shared
  // atomic RMW (in particular no shared_ptr refcount ping-pong — the
  // reason this is not std::atomic<shared_ptr>; libstdc++ 12's
  // _Sp_atomic also unlocks its internal spinlock with a relaxed RMW on
  // load, which TSan rightly flags as racing the store side).
  //
  // The returned raw pointer stays valid until *this thread* next
  // refreshes the same slot, so callers must finish probing before any
  // nested call that might touch the same shard's snapshot.
  struct TLSlot {
    const void *Key = nullptr;
    uint64_t Id = 0;
    std::shared_ptr<const Snapshot> Snap;
  };
  static thread_local TLSlot Slots[8];
  TLSlot &Slot = Slots[(reinterpret_cast<uintptr_t>(&S) >> 6) & 7];
  uint64_t Id = S.SnapId.load(std::memory_order_acquire);
  if (Slot.Key == &S && Slot.Id == Id)
    return Slot.Snap.get();
  // Stale (or foreign) slot: refresh under the publication mutex. Id and
  // Snap are copied together under PubM, so a slot id match always pairs
  // with that id's snapshot.
  std::lock_guard<std::mutex> PubLock(S.PubM);
  Slot.Key = &S;
  Slot.Id = S.SnapId.load(std::memory_order_relaxed);
  Slot.Snap = S.Snap;
  return Slot.Snap.get();
}

void ModuleCache::evictUnderLock(Shard &S, const Entry *JustAdmitted) {
  // CLOCK second chance: sweep the ring, clearing Touched bits; evict
  // the first candidate found untouched since the last sweep. Terminates
  // because each pass strips every second chance and the just-admitted
  // entry is the only permanent skip (guarded by size() > 1).
  while (S.Bytes > ShardCapacity && S.Clock.size() > 1) {
    if (S.Hand >= S.Clock.size())
      S.Hand = 0;
    auto It = S.Map.find(S.Clock[S.Hand]);
    Entry &E = *It->second;
    if (&E == JustAdmitted ||
        E.Touched.exchange(false, std::memory_order_relaxed)) {
      ++S.Hand;
      continue;
    }
    S.Bytes -= E.Charge;
    S.Map.erase(It);
    S.Clock.erase(S.Clock.begin() + static_cast<long>(S.Hand));
    Evictions.add();
  }
}

std::shared_ptr<const DecodedUnit>
ModuleCache::get(const Digest &D, size_t Charge, const DecodeFn &Decode,
                 std::string *Err) {
  Shard &S = shardFor(D);
  // Lock-free hit path: current snapshot, probe, touch, count.
  if (const Snapshot *Snap = currentSnapshot(S))
    if (const View *V = Snap->find(D)) {
      V->E->Touched.store(true, std::memory_order_relaxed);
      Hits.add();
      return V->Unit;
    }

  std::shared_ptr<Entry> E;
  {
    std::unique_lock<std::mutex> Lock(S.M);
    auto It = S.Map.find(D);
    if (It != S.Map.end()) {
      E = It->second;
      if (E->Ready) {
        // Admitted between our snapshot load and the lock: still a hit.
        E->Touched.store(true, std::memory_order_relaxed);
        Hits.add();
        return E->Unit;
      }
      // Single-flight: another thread is decoding this digest right now.
      // Wait for its verdict instead of decoding redundantly.
      Coalesced.add();
      S.ReadyCV.wait(Lock, [&] { return E->Ready; });
      if (!E->Unit && Err)
        *Err = E->Error;
      return E->Unit;
    }
    // Miss: claim the flight while still under the lock, then decode
    // outside it so other shard traffic keeps flowing.
    Misses.add();
    E = std::make_shared<Entry>();
    S.Map.emplace(D, E);
  }

  std::string DecodeErr;
  std::unique_ptr<DecodedUnit> Unit = Decode(&DecodeErr);

  std::lock_guard<std::mutex> Lock(S.M);
  Decodes.add();
  // clear() may have dropped our in-flight mapping; re-inserting would
  // resurrect cleared state, so only admit while still the mapped flight.
  auto It = S.Map.find(D);
  bool StillMapped = It != S.Map.end() && It->second == E;

  if (!Unit) {
    DecodeFailures.add();
    E->Error = DecodeErr.empty() ? "decode failed" : DecodeErr;
    E->Ready = true;
    // Failures are not cached: the next fetch of this digest retries.
    if (StillMapped)
      S.Map.erase(It);
    S.ReadyCV.notify_all();
    if (Err)
      *Err = E->Error;
    return nullptr;
  }

  E->Unit = std::shared_ptr<const DecodedUnit>(Unit.release());
  E->Charge = Charge;
  E->Ready = true;
  if (StillMapped) {
    S.Clock.push_back(D);
    S.Bytes += Charge;
    // Evict until back under budget; the entry just admitted is never
    // evicted even when alone over budget.
    evictUnderLock(S, E.get());
    publishIndex(S);
  }
  S.ReadyCV.notify_all();
  return E->Unit;
}

std::shared_ptr<const PreparedModule>
ModuleCache::getPrepared(const Digest &D, size_t Charge,
                         const DecodeFn &Decode, const PrepareFn &Prepare,
                         std::string *Err) {
  Shard &S = shardFor(D);
  // Lock-free warm hit: decoded AND prepared forms already published.
  if (const Snapshot *Snap = currentSnapshot(S))
    if (const View *V = Snap->find(D))
      if (V->Prepared) {
        V->E->Touched.store(true, std::memory_order_relaxed);
        Hits.add();
        return V->Prepared;
      }

  std::shared_ptr<const DecodedUnit> Unit = get(D, Charge, Decode, Err);
  if (!Unit)
    return nullptr;

  std::shared_ptr<Entry> E;
  {
    std::unique_lock<std::mutex> Lock(S.M);
    auto It = S.Map.find(D);
    // Only piggyback on the entry that actually holds our unit; if it was
    // evicted or cleared between get() and now, prepare uncached below.
    if (It != S.Map.end() && It->second->Ready && It->second->Unit == Unit) {
      E = It->second;
      if (E->Prepared)
        return E->Prepared; // Warm hit: zero re-lowering.
      // Single-flight, like decoding: wait out any in-progress lowering.
      S.ReadyCV.wait(Lock, [&] { return !E->Preparing; });
      if (E->Prepared)
        return E->Prepared;
      E->Preparing = true; // Claim (first flight, or retry after failure).
    }
  }

  std::string PrepErr;
  std::shared_ptr<const PreparedModule> PM = Prepare(Unit, &PrepErr);

  std::lock_guard<std::mutex> Lock(S.M);
  Prepares.add();
  if (E) {
    E->Preparing = false;
    if (PM) { // Failures are not cached; the next request retries.
      E->Prepared = PM;
      publishIndex(S);
    }
    S.ReadyCV.notify_all();
  }
  if (!PM && Err)
    *Err = PrepErr.empty() ? "prepare failed" : PrepErr;
  return PM;
}

std::shared_ptr<const PreparedModule>
ModuleCache::getPrepared(const Digest &D, size_t Charge,
                         const DecodeFn &Decode, const PrepareFn &Prepare,
                         const TierPolicy &Tier, std::string *Err) {
  Shard &S = shardFor(D);
  // Lock-free warm hits: the settled states — tier 1 cached, or tier 0
  // cached and not (yet) hot — never take the lock. The hot-but-not-yet-
  // re-prepared window goes through the locked escalation below.
  if (const Snapshot *Snap = currentSnapshot(S))
    if (const View *V = Snap->find(D)) {
      if (Tier.MaxTier >= 1 && V->PreparedT1) {
        V->E->Touched.store(true, std::memory_order_relaxed);
        Hits.add();
        return V->PreparedT1;
      }
      if (V->Prepared) {
        // A MaxTier==0 caller pins the profiling tier even when a
        // tier-1 form is cached (ServerTierCapPinsProfilingTier).
        const ProfileData *Prof = V->Prepared->Profile.get();
        if (Tier.MaxTier == 0 || !Tier.Reprepare || !Prof ||
            !Prof->anyHot(Tier.HotThreshold)) {
          V->E->Touched.store(true, std::memory_order_relaxed);
          Hits.add();
          return V->Prepared;
        }
      }
    }

  std::shared_ptr<const PreparedModule> T0 =
      getPrepared(D, Charge, Decode, Prepare, Err);
  if (!T0 || Tier.MaxTier == 0 || !Tier.Reprepare)
    return T0;

  std::shared_ptr<Entry> E;
  {
    std::unique_lock<std::mutex> Lock(S.M);
    auto It = S.Map.find(D);
    // Only escalate through the entry that holds our tier-0 form; if it
    // was evicted or cleared meanwhile there is nowhere to cache tier 1.
    if (It == S.Map.end() || It->second->Prepared != T0)
      return T0;
    E = It->second;
    if (E->PreparedT1)
      return E->PreparedT1; // Warm tier-1 hit.
    const ProfileData *Prof = T0->Profile.get();
    if (!Prof || !Prof->anyHot(Tier.HotThreshold))
      return T0; // Not hot yet; keep profiling at tier 0.
    if (E->RepreparingT1)
      return T0; // A rival is re-quickening; never stall execution on it.
    E->RepreparingT1 = true;
  }

  std::string RepErr;
  std::shared_ptr<const PreparedModule> T1 = Tier.Reprepare(T0, &RepErr);

  std::lock_guard<std::mutex> Lock(S.M);
  Reprepares.add();
  E->RepreparingT1 = false;
  if (!T1) {
    // Failures are not cached: tier 0 keeps serving and the next hot
    // request retries the re-preparation.
    if (Err)
      *Err = RepErr.empty() ? "reprepare failed" : RepErr;
    return T0;
  }
  E->PreparedT1 = T1;
  publishIndex(S);
  return T1;
}

CacheStats ModuleCache::stats() const {
  CacheStats Out;
  Out.Hits = Hits.sum();
  Out.Misses = Misses.sum();
  Out.Coalesced = Coalesced.sum();
  Out.Evictions = Evictions.sum();
  Out.Decodes = Decodes.sum();
  Out.DecodeFailures = DecodeFailures.sum();
  Out.Prepares = Prepares.sum();
  Out.Reprepares = Reprepares.sum();
  for (const auto &SP : Shards) {
    Shard &S = *SP;
    std::lock_guard<std::mutex> Lock(S.M);
    Out.Entries += S.Clock.size();
    Out.Bytes += S.Bytes;
    // IC tallies live on the tier-1 modules themselves (flushed there by
    // every executing TSAExec); aggregate what is resident.
    for (const auto &KV : S.Map)
      if (KV.second->PreparedT1) {
        Out.ICHits +=
            KV.second->PreparedT1->ICHits.load(std::memory_order_relaxed);
        Out.ICMisses +=
            KV.second->PreparedT1->ICMisses.load(std::memory_order_relaxed);
        Out.InlinedSites += KV.second->PreparedT1->Tiering.InlinedSites;
        Out.InlineGuardMisses +=
            KV.second->PreparedT1->InlineGuardMisses.load(
                std::memory_order_relaxed);
      }
  }
  return Out;
}

void ModuleCache::clear() {
  for (const auto &SP : Shards) {
    Shard &S = *SP;
    std::lock_guard<std::mutex> Lock(S.M);
    S.Map.clear(); // In-flight owners see themselves unmapped and skip
                   // admission; their waiters still get the result.
    S.Clock.clear();
    S.Hand = 0;
    S.Bytes = 0;
    publishIndex(S);
  }
}
