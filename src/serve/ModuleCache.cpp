//===- serve/ModuleCache.cpp ----------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/ModuleCache.h"

#include "exec/ExecUnit.h"

#include <algorithm>

using namespace safetsa;

/// One cached (or in-flight) module. Waiters hold the shared_ptr, so an
/// entry outlives its eviction or a cache clear without dangling.
struct ModuleCache::Entry {
  size_t Charge = 0;
  std::shared_ptr<const DecodedUnit> Unit; ///< Null until ready / on failure.
  /// Execution-prepared form, lowered lazily on the first getPrepared()
  /// and cached beside the decoded unit (its deleter keeps Unit alive, so
  /// eviction order between the two can never dangle).
  std::shared_ptr<const PreparedModule> Prepared;
  /// Tier-1 (re-quickened) form, produced once the tier-0 profile goes
  /// hot; shares the entry so decoded unit, tier-0, and tier-1 code are
  /// evicted together and the tier-1 deleters keep their sources alive.
  std::shared_ptr<const PreparedModule> PreparedT1;
  std::string Error;
  bool Ready = false;
  bool Preparing = false; ///< A thread is lowering this entry right now.
  bool RepreparingT1 = false; ///< A thread is re-quickening right now.
  bool InLru = false;
  std::list<Digest>::iterator LruIt; ///< Valid iff InLru.
};

struct ModuleCache::Shard {
  std::mutex M;
  std::condition_variable ReadyCV;
  std::unordered_map<Digest, std::shared_ptr<Entry>, DigestHash> Map;
  std::list<Digest> Lru; ///< Front = most recently used.
  size_t Bytes = 0;
  CacheStats Stats; ///< Entries/Bytes are recomputed at read time.
};

ModuleCache::ModuleCache(size_t CapacityBytes, unsigned NumShards)
    : NumShards(std::max(1u, NumShards)),
      ShardCapacity(std::max<size_t>(1, CapacityBytes / this->NumShards)) {
  Shards.reserve(this->NumShards);
  for (unsigned I = 0; I != this->NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

ModuleCache::~ModuleCache() = default;

ModuleCache::Shard &ModuleCache::shardFor(const Digest &D) {
  // The digest is already uniformly mixed; any fold spreads shards well.
  return *Shards[static_cast<size_t>(D.Hi ^ D.Lo) % NumShards];
}

std::shared_ptr<const DecodedUnit>
ModuleCache::get(const Digest &D, size_t Charge, const DecodeFn &Decode,
                 std::string *Err) {
  Shard &S = shardFor(D);
  std::shared_ptr<Entry> E;
  {
    std::unique_lock<std::mutex> Lock(S.M);
    auto It = S.Map.find(D);
    if (It != S.Map.end()) {
      E = It->second;
      if (E->Ready) {
        // Only successful entries stay mapped, so Unit is non-null here.
        ++S.Stats.Hits;
        if (E->InLru)
          S.Lru.splice(S.Lru.begin(), S.Lru, E->LruIt);
        return E->Unit;
      }
      // Single-flight: another thread is decoding this digest right now.
      // Wait for its verdict instead of decoding redundantly.
      ++S.Stats.Coalesced;
      S.ReadyCV.wait(Lock, [&] { return E->Ready; });
      if (!E->Unit && Err)
        *Err = E->Error;
      return E->Unit;
    }
    // Miss: claim the flight while still under the lock, then decode
    // outside it so other shard traffic keeps flowing.
    ++S.Stats.Misses;
    E = std::make_shared<Entry>();
    S.Map.emplace(D, E);
  }

  std::string DecodeErr;
  std::unique_ptr<DecodedUnit> Unit = Decode(&DecodeErr);

  std::lock_guard<std::mutex> Lock(S.M);
  ++S.Stats.Decodes;
  // clear() may have dropped our in-flight mapping; re-inserting would
  // resurrect cleared state, so only admit while still the mapped flight.
  auto It = S.Map.find(D);
  bool StillMapped = It != S.Map.end() && It->second == E;

  if (!Unit) {
    ++S.Stats.DecodeFailures;
    E->Error = DecodeErr.empty() ? "decode failed" : DecodeErr;
    E->Ready = true;
    // Failures are not cached: the next fetch of this digest retries.
    if (StillMapped)
      S.Map.erase(It);
    S.ReadyCV.notify_all();
    if (Err)
      *Err = E->Error;
    return nullptr;
  }

  E->Unit = std::shared_ptr<const DecodedUnit>(Unit.release());
  E->Charge = Charge;
  E->Ready = true;
  if (StillMapped) {
    S.Lru.push_front(D);
    E->LruIt = S.Lru.begin();
    E->InLru = true;
    S.Bytes += Charge;
    // Evict least-recently-used until back under budget; the entry just
    // admitted (front) is never evicted even when alone over budget.
    while (S.Bytes > ShardCapacity && S.Lru.size() > 1) {
      const Digest Victim = S.Lru.back();
      auto VIt = S.Map.find(Victim);
      S.Bytes -= VIt->second->Charge;
      VIt->second->InLru = false;
      S.Map.erase(VIt);
      S.Lru.pop_back();
      ++S.Stats.Evictions;
    }
  }
  S.ReadyCV.notify_all();
  return E->Unit;
}

std::shared_ptr<const PreparedModule>
ModuleCache::getPrepared(const Digest &D, size_t Charge,
                         const DecodeFn &Decode, const PrepareFn &Prepare,
                         std::string *Err) {
  std::shared_ptr<const DecodedUnit> Unit = get(D, Charge, Decode, Err);
  if (!Unit)
    return nullptr;

  Shard &S = shardFor(D);
  std::shared_ptr<Entry> E;
  {
    std::unique_lock<std::mutex> Lock(S.M);
    auto It = S.Map.find(D);
    // Only piggyback on the entry that actually holds our unit; if it was
    // evicted or cleared between get() and now, prepare uncached below.
    if (It != S.Map.end() && It->second->Ready && It->second->Unit == Unit) {
      E = It->second;
      if (E->Prepared)
        return E->Prepared; // Warm hit: zero re-lowering.
      // Single-flight, like decoding: wait out any in-progress lowering.
      S.ReadyCV.wait(Lock, [&] { return !E->Preparing; });
      if (E->Prepared)
        return E->Prepared;
      E->Preparing = true; // Claim (first flight, or retry after failure).
    }
  }

  std::string PrepErr;
  std::shared_ptr<const PreparedModule> PM = Prepare(Unit, &PrepErr);

  std::lock_guard<std::mutex> Lock(S.M);
  ++S.Stats.Prepares;
  if (E) {
    E->Preparing = false;
    if (PM) // Failures are not cached; the next request retries.
      E->Prepared = PM;
    S.ReadyCV.notify_all();
  }
  if (!PM && Err)
    *Err = PrepErr.empty() ? "prepare failed" : PrepErr;
  return PM;
}

std::shared_ptr<const PreparedModule>
ModuleCache::getPrepared(const Digest &D, size_t Charge,
                         const DecodeFn &Decode, const PrepareFn &Prepare,
                         const TierPolicy &Tier, std::string *Err) {
  std::shared_ptr<const PreparedModule> T0 =
      getPrepared(D, Charge, Decode, Prepare, Err);
  if (!T0 || Tier.MaxTier == 0 || !Tier.Reprepare)
    return T0;

  Shard &S = shardFor(D);
  std::shared_ptr<Entry> E;
  {
    std::unique_lock<std::mutex> Lock(S.M);
    auto It = S.Map.find(D);
    // Only escalate through the entry that holds our tier-0 form; if it
    // was evicted or cleared meanwhile there is nowhere to cache tier 1.
    if (It == S.Map.end() || It->second->Prepared != T0)
      return T0;
    E = It->second;
    if (E->PreparedT1)
      return E->PreparedT1; // Warm tier-1 hit.
    const ProfileData *Prof = T0->Profile.get();
    if (!Prof || !Prof->anyHot(Tier.HotThreshold))
      return T0; // Not hot yet; keep profiling at tier 0.
    if (E->RepreparingT1)
      return T0; // A rival is re-quickening; never stall execution on it.
    E->RepreparingT1 = true;
  }

  std::string RepErr;
  std::shared_ptr<const PreparedModule> T1 = Tier.Reprepare(T0, &RepErr);

  std::lock_guard<std::mutex> Lock(S.M);
  ++S.Stats.Reprepares;
  E->RepreparingT1 = false;
  if (!T1) {
    // Failures are not cached: tier 0 keeps serving and the next hot
    // request retries the re-preparation.
    if (Err)
      *Err = RepErr.empty() ? "reprepare failed" : RepErr;
    return T0;
  }
  E->PreparedT1 = T1;
  return T1;
}

CacheStats ModuleCache::stats() const {
  CacheStats Out;
  for (const auto &SP : Shards) {
    Shard &S = *SP;
    std::lock_guard<std::mutex> Lock(S.M);
    Out.Hits += S.Stats.Hits;
    Out.Misses += S.Stats.Misses;
    Out.Coalesced += S.Stats.Coalesced;
    Out.Evictions += S.Stats.Evictions;
    Out.Decodes += S.Stats.Decodes;
    Out.DecodeFailures += S.Stats.DecodeFailures;
    Out.Prepares += S.Stats.Prepares;
    Out.Reprepares += S.Stats.Reprepares;
    Out.Entries += S.Lru.size();
    Out.Bytes += S.Bytes;
    // IC tallies live on the tier-1 modules themselves (flushed there by
    // every executing TSAExec); aggregate what is resident.
    for (const auto &KV : S.Map)
      if (KV.second->PreparedT1) {
        Out.ICHits +=
            KV.second->PreparedT1->ICHits.load(std::memory_order_relaxed);
        Out.ICMisses +=
            KV.second->PreparedT1->ICMisses.load(std::memory_order_relaxed);
      }
  }
  return Out;
}

void ModuleCache::clear() {
  for (const auto &SP : Shards) {
    Shard &S = *SP;
    std::lock_guard<std::mutex> Lock(S.M);
    for (auto &KV : S.Map)
      KV.second->InLru = false;
    S.Map.clear(); // In-flight owners see themselves unmapped and skip
                   // admission; their waiters still get the result.
    S.Lru.clear();
    S.Bytes = 0;
  }
}
