//===- sema/Symbols.h - Declared entities ---------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbols for classes, fields, methods, and locals. The class table plays
/// the role of the paper's linking/type table: builtin entries ("imported
/// types" in the paper) are generated implicitly and are therefore
/// tamper-proof; user classes are declared by the mobile program.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SEMA_SYMBOLS_H
#define SAFETSA_SEMA_SYMBOLS_H

#include "sema/Type.h"

#include <memory>
#include <string>
#include <vector>

namespace safetsa {

struct ClassSymbol;
struct MethodDecl;
struct FieldDecl;

/// A field declared by some class (static or instance).
struct FieldSymbol {
  std::string Name;
  Type *Ty = nullptr;
  ClassSymbol *Owner = nullptr;
  bool IsStatic = false;
  bool IsFinal = false;
  /// For instance fields: slot in the full object layout (superclass
  /// fields first). For static fields: global static-storage slot.
  unsigned Slot = 0;
  FieldDecl *Decl = nullptr;
};

/// Identifies a runtime-provided (imported) method; the evaluators
/// implement these natively, mirroring the paper's "types imported from
/// the host environment's libraries".
enum class NativeMethod : uint8_t {
  None,
  PrintInt,
  PrintDouble,
  PrintChar,
  PrintBool,
  PrintStr,
  Println,
  Sqrt,
  AbsDouble,
  AbsInt,
  MinInt,
  MaxInt,
  MinDouble,
  MaxDouble,
  Pow,
  Floor
};

/// A method or constructor.
struct MethodSymbol {
  std::string Name;
  ClassSymbol *Owner = nullptr;
  Type *RetTy = nullptr;
  std::vector<Type *> ParamTys;
  bool IsStatic = false;
  bool IsConstructor = false;
  NativeMethod Native = NativeMethod::None;
  /// Slot in the owner's vtable; -1 for statics, constructors, natives.
  int VTableSlot = -1;
  /// The overridden superclass method, when this is an override.
  MethodSymbol *Overrides = nullptr;
  MethodDecl *Decl = nullptr;
  /// Dense id across the whole program (assigned by ClassTable), used for
  /// cross-references in encoded modules and by the evaluators.
  unsigned GlobalId = 0;

  bool isNative() const { return Native != NativeMethod::None; }

  /// "Owner.name(paramtypes)" for diagnostics.
  std::string signature() const;
};

/// A class: user-declared or builtin (Object, IO, Math).
struct ClassSymbol {
  std::string Name;
  ClassSymbol *Super = nullptr; // Null only for Object.
  ClassDecl *Decl = nullptr;    // Null for builtins.
  bool IsBuiltin = false;
  /// Dense id across the program; Object is 0.
  unsigned Id = 0;

  std::vector<std::unique_ptr<FieldSymbol>> Fields;   // Own declarations.
  std::vector<std::unique_ptr<MethodSymbol>> Methods; // Own declarations.

  /// Full instance layout, superclass fields first (computed).
  std::vector<FieldSymbol *> InstanceLayout;
  /// Virtual dispatch table: inherited slots first, overrides substituted.
  std::vector<MethodSymbol *> VTable;

  /// Walks the superclass chain, including this class.
  bool isSubclassOf(const ClassSymbol *Other) const {
    for (const ClassSymbol *C = this; C; C = C->Super)
      if (C == Other)
        return true;
    return false;
  }

  /// Finds a field by name in this class or a superclass; null if absent.
  FieldSymbol *findField(const std::string &Name) const {
    for (const ClassSymbol *C = this; C; C = C->Super)
      for (const auto &F : C->Fields)
        if (F->Name == Name)
          return F.get();
    return nullptr;
  }

  /// Collects all methods named \p Name along the superclass chain
  /// (nearest first); overloads included, constructors excluded.
  std::vector<MethodSymbol *> findMethods(const std::string &Name) const;

  /// Collects this class's constructors.
  std::vector<MethodSymbol *> findConstructors() const;
};

} // namespace safetsa

#endif // SAFETSA_SEMA_SYMBOLS_H
