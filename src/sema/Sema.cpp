//===- sema/Sema.cpp ------------------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sema/Sema.h"

#include <algorithm>
#include <sstream>

using namespace safetsa;

bool Sema::run(Program &P) {
  declareClasses(P);
  resolveSupers(P);
  for (auto &C : P.Classes)
    if (C->Symbol)
      declareMembers(*C);
  for (auto &C : P.Classes)
    if (C->Symbol)
      computeLayout(C->Symbol);
  for (auto &C : P.Classes)
    if (C->Symbol)
      checkClassBodies(*C);
  return !Diags.hasErrors();
}

//===----------------------------------------------------------------------===//
// Declaration phases
//===----------------------------------------------------------------------===//

void Sema::declareClasses(Program &P) {
  for (auto &C : P.Classes)
    C->Symbol = Table.declareClass(C->Name, C.get(), Diags);
}

void Sema::resolveSupers(Program &P) {
  for (auto &C : P.Classes) {
    if (!C->Symbol)
      continue;
    if (C->SuperName.empty()) {
      C->Symbol->Super = Table.getObjectClass();
      continue;
    }
    ClassSymbol *Super = Table.lookup(C->SuperName);
    if (!Super) {
      Diags.error(C->Loc, "unknown superclass '" + C->SuperName + "'");
      C->Symbol->Super = Table.getObjectClass();
      continue;
    }
    if (Super->IsBuiltin && Super != Table.getObjectClass()) {
      Diags.error(C->Loc, "cannot extend builtin class '" + Super->Name + "'");
      C->Symbol->Super = Table.getObjectClass();
      continue;
    }
    C->Symbol->Super = Super;
  }
  // Cycle detection: walking Super from any class must reach Object.
  for (auto &C : P.Classes) {
    if (!C->Symbol)
      continue;
    ClassSymbol *Slow = C->Symbol, *Fast = C->Symbol;
    while (Fast && Fast->Super) {
      Slow = Slow->Super;
      Fast = Fast->Super->Super;
      if (Slow == Fast && Slow) {
        Diags.error(C->Loc, "inheritance cycle involving class '" +
                                C->Name + "'");
        C->Symbol->Super = Table.getObjectClass();
        break;
      }
    }
  }
}

void Sema::declareMembers(ClassDecl &Class) {
  ClassSymbol *Sym = Class.Symbol;

  for (FieldDecl &F : Class.Fields) {
    for (const auto &Prev : Sym->Fields)
      if (Prev->Name == F.Name) {
        Diags.error(F.Loc, "duplicate field '" + F.Name + "' in class '" +
                               Class.Name + "'");
        break;
      }
    auto FS = std::make_unique<FieldSymbol>();
    FS->Name = F.Name;
    FS->Ty = resolveTypeRef(F.DeclType);
    FS->Owner = Sym;
    FS->IsStatic = F.IsStatic;
    FS->IsFinal = F.IsFinal;
    FS->Decl = &F;
    if (F.IsStatic)
      FS->Slot = Table.allocateStaticSlot();
    F.Symbol = FS.get();
    Sym->Fields.push_back(std::move(FS));
  }

  for (auto &M : Class.Methods) {
    auto MS = std::make_unique<MethodSymbol>();
    MS->Name = M->Name;
    MS->Owner = Sym;
    MS->IsStatic = M->IsStatic;
    MS->IsConstructor = M->IsConstructor;
    MS->RetTy = M->IsConstructor ? Types.getVoid()
                                 : resolveTypeRef(M->ReturnType);
    for (const ParamDecl &P : M->Params)
      MS->ParamTys.push_back(resolveTypeRef(P.DeclType));
    MS->Decl = M.get();

    for (const auto &Prev : Sym->Methods)
      if (Prev->Name == MS->Name && Prev->IsConstructor == MS->IsConstructor &&
          Prev->ParamTys == MS->ParamTys) {
        Diags.error(M->Loc, "duplicate method signature " + MS->signature());
        break;
      }

    Table.registerMethod(MS.get());
    M->Symbol = MS.get();
    Sym->Methods.push_back(std::move(MS));
  }
}

void Sema::computeLayout(ClassSymbol *Class) {
  std::string Err;
  if (!ClassTable::computeClassLayout(Class, &Err))
    Diags.error(Class->Decl ? Class->Decl->Loc : SourceLoc(), Err);
}

//===----------------------------------------------------------------------===//
// Type utilities
//===----------------------------------------------------------------------===//

Type *Sema::resolveTypeRef(const TypeRef &Ref) {
  Type *Base = nullptr;
  switch (Ref.K) {
  case TypeRef::Kind::Prim:
    Base = Types.getPrim(Ref.Prim);
    break;
  case TypeRef::Kind::Named: {
    ClassSymbol *Class = Table.lookup(Ref.Name);
    if (!Class) {
      Diags.error(Ref.Loc, "unknown type '" + Ref.Name + "'");
      return Types.getError();
    }
    Base = Types.getClass(Class);
    break;
  }
  case TypeRef::Kind::Void:
    if (Ref.ArrayDims != 0) {
      Diags.error(Ref.Loc, "array of void is not a type");
      return Types.getError();
    }
    return Types.getVoid();
  }
  for (unsigned I = 0; I != Ref.ArrayDims; ++I)
    Base = Types.getArray(Base);
  return Base;
}

bool Sema::isAssignable(Type *To, Type *From) const {
  if (To->isError() || From->isError())
    return true; // Avoid cascading diagnostics.
  if (To == From)
    return true;
  // Numeric widening: char -> int -> double.
  if (To->isInt() && From->isChar())
    return true;
  if (To->isDouble() && (From->isInt() || From->isChar()))
    return true;
  // null literal to any reference type.
  if (From->isNull() && (To->isClass() || To->isArray()))
    return true;
  // Reference widening.
  if (To->isClass() && From->isClass())
    return From->getClassSymbol()->isSubclassOf(To->getClassSymbol());
  if (To->isClass() && From->isArray())
    return To->getClassSymbol()->Super == nullptr; // Only Object.
  return false;
}

void Sema::coerce(ExprPtr &E, Type *To, const char *Context) {
  Type *From = E->Ty;
  assert(From && "coercing an unchecked expression");
  if (From == To || From->isError() || To->isError())
    return;
  if (!isAssignable(To, From)) {
    Diags.error(E->Loc, std::string("cannot convert '") + From->getName() +
                            "' to '" + To->getName() + "' " + Context);
    E->Ty = Types.getError();
    return;
  }
  // Reference widening and null are representation-free; only mark numeric
  // conversions, which need real instructions.
  CastLowering Lowering;
  if (From->isNull() || From->isRef())
    Lowering = CastLowering::RefWiden;
  else if (To->isDouble())
    Lowering = CastLowering::IntToDouble; // char widens via int first.
  else
    Lowering = CastLowering::CharToInt;
  SourceLoc Loc = E->Loc;
  TypeRef Dummy; // Implicit casts have no syntactic type reference.
  auto Cast = std::make_unique<CastExpr>(Dummy, std::move(E), Loc);
  Cast->Lowering = Lowering;
  Cast->Ty = To;
  E = std::move(Cast);
}

Type *Sema::promoteNumeric(ExprPtr &A, ExprPtr &B, SourceLoc Loc) {
  Type *TA = A->Ty, *TB = B->Ty;
  if (TA->isError() || TB->isError())
    return Types.getError();
  if (!TA->isNumeric() || !TB->isNumeric()) {
    Diags.error(Loc, "operands of arithmetic operator must be numeric (got '" +
                         TA->getName() + "' and '" + TB->getName() + "')");
    return Types.getError();
  }
  Type *Result =
      (TA->isDouble() || TB->isDouble()) ? Types.getDouble() : Types.getInt();
  coerce(A, Result, "in arithmetic promotion");
  coerce(B, Result, "in arithmetic promotion");
  return Result;
}

CastLowering Sema::classifyCast(Type *From, Type *To, SourceLoc Loc) {
  if (From->isError() || To->isError() || From == To)
    return CastLowering::Identity;
  if (From->isNumeric() && To->isNumeric()) {
    if (To->isDouble())
      return CastLowering::IntToDouble; // int/char -> double.
    if (To->isInt())
      return From->isDouble() ? CastLowering::DoubleToInt
                              : CastLowering::CharToInt;
    // To char.
    return From->isDouble() ? CastLowering::DoubleToChar
                            : CastLowering::IntToChar;
  }
  if (From->isRef() && (To->isClass() || To->isArray())) {
    if (isAssignable(To, From))
      return CastLowering::RefWiden;
    if (isAssignable(From, To))
      return CastLowering::RefNarrow;
    Diags.error(Loc, "cast between unrelated types '" + From->getName() +
                         "' and '" + To->getName() + "'");
    return CastLowering::Identity;
  }
  Diags.error(Loc, "invalid cast from '" + From->getName() + "' to '" +
                       To->getName() + "'");
  return CastLowering::Identity;
}

//===----------------------------------------------------------------------===//
// Scopes
//===----------------------------------------------------------------------===//

LocalSymbol *Sema::lookupLocal(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It)
    for (LocalSymbol *L : *It)
      if (L->Name == Name)
        return L;
  return nullptr;
}

LocalSymbol *Sema::declareLocal(const std::string &Name, Type *Ty,
                                SourceLoc Loc, bool IsParam) {
  if (lookupLocal(Name))
    Diags.error(Loc, "redeclaration of local variable '" + Name + "'");
  auto L = std::make_unique<LocalSymbol>();
  L->Name = Name;
  L->Ty = Ty;
  L->Loc = Loc;
  L->IsParam = IsParam;
  L->Index = static_cast<unsigned>(CurMethodDecl->Locals.size());
  LocalSymbol *Raw = L.get();
  CurMethodDecl->Locals.push_back(std::move(L));
  Scopes.back().push_back(Raw);
  return Raw;
}

//===----------------------------------------------------------------------===//
// Bodies
//===----------------------------------------------------------------------===//

void Sema::checkClassBodies(ClassDecl &Class) {
  CurClass = Class.Symbol;
  for (FieldDecl &F : Class.Fields)
    checkFieldInit(Class, F);
  for (auto &M : Class.Methods)
    checkMethodBody(Class, *M);
  CurClass = nullptr;
}

void Sema::checkFieldInit(ClassDecl &Class, FieldDecl &Field) {
  if (!Field.Init || !Field.Symbol)
    return;
  CurMethod = nullptr;
  // Instance initializers may use `this` implicitly; we check them in a
  // pseudo-constructor context. Static initializers must be constant.
  MethodDecl Dummy;
  Dummy.IsStatic = Field.IsStatic;
  Dummy.IsConstructor = !Field.IsStatic;
  CurMethodDecl = &Dummy;
  Scopes.push_back({});
  checkExpr(Field.Init);
  coerce(Field.Init, Field.Symbol->Ty, "in field initializer");
  if (Field.IsStatic && !isConstantExpr(*Field.Init))
    Diags.error(Field.Loc,
                "static field initializer must be a constant expression");
  Scopes.pop_back();
  CurMethodDecl = nullptr;
}

void Sema::checkMethodBody(ClassDecl &Class, MethodDecl &Method) {
  if (!Method.Symbol)
    return;
  CurMethod = Method.Symbol;
  CurMethodDecl = &Method;
  LoopDepth = 0;
  Scopes.clear();
  Scopes.push_back({});

  for (size_t I = 0; I != Method.Params.size(); ++I) {
    ParamDecl &P = Method.Params[I];
    P.Symbol = declareLocal(P.Name, Method.Symbol->ParamTys[I], P.Loc,
                            /*IsParam=*/true);
  }

  checkBlock(*Method.Body);

  if (!Method.Symbol->RetTy->isVoid() && !alwaysReturns(*Method.Body))
    Diags.error(Method.Loc, "method '" + Method.Symbol->signature() +
                                "' may fall off the end without returning");

  Scopes.pop_back();
  CurMethod = nullptr;
  CurMethodDecl = nullptr;
}

void Sema::checkBlock(BlockStmt &B) {
  Scopes.push_back({});
  for (StmtPtr &S : B.Stmts)
    checkStmt(S);
  Scopes.pop_back();
}

void Sema::checkStmt(StmtPtr &S) {
  switch (S->Kind) {
  case StmtKind::Block:
    checkBlock(static_cast<BlockStmt &>(*S));
    return;
  case StmtKind::VarDecl: {
    auto &V = static_cast<VarDeclStmt &>(*S);
    Type *Ty = resolveTypeRef(V.DeclType);
    if (Ty->isVoid()) {
      Diags.error(V.Loc, "variable cannot have type 'void'");
      Ty = Types.getError();
    }
    if (V.Init) {
      checkExpr(V.Init);
      coerce(V.Init, Ty, "in initialization");
    }
    V.Symbol = declareLocal(V.Name, Ty, V.Loc, /*IsParam=*/false);
    return;
  }
  case StmtKind::Expr: {
    auto &E = static_cast<ExprStmt &>(*S);
    checkExpr(E.E);
    return;
  }
  case StmtKind::If: {
    auto &I = static_cast<IfStmt &>(*S);
    checkExpr(I.Cond);
    coerce(I.Cond, Types.getBoolean(), "in if condition");
    checkStmt(I.Then);
    if (I.Else)
      checkStmt(I.Else);
    return;
  }
  case StmtKind::While: {
    auto &W = static_cast<WhileStmt &>(*S);
    checkExpr(W.Cond);
    coerce(W.Cond, Types.getBoolean(), "in while condition");
    ++LoopDepth;
    checkStmt(W.Body);
    --LoopDepth;
    return;
  }
  case StmtKind::DoWhile: {
    auto &W = static_cast<DoWhileStmt &>(*S);
    ++LoopDepth;
    checkStmt(W.Body);
    --LoopDepth;
    checkExpr(W.Cond);
    coerce(W.Cond, Types.getBoolean(), "in do-while condition");
    return;
  }
  case StmtKind::For: {
    auto &F = static_cast<ForStmt &>(*S);
    Scopes.push_back({}); // The init declaration scopes over the loop.
    if (F.Init)
      checkStmt(F.Init);
    if (F.Cond) {
      checkExpr(F.Cond);
      coerce(F.Cond, Types.getBoolean(), "in for condition");
    }
    if (F.Update)
      checkExpr(F.Update);
    ++LoopDepth;
    checkStmt(F.Body);
    --LoopDepth;
    Scopes.pop_back();
    return;
  }
  case StmtKind::Return: {
    auto &R = static_cast<ReturnStmt &>(*S);
    Type *Expected = CurMethod ? CurMethod->RetTy : Types.getVoid();
    if (R.Value) {
      if (Expected->isVoid()) {
        Diags.error(R.Loc, "void method cannot return a value");
        checkExpr(R.Value);
        return;
      }
      checkExpr(R.Value);
      coerce(R.Value, Expected, "in return statement");
    } else if (!Expected->isVoid()) {
      Diags.error(R.Loc, "non-void method must return a value");
    }
    return;
  }
  case StmtKind::Break:
    if (LoopDepth == 0)
      Diags.error(S->Loc, "'break' outside of a loop");
    return;
  case StmtKind::Continue:
    if (LoopDepth == 0)
      Diags.error(S->Loc, "'continue' outside of a loop");
    return;
  case StmtKind::Try: {
    auto &T = static_cast<TryStmt &>(*S);
    checkStmt(T.Body);
    checkStmt(T.Handler);
    return;
  }
  case StmtKind::Empty:
    return;
  }
}

//===----------------------------------------------------------------------===//
// Control-flow predicates
//===----------------------------------------------------------------------===//

bool Sema::containsLoopBreak(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Break:
    return true;
  case StmtKind::Block: {
    const auto &B = static_cast<const BlockStmt &>(S);
    for (const StmtPtr &Child : B.Stmts)
      if (containsLoopBreak(*Child))
        return true;
    return false;
  }
  case StmtKind::If: {
    const auto &I = static_cast<const IfStmt &>(S);
    return containsLoopBreak(*I.Then) || (I.Else && containsLoopBreak(*I.Else));
  }
  case StmtKind::Try: {
    const auto &T = static_cast<const TryStmt &>(S);
    return containsLoopBreak(*T.Body) || containsLoopBreak(*T.Handler);
  }
  // Breaks inside nested loops bind to those loops.
  case StmtKind::While:
  case StmtKind::DoWhile:
  case StmtKind::For:
  default:
    return false;
  }
}

bool Sema::alwaysReturns(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Return:
    return true;
  case StmtKind::Block: {
    const auto &B = static_cast<const BlockStmt &>(S);
    for (const StmtPtr &Child : B.Stmts)
      if (alwaysReturns(*Child))
        return true;
    return false;
  }
  case StmtKind::If: {
    const auto &I = static_cast<const IfStmt &>(S);
    return I.Else && alwaysReturns(*I.Then) && alwaysReturns(*I.Else);
  }
  case StmtKind::While: {
    // `while (true)` without a break never falls through.
    const auto &W = static_cast<const WhileStmt &>(S);
    if (W.Cond->Kind == ExprKind::BoolLiteral &&
        static_cast<const BoolLiteralExpr &>(*W.Cond).Value)
      return !containsLoopBreak(*W.Body);
    return false;
  }
  case StmtKind::For: {
    const auto &F = static_cast<const ForStmt &>(S);
    if (!F.Cond)
      return !containsLoopBreak(*F.Body);
    return false;
  }
  case StmtKind::Try: {
    // An exception may transfer control to the handler at any point, so
    // both the body and the handler must return on all paths.
    const auto &T = static_cast<const TryStmt &>(S);
    return alwaysReturns(*T.Body) && alwaysReturns(*T.Handler);
  }
  case StmtKind::DoWhile:
  default:
    return false;
  }
}

bool Sema::isConstantExpr(const Expr &E) const {
  switch (E.Kind) {
  case ExprKind::IntLiteral:
  case ExprKind::DoubleLiteral:
  case ExprKind::BoolLiteral:
  case ExprKind::CharLiteral:
  case ExprKind::NullLiteral:
    return true;
  case ExprKind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(E);
    return (U.Op == UnaryOp::Neg || U.Op == UnaryOp::Not ||
            U.Op == UnaryOp::BitNot) &&
           isConstantExpr(*U.Operand);
  }
  case ExprKind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(E);
    return isConstantExpr(*B.Lhs) && isConstantExpr(*B.Rhs);
  }
  case ExprKind::Cast:
    return isConstantExpr(*static_cast<const CastExpr &>(E).Operand);
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Type *Sema::checkExpr(ExprPtr &E) {
  Type *Ty = Types.getError();
  switch (E->Kind) {
  case ExprKind::IntLiteral:
    Ty = Types.getInt();
    break;
  case ExprKind::DoubleLiteral:
    Ty = Types.getDouble();
    break;
  case ExprKind::BoolLiteral:
    Ty = Types.getBoolean();
    break;
  case ExprKind::CharLiteral:
    Ty = Types.getChar();
    break;
  case ExprKind::StringLiteral:
    Ty = Types.getArray(Types.getChar());
    break;
  case ExprKind::NullLiteral:
    Ty = Types.getNull();
    break;
  case ExprKind::Name:
    Ty = checkName(static_cast<NameExpr &>(*E));
    break;
  case ExprKind::This:
    if (!CurMethodDecl || CurMethodDecl->IsStatic) {
      Diags.error(E->Loc, "'this' cannot be used in a static context");
      Ty = Types.getError();
    } else {
      Ty = Types.getClass(CurClass);
    }
    break;
  case ExprKind::FieldAccess:
    Ty = checkFieldAccess(static_cast<FieldAccessExpr &>(*E));
    break;
  case ExprKind::Index:
    Ty = checkIndex(static_cast<IndexExpr &>(*E));
    break;
  case ExprKind::Call:
    Ty = checkCall(static_cast<CallExpr &>(*E));
    break;
  case ExprKind::NewObject:
    Ty = checkNewObject(static_cast<NewObjectExpr &>(*E));
    break;
  case ExprKind::NewArray: {
    auto &N = static_cast<NewArrayExpr &>(*E);
    Type *Elem = resolveTypeRef(N.ElemType);
    checkExpr(N.Length);
    coerce(N.Length, Types.getInt(), "as array length");
    Ty = Elem->isError() ? Elem : Types.getArray(Elem);
    break;
  }
  case ExprKind::Unary:
    Ty = checkUnary(static_cast<UnaryExpr &>(*E));
    break;
  case ExprKind::Binary:
    Ty = checkBinary(static_cast<BinaryExpr &>(*E));
    break;
  case ExprKind::Assign:
    Ty = checkAssign(static_cast<AssignExpr &>(*E));
    break;
  case ExprKind::Cast: {
    auto &C = static_cast<CastExpr &>(*E);
    Type *From = checkExpr(C.Operand);
    Type *To = resolveTypeRef(C.TargetType);
    C.Lowering = classifyCast(From, To, C.Loc);
    Ty = To;
    break;
  }
  case ExprKind::Instanceof: {
    auto &I = static_cast<InstanceofExpr &>(*E);
    Type *From = checkExpr(I.Operand);
    Type *Target = resolveTypeRef(I.TargetType);
    if (!From->isError() && !From->isRef())
      Diags.error(I.Loc, "instanceof requires a reference operand");
    if (!Target->isError() && !Target->isClass() && !Target->isArray())
      Diags.error(I.Loc, "instanceof requires a reference target type");
    I.ResolvedTarget = Target;
    Ty = Types.getBoolean();
    break;
  }
  }
  E->Ty = Ty;
  return Ty;
}

Type *Sema::checkName(NameExpr &E) {
  if (LocalSymbol *L = lookupLocal(E.Name)) {
    E.Resolution = NameResolution::Local;
    E.ResolvedLocal = L;
    return L->Ty;
  }
  if (CurClass) {
    if (FieldSymbol *F = CurClass->findField(E.Name)) {
      if (F->IsStatic) {
        E.Resolution = NameResolution::StaticField;
      } else {
        if (CurMethodDecl && CurMethodDecl->IsStatic) {
          Diags.error(E.Loc, "instance field '" + E.Name +
                                 "' used in a static context");
          return Types.getError();
        }
        E.Resolution = NameResolution::FieldOfThis;
      }
      E.ResolvedField = F;
      return F->Ty;
    }
  }
  if (ClassSymbol *C = Table.lookup(E.Name)) {
    E.Resolution = NameResolution::ClassName;
    E.ResolvedClass = C;
    // A class name has no value type; it is only legal as the base of a
    // static member access or call, whose checkers set AllowClassName.
    if (!AllowClassName)
      Diags.error(E.Loc, "class name '" + E.Name + "' used as a value");
    return Types.getError();
  }
  Diags.error(E.Loc, "use of undeclared identifier '" + E.Name + "'");
  return Types.getError();
}

Type *Sema::checkFieldAccess(FieldAccessExpr &E) {
  // ClassName.staticField
  if (E.Base->Kind == ExprKind::Name) {
    auto &Base = static_cast<NameExpr &>(*E.Base);
    AllowClassName = true;
    checkExpr(E.Base);
    AllowClassName = false;
    if (Base.Resolution == NameResolution::ClassName) {
      FieldSymbol *F = Base.ResolvedClass->findField(E.Name);
      if (!F || !F->IsStatic) {
        Diags.error(E.Loc, "class '" + Base.ResolvedClass->Name +
                               "' has no static field '" + E.Name + "'");
        return Types.getError();
      }
      E.ResolvedField = F;
      return F->Ty;
    }
  } else {
    checkExpr(E.Base);
  }

  Type *BaseTy = E.Base->Ty;
  if (BaseTy->isError())
    return BaseTy;
  if (BaseTy->isArray()) {
    if (E.Name == "length") {
      E.IsArrayLength = true;
      return Types.getInt();
    }
    Diags.error(E.Loc, "array type has no field '" + E.Name + "'");
    return Types.getError();
  }
  if (!BaseTy->isClass()) {
    Diags.error(E.Loc, "member access on non-object type '" +
                           BaseTy->getName() + "'");
    return Types.getError();
  }
  FieldSymbol *F = BaseTy->getClassSymbol()->findField(E.Name);
  if (!F) {
    Diags.error(E.Loc, "class '" + BaseTy->getClassSymbol()->Name +
                           "' has no field '" + E.Name + "'");
    return Types.getError();
  }
  if (F->IsStatic) {
    Diags.error(E.Loc, "static field '" + E.Name +
                           "' accessed through an instance; use '" +
                           F->Owner->Name + "." + E.Name + "'");
    return Types.getError();
  }
  E.ResolvedField = F;
  return F->Ty;
}

Type *Sema::checkIndex(IndexExpr &E) {
  Type *BaseTy = checkExpr(E.Base);
  checkExpr(E.Index);
  coerce(E.Index, Types.getInt(), "as array index");
  if (BaseTy->isError())
    return BaseTy;
  if (!BaseTy->isArray()) {
    Diags.error(E.Loc, "subscripted value of type '" + BaseTy->getName() +
                           "' is not an array");
    return Types.getError();
  }
  return BaseTy->getElemType();
}

MethodSymbol *Sema::resolveOverload(std::vector<MethodSymbol *> Candidates,
                                    std::vector<ExprPtr> &Args,
                                    const std::string &Name, SourceLoc Loc) {
  // Drop signature duplicates, keeping the nearest (overriding) one.
  std::vector<MethodSymbol *> Unique;
  for (MethodSymbol *M : Candidates) {
    bool Shadowed = false;
    for (MethodSymbol *Seen : Unique)
      if (Seen->Name == M->Name && Seen->ParamTys == M->ParamTys)
        Shadowed = true;
    if (!Shadowed)
      Unique.push_back(M);
  }

  std::vector<MethodSymbol *> Applicable;
  for (MethodSymbol *M : Unique) {
    if (M->ParamTys.size() != Args.size())
      continue;
    bool Ok = true;
    for (size_t I = 0; I != Args.size(); ++I)
      if (!isAssignable(M->ParamTys[I], Args[I]->Ty))
        Ok = false;
    if (Ok)
      Applicable.push_back(M);
  }

  if (Applicable.empty()) {
    std::ostringstream OS;
    OS << "no applicable overload of '" << Name << "' for argument types (";
    for (size_t I = 0; I != Args.size(); ++I) {
      if (I)
        OS << ", ";
      OS << Args[I]->Ty->getName();
    }
    OS << ')';
    Diags.error(Loc, OS.str());
    return nullptr;
  }

  // Most specific: every parameter assignable to the other's parameter.
  auto MoreSpecific = [this](MethodSymbol *A, MethodSymbol *B) {
    for (size_t I = 0; I != A->ParamTys.size(); ++I)
      if (!isAssignable(B->ParamTys[I], A->ParamTys[I]))
        return false;
    return true;
  };
  MethodSymbol *Best = Applicable.front();
  for (MethodSymbol *M : Applicable)
    if (M != Best && MoreSpecific(M, Best))
      Best = M;
  for (MethodSymbol *M : Applicable)
    if (M != Best && !MoreSpecific(Best, M)) {
      Diags.error(Loc, "ambiguous call to overloaded '" + Name + "': " +
                           Best->signature() + " vs " + M->signature());
      return nullptr;
    }

  for (size_t I = 0; I != Args.size(); ++I)
    coerce(Args[I], Best->ParamTys[I], "in call argument");
  return Best;
}

Type *Sema::checkCall(CallExpr &E) {
  for (ExprPtr &Arg : E.Args)
    checkExpr(Arg);

  std::vector<MethodSymbol *> Candidates;

  if (!E.Base) {
    // Unqualified call: methods of the enclosing class chain.
    if (!CurClass) {
      Diags.error(E.Loc, "call outside of a class context");
      return Types.getError();
    }
    Candidates = CurClass->findMethods(E.Name);
    if (Candidates.empty()) {
      Diags.error(E.Loc, "unknown method '" + E.Name + "'");
      return Types.getError();
    }
    MethodSymbol *M = resolveOverload(Candidates, E.Args, E.Name, E.Loc);
    if (!M)
      return Types.getError();
    if (!M->IsStatic) {
      if (CurMethodDecl && CurMethodDecl->IsStatic) {
        Diags.error(E.Loc, "instance method '" + M->signature() +
                               "' called from a static context");
        return Types.getError();
      }
      E.ImplicitThis = true;
      E.Dispatch = DispatchKind::Virtual;
    } else {
      E.Dispatch = DispatchKind::Static;
      E.BaseClass = M->Owner;
    }
    E.ResolvedMethod = M;
    return M->RetTy;
  }

  // Qualified call. ClassName.f(...) is a static call.
  if (E.Base->Kind == ExprKind::Name) {
    auto &Base = static_cast<NameExpr &>(*E.Base);
    AllowClassName = true;
    checkExpr(E.Base);
    AllowClassName = false;
    if (Base.Resolution == NameResolution::ClassName) {
      ClassSymbol *Class = Base.ResolvedClass;
      Candidates = Class->findMethods(E.Name);
      std::erase_if(Candidates,
                    [](MethodSymbol *M) { return !M->IsStatic; });
      if (Candidates.empty()) {
        Diags.error(E.Loc, "class '" + Class->Name +
                               "' has no static method '" + E.Name + "'");
        return Types.getError();
      }
      MethodSymbol *M = resolveOverload(Candidates, E.Args, E.Name, E.Loc);
      if (!M)
        return Types.getError();
      E.ResolvedMethod = M;
      E.Dispatch = DispatchKind::Static;
      E.BaseClass = Class;
      return M->RetTy;
    }
  } else {
    checkExpr(E.Base);
  }

  Type *BaseTy = E.Base->Ty;
  if (BaseTy->isError())
    return BaseTy;
  if (!BaseTy->isClass()) {
    Diags.error(E.Loc, "method call on non-object type '" +
                           BaseTy->getName() + "'");
    return Types.getError();
  }
  Candidates = BaseTy->getClassSymbol()->findMethods(E.Name);
  std::erase_if(Candidates, [](MethodSymbol *M) { return M->IsStatic; });
  if (Candidates.empty()) {
    Diags.error(E.Loc, "class '" + BaseTy->getClassSymbol()->Name +
                           "' has no method '" + E.Name + "'");
    return Types.getError();
  }
  MethodSymbol *M = resolveOverload(Candidates, E.Args, E.Name, E.Loc);
  if (!M)
    return Types.getError();
  E.ResolvedMethod = M;
  E.Dispatch = DispatchKind::Virtual;
  return M->RetTy;
}

Type *Sema::checkNewObject(NewObjectExpr &E) {
  for (ExprPtr &Arg : E.Args)
    checkExpr(Arg);
  ClassSymbol *Class = Table.lookup(E.ClassName);
  if (!Class) {
    Diags.error(E.Loc, "unknown class '" + E.ClassName + "'");
    return Types.getError();
  }
  if (Class->IsBuiltin) {
    Diags.error(E.Loc, "cannot instantiate builtin class '" + E.ClassName +
                           "'");
    return Types.getError();
  }
  E.ResolvedClass = Class;
  std::vector<MethodSymbol *> Ctors = Class->findConstructors();
  if (Ctors.empty()) {
    if (!E.Args.empty())
      Diags.error(E.Loc, "class '" + E.ClassName +
                             "' has no constructors but arguments were given");
    return Types.getClass(Class);
  }
  MethodSymbol *Ctor = resolveOverload(Ctors, E.Args, E.ClassName, E.Loc);
  if (!Ctor)
    return Types.getError();
  E.ResolvedCtor = Ctor;
  return Types.getClass(Class);
}

void Sema::checkAssignableTarget(Expr &Target, SourceLoc Loc) {
  FieldSymbol *F = nullptr;
  if (Target.Kind == ExprKind::Name)
    F = static_cast<NameExpr &>(Target).ResolvedField;
  else if (Target.Kind == ExprKind::FieldAccess) {
    auto &FA = static_cast<FieldAccessExpr &>(Target);
    if (FA.IsArrayLength) {
      Diags.error(Loc, "array 'length' is read-only");
      return;
    }
    F = FA.ResolvedField;
  } else if (Target.Kind == ExprKind::Index) {
    return;
  } else {
    Diags.error(Loc, "expression is not assignable");
    return;
  }
  if (F && F->IsFinal) {
    bool InOwnersCtor = CurMethodDecl && CurMethodDecl->IsConstructor &&
                        CurClass == F->Owner;
    bool InFieldInit = CurMethod == nullptr; // Field-initializer context.
    if (!InOwnersCtor && !InFieldInit)
      Diags.error(Loc, "assignment to final field '" + F->Name + "'");
  }
}

Type *Sema::checkAssign(AssignExpr &E) {
  Type *TargetTy = checkExpr(E.Target);
  checkExpr(E.Value);
  checkAssignableTarget(*E.Target, E.Loc);
  if (TargetTy->isError())
    return TargetTy;

  if (E.Op == AssignExpr::OpKind::None) {
    coerce(E.Value, TargetTy, "in assignment");
    return TargetTy;
  }

  // Compound assignment: type as the expanded form target = target op value,
  // requiring the operator result to be assignable without narrowing.
  Type *ValueTy = E.Value->Ty;
  if (!TargetTy->isNumeric() || !ValueTy->isNumeric()) {
    Diags.error(E.Loc, "compound assignment requires numeric operands");
    return Types.getError();
  }
  Type *ResultTy = (TargetTy->isDouble() || ValueTy->isDouble())
                       ? Types.getDouble()
                       : Types.getInt();
  if (!isAssignable(TargetTy, ResultTy)) {
    Diags.error(E.Loc, "compound assignment would narrow '" +
                           ResultTy->getName() + "' to '" +
                           TargetTy->getName() + "'");
    return Types.getError();
  }
  coerce(E.Value, ResultTy, "in compound assignment");
  return TargetTy;
}

Type *Sema::checkUnary(UnaryExpr &E) {
  Type *Ty = checkExpr(E.Operand);
  if (Ty->isError())
    return Ty;
  switch (E.Op) {
  case UnaryOp::Neg:
    if (!Ty->isNumeric()) {
      Diags.error(E.Loc, "unary '-' requires a numeric operand");
      return Types.getError();
    }
    if (Ty->isChar()) {
      coerce(E.Operand, Types.getInt(), "in unary promotion");
      return Types.getInt();
    }
    return Ty;
  case UnaryOp::Not:
    if (!Ty->isBoolean()) {
      Diags.error(E.Loc, "unary '!' requires a boolean operand");
      return Types.getError();
    }
    return Ty;
  case UnaryOp::BitNot:
    if (!Ty->isInt() && !Ty->isChar()) {
      Diags.error(E.Loc, "unary '~' requires an integer operand");
      return Types.getError();
    }
    coerce(E.Operand, Types.getInt(), "in unary promotion");
    return Types.getInt();
  case UnaryOp::PreInc:
  case UnaryOp::PreDec:
  case UnaryOp::PostInc:
  case UnaryOp::PostDec:
    if (!Ty->isNumeric()) {
      Diags.error(E.Loc, "'++'/'--' require a numeric operand");
      return Types.getError();
    }
    checkAssignableTarget(*E.Operand, E.Loc);
    return Ty;
  }
  return Types.getError();
}

Type *Sema::checkBinary(BinaryExpr &E) {
  Type *L = checkExpr(E.Lhs);
  Type *R = checkExpr(E.Rhs);
  if (L->isError() || R->isError())
    return Types.getError();

  switch (E.Op) {
  case BinaryOp::Add:
  case BinaryOp::Sub:
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Rem:
    return promoteNumeric(E.Lhs, E.Rhs, E.Loc);

  case BinaryOp::BitAnd:
  case BinaryOp::BitOr:
  case BinaryOp::BitXor:
  case BinaryOp::Shl:
  case BinaryOp::Shr:
    if ((!L->isInt() && !L->isChar()) || (!R->isInt() && !R->isChar())) {
      Diags.error(E.Loc, "bitwise operator requires integer operands");
      return Types.getError();
    }
    coerce(E.Lhs, Types.getInt(), "in bitwise operation");
    coerce(E.Rhs, Types.getInt(), "in bitwise operation");
    return Types.getInt();

  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge:
    if (promoteNumeric(E.Lhs, E.Rhs, E.Loc)->isError())
      return Types.getError();
    return Types.getBoolean();

  case BinaryOp::Eq:
  case BinaryOp::Ne:
    if (L->isNumeric() && R->isNumeric()) {
      if (promoteNumeric(E.Lhs, E.Rhs, E.Loc)->isError())
        return Types.getError();
      return Types.getBoolean();
    }
    if (L->isBoolean() && R->isBoolean())
      return Types.getBoolean();
    if (L->isRef() && R->isRef()) {
      if (!isAssignable(L, R) && !isAssignable(R, L)) {
        Diags.error(E.Loc, "comparison of unrelated reference types '" +
                               L->getName() + "' and '" + R->getName() + "'");
        return Types.getError();
      }
      return Types.getBoolean();
    }
    Diags.error(E.Loc, "invalid operands to equality comparison ('" +
                           L->getName() + "' and '" + R->getName() + "')");
    return Types.getError();

  case BinaryOp::LAnd:
  case BinaryOp::LOr:
    coerce(E.Lhs, Types.getBoolean(), "in logical operation");
    coerce(E.Rhs, Types.getBoolean(), "in logical operation");
    return Types.getBoolean();
  }
  return Types.getError();
}
