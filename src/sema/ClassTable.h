//===- sema/ClassTable.h - Program-wide symbol table ----------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ClassTable owns all class symbols (builtins + user classes) and
/// computes object layouts and vtables. It is shared by sema, both code
/// generators, the SafeTSA verifier, and the evaluators.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SEMA_CLASSTABLE_H
#define SAFETSA_SEMA_CLASSTABLE_H

#include "sema/Symbols.h"
#include "support/Diagnostics.h"

#include <unordered_map>

namespace safetsa {

/// Owns every ClassSymbol in a compilation, including the implicit
/// builtins: Object (the root), IO (native printing), Math (native math).
class ClassTable {
public:
  /// Creates the builtin classes. \p Types supplies canonical types for
  /// the native method signatures.
  explicit ClassTable(TypeContext &Types);

  ClassSymbol *getObjectClass() { return ObjectClass; }

  /// Looks a class up by name; null when absent.
  ClassSymbol *lookup(const std::string &Name) const {
    auto It = ByName.find(Name);
    return It == ByName.end() ? nullptr : It->second;
  }

  /// Registers a new user class; reports and returns null on name clash.
  ClassSymbol *declareClass(const std::string &Name, ClassDecl *Decl,
                            DiagnosticEngine &Diags);

  const std::vector<std::unique_ptr<ClassSymbol>> &getClasses() const {
    return Classes;
  }

  /// All methods in declaration order, indexed by MethodSymbol::GlobalId.
  const std::vector<MethodSymbol *> &getAllMethods() const {
    return AllMethods;
  }

  /// Assigns GlobalIds and records \p M in the method index.
  void registerMethod(MethodSymbol *M) {
    M->GlobalId = static_cast<unsigned>(AllMethods.size());
    AllMethods.push_back(M);
  }

  /// Total number of static-field slots allocated so far.
  unsigned getNumStaticSlots() const { return NumStaticSlots; }
  unsigned allocateStaticSlot() { return NumStaticSlots++; }

  /// Computes InstanceLayout and VTable for \p Class (and, recursively,
  /// its superclasses). Returns false via \p Err on an illegal override
  /// (an override that changes the return type). Shared by sema and the
  /// mobile-code decoder so producer and consumer always agree on object
  /// layouts and dispatch-table slots.
  static bool computeClassLayout(ClassSymbol *Class, std::string *Err);

private:
  ClassSymbol *addBuiltinClass(const std::string &Name, ClassSymbol *Super);
  MethodSymbol *addNativeMethod(ClassSymbol *Class, const std::string &Name,
                                NativeMethod Native, Type *RetTy,
                                std::vector<Type *> ParamTys);

  std::vector<std::unique_ptr<ClassSymbol>> Classes;
  std::unordered_map<std::string, ClassSymbol *> ByName;
  std::vector<MethodSymbol *> AllMethods;
  ClassSymbol *ObjectClass = nullptr;
  unsigned NumStaticSlots = 0;
};

} // namespace safetsa

#endif // SAFETSA_SEMA_CLASSTABLE_H
