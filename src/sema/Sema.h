//===- sema/Sema.h - MJ semantic analysis ---------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for MJ: class/member declaration, inheritance and
/// vtable layout, type checking, overload resolution, and insertion of
/// implicit conversions as explicit CastExpr nodes (so that both code
/// generators see a fully-resolved, fully-typed tree — the paper's
/// requirement that the *producer* resolves overloading and typing).
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SEMA_SEMA_H
#define SAFETSA_SEMA_SEMA_H

#include "ast/AST.h"
#include "sema/ClassTable.h"
#include "support/Diagnostics.h"

namespace safetsa {

/// Runs semantic analysis over a parsed Program, annotating the AST in
/// place. All symbol objects live in the ClassTable / MethodDecls, so the
/// Sema object itself may be discarded after run().
class Sema {
public:
  Sema(TypeContext &Types, ClassTable &Table, DiagnosticEngine &Diags)
      : Types(Types), Table(Table), Diags(Diags) {}

  /// Returns true when the program is well-typed (no errors reported).
  bool run(Program &P);

private:
  // Phases.
  void declareClasses(Program &P);
  void resolveSupers(Program &P);
  void declareMembers(ClassDecl &Class);
  void computeLayout(ClassSymbol *Class);
  void checkClassBodies(ClassDecl &Class);
  void checkMethodBody(ClassDecl &Class, MethodDecl &Method);
  void checkFieldInit(ClassDecl &Class, FieldDecl &Field);

  // Type utilities.
  Type *resolveTypeRef(const TypeRef &Ref);
  bool isAssignable(Type *To, Type *From) const;
  /// Wraps \p E in an explicit conversion to \p To when needed; reports an
  /// error if no implicit conversion exists.
  void coerce(ExprPtr &E, Type *To, const char *Context);
  /// Usual binary numeric promotion; returns the promoted type (int or
  /// double) and coerces both operands, or Error on non-numeric input.
  Type *promoteNumeric(ExprPtr &A, ExprPtr &B, SourceLoc Loc);
  CastLowering classifyCast(Type *From, Type *To, SourceLoc Loc);

  // Statements / expressions.
  void checkStmt(StmtPtr &S);
  void checkBlock(BlockStmt &B);
  Type *checkExpr(ExprPtr &E);
  Type *checkName(NameExpr &E);
  Type *checkFieldAccess(FieldAccessExpr &E);
  Type *checkIndex(IndexExpr &E);
  Type *checkCall(CallExpr &E);
  Type *checkNewObject(NewObjectExpr &E);
  Type *checkUnary(UnaryExpr &E);
  Type *checkBinary(BinaryExpr &E);
  Type *checkAssign(AssignExpr &E);

  /// Selects the unique most-specific applicable overload; reports and
  /// returns null otherwise. Coerces arguments on success.
  MethodSymbol *resolveOverload(std::vector<MethodSymbol *> Candidates,
                                std::vector<ExprPtr> &Args,
                                const std::string &Name, SourceLoc Loc);

  /// True if execution of \p S cannot fall through (all paths return).
  static bool alwaysReturns(const Stmt &S);
  /// True when \p S contains a break not enclosed in a nested loop of S.
  static bool containsLoopBreak(const Stmt &S);
  /// Legal static-field initializer: literals and operations on literals.
  bool isConstantExpr(const Expr &E) const;

  /// Checks that an lvalue expression may be assigned (final rules etc.).
  void checkAssignableTarget(Expr &Target, SourceLoc Loc);

  // Scope handling.
  LocalSymbol *lookupLocal(const std::string &Name) const;
  LocalSymbol *declareLocal(const std::string &Name, Type *Ty, SourceLoc Loc,
                            bool IsParam);

  TypeContext &Types;
  ClassTable &Table;
  DiagnosticEngine &Diags;

  // Per-method state.
  ClassSymbol *CurClass = nullptr;
  MethodSymbol *CurMethod = nullptr;
  MethodDecl *CurMethodDecl = nullptr;
  std::vector<std::vector<LocalSymbol *>> Scopes;
  unsigned LoopDepth = 0;
  /// Set while checking the base of a member access/call, where a bare
  /// class name is legal.
  bool AllowClassName = false;
};

} // namespace safetsa

#endif // SAFETSA_SEMA_SEMA_H
