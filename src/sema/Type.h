//===- sema/Type.h - Canonical MJ types -----------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical source-level types, interned by TypeContext so Type* equality
/// is type equality. These source types later map 1:1 onto entries of the
/// SafeTSA type table (which adds the derived safe-ref planes).
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SEMA_TYPE_H
#define SAFETSA_SEMA_TYPE_H

#include "ast/AST.h"

#include <map>
#include <memory>
#include <string>
#include <unordered_map>

namespace safetsa {

struct ClassSymbol;

enum class TypeKind : uint8_t { Prim, Class, Array, Null, Void, Error };

/// A canonical type. Instances are owned and uniqued by TypeContext.
class Type {
public:
  const TypeKind Kind;

  bool isPrim() const { return Kind == TypeKind::Prim; }
  bool isPrim(PrimTypeKind K) const {
    return Kind == TypeKind::Prim && PrimK == K;
  }
  bool isInt() const { return isPrim(PrimTypeKind::Int); }
  bool isBoolean() const { return isPrim(PrimTypeKind::Boolean); }
  bool isDouble() const { return isPrim(PrimTypeKind::Double); }
  bool isChar() const { return isPrim(PrimTypeKind::Char); }
  bool isClass() const { return Kind == TypeKind::Class; }
  bool isArray() const { return Kind == TypeKind::Array; }
  bool isNull() const { return Kind == TypeKind::Null; }
  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isError() const { return Kind == TypeKind::Error; }
  /// Reference types: classes, arrays, and the null type.
  bool isRef() const { return isClass() || isArray() || isNull(); }
  /// int, double, or char (the arithmetic types).
  bool isNumeric() const { return isInt() || isDouble() || isChar(); }

  PrimTypeKind getPrimKind() const {
    assert(isPrim() && "not a primitive type");
    return PrimK;
  }
  ClassSymbol *getClassSymbol() const {
    assert(isClass() && "not a class type");
    return Class;
  }
  Type *getElemType() const {
    assert(isArray() && "not an array type");
    return Elem;
  }

  /// Human-readable spelling ("int", "Foo", "double[]").
  std::string getName() const;

private:
  friend class TypeContext;
  explicit Type(TypeKind Kind) : Kind(Kind) {}

  PrimTypeKind PrimK = PrimTypeKind::Int;
  ClassSymbol *Class = nullptr;
  Type *Elem = nullptr;
};

/// Owns and uniques all Types for one compilation.
class TypeContext {
public:
  TypeContext();

  Type *getInt() { return &IntTy; }
  Type *getBoolean() { return &BoolTy; }
  Type *getDouble() { return &DoubleTy; }
  Type *getChar() { return &CharTy; }
  Type *getNull() { return &NullTy; }
  Type *getVoid() { return &VoidTy; }
  Type *getError() { return &ErrorTy; }
  Type *getPrim(PrimTypeKind K);

  Type *getClass(ClassSymbol *Class);
  Type *getArray(Type *Elem);

private:
  Type IntTy, BoolTy, DoubleTy, CharTy, NullTy, VoidTy, ErrorTy;
  std::unordered_map<ClassSymbol *, std::unique_ptr<Type>> ClassTypes;
  std::map<Type *, std::unique_ptr<Type>> ArrayTypes;
};

} // namespace safetsa

#endif // SAFETSA_SEMA_TYPE_H
