//===- sema/ClassTable.cpp ------------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sema/ClassTable.h"

#include <sstream>

using namespace safetsa;

std::string Type::getName() const {
  switch (Kind) {
  case TypeKind::Prim:
    switch (PrimK) {
    case PrimTypeKind::Int:
      return "int";
    case PrimTypeKind::Boolean:
      return "boolean";
    case PrimTypeKind::Double:
      return "double";
    case PrimTypeKind::Char:
      return "char";
    }
    return "prim";
  case TypeKind::Class:
    return Class->Name;
  case TypeKind::Array:
    return Elem->getName() + "[]";
  case TypeKind::Null:
    return "null";
  case TypeKind::Void:
    return "void";
  case TypeKind::Error:
    return "<error>";
  }
  return "<type>";
}

TypeContext::TypeContext()
    : IntTy(TypeKind::Prim), BoolTy(TypeKind::Prim), DoubleTy(TypeKind::Prim),
      CharTy(TypeKind::Prim), NullTy(TypeKind::Null), VoidTy(TypeKind::Void),
      ErrorTy(TypeKind::Error) {
  IntTy.PrimK = PrimTypeKind::Int;
  BoolTy.PrimK = PrimTypeKind::Boolean;
  DoubleTy.PrimK = PrimTypeKind::Double;
  CharTy.PrimK = PrimTypeKind::Char;
}

Type *TypeContext::getPrim(PrimTypeKind K) {
  switch (K) {
  case PrimTypeKind::Int:
    return &IntTy;
  case PrimTypeKind::Boolean:
    return &BoolTy;
  case PrimTypeKind::Double:
    return &DoubleTy;
  case PrimTypeKind::Char:
    return &CharTy;
  }
  return &ErrorTy;
}

Type *TypeContext::getClass(ClassSymbol *Class) {
  assert(Class && "null class symbol");
  auto It = ClassTypes.find(Class);
  if (It != ClassTypes.end())
    return It->second.get();
  auto Ty = std::unique_ptr<Type>(new Type(TypeKind::Class));
  Ty->Class = Class;
  Type *Raw = Ty.get();
  ClassTypes.emplace(Class, std::move(Ty));
  return Raw;
}

Type *TypeContext::getArray(Type *Elem) {
  assert(Elem && !Elem->isVoid() && !Elem->isNull() && "bad element type");
  auto It = ArrayTypes.find(Elem);
  if (It != ArrayTypes.end())
    return It->second.get();
  auto Ty = std::unique_ptr<Type>(new Type(TypeKind::Array));
  Ty->Elem = Elem;
  Type *Raw = Ty.get();
  ArrayTypes.emplace(Elem, std::move(Ty));
  return Raw;
}

std::string MethodSymbol::signature() const {
  std::ostringstream OS;
  if (Owner)
    OS << Owner->Name << '.';
  OS << Name << '(';
  for (size_t I = 0; I != ParamTys.size(); ++I) {
    if (I)
      OS << ", ";
    OS << ParamTys[I]->getName();
  }
  OS << ')';
  return OS.str();
}

std::vector<MethodSymbol *>
ClassSymbol::findMethods(const std::string &Name) const {
  std::vector<MethodSymbol *> Result;
  for (const ClassSymbol *C = this; C; C = C->Super)
    for (const auto &M : C->Methods)
      if (!M->IsConstructor && M->Name == Name)
        Result.push_back(M.get());
  return Result;
}

std::vector<MethodSymbol *> ClassSymbol::findConstructors() const {
  std::vector<MethodSymbol *> Result;
  for (const auto &M : Methods)
    if (M->IsConstructor)
      Result.push_back(M.get());
  return Result;
}

ClassSymbol *ClassTable::addBuiltinClass(const std::string &Name,
                                         ClassSymbol *Super) {
  auto Class = std::make_unique<ClassSymbol>();
  Class->Name = Name;
  Class->Super = Super;
  Class->IsBuiltin = true;
  Class->Id = static_cast<unsigned>(Classes.size());
  ClassSymbol *Raw = Class.get();
  ByName.emplace(Name, Raw);
  Classes.push_back(std::move(Class));
  return Raw;
}

MethodSymbol *ClassTable::addNativeMethod(ClassSymbol *Class,
                                          const std::string &Name,
                                          NativeMethod Native, Type *RetTy,
                                          std::vector<Type *> ParamTys) {
  auto M = std::make_unique<MethodSymbol>();
  M->Name = Name;
  M->Owner = Class;
  M->RetTy = RetTy;
  M->ParamTys = std::move(ParamTys);
  M->IsStatic = true;
  M->Native = Native;
  MethodSymbol *Raw = M.get();
  registerMethod(Raw);
  Class->Methods.push_back(std::move(M));
  return Raw;
}

ClassTable::ClassTable(TypeContext &Types) {
  ObjectClass = addBuiltinClass("Object", nullptr);

  Type *IntTy = Types.getInt();
  Type *DoubleTy = Types.getDouble();
  Type *CharTy = Types.getChar();
  Type *BoolTy = Types.getBoolean();
  Type *VoidTy = Types.getVoid();
  Type *CharArrTy = Types.getArray(CharTy);

  // IO: the host environment's console, imported implicitly.
  ClassSymbol *IO = addBuiltinClass("IO", ObjectClass);
  addNativeMethod(IO, "printInt", NativeMethod::PrintInt, VoidTy, {IntTy});
  addNativeMethod(IO, "printDouble", NativeMethod::PrintDouble, VoidTy,
                  {DoubleTy});
  addNativeMethod(IO, "printChar", NativeMethod::PrintChar, VoidTy, {CharTy});
  addNativeMethod(IO, "printBool", NativeMethod::PrintBool, VoidTy, {BoolTy});
  addNativeMethod(IO, "printStr", NativeMethod::PrintStr, VoidTy, {CharArrTy});
  addNativeMethod(IO, "println", NativeMethod::Println, VoidTy, {});

  // Math: enough of java.lang.Math for the Linpack-style benchmarks.
  ClassSymbol *Math = addBuiltinClass("Math", ObjectClass);
  addNativeMethod(Math, "sqrt", NativeMethod::Sqrt, DoubleTy, {DoubleTy});
  addNativeMethod(Math, "abs", NativeMethod::AbsDouble, DoubleTy, {DoubleTy});
  addNativeMethod(Math, "abs", NativeMethod::AbsInt, IntTy, {IntTy});
  addNativeMethod(Math, "min", NativeMethod::MinInt, IntTy, {IntTy, IntTy});
  addNativeMethod(Math, "max", NativeMethod::MaxInt, IntTy, {IntTy, IntTy});
  addNativeMethod(Math, "min", NativeMethod::MinDouble, DoubleTy,
                  {DoubleTy, DoubleTy});
  addNativeMethod(Math, "max", NativeMethod::MaxDouble, DoubleTy,
                  {DoubleTy, DoubleTy});
  addNativeMethod(Math, "pow", NativeMethod::Pow, DoubleTy,
                  {DoubleTy, DoubleTy});
  addNativeMethod(Math, "floor", NativeMethod::Floor, DoubleTy, {DoubleTy});
}

bool ClassTable::computeClassLayout(ClassSymbol *Class, std::string *Err) {
  if (!Class->InstanceLayout.empty() || !Class->VTable.empty())
    return true; // Already computed (idempotent).
  if (Class->Super && !computeClassLayout(Class->Super, Err))
    return false;

  if (Class->Super) {
    Class->InstanceLayout = Class->Super->InstanceLayout;
    Class->VTable = Class->Super->VTable;
  }
  for (auto &F : Class->Fields) {
    if (F->IsStatic)
      continue;
    F->Slot = static_cast<unsigned>(Class->InstanceLayout.size());
    Class->InstanceLayout.push_back(F.get());
  }
  for (auto &M : Class->Methods) {
    if (M->IsStatic || M->IsConstructor || M->isNative())
      continue;
    MethodSymbol *Overridden = nullptr;
    for (MethodSymbol *Slot : Class->VTable)
      if (Slot->Name == M->Name && Slot->ParamTys == M->ParamTys) {
        Overridden = Slot;
        break;
      }
    if (Overridden) {
      if (Overridden->RetTy != M->RetTy) {
        if (Err)
          *Err = "override of " + Overridden->signature() +
                 " changes the return type";
        return false;
      }
      M->VTableSlot = Overridden->VTableSlot;
      M->Overrides = Overridden;
      Class->VTable[M->VTableSlot] = M.get();
    } else {
      M->VTableSlot = static_cast<int>(Class->VTable.size());
      Class->VTable.push_back(M.get());
    }
  }
  return true;
}

ClassSymbol *ClassTable::declareClass(const std::string &Name, ClassDecl *Decl,
                                      DiagnosticEngine &Diags) {
  if (ClassSymbol *Existing = lookup(Name)) {
    Diags.error(Decl ? Decl->Loc : SourceLoc(),
                Existing->IsBuiltin
                    ? "class '" + Name + "' conflicts with a builtin class"
                    : "duplicate class '" + Name + "'");
    return nullptr;
  }
  auto Class = std::make_unique<ClassSymbol>();
  Class->Name = Name;
  Class->Decl = Decl;
  Class->Id = static_cast<unsigned>(Classes.size());
  ClassSymbol *Raw = Class.get();
  ByName.emplace(Name, Raw);
  Classes.push_back(std::move(Class));
  return Raw;
}
