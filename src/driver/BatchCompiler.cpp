//===- driver/BatchCompiler.cpp -------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/BatchCompiler.h"

#include "opt/Optimizer.h"
#include "support/ThreadPool.h"
#include "tsa/Verifier.h"

using namespace safetsa;

BatchCompiler::BatchCompiler(BatchOptions Opts)
    : Opts(Opts),
      Threads(Opts.Threads == 0 ? ThreadPool::defaultThreadCount()
                                : Opts.Threads) {}

BatchResult BatchCompiler::runOne(const BatchJob &Job,
                                  const BatchOptions &Opts) {
  BatchResult R;
  R.Name = Job.Name;

  R.Program = compileMJ(Job.Name, Job.Source);
  if (!R.Program->ok() || !R.Program->TSA) {
    R.Error = "compile failed: " + R.Program->renderDiagnostics();
    return R;
  }
  R.CompileOk = true;

  if (Opts.Optimize)
    optimizeModule(*R.Program->TSA);

  R.Wire = encodeModule(*R.Program->TSA, Opts.Mode);

  if (!Opts.DecodeAndVerify)
    return R;

  std::string Err;
  R.Unit = decodeModule(R.Wire, &Err, Opts.Mode);
  if (!R.Unit) {
    R.Error = "decode failed: " + Err;
    return R;
  }
  R.DecodeOk = true;

  TSAVerifier V(*R.Unit->Module);
  if (!V.verify()) {
    R.Error = V.getErrors().empty() ? "verification failed"
                                    : V.getErrors().front();
    return R;
  }
  if (!counterCheckModule(*R.Unit->Module)) {
    R.Error = "counter check failed";
    return R;
  }
  R.VerifyOk = true;
  return R;
}

std::vector<BatchResult> BatchCompiler::run(
    const std::vector<BatchJob> &Jobs) {
  std::vector<BatchResult> Results(Jobs.size());
  // Deterministic input-order results: each worker writes only its own
  // pre-allocated slot, so interleaving cannot reorder or race anything.
  ThreadPool Pool(Jobs.size() < Threads
                      ? static_cast<unsigned>(Jobs.size())
                      : Threads);
  for (size_t I = 0; I != Jobs.size(); ++I)
    Pool.submit([this, &Jobs, &Results, I] {
      Results[I] = runOne(Jobs[I], Opts);
    });
  Pool.wait();
  return Results;
}
