//===- driver/BatchCompiler.cpp -------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/BatchCompiler.h"

#include "opt/Optimizer.h"
#include "support/ThreadPool.h"
#include "tsa/Verifier.h"

#include <cstdlib>
#include <cstring>

using namespace safetsa;

BatchCompiler::BatchCompiler(BatchOptions Opts)
    : Opts(Opts),
      Threads(Opts.Threads == 0 ? ThreadPool::defaultThreadCount()
                                : Opts.Threads) {}

static bool paranoidEnv() {
  const char *V = std::getenv("SAFETSA_PARANOID");
  return V && *V && std::strcmp(V, "0") != 0;
}

/// Re-runs the standalone verifier and counter check on a module the fused
/// decoder already accepted. Any failure here is a bug in one of the two
/// verification paths, so the message says so.
static std::string runParanoidOracle(TSAModule &M) {
  TSAVerifier V(M);
  if (!V.verify())
    return "paranoid oracle disagrees with fused decode: " +
           (V.getErrors().empty() ? std::string("verification failed")
                                  : V.getErrors().front());
  if (!counterCheckModule(M))
    return "paranoid oracle disagrees with fused decode: counter check "
           "failed";
  return {};
}

BatchResult BatchCompiler::runOne(const BatchJob &Job,
                                  const BatchOptions &Opts) {
  BatchResult R;
  R.Name = Job.Name;

  R.Program = compileMJ(Job.Name, Job.Source);
  if (!R.Program->ok() || !R.Program->TSA) {
    R.Error = "compile failed: " + R.Program->renderDiagnostics();
    return R;
  }
  R.CompileOk = true;

  if (Opts.Optimize)
    optimizeModule(*R.Program->TSA);

  R.Wire = encodeModule(*R.Program->TSA, Opts.Mode);

  if (Opts.PublishTo) {
    // Publish-after-encode: the server verifies (fused decode through
    // its cache, once per content digest) and stores the exact bytes.
    std::string PubErr;
    R.Dig = Opts.PublishTo->publish(ByteSpan(R.Wire), &PubErr);
    if (!PubErr.empty()) {
      R.Error = "publish failed: " + PubErr;
      return R;
    }
    R.Published = true;
  }

  if (!Opts.DecodeAndVerify)
    return R;

  // Fused decode+verify: a non-null result is a verified module, so the
  // legacy mandatory TSAVerifier + counter-check second pass is gone from
  // the hot path.
  std::string Err;
  R.Unit = decodeModule(ByteSpan(R.Wire), &Err, DecodeOptions{Opts.Mode, true});
  if (!R.Unit) {
    R.Error = "decode failed: " + Err;
    return R;
  }
  R.DecodeOk = true;

  if (Opts.Paranoid || paranoidEnv()) {
    R.Error = runParanoidOracle(*R.Unit->Module);
    if (!R.Error.empty())
      return R;
  }
  R.VerifyOk = true;
  return R;
}

BatchLoadResult BatchCompiler::loadOne(ByteSpan Wire,
                                       const BatchOptions &Opts) {
  BatchLoadResult R;
  std::string Err;
  R.Unit = decodeModule(Wire, &Err, DecodeOptions{Opts.Mode, true});
  if (!R.Unit) {
    R.Error = "decode failed: " + Err;
    return R;
  }
  if (Opts.Paranoid || paranoidEnv())
    R.Error = runParanoidOracle(*R.Unit->Module);
  return R;
}

std::vector<BatchResult> BatchCompiler::run(
    const std::vector<BatchJob> &Jobs) {
  std::vector<BatchResult> Results(Jobs.size());
  // Deterministic input-order results: each worker writes only its own
  // pre-allocated slot, so interleaving cannot reorder or race anything.
  ThreadPool Pool(Jobs.size() < Threads
                      ? static_cast<unsigned>(Jobs.size())
                      : Threads);
  for (size_t I = 0; I != Jobs.size(); ++I)
    Pool.submit([this, &Jobs, &Results, I] {
      Results[I] = runOne(Jobs[I], Opts);
    });
  Pool.wait();
  return Results;
}

std::vector<BatchServeLoadResult> BatchCompiler::loadCached(
    const std::vector<Digest> &Digests, CodeServer &Server) {
  std::vector<BatchServeLoadResult> Results(Digests.size());
  ThreadPool Pool(Digests.size() < Threads
                      ? static_cast<unsigned>(Digests.size())
                      : Threads);
  for (size_t I = 0; I != Digests.size(); ++I)
    Pool.submit([this, &Digests, &Results, &Server, I] {
      BatchServeLoadResult &R = Results[I];
      R.Dig = Digests[I];
      std::string Err;
      R.Unit = Server.load(Digests[I], &Err);
      if (!R.Unit) {
        R.Error = Err.empty() ? "load failed" : Err;
        return;
      }
      if (Opts.PrepareExec) {
        // Same cache entry as the decoded module: warm hits return the
        // one prepared form with zero re-lowering (single-flight when
        // several workers race on a cold digest).
        R.Prepared = Server.loadPrepared(Digests[I], Opts.MaxExecTier, &Err);
        if (!R.Prepared)
          R.Error = Err.empty() ? "prepare failed" : Err;
      }
    });
  Pool.wait();
  return Results;
}

std::vector<BatchLoadResult> BatchCompiler::load(
    const std::vector<ByteSpan> &Wires) {
  std::vector<BatchLoadResult> Results(Wires.size());
  ThreadPool Pool(Wires.size() < Threads
                      ? static_cast<unsigned>(Wires.size())
                      : Threads);
  for (size_t I = 0; I != Wires.size(); ++I)
    Pool.submit([this, &Wires, &Results, I] {
      Results[I] = loadOne(Wires[I], Opts);
    });
  Pool.wait();
  return Results;
}
