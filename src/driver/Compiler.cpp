//===- driver/Compiler.cpp ------------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include "lexer/Lexer.h"
#include "parser/Parser.h"
#include "sema/Sema.h"
#include "ssagen/TSAGen.h"

using namespace safetsa;

MethodSymbol *CompiledProgram::findMain() const {
  if (!Table)
    return nullptr;
  for (const auto &Class : Table->getClasses())
    for (const auto &M : Class->Methods)
      if (M->IsStatic && M->Name == "main" && M->ParamTys.empty() &&
          !M->isNative())
        return M.get();
  return nullptr;
}

std::unique_ptr<CompiledProgram> safetsa::compileMJ(
    const std::string &BufferName, const std::string &Source, bool EmitTSA) {
  auto P = std::make_unique<CompiledProgram>();
  P->SM = SourceManager(BufferName, Source);

  Lexer Lex(P->SM.getText(), P->Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  if (P->Diags.hasErrors())
    return P;

  Parser Parse(std::move(Tokens), P->Diags);
  P->AST = Parse.parseProgram();
  if (P->Diags.hasErrors())
    return P;

  P->Table = std::make_unique<ClassTable>(P->Types);
  Sema S(P->Types, *P->Table, P->Diags);
  if (!S.run(P->AST))
    return P;

  if (EmitTSA) {
    TSAGenerator Gen(P->Types, *P->Table);
    P->TSA = Gen.generate(P->AST);
  }
  return P;
}
