//===- driver/Compiler.h - Pipeline facade --------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-call front door for the whole producer pipeline: MJ source ->
/// tokens -> AST -> sema -> SafeTSA. Owns every phase artifact so tests,
/// benchmarks, and examples keep a single object alive.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_DRIVER_COMPILER_H
#define SAFETSA_DRIVER_COMPILER_H

#include "ast/AST.h"
#include "sema/ClassTable.h"
#include "support/Diagnostics.h"
#include "tsa/Method.h"

#include <memory>
#include <string>

namespace safetsa {

/// All artifacts of compiling one MJ compilation unit.
class CompiledProgram {
public:
  SourceManager SM;
  DiagnosticEngine Diags;
  TypeContext Types;
  std::unique_ptr<ClassTable> Table;
  Program AST;
  std::unique_ptr<TSAModule> TSA;

  bool ok() const { return !Diags.hasErrors(); }

  /// Renders collected diagnostics with source excerpts.
  std::string renderDiagnostics() const { return Diags.render(&SM); }

  /// Finds `static main()` (no parameters); null when absent.
  MethodSymbol *findMain() const;
};

/// Runs the front end and, when \p EmitTSA is set and sema succeeded, the
/// SafeTSA generator. Never throws; check result->ok().
std::unique_ptr<CompiledProgram> compileMJ(const std::string &BufferName,
                                           const std::string &Source,
                                           bool EmitTSA = true);

} // namespace safetsa

#endif // SAFETSA_DRIVER_COMPILER_H
