//===- driver/BatchCompiler.h - Parallel batch pipeline -------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Batch front door: run compile -> optimize -> encode (producer side)
/// and decode -> verify (consumer side) for N compilation units across a
/// fixed-size thread pool.
///
/// The unit of parallelism is the compilation unit: each CompiledProgram
/// owns its own SourceManager, DiagnosticEngine, TypeContext, and
/// ClassTable, and each decoded unit rebuilds a private type table, so
/// jobs share no mutable state. Results come back in input order and are
/// byte-identical to the sequential compileMJ + encodeModule path
/// regardless of thread count (asserted by tests/batch_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_DRIVER_BATCHCOMPILER_H
#define SAFETSA_DRIVER_BATCHCOMPILER_H

#include "codec/Codec.h"
#include "driver/Compiler.h"
#include "serve/CodeServer.h"

#include <memory>
#include <string>
#include <vector>

namespace safetsa {

/// One compilation unit to push through the pipeline.
struct BatchJob {
  std::string Name;
  std::string Source;
};

struct BatchOptions {
  /// Worker threads; 0 => one per hardware thread. 1 still uses a single
  /// worker thread (use the sequential path for a no-thread baseline).
  unsigned Threads = 0;
  /// Run the optimizer between generation and encoding.
  bool Optimize = false;
  CodecMode Mode = CodecMode::Prefix;
  /// Consumer side: decode the wire bytes back with the fused
  /// decode+verify path (decode success implies a verified module).
  bool DecodeAndVerify = true;
  /// Differential oracle: after a fused decode, additionally run the
  /// standalone TSAVerifier and the paper's counter check and fail the
  /// unit if they disagree with the fused verdict. Redundant in normal
  /// operation; exists to cross-check the fused decoder. Also enabled by
  /// setting the SAFETSA_PARANOID environment variable to a non-empty,
  /// non-"0" value.
  bool Paranoid = false;
  /// Publish-after-encode: when set, each successfully encoded module is
  /// PUBLISHed to this server (verified once per content digest through
  /// the server's module cache) and BatchResult::Dig carries its digest.
  /// The server is shared by all workers; its layers are thread-safe.
  CodeServer *PublishTo = nullptr;
  /// Cache-backed loads (loadCached) additionally resolve the *prepared*
  /// (directly executable) form of each module through the server's
  /// cache; a warm cache serves it with zero re-lowering.
  bool PrepareExec = false;
  /// Highest execution tier loadCached may serve (min'd with the server's
  /// own MaxExecTier): 0 pins the profiling tier, 1 (default) lets hot
  /// modules come back re-quickened with inline caches and fusion.
  uint32_t MaxExecTier = 1;
  /// Heap-collection policy for Runtimes callers construct to execute
  /// batch-loaded modules (thread through Runtime's constructor or
  /// ExecOptions::Gc; see gc/GC.h).
  GcOptions Gc = {};
};

/// Consumer-side artifacts for one wire buffer pushed through the batch
/// load path (decode + fused verify only, no producer stages).
struct BatchLoadResult {
  std::unique_ptr<DecodedUnit> Unit;
  std::string Error; ///< Empty on success.

  bool ok() const { return Error.empty(); }
};

/// Consumer-side artifacts for one digest pulled through the cache-backed
/// load path. The unit is shared: a warm server cache hands every caller
/// the same decoded+verified module without re-decoding.
struct BatchServeLoadResult {
  Digest Dig;
  std::shared_ptr<const DecodedUnit> Unit;
  /// Executable form (set when BatchOptions::PrepareExec); shared with
  /// every other loader of the same digest, ready to run on a TSAExec.
  std::shared_ptr<const PreparedModule> Prepared;
  std::string Error; ///< Empty on success.

  bool ok() const { return Error.empty(); }
};

/// Everything produced for one job. Producer artifacts stay alive so
/// callers can inspect diagnostics or reuse the module.
struct BatchResult {
  std::string Name;
  std::unique_ptr<CompiledProgram> Program; ///< Producer artifacts.
  std::vector<uint8_t> Wire;                ///< Encoded module bytes.
  std::unique_ptr<DecodedUnit> Unit;        ///< Consumer artifacts.
  Digest Dig;                               ///< Set when published.
  bool CompileOk = false;
  bool Published = false; ///< Publish-after-encode succeeded.
  bool DecodeOk = false;
  bool VerifyOk = false;
  std::string Error; ///< First failure reason, empty on success.

  /// True when every requested stage succeeded.
  bool ok() const { return Error.empty(); }
};

class BatchCompiler {
public:
  explicit BatchCompiler(BatchOptions Opts = {});

  /// Runs every job across the pool; results are returned in input order
  /// and are independent of the thread count.
  std::vector<BatchResult> run(const std::vector<BatchJob> &Jobs);

  /// Consumer-only batch entry point: decodes (and, fused, verifies) each
  /// wire buffer across the pool. The spans are non-owning — workers
  /// decode straight out of the caller's receive buffers with no per-unit
  /// copy — and each worker writes only its own pre-allocated result
  /// slot, so results come back in input order.
  std::vector<BatchLoadResult> load(const std::vector<ByteSpan> &Wires);

  /// Cache-backed consumer batch: resolves each digest through
  /// \p Server's verified-module cache across the pool. Duplicate digests
  /// in one batch decode once (single-flight) and a warm cache serves
  /// every entry with zero decodes — the counters in Server.stats() tell
  /// the story. Results come back in input order.
  std::vector<BatchServeLoadResult>
  loadCached(const std::vector<Digest> &Digests, CodeServer &Server);

  /// The full pipeline for a single unit; what each worker executes.
  static BatchResult runOne(const BatchJob &Job, const BatchOptions &Opts);

  /// The consumer-side pipeline for a single wire buffer.
  static BatchLoadResult loadOne(ByteSpan Wire, const BatchOptions &Opts);

  unsigned getNumThreads() const { return Threads; }

private:
  BatchOptions Opts;
  unsigned Threads;
};

} // namespace safetsa

#endif // SAFETSA_DRIVER_BATCHCOMPILER_H
