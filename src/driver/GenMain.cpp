//===- driver/GenMain.cpp - safetsa-gen CLI -------------------------------===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end for the grammar-aware differential generator
/// (DESIGN.md §15). Soak mode sweeps a seed range through the full
/// configuration matrix; single-seed mode replays one seed (optionally
/// one configuration) byte-deterministically; --emit-source and
/// --emit-digest expose the generator's determinism to scripts.
///
///   safetsa-gen --seeds 200                    # soak seeds 0..199
///   safetsa-gen --seed 7 --config 9            # replay config 9 only
///   safetsa-gen --seed 7 --emit-source         # print the MJ program
///   safetsa-gen --seed 7 --emit-digest         # print the wire digest
///   safetsa-gen --replay crash.repro.mj        # re-check a dump file
///   safetsa-gen --list-configs
///
/// SAFETSA_GEN_SEEDS overrides the soak count (CI knob). Exit status is
/// 0 on full parity, 1 on any failure, 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "codec/Codec.h"
#include "driver/Compiler.h"
#include "support/Digest.h"
#include "testgen/DifferentialRunner.h"
#include "testgen/Generator.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace safetsa;
using namespace safetsa::testgen;

namespace {

int usage(const char *Msg) {
  if (Msg)
    std::fprintf(stderr, "safetsa-gen: %s\n", Msg);
  std::fprintf(stderr,
               "usage: safetsa-gen [--seeds N] [--start S] [--seed N]\n"
               "                   [--config K] [--emit-source]"
               " [--emit-digest]\n"
               "                   [--dump DIR] [--shrink] [--fuel N]\n"
               "                   [--replay FILE] [--list-configs]\n");
  return 2;
}

bool parseU64(const char *S, uint64_t *Out) {
  if (!S || !*S)
    return false;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End)
    return false;
  *Out = V;
  return true;
}

int emitSource(uint64_t Seed) {
  std::fputs(generateProgram(Seed).c_str(), stdout);
  return 0;
}

int emitDigest(uint64_t Seed) {
  std::string Src = generateProgram(Seed);
  auto P = compileMJ("testgen.mj", Src);
  if (!P->ok()) {
    std::fprintf(stderr, "seed %llu does not compile:\n%s",
                 (unsigned long long)Seed, P->renderDiagnostics().c_str());
    return 1;
  }
  std::vector<uint8_t> Wire = encodeModule(*P->TSA);
  std::printf("%s\n", digestOf(ByteSpan(Wire)).hex().c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Seeds = 200, Start = 0, OneSeed = 0;
  bool HaveSeed = false, EmitSource = false, EmitDigest = false;
  bool ListConfigs = false;
  std::string Replay;
  RunnerOptions Opts;

  if (const char *Env = std::getenv("SAFETSA_GEN_SEEDS")) {
    if (!parseU64(Env, &Seeds))
      return usage("SAFETSA_GEN_SEEDS is not a number");
  }

  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    auto next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    uint64_t V;
    if (!std::strcmp(A, "--seeds")) {
      if (!parseU64(next(), &Seeds))
        return usage("--seeds needs a count");
    } else if (!std::strcmp(A, "--start")) {
      if (!parseU64(next(), &Start))
        return usage("--start needs a seed");
    } else if (!std::strcmp(A, "--seed")) {
      if (!parseU64(next(), &OneSeed))
        return usage("--seed needs a seed");
      HaveSeed = true;
    } else if (!std::strcmp(A, "--config")) {
      if (!parseU64(next(), &V) || V >= DifferentialRunner::configCount())
        return usage("--config needs an index (see --list-configs)");
      Opts.OnlyConfig = int(V);
    } else if (!std::strcmp(A, "--fuel")) {
      if (!parseU64(next(), &V) || !V)
        return usage("--fuel needs a positive count");
      Opts.Fuel = V;
    } else if (!std::strcmp(A, "--dump")) {
      const char *D = next();
      if (!D)
        return usage("--dump needs a directory");
      Opts.DumpDir = D;
    } else if (!std::strcmp(A, "--shrink")) {
      Opts.Shrink = true;
    } else if (!std::strcmp(A, "--emit-source")) {
      EmitSource = true;
    } else if (!std::strcmp(A, "--emit-digest")) {
      EmitDigest = true;
    } else if (!std::strcmp(A, "--replay")) {
      const char *F = next();
      if (!F)
        return usage("--replay needs a file");
      Replay = F;
    } else if (!std::strcmp(A, "--list-configs")) {
      ListConfigs = true;
    } else {
      return usage((std::string("unknown argument: ") + A).c_str());
    }
  }

  if (ListConfigs) {
    for (unsigned K = 0; K != DifferentialRunner::configCount(); ++K)
      std::printf("%2u  %s\n", K, DifferentialRunner::configName(K));
    return 0;
  }
  if (EmitSource || EmitDigest) {
    if (!HaveSeed)
      return usage("--emit-source/--emit-digest need --seed");
    return EmitSource ? emitSource(OneSeed) : emitDigest(OneSeed);
  }

  DifferentialRunner Runner(Opts);

  if (!Replay.empty()) {
    std::ifstream F(Replay);
    if (!F)
      return usage("cannot open replay file");
    std::ostringstream SS;
    SS << F.rdbuf();
    SeedReport R = Runner.runSource(SS.str(), /*Seed=*/0);
    std::printf("%s\n", R.summary().c_str());
    return R.ok() || R.FuelBound ? 0 : 1;
  }

  if (HaveSeed) {
    SeedReport R = Runner.run(OneSeed);
    std::printf("%s\n", R.summary().c_str());
    return R.ok() || R.FuelBound ? 0 : 1;
  }

  // Soak: sweep the seed range, print a rollup, fail on any divergence.
  uint64_t Ok = 0, Skipped = 0, Failed = 0;
  for (uint64_t S = Start; S != Start + Seeds; ++S) {
    SeedReport R = Runner.run(S);
    if (!R.ok() && !R.FuelBound) {
      ++Failed;
      std::printf("%s\n", R.summary().c_str());
    } else if (R.FuelBound) {
      ++Skipped;
    } else {
      ++Ok;
    }
  }
  std::printf("safetsa-gen: %llu seeds [%llu..%llu): %llu ok, %llu "
              "fuel-skipped, %llu FAILED\n",
              (unsigned long long)Seeds, (unsigned long long)Start,
              (unsigned long long)(Start + Seeds), (unsigned long long)Ok,
              (unsigned long long)Skipped, (unsigned long long)Failed);
  return Failed ? 1 : 0;
}
