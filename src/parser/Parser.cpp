//===- parser/Parser.cpp --------------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include <sstream>

using namespace safetsa;

bool Parser::expect(TokenKind K, const char *Context) {
  if (accept(K))
    return true;
  std::ostringstream OS;
  OS << "expected " << tokenKindName(K) << ' ' << Context << ", found "
     << tokenKindName(current().Kind);
  Diags.error(current().Loc, OS.str());
  return false;
}

void Parser::syncToStmtBoundary() {
  while (!check(TokenKind::Eof)) {
    if (accept(TokenKind::Semi))
      return;
    if (check(TokenKind::RBrace) || check(TokenKind::LBrace))
      return;
    consume();
  }
}

void Parser::syncToMemberBoundary() {
  unsigned Depth = 0;
  while (!check(TokenKind::Eof)) {
    if (check(TokenKind::LBrace)) {
      ++Depth;
      consume();
      continue;
    }
    if (check(TokenKind::RBrace)) {
      if (Depth == 0)
        return;
      --Depth;
      consume();
      continue;
    }
    if (Depth == 0 && accept(TokenKind::Semi))
      return;
    consume();
  }
}

Program Parser::parseProgram() {
  Program P;
  while (!check(TokenKind::Eof)) {
    if (check(TokenKind::KwClass)) {
      if (auto C = parseClass())
        P.Classes.push_back(std::move(C));
      continue;
    }
    Diags.error(current().Loc, "expected 'class' at top level");
    consume();
  }
  return P;
}

std::unique_ptr<ClassDecl> Parser::parseClass() {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::KwClass, "to begin class declaration");
  auto Class = std::make_unique<ClassDecl>();
  Class->Loc = Loc;
  if (check(TokenKind::Identifier))
    Class->Name = consume().Text;
  else
    expect(TokenKind::Identifier, "as class name");
  if (accept(TokenKind::KwExtends)) {
    if (check(TokenKind::Identifier))
      Class->SuperName = consume().Text;
    else
      expect(TokenKind::Identifier, "as superclass name");
  }
  expect(TokenKind::LBrace, "to begin class body");
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof))
    parseMember(*Class);
  expect(TokenKind::RBrace, "to end class body");
  return Class;
}

TypeRef Parser::parseType() {
  SourceLoc Loc = current().Loc;
  TypeRef T;
  switch (current().Kind) {
  case TokenKind::KwInt:
    consume();
    T = TypeRef::makePrim(PrimTypeKind::Int, Loc);
    break;
  case TokenKind::KwBoolean:
    consume();
    T = TypeRef::makePrim(PrimTypeKind::Boolean, Loc);
    break;
  case TokenKind::KwDouble:
    consume();
    T = TypeRef::makePrim(PrimTypeKind::Double, Loc);
    break;
  case TokenKind::KwChar:
    consume();
    T = TypeRef::makePrim(PrimTypeKind::Char, Loc);
    break;
  case TokenKind::KwVoid:
    consume();
    T = TypeRef::makeVoid(Loc);
    break;
  case TokenKind::Identifier:
    T = TypeRef::makeNamed(consume().Text, Loc);
    break;
  default:
    Diags.error(Loc, std::string("expected type, found ") +
                         tokenKindName(current().Kind));
    T = TypeRef::makePrim(PrimTypeKind::Int, Loc);
    break;
  }
  while (check(TokenKind::LBracket) && peek(1).is(TokenKind::RBracket)) {
    consume();
    consume();
    ++T.ArrayDims;
  }
  return T;
}

std::vector<ParamDecl> Parser::parseParams() {
  std::vector<ParamDecl> Params;
  expect(TokenKind::LParen, "to begin parameter list");
  if (!check(TokenKind::RParen)) {
    do {
      ParamDecl P;
      P.Loc = current().Loc;
      P.DeclType = parseType();
      if (check(TokenKind::Identifier))
        P.Name = consume().Text;
      else
        expect(TokenKind::Identifier, "as parameter name");
      Params.push_back(std::move(P));
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to end parameter list");
  return Params;
}

void Parser::parseMember(ClassDecl &Class) {
  SourceLoc Loc = current().Loc;
  bool IsStatic = false, IsFinal = false;
  while (true) {
    if (accept(TokenKind::KwStatic)) {
      IsStatic = true;
      continue;
    }
    if (accept(TokenKind::KwFinal)) {
      IsFinal = true;
      continue;
    }
    break;
  }

  // Constructor: ClassName '(' ... (no declared type).
  if (check(TokenKind::Identifier) && current().Text == Class.Name &&
      peek(1).is(TokenKind::LParen)) {
    auto M = std::make_unique<MethodDecl>();
    M->Loc = Loc;
    M->IsConstructor = true;
    M->IsStatic = false;
    M->Name = consume().Text;
    M->ReturnType = TypeRef::makeVoid(Loc);
    M->Params = parseParams();
    if (check(TokenKind::LBrace))
      M->Body = parseBlock();
    else {
      expect(TokenKind::LBrace, "to begin constructor body");
      syncToMemberBoundary();
      M->Body = std::make_unique<BlockStmt>(std::vector<StmtPtr>(), Loc);
    }
    if (IsStatic)
      Diags.error(Loc, "constructor cannot be static");
    Class.Methods.push_back(std::move(M));
    return;
  }

  TypeRef DeclType = parseType();
  if (!check(TokenKind::Identifier)) {
    expect(TokenKind::Identifier, "as member name");
    syncToMemberBoundary();
    return;
  }
  std::string Name = consume().Text;

  if (check(TokenKind::LParen)) {
    auto M = std::make_unique<MethodDecl>();
    M->Loc = Loc;
    M->IsStatic = IsStatic;
    M->ReturnType = std::move(DeclType);
    M->Name = std::move(Name);
    M->Params = parseParams();
    if (check(TokenKind::LBrace))
      M->Body = parseBlock();
    else {
      expect(TokenKind::LBrace, "to begin method body");
      syncToMemberBoundary();
      M->Body = std::make_unique<BlockStmt>(std::vector<StmtPtr>(), Loc);
    }
    Class.Methods.push_back(std::move(M));
    return;
  }

  // Field declaration (single declarator).
  FieldDecl F;
  F.Loc = Loc;
  F.IsStatic = IsStatic;
  F.IsFinal = IsFinal;
  F.DeclType = std::move(DeclType);
  F.Name = std::move(Name);
  if (F.DeclType.isVoid())
    Diags.error(Loc, "field cannot have type 'void'");
  if (accept(TokenKind::Assign))
    F.Init = parseExpr();
  expect(TokenKind::Semi, "after field declaration");
  Class.Fields.push_back(std::move(F));
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

std::unique_ptr<BlockStmt> Parser::parseBlock() {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::LBrace, "to begin block");
  std::vector<StmtPtr> Stmts;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof))
    Stmts.push_back(parseStmt());
  expect(TokenKind::RBrace, "to end block");
  return std::make_unique<BlockStmt>(std::move(Stmts), Loc);
}

StmtPtr Parser::parseVarDeclRest(TypeRef DeclType, SourceLoc Loc) {
  std::string Name;
  if (check(TokenKind::Identifier))
    Name = consume().Text;
  else
    expect(TokenKind::Identifier, "as variable name");
  ExprPtr Init;
  if (accept(TokenKind::Assign))
    Init = parseExpr();
  expect(TokenKind::Semi, "after variable declaration");
  return std::make_unique<VarDeclStmt>(std::move(DeclType), std::move(Name),
                                       std::move(Init), Loc);
}

StmtPtr Parser::parseStmt() {
  SourceLoc Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::Semi:
    consume();
    return std::make_unique<EmptyStmt>(Loc);
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwDo:
    return parseDoWhile();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwReturn: {
    consume();
    ExprPtr Value;
    if (!check(TokenKind::Semi))
      Value = parseExpr();
    expect(TokenKind::Semi, "after return statement");
    return std::make_unique<ReturnStmt>(std::move(Value), Loc);
  }
  case TokenKind::KwTry: {
    consume();
    StmtPtr Body;
    if (check(TokenKind::LBrace))
      Body = parseBlock();
    else {
      expect(TokenKind::LBrace, "after 'try'");
      Body = std::make_unique<EmptyStmt>(Loc);
    }
    expect(TokenKind::KwCatch, "after try block");
    StmtPtr Handler;
    if (check(TokenKind::LBrace))
      Handler = parseBlock();
    else {
      expect(TokenKind::LBrace, "after 'catch'");
      Handler = std::make_unique<EmptyStmt>(Loc);
    }
    return std::make_unique<TryStmt>(std::move(Body), std::move(Handler),
                                     Loc);
  }
  case TokenKind::KwBreak:
    consume();
    expect(TokenKind::Semi, "after 'break'");
    return std::make_unique<BreakStmt>(Loc);
  case TokenKind::KwContinue:
    consume();
    expect(TokenKind::Semi, "after 'continue'");
    return std::make_unique<ContinueStmt>(Loc);
  case TokenKind::KwInt:
  case TokenKind::KwBoolean:
  case TokenKind::KwDouble:
  case TokenKind::KwChar:
    return parseVarDeclRest(parseType(), Loc);
  case TokenKind::Identifier:
    // `Foo x` / `Foo[] x` are declarations; anything else is an expression.
    if (peek(1).is(TokenKind::Identifier) ||
        (peek(1).is(TokenKind::LBracket) && peek(2).is(TokenKind::RBracket)))
      return parseVarDeclRest(parseType(), Loc);
    break;
  default:
    break;
  }

  ExprPtr E = parseExpr();
  if (!expect(TokenKind::Semi, "after expression statement"))
    syncToStmtBoundary();
  return std::make_unique<ExprStmt>(std::move(E), Loc);
}

StmtPtr Parser::parseIf() {
  SourceLoc Loc = current().Loc;
  consume(); // 'if'
  expect(TokenKind::LParen, "after 'if'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  StmtPtr Then = parseStmt();
  StmtPtr Else;
  if (accept(TokenKind::KwElse))
    Else = parseStmt();
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else), Loc);
}

StmtPtr Parser::parseWhile() {
  SourceLoc Loc = current().Loc;
  consume(); // 'while'
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after while condition");
  StmtPtr Body = parseStmt();
  return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body), Loc);
}

StmtPtr Parser::parseDoWhile() {
  SourceLoc Loc = current().Loc;
  consume(); // 'do'
  StmtPtr Body = parseStmt();
  expect(TokenKind::KwWhile, "after do-while body");
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after do-while condition");
  expect(TokenKind::Semi, "after do-while statement");
  return std::make_unique<DoWhileStmt>(std::move(Body), std::move(Cond), Loc);
}

StmtPtr Parser::parseFor() {
  SourceLoc Loc = current().Loc;
  consume(); // 'for'
  expect(TokenKind::LParen, "after 'for'");

  StmtPtr Init;
  if (!accept(TokenKind::Semi)) {
    SourceLoc InitLoc = current().Loc;
    bool IsDecl = false;
    switch (current().Kind) {
    case TokenKind::KwInt:
    case TokenKind::KwBoolean:
    case TokenKind::KwDouble:
    case TokenKind::KwChar:
      IsDecl = true;
      break;
    case TokenKind::Identifier:
      IsDecl = peek(1).is(TokenKind::Identifier) ||
               (peek(1).is(TokenKind::LBracket) &&
                peek(2).is(TokenKind::RBracket));
      break;
    default:
      break;
    }
    if (IsDecl) {
      Init = parseVarDeclRest(parseType(), InitLoc); // Consumes the ';'.
    } else {
      ExprPtr E = parseExpr();
      expect(TokenKind::Semi, "after for-loop initializer");
      Init = std::make_unique<ExprStmt>(std::move(E), InitLoc);
    }
  }

  ExprPtr Cond;
  if (!check(TokenKind::Semi))
    Cond = parseExpr();
  expect(TokenKind::Semi, "after for-loop condition");

  ExprPtr Update;
  if (!check(TokenKind::RParen))
    Update = parseExpr();
  expect(TokenKind::RParen, "after for-loop update");

  StmtPtr Body = parseStmt();
  return std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                   std::move(Update), std::move(Body), Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() { return parseAssignment(); }

static bool isAssignTarget(const Expr &E) {
  return E.Kind == ExprKind::Name || E.Kind == ExprKind::FieldAccess ||
         E.Kind == ExprKind::Index;
}

ExprPtr Parser::parseAssignment() {
  ExprPtr Lhs = parseBinary(0);
  AssignExpr::OpKind Op;
  switch (current().Kind) {
  case TokenKind::Assign:
    Op = AssignExpr::OpKind::None;
    break;
  case TokenKind::PlusAssign:
    Op = AssignExpr::OpKind::Add;
    break;
  case TokenKind::MinusAssign:
    Op = AssignExpr::OpKind::Sub;
    break;
  case TokenKind::StarAssign:
    Op = AssignExpr::OpKind::Mul;
    break;
  case TokenKind::SlashAssign:
    Op = AssignExpr::OpKind::Div;
    break;
  case TokenKind::PercentAssign:
    Op = AssignExpr::OpKind::Rem;
    break;
  default:
    return Lhs;
  }
  SourceLoc Loc = consume().Loc;
  if (!isAssignTarget(*Lhs))
    Diags.error(Loc, "left-hand side of assignment is not assignable");
  ExprPtr Rhs = parseAssignment(); // Right-associative.
  return std::make_unique<AssignExpr>(Op, std::move(Lhs), std::move(Rhs), Loc);
}

namespace {
struct BinOpInfo {
  BinaryOp Op;
  int Prec;
};
} // namespace

/// Returns the binary operator for \p Kind, or precedence -1 when the token
/// is not a binary operator. instanceof is handled separately.
static BinOpInfo binOpInfo(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::PipePipe:
    return {BinaryOp::LOr, 1};
  case TokenKind::AmpAmp:
    return {BinaryOp::LAnd, 2};
  case TokenKind::Pipe:
    return {BinaryOp::BitOr, 3};
  case TokenKind::Caret:
    return {BinaryOp::BitXor, 4};
  case TokenKind::Amp:
    return {BinaryOp::BitAnd, 5};
  case TokenKind::EqualEqual:
    return {BinaryOp::Eq, 6};
  case TokenKind::NotEqual:
    return {BinaryOp::Ne, 6};
  case TokenKind::Less:
    return {BinaryOp::Lt, 7};
  case TokenKind::Greater:
    return {BinaryOp::Gt, 7};
  case TokenKind::LessEqual:
    return {BinaryOp::Le, 7};
  case TokenKind::GreaterEqual:
    return {BinaryOp::Ge, 7};
  case TokenKind::Shl:
    return {BinaryOp::Shl, 8};
  case TokenKind::Shr:
    return {BinaryOp::Shr, 8};
  case TokenKind::Plus:
    return {BinaryOp::Add, 9};
  case TokenKind::Minus:
    return {BinaryOp::Sub, 9};
  case TokenKind::Star:
    return {BinaryOp::Mul, 10};
  case TokenKind::Slash:
    return {BinaryOp::Div, 10};
  case TokenKind::Percent:
    return {BinaryOp::Rem, 10};
  default:
    return {BinaryOp::Add, -1};
  }
}

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr Lhs = parseUnary();
  while (true) {
    // instanceof sits at relational precedence, like Java.
    if (check(TokenKind::KwInstanceof) && 7 >= MinPrec) {
      SourceLoc Loc = consume().Loc;
      TypeRef Target = parseType();
      Lhs = std::make_unique<InstanceofExpr>(std::move(Lhs),
                                             std::move(Target), Loc);
      continue;
    }
    BinOpInfo Info = binOpInfo(current().Kind);
    if (Info.Prec < 0 || Info.Prec < MinPrec)
      return Lhs;
    SourceLoc Loc = consume().Loc;
    ExprPtr Rhs = parseBinary(Info.Prec + 1); // Left-associative.
    Lhs = std::make_unique<BinaryExpr>(Info.Op, std::move(Lhs),
                                       std::move(Rhs), Loc);
  }
}

bool Parser::startsUnaryExpr(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier:
  case TokenKind::IntLiteral:
  case TokenKind::DoubleLiteral:
  case TokenKind::CharLiteral:
  case TokenKind::StringLiteral:
  case TokenKind::LParen:
  case TokenKind::Not:
  case TokenKind::Tilde:
  case TokenKind::KwNew:
  case TokenKind::KwThis:
  case TokenKind::KwNull:
  case TokenKind::KwTrue:
  case TokenKind::KwFalse:
    return true;
  default:
    return false;
  }
}

bool Parser::startsCast() const {
  assert(check(TokenKind::LParen) && "caller ensures '('");
  unsigned I = 1;
  switch (peek(I).Kind) {
  case TokenKind::KwInt:
  case TokenKind::KwBoolean:
  case TokenKind::KwDouble:
  case TokenKind::KwChar:
    break; // Primitive type: definitely a cast.
  case TokenKind::Identifier:
    // `(Name)` is a cast only when followed by something that begins a
    // unary expression but is not an operator; `(Name[])` always is.
    break;
  default:
    return false;
  }
  ++I;
  bool SawBrackets = false;
  while (peek(I).is(TokenKind::LBracket) &&
         peek(I + 1).is(TokenKind::RBracket)) {
    I += 2;
    SawBrackets = true;
  }
  if (!peek(I).is(TokenKind::RParen))
    return false;
  if (!peek(1).is(TokenKind::Identifier) || SawBrackets)
    return true; // Primitive or array cast is unambiguous.
  // `(expr)` vs `(ClassName) unary`: `-`/`+` after `)` means arithmetic.
  return startsUnaryExpr(peek(I + 1).Kind);
}

ExprPtr Parser::parseUnary() {
  SourceLoc Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::Minus:
    consume();
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, parseUnary(), Loc);
  case TokenKind::Not:
    consume();
    return std::make_unique<UnaryExpr>(UnaryOp::Not, parseUnary(), Loc);
  case TokenKind::Tilde:
    consume();
    return std::make_unique<UnaryExpr>(UnaryOp::BitNot, parseUnary(), Loc);
  case TokenKind::PlusPlus:
    consume();
    return std::make_unique<UnaryExpr>(UnaryOp::PreInc, parseUnary(), Loc);
  case TokenKind::MinusMinus:
    consume();
    return std::make_unique<UnaryExpr>(UnaryOp::PreDec, parseUnary(), Loc);
  case TokenKind::LParen:
    if (startsCast()) {
      consume(); // '('
      TypeRef Target = parseType();
      expect(TokenKind::RParen, "after cast type");
      ExprPtr Operand = parseUnary();
      return std::make_unique<CastExpr>(std::move(Target), std::move(Operand),
                                        Loc);
    }
    break;
  default:
    break;
  }
  return parsePostfix();
}

std::vector<ExprPtr> Parser::parseArgs() {
  std::vector<ExprPtr> Args;
  expect(TokenKind::LParen, "to begin argument list");
  if (!check(TokenKind::RParen)) {
    do
      Args.push_back(parseExpr());
    while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to end argument list");
  return Args;
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  while (true) {
    SourceLoc Loc = current().Loc;
    if (accept(TokenKind::Dot)) {
      std::string Name;
      if (check(TokenKind::Identifier))
        Name = consume().Text;
      else
        expect(TokenKind::Identifier, "after '.'");
      if (check(TokenKind::LParen)) {
        std::vector<ExprPtr> Args = parseArgs();
        E = std::make_unique<CallExpr>(std::move(E), std::move(Name),
                                       std::move(Args), Loc);
      } else {
        E = std::make_unique<FieldAccessExpr>(std::move(E), std::move(Name),
                                              Loc);
      }
      continue;
    }
    if (accept(TokenKind::LBracket)) {
      ExprPtr Index = parseExpr();
      expect(TokenKind::RBracket, "after array index");
      E = std::make_unique<IndexExpr>(std::move(E), std::move(Index), Loc);
      continue;
    }
    if (check(TokenKind::PlusPlus)) {
      consume();
      E = std::make_unique<UnaryExpr>(UnaryOp::PostInc, std::move(E), Loc);
      continue;
    }
    if (check(TokenKind::MinusMinus)) {
      consume();
      E = std::make_unique<UnaryExpr>(UnaryOp::PostDec, std::move(E), Loc);
      continue;
    }
    return E;
  }
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::IntLiteral: {
    Token Tok = consume();
    return std::make_unique<IntLiteralExpr>(Tok.IntValue, Loc);
  }
  case TokenKind::DoubleLiteral: {
    Token Tok = consume();
    return std::make_unique<DoubleLiteralExpr>(Tok.DoubleValue, Loc);
  }
  case TokenKind::CharLiteral: {
    Token Tok = consume();
    return std::make_unique<CharLiteralExpr>(static_cast<char>(Tok.IntValue),
                                             Loc);
  }
  case TokenKind::StringLiteral: {
    Token Tok = consume();
    return std::make_unique<StringLiteralExpr>(std::move(Tok.StringValue),
                                               Loc);
  }
  case TokenKind::KwTrue:
    consume();
    return std::make_unique<BoolLiteralExpr>(true, Loc);
  case TokenKind::KwFalse:
    consume();
    return std::make_unique<BoolLiteralExpr>(false, Loc);
  case TokenKind::KwNull:
    consume();
    return std::make_unique<NullLiteralExpr>(Loc);
  case TokenKind::KwThis:
    consume();
    return std::make_unique<ThisExpr>(Loc);
  case TokenKind::LParen: {
    consume();
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "to close parenthesized expression");
    return E;
  }
  case TokenKind::KwNew: {
    consume();
    TypeRef BaseType;
    switch (current().Kind) {
    case TokenKind::KwInt:
      consume();
      BaseType = TypeRef::makePrim(PrimTypeKind::Int, Loc);
      break;
    case TokenKind::KwBoolean:
      consume();
      BaseType = TypeRef::makePrim(PrimTypeKind::Boolean, Loc);
      break;
    case TokenKind::KwDouble:
      consume();
      BaseType = TypeRef::makePrim(PrimTypeKind::Double, Loc);
      break;
    case TokenKind::KwChar:
      consume();
      BaseType = TypeRef::makePrim(PrimTypeKind::Char, Loc);
      break;
    case TokenKind::Identifier:
      BaseType = TypeRef::makeNamed(consume().Text, Loc);
      break;
    default:
      Diags.error(Loc, "expected type after 'new'");
      return std::make_unique<NullLiteralExpr>(Loc);
    }
    if (check(TokenKind::LParen)) {
      if (BaseType.K != TypeRef::Kind::Named) {
        Diags.error(Loc, "cannot construct a primitive type with 'new'");
        return std::make_unique<NullLiteralExpr>(Loc);
      }
      std::vector<ExprPtr> Args = parseArgs();
      return std::make_unique<NewObjectExpr>(BaseType.Name, std::move(Args),
                                             Loc);
    }
    if (accept(TokenKind::LBracket)) {
      ExprPtr Length = parseExpr();
      expect(TokenKind::RBracket, "after array length");
      // Trailing `[]` pairs make the *element* type an array type.
      while (check(TokenKind::LBracket) && peek(1).is(TokenKind::RBracket)) {
        consume();
        consume();
        ++BaseType.ArrayDims;
      }
      return std::make_unique<NewArrayExpr>(std::move(BaseType),
                                            std::move(Length), Loc);
    }
    Diags.error(current().Loc, "expected '(' or '[' after 'new' type");
    return std::make_unique<NullLiteralExpr>(Loc);
  }
  case TokenKind::Identifier: {
    Token Tok = consume();
    if (check(TokenKind::LParen)) {
      std::vector<ExprPtr> Args = parseArgs();
      return std::make_unique<CallExpr>(nullptr, std::move(Tok.Text),
                                        std::move(Args), Loc);
    }
    return std::make_unique<NameExpr>(std::move(Tok.Text), Loc);
  }
  default:
    break;
  }
  Diags.error(Loc, std::string("expected expression, found ") +
                       tokenKindName(current().Kind));
  consume();
  return std::make_unique<NullLiteralExpr>(Loc);
}
