//===- parser/Parser.h - MJ parser ----------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MJ with panic-mode recovery, producing the
/// AST consumed by sema and both code generators.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_PARSER_PARSER_H
#define SAFETSA_PARSER_PARSER_H

#include "ast/AST.h"
#include "lexer/Token.h"
#include "support/Diagnostics.h"

#include <vector>

namespace safetsa {

/// Parses a token stream into a Program. On syntax errors it reports a
/// diagnostic and recovers at the next statement/member boundary; callers
/// must check DiagnosticEngine::hasErrors() before using the tree.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  Program parseProgram();

private:
  // Declarations.
  std::unique_ptr<ClassDecl> parseClass();
  void parseMember(ClassDecl &Class);
  TypeRef parseType();
  std::vector<ParamDecl> parseParams();

  // Statements.
  StmtPtr parseStmt();
  std::unique_ptr<BlockStmt> parseBlock();
  StmtPtr parseVarDeclRest(TypeRef DeclType, SourceLoc Loc);
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseDoWhile();
  StmtPtr parseFor();

  // Expressions, in decreasing binding order.
  ExprPtr parseExpr();
  ExprPtr parseAssignment();
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  std::vector<ExprPtr> parseArgs();

  /// True when the '(' at the current position begins a cast expression;
  /// uses bounded lookahead (the classic Java (Name) ambiguity).
  bool startsCast() const;
  /// True if \p Kind may begin a unary expression (used by startsCast).
  static bool startsUnaryExpr(TokenKind Kind);

  // Token plumbing.
  const Token &peek(unsigned Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  const Token &current() const { return peek(); }
  Token consume() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }
  bool check(TokenKind K) const { return current().is(K); }
  bool accept(TokenKind K) {
    if (!check(K))
      return false;
    consume();
    return true;
  }
  /// Consumes a token of kind \p K or reports "expected X".
  bool expect(TokenKind K, const char *Context);
  void syncToStmtBoundary();
  void syncToMemberBoundary();

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace safetsa

#endif // SAFETSA_PARSER_PARSER_H
