//===- testgen/Generator.h - Seeded MJ program synthesis ------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, grammar-aware synthesis of well-typed MJ programs for
/// differential testing (DESIGN.md §15). Every program a seed produces is
/// accepted by the front end and the verifier by construction; its shapes
/// are chosen to light up every execution-tier mechanism the repo has
/// accumulated: a single-inheritance class hierarchy with virtual methods
/// (overridden per subclass, so call sites profile monomorphic,
/// polymorphic, or megamorphic), instance fields including reference
/// links (GC-traceable object graphs, cycles allowed), hot loops with
/// back edges (safepoint polls, superinstruction fusion, inline caches,
/// speculative-inlining splices), allocation churn inside loops (GC
/// stress food), try/catch around deliberately trapping operations
/// (null, index, division, negative-size, class-cast), static helper
/// functions, arrays, and mixed int/double/bool arithmetic.
///
/// Determinism contract: the same seed yields a byte-identical source
/// string in every process on every platform — the generator uses its
/// own SplitMix64 stream and no hashed containers, so no
/// iteration-order or libc dependence can leak into the output. The
/// suite pins this with a cross-process test.
///
/// Termination contract: every loop is counted with a constant bound and
/// every call chain strictly decreases an index (virtual method j only
/// calls methods < j, static helper i only calls helpers < i), so
/// generated programs cannot diverge; the differential fuel cap is a
/// backstop, not a crutch.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_TESTGEN_GENERATOR_H
#define SAFETSA_TESTGEN_GENERATOR_H

#include <cstdint>
#include <string>

namespace safetsa {
namespace testgen {

/// Emits one well-typed MJ program for \p Seed. Byte-deterministic.
std::string generateProgram(uint64_t Seed);

} // namespace testgen
} // namespace safetsa

#endif // SAFETSA_TESTGEN_GENERATOR_H
