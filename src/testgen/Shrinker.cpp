//===- testgen/Shrinker.cpp - Greedy program-level reducer ----------------===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "testgen/Shrinker.h"

#include <algorithm>
#include <vector>

namespace safetsa {
namespace testgen {

namespace {

struct Candidate {
  size_t Begin; ///< First line removed.
  size_t End;   ///< One past the last line removed.
  size_t size() const { return End - Begin; }
};

std::vector<std::string> splitLines(const std::string &S) {
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Nl = S.find('\n', Pos);
    if (Nl == std::string::npos) {
      if (Pos < S.size())
        Lines.push_back(S.substr(Pos));
      break;
    }
    Lines.push_back(S.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  return Lines;
}

int braceDelta(const std::string &L, bool *Opens) {
  int D = 0;
  *Opens = false;
  for (char C : L) {
    if (C == '{') {
      ++D;
      *Opens = true;
    } else if (C == '}') {
      --D;
    }
  }
  return D;
}

std::string trimmed(const std::string &L) {
  size_t B = L.find_first_not_of(" \t");
  if (B == std::string::npos)
    return "";
  size_t E = L.find_last_not_of(" \t");
  return L.substr(B, E - B + 1);
}

/// Enumerates removal candidates over the currently-alive lines:
/// brace-balanced regions (a net-opening line through the line where the
/// depth returns to its entry value — an entire class, method, loop,
/// if/else chain, or try/catch) and single statement lines. The
/// generator's one-statement-per-line layout makes this exact.
std::vector<Candidate> enumerate(const std::vector<std::string> &Lines,
                                 const std::vector<bool> &Alive) {
  std::vector<Candidate> Cands;
  std::vector<int> DepthBefore(Lines.size() + 1, 0);
  std::vector<int> Delta(Lines.size(), 0);
  int D = 0;
  for (size_t I = 0; I != Lines.size(); ++I) {
    DepthBefore[I] = D;
    bool Opens = false;
    Delta[I] = Alive[I] ? braceDelta(Lines[I], &Opens) : 0;
    D += Delta[I];
  }
  for (size_t I = 0; I != Lines.size(); ++I) {
    if (!Alive[I])
      continue;
    const std::string T = trimmed(Lines[I]);
    if (T.empty())
      continue;
    if (Delta[I] > 0) {
      // Region: scan forward until depth returns to the entry value.
      int Depth = Delta[I];
      for (size_t J = I + 1; J != Lines.size(); ++J) {
        Depth += Delta[J];
        if (Depth <= 0) {
          Cands.push_back({I, J + 1});
          break;
        }
      }
    } else if (Delta[I] == 0 && DepthBefore[I] > 0 && T.back() == ';') {
      Cands.push_back({I, I + 1});
    }
  }
  // Largest first: removing a whole class beats removing its statements
  // one by one.
  std::stable_sort(Cands.begin(), Cands.end(),
                   [](const Candidate &A, const Candidate &B) {
                     return A.size() > B.size();
                   });
  return Cands;
}

std::string render(const std::vector<std::string> &Lines,
                   const std::vector<bool> &Alive) {
  std::string S;
  for (size_t I = 0; I != Lines.size(); ++I)
    if (Alive[I]) {
      S += Lines[I];
      S += '\n';
    }
  return S;
}

} // namespace

std::string
shrinkSource(const std::string &Source,
             const std::function<bool(const std::string &)> &StillFails,
             unsigned MaxAttempts, ShrinkStats *Stats) {
  std::vector<std::string> Lines = splitLines(Source);
  std::vector<bool> Alive(Lines.size(), true);
  ShrinkStats Local;
  ShrinkStats &S = Stats ? *Stats : Local;

  bool Changed = true;
  std::string Best = Source;
  while (Changed && S.Attempts < MaxAttempts) {
    Changed = false;
    for (const Candidate &C : enumerate(Lines, Alive)) {
      if (S.Attempts >= MaxAttempts)
        break;
      bool AnyAlive = false;
      for (size_t I = C.Begin; I != C.End; ++I)
        AnyAlive |= Alive[I];
      if (!AnyAlive)
        continue;
      std::vector<bool> Saved(Alive.begin() + long(C.Begin),
                              Alive.begin() + long(C.End));
      for (size_t I = C.Begin; I != C.End; ++I)
        Alive[I] = false;
      std::string Reduced = render(Lines, Alive);
      ++S.Attempts;
      if (StillFails(Reduced)) {
        ++S.Accepted;
        Best = std::move(Reduced);
        Changed = true;
        // Candidate indices shifted in meaning; re-enumerate.
        break;
      }
      std::copy(Saved.begin(), Saved.end(), Alive.begin() + long(C.Begin));
    }
  }
  return Best;
}

} // namespace testgen
} // namespace safetsa
