//===- testgen/DifferentialRunner.h - Cross-tier parity matrix -*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pushes one program (a generator seed, a raw MJ source, or a decoded
/// wire image) through every execution tier and codec path the repo has
/// and demands byte-exact output parity against the tree-walk oracle
/// (DESIGN.md §15). The configuration matrix is a fixed, numbered table
/// so any failure is replayable by index:
///
///   0  treewalk/source      — the reference (definitional interpreter)
///   1  treewalk/decoded     — encode -> fused decode (table reader)
///   2  treewalk/decoded-scalar — fused decode, scalar bit reader
///   3  treewalk/optimized   — optimizeModule, then tree-walk
///   4  tier0                — quickened register-frame streams
///   5  tier0/decoded        — tier 0 over the decoded module
///   6  tier0/gcstress       — tier 0, StressEveryNAllocs=1
///   7  tier1                — profile once, re-quicken (ICs + fusion +
///                             inlining, default budget)
///   8  tier1/nofusion       — tier 1 with superinstructions masked
///   9  tier1/noinlining     — tier 1 with splicing masked
///   10 tier1/maxinline      — tier 1 with InlineBudget maxed
///   11 tier1/gcstress       — tier 1, StressEveryNAllocs=1
///   12 tier1/optimized-decoded — optimize -> encode -> decode -> tier 1
///   13 roundtrip-digest     — decode -> re-encode digest stability
///
/// Any divergence dumps a self-contained reproducer (seed + source +
/// failing config + replay command, as one compilable .mj file) into
/// RunnerOptions::DumpDir and, when asked, greedily minimizes it with
/// the program-level shrinker. Single-config replay (`--seed N
/// --config K` in safetsa-gen, OnlyConfig here) re-runs the reference
/// plus exactly that configuration, byte-deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_TESTGEN_DIFFERENTIALRUNNER_H
#define SAFETSA_TESTGEN_DIFFERENTIALRUNNER_H

#include "exec/Runtime.h"

#include <cstdint>
#include <string>
#include <vector>

namespace safetsa {
namespace testgen {

/// Termination kind + captured output: the equality every configuration
/// must satisfy against the reference.
struct Outcome {
  RuntimeError Err = RuntimeError::Internal;
  std::string Output;

  bool operator==(const Outcome &O) const {
    return Err == O.Err && Output == O.Output;
  }
};

struct RunnerOptions {
  /// Reference fuel; non-reference configurations get 10x so near-
  /// boundary accounting differences cannot fake a divergence (fuel-
  /// bound references are skipped entirely, as in the mutation fuzzer).
  uint64_t Fuel = 20'000'000;
  /// When non-empty, any failure writes a reproducer file here (the
  /// directory is created on demand).
  std::string DumpDir;
  /// Greedily minimize a failing source with the shrinker and dump the
  /// reduced reproducer alongside the full one.
  bool Shrink = false;
  /// Run only this configuration (plus the reference); -1 = all.
  int OnlyConfig = -1;
  /// Test-only hook: force configuration K to report a divergence, so
  /// the dump/replay/shrink machinery is testable without a real
  /// compiler bug. -1 = off.
  int InjectFailure = -1;
};

struct ConfigFailure {
  unsigned Config = 0;
  std::string Name;
  std::string Detail;
};

struct SeedReport {
  uint64_t Seed = 0;
  bool CompileOk = false;
  /// Reference ran out of fuel; parity is not required (the
  /// interpreters count fuel differently), the seed is skipped.
  bool FuelBound = false;
  unsigned ConfigsRun = 0;
  std::vector<ConfigFailure> Failures;
  std::string ReproPath;     ///< Dump file, when one was written.
  std::string MinimizedPath; ///< Shrunk dump, when shrinking ran.

  bool ok() const { return CompileOk && Failures.empty(); }
  /// One-line human summary (soak-run logging).
  std::string summary() const;
};

class DifferentialRunner {
public:
  explicit DifferentialRunner(RunnerOptions Opts = {});

  /// Number of configurations in the matrix (reference included).
  static unsigned configCount();
  /// Stable name of configuration \p K (see the table above).
  static const char *configName(unsigned K);

  /// Generates the program for \p Seed and checks the full matrix.
  SeedReport run(uint64_t Seed);

  /// Checks \p Source (replay path: the reproducer's source, or any
  /// hand-written program). \p Seed is only recorded in the report.
  SeedReport runSource(const std::string &Source, uint64_t Seed);

  /// Wire-level matrix for mutation survivors: decodes \p Bytes (fused,
  /// table reader) and checks every execution configuration — scalar
  /// decode, tier 0 (± GC stress), tier 1 (default / NoFusion /
  /// NoInlining / budget-maxed / GC stress) — against the tree-walk
  /// oracle on the decoded module. Returns true on parity (or when the
  /// reference is fuel-bound). On failure fills \p Detail and, when
  /// DumpDir is set, writes the wire image + detail there.
  bool checkWire(const std::vector<uint8_t> &Bytes, const std::string &What,
                 std::string *Detail);

  const RunnerOptions &options() const { return Opts; }

private:
  RunnerOptions Opts;

  SeedReport check(const std::string &Source, uint64_t Seed,
                   bool AllowDump);
  void dumpReproducer(SeedReport &Rep, const std::string &Source);
};

} // namespace testgen
} // namespace safetsa

#endif // SAFETSA_TESTGEN_DIFFERENTIALRUNNER_H
