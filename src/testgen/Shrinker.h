//===- testgen/Shrinker.h - Greedy program-level reducer ------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy structural minimization of a failing MJ source (DESIGN.md §15).
/// Candidates are whole brace-balanced regions — classes, methods,
/// loops, if/else chains, try/catch statements — and individual
/// single-line statements, tried largest-first and removed whenever the
/// caller's predicate still holds on the reduced program. A candidate
/// that breaks compilation simply fails the predicate (the runner
/// treats non-compiling sources as non-reproducing) and is reverted, so
/// the shrinker needs no grammar knowledge beyond brace counting and
/// the generator's one-statement-per-line layout.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_TESTGEN_SHRINKER_H
#define SAFETSA_TESTGEN_SHRINKER_H

#include <functional>
#include <string>

namespace safetsa {
namespace testgen {

struct ShrinkStats {
  unsigned Attempts = 0; ///< Predicate evaluations.
  unsigned Accepted = 0; ///< Candidates that stayed removed.
};

/// Returns the smallest source found for which \p StillFails holds.
/// \p StillFails must be true for \p Source itself, pure, and
/// deterministic; it is called up to \p MaxAttempts times. The result
/// always satisfies the predicate (worst case it is \p Source).
std::string
shrinkSource(const std::string &Source,
             const std::function<bool(const std::string &)> &StillFails,
             unsigned MaxAttempts = 500, ShrinkStats *Stats = nullptr);

} // namespace testgen
} // namespace safetsa

#endif // SAFETSA_TESTGEN_SHRINKER_H
