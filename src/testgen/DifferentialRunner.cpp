//===- testgen/DifferentialRunner.cpp - Cross-tier parity matrix ----------===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "testgen/DifferentialRunner.h"

#include "codec/Codec.h"
#include "driver/Compiler.h"
#include "exec/ExecUnit.h"
#include "exec/TSAInterp.h"
#include "opt/Optimizer.h"
#include "support/Digest.h"
#include "testgen/Generator.h"
#include "testgen/Shrinker.h"
#include "tsa/Verifier.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace safetsa {
namespace testgen {

namespace {

//===----------------------------------------------------------------------===//
// The configuration matrix
//===----------------------------------------------------------------------===//

struct MatrixEntry {
  const char *Name;
  enum Engine { TreeWalk, Tier0, Tier1, Digest } E;
  bool Optimize = false; ///< optimizeModule before anything else.
  bool Decode = false;   ///< encode -> decode, run the decoded module.
  bool TableDecode = true;
  bool GcStress = false; ///< StressEveryNAllocs=1 on the measured run.
  bool NoFusion = false, NoInlining = false, MaxBudget = false;
};

// Indices are frozen: reproducers and replay commands reference them.
const MatrixEntry kMatrix[] = {
    /* 0*/ {"treewalk/source", MatrixEntry::TreeWalk},
    /* 1*/ {"treewalk/decoded", MatrixEntry::TreeWalk, false, true},
    /* 2*/
    {"treewalk/decoded-scalar", MatrixEntry::TreeWalk, false, true, false},
    /* 3*/ {"treewalk/optimized", MatrixEntry::TreeWalk, true},
    /* 4*/ {"tier0", MatrixEntry::Tier0},
    /* 5*/ {"tier0/decoded", MatrixEntry::Tier0, false, true},
    /* 6*/ {"tier0/gcstress", MatrixEntry::Tier0, false, false, true, true},
    /* 7*/ {"tier1", MatrixEntry::Tier1},
    /* 8*/
    {"tier1/nofusion", MatrixEntry::Tier1, false, false, true, false, true},
    /* 9*/
    {"tier1/noinlining", MatrixEntry::Tier1, false, false, true, false,
     false, true},
    /*10*/
    {"tier1/maxinline", MatrixEntry::Tier1, false, false, true, false, false,
     false, true},
    /*11*/ {"tier1/gcstress", MatrixEntry::Tier1, false, false, true, true},
    /*12*/ {"tier1/optimized-decoded", MatrixEntry::Tier1, true, true},
    /*13*/ {"roundtrip-digest", MatrixEntry::Digest},
};
constexpr unsigned kNumConfigs = sizeof(kMatrix) / sizeof(kMatrix[0]);

PrepareOptions tier1Options(const MatrixEntry &C) {
  PrepareOptions O;
  O.NoFusion = C.NoFusion;
  O.NoInlining = C.NoInlining;
  if (C.MaxBudget)
    O.InlineBudget = 0x7fffffff;
  return O;
}

GcOptions gcFor(const MatrixEntry &C) {
  GcOptions G;
  if (C.GcStress)
    G.StressEveryNAllocs = 1;
  return G;
}

Outcome internalOutcome(const char *What) {
  Outcome O;
  O.Err = RuntimeError::Internal;
  O.Output = std::string("<") + What + ">";
  return O;
}

Outcome runTreeWalk(const TSAModule &M, ClassTable &Table, uint64_t Fuel,
                    const GcOptions &Gc = {}) {
  Runtime RT(Table, Fuel, Gc);
  TSAInterpreter I(M, RT);
  ExecResult R = I.runMain();
  return {R.Err, RT.getOutput()};
}

Outcome runPrepared(const PreparedModule &PM, ClassTable &Table,
                    uint64_t Fuel, const GcOptions &Gc = {}) {
  Runtime RT(Table, Fuel, Gc);
  TSAExec X(PM, RT);
  ExecResult R = X.runMain();
  return {R.Err, RT.getOutput()};
}

/// Tier-1 protocol shared by every tier-1 configuration AND the replay
/// path: a fresh tier-0 preparation, exactly one profiling run of main,
/// then re-quickening. Deterministic (exec_tier_test pins replay
/// determinism), so a single-config replay reproduces the same stream.
std::unique_ptr<PreparedModule> tier1For(const TSAModule &M,
                                         ClassTable &Table, uint64_t Fuel,
                                         const PrepareOptions &Opts) {
  auto T0 = prepareModule(M);
  if (!T0)
    return nullptr;
  {
    Runtime RT(Table, Fuel);
    TSAExec X(*T0, RT);
    X.runMain();
  }
  return reprepareModule(*T0, Opts);
}

/// Runs one non-digest configuration against module \p M. \p Fuel is the
/// boosted (10x) budget.
Outcome runEngine(const MatrixEntry &C, const TSAModule &M, ClassTable &Table,
                  uint64_t Fuel) {
  switch (C.E) {
  case MatrixEntry::TreeWalk:
    return runTreeWalk(M, Table, Fuel, gcFor(C));
  case MatrixEntry::Tier0: {
    auto T0 = prepareModule(M);
    if (!T0)
      return internalOutcome("prepare failed");
    return runPrepared(*T0, Table, Fuel, gcFor(C));
  }
  case MatrixEntry::Tier1: {
    auto T1 = tier1For(M, Table, Fuel, tier1Options(C));
    if (!T1)
      return internalOutcome("reprepare failed");
    return runPrepared(*T1, Table, Fuel, gcFor(C));
  }
  case MatrixEntry::Digest:
    break;
  }
  return internalOutcome("bad engine");
}

std::string excerpt(const std::string &S, size_t At) {
  size_t Begin = At > 24 ? At - 24 : 0;
  std::string E = S.substr(Begin, 48);
  for (char &Ch : E)
    if (Ch == '\n')
      Ch = '/';
  return E;
}

std::string diffOutcome(const Outcome &Ref, const Outcome &Got) {
  std::ostringstream D;
  if (Got.Err != Ref.Err)
    D << "trap: got " << runtimeErrorName(Got.Err) << ", oracle "
      << runtimeErrorName(Ref.Err) << "; ";
  if (Got.Output != Ref.Output) {
    size_t P = 0;
    while (P < Got.Output.size() && P < Ref.Output.size() &&
           Got.Output[P] == Ref.Output[P])
      ++P;
    D << "output diverges at byte " << P << " (got " << Got.Output.size()
      << "B \"..." << excerpt(Got.Output, P) << "...\", oracle "
      << Ref.Output.size() << "B \"..." << excerpt(Ref.Output, P)
      << "...\")";
  }
  return D.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// DifferentialRunner
//===----------------------------------------------------------------------===//

DifferentialRunner::DifferentialRunner(RunnerOptions O) : Opts(std::move(O)) {}

unsigned DifferentialRunner::configCount() { return kNumConfigs; }

const char *DifferentialRunner::configName(unsigned K) {
  return K < kNumConfigs ? kMatrix[K].Name : "<bad config>";
}

SeedReport DifferentialRunner::run(uint64_t Seed) {
  return check(generateProgram(Seed), Seed, /*AllowDump=*/true);
}

SeedReport DifferentialRunner::runSource(const std::string &Source,
                                         uint64_t Seed) {
  return check(Source, Seed, /*AllowDump=*/true);
}

SeedReport DifferentialRunner::check(const std::string &Source, uint64_t Seed,
                                     bool AllowDump) {
  SeedReport Rep;
  Rep.Seed = Seed;

  auto P = compileMJ("testgen.mj", Source);
  if (!P->ok()) {
    // The generator's contract is that every program compiles; a
    // diagnostic here is a generator (or front-end) bug and is reported
    // as a failure of the reference configuration.
    Rep.Failures.push_back({0, kMatrix[0].Name,
                            "generated program failed to compile:\n" +
                                P->renderDiagnostics()});
    if (AllowDump)
      dumpReproducer(Rep, Source);
    return Rep;
  }
  {
    TSAVerifier V(*P->TSA);
    if (!V.verify()) {
      Rep.Failures.push_back(
          {0, kMatrix[0].Name,
           "generated module failed verification: " +
               (V.getErrors().empty() ? std::string("<no message>")
                                      : V.getErrors().front())});
      if (AllowDump)
        dumpReproducer(Rep, Source);
      return Rep;
    }
  }
  Rep.CompileOk = true;

  Outcome Ref = runTreeWalk(*P->TSA, *P->Table, Opts.Fuel);
  Rep.ConfigsRun = 1;
  if (Ref.Err == RuntimeError::OutOfFuel) {
    Rep.FuelBound = true;
    return Rep;
  }

  const uint64_t Boosted = Opts.Fuel * 10;
  std::vector<uint8_t> Wire = encodeModule(*P->TSA);

  // The optimized twin is compiled lazily (a fresh front-end pass over
  // the same source, then optimizeModule) so the base program and its
  // wire image stay untouched — replay of any single config sees the
  // exact same inputs as the full-matrix run.
  std::unique_ptr<CompiledProgram> OptP;
  std::vector<uint8_t> OptWire;
  auto optimized = [&]() -> CompiledProgram * {
    if (!OptP) {
      OptP = compileMJ("testgen.mj", Source);
      if (OptP->ok())
        optimizeModule(*OptP->TSA);
    }
    return OptP->ok() ? OptP.get() : nullptr;
  };

  auto fail = [&](unsigned K, std::string Detail) {
    Rep.Failures.push_back({K, kMatrix[K].Name, std::move(Detail)});
  };

  for (unsigned K = 1; K != kNumConfigs; ++K) {
    if (Opts.OnlyConfig >= 0 && int(K) != Opts.OnlyConfig)
      continue;
    const MatrixEntry &C = kMatrix[K];
    ++Rep.ConfigsRun;

    if (C.E == MatrixEntry::Digest) {
      // Round-trip digest stability: decode -> re-encode must reproduce
      // the wire bytes (and stay a fixed point one trip further).
      std::string Err;
      auto U = decodeModule(ByteSpan(Wire), &Err, DecodeOptions{});
      if (!U) {
        fail(K, "decode of own encoding failed: " + Err);
        continue;
      }
      std::vector<uint8_t> W2 = encodeModule(*U->Module);
      bool Injected = Opts.InjectFailure == int(K);
      if (Injected)
        W2.push_back(0);
      if (digestOf(ByteSpan(W2)) != digestOf(ByteSpan(Wire))) {
        fail(K, "re-encoded digest drifted: " +
                    digestOf(ByteSpan(W2)).hex() + " vs " +
                    digestOf(ByteSpan(Wire)).hex());
        continue;
      }
      auto U2 = decodeModule(ByteSpan(W2), &Err, DecodeOptions{});
      if (!U2 || encodeModule(*U2->Module) != W2) {
        fail(K, "second round trip is not a fixed point");
        continue;
      }
      continue;
    }

    // Pick the module this configuration runs.
    Outcome Got;
    if (C.Decode) {
      const std::vector<uint8_t> *W = &Wire;
      if (C.Optimize) {
        CompiledProgram *OP = optimized();
        if (!OP) {
          fail(K, "optimized twin failed to compile");
          continue;
        }
        if (OptWire.empty())
          OptWire = encodeModule(*OP->TSA);
        W = &OptWire;
      }
      std::string Err;
      DecodeOptions DO;
      DO.TableDecode = C.TableDecode;
      auto U = decodeModule(ByteSpan(*W), &Err, DO);
      if (!U) {
        fail(K, std::string("decode failed (") +
                    (C.TableDecode ? "table" : "scalar") + "): " + Err);
        continue;
      }
      Got = runEngine(C, *U->Module, *U->Table, Boosted);
    } else if (C.Optimize) {
      CompiledProgram *OP = optimized();
      if (!OP) {
        fail(K, "optimized twin failed to compile");
        continue;
      }
      Got = runEngine(C, *OP->TSA, *OP->Table, Boosted);
    } else {
      Got = runEngine(C, *P->TSA, *P->Table, Boosted);
    }

    if (Opts.InjectFailure == int(K))
      Got.Output += "<injected divergence>";
    if (!(Got == Ref))
      fail(K, diffOutcome(Ref, Got));
  }

  if (!Rep.Failures.empty() && AllowDump)
    dumpReproducer(Rep, Source);
  return Rep;
}

void DifferentialRunner::dumpReproducer(SeedReport &Rep,
                                        const std::string &Source) {
  if (Opts.DumpDir.empty())
    return;
  std::error_code EC;
  std::filesystem::create_directories(Opts.DumpDir, EC);

  // Self-contained: the metadata rides as MJ comments, so the file both
  // documents the failure and compiles as-is for `--replay`.
  std::string Path =
      Opts.DumpDir + "/testgen_seed_" + std::to_string(Rep.Seed) +
      ".repro.mj";
  {
    std::ofstream F(Path);
    F << "// safetsa-gen reproducer\n";
    F << "// seed: " << Rep.Seed << "\n";
    for (const ConfigFailure &CF : Rep.Failures) {
      F << "// failing config " << CF.Config << " (" << CF.Name << ")\n";
      std::istringstream D(CF.Detail);
      std::string Line;
      while (std::getline(D, Line))
        F << "//   " << Line << "\n";
    }
    if (!Rep.Failures.empty())
      F << "// replay: safetsa-gen --seed " << Rep.Seed << " --config "
        << Rep.Failures.front().Config << "\n";
    F << Source;
  }
  Rep.ReproPath = Path;

  if (!Opts.Shrink || !Rep.CompileOk)
    return;

  // Minimize: a candidate still reproduces when it compiles, is not
  // fuel-bound, and at least one configuration diverges. Dump and
  // replay machinery stays off inside the predicate.
  RunnerOptions Sub = Opts;
  Sub.DumpDir.clear();
  Sub.Shrink = false;
  DifferentialRunner SubRunner(Sub);
  auto StillFails = [&](const std::string &S) {
    SeedReport R = SubRunner.check(S, Rep.Seed, /*AllowDump=*/false);
    return R.CompileOk && !R.FuelBound && !R.Failures.empty();
  };
  ShrinkStats Stats;
  std::string Min = shrinkSource(Source, StillFails, 400, &Stats);
  if (Min.size() >= Source.size())
    return;
  std::string MinPath =
      Opts.DumpDir + "/testgen_seed_" + std::to_string(Rep.Seed) +
      ".min.mj";
  std::ofstream F(MinPath);
  F << "// safetsa-gen minimized reproducer (seed " << Rep.Seed << ", "
    << Stats.Attempts << " attempts, " << Stats.Accepted << " reductions)\n";
  F << Min;
  Rep.MinimizedPath = MinPath;
}

//===----------------------------------------------------------------------===//
// Wire-level matrix (mutation survivors)
//===----------------------------------------------------------------------===//

bool DifferentialRunner::checkWire(const std::vector<uint8_t> &Bytes,
                                   const std::string &What,
                                   std::string *Detail) {
  auto report = [&](const std::string &D) {
    if (Detail)
      *Detail = What + ": " + D;
    if (!Opts.DumpDir.empty()) {
      std::error_code EC;
      std::filesystem::create_directories(Opts.DumpDir, EC);
      std::string Stem =
          Opts.DumpDir + "/wire_" + digestOf(ByteSpan(Bytes)).hex();
      std::ofstream Bin(Stem + ".bin", std::ios::binary);
      Bin.write(reinterpret_cast<const char *>(Bytes.data()),
                std::streamsize(Bytes.size()));
      std::ofstream Txt(Stem + ".txt");
      Txt << What << "\n" << D << "\n";
    }
    return false;
  };

  std::string Err;
  auto U = decodeModule(ByteSpan(Bytes), &Err, DecodeOptions{});
  if (!U)
    return report("fused decode failed: " + Err);

  Outcome Ref = runTreeWalk(*U->Module, *U->Table, Opts.Fuel);
  if (Ref.Err == RuntimeError::OutOfFuel)
    return true; // Fuel-bound: parity not required.
  const uint64_t Boosted = Opts.Fuel * 10;

  // Scalar decode must accept the same stream and behave identically.
  {
    DecodeOptions DO;
    DO.TableDecode = false;
    auto U2 = decodeModule(ByteSpan(Bytes), &Err, DO);
    if (!U2)
      return report("scalar decode rejected a table-accepted stream: " +
                    Err);
    Outcome O = runTreeWalk(*U2->Module, *U2->Table, Boosted);
    if (!(O == Ref))
      return report(std::string(kMatrix[2].Name) + ": " +
                    diffOutcome(Ref, O));
  }

  // Tier 0 (plain + GC stress) on one shared preparation.
  auto T0 = prepareModule(*U->Module);
  if (!T0)
    return report("prepareModule failed on a decoded module");
  for (bool Stress : {false, true}) {
    GcOptions Gc;
    if (Stress)
      Gc.StressEveryNAllocs = 1;
    Outcome O = runPrepared(*T0, *U->Table, Boosted, Gc);
    if (!(O == Ref))
      return report(std::string(Stress ? "tier0/gcstress" : "tier0") + ": " +
                    diffOutcome(Ref, O));
  }

  // Tier 1 variants from one controlled profile (a fresh tier-0
  // preparation plus exactly one profiling run, the deterministic-replay
  // protocol).
  auto T0p = prepareModule(*U->Module);
  if (!T0p)
    return report("prepareModule (profiling twin) failed");
  {
    Runtime RT(*U->Table, Boosted);
    TSAExec X(*T0p, RT);
    X.runMain();
  }
  struct Variant {
    const char *Name;
    PrepareOptions Opts;
    bool GcStress = false;
  };
  PrepareOptions NoFuse;
  NoFuse.NoFusion = true;
  PrepareOptions NoInl;
  NoInl.NoInlining = true;
  PrepareOptions MaxInl;
  MaxInl.InlineBudget = 0x7fffffff;
  const Variant Variants[] = {
      {"tier1", {}, false},
      {"tier1/nofusion", NoFuse, false},
      {"tier1/noinlining", NoInl, false},
      {"tier1/maxinline", MaxInl, false},
      {"tier1/gcstress", {}, true},
  };
  for (const Variant &V : Variants) {
    auto T1 = reprepareModule(*T0p, V.Opts);
    if (!T1)
      return report(std::string(V.Name) + ": reprepareModule failed");
    GcOptions Gc;
    if (V.GcStress)
      Gc.StressEveryNAllocs = 1;
    Outcome O = runPrepared(*T1, *U->Table, Boosted, Gc);
    if (!(O == Ref))
      return report(std::string(V.Name) + ": " + diffOutcome(Ref, O));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// SeedReport
//===----------------------------------------------------------------------===//

std::string SeedReport::summary() const {
  std::ostringstream S;
  S << "seed " << Seed << ": ";
  if (!CompileOk)
    S << "FAILED (does not compile)";
  else if (FuelBound)
    S << "skipped (fuel-bound)";
  else if (Failures.empty())
    S << "ok (" << ConfigsRun << " configs)";
  else {
    S << "FAILED [" << Failures.front().Config << " "
      << Failures.front().Name << "] " << Failures.front().Detail;
    if (Failures.size() > 1)
      S << " (+" << (Failures.size() - 1) << " more)";
  }
  if (!ReproPath.empty())
    S << " -> " << ReproPath;
  return S.str();
}

} // namespace testgen
} // namespace safetsa
