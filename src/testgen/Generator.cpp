//===- testgen/Generator.cpp - Seeded MJ program synthesis ----------------===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "testgen/Generator.h"

#include <sstream>
#include <vector>

namespace safetsa {
namespace testgen {

namespace {

/// SplitMix64: tiny, fully specified, no library dependence. Using our
/// own stream (instead of std::mt19937) keeps the byte-determinism
/// contract independent of any standard-library implementation detail.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ^ 0x9e3779b97f4a7c15ull) {
    // Warm up so small consecutive seeds do not share low-bit prefixes.
    next();
    next();
  }

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, N); N == 0 returns 0.
  unsigned pick(unsigned N) { return N ? unsigned(next() % N) : 0; }
  bool coin() { return next() & 1; }
  bool oneIn(unsigned N) { return pick(N) == 0; }

private:
  uint64_t State;
};

/// One class of the generated hierarchy. Index 0 is the root; every
/// other class extends the root directly or through a chain.
struct GenClass {
  int Parent = -1;              ///< Index into the class list; -1 = root.
  bool HasExtraField = false;   ///< Declares `int fe<index>`.
  std::vector<bool> Overrides;  ///< Per root method: overridden here?
};

/// A reference-typed local in scope, with the static knowledge the
/// generator needs to emit only well-typed, trap-controlled uses.
struct RefVar {
  std::string Name;
  int Cls;        ///< Static type (class index); receiver of any root method.
  bool MaybeNull; ///< Unless false, only dereference under try/catch.
};

class ProgramSynth {
public:
  explicit ProgramSynth(uint64_t Seed) : R(Seed) {}

  std::string run() {
    NumClasses = 2 + R.pick(3);          // Root + 1..3 subclasses.
    NumMethods = 2 + R.pick(2);          // m0..m{1,2} plus pick().
    NumStatics = 1 + R.pick(3);          // s0..s{0..2} on Main.
    layOutHierarchy();
    for (unsigned C = 0; C != NumClasses; ++C)
      emitClass(C);
    emitMain();
    return OS.str();
  }

private:
  Rng R;
  std::ostringstream OS;
  unsigned NumClasses = 0;
  unsigned NumMethods = 0;
  unsigned NumStatics = 0;
  std::vector<GenClass> Classes;

  // Scope state for the function body currently being generated.
  std::vector<std::string> IntVars;
  std::vector<std::string> BoolVars;
  std::vector<std::string> IntArrVars;
  std::vector<std::string> DblVars;
  std::vector<RefVar> RefVars;
  unsigned NextVar = 0;
  unsigned MaxCallableStatic = 0; ///< Static s<i> may call s<j>, j < i.
  bool InMainClass = false;       ///< g0/g1 and s<i> are visible here.
  bool InMain = false;            ///< Inside main() itself (objs in scope).
  bool InTry = false;             ///< Trap-risky forms allowed unguarded.
  unsigned HotLoopsLeft = 0;      ///< Budget for the tier-1 feeder loops.

  void indent(unsigned N) {
    for (unsigned I = 0; I != N; ++I)
      OS << "  ";
  }

  std::string cls(unsigned C) { return "C" + std::to_string(C); }
  std::string freshVar() { return "v" + std::to_string(NextVar++); }

  /// Extra int fields visible on a variable statically typed \p C: the
  /// root fields always, plus fe<i> for every class on C's parent chain
  /// (single inheritance, so the chain is a simple walk).
  std::vector<std::string> intFieldsOf(int C) {
    std::vector<std::string> Fs = {"fa", "fb"};
    for (int I = C; I != -1; I = Classes[I].Parent)
      if (Classes[I].HasExtraField)
        Fs.push_back("fe" + std::to_string(I));
    return Fs;
  }

  /// True when \p A is \p B or an ancestor of \p B.
  bool isAncestorOf(int A, int B) {
    for (int I = B; I != -1; I = Classes[I].Parent)
      if (I == A)
        return true;
    return false;
  }

  /// Classes a value statically typed \p C may legally be cast to:
  /// ancestors (widening) and descendants (checked narrowing). Sema
  /// rejects casts between unrelated classes, so only these are emitted.
  std::vector<unsigned> castTargetsOf(int C) {
    std::vector<unsigned> Ts;
    for (unsigned I = 0; I != NumClasses; ++I)
      if (isAncestorOf(int(I), C) || isAncestorOf(C, int(I)))
        Ts.push_back(I);
    return Ts;
  }

  void layOutHierarchy() {
    Classes.resize(NumClasses);
    Classes[0].Overrides.assign(NumMethods, true); // Root defines all.
    for (unsigned C = 1; C != NumClasses; ++C) {
      // Parent is the root or any earlier class: chains up to depth 3.
      Classes[C].Parent = C == 1 ? 0 : int(R.pick(C));
      Classes[C].HasExtraField = R.coin();
      Classes[C].Overrides.assign(NumMethods, false);
      for (unsigned M = 0; M != NumMethods; ++M)
        Classes[C].Overrides[M] = R.coin();
    }
  }

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  /// Receivers that are statically safe to dereference here: non-null
  /// vars anywhere, any var under try/catch.
  const RefVar *pickReceiver() {
    std::vector<const RefVar *> Ok;
    for (const RefVar &V : RefVars)
      if (InTry || !V.MaybeNull)
        Ok.push_back(&V);
    return Ok.empty() ? nullptr : Ok[R.pick(unsigned(Ok.size()))];
  }

  std::string smallConst() {
    return std::to_string(int(R.pick(200)) - 100);
  }

  std::string intExpr(unsigned Depth) {
    if (Depth == 0 || R.oneIn(4)) {
      switch (R.pick(4)) {
      case 0:
        return smallConst();
      case 1:
        if (!IntVars.empty())
          return IntVars[R.pick(unsigned(IntVars.size()))];
        return std::to_string(R.pick(50));
      case 2:
        if (InMainClass)
          return R.coin() ? "g0" : "g1";
        [[fallthrough]];
      default:
        if (const RefVar *V = pickReceiver()) {
          std::vector<std::string> Fs = intFieldsOf(V->Cls);
          return V->Name + "." + Fs[R.pick(unsigned(Fs.size()))];
        }
        return std::to_string(R.pick(64));
      }
    }
    switch (R.pick(10)) {
    case 0:
      return "(" + intExpr(Depth - 1) + " + " + intExpr(Depth - 1) + ")";
    case 1:
      return "(" + intExpr(Depth - 1) + " - " + intExpr(Depth - 1) + ")";
    case 2:
      return "(" + intExpr(Depth - 1) + " * " + intExpr(Depth - 1) + ")";
    case 3:
      // Division and remainder: unguarded (may trap) only under try or
      // with 1-in-8 luck; otherwise the divisor is forced non-zero.
      if (InTry || R.oneIn(8))
        return "(" + intExpr(Depth - 1) + (R.coin() ? " / " : " % ") +
               intExpr(Depth - 1) + ")";
      return "(" + intExpr(Depth - 1) + (R.coin() ? " / " : " % ") + "((" +
             intExpr(Depth - 1) + " & 7) + 1))";
    case 4:
      if (!IntArrVars.empty()) {
        const std::string &A = IntArrVars[R.pick(unsigned(IntArrVars.size()))];
        if (InTry && R.oneIn(3)) // Raw index: may trap, handler catches.
          return A + "[" + intExpr(Depth - 1) + "]";
        return A + "[(" + intExpr(Depth - 1) + ") & 3]";
      }
      return "(" + intExpr(Depth - 1) + " ^ " + intExpr(Depth - 1) + ")";
    case 5:
      return "(" + intExpr(Depth - 1) + " << " + std::to_string(R.pick(5)) +
             ")";
    case 6:
      return "(" + intExpr(Depth - 1) + " >> " + std::to_string(R.pick(5)) +
             ")";
    case 7: {
      // Virtual call as a value: the bread and butter of the exec tiers.
      if (const RefVar *V = pickReceiver())
        return V->Name + ".m" + std::to_string(R.pick(NumMethods)) + "(" +
               intExpr(Depth - 1) + ")";
      return "(- " + intExpr(Depth - 1) + ")";
    }
    case 8:
      if (!DblVars.empty())
        return "((int) " + DblVars[R.pick(unsigned(DblVars.size()))] + ")";
      return "(" + intExpr(Depth - 1) + " & " + intExpr(Depth - 1) + ")";
    default:
      if (InMainClass && MaxCallableStatic > 0)
        return "s" + std::to_string(R.pick(MaxCallableStatic)) + "(" +
               intExpr(Depth - 1) + ", " + intExpr(Depth - 1) + ")";
      return "(- " + intExpr(Depth - 1) + ")";
    }
  }

  std::string boolExpr(unsigned Depth) {
    if (Depth == 0 || R.oneIn(3)) {
      if (!BoolVars.empty() && R.coin())
        return BoolVars[R.pick(unsigned(BoolVars.size()))];
      return R.coin() ? "true" : "false";
    }
    switch (R.pick(8)) {
    case 0:
      return "(" + intExpr(Depth - 1) + " < " + intExpr(Depth - 1) + ")";
    case 1:
      return "(" + intExpr(Depth - 1) + " == " + intExpr(Depth - 1) + ")";
    case 2:
      return "(" + boolExpr(Depth - 1) + " && " + boolExpr(Depth - 1) + ")";
    case 3:
      return "(" + boolExpr(Depth - 1) + " || " + boolExpr(Depth - 1) + ")";
    case 4:
      return "(!" + boolExpr(Depth - 1) + ")";
    case 5:
      if (!RefVars.empty()) {
        const RefVar &V = RefVars[R.pick(unsigned(RefVars.size()))];
        return "(" + V.Name + (R.coin() ? " == null)" : " != null)");
      }
      [[fallthrough]];
    case 6:
      if (!RefVars.empty()) {
        const RefVar &V = RefVars[R.pick(unsigned(RefVars.size()))];
        return "(" + V.Name + " instanceof " + cls(R.pick(NumClasses)) + ")";
      }
      [[fallthrough]];
    default:
      return "(" + intExpr(Depth - 1) + " >= " + intExpr(Depth - 1) + ")";
    }
  }

  //===------------------------------------------------------------------===//
  // Class bodies
  //===------------------------------------------------------------------===//

  /// Virtual method bodies: small field/param arithmetic. Method j may
  /// only call methods with a strictly smaller index (on this or next),
  /// so dynamic dispatch cannot recurse unboundedly even through
  /// overrides or reference cycles.
  void emitMethodBody(unsigned C, unsigned M) {
    std::vector<std::string> Fs = intFieldsOf(int(C));
    auto Field = [&] { return Fs[R.pick(unsigned(Fs.size()))]; };
    auto Operand = [&] {
      switch (R.pick(4)) {
      case 0:
        return std::string("a");
      case 1:
        return Field();
      case 2:
        return "(a & " + std::to_string(1 + R.pick(15)) + ")";
      default:
        return smallConst();
      }
    };
    unsigned Stmts = 1 + R.pick(3);
    for (unsigned I = 0; I != Stmts; ++I) {
      switch (R.pick(6)) {
      case 0:
        indent(2);
        OS << Field() << " = " << Field() << " + " << Operand() << ";\n";
        break;
      case 1:
        indent(2);
        OS << Field() << " = (" << Operand() << " * " << Operand() << ") ^ "
           << Operand() << ";\n";
        break;
      case 2:
        indent(2);
        OS << "if (a > " << smallConst() << ") { " << Field() << " = "
           << Field() << " - a; } else { " << Field() << " = " << Field()
           << " + " << std::to_string(1 + R.pick(9)) << "; }\n";
        break;
      case 3:
        // `next` is statically C0, so only root fields are legal on it.
        indent(2);
        OS << "if (next != null) { fb = fb + next."
           << (R.coin() ? "fa" : "fb") << "; }\n";
        break;
      case 4:
        if (M > 0) {
          unsigned Callee = R.pick(M); // Strictly lower index.
          indent(2);
          if (R.coin()) {
            OS << "fa = fa + m" << Callee << "(a - 1);\n";
          } else {
            OS << "if (next != null) { fa = fa + next.m" << Callee
               << "(a & 15); }\n";
          }
          break;
        }
        [[fallthrough]];
      default:
        indent(2);
        OS << "fd = fd * 0.5 + " << Operand() << ";\n";
        break;
      }
    }
    indent(2);
    switch (R.pick(3)) {
    case 0:
      OS << "return fa + fb + a;\n";
      break;
    case 1:
      OS << "return (fa ^ fb) + ((int) fd) + a * "
         << std::to_string(1 + R.pick(7)) << ";\n";
      break;
    default:
      OS << "return " << Field() << " - a;\n";
      break;
    }
  }

  void emitClass(unsigned C) {
    OS << "class " << cls(C);
    if (Classes[C].Parent != -1)
      OS << " extends " << cls(unsigned(Classes[C].Parent));
    OS << " {\n";
    if (C == 0) {
      indent(1);
      OS << "int fa = " << std::to_string(R.pick(40)) << ";\n";
      indent(1);
      OS << "int fb;\n";
      indent(1);
      OS << "double fd = " << std::to_string(R.pick(8)) << ".5;\n";
      indent(1);
      OS << "C0 next;\n";
    }
    if (Classes[C].HasExtraField) {
      indent(1);
      OS << "int fe" << C << " = " << std::to_string(R.pick(20)) << ";\n";
    }
    for (unsigned M = 0; M != NumMethods; ++M) {
      if (!Classes[C].Overrides[M])
        continue;
      indent(1);
      OS << "int m" << M << "(int a) {\n";
      emitMethodBody(C, M);
      indent(1);
      OS << "}\n";
    }
    // The ref-returning virtual: exercises reference returns (RetVal ref
    // slots, GC roots across the call boundary). Root always defines it;
    // subclasses override by coin.
    if (C == 0 || R.coin()) {
      indent(1);
      OS << "C0 pick(int a) {\n";
      indent(2);
      if (R.coin())
        OS << "if (a > " << std::to_string(R.pick(10))
           << ") { return next; }\n";
      else
        OS << "if (next != null) { return next; }\n";
      indent(2);
      OS << "return this;\n";
      indent(1);
      OS << "}\n";
    }
    OS << "}\n";
  }

  //===------------------------------------------------------------------===//
  // Static helpers on Main
  //===------------------------------------------------------------------===//

  void genStaticHelper(unsigned Index) {
    IntVars = {"a", "b"};
    BoolVars.clear();
    IntArrVars.clear();
    DblVars.clear();
    RefVars.clear();
    MaxCallableStatic = Index;
    InMainClass = true;
    indent(1);
    OS << "static int s" << Index << "(int a, int b) {\n";
    indent(2);
    OS << "int[] buf = new int[4];\n";
    IntArrVars.push_back("buf");
    genBlock(2, 2);
    indent(2);
    OS << "return " << intExpr(2) << ";\n";
    indent(1);
    OS << "}\n";
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  void genPrintInt(const std::string &E, unsigned Ind) {
    indent(Ind);
    OS << "IO.printInt(" << E << ");\n";
    indent(Ind);
    OS << "IO.println();\n";
  }

  void genStmt(unsigned Depth, unsigned Ind) {
    unsigned Kinds = Depth > 0 ? 15 : 7;
    switch (R.pick(Kinds)) {
    case 0: {
      std::string V = freshVar();
      indent(Ind);
      OS << "int " << V << " = " << intExpr(2) << ";\n";
      IntVars.push_back(V);
      break;
    }
    case 1:
      if (!IntVars.empty()) {
        indent(Ind);
        OS << IntVars[R.pick(unsigned(IntVars.size()))] << " = " << intExpr(2)
           << ";\n";
        break;
      }
      [[fallthrough]];
    case 2:
      genPrintInt(intExpr(2), Ind);
      break;
    case 3:
      if (!IntArrVars.empty()) {
        indent(Ind);
        OS << IntArrVars[R.pick(unsigned(IntArrVars.size()))] << "[("
           << intExpr(1) << ") & 3] = " << intExpr(2) << ";\n";
        break;
      }
      [[fallthrough]];
    case 4:
      if (InMainClass) {
        indent(Ind);
        OS << (R.coin() ? "g0" : "g1") << " = " << intExpr(2) << ";\n";
        break;
      }
      [[fallthrough]];
    case 5: {
      // Field store through a reference.
      if (const RefVar *V = pickReceiver()) {
        std::vector<std::string> Fs = intFieldsOf(V->Cls);
        indent(Ind);
        OS << V->Name << "." << Fs[R.pick(unsigned(Fs.size()))] << " = "
           << intExpr(2) << ";\n";
        break;
      }
      [[fallthrough]];
    }
    case 6: {
      std::string B = freshVar();
      indent(Ind);
      OS << "boolean " << B << " = " << boolExpr(2) << ";\n";
      BoolVars.push_back(B);
      if (R.oneIn(3)) {
        indent(Ind);
        OS << "IO.printBool(" << B << ");\n";
        indent(Ind);
        OS << "IO.println();\n";
      }
      break;
    }
    case 7: {
      indent(Ind);
      OS << "if (" << boolExpr(2) << ") {\n";
      genBlock(Depth - 1, Ind + 1);
      if (R.coin()) {
        indent(Ind);
        OS << "} else {\n";
        genBlock(Depth - 1, Ind + 1);
      }
      indent(Ind);
      OS << "}\n";
      break;
    }
    case 8: {
      std::string I = freshVar();
      indent(Ind);
      if (R.oneIn(3)) {
        OS << "int " << I << " = 0;\n";
        indent(Ind);
        OS << "while (" << I << " < " << (1 + R.pick(5)) << ") {\n";
        IntVars.push_back(I);
        genBlock(Depth - 1, Ind + 1);
        indent(Ind + 1);
        OS << I << "++;\n";
        IntVars.pop_back();
        indent(Ind);
        OS << "}\n";
      } else {
        OS << "for (int " << I << " = 0; " << I << " < " << (1 + R.pick(5))
           << "; " << I << "++) {\n";
        IntVars.push_back(I);
        genBlock(Depth - 1, Ind + 1);
        IntVars.pop_back();
        indent(Ind);
        OS << "}\n";
      }
      break;
    }
    case 9:
      genTryCatch(Depth, Ind);
      break;
    case 10:
      if (InMain && HotLoopsLeft > 0) {
        --HotLoopsLeft;
        genHotLoop(Ind);
        break;
      }
      [[fallthrough]];
    case 11: {
      // Virtual call for effect/print.
      if (const RefVar *V = pickReceiver()) {
        genPrintInt(V->Name + ".m" + std::to_string(R.pick(NumMethods)) +
                        "(" + intExpr(1) + ")",
                    Ind);
        break;
      }
      [[fallthrough]];
    }
    case 12:
      if (InMain && !RefVars.empty()) {
        genInstanceofCast(Ind);
        break;
      }
      [[fallthrough]];
    case 13:
      if (InMain && R.coin()) {
        // Fresh object + link: grows the reachable graph mid-body.
        genObjectBirth(Ind);
        break;
      }
      [[fallthrough]];
    default: {
      std::string D = freshVar();
      indent(Ind);
      OS << "double " << D << " = " << intExpr(1) << " * 0.25;\n";
      DblVars.push_back(D);
      if (R.oneIn(3)) {
        indent(Ind);
        OS << "IO.printDouble(" << D << ");\n";
        indent(Ind);
        OS << "IO.println();\n";
      }
      break;
    }
    }
  }

  void genTryCatch(unsigned Depth, unsigned Ind) {
    indent(Ind);
    OS << "try {\n";
    bool SavedTry = InTry;
    InTry = true;
    // Seed the try block with one deliberately risky statement, then
    // normal statements (which are themselves allowed trap forms here).
    genRiskyStmt(Ind + 1);
    genBlock(Depth == 0 ? 0 : Depth - 1, Ind + 1);
    InTry = SavedTry;
    indent(Ind);
    OS << "} catch {\n";
    genBlock(Depth == 0 ? 0 : Depth - 1, Ind + 1);
    indent(Ind);
    OS << "}\n";
  }

  /// One statement chosen to be able to trap: null dereference, raw
  /// array index, division, negative array size, or a downcast that may
  /// fail. Only ever emitted inside a try block.
  void genRiskyStmt(unsigned Ind) {
    switch (R.pick(5)) {
    case 0: {
      // Call through any ref var, maybe-null included.
      if (!RefVars.empty()) {
        const RefVar &V = RefVars[R.pick(unsigned(RefVars.size()))];
        genPrintInt(V.Name + ".m" + std::to_string(R.pick(NumMethods)) + "(" +
                        intExpr(1) + ")",
                    Ind);
        return;
      }
      [[fallthrough]];
    }
    case 1:
      if (!IntArrVars.empty()) {
        genPrintInt(IntArrVars[R.pick(unsigned(IntArrVars.size()))] + "[" +
                        intExpr(1) + "]",
                    Ind);
        return;
      }
      [[fallthrough]];
    case 2:
      genPrintInt("(" + intExpr(1) + " / (" + intExpr(1) + "))", Ind);
      return;
    case 3: {
      std::string V = freshVar();
      indent(Ind);
      OS << "int[] " << V << " = new int[" << intExpr(1) << "];\n";
      genPrintInt(V + ".length", Ind);
      // NOTE: V is not registered as an array var — its declaration sits
      // inside the try block and later statements of the same source
      // block may be emitted outside it after the brace closes.
      return;
    }
    default: {
      // Checked downcast that may legitimately fail (ClassCast is one of
      // the five catchable traps). Only related classes: sema rejects
      // casts across the hierarchy.
      if (!RefVars.empty()) {
        const RefVar &V = RefVars[R.pick(unsigned(RefVars.size()))];
        std::vector<unsigned> Ts = castTargetsOf(V.Cls);
        unsigned Target = Ts[R.pick(unsigned(Ts.size()))];
        std::string N = freshVar();
        indent(Ind);
        OS << cls(Target) << " " << N << " = (" << cls(Target) << ") "
           << V.Name << ";\n";
        genPrintInt(N + ".fa", Ind);
        return;
      }
      genPrintInt("(" + intExpr(1) + " % (" + intExpr(1) + "))", Ind);
      return;
    }
    }
  }

  void genInstanceofCast(unsigned Ind) {
    const RefVar &V = RefVars[R.pick(unsigned(RefVars.size()))];
    // instanceof takes any class target; the guarded cast inside the
    // then-branch must be to a class related to the static type.
    std::vector<unsigned> Ts = castTargetsOf(V.Cls);
    unsigned Target =
        R.coin() ? R.pick(NumClasses) : Ts[R.pick(unsigned(Ts.size()))];
    bool CastLegal = isAncestorOf(int(Target), V.Cls) ||
                     isAncestorOf(V.Cls, int(Target));
    indent(Ind);
    OS << "if (" << V.Name << " instanceof " << cls(Target) << ") {\n";
    if (CastLegal && !V.MaybeNull && R.coin()) {
      // Guarded cast: cannot fail. Target 0 is the explicit upcast back
      // to the root (`(C0) v`); deeper targets exercise Downcast.
      std::string N = freshVar();
      indent(Ind + 1);
      OS << cls(Target) << " " << N << " = (" << cls(Target) << ") " << V.Name
         << ";\n";
      std::vector<std::string> Fs = intFieldsOf(int(Target));
      indent(Ind + 1);
      OS << N << "." << Fs[R.pick(unsigned(Fs.size()))] << " = "
         << intExpr(1) << ";\n";
    } else {
      indent(Ind + 1);
      OS << "g0 = g0 + " << std::to_string(1 + R.pick(9)) << ";\n";
    }
    indent(Ind);
    OS << "} else {\n";
    indent(Ind + 1);
    OS << "g1 = g1 + 1;\n";
    indent(Ind);
    OS << "}\n";
  }

  /// Declares a fresh non-null object, pokes its fields, and links it
  /// into the existing graph (cycles allowed — the mark phase must not
  /// care). Registered in scope so later statements can use it.
  void genObjectBirth(unsigned Ind) {
    std::string N = freshVar();
    unsigned D = R.pick(NumClasses);
    indent(Ind);
    OS << cls(D) << " " << N << " = new " << cls(D) << "();\n";
    RefVars.push_back({N, int(D), false});
    if (R.coin()) {
      indent(Ind);
      OS << N << ".fa = " << intExpr(1) << ";\n";
    }
    if (!RefVars.empty() && R.coin()) {
      const RefVar &Other = RefVars[R.pick(unsigned(RefVars.size()))];
      indent(Ind);
      OS << N << ".next = " << Other.Name << ";\n";
    }
  }

  /// The tier-1 feeder: a counted loop whose body makes virtual calls
  /// through a receiver that is monomorphic (fixed var), polymorphic
  /// (mixed-class object array), or megamorphic-ish (both), optionally
  /// with allocation churn so StressEveryNAllocs=1 collects on every
  /// back-edge safepoint.
  void genHotLoop(unsigned Ind) {
    std::string Acc = freshVar();
    std::string I = freshVar();
    unsigned Iters = 16 + R.pick(48);
    indent(Ind);
    OS << "int " << Acc << " = 0;\n";
    IntVars.push_back(Acc);
    indent(Ind);
    OS << "for (int " << I << " = 0; " << I << " < " << Iters << "; " << I
       << "++) {\n";
    unsigned M = R.pick(NumMethods);
    // Polymorphic site through the shared object array (always in scope
    // in main): objs length is a power of two, mask is length - 1.
    if (R.coin()) {
      indent(Ind + 1);
      OS << Acc << " = " << Acc << " + objs[" << I << " & " << (ObjsLen - 1)
         << "].m" << M << "(" << I << ");\n";
    }
    // Monomorphic site through a fixed non-null receiver.
    if (const RefVar *V = pickReceiver()) {
      indent(Ind + 1);
      OS << Acc << " = " << Acc << " + " << V->Name << ".m"
         << std::to_string(R.pick(NumMethods)) << "(" << I << " + "
         << std::to_string(R.pick(8)) << ");\n";
    }
    if (R.coin()) {
      // Allocation churn: a short-lived object per iteration. Dead as
      // soon as the iteration ends — reclaimable at the next safepoint.
      std::string T = freshVar();
      unsigned D = R.pick(NumClasses);
      indent(Ind + 1);
      OS << cls(D) << " " << T << " = new " << cls(D) << "();\n";
      indent(Ind + 1);
      OS << T << ".fb = " << I << ";\n";
      indent(Ind + 1);
      OS << Acc << " = " << Acc << " + " << T << ".m"
         << std::to_string(R.pick(NumMethods)) << "(" << I << " & 7);\n";
    }
    if (R.oneIn(3)) {
      // Ref-returning dispatch inside the loop: pick() may yield null.
      std::string P = freshVar();
      indent(Ind + 1);
      OS << "C0 " << P << " = objs[" << I << " & " << (ObjsLen - 1)
         << "].pick(" << I << ");\n";
      indent(Ind + 1);
      OS << "if (" << P << " != null) { " << Acc << " = " << Acc << " + "
         << P << ".fa; }\n";
    }
    indent(Ind);
    OS << "}\n";
    genPrintInt(Acc, Ind);
  }

  void genBlock(unsigned Depth, unsigned Ind) {
    // MJ scoping: declarations inside a block are invisible outside it.
    size_t SavedInts = IntVars.size();
    size_t SavedBools = BoolVars.size();
    size_t SavedArrs = IntArrVars.size();
    size_t SavedDbls = DblVars.size();
    size_t SavedRefs = RefVars.size();
    unsigned N = 1 + R.pick(3);
    for (unsigned I = 0; I != N; ++I)
      genStmt(Depth, Ind);
    IntVars.resize(SavedInts);
    BoolVars.resize(SavedBools);
    IntArrVars.resize(SavedArrs);
    DblVars.resize(SavedDbls);
    RefVars.resize(SavedRefs);
  }

  //===------------------------------------------------------------------===//
  // Main
  //===------------------------------------------------------------------===//

  unsigned ObjsLen = 4;

  void emitMain() {
    OS << "class Main {\n";
    indent(1);
    OS << "static int g0;\n";
    indent(1);
    OS << "static int g1 = " << std::to_string(R.pick(64)) << ";\n";
    for (unsigned S = 0; S != NumStatics; ++S)
      genStaticHelper(S);

    IntVars.clear();
    BoolVars.clear();
    IntArrVars.clear();
    DblVars.clear();
    RefVars.clear();
    MaxCallableStatic = NumStatics;
    InMainClass = true;
    InMain = true;
    HotLoopsLeft = 1 + R.pick(2);
    indent(1);
    OS << "static void main() {\n";

    // Fixed prologue: a scratch array, the mixed-class object array (the
    // polymorphic dispatch food), and a couple of named objects.
    indent(2);
    OS << "int[] data = new int[4];\n";
    IntArrVars.push_back("data");
    ObjsLen = R.coin() ? 4 : 8;
    indent(2);
    OS << "C0[] objs = new C0[" << ObjsLen << "];\n";
    for (unsigned I = 0; I != ObjsLen; ++I) {
      indent(2);
      OS << "objs[" << I << "] = new " << cls(R.pick(NumClasses)) << "();\n";
    }
    unsigned NumNamed = 1 + R.pick(2);
    for (unsigned I = 0; I != NumNamed; ++I) {
      std::string N = "r" + std::to_string(I);
      unsigned D = R.pick(NumClasses);
      indent(2);
      OS << cls(D) << " " << N << " = new " << cls(D) << "();\n";
      RefVars.push_back({N, int(D), false});
    }
    if (R.coin()) {
      indent(2);
      OS << "C0 rn = null;\n";
      RefVars.push_back({"rn", 0, true});
      if (R.coin()) {
        indent(2);
        OS << "if (g1 > " << std::to_string(R.pick(64))
           << ") { rn = objs[0]; }\n";
      }
    }
    // Link the graph (cycles welcome).
    unsigned Links = 1 + R.pick(3);
    for (unsigned I = 0; I != Links; ++I) {
      indent(2);
      if (R.coin())
        OS << "objs[" << R.pick(ObjsLen) << "].next = objs["
           << R.pick(ObjsLen) << "];\n";
      else
        OS << "r0.next = objs[" << R.pick(ObjsLen) << "];\n";
    }
    std::string S0 = freshVar();
    indent(2);
    OS << "int " << S0 << " = " << (1 + R.pick(100)) << ";\n";
    IntVars.push_back(S0);

    genBlock(3, 2);

    // Fixed epilogue: drain every static helper, checksum the object
    // graph through dispatch AND raw field reads, and print the statics.
    for (unsigned F = 0; F != NumStatics; ++F)
      genPrintInt("s" + std::to_string(F) + "(" + intExpr(1) + ", " +
                      intExpr(1) + ")",
                  2);
    indent(2);
    OS << "int chk = 0;\n";
    indent(2);
    OS << "for (int i = 0; i < " << ObjsLen << "; i++) {\n";
    indent(3);
    OS << "chk = chk * 31 + objs[i].m" << R.pick(NumMethods)
       << "(i) + objs[i].fa + objs[i].fb;\n";
    indent(2);
    OS << "}\n";
    genPrintInt("chk", 2);
    genPrintInt("g0 + g1", 2);
    indent(1);
    OS << "}\n";
    OS << "}\n";
  }
};

} // namespace

std::string generateProgram(uint64_t Seed) {
  return ProgramSynth(Seed).run();
}

} // namespace testgen
} // namespace safetsa
