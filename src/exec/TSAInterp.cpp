//===- exec/TSAInterp.cpp -------------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "exec/TSAInterp.h"

#include <cmath>
#include <limits>

using namespace safetsa;

//===----------------------------------------------------------------------===//
// Shared integer semantics (Java rules, 32-bit wrap-around)
//===----------------------------------------------------------------------===//

static int32_t wrap32(int64_t V) { return static_cast<int32_t>(V); }

void TSAInterpreter::initializeStatics() {
  applyStaticInitializers(Module, RT);
}

ExecResult TSAInterpreter::runMain() {
  initializeStatics();
  for (const auto &Class : Module.Table->getClasses())
    for (const auto &M : Class->Methods)
      if (M->IsStatic && M->Name == "main" && M->ParamTys.empty())
        return call(M.get(), {});
  ExecResult R;
  R.Err = RuntimeError::Internal;
  return R;
}

ExecResult TSAInterpreter::call(const MethodSymbol *Method,
                                std::vector<Value> Args) {
  Err = RuntimeError::None;
  bool Ok = true;
  Value Ret = callMethodValue(Method, std::move(Args), Ok);
  ExecResult R;
  R.Err = Ok ? RuntimeError::None : Err;
  R.Ret = Ret;
  return R;
}

void TSAInterpreter::enumerateRoots(GcMarker &M) {
  for (const Frame *F : Frames) {
    for (const Value &V : F->Args)
      if (V.K == Value::Kind::Ref)
        M.mark(V.R);
    for (const auto &[I, V] : F->Vals)
      if (V.K == Value::Kind::Ref)
        M.mark(V.R);
  }
}

Value TSAInterpreter::callMethodValue(const MethodSymbol *Callee,
                                      std::vector<Value> Args, bool &Ok) {
  if (Callee->isNative())
    return RT.callNative(Callee->Native, Args);

  const TSAMethod *Body = Module.findMethod(Callee);
  if (!Body) {
    Ok = fail(RuntimeError::Internal);
    return Value();
  }
  if (Depth >= MaxDepth) {
    Ok = fail(RuntimeError::StackOverflow);
    return Value();
  }
  ++Depth;
  Frame F;
  // Parameters live in the frame's reserved argument region; val() reads
  // Param values straight from it, so nothing is copied into Vals.
  F.Args = std::move(Args);
  size_t NumInsts = 0;
  for (const auto &BB : Body->Blocks)
    NumInsts += BB->Insts.size();
  F.Vals.reserve(NumInsts);
  // Call-entry safepoint (mirrors the prepared interpreter): register
  // the frame, then poll with every live ref in an enumerable root.
  if (GcOn) {
    Frames.push_back(&F);
    if (RT.gcPending())
      RT.gcSafepoint();
  }
  Signal Sig = execSeq(Body->Root, F);
  if (GcOn)
    Frames.pop_back();
  --Depth;
  if (Sig == Signal::Error) {
    Ok = false;
    return Value();
  }
  return F.RetVal;
}

TSAInterpreter::Signal TSAInterpreter::execSeq(const CSTSeq &Seq, Frame &F) {
  for (const auto &Node : Seq) {
    switch (Node->K) {
    case CSTNode::Kind::Basic: {
      Signal Sig = execBlock(*Node->BB, F);
      if (Sig != Signal::Normal)
        return Sig;
      F.PrevBlock = Node->BB;
      break;
    }
    case CSTNode::Kind::If: {
      bool Cond = val(Node->Cond, F).I != 0;
      if (Cond) {
        Signal Sig = execSeq(Node->Then, F);
        if (Sig != Signal::Normal)
          return Sig;
      } else if (!Node->Else.empty()) {
        Signal Sig = execSeq(Node->Else, F);
        if (Sig != Signal::Normal)
          return Sig;
      }
      // On the empty-else path PrevBlock remains the decision block,
      // matching the decision->join CFG edge.
      break;
    }
    case CSTNode::Kind::Loop: {
      while (true) {
        if (!RT.burnFuel())
          return (fail(RuntimeError::OutOfFuel), Signal::Error);
        Signal Sig = execSeq(Node->Header, F);
        if (Sig != Signal::Normal)
          return Sig; // Headers contain no break/continue/return, so this
                      // can only be an error.
        if (val(Node->Cond, F).I == 0)
          break; // Fall out; PrevBlock is the decision block.
        Sig = execSeq(Node->Body, F);
        if (Sig == Signal::Return || Sig == Signal::Error)
          return Sig;
        if (Sig == Signal::Break)
          break; // PrevBlock is the breaking block.
        // Normal fall-through or Continue: next iteration. This is the
        // loop back edge — the tree-walker's safepoint, matching the
        // prepared streams' backward-branch poll.
        if (GcOn && RT.gcPending())
          RT.gcSafepoint();
      }
      break;
    }
    case CSTNode::Kind::Try: {
      Signal Sig = execSeq(Node->Then, F);
      if (Sig == Signal::Error && isCatchableError(Err)) {
        // Transfer along the exception edge: the handler's phis select
        // their operand by the raising block.
        Err = RuntimeError::None;
        F.PrevBlock = F.RaiseBlock;
        Sig = execSeq(Node->Else, F);
      }
      if (Sig != Signal::Normal)
        return Sig;
      break;
    }
    case CSTNode::Kind::Return:
      if (Node->RetVal) {
        F.RetVal = val(Node->RetVal, F);
        F.HasRet = true;
      }
      return Signal::Return;
    case CSTNode::Kind::Break:
      return Signal::Break;
    case CSTNode::Kind::Continue:
      return Signal::Continue;
    }
  }
  return Signal::Normal;
}

TSAInterpreter::Signal TSAInterpreter::execBlock(const BasicBlock &BB,
                                                 Frame &F) {
  for (const auto &I : BB.Insts) {
    if (!RT.burnFuel())
      return (fail(RuntimeError::OutOfFuel), Signal::Error);
    if (!execInst(*I, BB, F)) {
      F.RaiseBlock = &BB; // Source of the (potential) exception edge.
      return Signal::Error;
    }
  }
  return Signal::Normal;
}

bool TSAInterpreter::execInst(const Instruction &I, const BasicBlock &BB,
                              Frame &F) {
  auto Set = [&](Value V) {
    F.Vals[&I] = V;
    return true;
  };

  switch (I.Op) {
  case Opcode::Const:
    switch (I.C.K) {
    case ConstantValue::Kind::Int:
      return Set(Value::makeInt(static_cast<int32_t>(I.C.IntVal)));
    case ConstantValue::Kind::Double:
      return Set(Value::makeDouble(I.C.DblVal));
    case ConstantValue::Kind::Bool:
      return Set(Value::makeBool(I.C.IntVal != 0));
    case ConstantValue::Kind::Char:
      return Set(Value::makeChar(static_cast<char>(I.C.IntVal)));
    case ConstantValue::Kind::Null:
      return Set(Value::makeNull());
    case ConstantValue::Kind::String:
      return Set(Value::makeRef(
          RT.internString(I.C.StrVal, Module.Types->getChar())));
    }
    return fail(RuntimeError::Internal);

  case Opcode::Param:
    // The value itself lives in Frame::Args; val() reads it from there.
    if (I.ParamIndex >= F.Args.size())
      return fail(RuntimeError::Internal);
    return true;

  case Opcode::Phi: {
    for (size_t K = 0; K != BB.Preds.size(); ++K)
      if (BB.Preds[K] == F.PrevBlock)
        return Set(val(I.Operands[K], F));
    return fail(RuntimeError::Internal);
  }

  case Opcode::Primitive:
  case Opcode::XPrimitive: {
    Value A = I.Operands.empty() ? Value() : val(I.Operands[0], F);
    Value B = I.Operands.size() > 1 ? val(I.Operands[1], F) : Value();
    switch (I.Prim) {
    case PrimOp::AddI:
      return Set(Value::makeInt(wrap32(int64_t(A.I) + B.I)));
    case PrimOp::SubI:
      return Set(Value::makeInt(wrap32(int64_t(A.I) - B.I)));
    case PrimOp::MulI:
      return Set(Value::makeInt(wrap32(int64_t(A.I) * B.I)));
    case PrimOp::DivI:
      if (B.I == 0)
        return fail(RuntimeError::DivisionByZero);
      if (A.I == std::numeric_limits<int32_t>::min() && B.I == -1)
        return Set(Value::makeInt(A.I));
      return Set(Value::makeInt(A.I / B.I));
    case PrimOp::RemI:
      if (B.I == 0)
        return fail(RuntimeError::DivisionByZero);
      if (A.I == std::numeric_limits<int32_t>::min() && B.I == -1)
        return Set(Value::makeInt(0));
      return Set(Value::makeInt(A.I % B.I));
    case PrimOp::NegI:
      return Set(Value::makeInt(wrap32(-int64_t(A.I))));
    case PrimOp::AndI:
      return Set(Value::makeInt(A.I & B.I));
    case PrimOp::OrI:
      return Set(Value::makeInt(A.I | B.I));
    case PrimOp::XorI:
      return Set(Value::makeInt(A.I ^ B.I));
    case PrimOp::ShlI:
      return Set(Value::makeInt(wrap32(int64_t(A.I) << (B.I & 31))));
    case PrimOp::ShrI:
      return Set(Value::makeInt(A.I >> (B.I & 31)));
    case PrimOp::NotI:
      return Set(Value::makeInt(~A.I));
    case PrimOp::CmpLtI:
      return Set(Value::makeBool(A.I < B.I));
    case PrimOp::CmpLeI:
      return Set(Value::makeBool(A.I <= B.I));
    case PrimOp::CmpGtI:
      return Set(Value::makeBool(A.I > B.I));
    case PrimOp::CmpGeI:
      return Set(Value::makeBool(A.I >= B.I));
    case PrimOp::CmpEqI:
      return Set(Value::makeBool(A.I == B.I));
    case PrimOp::CmpNeI:
      return Set(Value::makeBool(A.I != B.I));
    case PrimOp::IntToDouble:
      return Set(Value::makeDouble(static_cast<double>(A.I)));
    case PrimOp::IntToChar:
      return Set(Value::makeChar(static_cast<char>(A.I & 0xff)));
    case PrimOp::AddD:
      return Set(Value::makeDouble(A.D + B.D));
    case PrimOp::SubD:
      return Set(Value::makeDouble(A.D - B.D));
    case PrimOp::MulD:
      return Set(Value::makeDouble(A.D * B.D));
    case PrimOp::DivD:
      return Set(Value::makeDouble(A.D / B.D));
    case PrimOp::NegD:
      return Set(Value::makeDouble(-A.D));
    case PrimOp::CmpLtD:
      return Set(Value::makeBool(A.D < B.D));
    case PrimOp::CmpLeD:
      return Set(Value::makeBool(A.D <= B.D));
    case PrimOp::CmpGtD:
      return Set(Value::makeBool(A.D > B.D));
    case PrimOp::CmpGeD:
      return Set(Value::makeBool(A.D >= B.D));
    case PrimOp::CmpEqD:
      return Set(Value::makeBool(A.D == B.D));
    case PrimOp::CmpNeD:
      return Set(Value::makeBool(A.D != B.D));
    case PrimOp::DoubleToInt: {
      double D = A.D;
      int32_t R;
      if (std::isnan(D))
        R = 0;
      else if (D >= 2147483647.0)
        R = std::numeric_limits<int32_t>::max();
      else if (D <= -2147483648.0)
        R = std::numeric_limits<int32_t>::min();
      else
        R = static_cast<int32_t>(D);
      return Set(Value::makeInt(R));
    }
    case PrimOp::CharToInt:
      return Set(Value::makeInt(A.I));
    case PrimOp::NotB:
      return Set(Value::makeBool(A.I == 0));
    case PrimOp::CmpEqB:
      return Set(Value::makeBool((A.I != 0) == (B.I != 0)));
    case PrimOp::CmpNeB:
      return Set(Value::makeBool((A.I != 0) != (B.I != 0)));
    case PrimOp::CmpEqR:
      return Set(Value::makeBool(A.R == B.R));
    case PrimOp::CmpNeR:
      return Set(Value::makeBool(A.R != B.R));
    case PrimOp::InstanceOf: {
      if (A.R == 0)
        return Set(Value::makeBool(false));
      const HeapCell &Cell = RT.cell(A.R);
      Type *T = I.AuxType;
      bool Is;
      if (T->isArray())
        Is = Cell.isArray() && Cell.ArrayElemTy == T->getElemType();
      else
        Is = !Cell.isArray() &&
             Cell.Class->isSubclassOf(T->getClassSymbol());
      return Set(Value::makeBool(Is));
    }
    }
    return fail(RuntimeError::Internal);
  }

  case Opcode::NullCheck: {
    Value V = val(I.Operands[0], F);
    if (V.R == 0)
      return fail(RuntimeError::NullPointer);
    return Set(V);
  }

  case Opcode::IndexCheck: {
    Value Arr = val(I.Operands[0], F);
    Value Idx = val(I.Operands[1], F);
    const HeapCell &Cell = RT.cell(Arr.R);
    if (Idx.I < 0 || static_cast<size_t>(Idx.I) >= Cell.Slots.size())
      return fail(RuntimeError::IndexOutOfBounds);
    return Set(Idx);
  }

  case Opcode::Upcast: {
    Value V = val(I.Operands[0], F);
    if (V.R == 0)
      return Set(V); // (T)null succeeds, as in Java.
    const HeapCell &Cell = RT.cell(V.R);
    Type *T = I.OpType;
    bool Is;
    if (T->isArray())
      Is = Cell.isArray() && Cell.ArrayElemTy == T->getElemType();
    else
      Is = !Cell.isArray() && Cell.Class->isSubclassOf(T->getClassSymbol());
    if (!Is)
      return fail(RuntimeError::ClassCast);
    return Set(V);
  }

  case Opcode::Downcast:
    return Set(val(I.Operands[0], F)); // Modeling only; no code (paper §4).

  case Opcode::GetField: {
    Value Obj = val(I.Operands[0], F);
    return Set(RT.cell(Obj.R).Slots[I.Field->Slot]);
  }
  case Opcode::SetField: {
    Value Obj = val(I.Operands[0], F);
    RT.cell(Obj.R).Slots[I.Field->Slot] = val(I.Operands[1], F);
    return true;
  }
  case Opcode::GetElt: {
    Value Arr = val(I.Operands[0], F);
    Value Idx = val(I.Operands[1], F);
    return Set(RT.cell(Arr.R).Slots[Idx.I]);
  }
  case Opcode::SetElt: {
    Value Arr = val(I.Operands[0], F);
    Value Idx = val(I.Operands[1], F);
    RT.cell(Arr.R).Slots[Idx.I] = val(I.Operands[2], F);
    return true;
  }
  case Opcode::GetStatic:
    return Set(RT.getStatic(I.Field->Slot));
  case Opcode::SetStatic:
    RT.setStatic(I.Field->Slot, val(I.Operands[0], F));
    return true;

  case Opcode::ArrayLength: {
    Value Arr = val(I.Operands[0], F);
    return Set(
        Value::makeInt(static_cast<int32_t>(RT.cell(Arr.R).Slots.size())));
  }

  case Opcode::New:
    return Set(Value::makeRef(RT.allocObject(I.OpType->getClassSymbol())));

  case Opcode::NewArray: {
    Value Len = val(I.Operands[0], F);
    if (Len.I < 0)
      return fail(RuntimeError::NegativeArraySize);
    if (!RT.arrayFitsBudget(Len.I))
      return fail(RuntimeError::OutOfMemory);
    return Set(Value::makeRef(
        RT.allocArray(I.OpType->getElemType(), Len.I)));
  }

  case Opcode::Call: {
    std::vector<Value> Args;
    Args.reserve(I.Operands.size());
    for (const Instruction *Op : I.Operands)
      Args.push_back(val(Op, F));
    bool Ok = true;
    Value Ret = callMethodValue(I.Method, std::move(Args), Ok);
    if (!Ok)
      return false;
    if (I.hasResult())
      return Set(Ret);
    return true;
  }

  case Opcode::Dispatch: {
    std::vector<Value> Args;
    Args.reserve(I.Operands.size());
    for (const Instruction *Op : I.Operands)
      Args.push_back(val(Op, F));
    const HeapCell &Cell = RT.cell(Args[0].R);
    assert(!Cell.isArray() && "dispatch on an array");
    assert(I.Method->VTableSlot >= 0 &&
           static_cast<size_t>(I.Method->VTableSlot) <
               Cell.Class->VTable.size() &&
           "bad vtable slot");
    const MethodSymbol *Target =
        Cell.Class->VTable[I.Method->VTableSlot];
    bool Ok = true;
    Value Ret = callMethodValue(Target, std::move(Args), Ok);
    if (!Ok)
      return false;
    if (I.hasResult())
      return Set(Ret);
    return true;
  }
  }
  return fail(RuntimeError::Internal);
}
