//===- exec/Profile.cpp - Profile/tier introspection ----------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "exec/ExecUnit.h"

#include <cstdio>

using namespace safetsa;

/// Superinstructions occupy two code slots: the fused instruction plus
/// the (never-dispatched) original second instruction kept behind it so
/// every branch target and handler index survives fusion unchanged.
static bool isFusedPair(XOp Op) {
  // Fused forms are kept contiguous at the tail of SAFETSA_XOP_LIST.
  return Op >= XOp::BrCmpLtI && Op <= XOp::MoveJmp;
}

size_t PreparedModule::countOp(XOp Op) const {
  size_t N = 0;
  for (const auto &U : Units)
    for (size_t I = 0; I < U->Code.size(); ++I) {
      if (U->Code[I].Op == Op)
        ++N;
      if (isFusedPair(U->Code[I].Op))
        ++I; // The shadow slot is dead code; do not count it.
    }
  return N;
}

std::string safetsa::renderTierSummary(const PreparedModule &PM) {
  char Buf[256];
  size_t Fused = 0;
  for (unsigned Op = static_cast<unsigned>(XOp::BrCmpLtI);
       Op <= static_cast<unsigned>(XOp::MoveJmp); ++Op)
    Fused += PM.countOp(static_cast<XOp>(Op));
  std::snprintf(Buf, sizeof(Buf),
                "tier=%u units=%zu insts=%zu mono=%zu poly=%zu "
                "vtable=%zu direct=%zu fused=%zu ichits=%llu icmisses=%llu",
                PM.Tier, PM.Units.size(), PM.totalCode(),
                PM.countOp(XOp::DispatchMono), PM.countOp(XOp::DispatchIC),
                PM.countOp(XOp::Dispatch), PM.countOp(XOp::CallUnit), Fused,
                static_cast<unsigned long long>(
                    PM.ICHits.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    PM.ICMisses.load(std::memory_order_relaxed)));
  return Buf;
}
