//===- exec/Profile.cpp - Profile storage + tier introspection -*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "exec/ExecUnit.h"

#include <cstdio>
#include <new>

using namespace safetsa;

/// 64-byte-aligned zeroed atomic array, so each stripe's counters start
/// on their own cache line and never false-share with a neighbour
/// stripe's allocation.
static std::atomic<uint64_t> *allocCounterArray(size_t N) {
  if (N == 0)
    return nullptr;
  size_t Bytes = (N * sizeof(std::atomic<uint64_t>) + 63) / 64 * 64;
  void *Raw = ::operator new(Bytes, std::align_val_t(64));
  auto *P = static_cast<std::atomic<uint64_t> *>(Raw);
  for (size_t I = 0; I != N; ++I)
    new (P + I) std::atomic<uint64_t>(0);
  return P;
}

static void freeCounterArray(std::atomic<uint64_t> *P) {
  // std::atomic<uint64_t> is trivially destructible.
  if (P)
    ::operator delete(P, std::align_val_t(64));
}

ProfileData::ProfileData(size_t NumUnits, size_t NumSites)
    : NUnits(NumUnits), NSites(NumSites), Classes(NumSites * kWays) {
  for (auto &W : Classes)
    W.store(nullptr, std::memory_order_relaxed);
  for (Stripe &S : Stripes) {
    S.Inv = allocCounterArray(NUnits);
    S.Cnt = allocCounterArray(NSites * kCols);
  }
}

ProfileData::~ProfileData() {
  for (Stripe &S : Stripes) {
    freeCounterArray(S.Inv);
    freeCounterArray(S.Cnt);
  }
}

uint64_t ProfileData::totalDispatchSamples() const {
  uint64_t T = 0;
  for (const Stripe &S : Stripes)
    for (size_t I = 0, N = NSites * kCols; I != N; ++I)
      T += S.Cnt[I].load(std::memory_order_relaxed);
  return T;
}

/// Superinstructions occupy two code slots: the fused instruction plus
/// the (never-dispatched) original second instruction kept behind it so
/// every branch target and handler index survives fusion unchanged.
static bool isFusedPair(XOp Op) {
  // Fused forms are kept contiguous at the tail of SAFETSA_XOP_LIST.
  return Op >= XOp::BrCmpLtI && Op <= XOp::MoveJmp;
}

size_t PreparedModule::countOp(XOp Op) const {
  size_t N = 0;
  for (const auto &U : Units)
    for (size_t I = 0; I < U->Code.size(); ++I) {
      if (U->Code[I].Op == Op)
        ++N;
      if (isFusedPair(U->Code[I].Op))
        ++I; // The shadow slot is dead code; do not count it.
    }
  return N;
}

std::string safetsa::renderTierSummary(const PreparedModule &PM) {
  char Buf[384];
  size_t Fused = 0;
  for (unsigned Op = static_cast<unsigned>(XOp::BrCmpLtI);
       Op <= static_cast<unsigned>(XOp::MoveJmp); ++Op)
    Fused += PM.countOp(static_cast<XOp>(Op));
  std::snprintf(
      Buf, sizeof(Buf),
      "tier=%u units=%zu insts=%zu mono=%zu poly=%zu "
      "vtable=%zu direct=%zu fused=%zu profmono=%u monodirect=%u "
      "devirt=%u fguard=%u inlined=%u ichits=%llu icmisses=%llu "
      "guardmiss=%llu",
      PM.Tier, PM.Units.size(), PM.totalCode(),
      PM.countOp(XOp::DispatchMono), PM.countOp(XOp::DispatchIC),
      PM.countOp(XOp::Dispatch), PM.countOp(XOp::CallUnit), Fused,
      PM.Tiering.ProfiledMono, PM.Tiering.MonoLoweredDirect,
      PM.Tiering.DevirtCalls, PM.Tiering.FusionGuardedUnits,
      PM.Tiering.InlinedSites,
      static_cast<unsigned long long>(
          PM.ICHits.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          PM.ICMisses.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          PM.InlineGuardMisses.load(std::memory_order_relaxed)));
  return Buf;
}
