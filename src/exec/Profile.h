//===- exec/Profile.h - Tier-0 execution profiles -------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Side-table execution profiles gathered by tier-0 (profiling) execution
/// of a PreparedModule: per-method invocation counters and bounded
/// per-call-site receiver-class profiles for virtual dispatches.
///
/// The tables live *beside* the ExecInst streams, never inside them: the
/// prepared code stays immutable and shareable, and every counter is a
/// relaxed atomic, so any number of TSAExec instances can execute (and
/// profile) one PreparedModule concurrently with no races (TSan-proved
/// by the exec-tier tests). Profiling writes are cheap — one fetch_add
/// per activation, one bounded scan + fetch_add per virtual dispatch —
/// which is what lets tier 0 profile always-on.
///
/// When a method crosses the hot threshold, reprepareModule() consumes
/// the profile and produces a tier-1 stream with inline caches,
/// speculative devirtualization, and superinstruction fusion (see
/// ExecUnit.h and DESIGN.md §11). The IC state machine is resolved at
/// re-preparation time from the recorded classes: one distinct receiver
/// class -> monomorphic cache, up to kWays -> polymorphic cache, more
/// (Overflow != 0) -> megamorphic demotion back to the plain vtable
/// dispatch. Because recording is first-seen-ordered and re-preparation
/// only reads, identical executions yield identical tier-1 streams — the
/// determinism the replay tests assert.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_EXEC_PROFILE_H
#define SAFETSA_EXEC_PROFILE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace safetsa {

struct ClassSymbol;

/// Bounded receiver-class profile for one virtual-dispatch site.
/// Classes are claimed first-seen via CAS; samples of classes beyond the
/// kWays distinct ones land in Overflow (the megamorphic signal).
struct DispatchProfile {
  static constexpr unsigned kWays = 4;

  std::atomic<const ClassSymbol *> Classes[kWays];
  std::atomic<uint64_t> Counts[kWays];
  std::atomic<uint64_t> Overflow;

  DispatchProfile() : Overflow(0) {
    for (unsigned I = 0; I != kWays; ++I) {
      Classes[I].store(nullptr, std::memory_order_relaxed);
      Counts[I].store(0, std::memory_order_relaxed);
    }
  }

  /// Records one dispatch with receiver class \p C. Lock-free; safe from
  /// any number of threads.
  void record(const ClassSymbol *C) {
    for (unsigned I = 0; I != kWays; ++I) {
      const ClassSymbol *Cur = Classes[I].load(std::memory_order_relaxed);
      if (Cur == nullptr) {
        // Claim the first free way; on a lost race fall through to
        // whatever the winner installed.
        if (Classes[I].compare_exchange_strong(Cur, C,
                                               std::memory_order_relaxed))
          Cur = C;
      }
      if (Cur == C) {
        Counts[I].fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    Overflow.fetch_add(1, std::memory_order_relaxed);
  }

  /// Number of distinct receiver classes recorded (<= kWays).
  unsigned distinct() const {
    unsigned N = 0;
    while (N != kWays && Classes[N].load(std::memory_order_relaxed))
      ++N;
    return N;
  }

  /// Total samples, including overflow.
  uint64_t total() const {
    uint64_t T = Overflow.load(std::memory_order_relaxed);
    for (unsigned I = 0; I != kWays; ++I)
      T += Counts[I].load(std::memory_order_relaxed);
    return T;
  }

  bool megamorphic() const {
    return Overflow.load(std::memory_order_relaxed) != 0;
  }
};

/// The full profile side table for one tier-0 PreparedModule. Sized at
/// preparation time (one slot per unit, one DispatchProfile per lowered
/// Dispatch site, module-wide); indices are baked into ExecUnit::Index
/// and ExecInst::S so recording is a direct array access.
class ProfileData {
public:
  ProfileData(size_t NumUnits, size_t NumSites)
      : Invocations(NumUnits), Sites(NumSites) {
    for (auto &C : Invocations)
      C.store(0, std::memory_order_relaxed);
  }

  void recordInvocation(uint32_t UnitIdx) {
    Invocations[UnitIdx].fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t invocations(uint32_t UnitIdx) const {
    return Invocations[UnitIdx].load(std::memory_order_relaxed);
  }

  DispatchProfile &site(uint32_t SiteIdx) { return Sites[SiteIdx]; }
  const DispatchProfile &site(uint32_t SiteIdx) const {
    return Sites[SiteIdx];
  }

  size_t numUnits() const { return Invocations.size(); }
  size_t numSites() const { return Sites.size(); }

  /// True when any method has been entered at least \p Threshold times —
  /// the re-quickening trigger the cache polls.
  bool anyHot(uint64_t Threshold) const {
    for (const auto &C : Invocations)
      if (C.load(std::memory_order_relaxed) >= Threshold)
        return true;
    return false;
  }

  /// Total recorded virtual-dispatch samples (call-heaviness metric).
  uint64_t totalDispatchSamples() const {
    uint64_t T = 0;
    for (const auto &S : Sites)
      T += S.total();
    return T;
  }

private:
  std::vector<std::atomic<uint64_t>> Invocations;
  std::vector<DispatchProfile> Sites;
};

} // namespace safetsa

#endif // SAFETSA_EXEC_PROFILE_H
