//===- exec/Profile.h - Tier-0 execution profiles -------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Side-table execution profiles gathered by tier-0 (profiling) execution
/// of a PreparedModule: per-method invocation counters and bounded
/// per-call-site receiver-class profiles for virtual dispatches.
///
/// The tables live *beside* the ExecInst streams, never inside them: the
/// prepared code stays immutable and shareable, and every counter is a
/// relaxed atomic, so any number of TSAExec instances can execute (and
/// profile) one PreparedModule concurrently with no races (TSan-proved
/// by the exec-tier tests).
///
/// Counters are *striped per thread* (ShardedCounter::threadStripe picks
/// the stripe, each stripe's arrays are cache-line-aligned allocations)
/// so always-on tier-0 profiling does not ping-pong one cache line
/// between executing threads: recordInvocation / recordDispatch touch
/// only the calling thread's stripe. The one shared piece is the
/// first-seen receiver-class table (Ways below), claimed by CAS exactly
/// as before — it is written at most kWays times per site ever, so
/// sharing it costs nothing, and it preserves the deterministic
/// first-seen recording order the replay tests assert (single-threaded
/// executions still yield identical tier-1 streams). Readers merge the
/// stripes on demand: site() returns a summed SiteSummary snapshot, the
/// flush/merge point reprepareModule() reads through when it consumes
/// the profile.
///
/// When a method crosses the hot threshold, reprepareModule() consumes
/// the profile and produces a tier-1 stream with inline caches,
/// speculative devirtualization, and superinstruction fusion (see
/// ExecUnit.h and DESIGN.md §11). The IC state machine is resolved at
/// re-preparation time from the recorded classes: one distinct receiver
/// class -> monomorphic cache, up to kWays -> polymorphic cache, more
/// (Overflow != 0) -> megamorphic demotion back to the plain vtable
/// dispatch.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_EXEC_PROFILE_H
#define SAFETSA_EXEC_PROFILE_H

#include "support/ShardedCounter.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace safetsa {

struct ClassSymbol;

/// The full profile side table for one tier-0 PreparedModule. Sized at
/// preparation time (one invocation slot per unit, one bounded
/// receiver-class profile per lowered Dispatch site, module-wide);
/// indices are baked into ExecUnit::Index and ExecInst::S so recording
/// is a stripe pick plus a direct array access.
class ProfileData {
public:
  /// Distinct receiver classes tracked per site; more overflow into the
  /// megamorphic tally. Must match ICEntry::kMaxWays (static_assert in
  /// ExecUnit.h).
  static constexpr unsigned kWays = 4;
  /// Counter stripes. A power of two; modest because each stripe carries
  /// full per-unit/per-site arrays.
  static constexpr unsigned kStripes = 8;
  /// Saturation ceiling for every profile counter: adds stop here
  /// instead of wrapping, so no amount of tier-0 execution can ever
  /// wrap a hot tally around and demote the site/method below
  /// HotThreshold. Low enough that a cross-stripe sum (kStripes x cap,
  /// plus bounded racing overshoot) cannot overflow u64 either.
  static constexpr uint64_t kSaturate = uint64_t(1) << 60;

  /// Merged read-side snapshot of one dispatch site: classes in
  /// first-seen claim order with per-class sample counts summed across
  /// all thread stripes.
  struct SiteSummary {
    const ClassSymbol *Classes[kWays] = {};
    uint64_t Counts[kWays] = {};
    uint64_t Overflow = 0;

    /// Number of distinct receiver classes recorded (<= kWays).
    unsigned distinct() const {
      unsigned N = 0;
      while (N != kWays && Classes[N])
        ++N;
      return N;
    }
    bool megamorphic() const { return Overflow != 0; }
    /// Total samples, including overflow.
    uint64_t total() const {
      uint64_t T = Overflow;
      for (uint64_t C : Counts)
        T += C;
      return T;
    }
  };

  ProfileData(size_t NumUnits, size_t NumSites);
  ~ProfileData();
  ProfileData(const ProfileData &) = delete;
  ProfileData &operator=(const ProfileData &) = delete;

  /// Records \p N activations of unit \p UnitIdx (N > 1 is the bulk
  /// form the saturation boundary tests use). Lock-free; touches only
  /// the calling thread's stripe; saturates at kSaturate.
  void recordInvocation(uint32_t UnitIdx, uint64_t N = 1) {
    satAdd(stripe().Inv[UnitIdx], N);
  }

  /// Records \p N dispatches at site \p SiteIdx with receiver class
  /// \p C. Lock-free; safe from any number of threads. The class way is
  /// claimed first-seen via CAS in the shared table; the sample count
  /// lands in the calling thread's stripe and saturates at kSaturate.
  void recordDispatch(uint32_t SiteIdx, const ClassSymbol *C,
                      uint64_t N = 1) {
    std::atomic<const ClassSymbol *> *Ways = &Classes[SiteIdx * kWays];
    Stripe &S = stripe();
    for (unsigned I = 0; I != kWays; ++I) {
      const ClassSymbol *Cur = Ways[I].load(std::memory_order_relaxed);
      if (Cur == nullptr) {
        // Claim the first free way; on a lost race fall through to
        // whatever the winner installed.
        if (Ways[I].compare_exchange_strong(Cur, C,
                                            std::memory_order_relaxed))
          Cur = C;
      }
      if (Cur == C) {
        satAdd(S.Cnt[SiteIdx * kCols + I], N);
        return;
      }
    }
    satAdd(S.Cnt[SiteIdx * kCols + kWays], N);
  }

  /// Activations of unit \p UnitIdx, summed across stripes.
  uint64_t invocations(uint32_t UnitIdx) const {
    uint64_t T = 0;
    for (const Stripe &S : Stripes)
      T += S.Inv[UnitIdx].load(std::memory_order_relaxed);
    return T;
  }

  /// Merged snapshot of site \p SiteIdx (the re-preparation flush/merge
  /// point; also what tests read).
  SiteSummary site(uint32_t SiteIdx) const {
    SiteSummary Out;
    const std::atomic<const ClassSymbol *> *Ways = &Classes[SiteIdx * kWays];
    for (unsigned I = 0; I != kWays; ++I)
      Out.Classes[I] = Ways[I].load(std::memory_order_relaxed);
    for (const Stripe &S : Stripes) {
      for (unsigned I = 0; I != kWays; ++I)
        Out.Counts[I] +=
            S.Cnt[SiteIdx * kCols + I].load(std::memory_order_relaxed);
      Out.Overflow +=
          S.Cnt[SiteIdx * kCols + kWays].load(std::memory_order_relaxed);
    }
    return Out;
  }

  size_t numUnits() const { return NUnits; }
  size_t numSites() const { return NSites; }

  /// True when any method has been entered at least \p Threshold times —
  /// the re-quickening trigger the cache polls.
  bool anyHot(uint64_t Threshold) const {
    for (size_t U = 0; U != NUnits; ++U)
      if (invocations(static_cast<uint32_t>(U)) >= Threshold)
        return true;
    return false;
  }

  /// Total recorded virtual-dispatch samples (call-heaviness metric).
  uint64_t totalDispatchSamples() const;

private:
  /// Columns per site in a stripe's count matrix: kWays class tallies
  /// plus the overflow (megamorphic) tally.
  static constexpr unsigned kCols = kWays + 1;

  /// Saturating relaxed add: once a counter reaches kSaturate it stops
  /// moving. The load-then-add race lets concurrent writers overshoot
  /// the cap by at most (writers - 1) * N, which the headroom between
  /// kSaturate and u64 max absorbs with room for the stripe sum; what
  /// can never happen is a wrap back toward zero.
  static void satAdd(std::atomic<uint64_t> &C, uint64_t N) {
    if (C.load(std::memory_order_relaxed) >= kSaturate)
      return;
    C.fetch_add(N, std::memory_order_relaxed);
  }

  /// One thread stripe: separate 64-byte-aligned atomic arrays, so two
  /// stripes never share a cache line.
  struct Stripe {
    std::atomic<uint64_t> *Inv = nullptr; ///< [NumUnits]
    std::atomic<uint64_t> *Cnt = nullptr; ///< [NumSites * kCols]
  };

  Stripe &stripe() {
    return Stripes[ShardedCounter::threadStripe() % kStripes];
  }

  size_t NUnits;
  size_t NSites;
  /// Shared first-seen class ways, [NumSites * kWays], CAS-claimed.
  std::vector<std::atomic<const ClassSymbol *>> Classes;
  Stripe Stripes[kStripes];
};

} // namespace safetsa

#endif // SAFETSA_EXEC_PROFILE_H
