//===- exec/Prepare.cpp - CST/SSA -> quickened ExecUnit lowering *- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-time lowering of a verified SafeTSA module into prepared execution
/// units (see ExecUnit.h and DESIGN.md §10).
///
/// Slot assignment rides on the plane tables: finalize() enumerates every
/// value-producing instruction in block order x in-block order when it
/// assigns (PlaneId, PlaneIndex), and this pass walks the identical order
/// handing out dense frame slots — so a slot is exactly "flattened plane-
/// table position plus the argument base", and the per-block totals are
/// cross-checked against PlaneCounts. Param preloads are pinned to the
/// reserved argument region [0, NumArgs) instead, so calls write their
/// arguments straight into the callee frame.
///
/// Control flow is lowered in one pass over the CST. The CST invariants
/// (every sequence starts with a Basic node; If/Loop are followed by their
/// join/exit Basic; Return/Break/Continue terminate their sequence) let a
/// single pending-edge list carry every not-yet-resolved forward branch:
/// each pending entry remembers the emitted jump to patch and the CFG
/// source block of the edge, and the next lowered Basic node consumes the
/// list by emitting one move stub per edge (the phi moves for that
/// specific predecessor) in front of the block body. Back edges and
/// continues target an already-lowered loop header, so their moves are
/// emitted inline followed by a direct jump. Exception edges become stubs
/// after the handler: every may-raise instruction of a RaisesToCatch
/// block gets its Handler field patched to a stub that performs the
/// handler phis' moves for that raising block and jumps to the handler
/// body — the runtime transfers there for catchable traps, which is
/// exactly the tree-walker's "PrevBlock = RaiseBlock, execute the
/// handler" semantics, pre-resolved.
///
/// Phi moves are emitted sequentially in phi order with no parallel-copy
/// resolution, deliberately: the definitional tree-walker updates phis in
/// that order (an earlier phi's new value is visible to a later phi of
/// the same block), and the prepared form must replay the oracle's
/// read/write sequence exactly.
///
/// Tiering (DESIGN.md §11): the same lowering runs at tier 0 (profiling)
/// and tier 1 (optimizing). Dispatch sites are numbered module-wide in
/// lowering order — deterministic, so a tier-1 pass reads exactly the
/// profile slot its tier-0 twin wrote — and tier 1 additionally applies
/// closed-world devirtualization, profile-guided inline caches, and a
/// post-lowering superinstruction fusion peephole (fuseUnit below) that
/// never changes code indices: the fused instruction keeps the first
/// pair member's slot and the second member survives as a dead "shadow"
/// slot the fused handler steps over, so every branch target, handler
/// stub, and pending-edge patch stays valid verbatim.
///
//===----------------------------------------------------------------------===//

#include "exec/ExecUnit.h"

#include "sema/ClassTable.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <unordered_map>

using namespace safetsa;

namespace {

class MethodLowerer {
public:
  MethodLowerer(const PreparedModule &PM, const TSAMethod &M, ExecUnit &U,
                const PrepareOptions &Opts, uint32_t &NextSite,
                PreparedModule::TierStats &Stats)
      : PM(PM), M(M), U(U), Opts(Opts), NextSite(NextSite), Stats(Stats) {}

  /// False when the method exceeds prepared-form limits (frame slots or
  /// call arity); the unit is then unusable.
  bool run() {
    if (!assignSlots())
      return false;
    if (!lowerSeq(M.Root))
      return false;
    // Falling off the end of the root sequence is a void return; route
    // any straggling forward edges (e.g. the fall-out of a trailing Try)
    // to a final RetVoid.
    if (HaveFt || !Incoming.empty()) {
      size_t Here = pc();
      for (const Pending &P : Incoming)
        U.Code[P.Idx].X = static_cast<int32_t>(Here);
      Incoming.clear();
      HaveFt = false;
      ExecInst X;
      X.Op = XOp::RetVoid;
      emit(X);
    }
    return true;
  }

private:
  /// A forward branch awaiting its target: the emitted Jmp/BrFalse at
  /// Idx, plus the CFG source block for the target's phi moves.
  struct Pending {
    size_t Idx;
    const BasicBlock *From;
  };

  struct LoopScope {
    const BasicBlock *HeaderBB;
    std::vector<Pending> Breaks; ///< Loop-exit BrFalse + break jumps.
  };

  struct TryScope {
    const BasicBlock *HandlerBB;
    /// Raising blocks of the protected body, each with the code indices
    /// of its may-raise instructions (Handler patched to the stub).
    std::vector<std::pair<const BasicBlock *, std::vector<size_t>>> Sites;
  };

  bool assignSlots() {
    const MethodSymbol *Sym = M.Symbol;
    size_t NArgs = Sym->ParamTys.size() + (Sym->IsStatic ? 0 : 1);
    if (NArgs > 255)
      return false;
    U.NumArgs = static_cast<uint32_t>(NArgs);
    // GC slot map, argument region first: the receiver (always a ref)
    // and each ref-typed parameter. The caller writes these before
    // entry, so frame setup never nulls them.
    if (!Sym->IsStatic)
      U.RefSlots.push_back(0);
    for (size_t I = 0; I != Sym->ParamTys.size(); ++I)
      if (Sym->ParamTys[I]->isRef())
        U.RefSlots.push_back(
            static_cast<uint16_t>(I + (Sym->IsStatic ? 0 : 1)));
    U.NumRefArgs = static_cast<uint32_t>(U.RefSlots.size());
    uint32_t Next = static_cast<uint32_t>(NArgs);
    for (const BasicBlock *BB : M.Blocks) {
      unsigned BlockVals = 0;
      for (const Instruction *I : BB->Insts) {
        if (!I->hasResult())
          continue;
        ++BlockVals;
        if (I->Op == Opcode::Param) {
          if (I->ParamIndex >= NArgs)
            return false;
          Slot[I] = static_cast<uint16_t>(I->ParamIndex);
        } else {
          if (Next >= ExecInst::NoSlot)
            return false;
          // Body half of the GC slot map, straight from the verifier's
          // plane tables: a slot holds a reference iff its value lives
          // on a safe-ref plane (null/index certificates included) or a
          // base plane over a ref type. SafeIndex planes hold ints.
          const PlaneKey &K = M.Planes.key(I->PlaneId);
          if (K.K == PlaneKey::Kind::SafeRef ||
              (K.K == PlaneKey::Kind::Base && K.Ty && K.Ty->isRef()))
            U.RefSlots.push_back(static_cast<uint16_t>(Next));
          Slot[I] = static_cast<uint16_t>(Next++);
        }
      }
      // The slot walk and finalize()'s plane-table walk enumerate the
      // same values; a disagreement means the module was not finalized.
      unsigned PlaneVals = 0;
      for (unsigned C : BB->PlaneCounts)
        PlaneVals += C;
      assert(PlaneVals == BlockVals &&
             "slot layout disagrees with the plane tables");
      (void)PlaneVals;
      (void)BlockVals;
    }
    U.NumSlots = Next;
    return true;
  }

  uint16_t slot(const Instruction *I) const {
    auto It = Slot.find(I);
    assert(It != Slot.end() && "use of a value with no slot");
    return It->second;
  }

  size_t pc() const { return U.Code.size(); }
  size_t emit(const ExecInst &X) {
    U.Code.push_back(X);
    return U.Code.size() - 1;
  }
  size_t emitJmp(int32_t Target = 0) {
    ExecInst X;
    X.Op = XOp::Jmp;
    X.X = Target;
    return emit(X);
  }

  /// Moves for CFG edge From -> To: each phi of To receives its operand
  /// for that predecessor. Sequential in phi order (see file comment).
  void emitEdgeMoves(const BasicBlock *From, const BasicBlock *To) {
    if (To->Insts.empty() || !To->Insts.front()->isPhi())
      return;
    int K = -1;
    for (size_t I = 0; I != To->Preds.size(); ++I)
      if (To->Preds[I] == From) {
        K = static_cast<int>(I);
        break;
      }
    assert(K >= 0 && "phi edge source is not a predecessor");
    if (K < 0)
      return;
    for (const Instruction *P : To->Insts) {
      if (!P->isPhi())
        break;
      uint16_t Src = slot(P->Operands[K]);
      uint16_t Dst = slot(P);
      if (Src == Dst)
        continue; // Self-reference along a back edge.
      ExecInst X;
      X.Op = XOp::Move;
      X.A = Src;
      X.Dst = Dst;
      emit(X);
    }
  }

  /// Resolves the inline fall-through and every pending edge into an
  /// already-lowered target (a loop header): moves, then a direct jump.
  void flushEdgesTo(const BasicBlock *Target) {
    size_t Entry = BlockEntry.at(Target);
    if (HaveFt) {
      emitEdgeMoves(FtFrom, Target);
      emitJmp(static_cast<int32_t>(Entry));
      HaveFt = false;
    }
    for (const Pending &P : Incoming) {
      size_t Stub = pc();
      emitEdgeMoves(P.From, Target);
      emitJmp(static_cast<int32_t>(Entry));
      U.Code[P.Idx].X = static_cast<int32_t>(Stub);
    }
    Incoming.clear();
  }

  bool lowerSeq(const CSTSeq &Seq) {
    for (const CSTNode *Node : Seq) {
      switch (Node->K) {
      case CSTNode::Kind::Basic:
        if (!lowerBasic(*Node))
          return false;
        break;
      case CSTNode::Kind::If:
        if (!lowerIf(*Node))
          return false;
        break;
      case CSTNode::Kind::Loop:
        if (!lowerLoop(*Node))
          return false;
        break;
      case CSTNode::Kind::Try:
        if (!lowerTry(*Node))
          return false;
        break;
      case CSTNode::Kind::Return: {
        // A Return is a CST node, not a block: edges reaching it need no
        // phi moves (merges that carry values go through a Basic block).
        size_t Here = pc();
        for (const Pending &P : Incoming)
          U.Code[P.Idx].X = static_cast<int32_t>(Here);
        Incoming.clear();
        ExecInst X;
        if (Node->RetVal) {
          X.Op = XOp::RetVal;
          X.A = slot(Node->RetVal);
        } else {
          X.Op = XOp::RetVoid;
        }
        emit(X);
        HaveFt = false;
        return true; // Terminates its sequence.
      }
      case CSTNode::Kind::Break: {
        LoopScope &L = *Loops.back();
        if (HaveFt) {
          L.Breaks.push_back({emitJmp(), FtFrom});
          HaveFt = false;
        }
        for (const Pending &P : Incoming)
          L.Breaks.push_back(P);
        Incoming.clear();
        return true;
      }
      case CSTNode::Kind::Continue:
        flushEdgesTo(Loops.back()->HeaderBB);
        return true;
      }
    }
    return true;
  }

  bool lowerBasic(const CSTNode &N) {
    const BasicBlock *BB = N.BB;
    // Inline fall-through edge first; if stubs follow, jump over them.
    std::vector<size_t> ToEntry;
    if (HaveFt) {
      emitEdgeMoves(FtFrom, BB);
      if (!Incoming.empty())
        ToEntry.push_back(emitJmp());
      HaveFt = false;
    }
    // One move stub per pending edge; the last one falls into the body.
    for (size_t I = 0; I != Incoming.size(); ++I) {
      size_t Stub = pc();
      emitEdgeMoves(Incoming[I].From, BB);
      U.Code[Incoming[I].Idx].X = static_cast<int32_t>(Stub);
      if (I + 1 != Incoming.size())
        ToEntry.push_back(emitJmp());
    }
    Incoming.clear();
    size_t Entry = pc();
    for (size_t Idx : ToEntry)
      U.Code[Idx].X = static_cast<int32_t>(Entry);
    BlockEntry[BB] = Entry;

    bool Raises = N.RaisesToCatch && !Trys.empty();
    std::vector<size_t> *Sites = nullptr;
    for (const Instruction *I : BB->Insts) {
      long Idx = -1;
      if (!emitInst(*I, Idx))
        return false;
      if (Idx >= 0 && Raises && I->mayRaise()) {
        if (!Sites) {
          Trys.back()->Sites.push_back({BB, {}});
          Sites = &Trys.back()->Sites.back().second;
        }
        Sites->push_back(static_cast<size_t>(Idx));
      }
    }
    HaveFt = true;
    FtFrom = BB;
    return true;
  }

  bool lowerIf(const CSTNode &N) {
    // The condition is referenced from the end of the Basic block that
    // directly precedes the If, so control arrives as a fall-through.
    assert(HaveFt && Incoming.empty() && "if must follow its decision");
    const BasicBlock *Decision = FtFrom;
    ExecInst Br;
    Br.Op = XOp::BrFalse;
    Br.A = slot(N.Cond);
    size_t BrIdx = emit(Br);
    if (!lowerSeq(N.Then))
      return false;
    if (N.Else.empty()) {
      // Decision -> join edge: the BrFalse becomes a pending edge and the
      // then-arm's fall-through (if any) stays the inline one.
      Incoming.push_back({BrIdx, Decision});
      return true;
    }
    if (HaveFt) {
      Incoming.push_back({emitJmp(), FtFrom});
      HaveFt = false;
    }
    // The then-arm's pendings target the join, not the else entry.
    std::vector<Pending> Saved = std::move(Incoming);
    Incoming.clear();
    U.Code[BrIdx].X = static_cast<int32_t>(pc());
    HaveFt = true;
    FtFrom = Decision;
    if (!lowerSeq(N.Else))
      return false;
    for (const Pending &P : Saved)
      Incoming.push_back(P);
    return true;
  }

  bool lowerLoop(const CSTNode &N) {
    assert(!N.Header.empty() && N.Header.front()->K == CSTNode::Kind::Basic &&
           "loop header must start with a basic block");
    const BasicBlock *HB = N.Header.front()->BB;
    LoopScope L;
    L.HeaderBB = HB;
    // Entry edges flow into the header's first Basic node as usual.
    if (!lowerSeq(N.Header))
      return false;
    assert(HaveFt && Incoming.empty() && "loop header must fall through");
    ExecInst Br;
    Br.Op = XOp::BrFalse;
    Br.A = slot(N.Cond);
    L.Breaks.push_back({emit(Br), FtFrom}); // Exit edge from the decision.
    Loops.push_back(&L);
    bool Ok = lowerSeq(N.Body);
    Loops.pop_back();
    if (!Ok)
      return false;
    // Back edges: the latch fall-through and any pending body fall-outs
    // re-enter the header with that edge's phi moves.
    flushEdgesTo(HB);
    Incoming = std::move(L.Breaks);
    HaveFt = false;
    return true;
  }

  bool lowerTry(const CSTNode &N) {
    assert(!N.Else.empty() && N.Else.front()->K == CSTNode::Kind::Basic &&
           "try handler must start with a basic block");
    TryScope T;
    T.HandlerBB = N.Else.front()->BB;
    Trys.push_back(&T);
    bool Ok = lowerSeq(N.Then);
    Trys.pop_back();
    if (!Ok)
      return false;
    // Body fall-outs jump over the handler and the exception stubs.
    if (HaveFt) {
      Incoming.push_back({emitJmp(), FtFrom});
      HaveFt = false;
    }
    std::vector<Pending> Saved = std::move(Incoming);
    Incoming.clear();
    // The handler entry has no forward in-edges; it is reached only
    // through the exception stubs below.
    if (!lowerSeq(N.Else))
      return false;
    if (HaveFt) {
      Incoming.push_back({emitJmp(), FtFrom});
      HaveFt = false;
    }
    size_t Entry = BlockEntry.at(T.HandlerBB);
    for (const auto &[RaiseBB, Idxs] : T.Sites) {
      size_t Stub = pc();
      emitEdgeMoves(RaiseBB, T.HandlerBB);
      emitJmp(static_cast<int32_t>(Entry));
      for (size_t I : Idxs)
        U.Code[I].Handler = static_cast<int32_t>(Stub);
    }
    for (const Pending &P : Saved)
      Incoming.push_back(P);
    return true;
  }

  /// Emits the quickened form of one instruction; OutIdx receives the
  /// code index (-1 when the instruction lowers to no code). False on a
  /// prepared-form limit (call arity > 255).
  bool emitInst(const Instruction &I, long &OutIdx) {
    OutIdx = -1;
    ExecInst X;
    switch (I.Op) {
    case Opcode::Param: // Lives in the argument region; no code.
    case Opcode::Phi:   // Becomes edge moves; no code.
      return true;

    case Opcode::Const:
      X.Dst = slot(&I);
      if (I.C.K == ConstantValue::Kind::String) {
        // String cells are per-Runtime, so the unit keeps the text and
        // interns at execution time, exactly like the tree-walker.
        X.Op = XOp::LoadStr;
        X.X = static_cast<int32_t>(U.StrPool.size());
        U.StrPool.push_back(&I.C.StrVal);
      } else {
        X.Op = XOp::LoadConst;
        X.X = static_cast<int32_t>(U.ConstPool.size());
        U.ConstPool.push_back(constValue(I.C));
      }
      break;

    case Opcode::Primitive:
    case Opcode::XPrimitive:
      // PrimOp and the prepared opcode block share one order; dispatch
      // selects the operation with no secondary switch.
      X.Op = static_cast<XOp>(static_cast<unsigned>(XOp::AddI) +
                              static_cast<unsigned>(I.Prim));
      if (!I.Operands.empty())
        X.A = slot(I.Operands[0]);
      if (I.Operands.size() > 1)
        X.B = slot(I.Operands[1]);
      X.Dst = slot(&I);
      if (I.Prim == PrimOp::InstanceOf)
        X.P = I.AuxType;
      break;

    case Opcode::NullCheck:
      X.Op = XOp::NullCheck;
      X.A = slot(I.Operands[0]);
      X.Dst = slot(&I);
      break;
    case Opcode::IndexCheck:
      X.Op = XOp::IndexCheck;
      X.A = slot(I.Operands[0]);
      X.B = slot(I.Operands[1]);
      X.Dst = slot(&I);
      break;
    case Opcode::Upcast:
      X.Op = XOp::Upcast;
      X.A = slot(I.Operands[0]);
      X.Dst = slot(&I);
      X.P = I.OpType;
      break;
    case Opcode::Downcast: // Free at runtime; just a slot copy.
      X.Op = XOp::Move;
      X.A = slot(I.Operands[0]);
      X.Dst = slot(&I);
      break;

    case Opcode::GetField:
      X.Op = XOp::GetField;
      X.A = slot(I.Operands[0]);
      X.X = static_cast<int32_t>(I.Field->Slot);
      X.Dst = slot(&I);
      break;
    case Opcode::SetField:
      X.Op = XOp::SetField;
      X.A = slot(I.Operands[0]);
      X.B = slot(I.Operands[1]);
      X.X = static_cast<int32_t>(I.Field->Slot);
      break;
    case Opcode::GetElt:
      X.Op = XOp::GetElt;
      X.A = slot(I.Operands[0]);
      X.B = slot(I.Operands[1]);
      X.Dst = slot(&I);
      break;
    case Opcode::SetElt:
      X.Op = XOp::SetElt;
      X.A = slot(I.Operands[0]);
      X.B = slot(I.Operands[1]);
      X.C = slot(I.Operands[2]);
      break;
    case Opcode::GetStatic:
      X.Op = XOp::GetStatic;
      X.X = static_cast<int32_t>(I.Field->Slot);
      X.Dst = slot(&I);
      break;
    case Opcode::SetStatic:
      X.Op = XOp::SetStatic;
      X.A = slot(I.Operands[0]);
      X.X = static_cast<int32_t>(I.Field->Slot);
      break;

    case Opcode::ArrayLength:
      X.Op = XOp::ArrayLength;
      X.A = slot(I.Operands[0]);
      X.Dst = slot(&I);
      break;
    case Opcode::New:
      X.Op = XOp::New;
      X.P = I.OpType->getClassSymbol();
      X.Dst = slot(&I);
      break;
    case Opcode::NewArray:
      X.Op = XOp::NewArray;
      X.A = slot(I.Operands[0]);
      X.P = I.OpType->getElemType();
      X.Dst = slot(&I);
      break;

    case Opcode::Call:
    case Opcode::Dispatch: {
      if (I.Operands.size() > 255)
        return false;
      X.N = static_cast<uint8_t>(I.Operands.size());
      X.X = static_cast<int32_t>(U.ArgPool.size());
      for (const Instruction *Op : I.Operands)
        U.ArgPool.push_back(slot(Op));
      X.Dst = I.hasResult() ? slot(&I) : ExecInst::NoSlot;
      if (I.Op == Opcode::Dispatch) {
        X.P = I.Method; // Static target; vtable resolved per receiver.
        lowerDispatch(I, X);
      } else if (I.Method->isNative()) {
        X.Op = XOp::CallNative;
        X.P = I.Method;
      } else {
        X.Op = XOp::CallUnit;
        X.P = PM.unitFor(I.Method); // Null (-> Internal) for bodyless.
      }
      break;
    }
    }
    OutIdx = static_cast<long>(emit(X));
    return true;
  }

  /// Tier-aware lowering of one virtual-call site. Every Dispatch burns a
  /// module-wide site id in lowering order (even when the site is devirted
  /// or demoted) so tier-0 and tier-1 passes agree on profile indices.
  void lowerDispatch(const Instruction &I, ExecInst &X) {
    uint32_t Site = NextSite++;
    X.Op = XOp::Dispatch;
    if (Opts.Tier == 0) {
      X.S = static_cast<int32_t>(Site); // Tier 0 profiles into this slot.
      return;
    }
    if (Opts.NoInlineCaches)
      return;
    // Classify the site from the tier-0 profile *before* deciding how to
    // lower it: closed-world devirtualization below subsumes most
    // profiled-monomorphic sites (single receiver class implies single
    // implementation on a whole-program corpus), so classification by
    // emitted opcode alone would undercount them — the tier1_mono_sites
    // == 0 artifact this bookkeeping exists to fix.
    const ProfileData *Prof = Opts.Profile;
    ProfileData::SiteSummary DP;
    if (Prof && Site < Prof->numSites())
      DP = Prof->site(Site);
    unsigned Ways = DP.distinct();
    bool Mega = DP.megamorphic();
    if (Mega)
      ++Stats.Megamorphic;
    else if (Ways == 1)
      ++Stats.ProfiledMono;
    else if (Ways > 1)
      ++Stats.ProfiledPoly;
    // Closed-world devirtualization: MJ modules are whole programs, so
    // when every class that can reach this site resolves the vtable slot
    // to one unit, no guard is needed — the site becomes a direct call.
    if (const ExecUnit *Only = closedWorldTarget(I.Method)) {
      X.Op = XOp::CallUnit;
      X.P = Only;
      ++Stats.DevirtCalls;
      ++U.DevirtSites;
      if (Ways == 1 && !Mega)
        ++Stats.MonoLoweredDirect;
      return;
    }
    // Speculative inline cache from the tier-0 receiver-class profile:
    // 1 recorded class -> monomorphic guard, 2..kWays -> bounded PIC,
    // overflow -> megamorphic demotion back to the plain vtable path.
    if (Ways == 0 || Mega) {
      ++Stats.VtableSites;
      return;
    }
    ICEntry E;
    E.Method = I.Method;
    for (unsigned W = 0; W != Ways; ++W) {
      const ClassSymbol *C = DP.Classes[W];
      size_t Slot = static_cast<size_t>(I.Method->VTableSlot);
      const MethodSymbol *T =
          I.Method->VTableSlot >= 0 && Slot < C->VTable.size()
              ? C->VTable[Slot]
              : nullptr;
      const ExecUnit *TU = PM.unitFor(T);
      if (!TU) {
        ++Stats.VtableSites;
        return; // Native/bodyless override: keep the generic path.
      }
      E.Classes[W] = C;
      E.Targets[W] = TU;
    }
    E.Ways = static_cast<uint8_t>(Ways);
    X.Op = Ways == 1 ? XOp::DispatchMono : XOp::DispatchIC;
    X.S = static_cast<int32_t>(U.ICs.size());
    U.ICs.push_back(E);
    if (Ways == 1) {
      ++Stats.MonoICs;
      ++Stats.MonoLoweredDirect;
    } else {
      ++Stats.PolyICs;
    }
  }

  /// The single unit every possible receiver of \p MS resolves to, or
  /// null when receivers disagree (or any target lacks a body).
  const ExecUnit *closedWorldTarget(const MethodSymbol *MS) const {
    if (!MS->Owner || MS->VTableSlot < 0)
      return nullptr;
    size_t Slot = static_cast<size_t>(MS->VTableSlot);
    const ExecUnit *Only = nullptr;
    for (const auto &C : PM.Module->Table->getClasses()) {
      if (!C->isSubclassOf(MS->Owner))
        continue;
      const MethodSymbol *T = Slot < C->VTable.size() ? C->VTable[Slot]
                                                      : nullptr;
      const ExecUnit *TU = PM.unitFor(T);
      if (!TU || (Only && TU != Only))
        return nullptr;
      Only = TU;
    }
    return Only;
  }

  static Value constValue(const ConstantValue &C) {
    switch (C.K) {
    case ConstantValue::Kind::Int:
      return Value::makeInt(static_cast<int32_t>(C.IntVal));
    case ConstantValue::Kind::Double:
      return Value::makeDouble(C.DblVal);
    case ConstantValue::Kind::Bool:
      return Value::makeBool(C.IntVal != 0);
    case ConstantValue::Kind::Char:
      return Value::makeChar(static_cast<char>(C.IntVal));
    case ConstantValue::Kind::Null:
    case ConstantValue::Kind::String: // Handled by LoadStr.
      return Value::makeNull();
    }
    return Value();
  }

  const PreparedModule &PM;
  const TSAMethod &M;
  ExecUnit &U;
  const PrepareOptions &Opts;
  /// Module-wide dispatch-site counter, shared across units (profile
  /// slot allocation at tier 0, profile lookup at tier 1).
  uint32_t &NextSite;
  /// Module-wide tier-1 site-classification tallies (PM->Tiering).
  PreparedModule::TierStats &Stats;

  std::unordered_map<const Instruction *, uint16_t> Slot;
  std::unordered_map<const BasicBlock *, size_t> BlockEntry;
  std::vector<Pending> Incoming;
  std::vector<LoopScope *> Loops;
  std::vector<TryScope *> Trys;
  const BasicBlock *FtFrom = nullptr;
  bool HaveFt = false;
};

/// Superinstruction fusion (tier 1): one peephole pass over a fully
/// lowered and handler-patched unit. Fusable pairs (the hottest static
/// pairs in this ISA — compare+branch and check+guarded-access):
///
///   Cmp{Lt,Le,Gt,Ge,Eq,Ne}I + BrFalse(cmp)      -> BrCmp*I
///   Cmp{Lt,Le,Gt,Ge,Eq,Ne}D + BrFalse(cmp)      -> BrCmp*D
///   NullCheck  + GetField(cert)                 -> NullGetField
///   NullCheck  + SetField(cert, v)              -> NullSetField
///   IndexCheck + GetElt(arr, cert)              -> IdxGetElt
///   IndexCheck + SetElt(arr, cert, v)           -> IdxSetElt
///   Move + Move                                 -> Move2
///   Move + Jmp                                  -> MoveJmp
///
/// The move forms target the flat-frame phi-edge copies that run on
/// every loop iteration (parallel copies before a back edge, then the
/// jump itself): Move2 performs both copies in source order, MoveJmp
/// folds the unconditional branch into the preceding copy.
///
/// The fused instruction overwrites the first member in place (keeping
/// its Handler, so catchable traps transfer identically) and the second
/// member stays behind as a dead shadow slot the handler steps over —
/// code indices never move, so branch targets and handler stubs need no
/// re-patching. A pair is skipped when its second member is a branch or
/// handler target (jumping into the middle must still work). Fused forms
/// still write the first member's Dst (the check certificate / compare
/// result), so they are bit-identical in effect to their two-instruction
/// expansion and need no liveness analysis.
static void fuseUnit(ExecUnit &U) {
  const size_t N = U.Code.size();
  std::vector<bool> IsTarget(N + 1, false);
  for (const ExecInst &X : U.Code) {
    // GuardInline's X is its fallback block, InlineRet's and
    // LeaveInline's their continuation/handler — all are code indices a
    // jump lands on.
    if (X.Op == XOp::Jmp || X.Op == XOp::BrFalse ||
        X.Op == XOp::GuardInline || X.Op == XOp::InlineRet ||
        X.Op == XOp::LeaveInline)
      IsTarget[static_cast<size_t>(X.X)] = true;
    if (X.Handler >= 0)
      IsTarget[static_cast<size_t>(X.Handler)] = true;
  }
  for (size_t I = 0; I + 1 < N; ++I) {
    if (IsTarget[I + 1])
      continue;
    ExecInst &A = U.Code[I];
    const ExecInst &B = U.Code[I + 1];
    if (A.Op >= XOp::CmpLtI && A.Op <= XOp::CmpNeI &&
        B.Op == XOp::BrFalse && B.A == A.Dst) {
      // BrCmp*I mirrors the Cmp*I order, so fusion is a constant offset.
      A.Op = static_cast<XOp>(static_cast<unsigned>(XOp::BrCmpLtI) +
                              (static_cast<unsigned>(A.Op) -
                               static_cast<unsigned>(XOp::CmpLtI)));
      A.X = B.X; // Branch target on false.
      ++I;
      continue;
    }
    if (A.Op >= XOp::CmpLtD && A.Op <= XOp::CmpNeD &&
        B.Op == XOp::BrFalse && B.A == A.Dst) {
      A.Op = static_cast<XOp>(static_cast<unsigned>(XOp::BrCmpLtD) +
                              (static_cast<unsigned>(A.Op) -
                               static_cast<unsigned>(XOp::CmpLtD)));
      A.X = B.X;
      ++I;
      continue;
    }
    if (A.Op == XOp::Move && B.Op == XOp::Jmp) {
      A.Op = XOp::MoveJmp;
      A.X = B.X; // Unconditional target; the shadow Jmp is unreachable.
      ++I;
      continue;
    }
    if (A.Op == XOp::Move && B.Op == XOp::Move) {
      // Both copies in source order: B may legally read A's destination.
      A.Op = XOp::Move2;
      A.B = B.Dst;
      A.C = B.A;
      ++I;
      continue;
    }
    if (A.Op == XOp::NullCheck &&
        (B.Op == XOp::GetField || B.Op == XOp::SetField) && B.A == A.Dst) {
      // A: ref in A.A, certificate out A.Dst. Fused: field slot in X,
      // result (Get) or value (Set) slot in C.
      A.C = B.Op == XOp::GetField ? B.Dst : B.B;
      A.X = B.X;
      A.Op = B.Op == XOp::GetField ? XOp::NullGetField : XOp::NullSetField;
      ++I;
      continue;
    }
    if (A.Op == XOp::IndexCheck &&
        (B.Op == XOp::GetElt || B.Op == XOp::SetElt) && B.A == A.A &&
        B.B == A.Dst) {
      // A: array in A.A, index in A.B, certificate out A.Dst. Fused:
      // result (Get) or value (Set) slot in C.
      A.C = B.Op == XOp::GetElt ? B.Dst : B.C;
      A.Op = B.Op == XOp::GetElt ? XOp::IdxGetElt : XOp::IdxSetElt;
      ++I;
      continue;
    }
  }
}

/// Per-unit fusion guard: true when fusing \p U could only produce
/// compare+branch superinstructions AND tier 1 found no call improvement
/// in the unit (no inline caches, no devirtualized sites). Cmp+BrFalse
/// is the one fusion family with a measured-regression history — its
/// handler branches and redispatches per arm, which loses on
/// data-dependent branch chains (a cmov PC select was worse still, see
/// DESIGN.md §11) — so when a unit offers nothing else, the re-prepared
/// stream is not a predictable improvement and the tier-0 shape is kept.
/// Units with any unconditional-win fusion (move coalescing, fused
/// null/index-checked accesses) or any IC/devirt gain always fuse.
static bool fusionOnlyCondBranches(const ExecUnit &U) {
  if (!U.ICs.empty() || U.DevirtSites != 0 || U.InlinedSites != 0)
    return false;
  // Mirror fuseUnit's pair matching (targets included) in a dry run.
  const size_t N = U.Code.size();
  std::vector<bool> IsTarget(N + 1, false);
  for (const ExecInst &X : U.Code) {
    if (X.Op == XOp::Jmp || X.Op == XOp::BrFalse ||
        X.Op == XOp::GuardInline || X.Op == XOp::InlineRet ||
        X.Op == XOp::LeaveInline)
      IsTarget[static_cast<size_t>(X.X)] = true;
    if (X.Handler >= 0)
      IsTarget[static_cast<size_t>(X.Handler)] = true;
  }
  bool AnyCondBr = false;
  for (size_t I = 0; I + 1 < N; ++I) {
    if (IsTarget[I + 1])
      continue;
    const ExecInst &A = U.Code[I];
    const ExecInst &B = U.Code[I + 1];
    bool CmpBr = ((A.Op >= XOp::CmpLtI && A.Op <= XOp::CmpNeI) ||
                  (A.Op >= XOp::CmpLtD && A.Op <= XOp::CmpNeD)) &&
                 B.Op == XOp::BrFalse && B.A == A.Dst;
    if (CmpBr) {
      AnyCondBr = true;
      ++I;
      continue;
    }
    bool OtherPair =
        (A.Op == XOp::Move &&
         (B.Op == XOp::Jmp || B.Op == XOp::Move)) ||
        (A.Op == XOp::NullCheck &&
         (B.Op == XOp::GetField || B.Op == XOp::SetField) && B.A == A.Dst) ||
        (A.Op == XOp::IndexCheck &&
         (B.Op == XOp::GetElt || B.Op == XOp::SetElt) && B.A == A.A &&
         B.B == A.Dst);
    if (OtherPair)
      return false; // An unconditional-win fusion exists; fuse the unit.
  }
  return AnyCondBr;
}

static bool envFlag(const char *Name) {
  const char *E = std::getenv(Name);
  return E && *E && !(E[0] == '0' && E[1] == '\0');
}

//===----------------------------------------------------------------------===//
// Speculative inlining (tier 1, DESIGN.md §14)
//===----------------------------------------------------------------------===//
//
// Runs between pass 2 (lowering) and pass 3 (fusion): call sites whose
// callee is statically known — devirtualized/static CallUnit, or a
// profiled-monomorphic DispatchMono whose one IC way names the callee —
// are replaced by the callee's instruction body spliced into the caller's
// stream. The callee frame is flattened into an extension of the caller
// frame, so the call's frame push/pop disappears. The splice enters
// through exactly one instruction — EnterInline for direct sites,
// GuardInline for profiled-mono sites (a class hit doubles as the
// enter) — and every body exit leaves in one instruction: RetVal
// becomes InlineRet (result move + ledger decrement + jump past the
// splice), RetVoid a jumping LeaveInline. The EnterInline/GuardInline
// depth tick keeps the activation ledger exact, so StackOverflow still
// traps where the tree-walker's recursive call would.
//
// Two properties keep the flattened form cheap enough to beat the call
// it replaces (bench_exec's inlining section gates on it):
//
//  * One shared extension region per caller. Control can only ever be
//    inside one splice at a time (bodies are self-contained, and a
//    callee trap leaves through the site's trampoline before caller
//    code resumes), so every splice renumbers by the same ExtBase =
//    caller NumSlots and the region is sized by the LARGEST callee, not
//    the sum — a caller with a dozen splices grows its frame (and its
//    entry ref-nulling walk) by one callee, not twelve.
//
//  * Parameter aliasing. When the callee never writes a parameter slot
//    (pre-fusion streams write frame slots only through Dst, so this is
//    an exact scan), the body's parameter reads are renumbered straight
//    to the caller's argument slots and the per-execution entry Moves
//    vanish. The caller cannot mutate those slots mid-splice — only the
//    body executes between EnterInline and LeaveInline.
//
// Profile gating: sites the tier-0 run never executed keep their calls
// (a cold splice is pure frame/stream bloat). reprepareModule always
// passes the tier-0 ProfileData; direct tier-1 preparation without a
// profile splices every eligible site (the forced-inlining test mode).
//
// Profiled-mono sites keep their receiver speculation as a GuardInline
// in front of the splice; a guard miss branches to an out-of-line copy
// of the original DispatchMono appended behind the unit's code — the
// un-inlined callee ExecUnit stays live, so no deoptimization metadata
// is needed, and the fallback also tallies the site's IC counters.
//
// Exception structure is preserved: a callee-internal handler rebases
// into the spliced body; a callee trap that would unwind transfers to a
// per-site trampoline (LeaveInline, then jump to the caller's handler
// stub) when the call site itself sits in a try, so catch semantics and
// the depth ledger both match the un-inlined execution. The extension's
// ref-slot map merged into the caller's is the deduplicated union over
// the sharing splices, so caller-entry nulling and GC root enumeration
// cover every slot any splice treats as a ref. Type safety survives the
// sharing: handlers write whole Values, so a shared slot holding
// another splice's non-ref carries R == 0 and the root scan reads it as
// null, never as a stale ref.
//
// The pass is two-phase and closed: every site across every unit is
// planned against the original pass-2 streams, then every mutated unit
// is rebuilt into fresh, exactly-reserved vectors and swapped in at the
// end. A callee snapshot therefore never contains Enter/LeaveInline
// from its own inlining, keeping each splice's one-Leave accounting
// exact even when a callee was itself a caller.

/// True when \p U performs any unit-level call (native calls excluded:
/// they cannot re-enter prepared code).
static bool hasUnitCall(const ExecUnit &U) {
  for (const ExecInst &X : U.Code)
    switch (X.Op) {
    case XOp::CallUnit:
    case XOp::Dispatch:
    case XOp::DispatchMono:
    case XOp::DispatchIC:
      return true;
    default:
      break;
    }
  return false;
}

/// Callee eligibility: fits the instruction budget, contains no virtual
/// dispatch, and any remaining direct calls target leaf units — so a
/// flattened frame nests at most one real invoke deep and the splice
/// size stays bounded by the budget.
static bool inlinableCallee(const ExecUnit &C, uint32_t Budget) {
  if (C.Code.size() > Budget)
    return false;
  for (const ExecInst &X : C.Code)
    switch (X.Op) {
    case XOp::Dispatch:
    case XOp::DispatchMono:
    case XOp::DispatchIC:
      return false;
    case XOp::CallUnit: {
      const ExecUnit *T = static_cast<const ExecUnit *>(X.P);
      if (!T || hasUnitCall(*T))
        return false;
      break;
    }
    default:
      break;
    }
  return true;
}

/// True when \p C writes any of its own parameter slots. Pre-fusion
/// streams write frame slots only through Dst (the fused forms that
/// also write B/C are produced after inlining), so this scan is exact
/// for the callee snapshots the inliner splices.
static bool writesParamSlot(const ExecUnit &C) {
  for (const ExecInst &X : C.Code)
    if (X.Dst != ExecInst::NoSlot && X.Dst < C.NumArgs)
      return true;
  return false;
}

static void inlineHotSites(PreparedModule &PM, const PrepareOptions &Opts) {
  struct Plan {
    size_t SiteIdx;                ///< Caller code index of the call.
    const ExecUnit *Callee;
    const ClassSymbol *GuardClass; ///< Non-null for DispatchMono sites.
    bool AliasArgs;                ///< Read-only params: no entry Moves.
    uint64_t Heat;                 ///< Profiled dynamic calls through it.
  };
  const ProfileData *Prof = Opts.Profile;
  // Phase 1: plan every unit against the original streams (no unit is
  // mutated until every plan is final).
  std::vector<std::vector<Plan>> Plans(PM.Units.size());
  for (const auto &UP : PM.Units) {
    const ExecUnit &U = *UP;
    // A caller the tier-0 run never entered cannot amortize a bigger
    // frame or stream; keep its calls.
    if (Prof && U.Index < Prof->numUnits() &&
        Prof->invocations(U.Index) == 0)
      continue;
    for (size_t I = 0; I != U.Code.size(); ++I) {
      const ExecInst &X = U.Code[I];
      const ExecUnit *Callee = nullptr;
      const ClassSymbol *Guard = nullptr;
      uint64_t Heat = 1; // No profile: splice every eligible site.
      if (X.Op == XOp::CallUnit) {
        Callee = static_cast<const ExecUnit *>(X.P);
        // Direct calls carry no per-site profile; the callee's
        // module-wide activation count is the closest heat signal.
        if (Prof && Callee && Callee->Index < Prof->numUnits())
          Heat = Prof->invocations(Callee->Index);
      } else if (X.Op == XOp::DispatchMono && X.S >= 0) {
        const ICEntry &E = U.ICs[X.S];
        Callee = E.Targets[0];
        Guard = E.Classes[0];
        if (Prof && static_cast<size_t>(X.S) < Prof->numSites())
          Heat = Prof->site(static_cast<uint32_t>(X.S)).total();
      }
      if (!Callee || Callee == &U || Heat == 0)
        continue;
      if (!inlinableCallee(*Callee, Opts.InlineBudget))
        continue;
      if (Callee->NumArgs != X.N)
        continue; // Defensive; arity always matches in verified modules.
      if (U.NumSlots + Callee->NumSlots > 0xfffeu)
        continue; // The shared extension would overflow the slot space.
      Plans[U.Index].push_back(
          {I, Callee, Guard, !writesParamSlot(*Callee), Heat});
    }
  }

  // Phase 2: rebuild every planned caller into fresh vectors, reading
  // only original streams; swap in at the end (phase 3).
  struct Rebuilt {
    ExecUnit *U;
    std::vector<ExecInst> Code;
    std::vector<uint16_t> ArgPool;
    std::vector<Value> ConstPool;
    std::vector<const std::string *> StrPool;
    std::vector<uint16_t> RefSlots;
    uint32_t NumSlots;
  };
  std::vector<Rebuilt> Results;
  for (auto &UP : PM.Units) {
    ExecUnit &U = *UP;
    const std::vector<Plan> &Sites = Plans[U.Index];
    if (Sites.empty())
      continue;
    const std::vector<ExecInst> &Old = U.Code;
    const size_t OldN = Old.size();

    // All splices in this caller time-share one frame extension at
    // [ExtBase, ExtBase + MaxExt): sized by the largest callee, not the
    // sum (16-bit slot safety was checked per site in phase 1).
    const uint16_t ExtBase = static_cast<uint16_t>(U.NumSlots);
    uint32_t MaxExt = 0;
    for (const Plan &P : Sites)
      MaxExt = std::max(MaxExt, P.Callee->NumSlots);

    // The extension's ref-slot map is the deduplicated union over the
    // sharing splices; aliased parameter slots are caller slots the
    // caller's own map already tracks.
    std::vector<uint16_t> ExtRefs;
    for (const Plan &P : Sites)
      for (uint16_t RS : P.Callee->RefSlots) {
        if (P.AliasArgs && RS < P.Callee->NumArgs)
          continue;
        ExtRefs.push_back(static_cast<uint16_t>(RS + ExtBase));
      }
    std::sort(ExtRefs.begin(), ExtRefs.end());
    ExtRefs.erase(std::unique(ExtRefs.begin(), ExtRefs.end()),
                  ExtRefs.end());

    Rebuilt R;
    R.U = &U;
    R.NumSlots = U.NumSlots + MaxExt;
    // Exact final sizes, reserved once (no per-splice reallocation).
    {
      size_t CodeLen = OldN, ArgLen = U.ArgPool.size();
      size_t ConstLen = U.ConstPool.size(), StrLen = U.StrPool.size();
      size_t RefLen = U.RefSlots.size() + ExtRefs.size();
      for (const Plan &P : Sites) {
        const ExecInst &S = Old[P.SiteIdx];
        bool Guarded = P.GuardClass != nullptr;
        bool Tramp = S.Handler >= 0;
        // Guard-or-Enter + arg moves (aliased: none) + body +
        // trampoline?, replacing the 1-instruction call site; guarded
        // sites add a 2-instruction out-of-line fallback. Body exits
        // jump the ledger out themselves, so there is no continuation
        // instruction.
        CodeLen += 1 + (P.AliasArgs ? 0 : S.N) + P.Callee->Code.size() +
                   (Tramp ? 1 : 0) - 1 + (Guarded ? 2 : 0);
        ArgLen += P.Callee->ArgPool.size();
        ConstLen += P.Callee->ConstPool.size();
        StrLen += P.Callee->StrPool.size();
      }
      R.Code.reserve(CodeLen);
      R.ArgPool.reserve(ArgLen);
      R.ConstPool.reserve(ConstLen);
      R.StrPool.reserve(StrLen);
      R.RefSlots.reserve(RefLen);
    }
    // Caller pools stay as stable prefixes: verbatim instructions (and
    // the out-of-line fallback's DispatchMono) keep their pool indices.
    R.ArgPool.insert(R.ArgPool.end(), U.ArgPool.begin(), U.ArgPool.end());
    R.ConstPool.insert(R.ConstPool.end(), U.ConstPool.begin(),
                       U.ConstPool.end());
    R.StrPool.insert(R.StrPool.end(), U.StrPool.begin(), U.StrPool.end());
    R.RefSlots.insert(R.RefSlots.end(), U.RefSlots.begin(),
                      U.RefSlots.end());
    R.RefSlots.insert(R.RefSlots.end(), ExtRefs.begin(), ExtRefs.end());

    // Old code index -> new code index (Map[OldN] = end), plus the new
    // positions whose X / Handler still hold old caller indices to remap
    // once the map is complete.
    std::vector<size_t> Map(OldN + 1, 0);
    std::vector<size_t> FixX, FixH;
    struct FallbackRec {
      ExecInst Orig;   ///< The replaced DispatchMono, verbatim.
      size_t AfterOld; ///< Old index of the site's continuation.
      size_t GuardAt;  ///< New index of the GuardInline to patch.
    };
    std::vector<FallbackRec> Fallbacks;

    size_t NextPlan = 0;
    for (size_t I = 0; I != OldN; ++I) {
      Map[I] = R.Code.size();
      if (NextPlan != Sites.size() && Sites[NextPlan].SiteIdx == I) {
        const Plan &P = Sites[NextPlan++];
        const ExecUnit &C = *P.Callee;
        const ExecInst S = Old[I];
        const bool Tramp = S.Handler >= 0;

        // Exactly one entry instruction: a guard hit doubles as the
        // EnterInline (depth check + ledger bump in the handler), so
        // only unguarded direct splices need the separate EnterInline.
        if (P.GuardClass) {
          ExecInst G;
          G.Op = XOp::GuardInline;
          G.A = U.ArgPool[S.X]; // Receiver slot (safe-ref certificate).
          G.P = P.GuardClass;
          Fallbacks.push_back({S, I + 1, R.Code.size()});
          R.Code.push_back(G); // X patched to the fallback below.
        } else {
          ExecInst E;
          E.Op = XOp::EnterInline;
          R.Code.push_back(E);
        }
        // Slot renumbering: body slots land in the shared extension;
        // when the body never writes its parameters, parameter reads
        // alias the caller's argument slots directly and the entry
        // Moves below are dropped.
        auto MapSlot = [&U, &S, &P, ExtBase, &C](uint16_t Slot) {
          if (P.AliasArgs && Slot < C.NumArgs)
            return U.ArgPool[S.X + Slot];
          return static_cast<uint16_t>(Slot + ExtBase);
        };
        // Frame flattening: the call's argument transfer becomes plain
        // Moves into the extension's argument region (read-only-param
        // callees skip even that).
        if (!P.AliasArgs)
          for (unsigned K = 0; K != S.N; ++K) {
            ExecInst Mv;
            Mv.Op = XOp::Move;
            Mv.A = U.ArgPool[S.X + K];
            Mv.Dst = static_cast<uint16_t>(ExtBase + K);
            R.Code.push_back(Mv);
          }
        const size_t BodyBase = R.Code.size();
        const size_t TrampAt = BodyBase + C.Code.size();
        // First instruction after the splice: body exits jump straight
        // there, carrying the ledger decrement themselves.
        const size_t After = TrampAt + (Tramp ? 1 : 0);
        const int32_t ConstOff = static_cast<int32_t>(R.ConstPool.size());
        const int32_t StrOff = static_cast<int32_t>(R.StrPool.size());
        const int32_t ArgOff = static_cast<int32_t>(R.ArgPool.size());
        R.ConstPool.insert(R.ConstPool.end(), C.ConstPool.begin(),
                           C.ConstPool.end());
        R.StrPool.insert(R.StrPool.end(), C.StrPool.begin(),
                         C.StrPool.end());
        for (uint16_t A : C.ArgPool)
          R.ArgPool.push_back(MapSlot(A));

        for (const ExecInst &CI : C.Code) {
          ExecInst Y = CI;
          // A/B/C are always frame slots in this ISA; unused fields are
          // zero and never read, so blind renumbering is safe.
          Y.A = MapSlot(Y.A);
          Y.B = MapSlot(Y.B);
          Y.C = MapSlot(Y.C);
          if (Y.Dst != ExecInst::NoSlot)
            Y.Dst = MapSlot(Y.Dst);
          switch (CI.Op) {
          case XOp::RetVal:
            Y.Op = XOp::InlineRet; // Result move + ledger-out + jump.
            Y.Dst = S.Dst;         // Site result slot (may be NoSlot).
            Y.X = static_cast<int32_t>(After);
            break;
          case XOp::RetVoid:
            Y.Op = XOp::LeaveInline; // Ledger-out + jump, one dispatch.
            Y.X = static_cast<int32_t>(After);
            break;
          case XOp::Jmp:
          case XOp::BrFalse:
            Y.X += static_cast<int32_t>(BodyBase); // Body-internal.
            break;
          case XOp::LoadConst:
            Y.X += ConstOff;
            break;
          case XOp::LoadStr:
            Y.X += StrOff;
            break;
          case XOp::CallUnit:
          case XOp::CallNative:
            Y.X += ArgOff;
            break;
          default:
            break; // Field/static/pool-free: X is frame-independent.
          }
          if (CI.Handler >= 0)
            Y.Handler = static_cast<int32_t>(BodyBase) + CI.Handler;
          else if (Tramp)
            Y.Handler = static_cast<int32_t>(TrampAt);
          R.Code.push_back(Y);
        }
        if (Tramp) {
          // Catchable callee trap with the call site in a try: one
          // jumping LeaveInline unwinds the inlined frame and enters
          // the caller's handler stub.
          ExecInst L;
          L.Op = XOp::LeaveInline;
          L.X = S.Handler; // Old caller index; remapped below.
          FixX.push_back(R.Code.size());
          R.Code.push_back(L);
        }
        ++U.InlinedSites;
        ++PM.Tiering.InlinedSites;
        PM.Tiering.InlinedHeat += P.Heat;
        continue;
      }
      ExecInst Y = Old[I];
      if (Y.Op == XOp::Jmp || Y.Op == XOp::BrFalse)
        FixX.push_back(R.Code.size());
      if (Y.Handler >= 0)
        FixH.push_back(R.Code.size());
      R.Code.push_back(Y);
    }
    Map[OldN] = R.Code.size();

    // Out-of-line guard-miss fallbacks: the original DispatchMono (same
    // IC site, same caller ArgPool indices — the prefix is unchanged),
    // then a jump back to the site's continuation.
    for (const FallbackRec &F : Fallbacks) {
      R.Code[F.GuardAt].X = static_cast<int32_t>(R.Code.size());
      ExecInst D = F.Orig;
      if (D.Handler >= 0)
        FixH.push_back(R.Code.size());
      R.Code.push_back(D);
      ExecInst J;
      J.Op = XOp::Jmp;
      J.X = static_cast<int32_t>(F.AfterOld);
      FixX.push_back(R.Code.size());
      R.Code.push_back(J);
    }

    for (size_t Pos : FixX)
      R.Code[Pos].X =
          static_cast<int32_t>(Map[static_cast<size_t>(R.Code[Pos].X)]);
    for (size_t Pos : FixH)
      R.Code[Pos].Handler =
          static_cast<int32_t>(Map[static_cast<size_t>(R.Code[Pos].Handler)]);
    Results.push_back(std::move(R));
  }

  // Phase 3: swap every rebuilt unit in. Until here every unit still
  // exposed its original stream, so cross-unit splices read consistent
  // (pre-inline) callee bodies.
  for (Rebuilt &R : Results) {
    ExecUnit &U = *R.U;
    U.Code = std::move(R.Code);
    U.ArgPool = std::move(R.ArgPool);
    U.ConstPool = std::move(R.ConstPool);
    U.StrPool = std::move(R.StrPool);
    U.RefSlots = std::move(R.RefSlots);
    U.NumSlots = R.NumSlots;
  }
}

} // namespace

std::unique_ptr<PreparedModule>
safetsa::prepareModule(const TSAModule &Module) {
  return prepareModule(Module, PrepareOptions{});
}

std::unique_ptr<PreparedModule>
safetsa::prepareModule(const TSAModule &Module, const PrepareOptions &Opts) {
  auto PM = std::make_unique<PreparedModule>();
  PM->Module = &Module;
  PM->Tier = Opts.Tier;
  PM->ByGlobalId.assign(Module.Table->getAllMethods().size(), nullptr);

  // Pass 1: shells, so cross-method calls (and tier-1 IC targets) take
  // direct unit pointers.
  for (const auto &M : Module.Methods) {
    auto U = std::make_unique<ExecUnit>();
    U->Method = M.get();
    U->Symbol = M->Symbol;
    U->Index = static_cast<uint32_t>(PM->Units.size());
    if (M->Symbol->GlobalId >= PM->ByGlobalId.size())
      PM->ByGlobalId.resize(M->Symbol->GlobalId + 1, nullptr);
    PM->ByGlobalId[M->Symbol->GlobalId] = U.get();
    PM->Units.push_back(std::move(U));
  }

  // Pass 2: lower every body. NextSite numbers dispatch sites
  // module-wide in lowering order (deterministic across preparations).
  uint32_t NextSite = 0;
  for (auto &U : PM->Units) {
    // Size oracle (reprepareModule passes the tier-0 twin): pre-inline
    // tier-1 streams match the tier-0 shape instruction for instruction,
    // so one up-front reservation replaces the per-emit growth.
    if (Opts.SizeHints && U->Index < Opts.SizeHints->Units.size()) {
      const ExecUnit &H = *Opts.SizeHints->Units[U->Index];
      U->Code.reserve(H.Code.size());
      U->ArgPool.reserve(H.ArgPool.size());
      U->ConstPool.reserve(H.ConstPool.size());
      U->StrPool.reserve(H.StrPool.size());
      U->RefSlots.reserve(H.RefSlots.size());
    }
    MethodLowerer L(*PM, *U->Method, *U, Opts, NextSite, PM->Tiering);
    if (!L.run())
      return nullptr;
  }

  // Pass 2.5 (tier 1): speculative inlining — splice small statically-
  // known callees into their callers before fusion, so the fused stream
  // sees the flattened code (DESIGN.md §14).
  if (Opts.Tier >= 1 && !Opts.NoInlining && Opts.InlineBudget > 0 &&
      !envFlag("SAFETSA_EXEC_NOINLINE"))
    inlineHotSites(*PM, Opts);

  // Pass 3 (tier 1): fuse after every handler stub and branch target has
  // been patched, so the peephole sees final indices. The per-unit guard
  // keeps the tier-0 stream shape where the re-prepared form would not
  // be an improvement (compare+branch-only units with no call gains).
  if (Opts.Tier >= 1 && !Opts.NoFusion && !envFlag("SAFETSA_EXEC_NOFUSION"))
    for (auto &U : PM->Units) {
      if (!Opts.NoFusionGuard && fusionOnlyCondBranches(*U)) {
        ++PM->Tiering.FusionGuardedUnits;
        continue;
      }
      fuseUnit(*U);
    }

  // Tier 0 carries the side profile the optimizing tier will consume.
  if (Opts.Tier == 0)
    PM->Profile = std::make_unique<ProfileData>(PM->Units.size(), NextSite);

  for (const auto &U : PM->Units) {
    const MethodSymbol *S = U->Symbol;
    if (S->IsStatic && S->Name == "main" && S->ParamTys.empty()) {
      PM->MainUnit = U.get();
      break;
    }
  }
  return PM;
}

std::unique_ptr<PreparedModule>
safetsa::reprepareModule(const PreparedModule &T0, PrepareOptions Opts) {
  Opts.Tier = 1;
  Opts.Profile = T0.Profile.get();
  Opts.SizeHints = &T0; // Reserve tier-1 tables at tier-0 twin sizes.
  return prepareModule(*T0.Module, Opts);
}
