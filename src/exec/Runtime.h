//===- exec/Runtime.h - Shared MJ runtime ---------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime substrate shared by the SafeTSA evaluator and the baseline
/// bytecode interpreter: tagged values, a heap of objects and arrays,
/// static-field storage, native (imported) methods, runtime exceptions,
/// and an execution-fuel budget so differential/property tests can bound
/// runaway programs deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_EXEC_RUNTIME_H
#define SAFETSA_EXEC_RUNTIME_H

#include "gc/GC.h"
#include "sema/ClassTable.h"

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace safetsa {

/// A tagged runtime value. Ref 0 is the null reference.
struct Value {
  enum class Kind : uint8_t { Int, Double, Bool, Char, Ref } K = Kind::Int;
  int32_t I = 0;
  double D = 0.0;
  uint32_t R = 0;

  static Value makeInt(int32_t V) {
    Value X;
    X.K = Kind::Int;
    X.I = V;
    return X;
  }
  static Value makeDouble(double V) {
    Value X;
    X.K = Kind::Double;
    X.D = V;
    return X;
  }
  static Value makeBool(bool V) {
    Value X;
    X.K = Kind::Bool;
    X.I = V;
    return X;
  }
  static Value makeChar(char V) {
    Value X;
    X.K = Kind::Char;
    X.I = static_cast<unsigned char>(V);
    return X;
  }
  static Value makeRef(uint32_t R) {
    Value X;
    X.K = Kind::Ref;
    X.R = R;
    return X;
  }
  static Value makeNull() { return makeRef(0); }

  bool isNull() const { return K == Kind::Ref && R == 0; }

  /// Rendering used by both interpreters for differential comparison.
  std::string str() const;
};

/// Why execution stopped abnormally. These model Java's runtime
/// exceptions; with no try/catch in MJ they unwind to the top.
enum class RuntimeError : uint8_t {
  None,
  NullPointer,
  IndexOutOfBounds,
  DivisionByZero,
  ClassCast,
  NegativeArraySize,
  StackOverflow,
  OutOfFuel,
  OutOfMemory,
  Internal
};

const char *runtimeErrorName(RuntimeError E);

/// Runtime exceptions an MJ catch-all handler intercepts (the five Java
/// runtime exceptions MJ programs can raise); resource exhaustion and
/// interpreter-internal failures always unwind. Shared by the tree-walking
/// and prepared interpreters so trap catchability cannot drift.
bool isCatchableError(RuntimeError E);

/// One heap cell: either an object (Class != null) or an array.
struct HeapCell {
  const ClassSymbol *Class = nullptr; // Null for arrays.
  Type *ArrayElemTy = nullptr;        // Arrays only.
  std::vector<Value> Slots;           // Fields or elements.

  bool isArray() const { return Class == nullptr; }
};

/// Execution state shared across method activations. Owns the cell heap
/// and its collector (gc/GC.h); the Runtime itself is the root provider
/// for static fields and the interned-string pool, while interpreters
/// register additional providers for their active frame stacks.
class Runtime : public GcRootProvider {
public:
  explicit Runtime(ClassTable &Table, uint64_t Fuel = 200'000'000,
                   const GcOptions &GcOpts = {})
      : Table(Table), FuelLeft(Fuel) {
    Heap.emplace_back(); // Cell 0 is the never-used null slot.
    Statics.resize(Table.getNumStaticSlots());
    Gc.attach(&Heap, this);
    Gc.setOptions(GcOpts);
    const char *Env = std::getenv("SAFETSA_PARANOID");
    Paranoid = Env && *Env && !(Env[0] == '0' && Env[1] == '\0');
  }

  ClassTable &getTable() { return Table; }

  /// Allocates a zero-initialized instance of \p Class.
  uint32_t allocObject(const ClassSymbol *Class);
  /// Allocates an array of \p Length elements of \p ElemTy, zeroed.
  uint32_t allocArray(Type *ElemTy, int32_t Length);

  /// Whether one array allocation of \p Length elements can fit the
  /// collector's heap budget at all. When it cannot, no collection could
  /// ever make room, so the interpreters trap OutOfMemory *before*
  /// touching the backing store — a mobile-code `new int[huge]` (e.g.
  /// from wrapped 32-bit arithmetic) must never commit host memory. This
  /// is a hard per-allocation cap, distinct from the collection trigger,
  /// and applies even with GcOptions::Disable.
  bool arrayFitsBudget(int32_t Length) const {
    return static_cast<size_t>(Length) * sizeof(Value) <=
           Gc.options().HeapBudget;
  }
  /// Interns a char[] for a string constant (one cell per distinct
  /// constant per runtime; MJ string literals are immutable by contract).
  /// \p CharTy is the canonical char type, recorded as the element type so
  /// dynamic casts treat the cell as a char[].
  uint32_t internString(const std::string &S, Type *CharTy);

  HeapCell &cell(uint32_t Ref) {
    assert(Ref != 0 && Ref < Heap.size() && "bad heap reference");
    // Paranoid mode (SAFETSA_PARANOID env): keep the check in release
    // builds and extend it to swept cells, trapping hard instead of
    // corrupting memory when hostile/fuzzed input slips a bad ref
    // through. The branch costs one predictable compare when off.
    if (Paranoid && !Gc.isLive(Ref))
      heapTrap(Ref);
    return Heap[Ref];
  }

  Value getStatic(unsigned Slot) const { return Statics[Slot]; }
  void setStatic(unsigned Slot, Value V) { Statics[Slot] = V; }

  /// Default (zero) value for a type.
  static Value zeroValue(const Type *Ty);

  /// Executes an imported method; prints go to the captured output.
  Value callNative(NativeMethod M, const std::vector<Value> &Args);

  /// Burns one unit of fuel; returns false when exhausted.
  bool burnFuel() { return FuelLeft == 0 ? false : (--FuelLeft, true); }

  /// Remaining fuel; initial fuel minus this is the executed-instruction
  /// count, which benchmarks use to classify programs by call density.
  uint64_t fuelLeft() const { return FuelLeft; }

  const std::string &getOutput() const { return Output; }
  void clearOutput() { Output.clear(); }

  /// --- Garbage collection (see gc/GC.h, DESIGN.md §13) ---

  const GcOptions &gcOptions() const { return Gc.options(); }
  void setGcOptions(const GcOptions &O) { Gc.setOptions(O); }
  bool gcEnabled() const { return Gc.enabled(); }

  /// The safepoint poll: one relaxed load. Interpreters branch to
  /// gcSafepoint() only when this is set.
  bool gcPending() const { return Gc.pending(); }
  /// Safepoint slow path: collect now. Only call where every live
  /// reference is in an enumerable root (frame slots, statics, interned
  /// strings) — i.e. at back edges and call entry.
  void gcSafepoint() { Gc.collect(); }
  /// Forces a full collection regardless of the pending flag (tests).
  /// Returns the number of cells reclaimed; 0 when GC is disabled.
  uint64_t collectNow() { return Gc.collect(); }

  void gcAddRootProvider(GcRootProvider &P) { Gc.addRootProvider(&P); }
  void gcRemoveRootProvider(GcRootProvider &P) { Gc.removeRootProvider(&P); }

  /// Statics + interned string constants are this heap's baseline roots.
  void enumerateRoots(GcMarker &M) override;

  /// Introspection for tests/benches.
  size_t heapCells() const { return Heap.size(); }
  size_t gcLiveCells() const { return Gc.liveCells(); }
  const GcStats &gcStats() const { return Gc.stats(); }
  const std::vector<std::pair<std::string, uint32_t>> &stringPool() const {
    return StringPool;
  }

private:
  /// Paranoid-mode hard stop on an invalid heap reference.
  [[noreturn]] static void heapTrap(uint32_t Ref);

  ClassTable &Table;
  std::vector<HeapCell> Heap;
  std::vector<Value> Statics;
  std::vector<std::pair<std::string, uint32_t>> StringPool;
  std::string Output;
  uint64_t FuelLeft;
  GcHeap Gc;
  bool Paranoid = false;
};

class TSAModule;

/// Applies \p Module's static-field initializers to \p RT. Shared by both
/// interpreters (and callable before either) so a prepared execution and
/// its tree-walk oracle start from identical static state.
void applyStaticInitializers(const TSAModule &Module, Runtime &RT);

/// Result of running a method to completion.
struct ExecResult {
  RuntimeError Err = RuntimeError::None;
  Value Ret;
  bool ok() const { return Err == RuntimeError::None; }
};

} // namespace safetsa

#endif // SAFETSA_EXEC_RUNTIME_H
