//===- exec/TSAInterp.h - SafeTSA evaluator -------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A definitional interpreter for SafeTSA modules. It executes the Control
/// Structure Tree directly, resolving phis by remembering the dynamically
/// taken predecessor edge. Its purpose is semantic: differential testing
/// against the bytecode interpreter proves that SafeTSA generation,
/// optimization, and the encode/decode round trip all preserve program
/// behaviour. (The paper's JITs were unreleased work-in-progress; all of
/// its reported results are static, see DESIGN.md §2.)
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_EXEC_TSAINTERP_H
#define SAFETSA_EXEC_TSAINTERP_H

#include "exec/Runtime.h"
#include "tsa/Method.h"

#include <unordered_map>

namespace safetsa {

class TSAInterpreter : public GcRootProvider {
public:
  TSAInterpreter(const TSAModule &Module, Runtime &RT)
      : Module(Module), RT(RT) {
    GcOn = RT.gcEnabled();
    if (GcOn)
      RT.gcAddRootProvider(*this);
  }
  ~TSAInterpreter() override {
    if (GcOn)
      RT.gcRemoveRootProvider(*this);
  }

  /// GC root scan: every Value of every active frame (the Vals
  /// environment plus the argument region). The tree-walker keeps no
  /// slot map — it marks all ref-kinded values it holds, which is the
  /// same set (its environments are typed per SSA value). Runs only
  /// inside a safepoint collection; mark order does not matter, so the
  /// unordered environment walk stays deterministic in effect.
  void enumerateRoots(GcMarker &M) override;

  /// Applies the module's static-field initializers.
  void initializeStatics();

  /// Runs \p Method with \p Args (instance methods expect the receiver
  /// first). Returns the result or the runtime exception that unwound.
  ExecResult call(const MethodSymbol *Method, std::vector<Value> Args);

  /// Convenience: locates `static main()` and runs it after statics.
  ExecResult runMain();

private:
  struct Frame {
    std::unordered_map<const Instruction *, Value> Vals;
    /// Receiver (if any) + parameters. Param values are read straight
    /// from this reserved region instead of being copied into Vals.
    std::vector<Value> Args;
    const BasicBlock *PrevBlock = nullptr;
    /// Block whose instruction raised the pending exception (for catch
    /// phi resolution: the exception edge's source).
    const BasicBlock *RaiseBlock = nullptr;
    Value RetVal;
    bool HasRet = false;
  };

  enum class Signal : uint8_t { Normal, Return, Break, Continue, Error };

  Signal execSeq(const CSTSeq &Seq, Frame &F);
  Signal execBlock(const BasicBlock &BB, Frame &F);
  bool execInst(const Instruction &I, const BasicBlock &BB, Frame &F);

  Value callMethodValue(const MethodSymbol *Callee, std::vector<Value> Args,
                        bool &Ok);

  Value val(const Instruction *I, Frame &F) const {
    if (I->Op == Opcode::Param) {
      assert(I->ParamIndex < F.Args.size() && "param index out of range");
      return F.Args[I->ParamIndex];
    }
    auto It = F.Vals.find(I);
    assert(It != F.Vals.end() && "use of unevaluated value");
    return It->second;
  }

  bool fail(RuntimeError E) {
    if (Err == RuntimeError::None)
      Err = E;
    return false;
  }

  const TSAModule &Module;
  Runtime &RT;
  RuntimeError Err = RuntimeError::None;
  unsigned Depth = 0;
  /// Active frames, innermost last (GC root enumeration). Maintained
  /// only when the Runtime's collector is enabled.
  std::vector<Frame *> Frames;
  bool GcOn = false;
  static constexpr unsigned MaxDepth = 400;
};

} // namespace safetsa

#endif // SAFETSA_EXEC_TSAINTERP_H
