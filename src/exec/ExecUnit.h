//===- exec/ExecUnit.h - Quickened SafeTSA execution units ----*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prepared (quickened) execution form of a SafeTSA module and the
/// register-frame interpreter that runs it.
///
/// The paper's (l, r)/plane reference scheme makes every SSA value's
/// position statically resolvable, so value references do not need to be
/// hashed at run time: a one-time preparation pass (Prepare.cpp) lowers
/// each method's CST/SSA graph into a linear, branch-resolved instruction
/// stream in which every operand is a dense slot index into a flat
/// register frame. Slots are assigned per method in block order x
/// plane-position order — exactly the order finalize() enumerates the
/// plane tables — with the entry block's Param preloads pinned to the
/// reserved argument region [0, NumArgs). Phis disappear into block-edge
/// move lists (emitted sequentially in phi order, the same update order
/// the definitional tree-walker uses), field/element accesses carry
/// pre-resolved layout offsets, statically-bound calls carry direct
/// ExecUnit* targets, and exception edges become per-raising-site handler
/// continuations. TSAExec executes the stream with token-threaded dispatch
/// (computed goto under GCC/Clang, a switch fallback elsewhere); the
/// tree-walking TSAInterpreter remains available as a differential oracle
/// (ExecOptions::TreeWalkOracle), mirroring the decoder/verifier oracle
/// pattern. See DESIGN.md §10.
///
/// An ExecUnit is immutable after preparation, so one PreparedModule may
/// be executed concurrently by any number of TSAExec instances (each with
/// its own Runtime); the serve layer caches prepared units alongside the
/// decoded modules they were lowered from.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_EXEC_EXECUNIT_H
#define SAFETSA_EXEC_EXECUNIT_H

#include "exec/Profile.h"
#include "exec/Runtime.h"
#include "tsa/Method.h"

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

namespace safetsa {

/// Prepared opcodes. The list is an X-macro so the interpreter's
/// computed-goto label table stays mechanically in sync with the enum.
/// Phi, Param, and Downcast have no prepared form (edge moves, argument
/// slots, and a plain Move respectively); Primitive/XPrimitive quicken to
/// one opcode per PrimOp so dispatch selects the operation directly.
///
/// The trailing block is the tier-1 vocabulary (DESIGN.md §11): inline-
/// cached dispatches (DispatchMono / DispatchIC, indexing ExecUnit::ICs
/// via ExecInst::S) and superinstructions fused from the hottest static
/// pairs. BrCmp*I / BrCmp*D keep the six-compare order of their Cmp*
/// blocks so fusion is a constant opcode offset; the memory
/// superinstructions fuse a check with the access it guards (the check's
/// certificate slot is still written, so every fused form is bit-identical
/// in effect to its two-instruction expansion — no liveness analysis
/// needed); Move2/MoveJmp collapse the flat-frame phi-edge copy chains.
/// Fused forms MUST stay contiguous from BrCmpLtI through MoveJmp — the
/// shadow-slot accounting in countOp range-checks that interval.
///
/// After the fused block comes the speculative-inlining vocabulary
/// (DESIGN.md §14): GuardInline (receiver-class check guarding an inlined
/// profiled-mono body, branch to the out-of-line fallback on miss),
/// EnterInline / LeaveInline (activation-depth bookkeeping so an inlined
/// frame still counts against MaxDepth exactly like the tree-walker's
/// recursive call), and InlineRet (the callee's RetVal rewritten to a
/// result move + jump to the continuation).
#define SAFETSA_XOP_LIST(X)                                                  \
  X(Move) X(LoadConst) X(LoadStr) X(Jmp) X(BrFalse) X(RetVoid) X(RetVal)     \
  X(AddI) X(SubI) X(MulI) X(DivI) X(RemI) X(NegI) X(AndI) X(OrI) X(XorI)     \
  X(ShlI) X(ShrI) X(NotI) X(CmpLtI) X(CmpLeI) X(CmpGtI) X(CmpGeI)            \
  X(CmpEqI) X(CmpNeI) X(IntToDouble) X(IntToChar) X(AddD) X(SubD) X(MulD)    \
  X(DivD) X(NegD) X(CmpLtD) X(CmpLeD) X(CmpGtD) X(CmpGeD) X(CmpEqD)          \
  X(CmpNeD) X(DoubleToInt) X(CharToInt) X(NotB) X(CmpEqB) X(CmpNeB)          \
  X(CmpEqR) X(CmpNeR) X(InstanceOf) X(NullCheck) X(IndexCheck) X(Upcast)     \
  X(GetField) X(SetField) X(GetElt) X(SetElt) X(GetStatic) X(SetStatic)      \
  X(ArrayLength) X(New) X(NewArray) X(CallUnit) X(CallNative) X(Dispatch)    \
  X(DispatchMono) X(DispatchIC)                                              \
  X(BrCmpLtI) X(BrCmpLeI) X(BrCmpGtI) X(BrCmpGeI) X(BrCmpEqI) X(BrCmpNeI)    \
  X(BrCmpLtD) X(BrCmpLeD) X(BrCmpGtD) X(BrCmpGeD) X(BrCmpEqD) X(BrCmpNeD)    \
  X(NullGetField) X(NullSetField) X(IdxGetElt) X(IdxSetElt)                   \
  X(Move2) X(MoveJmp)                                                        \
  X(GuardInline) X(EnterInline) X(LeaveInline) X(InlineRet)

enum class XOp : uint8_t {
#define SAFETSA_XOP_ENUM(N) N,
  SAFETSA_XOP_LIST(SAFETSA_XOP_ENUM)
#undef SAFETSA_XOP_ENUM
};

const char *xopName(XOp Op);

class ExecUnit;

/// One prepared instruction. All value references are frame-slot indices;
/// everything an opcode needs at run time is pre-resolved into the
/// immediate fields, so execution never touches the CST/SSA graph.
struct ExecInst {
  /// Slot sentinel: the instruction produces no stored result.
  static constexpr uint16_t NoSlot = 0xffff;

  XOp Op = XOp::Move;
  uint8_t N = 0;          ///< Call argument count.
  uint16_t A = 0;         ///< First operand slot.
  uint16_t B = 0;         ///< Second operand slot.
  uint16_t C = 0;         ///< Third operand slot (SetElt value).
  uint16_t Dst = NoSlot;  ///< Result slot; NoSlot when none.
  /// Branch target (code index), constant/argument pool index, or
  /// pre-resolved field/static slot — meaning depends on Op.
  int32_t X = 0;
  /// Catchable-trap continuation: code index of the exception-edge stub
  /// (phi moves, then the handler), or -1 when a trap here unwinds.
  int32_t Handler = -1;
  /// Site index (fills alignment padding, so it is free): for a tier-0
  /// Dispatch, the module-wide profile site in ProfileData::site(); for
  /// DispatchMono/DispatchIC, the index into ExecUnit::ICs. -1 = no site
  /// (unprofiled / megamorphic-demoted dispatch).
  int32_t S = -1;
  /// Direct target: callee ExecUnit (CallUnit), MethodSymbol (CallNative /
  /// Dispatch), Type (InstanceOf / Upcast / NewArray), or ClassSymbol
  /// (New).
  const void *P = nullptr;
};

/// One resolved inline cache (tier 1): receiver-class guards with direct
/// callee units, plus the statically-named method for the vtable fallback
/// on a guard miss. Ways is 1 for a monomorphic site (DispatchMono) and
/// 2..ProfileData::kWays for a polymorphic one (DispatchIC); sites
/// whose profile overflowed are demoted to the plain Dispatch vtable
/// path. Immutable after re-preparation, like all prepared state.
struct ICEntry {
  static constexpr unsigned kMaxWays = 4;
  static_assert(kMaxWays == ProfileData::kWays,
                "IC ways must match the profile's tracked ways");
  const ClassSymbol *Classes[kMaxWays] = {};
  const ExecUnit *Targets[kMaxWays] = {};
  uint8_t Ways = 0;
  const MethodSymbol *Method = nullptr; ///< Fallback vtable lookup key.
};

/// One method lowered to executable form. Immutable after preparation;
/// references (types, symbols, string constants) point into the source
/// TSAModule, which must outlive the unit.
class ExecUnit {
public:
  const TSAMethod *Method = nullptr;
  const MethodSymbol *Symbol = nullptr;
  /// Position in PreparedModule::Units; doubles as the method's profile
  /// slot (ProfileData::invocations) and the stable identity the replay
  /// tests compare cross-preparation unit pointers through.
  uint32_t Index = 0;
  /// Frame size in Value slots: the reserved argument region [0, NumArgs)
  /// followed by one slot per non-Param SSA value (plane-table layout).
  uint32_t NumSlots = 0;
  /// Receiver (for instance methods) + declared parameters.
  uint32_t NumArgs = 0;

  std::vector<ExecInst> Code;
  /// Flattened call-argument slot lists; ExecInst::X indexes the first of
  /// ExecInst::N slots.
  std::vector<uint16_t> ArgPool;
  /// Pre-materialized non-string constants (LoadConst payload).
  std::vector<Value> ConstPool;
  /// String constants; interned into the Runtime at first load per
  /// activation (LoadStr payload), exactly like the tree-walker.
  std::vector<const std::string *> StrPool;
  /// Tier-1 inline caches (DispatchMono / DispatchIC sites, by
  /// ExecInst::S); empty in tier 0.
  std::vector<ICEntry> ICs;
  /// Tier-1 only: dispatch sites in this unit lowered to a guard-free
  /// direct call by closed-world devirtualization. Together with ICs,
  /// this is the "did tier 1 improve any call in this unit" signal the
  /// fusion guard consults (see prepareModule pass 3).
  uint32_t DevirtSites = 0;
  /// Tier-1 only: call sites in this unit whose callee body was spliced
  /// in by speculative inlining (DESIGN.md §14). Counts as a call
  /// improvement for the fusion guard, like DevirtSites.
  uint32_t InlinedSites = 0;

  /// The unit's GC slot map: every frame slot that holds a reference,
  /// ascending. Derived at lowering time from the verifier's plane
  /// tables (a slot is a ref iff its plane is SafeRef, or Base over a
  /// ref type) plus the signature for the argument region — the same
  /// plane walk that assigned the slots, so the map is exact, not
  /// conservative. Root enumeration scans exactly these slots of each
  /// active frame; no stack map compression is needed at this scale.
  std::vector<uint16_t> RefSlots;
  /// Leading RefSlots entries that fall in the argument region
  /// [0, NumArgs). Arguments are written by the caller before entry, so
  /// frame setup only nulls RefSlots[NumRefArgs..] (the not-yet-defined
  /// body slots, which must not leak stale refs into a root scan).
  uint32_t NumRefArgs = 0;
};

/// A module lowered for execution. Holds no ownership of the source
/// TSAModule; pair it with the owning CompiledProgram/DecodedUnit (the
/// serve layer's cache keeps both together).
class PreparedModule {
public:
  const TSAModule *Module = nullptr;
  std::vector<std::unique_ptr<ExecUnit>> Units;
  /// MethodSymbol::GlobalId -> unit; null for natives and bodyless
  /// methods. Dispatch resolves vtable targets through this table.
  std::vector<const ExecUnit *> ByGlobalId;
  const ExecUnit *MainUnit = nullptr; ///< `static main()`, when present.
  /// Execution tier this module was lowered at: 0 = profiling tier
  /// (plain PR-4 streams + side profile), 1 = optimized tier (inline
  /// caches, devirtualization, superinstruction fusion).
  uint32_t Tier = 0;
  /// Tier-0 only: the side profile every executing TSAExec feeds
  /// (allocated by prepareModule; null at tier 1). The pointee is
  /// mutable-by-design — all counters are relaxed atomics — so profiling
  /// works through the const module the cache shares.
  std::unique_ptr<ProfileData> Profile;
  /// How tier-1 lowering classified the module's dispatch sites — the
  /// prepare-time truth the benches report. Runtime opcode counts alone
  /// cannot see this: closed-world devirtualization turns most
  /// profiled-monomorphic sites into plain CallUnit, indistinguishable
  /// from static calls, which is why countOp(DispatchMono) reads 0 on a
  /// whole-program corpus (every single-receiver site is also
  /// single-implementation). Zeroed at tier 0.
  struct TierStats {
    uint32_t ProfiledMono = 0;   ///< Sites whose profile saw one class.
    uint32_t ProfiledPoly = 0;   ///< 2..kWays classes, no overflow.
    uint32_t Megamorphic = 0;    ///< Overflowed; stay on the vtable.
    uint32_t DevirtCalls = 0;    ///< Closed-world guard-free direct calls.
    uint32_t MonoICs = 0;        ///< DispatchMono (one-guard direct call).
    uint32_t PolyICs = 0;        ///< DispatchIC (bounded PIC).
    uint32_t VtableSites = 0;    ///< Left on the generic Dispatch path.
    /// Profiled-monomorphic sites that ended as a direct call — guarded
    /// (DispatchMono) or guard-free (devirtualized). The bench's
    /// tier1_mono_sites metric.
    uint32_t MonoLoweredDirect = 0;
    /// Units whose tier-1 stream kept the tier-0 shape because fusion
    /// was vetoed by the per-unit guard (see fuseUnit's caller).
    uint32_t FusionGuardedUnits = 0;
    /// Call sites (devirtualized CallUnit or profiled-mono DispatchMono)
    /// whose callee body was spliced into the caller's stream
    /// (DESIGN.md §14).
    uint32_t InlinedSites = 0;
    /// Profile heat summed over the spliced sites: how many dynamic
    /// calls the profiling run sent through them. Divided by the
    /// profiling run's executed-instruction count (Runtime::fuelLeft)
    /// this gives the flattened-call density benches use to pick the
    /// call-heavy corpus subset.
    uint64_t InlinedHeat = 0;
  };
  TierStats Tiering;

  /// Tier-1 runtime counters: guard hits / vtable fallbacks across every
  /// executing thread (TSAExec flushes per-call local tallies here).
  /// Cache-line-padded: these are the only shared mutable words on a
  /// tier-1 module, and they must not false-share with the adjacent
  /// immutable fields every executing thread reads.
  alignas(64) mutable std::atomic<uint64_t> ICHits{0};
  alignas(64) mutable std::atomic<uint64_t> ICMisses{0};
  /// GuardInline receiver-class misses (fell back to the out-of-line
  /// DispatchMono copy, which then also tallies an ICHit/ICMiss).
  alignas(64) mutable std::atomic<uint64_t> InlineGuardMisses{0};

  const ExecUnit *unitFor(const MethodSymbol *M) const {
    return M && M->GlobalId < ByGlobalId.size() ? ByGlobalId[M->GlobalId]
                                                : nullptr;
  }

  /// Total prepared instructions across all units (footprint metric).
  size_t totalCode() const {
    size_t N = 0;
    for (const auto &U : Units)
      N += U->Code.size();
    return N;
  }

  /// Executed instructions with opcode \p Op across all units (tier
  /// introspection for tests/benches; skips the dead shadow slot behind
  /// each fused superinstruction).
  size_t countOp(XOp Op) const;
};

/// Knobs for prepareModule / reprepareModule. Tier 0 ignores everything
/// but Tier; tier 1 consumes a tier-0 profile and applies the optimizing
/// transforms, each individually maskable so differential parity can
/// isolate a transform (the NoFusion flag the exec-tier tests toggle is
/// also settable via the SAFETSA_EXEC_NOFUSION environment variable,
/// mirroring SAFETSA_EXEC_ORACLE).
struct PrepareOptions {
  uint32_t Tier = 0;
  /// Tier 1: skip superinstruction fusion (env: SAFETSA_EXEC_NOFUSION).
  bool NoFusion = false;
  /// Tier 1: disable the per-unit fusion guard, fusing every unit
  /// unconditionally. The guard keeps a unit's tier-0 stream shape when
  /// re-preparation found no call improvement there (no ICs, no devirt)
  /// and fusion would only rewrite compare+branch pairs — the one fusion
  /// family with a measured-regression history on branchy, call-free
  /// units (tier1_speedup dips below 1x when data-dependent branch
  /// chains pay the fused handler's double dispatch).
  bool NoFusionGuard = false;
  /// Tier 1: skip inline caches and speculative/closed-world
  /// devirtualization; dispatches stay on the vtable path.
  bool NoInlineCaches = false;
  /// Tier 1: receiver-class profiles gathered by tier-0 execution; null
  /// means no speculation (only closed-world devirt and fusion apply).
  const ProfileData *Profile = nullptr;
  /// Tier 1: speculative-inlining callee size ceiling in ExecInsts. A
  /// devirtualized or profiled-mono site is spliced into the caller when
  /// the callee fits this budget and makes no further non-leaf calls
  /// (DESIGN.md §14). 0 disables inlining as effectively as NoInlining.
  uint32_t InlineBudget = 24;
  /// Tier 1: skip speculative inlining entirely (env:
  /// SAFETSA_EXEC_NOINLINE).
  bool NoInlining = false;
  /// Tier 1 (set by reprepareModule): the tier-0 twin, consulted purely
  /// as a size oracle so lowering reserves each unit's instruction
  /// stream and side tables up front instead of growing them per emit.
  const PreparedModule *SizeHints = nullptr;
};

/// Lowers every method of \p Module once into prepared form. Requires a
/// generated-or-decoded (i.e. verified) module whose CFG has been derived.
/// Returns null only when a method exceeds the prepared-form limits
/// (65534 frame slots or 255 call arguments) — impossible for realistic
/// programs, checked rather than assumed because decoded modules cross a
/// trust boundary.
std::unique_ptr<PreparedModule> prepareModule(const TSAModule &Module);
std::unique_ptr<PreparedModule> prepareModule(const TSAModule &Module,
                                              const PrepareOptions &Opts);

/// Re-quickens a (hot) tier-0 module into tier 1 using its own gathered
/// profile: profiled-monomorphic dispatch sites get a guarded direct
/// call, polymorphic ones a bounded inline cache, megamorphic ones stay
/// on the vtable, and the hottest static instruction pairs fuse into
/// superinstructions. \p Opts.Tier and \p Opts.Profile are overridden;
/// the mask flags are honored. Deterministic: the same module with the
/// same profile yields the same tier-1 streams.
std::unique_ptr<PreparedModule> reprepareModule(const PreparedModule &T0,
                                                PrepareOptions Opts = {});

/// One-line tier/IC/fusion summary (bench + debugging aid).
std::string renderTierSummary(const PreparedModule &PM);

struct ExecOptions {
  /// Differential oracle: after prepared execution, re-run the
  /// tree-walking TSAInterpreter on a fresh Runtime and compare trap kind
  /// and printed output (the decoder/verifier oracle pattern). Divergence
  /// is reported via TSAExec::oracleDiverged() and turns the result into
  /// RuntimeError::Internal. Also enabled by setting the
  /// SAFETSA_EXEC_ORACLE environment variable non-empty and non-"0".
  bool TreeWalkOracle = false;
  /// When set, applied to the Runtime (Runtime::setGcOptions) before
  /// execution — the per-call policy view of the same knobs
  /// BatchOptions/CodeServerOptions carry. Unset leaves the Runtime's
  /// own configuration untouched.
  std::optional<GcOptions> Gc;
};

/// Register-frame interpreter for prepared modules. One instance per
/// executing thread; the PreparedModule itself is shared and const.
/// Registers with the Runtime's collector as the root provider for its
/// active frame chain (deregistered on destruction).
class TSAExec : public GcRootProvider {
public:
  TSAExec(const PreparedModule &PM, Runtime &RT, ExecOptions Opts = {});
  ~TSAExec() override;

  /// Marks every reference slot of every active frame (GC root scan;
  /// only runs inside a safepoint collection).
  void enumerateRoots(GcMarker &M) override;

  /// Applies the module's static-field initializers.
  void initializeStatics();

  /// Runs \p Unit with \p Args (instance methods expect the receiver
  /// first). Returns the result or the runtime exception that unwound.
  ExecResult call(const ExecUnit *Unit, const std::vector<Value> &Args);

  /// Symbol-addressed convenience (mirrors TSAInterpreter::call).
  ExecResult call(const MethodSymbol *Method, const std::vector<Value> &Args);

  /// Convenience: runs statics then `static main()`.
  ExecResult runMain();

  /// True when the tree-walk oracle observed a divergence.
  bool oracleDiverged() const { return OracleDiverged; }

private:
  RuntimeError execute(const ExecUnit &U, size_t Base);
  ExecResult callChecked(const ExecUnit *Unit, const std::vector<Value> &Args);
  void runOracle(ExecResult &R);

  const PreparedModule &PM;
  Runtime &RT;
  ExecOptions Opts;
  /// Tier-0 profile sink (null at tier 1); shared across threads, all
  /// writes relaxed-atomic.
  ProfileData *Prof = nullptr;
  /// Tier-1 IC tallies, kept thread-local during execution and flushed
  /// to PM.ICHits/ICMisses once per top-level call (keeps the hot loop
  /// free of shared-cacheline traffic).
  uint64_t LocalICHits = 0;
  uint64_t LocalICMisses = 0;
  /// GuardInline miss tally, flushed to PM.InlineGuardMisses per call.
  uint64_t LocalInlineGuardMisses = 0;
  /// Active-frame bookkeeping for precise root enumeration: one entry
  /// per live activation, innermost last. Maintained (and the frame's
  /// body ref slots nulled at entry) only when the Runtime's collector
  /// is enabled; GcOn caches that decision out of the hot path.
  struct GcFrame {
    const ExecUnit *U;
    size_t Base;
  };
  std::vector<GcFrame> FrameChain;
  bool GcOn = false;
  /// Contiguous register stack; frames are [Base, Base + NumSlots) windows
  /// re-anchored after nested calls (growth may reallocate).
  std::vector<Value> RegStack;
  size_t SP = 0;
  unsigned Depth = 0;
  Value RetVal;
  /// Scratch argument buffer for native calls (natives never re-enter).
  std::vector<Value> NativeArgs;
  bool OracleDiverged = false;
  /// Same activation-depth budget as the tree-walker, so StackOverflow
  /// traps at the same call site in both interpreters.
  static constexpr unsigned MaxDepth = 400;
};

} // namespace safetsa

#endif // SAFETSA_EXEC_EXECUNIT_H
