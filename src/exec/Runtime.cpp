//===- exec/Runtime.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "exec/Runtime.h"

#include "tsa/Method.h"

#include <cmath>
#include <cstdio>
#include <sstream>

using namespace safetsa;

std::string Value::str() const {
  std::ostringstream OS;
  switch (K) {
  case Kind::Int:
    OS << I;
    break;
  case Kind::Double: {
    // Deterministic, round-trippable rendering shared by both back ends.
    OS.precision(15);
    OS << D;
    break;
  }
  case Kind::Bool:
    OS << (I ? "true" : "false");
    break;
  case Kind::Char:
    OS << static_cast<char>(I);
    break;
  case Kind::Ref:
    if (R == 0)
      OS << "null";
    else
      OS << "ref#" << R;
    break;
  }
  return OS.str();
}

const char *safetsa::runtimeErrorName(RuntimeError E) {
  switch (E) {
  case RuntimeError::None:
    return "none";
  case RuntimeError::NullPointer:
    return "NullPointerException";
  case RuntimeError::IndexOutOfBounds:
    return "ArrayIndexOutOfBoundsException";
  case RuntimeError::DivisionByZero:
    return "ArithmeticException";
  case RuntimeError::ClassCast:
    return "ClassCastException";
  case RuntimeError::NegativeArraySize:
    return "NegativeArraySizeException";
  case RuntimeError::StackOverflow:
    return "StackOverflowError";
  case RuntimeError::OutOfFuel:
    return "OutOfFuel";
  case RuntimeError::OutOfMemory:
    return "OutOfMemoryError";
  case RuntimeError::Internal:
    return "InternalError";
  }
  return "error";
}

bool safetsa::isCatchableError(RuntimeError E) {
  switch (E) {
  case RuntimeError::NullPointer:
  case RuntimeError::IndexOutOfBounds:
  case RuntimeError::DivisionByZero:
  case RuntimeError::ClassCast:
  case RuntimeError::NegativeArraySize:
    return true;
  default:
    return false;
  }
}

void safetsa::applyStaticInitializers(const TSAModule &Module, Runtime &RT) {
  for (const auto &[Field, C] : Module.StaticInits) {
    Value V;
    switch (C.K) {
    case ConstantValue::Kind::Int:
      V = Value::makeInt(static_cast<int32_t>(C.IntVal));
      break;
    case ConstantValue::Kind::Double:
      V = Value::makeDouble(C.DblVal);
      break;
    case ConstantValue::Kind::Bool:
      V = Value::makeBool(C.IntVal != 0);
      break;
    case ConstantValue::Kind::Char:
      V = Value::makeChar(static_cast<char>(C.IntVal));
      break;
    case ConstantValue::Kind::Null:
      V = Value::makeNull();
      break;
    case ConstantValue::Kind::String:
      V = Value::makeRef(RT.internString(C.StrVal, Module.Types->getChar()));
      break;
    }
    RT.setStatic(Field->Slot, V);
  }
}

Value Runtime::zeroValue(const Type *Ty) {
  if (!Ty)
    return Value::makeNull();
  if (Ty->isInt())
    return Value::makeInt(0);
  if (Ty->isDouble())
    return Value::makeDouble(0.0);
  if (Ty->isBoolean())
    return Value::makeBool(false);
  if (Ty->isChar())
    return Value::makeChar('\0');
  return Value::makeNull();
}

// All allocation funnels through GcHeap::acquireIndex, which recycles
// swept indices before growing the vector and never hands out cell 0 —
// ref 0 stays the null reference forever, so a null-ref access can only
// reach cell() (which rejects it), never alias a real object. Collection
// is deferred to safepoints, so nothing here can be swept mid-sequence.

uint32_t Runtime::allocObject(const ClassSymbol *Class) {
  uint32_t Ref = Gc.acquireIndex();
  HeapCell &Cell = Heap[Ref];
  Cell.Class = Class;
  Cell.Slots.reserve(Class->InstanceLayout.size());
  for (const FieldSymbol *F : Class->InstanceLayout)
    Cell.Slots.push_back(zeroValue(F->Ty));
  Gc.onAllocated(Cell.Slots.size());
  return Ref;
}

uint32_t Runtime::allocArray(Type *ElemTy, int32_t Length) {
  assert(Length >= 0 && "caller checks for negative sizes");
  uint32_t Ref = Gc.acquireIndex();
  HeapCell &Cell = Heap[Ref];
  Cell.ArrayElemTy = ElemTy;
  Cell.Slots.assign(static_cast<size_t>(Length), zeroValue(ElemTy));
  Gc.onAllocated(Cell.Slots.size());
  return Ref;
}

uint32_t Runtime::internString(const std::string &S, Type *CharTy) {
  for (const auto &[Str, Ref] : StringPool)
    if (Str == S)
      return Ref;
  uint32_t Ref = Gc.acquireIndex();
  HeapCell &Cell = Heap[Ref];
  Cell.ArrayElemTy = CharTy;
  for (char C : S)
    Cell.Slots.push_back(Value::makeChar(C));
  StringPool.push_back({S, Ref});
  Gc.onAllocated(Cell.Slots.size());
  return Ref;
}

void Runtime::enumerateRoots(GcMarker &M) {
  for (const Value &V : Statics)
    if (V.K == Value::Kind::Ref)
      M.mark(V.R);
  // Interned constants are canonical for the Runtime's lifetime (repeat
  // LoadStr must return the same ref), so the pool pins them.
  for (const auto &[Str, Ref] : StringPool)
    M.mark(Ref);
}

void Runtime::heapTrap(uint32_t Ref) {
  std::fprintf(stderr, "safetsa: PARANOID heap trap: invalid ref #%u\n", Ref);
  std::abort();
}

Value Runtime::callNative(NativeMethod M, const std::vector<Value> &Args) {
  switch (M) {
  case NativeMethod::PrintInt:
    Output += Args[0].str();
    return Value();
  case NativeMethod::PrintDouble:
    Output += Args[0].str();
    return Value();
  case NativeMethod::PrintChar:
    Output.push_back(static_cast<char>(Args[0].I));
    return Value();
  case NativeMethod::PrintBool:
    Output += Args[0].I ? "true" : "false";
    return Value();
  case NativeMethod::PrintStr: {
    if (Args[0].R == 0) {
      Output += "null";
      return Value();
    }
    for (const Value &C : cell(Args[0].R).Slots)
      Output.push_back(static_cast<char>(C.I));
    return Value();
  }
  case NativeMethod::Println:
    Output.push_back('\n');
    return Value();
  case NativeMethod::Sqrt:
    return Value::makeDouble(std::sqrt(Args[0].D));
  case NativeMethod::AbsDouble:
    return Value::makeDouble(std::fabs(Args[0].D));
  case NativeMethod::AbsInt:
    return Value::makeInt(Args[0].I < 0 ? -Args[0].I : Args[0].I);
  case NativeMethod::MinInt:
    return Value::makeInt(Args[0].I < Args[1].I ? Args[0].I : Args[1].I);
  case NativeMethod::MaxInt:
    return Value::makeInt(Args[0].I > Args[1].I ? Args[0].I : Args[1].I);
  case NativeMethod::MinDouble:
    return Value::makeDouble(Args[0].D < Args[1].D ? Args[0].D : Args[1].D);
  case NativeMethod::MaxDouble:
    return Value::makeDouble(Args[0].D > Args[1].D ? Args[0].D : Args[1].D);
  case NativeMethod::Pow:
    return Value::makeDouble(std::pow(Args[0].D, Args[1].D));
  case NativeMethod::Floor:
    return Value::makeDouble(std::floor(Args[0].D));
  case NativeMethod::None:
    break;
  }
  assert(false && "unknown native method");
  return Value();
}
