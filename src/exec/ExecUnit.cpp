//===- exec/ExecUnit.cpp - Register-frame threaded interpreter -*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TSAExec: executes prepared units with token-threaded dispatch. Under
/// GCC/Clang the dispatch is a computed goto through a label table kept
/// in sync with XOp by the SAFETSA_XOP_LIST X-macro; elsewhere the same
/// handler bodies compile into a switch driven by a dispatch label. Every
/// handler mirrors the corresponding tree-walker case in TSAInterp.cpp
/// bit for bit (Java 32-bit wrap arithmetic, DivI/RemI INT_MIN edge
/// cases, DoubleToInt saturation, trap catchability) — the tree-walker is
/// the definitional semantics and doubles as the differential oracle.
///
//===----------------------------------------------------------------------===//

#include "exec/ExecUnit.h"

#include "exec/TSAInterp.h"

#include <cmath>
#include <cstdlib>
#include <limits>

using namespace safetsa;

#if defined(__GNUC__) || defined(__clang__)
#define SAFETSA_COMPUTED_GOTO 1
#else
#define SAFETSA_COMPUTED_GOTO 0
#endif

const char *safetsa::xopName(XOp Op) {
  switch (Op) {
#define SAFETSA_XOP_NAME(N)                                                  \
  case XOp::N:                                                               \
    return #N;
    SAFETSA_XOP_LIST(SAFETSA_XOP_NAME)
#undef SAFETSA_XOP_NAME
  }
  return "xop";
}

static int32_t wrap32(int64_t V) { return static_cast<int32_t>(V); }

TSAExec::TSAExec(const PreparedModule &PM, Runtime &RT, ExecOptions Opts)
    : PM(PM), RT(RT), Opts(Opts), Prof(PM.Profile.get()) {
  const char *Env = std::getenv("SAFETSA_EXEC_ORACLE");
  if (Env && *Env && !(Env[0] == '0' && Env[1] == '\0'))
    this->Opts.TreeWalkOracle = true;
  if (this->Opts.Gc)
    RT.setGcOptions(*this->Opts.Gc);
  GcOn = RT.gcEnabled();
  if (GcOn)
    RT.gcAddRootProvider(*this);
  RegStack.resize(1024);
}

TSAExec::~TSAExec() {
  if (GcOn)
    RT.gcRemoveRootProvider(*this);
}

void TSAExec::enumerateRoots(GcMarker &M) {
  // Precision comes straight from the lowering: each frame's RefSlots is
  // the plane-derived slot map, so only reference-kinded slots are
  // scanned and no integer can masquerade as a ref.
  for (const GcFrame &F : FrameChain) {
    const Value *R = RegStack.data() + F.Base;
    for (uint16_t S : F.U->RefSlots)
      M.mark(R[S].R);
  }
}

void TSAExec::initializeStatics() { applyStaticInitializers(*PM.Module, RT); }

ExecResult TSAExec::call(const ExecUnit *Unit, const std::vector<Value> &Args) {
  ExecResult R;
  if (!Unit || Args.size() != Unit->NumArgs) {
    R.Err = RuntimeError::Internal;
    return R;
  }
  if (RegStack.size() < Unit->NumSlots)
    RegStack.resize(std::max(RegStack.size() * 2,
                             static_cast<size_t>(Unit->NumSlots)));
  for (size_t I = 0; I != Args.size(); ++I)
    RegStack[I] = Args[I];
  RetVal = Value();
  Depth = 1;
  R.Err = execute(*Unit, 0);
  Depth = 0;
  if (GcOn)
    FrameChain.pop_back(); // Matches execute()'s entry push.
  // IC tallies stay thread-local while executing and publish once per
  // top-level call, keeping shared-cacheline traffic out of the hot loop.
  if (LocalICHits || LocalICMisses) {
    PM.ICHits.fetch_add(LocalICHits, std::memory_order_relaxed);
    PM.ICMisses.fetch_add(LocalICMisses, std::memory_order_relaxed);
    LocalICHits = LocalICMisses = 0;
  }
  if (LocalInlineGuardMisses) {
    PM.InlineGuardMisses.fetch_add(LocalInlineGuardMisses,
                                   std::memory_order_relaxed);
    LocalInlineGuardMisses = 0;
  }
  if (R.ok())
    R.Ret = RetVal;
  return R;
}

ExecResult TSAExec::call(const MethodSymbol *Method,
                         const std::vector<Value> &Args) {
  if (Method && Method->isNative()) {
    ExecResult R;
    R.Ret = RT.callNative(Method->Native, Args);
    return R;
  }
  return call(PM.unitFor(Method), Args);
}

ExecResult TSAExec::runMain() {
  initializeStatics();
  ExecResult R;
  if (!PM.MainUnit)
    R.Err = RuntimeError::Internal;
  else
    R = call(PM.MainUnit, {});
  if (Opts.TreeWalkOracle)
    runOracle(R);
  return R;
}

void TSAExec::runOracle(ExecResult &R) {
  // Fuel accounting differs between the two instruction streams, so an
  // exhausted run has no comparable trap point.
  if (R.Err == RuntimeError::OutOfFuel)
    return;
  // The oracle runtime inherits this run's GC configuration so both
  // executions collect under the same policy (collection points differ,
  // but output stays byte-equal — program output never contains refs).
  Runtime OracleRT(*PM.Module->Table, 200'000'000, RT.gcOptions());
  TSAInterpreter Oracle(*PM.Module, OracleRT);
  ExecResult O = Oracle.runMain();
  if (O.Err == RuntimeError::OutOfFuel)
    return;
  bool Same = O.Err == R.Err && OracleRT.getOutput() == RT.getOutput();
  if (Same && R.ok())
    Same = O.Ret.str() == R.Ret.str();
  if (!Same) {
    OracleDiverged = true;
    R.Err = RuntimeError::Internal;
  }
}

RuntimeError TSAExec::execute(const ExecUnit &U, size_t Base) {
  // Tier 0: one relaxed counter bump per activation feeds the hotness
  // trigger (ModuleCache polls ProfileData::anyHot). Null at tier 1.
  if (Prof)
    Prof->recordInvocation(U.Index);
  const ExecInst *Code = U.Code.data();
  Value *R = RegStack.data() + Base;
  size_t PC = 0;
  const ExecInst *In = nullptr;
  Type *CharTy = PM.Module->Types->getChar();
  // Inlined activations currently live in THIS frame (EnterInline minus
  // LeaveInline). Each contributes one Depth tick; an unwinding trap
  // must strip this frame's contribution so Depth stays exact for the
  // enclosing activations (DESIGN.md §14).
  unsigned InlineLive = 0;

  // Call-entry safepoint work (GC only; both callers pop FrameChain).
  // Body ref slots are nulled so a root scan before their first
  // definition cannot resurrect stale refs left by a dead frame that
  // occupied this RegStack window; argument slots were just written by
  // the caller and are skipped. Then poll: with the frame registered,
  // every live ref is scannable here.
  if (GcOn) {
    for (size_t I = U.NumRefArgs, E = U.RefSlots.size(); I != E; ++I)
      R[U.RefSlots[I]] = Value::makeNull();
    FrameChain.push_back({&U, Base});
    if (RT.gcPending())
      RT.gcSafepoint();
  }

// Backward-transfer safepoint poll: loops are the only unbounded work
// between call entries, and every loop back edge in lowered code is a
// backward Jmp/MoveJmp (conditionals branch forward), so polling on
// backward targets bounds the collector's latency. The handlers are
// shared by the tier-0 and tier-1 streams (same X-macro table), so both
// tiers poll identically. Cost on the hot path: an always-predicted
// compare, plus one relaxed load only on actual back edges.
#define SAFETSA_BACKEDGE_POLL()                                              \
  do {                                                                       \
    if (PC <= static_cast<size_t>(In - Code) && RT.gcPending())              \
      RT.gcSafepoint();                                                      \
  } while (0)

// Shared call sequence for every direct/dispatched unit call: frame
// push, recursive execute, frame pop, trap propagation, result store.
// Expects a non-null callee.
#define SAFETSA_INVOKE(CALLEE)                                               \
  do {                                                                       \
    const ExecUnit *Callee_ = (CALLEE);                                      \
    if (Depth >= MaxDepth)                                                   \
      SAFETSA_TRAP(RuntimeError::StackOverflow);                             \
    size_t CB = Base + U.NumSlots;                                           \
    if (RegStack.size() < CB + Callee_->NumSlots) {                          \
      RegStack.resize(std::max(RegStack.size() * 2,                          \
                               CB + static_cast<size_t>(Callee_->NumSlots)));\
      R = RegStack.data() + Base;                                            \
    }                                                                        \
    const uint16_t *As_ = U.ArgPool.data() + In->X;                          \
    for (unsigned I_ = 0; I_ != In->N; ++I_)                                 \
      RegStack[CB + I_] = R[As_[I_]];                                        \
    ++Depth;                                                                 \
    RuntimeError E_ = execute(*Callee_, CB);                                 \
    --Depth;                                                                 \
    if (GcOn)                                                                \
      FrameChain.pop_back(); /* Matches execute()'s entry push. */           \
    R = RegStack.data() + Base; /* Callee may have grown the stack. */       \
    if (E_ != RuntimeError::None)                                            \
      SAFETSA_TRAP(E_); /* Callee traps surface at this call site. */        \
    if (In->Dst != ExecInst::NoSlot)                                         \
      R[In->Dst] = RetVal;                                                   \
  } while (0)

// A trap transfers to the raising site's pre-resolved handler stub when
// the error is one an MJ catch-all intercepts; otherwise it unwinds.
#define SAFETSA_TRAP(E)                                                      \
  do {                                                                       \
    RuntimeError TrapE = (E);                                                \
    if (In->Handler >= 0 && isCatchableError(TrapE)) {                       \
      PC = static_cast<size_t>(In->Handler);                                 \
      SAFETSA_NEXT();                                                        \
    }                                                                        \
    Depth -= InlineLive; /* Inlined frames unwind with this frame. */        \
    return TrapE;                                                            \
  } while (0)

#if SAFETSA_COMPUTED_GOTO
  static const void *const Labels[] = {
#define SAFETSA_XOP_LABEL(N) &&Lbl_##N,
      SAFETSA_XOP_LIST(SAFETSA_XOP_LABEL)
#undef SAFETSA_XOP_LABEL
  };
#define SAFETSA_CASE(N) Lbl_##N:
#define SAFETSA_NEXT()                                                       \
  do {                                                                       \
    if (!RT.burnFuel())                                                      \
      return RuntimeError::OutOfFuel;                                        \
    In = &Code[PC++];                                                        \
    goto *Labels[static_cast<unsigned>(In->Op)];                             \
  } while (0)
  SAFETSA_NEXT();
#else
#define SAFETSA_CASE(N) case XOp::N:
#define SAFETSA_NEXT() goto DispatchLoop
DispatchLoop:
  if (!RT.burnFuel())
    return RuntimeError::OutOfFuel;
  In = &Code[PC++];
  switch (In->Op) {
#endif

  SAFETSA_CASE(Move) { R[In->Dst] = R[In->A]; }
  SAFETSA_NEXT();
  SAFETSA_CASE(LoadConst) { R[In->Dst] = U.ConstPool[In->X]; }
  SAFETSA_NEXT();
  SAFETSA_CASE(LoadStr) {
    R[In->Dst] = Value::makeRef(RT.internString(*U.StrPool[In->X], CharTy));
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(Jmp) {
    PC = static_cast<size_t>(In->X);
    SAFETSA_BACKEDGE_POLL();
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(BrFalse) {
    if (R[In->A].I == 0) {
      PC = static_cast<size_t>(In->X);
      SAFETSA_BACKEDGE_POLL();
    }
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(RetVoid) {
    RetVal = Value();
    return RuntimeError::None;
  }
  SAFETSA_CASE(RetVal) {
    RetVal = R[In->A];
    return RuntimeError::None;
  }

  SAFETSA_CASE(AddI) {
    R[In->Dst] = Value::makeInt(
        wrap32(static_cast<int64_t>(R[In->A].I) + R[In->B].I));
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(SubI) {
    R[In->Dst] = Value::makeInt(
        wrap32(static_cast<int64_t>(R[In->A].I) - R[In->B].I));
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(MulI) {
    R[In->Dst] = Value::makeInt(
        wrap32(static_cast<int64_t>(R[In->A].I) * R[In->B].I));
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(DivI) {
    int32_t B = R[In->B].I;
    if (B == 0)
      SAFETSA_TRAP(RuntimeError::DivisionByZero);
    int32_t A = R[In->A].I;
    R[In->Dst] = Value::makeInt(
        A == std::numeric_limits<int32_t>::min() && B == -1 ? A : A / B);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(RemI) {
    int32_t B = R[In->B].I;
    if (B == 0)
      SAFETSA_TRAP(RuntimeError::DivisionByZero);
    int32_t A = R[In->A].I;
    R[In->Dst] = Value::makeInt(
        A == std::numeric_limits<int32_t>::min() && B == -1 ? 0 : A % B);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(NegI) {
    R[In->Dst] = Value::makeInt(wrap32(-static_cast<int64_t>(R[In->A].I)));
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(AndI) { R[In->Dst] = Value::makeInt(R[In->A].I & R[In->B].I); }
  SAFETSA_NEXT();
  SAFETSA_CASE(OrI) { R[In->Dst] = Value::makeInt(R[In->A].I | R[In->B].I); }
  SAFETSA_NEXT();
  SAFETSA_CASE(XorI) { R[In->Dst] = Value::makeInt(R[In->A].I ^ R[In->B].I); }
  SAFETSA_NEXT();
  SAFETSA_CASE(ShlI) {
    R[In->Dst] = Value::makeInt(
        wrap32(static_cast<int64_t>(R[In->A].I) << (R[In->B].I & 31)));
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(ShrI) {
    R[In->Dst] = Value::makeInt(R[In->A].I >> (R[In->B].I & 31));
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(NotI) { R[In->Dst] = Value::makeInt(~R[In->A].I); }
  SAFETSA_NEXT();
  SAFETSA_CASE(CmpLtI) {
    R[In->Dst] = Value::makeBool(R[In->A].I < R[In->B].I);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(CmpLeI) {
    R[In->Dst] = Value::makeBool(R[In->A].I <= R[In->B].I);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(CmpGtI) {
    R[In->Dst] = Value::makeBool(R[In->A].I > R[In->B].I);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(CmpGeI) {
    R[In->Dst] = Value::makeBool(R[In->A].I >= R[In->B].I);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(CmpEqI) {
    R[In->Dst] = Value::makeBool(R[In->A].I == R[In->B].I);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(CmpNeI) {
    R[In->Dst] = Value::makeBool(R[In->A].I != R[In->B].I);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(IntToDouble) {
    R[In->Dst] = Value::makeDouble(static_cast<double>(R[In->A].I));
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(IntToChar) {
    R[In->Dst] = Value::makeChar(static_cast<char>(R[In->A].I & 0xff));
  }
  SAFETSA_NEXT();

  SAFETSA_CASE(AddD) {
    R[In->Dst] = Value::makeDouble(R[In->A].D + R[In->B].D);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(SubD) {
    R[In->Dst] = Value::makeDouble(R[In->A].D - R[In->B].D);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(MulD) {
    R[In->Dst] = Value::makeDouble(R[In->A].D * R[In->B].D);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(DivD) {
    R[In->Dst] = Value::makeDouble(R[In->A].D / R[In->B].D);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(NegD) { R[In->Dst] = Value::makeDouble(-R[In->A].D); }
  SAFETSA_NEXT();
  SAFETSA_CASE(CmpLtD) {
    R[In->Dst] = Value::makeBool(R[In->A].D < R[In->B].D);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(CmpLeD) {
    R[In->Dst] = Value::makeBool(R[In->A].D <= R[In->B].D);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(CmpGtD) {
    R[In->Dst] = Value::makeBool(R[In->A].D > R[In->B].D);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(CmpGeD) {
    R[In->Dst] = Value::makeBool(R[In->A].D >= R[In->B].D);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(CmpEqD) {
    R[In->Dst] = Value::makeBool(R[In->A].D == R[In->B].D);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(CmpNeD) {
    R[In->Dst] = Value::makeBool(R[In->A].D != R[In->B].D);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(DoubleToInt) {
    double D = R[In->A].D;
    int32_t V;
    if (std::isnan(D))
      V = 0;
    else if (D >= 2147483647.0)
      V = std::numeric_limits<int32_t>::max();
    else if (D <= -2147483648.0)
      V = std::numeric_limits<int32_t>::min();
    else
      V = static_cast<int32_t>(D);
    R[In->Dst] = Value::makeInt(V);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(CharToInt) { R[In->Dst] = Value::makeInt(R[In->A].I); }
  SAFETSA_NEXT();

  SAFETSA_CASE(NotB) { R[In->Dst] = Value::makeBool(R[In->A].I == 0); }
  SAFETSA_NEXT();
  SAFETSA_CASE(CmpEqB) {
    R[In->Dst] = Value::makeBool((R[In->A].I != 0) == (R[In->B].I != 0));
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(CmpNeB) {
    R[In->Dst] = Value::makeBool((R[In->A].I != 0) != (R[In->B].I != 0));
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(CmpEqR) {
    R[In->Dst] = Value::makeBool(R[In->A].R == R[In->B].R);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(CmpNeR) {
    R[In->Dst] = Value::makeBool(R[In->A].R != R[In->B].R);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(InstanceOf) {
    uint32_t Ref = R[In->A].R;
    if (Ref == 0) {
      R[In->Dst] = Value::makeBool(false);
    } else {
      const HeapCell &Cell = RT.cell(Ref);
      Type *T = static_cast<Type *>(const_cast<void *>(In->P));
      bool Is;
      if (T->isArray())
        Is = Cell.isArray() && Cell.ArrayElemTy == T->getElemType();
      else
        Is = !Cell.isArray() && Cell.Class->isSubclassOf(T->getClassSymbol());
      R[In->Dst] = Value::makeBool(Is);
    }
  }
  SAFETSA_NEXT();

  SAFETSA_CASE(NullCheck) {
    Value V = R[In->A];
    if (V.R == 0)
      SAFETSA_TRAP(RuntimeError::NullPointer);
    R[In->Dst] = V;
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(IndexCheck) {
    Value Idx = R[In->B];
    const HeapCell &Cell = RT.cell(R[In->A].R);
    if (Idx.I < 0 || static_cast<size_t>(Idx.I) >= Cell.Slots.size())
      SAFETSA_TRAP(RuntimeError::IndexOutOfBounds);
    R[In->Dst] = Idx;
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(Upcast) {
    Value V = R[In->A];
    if (V.R == 0) {
      R[In->Dst] = V; // (T)null succeeds, as in Java.
    } else {
      const HeapCell &Cell = RT.cell(V.R);
      Type *T = static_cast<Type *>(const_cast<void *>(In->P));
      bool Is;
      if (T->isArray())
        Is = Cell.isArray() && Cell.ArrayElemTy == T->getElemType();
      else
        Is = !Cell.isArray() && Cell.Class->isSubclassOf(T->getClassSymbol());
      if (!Is)
        SAFETSA_TRAP(RuntimeError::ClassCast);
      R[In->Dst] = V;
    }
  }
  SAFETSA_NEXT();

  SAFETSA_CASE(GetField) {
    R[In->Dst] = RT.cell(R[In->A].R).Slots[In->X];
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(SetField) {
    RT.cell(R[In->A].R).Slots[In->X] = R[In->B];
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(GetElt) {
    R[In->Dst] = RT.cell(R[In->A].R).Slots[R[In->B].I];
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(SetElt) {
    RT.cell(R[In->A].R).Slots[R[In->B].I] = R[In->C];
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(GetStatic) {
    R[In->Dst] = RT.getStatic(static_cast<unsigned>(In->X));
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(SetStatic) {
    RT.setStatic(static_cast<unsigned>(In->X), R[In->A]);
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(ArrayLength) {
    R[In->Dst] = Value::makeInt(
        static_cast<int32_t>(RT.cell(R[In->A].R).Slots.size()));
  }
  SAFETSA_NEXT();

  SAFETSA_CASE(New) {
    R[In->Dst] = Value::makeRef(
        RT.allocObject(static_cast<const ClassSymbol *>(In->P)));
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(NewArray) {
    int32_t Len = R[In->A].I;
    if (Len < 0)
      SAFETSA_TRAP(RuntimeError::NegativeArraySize);
    if (!RT.arrayFitsBudget(Len))
      SAFETSA_TRAP(RuntimeError::OutOfMemory);
    R[In->Dst] = Value::makeRef(RT.allocArray(
        static_cast<Type *>(const_cast<void *>(In->P)), Len));
  }
  SAFETSA_NEXT();

  SAFETSA_CASE(CallUnit) {
    const ExecUnit *Callee = static_cast<const ExecUnit *>(In->P);
    if (!Callee)
      SAFETSA_TRAP(RuntimeError::Internal); // No body; unwinds (uncatchable).
    SAFETSA_INVOKE(Callee);
  }
  SAFETSA_NEXT();

  SAFETSA_CASE(CallNative) {
    const MethodSymbol *MS = static_cast<const MethodSymbol *>(In->P);
    const uint16_t *As = U.ArgPool.data() + In->X;
    NativeArgs.clear();
    for (unsigned I = 0; I != In->N; ++I)
      NativeArgs.push_back(R[As[I]]);
    Value Ret = RT.callNative(MS->Native, NativeArgs);
    if (In->Dst != ExecInst::NoSlot)
      R[In->Dst] = Ret;
  }
  SAFETSA_NEXT();

  SAFETSA_CASE(Dispatch) {
    const MethodSymbol *MS = static_cast<const MethodSymbol *>(In->P);
    const uint16_t *As = U.ArgPool.data() + In->X;
    const HeapCell &Cell = RT.cell(R[As[0]].R);
    assert(!Cell.isArray() && "dispatch on an array");
    assert(MS->VTableSlot >= 0 &&
           static_cast<size_t>(MS->VTableSlot) < Cell.Class->VTable.size() &&
           "bad vtable slot");
    // Tier 0: feed the receiver-class profile for this site (striped per
    // thread, so concurrent profiling never shares a counter line).
    if (Prof && In->S >= 0)
      Prof->recordDispatch(static_cast<uint32_t>(In->S), Cell.Class);
    const MethodSymbol *Target = Cell.Class->VTable[MS->VTableSlot];
    const ExecUnit *Callee = PM.unitFor(Target);
    if (!Callee)
      SAFETSA_TRAP(RuntimeError::Internal); // Vtables never hold natives.
    SAFETSA_INVOKE(Callee);
  }
  SAFETSA_NEXT();

  SAFETSA_CASE(DispatchMono) {
    // Tier 1, profiled-monomorphic site: one receiver-class guard buys a
    // direct call; a guard miss falls back to the vtable and counts.
    const ICEntry &E = U.ICs[In->S];
    const uint16_t *As = U.ArgPool.data() + In->X;
    const HeapCell &Cell = RT.cell(R[As[0]].R);
    const ExecUnit *Callee;
    if (Cell.Class == E.Classes[0]) {
      ++LocalICHits;
      Callee = E.Targets[0];
    } else {
      ++LocalICMisses;
      Callee = PM.unitFor(Cell.Class->VTable[E.Method->VTableSlot]);
      if (!Callee)
        SAFETSA_TRAP(RuntimeError::Internal);
    }
    SAFETSA_INVOKE(Callee);
  }
  SAFETSA_NEXT();

  SAFETSA_CASE(DispatchIC) {
    // Tier 1, polymorphic site: bounded linear guard scan in profile
    // order (hottest-first in the common first-seen-hottest case).
    const ICEntry &E = U.ICs[In->S];
    const uint16_t *As = U.ArgPool.data() + In->X;
    const HeapCell &Cell = RT.cell(R[As[0]].R);
    const ExecUnit *Callee = nullptr;
    for (unsigned W = 0; W != E.Ways; ++W)
      if (Cell.Class == E.Classes[W]) {
        Callee = E.Targets[W];
        break;
      }
    if (Callee) {
      ++LocalICHits;
    } else {
      ++LocalICMisses;
      Callee = PM.unitFor(Cell.Class->VTable[E.Method->VTableSlot]);
      if (!Callee)
        SAFETSA_TRAP(RuntimeError::Internal);
    }
    SAFETSA_INVOKE(Callee);
  }
  SAFETSA_NEXT();

// Superinstructions (tier 1). Each fused handler performs both fused
// operations — including the first member's Dst write, so the effect is
// bit-identical to the two-instruction expansion — then steps over the
// dead shadow slot holding the pair's second member. One fuel unit per
// fused pair (OutOfFuel is already excluded from oracle comparisons).
// Each arm takes a real conditional branch and re-dispatches on its own
// (two indirect jumps per opcode under computed goto): a `PC = T ? a : b`
// select would compile to a cmov whose result feeds the next instruction
// fetch, serializing the dispatch chain and costing more than the two
// unfused instructions it replaces on branch-dense code.
#define SAFETSA_BRCMP(CMP)                                                   \
  {                                                                          \
    bool T_ = (CMP);                                                         \
    R[In->Dst] = Value::makeBool(T_);                                        \
    if (T_) {                                                                \
      ++PC; /* Skip the shadow slot. */                                      \
      SAFETSA_NEXT();                                                        \
    }                                                                        \
    PC = static_cast<size_t>(In->X);                                         \
    SAFETSA_BACKEDGE_POLL();                                                 \
  }                                                                          \
  SAFETSA_NEXT()

  SAFETSA_CASE(BrCmpLtI) SAFETSA_BRCMP(R[In->A].I < R[In->B].I);
  SAFETSA_CASE(BrCmpLeI) SAFETSA_BRCMP(R[In->A].I <= R[In->B].I);
  SAFETSA_CASE(BrCmpGtI) SAFETSA_BRCMP(R[In->A].I > R[In->B].I);
  SAFETSA_CASE(BrCmpGeI) SAFETSA_BRCMP(R[In->A].I >= R[In->B].I);
  SAFETSA_CASE(BrCmpEqI) SAFETSA_BRCMP(R[In->A].I == R[In->B].I);
  SAFETSA_CASE(BrCmpNeI) SAFETSA_BRCMP(R[In->A].I != R[In->B].I);
  SAFETSA_CASE(BrCmpLtD) SAFETSA_BRCMP(R[In->A].D < R[In->B].D);
  SAFETSA_CASE(BrCmpLeD) SAFETSA_BRCMP(R[In->A].D <= R[In->B].D);
  SAFETSA_CASE(BrCmpGtD) SAFETSA_BRCMP(R[In->A].D > R[In->B].D);
  SAFETSA_CASE(BrCmpGeD) SAFETSA_BRCMP(R[In->A].D >= R[In->B].D);
  SAFETSA_CASE(BrCmpEqD) SAFETSA_BRCMP(R[In->A].D == R[In->B].D);
  SAFETSA_CASE(BrCmpNeD) SAFETSA_BRCMP(R[In->A].D != R[In->B].D);
#undef SAFETSA_BRCMP

  SAFETSA_CASE(Move2) {
    // Phi-edge parallel copy pair, in source order (the second copy may
    // read the first's destination).
    R[In->Dst] = R[In->A];
    R[In->B] = R[In->C];
    ++PC; // Skip the shadow slot.
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(MoveJmp) {
    R[In->Dst] = R[In->A];
    PC = static_cast<size_t>(In->X); // Shadow Jmp is never reached.
    SAFETSA_BACKEDGE_POLL();
  }
  SAFETSA_NEXT();

  SAFETSA_CASE(NullGetField) {
    Value V = R[In->A];
    if (V.R == 0)
      SAFETSA_TRAP(RuntimeError::NullPointer); // Before the cert write.
    R[In->Dst] = V; // Certificate slot, as the unfused pair writes it.
    R[In->C] = RT.cell(V.R).Slots[In->X];
    ++PC; // Skip the shadow slot.
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(NullSetField) {
    Value V = R[In->A];
    if (V.R == 0)
      SAFETSA_TRAP(RuntimeError::NullPointer);
    R[In->Dst] = V;
    RT.cell(V.R).Slots[In->X] = R[In->C];
    ++PC;
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(IdxGetElt) {
    Value Idx = R[In->B];
    const HeapCell &Cell = RT.cell(R[In->A].R);
    if (Idx.I < 0 || static_cast<size_t>(Idx.I) >= Cell.Slots.size())
      SAFETSA_TRAP(RuntimeError::IndexOutOfBounds);
    R[In->Dst] = Idx; // Certificate slot.
    R[In->C] = Cell.Slots[Idx.I];
    ++PC;
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(IdxSetElt) {
    Value Idx = R[In->B];
    HeapCell &Cell = RT.cell(R[In->A].R);
    if (Idx.I < 0 || static_cast<size_t>(Idx.I) >= Cell.Slots.size())
      SAFETSA_TRAP(RuntimeError::IndexOutOfBounds);
    R[In->Dst] = Idx;
    Cell.Slots[Idx.I] = R[In->C];
    ++PC;
  }
  SAFETSA_NEXT();

  // Speculative inlining (tier 1, DESIGN.md §14). A spliced site runs
  // GuardInline (mono sites) or EnterInline (direct sites), optional
  // arg Moves, then the callee body renumbered into the caller-frame
  // extension; every exit from the body carries the ledger decrement
  // itself (InlineRet for value returns, a jumping LeaveInline for void
  // returns and the trap trampoline), so the common path pays no
  // separate continuation instruction. The receiver slot is a safe-ref
  // certificate (a NullCheck dominates every dispatch), so the guard
  // reads the cell header without a null test, exactly like
  // DispatchMono.
  SAFETSA_CASE(GuardInline) {
    // Class hit doubles as the splice's EnterInline (one dispatch, not
    // two); a mismatch — or an activation ledger already at the limit —
    // takes the out-of-line DispatchMono fallback instead, which traps
    // StackOverflow exactly where the un-inlined call would.
    const HeapCell &Cell = RT.cell(R[In->A].R);
    if (Cell.Class != static_cast<const ClassSymbol *>(In->P)) {
      ++LocalInlineGuardMisses;
      PC = static_cast<size_t>(In->X); // Out-of-line fallback (forward).
    } else if (Depth >= MaxDepth) {
      PC = static_cast<size_t>(In->X); // Not a speculation miss.
    } else {
      ++Depth;
      ++InlineLive;
    }
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(EnterInline) {
    // The flattened frame still costs one activation tick, so
    // StackOverflow traps at the same call site as the tree-walker's
    // recursive call (the trap is uncatchable and unwinds).
    if (Depth >= MaxDepth)
      SAFETSA_TRAP(RuntimeError::StackOverflow);
    ++Depth;
    ++InlineLive;
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(LeaveInline) {
    // Ledger decrement + unconditional transfer: the callee's RetVoid
    // (X = the site continuation) and the trap trampoline (X = the
    // caller's handler stub) both leave in one dispatch. Polled like any
    // other unconditional jump so a backward handler cannot extend the
    // collector's latency bound.
    --Depth;
    --InlineLive;
    PC = static_cast<size_t>(In->X);
    SAFETSA_BACKEDGE_POLL();
  }
  SAFETSA_NEXT();
  SAFETSA_CASE(InlineRet) {
    // Callee RetVal, flattened: result move + ledger decrement + jump
    // past the splice (always forward — the continuation follows the
    // spliced body, so no back-edge poll is needed).
    if (In->Dst != ExecInst::NoSlot)
      R[In->Dst] = R[In->A];
    --Depth;
    --InlineLive;
    PC = static_cast<size_t>(In->X);
  }
  SAFETSA_NEXT();

#if !SAFETSA_COMPUTED_GOTO
  }
  return RuntimeError::Internal; // Unreachable: all opcodes handled.
#endif

#undef SAFETSA_CASE
#undef SAFETSA_NEXT
#undef SAFETSA_TRAP
#undef SAFETSA_INVOKE
#undef SAFETSA_BACKEDGE_POLL
}
