//===- tsa/Signature.cpp --------------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tsa/Signature.h"

using namespace safetsa;

const char *safetsa::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Const:
    return "const";
  case Opcode::Param:
    return "param";
  case Opcode::Phi:
    return "phi";
  case Opcode::Primitive:
    return "primitive";
  case Opcode::XPrimitive:
    return "xprimitive";
  case Opcode::NullCheck:
    return "nullcheck";
  case Opcode::IndexCheck:
    return "indexcheck";
  case Opcode::Upcast:
    return "upcast";
  case Opcode::Downcast:
    return "downcast";
  case Opcode::GetField:
    return "getfield";
  case Opcode::SetField:
    return "setfield";
  case Opcode::GetElt:
    return "getelt";
  case Opcode::SetElt:
    return "setelt";
  case Opcode::GetStatic:
    return "getstatic";
  case Opcode::SetStatic:
    return "setstatic";
  case Opcode::ArrayLength:
    return "arraylength";
  case Opcode::New:
    return "new";
  case Opcode::NewArray:
    return "newarray";
  case Opcode::Call:
    return "xcall";
  case Opcode::Dispatch:
    return "xdispatch";
  }
  return "op";
}

const char *safetsa::primOpName(PrimOp Op) {
  switch (Op) {
  case PrimOp::AddI:
    return "add";
  case PrimOp::SubI:
    return "sub";
  case PrimOp::MulI:
    return "mul";
  case PrimOp::DivI:
    return "div";
  case PrimOp::RemI:
    return "rem";
  case PrimOp::NegI:
    return "neg";
  case PrimOp::AndI:
    return "and";
  case PrimOp::OrI:
    return "or";
  case PrimOp::XorI:
    return "xor";
  case PrimOp::ShlI:
    return "shl";
  case PrimOp::ShrI:
    return "shr";
  case PrimOp::NotI:
    return "not";
  case PrimOp::CmpLtI:
    return "cmplt";
  case PrimOp::CmpLeI:
    return "cmple";
  case PrimOp::CmpGtI:
    return "cmpgt";
  case PrimOp::CmpGeI:
    return "cmpge";
  case PrimOp::CmpEqI:
    return "cmpeq";
  case PrimOp::CmpNeI:
    return "cmpne";
  case PrimOp::IntToDouble:
    return "todouble";
  case PrimOp::IntToChar:
    return "tochar";
  case PrimOp::AddD:
    return "add";
  case PrimOp::SubD:
    return "sub";
  case PrimOp::MulD:
    return "mul";
  case PrimOp::DivD:
    return "div";
  case PrimOp::NegD:
    return "neg";
  case PrimOp::CmpLtD:
    return "cmplt";
  case PrimOp::CmpLeD:
    return "cmple";
  case PrimOp::CmpGtD:
    return "cmpgt";
  case PrimOp::CmpGeD:
    return "cmpge";
  case PrimOp::CmpEqD:
    return "cmpeq";
  case PrimOp::CmpNeD:
    return "cmpne";
  case PrimOp::DoubleToInt:
    return "toint";
  case PrimOp::CharToInt:
    return "toint";
  case PrimOp::NotB:
    return "not";
  case PrimOp::CmpEqB:
    return "cmpeq";
  case PrimOp::CmpNeB:
    return "cmpne";
  case PrimOp::CmpEqR:
    return "cmpeq";
  case PrimOp::CmpNeR:
    return "cmpne";
  case PrimOp::InstanceOf:
    return "instanceof";
  }
  return "primop";
}

unsigned safetsa::primOpArity(PrimOp Op) {
  switch (Op) {
  case PrimOp::NegI:
  case PrimOp::NotI:
  case PrimOp::IntToDouble:
  case PrimOp::IntToChar:
  case PrimOp::NegD:
  case PrimOp::DoubleToInt:
  case PrimOp::CharToInt:
  case PrimOp::NotB:
  case PrimOp::InstanceOf:
    return 1;
  default:
    return 2;
  }
}

bool safetsa::primOpMayRaise(PrimOp Op) {
  // Integer divide/remainder raise ArithmeticException on zero divisors;
  // everything else (including IEEE double division) is total. Which
  // operations raise is, per paper §5, a property of the transported
  // language's type system — these are Java's rules.
  return Op == PrimOp::DivI || Op == PrimOp::RemI;
}

Type *safetsa::primOpOperandType(PrimOp Op, PlaneContext &Ctx) {
  switch (Op) {
  case PrimOp::AddI:
  case PrimOp::SubI:
  case PrimOp::MulI:
  case PrimOp::DivI:
  case PrimOp::RemI:
  case PrimOp::NegI:
  case PrimOp::AndI:
  case PrimOp::OrI:
  case PrimOp::XorI:
  case PrimOp::ShlI:
  case PrimOp::ShrI:
  case PrimOp::NotI:
  case PrimOp::CmpLtI:
  case PrimOp::CmpLeI:
  case PrimOp::CmpGtI:
  case PrimOp::CmpGeI:
  case PrimOp::CmpEqI:
  case PrimOp::CmpNeI:
  case PrimOp::IntToDouble:
  case PrimOp::IntToChar:
    return Ctx.Types.getInt();
  case PrimOp::AddD:
  case PrimOp::SubD:
  case PrimOp::MulD:
  case PrimOp::DivD:
  case PrimOp::NegD:
  case PrimOp::CmpLtD:
  case PrimOp::CmpLeD:
  case PrimOp::CmpGtD:
  case PrimOp::CmpGeD:
  case PrimOp::CmpEqD:
  case PrimOp::CmpNeD:
  case PrimOp::DoubleToInt:
    return Ctx.Types.getDouble();
  case PrimOp::CharToInt:
    return Ctx.Types.getChar();
  case PrimOp::NotB:
  case PrimOp::CmpEqB:
  case PrimOp::CmpNeB:
    return Ctx.Types.getBoolean();
  case PrimOp::CmpEqR:
  case PrimOp::CmpNeR:
  case PrimOp::InstanceOf:
    // Reference operations live on the Object plane; operands of more
    // specific static types reach it through free downcasts.
    return Ctx.objectType();
  }
  return Ctx.Types.getError();
}

Type *safetsa::primOpResultType(PrimOp Op, PlaneContext &Ctx) {
  switch (Op) {
  case PrimOp::AddI:
  case PrimOp::SubI:
  case PrimOp::MulI:
  case PrimOp::DivI:
  case PrimOp::RemI:
  case PrimOp::NegI:
  case PrimOp::AndI:
  case PrimOp::OrI:
  case PrimOp::XorI:
  case PrimOp::ShlI:
  case PrimOp::ShrI:
  case PrimOp::NotI:
  case PrimOp::CharToInt:
  case PrimOp::DoubleToInt:
    return Ctx.Types.getInt();
  case PrimOp::AddD:
  case PrimOp::SubD:
  case PrimOp::MulD:
  case PrimOp::DivD:
  case PrimOp::NegD:
  case PrimOp::IntToDouble:
    return Ctx.Types.getDouble();
  case PrimOp::IntToChar:
    return Ctx.Types.getChar();
  default:
    // All comparisons, NotB, InstanceOf.
    return Ctx.Types.getBoolean();
  }
}

bool Instruction::mayRaise() const {
  switch (Op) {
  case Opcode::XPrimitive:
  case Opcode::NullCheck:
  case Opcode::IndexCheck:
  case Opcode::Upcast:
  case Opcode::NewArray:
  case Opcode::Call:
  case Opcode::Dispatch:
    return true;
  default:
    return false;
  }
}

bool Instruction::hasResult() const {
  switch (Op) {
  case Opcode::SetField:
  case Opcode::SetElt:
  case Opcode::SetStatic:
    return false;
  case Opcode::Call:
  case Opcode::Dispatch:
    return Method && !Method->RetTy->isVoid();
  default:
    return true;
  }
}

bool Instruction::hasSideEffects() const {
  switch (Op) {
  case Opcode::SetField:
  case Opcode::SetElt:
  case Opcode::SetStatic:
  case Opcode::Call:
  case Opcode::Dispatch:
    return true;
  default:
    return false;
  }
}

unsigned safetsa::expectedOperandCount(const Instruction &I) {
  switch (I.Op) {
  case Opcode::Const:
  case Opcode::Param:
  case Opcode::GetStatic:
  case Opcode::New:
    return 0;
  case Opcode::Phi:
    return static_cast<unsigned>(I.Operands.size()); // == #preds; checked
                                                     // by the verifier.
  case Opcode::Primitive:
  case Opcode::XPrimitive:
    return primOpArity(I.Prim);
  case Opcode::NullCheck:
  case Opcode::Upcast:
  case Opcode::Downcast:
  case Opcode::GetField:
  case Opcode::SetStatic:
  case Opcode::ArrayLength:
  case Opcode::NewArray:
    return 1;
  case Opcode::IndexCheck:
  case Opcode::SetField:
  case Opcode::GetElt:
    return 2;
  case Opcode::SetElt:
    return 3;
  case Opcode::Call: {
    unsigned N = static_cast<unsigned>(I.Method->ParamTys.size());
    return I.Method->IsConstructor ? N + 1 : N;
  }
  case Opcode::Dispatch:
    return static_cast<unsigned>(I.Method->ParamTys.size()) + 1;
  }
  return 0;
}

std::optional<PlaneKey> safetsa::operandPlane(const Instruction &I,
                                              unsigned Idx, PlaneContext &Ctx,
                                              std::string *Err) {
  auto Fail = [&](const std::string &Msg) -> std::optional<PlaneKey> {
    if (Err)
      *Err = Msg;
    return std::nullopt;
  };

  switch (I.Op) {
  case Opcode::Const:
  case Opcode::Param:
  case Opcode::GetStatic:
  case Opcode::New:
    return Fail("instruction takes no operands");

  case Opcode::Phi:
    // All operands on the result plane (strict type separation of phis).
    return I.DstSafe ? PlaneKey::safeRef(I.OpType)
                     : PlaneKey::base(I.OpType);

  case Opcode::Primitive:
  case Opcode::XPrimitive:
    if (Idx >= primOpArity(I.Prim))
      return Fail("primitive operand index out of range");
    return PlaneKey::base(primOpOperandType(I.Prim, Ctx));

  case Opcode::NullCheck:
    if (!I.OpType || !(I.OpType->isClass() || I.OpType->isArray()))
      return Fail("nullcheck requires a reference type");
    return PlaneKey::base(I.OpType);

  case Opcode::IndexCheck:
    if (!I.OpType || !I.OpType->isArray())
      return Fail("indexcheck requires an array type");
    if (Idx == 0)
      return PlaneKey::safeRef(I.OpType);
    return PlaneKey::base(Ctx.Types.getInt());

  case Opcode::Upcast:
    // The dynamic check inspects the object header, so the operand comes
    // from the most general plane.
    return PlaneKey::base(Ctx.objectType());

  case Opcode::Downcast:
    if (!I.AuxType)
      return Fail("downcast missing source type");
    return I.SrcSafe ? PlaneKey::safeRef(I.AuxType)
                     : PlaneKey::base(I.AuxType);

  case Opcode::GetField:
  case Opcode::SetField: {
    if (!I.Field || !I.OpType || !I.OpType->isClass())
      return Fail("field access requires a class type and field");
    if (!I.OpType->getClassSymbol()->isSubclassOf(I.Field->Owner))
      return Fail("field does not belong to the accessed class");
    if (I.Field->IsStatic)
      return Fail("instance field access names a static field");
    if (Idx == 0)
      return PlaneKey::safeRef(I.OpType);
    return PlaneKey::base(I.Field->Ty);
  }

  case Opcode::GetElt:
  case Opcode::SetElt: {
    if (!I.OpType || !I.OpType->isArray())
      return Fail("element access requires an array type");
    if (Idx == 0)
      return PlaneKey::safeRef(I.OpType);
    if (Idx == 1) {
      if (I.Operands.empty() || !I.Operands[0])
        return Fail("element access index decoded before its array");
      // The safe-index plane is anchored to the array VALUE (Appendix A);
      // this is what makes a stale or foreign index certificate
      // inexpressible.
      return PlaneKey::safeIndex(I.OpType, I.Operands[0]);
    }
    return PlaneKey::base(I.OpType->getElemType());
  }

  case Opcode::SetStatic:
    if (!I.Field || !I.Field->IsStatic)
      return Fail("setstatic requires a static field");
    return PlaneKey::base(I.Field->Ty);

  case Opcode::ArrayLength:
    if (!I.OpType || !I.OpType->isArray())
      return Fail("arraylength requires an array type");
    return PlaneKey::safeRef(I.OpType);

  case Opcode::NewArray:
    return PlaneKey::base(Ctx.Types.getInt());

  case Opcode::Call: {
    const MethodSymbol *M = I.Method;
    if (!M)
      return Fail("call missing method");
    unsigned ArgBase = 0;
    if (M->IsConstructor) {
      if (Idx == 0)
        return PlaneKey::base(Ctx.Types.getClass(M->Owner));
      ArgBase = 1;
    } else if (!M->IsStatic) {
      return Fail("xcall target must be static or a constructor");
    }
    unsigned ArgIdx = Idx - ArgBase;
    if (ArgIdx >= M->ParamTys.size())
      return Fail("call operand index out of range");
    return PlaneKey::base(M->ParamTys[ArgIdx]);
  }

  case Opcode::Dispatch: {
    const MethodSymbol *M = I.Method;
    if (!M || M->IsStatic || M->IsConstructor)
      return Fail("xdispatch target must be an instance method");
    if (M->VTableSlot < 0)
      return Fail("xdispatch target has no vtable slot");
    if (Idx == 0) {
      // The receiver must already be null-checked: dispatch dereferences
      // the object header, so it reads from the safe-ref plane.
      return PlaneKey::safeRef(Ctx.Types.getClass(M->Owner));
    }
    if (Idx - 1 >= M->ParamTys.size())
      return Fail("dispatch operand index out of range");
    return PlaneKey::base(M->ParamTys[Idx - 1]);
  }
  }
  return Fail("unknown opcode");
}

std::optional<PlaneKey> safetsa::resultPlane(const Instruction &I,
                                             PlaneContext &Ctx) {
  switch (I.Op) {
  case Opcode::Const: {
    return PlaneKey::base(I.OpType);
  }
  case Opcode::Param:
    return PlaneKey::base(I.OpType);
  case Opcode::Phi:
    return I.DstSafe ? PlaneKey::safeRef(I.OpType)
                     : PlaneKey::base(I.OpType);
  case Opcode::Primitive:
  case Opcode::XPrimitive:
    return PlaneKey::base(primOpResultType(I.Prim, Ctx));
  case Opcode::NullCheck:
    return PlaneKey::safeRef(I.OpType);
  case Opcode::IndexCheck:
    assert(!I.Operands.empty() && "indexcheck missing array operand");
    return PlaneKey::safeIndex(I.OpType, I.Operands[0]);
  case Opcode::Upcast:
    return PlaneKey::base(I.OpType);
  case Opcode::Downcast:
    return I.DstSafe ? PlaneKey::safeRef(I.OpType)
                     : PlaneKey::base(I.OpType);
  case Opcode::GetField:
    return PlaneKey::base(I.Field->Ty);
  case Opcode::GetElt:
    return PlaneKey::base(I.OpType->getElemType());
  case Opcode::GetStatic:
    return PlaneKey::base(I.Field->Ty);
  case Opcode::ArrayLength:
    return PlaneKey::base(Ctx.Types.getInt());
  case Opcode::New:
  case Opcode::NewArray:
    return PlaneKey::base(I.OpType);
  case Opcode::Call:
  case Opcode::Dispatch:
    if (I.Method->RetTy->isVoid())
      return std::nullopt;
    return PlaneKey::base(I.Method->RetTy);
  case Opcode::SetField:
  case Opcode::SetElt:
  case Opcode::SetStatic:
    return std::nullopt;
  }
  return std::nullopt;
}

std::string PlaneKey::str() const {
  std::string Base = Ty ? Ty->getName() : "<none>";
  switch (K) {
  case Kind::Base:
    return Base;
  case Kind::SafeRef:
    return "safe-" + Base;
  case Kind::SafeIndex:
    return "safe-index-" + Base;
  }
  return Base;
}
