//===- tsa/Printer.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tsa/Printer.h"

#include <sstream>

using namespace safetsa;

namespace {

class MethodPrinter {
public:
  MethodPrinter(const TSAMethod &M, PlaneContext &Ctx) : M(M), Ctx(Ctx) {}

  std::string print() {
    OS << "method " << (M.Symbol ? M.Symbol->signature() : "<anon>") << '\n';
    printSeq(M.Root, 1);
    return OS.str();
  }

private:
  const TSAMethod &M;
  PlaneContext &Ctx;
  std::ostringstream OS;

  void indent(unsigned Depth) {
    for (unsigned I = 0; I != Depth; ++I)
      OS << "  ";
  }

  /// Formats an operand as the paper's (l-r) pair relative to \p UseBlock.
  std::string ref(const Instruction *Def, const BasicBlock *UseBlock) {
    if (!Def)
      return "(?)";
    const BasicBlock *DefBlock = Def->Parent;
    if (!DefBlock || !UseBlock)
      return "(?)";
    unsigned L = UseBlock->DomDepth >= DefBlock->DomDepth
                     ? UseBlock->DomDepth - DefBlock->DomDepth
                     : ~0u;
    std::ostringstream R;
    R << '(' << L << '-' << Def->PlaneIndex << ')';
    return R.str();
  }

  void printConst(const ConstantValue &C) {
    switch (C.K) {
    case ConstantValue::Kind::Int:
      OS << C.IntVal;
      break;
    case ConstantValue::Kind::Double:
      OS << C.DblVal;
      break;
    case ConstantValue::Kind::Bool:
      OS << (C.IntVal ? "true" : "false");
      break;
    case ConstantValue::Kind::Char:
      OS << '\'' << static_cast<char>(C.IntVal) << '\'';
      break;
    case ConstantValue::Kind::Null:
      OS << "null";
      break;
    case ConstantValue::Kind::String:
      OS << '"' << C.StrVal << '"';
      break;
    }
  }

  void printInstruction(const Instruction &I, const BasicBlock &BB,
                        unsigned Depth) {
    indent(Depth + 1);
    std::optional<PlaneKey> Result = resultPlane(I, Ctx);
    if (Result)
      OS << Result->str() << '[' << I.PlaneIndex << "] <- ";
    OS << opcodeName(I.Op);
    switch (I.Op) {
    case Opcode::Const:
      OS << ' ';
      printConst(I.C);
      break;
    case Opcode::Param:
      OS << ' ' << I.ParamIndex;
      break;
    case Opcode::Primitive:
    case Opcode::XPrimitive:
      OS << ' ' << primOpOperandType(I.Prim, Ctx)->getName() << ' '
         << primOpName(I.Prim);
      if (I.Prim == PrimOp::InstanceOf && I.AuxType)
        OS << ' ' << I.AuxType->getName();
      break;
    case Opcode::NullCheck:
    case Opcode::IndexCheck:
    case Opcode::ArrayLength:
    case Opcode::New:
    case Opcode::NewArray:
      OS << ' ' << I.OpType->getName();
      break;
    case Opcode::Upcast:
      OS << " to " << I.OpType->getName();
      break;
    case Opcode::Downcast:
      OS << ' ' << (I.SrcSafe ? "safe-" : "") << I.AuxType->getName()
         << " to " << (I.DstSafe ? "safe-" : "") << I.OpType->getName();
      break;
    case Opcode::GetField:
    case Opcode::SetField:
      OS << ' ' << I.OpType->getName() << ' ' << I.Field->Name;
      break;
    case Opcode::GetStatic:
    case Opcode::SetStatic:
      OS << ' ' << I.Field->Owner->Name << '.' << I.Field->Name;
      break;
    case Opcode::GetElt:
    case Opcode::SetElt:
      OS << ' ' << I.OpType->getName();
      break;
    case Opcode::Call:
    case Opcode::Dispatch:
      OS << ' ' << I.Method->signature();
      break;
    case Opcode::Phi:
      OS << ' ' << (I.DstSafe ? "safe-" : "") << I.OpType->getName();
      break;
    }
    if (I.isPhi()) {
      // Phi operands are relative to the corresponding predecessor block.
      for (size_t K = 0; K != I.Operands.size(); ++K) {
        const BasicBlock *Pred =
            K < BB.Preds.size() ? BB.Preds[K] : nullptr;
        OS << ' ' << ref(I.Operands[K], Pred);
      }
    } else {
      for (const Instruction *Op : I.Operands)
        OS << ' ' << ref(Op, &BB);
    }
    OS << '\n';
  }

  void printBlock(const BasicBlock &BB, unsigned Depth) {
    indent(Depth);
    OS << "block " << BB.Id << " (depth " << BB.DomDepth << ", preds";
    for (const BasicBlock *P : BB.Preds)
      OS << ' ' << P->Id;
    OS << "):\n";
    for (const auto &I : BB.Insts)
      printInstruction(*I, BB, Depth);
  }

  void printSeq(const CSTSeq &Seq, unsigned Depth) {
    BasicBlock *Cur = nullptr;
    for (const auto &Node : Seq) {
      switch (Node->K) {
      case CSTNode::Kind::Basic:
        printBlock(*Node->BB, Depth);
        Cur = Node->BB;
        break;
      case CSTNode::Kind::If:
        indent(Depth);
        OS << "if " << ref(Node->Cond, Cur) << " then\n";
        printSeq(Node->Then, Depth + 1);
        if (!Node->Else.empty()) {
          indent(Depth);
          OS << "else\n";
          printSeq(Node->Else, Depth + 1);
        }
        indent(Depth);
        OS << "endif\n";
        break;
      case CSTNode::Kind::Loop: {
        indent(Depth);
        OS << "loop header:\n";
        printSeq(Node->Header, Depth + 1);
        // The decision block is the header sequence's last basic block.
        const BasicBlock *Decision = nullptr;
        for (const auto &H : Node->Header)
          if (H->K == CSTNode::Kind::Basic)
            Decision = H->BB;
        indent(Depth);
        OS << "while " << ref(Node->Cond, Decision) << " do\n";
        printSeq(Node->Body, Depth + 1);
        indent(Depth);
        OS << "endloop\n";
        break;
      }
      case CSTNode::Kind::Try:
        indent(Depth);
        OS << "try\n";
        printSeq(Node->Then, Depth + 1);
        indent(Depth);
        OS << "catch\n";
        printSeq(Node->Else, Depth + 1);
        indent(Depth);
        OS << "endtry\n";
        break;
      case CSTNode::Kind::Return:
        indent(Depth);
        OS << "return";
        if (Node->RetVal)
          OS << ' ' << ref(Node->RetVal, Cur);
        OS << '\n';
        break;
      case CSTNode::Kind::Break:
        indent(Depth);
        OS << "break\n";
        break;
      case CSTNode::Kind::Continue:
        indent(Depth);
        OS << "continue\n";
        break;
      }
    }
  }
};

} // namespace

std::string safetsa::printMethod(const TSAMethod &M, PlaneContext &Ctx) {
  return MethodPrinter(M, Ctx).print();
}

std::string safetsa::printModule(const TSAModule &M) {
  PlaneContext Ctx{*M.Types, *M.Table};
  std::string Out;
  for (const auto &Method : M.Methods) {
    Out += printMethod(*Method, Ctx);
    Out += '\n';
  }
  return Out;
}
