//===- tsa/Printer.h - Textual SafeTSA dump -------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable dump of SafeTSA methods in the paper's (l-r) notation
/// (Figures 2/4/9): operands print as (l-r) pairs, results implicitly
/// fill their plane in ascending order.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_TSA_PRINTER_H
#define SAFETSA_TSA_PRINTER_H

#include "tsa/Method.h"
#include "tsa/Signature.h"

#include <string>

namespace safetsa {

/// Renders one method. Requires deriveCFG() + finalize() to have run (the
/// driver pipeline guarantees this).
std::string printMethod(const TSAMethod &M, PlaneContext &Ctx);

/// Renders every method of the module.
std::string printModule(const TSAModule &M);

} // namespace safetsa

#endif // SAFETSA_TSA_PRINTER_H
