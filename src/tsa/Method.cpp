//===- tsa/Method.cpp - CFG derivation and numbering ----------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derives the control-flow graph and dominator tree from the Control
/// Structure Tree. Both the producer and the consumer run the same
/// derivation, so the dominator relation — the foundation of the (l, r)
/// reference scheme — can never disagree between the two sides.
///
//===----------------------------------------------------------------------===//

#include "tsa/Method.h"
#include "tsa/Signature.h"

#include <algorithm>
#include <unordered_set>

using namespace safetsa;

namespace {

/// CST -> CFG walker. Collects the block visit order and the edge list in
/// a deterministic order (the same order the generator created them in).
class CFGDeriver {
public:
  std::vector<BasicBlock *> Order;
  std::vector<std::pair<BasicBlock *, BasicBlock *>> Edges;

  /// Innermost active exception handler entry (null outside any try).
  BasicBlock *CatchTarget = nullptr;

  /// A fall-out set: the blocks control may leave a sequence from. Almost
  /// always 1-2 blocks, so it lives inline.
  using BlockSet = SmallVector<BasicBlock *, 4>;

  /// Processes \p Seq with control arriving from \p Incoming; returns the
  /// set of blocks whose control falls out of the sequence.
  BlockSet processSeq(const CSTSeq &Seq, BlockSet Incoming,
                      BasicBlock *LoopHeader, BlockSet *LoopBreaks) {
    for (const auto &Node : Seq) {
      switch (Node->K) {
      case CSTNode::Kind::Basic:
        for (BasicBlock *P : Incoming)
          addEdge(P, Node->BB);
        visit(Node->BB);
        if (Node->RaisesToCatch) {
          assert(CatchTarget && "exception edge outside of a try region");
          addEdge(Node->BB, CatchTarget);
        }
        Incoming.assign(1, Node->BB);
        break;

      case CSTNode::Kind::Try: {
        // Then = protected body, Else = handler. Exception edges are
        // emitted while walking the body (RaisesToCatch flags); the
        // handler is entered only through them.
        assert(!Node->Else.empty() &&
               Node->Else.front()->K == CSTNode::Kind::Basic &&
               "try handler must start with a basic block");
        BasicBlock *SavedCatch = CatchTarget;
        CatchTarget = Node->Else.front()->BB;
        BlockSet BodyOut =
            processSeq(Node->Then, std::move(Incoming), LoopHeader,
                       LoopBreaks);
        CatchTarget = SavedCatch;
        BlockSet HandlerOut =
            processSeq(Node->Else, {}, LoopHeader, LoopBreaks);
        Incoming = std::move(BodyOut);
        Incoming.insert(Incoming.end(), HandlerOut.begin(),
                        HandlerOut.end());
        break;
      }

      case CSTNode::Kind::If: {
        // The decision block is the current block; both arms start from it.
        BlockSet ThenOut =
            processSeq(Node->Then, Incoming, LoopHeader, LoopBreaks);
        BlockSet ElseOut =
            Node->Else.empty()
                ? std::move(Incoming)
                : processSeq(Node->Else, std::move(Incoming), LoopHeader,
                             LoopBreaks);
        Incoming = std::move(ThenOut);
        Incoming.insert(Incoming.end(), ElseOut.begin(), ElseOut.end());
        break;
      }

      case CSTNode::Kind::Loop: {
        // Back edges target the header's first block (where the phis
        // live); the condition is available in the header sequence's
        // fall-out block, whose true edge enters the body and whose false
        // edge leaves the loop.
        assert(!Node->Header.empty() &&
               Node->Header.front()->K == CSTNode::Kind::Basic &&
               "loop header must start with a basic block");
        BasicBlock *HeaderEntry = Node->Header.front()->BB;
        BlockSet Decision =
            processSeq(Node->Header, std::move(Incoming), nullptr, nullptr);
        BlockSet Breaks;
        BlockSet BodyOut =
            processSeq(Node->Body, Decision, HeaderEntry, &Breaks);
        for (BasicBlock *Latch : BodyOut)
          addEdge(Latch, HeaderEntry); // Back edges.
        // Control leaves via the decision block's false branch and breaks.
        Incoming = std::move(Decision);
        Incoming.insert(Incoming.end(), Breaks.begin(), Breaks.end());
        break;
      }

      case CSTNode::Kind::Return:
        Incoming.clear();
        break;

      case CSTNode::Kind::Break:
        assert(LoopBreaks && "break outside of a loop");
        LoopBreaks->insert(LoopBreaks->end(), Incoming.begin(),
                           Incoming.end());
        Incoming.clear();
        break;

      case CSTNode::Kind::Continue:
        assert(LoopHeader && "continue outside of a loop");
        for (BasicBlock *P : Incoming)
          addEdge(P, LoopHeader);
        Incoming.clear();
        break;
      }
    }
    return Incoming;
  }

private:
  void visit(BasicBlock *BB) { Order.push_back(BB); }
  void addEdge(BasicBlock *From, BasicBlock *To) { Edges.push_back({From, To}); }
};

} // namespace

void TSAMethod::deriveCFG() {
  CFGDeriver Deriver;
  Deriver.processSeq(Root, {}, nullptr, nullptr);

  assert(Deriver.Order.size() == Blocks.size() &&
         "CST does not cover every block exactly once");

  // Renumber blocks into CST walk order (== dominator-tree pre-order).
  // Blocks are arena-owned, so reordering is pointer shuffling.
#ifndef NDEBUG
  {
    std::unordered_set<BasicBlock *> Known(Blocks.begin(), Blocks.end());
    for (BasicBlock *BB : Deriver.Order)
      assert(Known.count(BB) && "CST references an unowned block");
  }
#endif
  Blocks = Deriver.Order;
  for (size_t I = 0; I != Blocks.size(); ++I) {
    BasicBlock *BB = Blocks[I];
    BB->Id = static_cast<unsigned>(I);
    BB->Preds.clear();
    BB->Succs.clear();
    BB->IDom = nullptr;
    BB->DomDepth = 0;
  }

  for (auto [From, To] : Deriver.Edges) {
    From->Succs.push_back(To);
    To->Preds.push_back(From);
  }

  // Iterative dominator computation (Cooper–Harvey–Kennedy). Blocks are in
  // a reverse-postorder-compatible order for structured CFGs.
  if (Blocks.empty())
    return;
  BasicBlock *Entry = Blocks.front();
  Entry->IDom = nullptr;

  auto Intersect = [](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (A->Id > B->Id)
        A = A->IDom;
      while (B->Id > A->Id)
        B = B->IDom;
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 1; I < Blocks.size(); ++I) {
      BasicBlock *BB = Blocks[I];
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *P : BB->Preds) {
        if (P != Entry && !P->IDom)
          continue; // Not yet processed this round.
        NewIDom = NewIDom ? Intersect(NewIDom, P) : P;
      }
      assert(NewIDom && "unreachable block in CST-derived CFG");
      if (BB->IDom != NewIDom) {
        BB->IDom = NewIDom;
        Changed = true;
      }
    }
  }

  for (auto &BB : Blocks)
    BB->DomDepth = BB->IDom ? BB->IDom->DomDepth + 1 : 0;
}

void TSAMethod::finalize(PlaneContext &Ctx) {
  Planes.clear();
  for (auto &BB : Blocks) {
    BB->PlaneCounts.clear();
    for (auto &I : BB->Insts) {
      std::optional<PlaneKey> Plane = resultPlane(*I, Ctx);
      if (!Plane) {
        I->PlaneId = PlaneInterner::None;
        continue;
      }
      uint32_t Id = Planes.intern(*Plane);
      I->PlaneId = Id;
      if (Id >= BB->PlaneCounts.size())
        BB->PlaneCounts.resize(Id + 1, 0);
      I->PlaneIndex = BB->PlaneCounts[Id]++;
    }
  }
}

void TSAMethod::replaceAllUsesWith(Instruction *Old, Instruction *New) {
  assert(Old != New && "self replacement");
  forEachInstruction([&](const Instruction &CI) {
    auto &I = const_cast<Instruction &>(CI);
    for (Instruction *&Op : I.Operands)
      if (Op == Old)
        Op = New;
  });
  // CST value references (conditions, return values).
  std::function<void(const CSTSeq &)> Walk = [&](const CSTSeq &Seq) {
    for (const auto &Node : Seq) {
      if (Node->Cond == Old)
        Node->Cond = New;
      if (Node->RetVal == Old)
        Node->RetVal = New;
      Walk(Node->Then);
      Walk(Node->Else);
      Walk(Node->Header);
      Walk(Node->Body);
    }
  };
  Walk(Root);
}

bool TSAMethod::hasUses(const Instruction *I) const {
  bool Found = false;
  forEachInstruction([&](const Instruction &Other) {
    for (const Instruction *Op : Other.Operands)
      if (Op == I)
        Found = true;
  });
  if (Found)
    return true;
  std::function<bool(const CSTSeq &)> Walk = [&](const CSTSeq &Seq) {
    for (const auto &Node : Seq) {
      if (Node->Cond == I || Node->RetVal == I)
        return true;
      if (Walk(Node->Then) || Walk(Node->Else) || Walk(Node->Header) ||
          Walk(Node->Body))
        return true;
    }
    return false;
  };
  return Walk(Root);
}

void TSAMethod::eraseIf(const std::function<bool(const Instruction &)> &Pred) {
  // Unlinked instructions stay in the arena until the method dies.
  for (auto &BB : Blocks)
    BB->Insts.erase(std::remove_if(BB->Insts.begin(), BB->Insts.end(),
                                   [&](const Instruction *I) {
                                     return Pred(*I);
                                   }),
                    BB->Insts.end());
}

unsigned TSAMethod::countInstructions() const {
  unsigned N = 0;
  forEachInstruction([&](const Instruction &I) {
    if (!I.isPreload())
      ++N;
  });
  return N;
}

unsigned TSAMethod::countOpcode(Opcode Op) const {
  unsigned N = 0;
  forEachInstruction([&](const Instruction &I) {
    if (I.Op == Op)
      ++N;
  });
  return N;
}
