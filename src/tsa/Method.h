//===- tsa/Method.h - SafeTSA methods, blocks, and the CST ----*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic blocks, the Control Structure Tree, and method/module containers.
///
/// Per paper §7, a SafeTSA method body is partitioned into a Control
/// Structure Tree — "the structural part of the UAST" — and per-block
/// instruction lists. The CST deterministically induces the control-flow
/// graph and the dominator tree ("integrate the dominator and control flow
/// information in the same structure"), which is what makes the three-
/// phase externalization and the (l, r) reference scheme possible.
///
/// CST well-formedness invariants (enforced by the generator, rechecked by
/// the verifier):
///  - Every sequence starts with a Basic node.
///  - Every If and Loop node is immediately followed by a Basic node (the
///    join / loop-exit block).
///  - Return / Break / Continue are the last node of their sequence.
///  - An If's condition value is referenced from the end of the Basic
///    block preceding it; a Loop's condition from the end of its header.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_TSA_METHOD_H
#define SAFETSA_TSA_METHOD_H

#include "sema/ClassTable.h"
#include "support/Arena.h"
#include "tsa/Instruction.h"

#include <functional>
#include <memory>
#include <utility>

namespace safetsa {

class TSAMethod;

/// A basic block: a straight-line instruction list plus derived CFG and
/// dominator links. Phi instructions, when present, precede all others.
///
/// Blocks and their instructions are allocated from the owning method's
/// arena (see TSAMethod); the pointers here are non-owning.
class BasicBlock {
public:
  unsigned Id = 0; ///< Position in TSAMethod::Blocks (dominator pre-order).
  SmallVector<Instruction *, 8> Insts;

  // Derived by deriveCFG():
  SmallVector<BasicBlock *, 2> Preds; ///< Order defines phi operand order.
  SmallVector<BasicBlock *, 2> Succs;
  BasicBlock *IDom = nullptr;
  unsigned DomDepth = 0;

  // Derived by finalize(): number of values per plane in this block,
  // indexed by the owning method's interned plane id (TSAMethod::Planes).
  // Ragged: a block's vector only extends to the highest id it defines.
  SmallVector<unsigned, 8> PlaneCounts;

  /// Values this block holds on interned plane \p Id (0 when the block
  /// defines nothing on that plane).
  unsigned planeCount(uint32_t Id) const {
    return Id < PlaneCounts.size() ? PlaneCounts[Id] : 0;
  }

  Instruction *append(Instruction *I) {
    I->Parent = this;
    Insts.push_back(I);
    return I;
  }

  /// True when \p A dominates \p B (reflexive).
  static bool dominates(const BasicBlock *A, const BasicBlock *B) {
    while (B) {
      if (A == B)
        return true;
      B = B->IDom;
    }
    return false;
  }
};

/// Control Structure Tree node.
///
/// Loop nodes carry a Header sequence rather than a single header block:
/// the loop's phis live in the first block of the Header, but evaluating
/// the condition may itself require structured control flow (short-circuit
/// operators lower to if-else "in all expression contexts", paper footnote
/// 3). Back edges (latch and continue) target the Header's first block;
/// the condition value must be available in the Header's final block,
/// whose true edge enters the Body and false edge exits the loop.
///
/// Try nodes implement the paper's exception translation (§7): inside a
/// try region, "we split basic blocks into linked subblocks" so that each
/// subblock ends with at most one potentially-raising instruction, and
/// "an implicit control-flow edge is created from each potential point of
/// exception to a special exception-handling phi-node" — the first block
/// of the handler sequence. Basic nodes whose block ends with such an
/// instruction carry RaisesToCatch; this is part of the CST (and of the
/// wire format) so producer and consumer derive identical edges. Try
/// reuses Then for the protected body and Else for the handler.
class CSTNode {
public:
  enum class Kind : uint8_t { Basic, If, Loop, Return, Break, Continue,
                              Try };

  Kind K = Kind::Basic;
  BasicBlock *BB = nullptr;      ///< Basic only: the block.
  Instruction *Cond = nullptr;   ///< If / Loop condition (boolean value).
  Instruction *RetVal = nullptr; ///< Return value; null for void returns.
  /// Basic only: this block ends with a potentially-raising instruction
  /// and has an exception edge to the innermost enclosing handler.
  bool RaisesToCatch = false;

  SmallVector<CSTNode *, 2> Then;   ///< If / Try body.
  SmallVector<CSTNode *, 2> Else;   ///< If else / Try handler.
  SmallVector<CSTNode *, 2> Header; ///< Loop only.
  SmallVector<CSTNode *, 2> Body;   ///< Loop only.
};

using CSTSeq = SmallVector<CSTNode *, 2>;

/// One method in SafeTSA form.
///
/// Owns every IR node (Instruction, BasicBlock, CSTNode) through a bump
/// arena: creation is a pointer bump, teardown is one slab sweep. Passes
/// that unlink nodes just drop the pointers — the memory is reclaimed when
/// the method dies, never individually. All node creation goes through the
/// create* helpers below so nothing outlives its method.
class TSAMethod {
public:
  MethodSymbol *Symbol = nullptr;

  /// All blocks in creation order == CST walk order == dominator-tree
  /// pre-order (paper §7 phase 2 transmits blocks in exactly this order).
  std::vector<BasicBlock *> Blocks;

  /// Top-level statement sequence. Blocks[0] is the entry block, which
  /// holds the preloaded parameters and constants followed by code.
  CSTSeq Root;

  /// Dense plane ids for this method, rebuilt by finalize(). Codec and
  /// counter check index flat per-block count vectors with these ids
  /// instead of walking an ordered map per operand.
  PlaneInterner Planes;

  BasicBlock *getEntry() const {
    assert(!Blocks.empty() && "method has no blocks");
    return Blocks.front();
  }

  BasicBlock *createBlock() {
    BasicBlock *BB = Arena.create<BasicBlock>();
    BB->Id = static_cast<unsigned>(Blocks.size());
    Blocks.push_back(BB);
    return BB;
  }

  /// Creates a detached instruction; append it to a block to link it in.
  Instruction *createInst(Opcode Op) {
    Instruction *I = Arena.create<Instruction>();
    I->Op = Op;
    return I;
  }

  /// Creates a detached CST node (defaults to Basic; callers set K).
  CSTNode *createNode() { return Arena.create<CSTNode>(); }

  CSTNode *createBasicNode(BasicBlock *BB) {
    CSTNode *N = Arena.create<CSTNode>();
    N->K = CSTNode::Kind::Basic;
    N->BB = BB;
    return N;
  }

  /// Recomputes Preds/Succs/IDom/DomDepth from the CST and renumbers
  /// Blocks into CST walk order. Must be called after structural changes.
  void deriveCFG();

  /// Assigns PlaneIndex/PlaneId to every instruction, rebuilds the plane
  /// interner, and fills per-block PlaneCounts. Requires deriveCFG() to
  /// have run. \p Ctx supplies the type context used to compute result
  /// planes.
  void finalize(struct PlaneContext &Ctx);

  /// Replaces every use of \p Old (instruction operands, phi inputs, CST
  /// condition/return references, safe-index anchors) with \p New.
  void replaceAllUsesWith(Instruction *Old, Instruction *New);

  /// Invokes \p Fn on every instruction in block order.
  template <typename Fn> void forEachInstruction(Fn &&F) const {
    for (const auto &BB : Blocks)
      for (const auto &I : BB->Insts)
        F(*I);
  }

  /// True if \p I has at least one use (operand or CST reference).
  bool hasUses(const Instruction *I) const;

  /// Removes instructions that were unlinked (marked dead) by passes.
  void eraseIf(const std::function<bool(const Instruction &)> &Pred);

  /// Number of transmitted instructions, excluding the Const/Param
  /// preloads which the paper treats as constant-pool entries rather than
  /// instructions ("doesn't correspond to any actual code").
  unsigned countInstructions() const;
  unsigned countOpcode(Opcode Op) const;

private:
  /// Backing store for every Instruction, BasicBlock, and CSTNode of this
  /// method; the containers above hold raw pointers into it.
  BumpArena Arena;
};

/// A compiled SafeTSA module: the unit of mobile-code distribution.
///
/// Owns the SafeTSA form of every method with a body. Type and member
/// symbols are *references* into the ClassTable — the paper's type table,
/// whose builtin part "is always generated implicitly and thereby
/// tamper-proof".
class TSAModule {
public:
  ClassTable *Table = nullptr;
  TypeContext *Types = nullptr;

  std::vector<std::unique_ptr<TSAMethod>> Methods;

  /// Constant initial values of static fields (slot -> constant); fields
  /// without an entry start zero/null.
  std::vector<std::pair<FieldSymbol *, ConstantValue>> StaticInits;

  TSAMethod *findMethod(const MethodSymbol *Symbol) const {
    for (const auto &M : Methods)
      if (M->Symbol == Symbol)
        return M.get();
    return nullptr;
  }

  /// Whole-module instruction count (paper Figure 5 metric).
  unsigned countInstructions() const {
    unsigned N = 0;
    for (const auto &M : Methods)
      N += M->countInstructions();
    return N;
  }

  unsigned countOpcode(Opcode Op) const {
    unsigned N = 0;
    for (const auto &M : Methods)
      N += M->countOpcode(Op);
    return N;
  }
};

} // namespace safetsa

#endif // SAFETSA_TSA_METHOD_H
