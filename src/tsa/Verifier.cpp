//===- tsa/Verifier.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tsa/Verifier.h"

#include <sstream>
#include <unordered_set>

using namespace safetsa;

void TSAVerifier::error(const TSAMethod &M, const std::string &Msg) {
  std::string Name = M.Symbol ? M.Symbol->signature() : "<method>";
  Errors.push_back(Name + ": " + Msg);
}

bool TSAVerifier::verify() {
  bool Ok = true;
  for (auto &M : Module.Methods)
    Ok &= verifyMethod(*M);
  return Ok;
}

bool TSAVerifier::verifyMethod(TSAMethod &M) {
  size_t ErrorsBefore = Errors.size();

  if (!checkCSTStructure(M))
    return false; // CFG derivation would not be safe.

  M.deriveCFG();
  M.finalize(Ctx);

  // Entry block must have no predecessors; every other block at least one.
  if (!M.Blocks.empty() && !M.getEntry()->Preds.empty())
    error(M, "entry block has predecessors");

  Pos.clear();
  for (auto &BB : M.Blocks)
    for (unsigned I = 0; I != BB->Insts.size(); ++I)
      Pos[BB->Insts[I]] = {BB, I};

  checkBlocks(M);
  checkCSTValueRefs(M);

  return Errors.size() == ErrorsBefore;
}

//===----------------------------------------------------------------------===//
// Counter check (paper §9)
//===----------------------------------------------------------------------===//

bool safetsa::counterCheckMethod(const TSAMethod &M, PlaneContext &Ctx) {
  // Plane typing is assumed intact (see header); finalize() cached each
  // value's interned plane id, so the per-operand cost is one array index
  // — the paper's "simple counters", literally.
  (void)Ctx;
  std::vector<unsigned> Running(M.Planes.size(), 0);
  for (const auto &BB : M.Blocks) {
    Running.assign(Running.size(), 0);
    for (const auto &I : BB->Insts) {
      for (size_t K = 0; K != I->Operands.size(); ++K) {
        const Instruction *Op = I->Operands[K];
        if (!Op || !Op->Parent)
          return false;
        const BasicBlock *D = Op->Parent;
        uint32_t Plane = Op->PlaneId;
        if (Plane >= Running.size())
          return false; // No result value or a foreign interner's id.
        // Phi operand k is checked against the end of predecessor k.
        const BasicBlock *Use =
            I->isPhi() ? (K < BB->Preds.size() ? BB->Preds[K] : nullptr)
                       : BB;
        if (!Use)
          return false;
        if (D == BB && !I->isPhi()) {
          if (Op->PlaneIndex >= Running[Plane])
            return false;
        } else {
          if (!BasicBlock::dominates(D, Use))
            return false;
          if (Op->PlaneIndex >= D->planeCount(Plane))
            return false;
        }
      }
      if (I->PlaneId != PlaneInterner::None)
        ++Running[I->PlaneId];
    }
  }
  return true;
}

bool safetsa::counterCheckModule(const TSAModule &Module) {
  PlaneContext Ctx{*Module.Types, *Module.Table};
  for (const auto &M : Module.Methods)
    if (!counterCheckMethod(*M, Ctx))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// CST structure
//===----------------------------------------------------------------------===//

/// Validates the paper's exception-edge discipline before CFG derivation:
/// RaisesToCatch only inside try bodies; a flagged block's last
/// instruction may raise; inside a try body every raising instruction is
/// last-in-block and flagged (subblock splitting); every handler has at
/// least one incoming edge (otherwise it would be unreachable).
///
/// Allocation-free predicate form; the decoder runs it on every method,
/// so the happy path builds no strings.
static bool checkExceptionEdges(const CSTSeq &Seq, bool InTryBody,
                                unsigned &EdgeCount) {
  for (const auto &Node : Seq) {
    switch (Node->K) {
    case CSTNode::Kind::Basic: {
      const BasicBlock *BB = Node->BB;
      bool LastRaises =
          BB && !BB->Insts.empty() && BB->Insts.back()->mayRaise();
      if (Node->RaisesToCatch) {
        if (!InTryBody || !LastRaises)
          return false;
        ++EdgeCount;
      } else if (InTryBody && LastRaises) {
        return false;
      }
      if (InTryBody && BB) {
        for (size_t I = 0; I + 1 < BB->Insts.size(); ++I)
          if (BB->Insts[I]->mayRaise())
            return false;
      }
      break;
    }
    case CSTNode::Kind::If:
      if (!checkExceptionEdges(Node->Then, InTryBody, EdgeCount) ||
          !checkExceptionEdges(Node->Else, InTryBody, EdgeCount))
        return false;
      break;
    case CSTNode::Kind::Loop:
      if (!checkExceptionEdges(Node->Header, InTryBody, EdgeCount) ||
          !checkExceptionEdges(Node->Body, InTryBody, EdgeCount))
        return false;
      break;
    case CSTNode::Kind::Try: {
      unsigned Inner = 0;
      if (!checkExceptionEdges(Node->Then, /*InTryBody=*/true, Inner))
        return false;
      if (Inner == 0)
        return false;
      if (!checkExceptionEdges(Node->Else, InTryBody, EdgeCount))
        return false;
      break;
    }
    default:
      break;
    }
  }
  return true;
}

static bool checkExceptionEdgesVerbose(const CSTSeq &Seq, bool InTryBody,
                                       unsigned &EdgeCount,
                                       std::vector<std::string> &Errors,
                                       const std::string &Name) {
  for (const auto &Node : Seq) {
    switch (Node->K) {
    case CSTNode::Kind::Basic: {
      const BasicBlock *BB = Node->BB;
      bool LastRaises =
          BB && !BB->Insts.empty() && BB->Insts.back()->mayRaise();
      if (Node->RaisesToCatch) {
        if (!InTryBody) {
          Errors.push_back(Name + ": exception edge outside of a try body");
          return false;
        }
        if (!LastRaises) {
          Errors.push_back(
              Name + ": flagged block does not end with a raising "
                     "instruction");
          return false;
        }
        ++EdgeCount;
      } else if (InTryBody && LastRaises) {
        Errors.push_back(Name + ": raising instruction in a try body "
                                "without an exception edge");
        return false;
      }
      if (InTryBody && BB) {
        for (size_t I = 0; I + 1 < BB->Insts.size(); ++I)
          if (BB->Insts[I]->mayRaise()) {
            Errors.push_back(Name + ": raising instruction is not the "
                                    "last of its subblock");
            return false;
          }
      }
      break;
    }
    case CSTNode::Kind::If:
      if (!checkExceptionEdgesVerbose(Node->Then, InTryBody, EdgeCount,
                                      Errors, Name) ||
          !checkExceptionEdgesVerbose(Node->Else, InTryBody, EdgeCount,
                                      Errors, Name))
        return false;
      break;
    case CSTNode::Kind::Loop:
      if (!checkExceptionEdgesVerbose(Node->Header, InTryBody, EdgeCount,
                                      Errors, Name) ||
          !checkExceptionEdgesVerbose(Node->Body, InTryBody, EdgeCount,
                                      Errors, Name))
        return false;
      break;
    case CSTNode::Kind::Try: {
      unsigned Inner = 0;
      if (!checkExceptionEdgesVerbose(Node->Then, /*InTryBody=*/true, Inner,
                                      Errors, Name))
        return false;
      if (Inner == 0) {
        Errors.push_back(Name + ": try handler is unreachable (no "
                                "exception edges)");
        return false;
      }
      // The handler's own exceptions route to the enclosing context.
      if (!checkExceptionEdgesVerbose(Node->Else, InTryBody, EdgeCount,
                                      Errors, Name))
        return false;
      break;
    }
    default:
      break;
    }
  }
  return true;
}

bool safetsa::checkExceptionDiscipline(const TSAMethod &M,
                                       std::string *Err) {
  unsigned TopEdges = 0;
  if (checkExceptionEdges(M.Root, /*InTryBody=*/false, TopEdges))
    return true;
  // Re-walk with error collection; the happy path (every decode of a
  // well-formed module) allocates no strings.
  if (Err) {
    std::vector<std::string> Errors;
    unsigned Edges = 0;
    std::string Name = M.Symbol ? M.Symbol->signature() : "<method>";
    checkExceptionEdgesVerbose(M.Root, /*InTryBody=*/false, Edges, Errors,
                               Name);
    if (!Errors.empty())
      *Err = Errors.front();
  }
  return false;
}

bool TSAVerifier::checkCSTStructure(TSAMethod &M) {
  std::vector<BasicBlock *> Covered;
  if (!checkSeq(M.Root, /*InLoop=*/false, /*IsLoopHeader=*/false, Covered, M))
    return false;

  std::string EdgeErr;
  if (!checkExceptionDiscipline(M, &EdgeErr)) {
    Errors.push_back(EdgeErr);
    return false;
  }

  if (Covered.size() != M.Blocks.size()) {
    error(M, "CST covers " + std::to_string(Covered.size()) + " blocks but "
                 "the method owns " + std::to_string(M.Blocks.size()));
    return false;
  }
  std::unordered_set<const BasicBlock *> Owned;
  for (auto &BB : M.Blocks)
    Owned.insert(BB);
  std::unordered_set<const BasicBlock *> Seen;
  for (BasicBlock *BB : Covered) {
    if (!Owned.count(BB)) {
      error(M, "CST references a block not owned by the method");
      return false;
    }
    if (!Seen.insert(BB).second) {
      error(M, "CST references a block twice");
      return false;
    }
  }
  return true;
}

bool TSAVerifier::checkSeq(const CSTSeq &Seq, bool InLoop, bool IsLoopHeader,
                           std::vector<BasicBlock *> &Covered, TSAMethod &M) {
  if (Seq.empty()) {
    error(M, "empty CST sequence");
    return false;
  }
  if (Seq.front()->K != CSTNode::Kind::Basic) {
    error(M, "CST sequence does not start with a basic block");
    return false;
  }
  for (size_t I = 0; I != Seq.size(); ++I) {
    const CSTNode &Node = *Seq[I];
    bool IsLast = I + 1 == Seq.size();
    switch (Node.K) {
    case CSTNode::Kind::Basic:
      if (!Node.BB) {
        error(M, "basic CST node without a block");
        return false;
      }
      Covered.push_back(Node.BB);
      break;
    case CSTNode::Kind::If:
      if (!Node.Cond) {
        error(M, "if node without a condition value");
        return false;
      }
      if (!checkSeq(Node.Then, InLoop, IsLoopHeader, Covered, M))
        return false;
      if (!Node.Else.empty() &&
          !checkSeq(Node.Else, InLoop, IsLoopHeader, Covered, M))
        return false;
      break;
    case CSTNode::Kind::Try:
      if (IsLoopHeader) {
        error(M, "try inside a loop header sequence");
        return false;
      }
      if (Node.Else.empty()) {
        error(M, "try node without a handler");
        return false;
      }
      if (!checkSeq(Node.Then, InLoop, false, Covered, M))
        return false;
      if (!checkSeq(Node.Else, InLoop, false, Covered, M))
        return false;
      break;
    case CSTNode::Kind::Loop:
      if (IsLoopHeader) {
        // Loop headers contain only expression control flow; a loop whose
        // decision set could become empty would break CFG derivation.
        error(M, "loop nested inside a loop header sequence");
        return false;
      }
      if (!Node.Cond) {
        error(M, "loop node without a condition value");
        return false;
      }
      if (!checkSeq(Node.Header, false, /*IsLoopHeader=*/true, Covered, M))
        return false;
      if (!checkSeq(Node.Body, /*InLoop=*/true, false, Covered, M))
        return false;
      break;
    case CSTNode::Kind::Return:
      if (IsLoopHeader) {
        error(M, "return inside a loop header sequence");
        return false;
      }
      if (!IsLast) {
        error(M, "statements follow a return in a CST sequence");
        return false;
      }
      break;
    case CSTNode::Kind::Break:
    case CSTNode::Kind::Continue:
      if (!InLoop || IsLoopHeader) {
        error(M, "break/continue outside of a loop body in the CST");
        return false;
      }
      if (!IsLast) {
        error(M, "statements follow a break/continue in a CST sequence");
        return false;
      }
      break;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Instruction checks
//===----------------------------------------------------------------------===//

bool TSAVerifier::isAvailableAt(const Instruction *Def,
                                const BasicBlock *Block,
                                unsigned Ordinal) const {
  auto It = Pos.find(Def);
  if (It == Pos.end())
    return false; // Foreign instruction (different method) or dangling.
  const BasicBlock *DefBlock = It->second.first;
  if (DefBlock == Block)
    return It->second.second < Ordinal;
  return BasicBlock::dominates(DefBlock, Block);
}

void TSAVerifier::checkBlocks(TSAMethod &M) {
  for (auto &BB : M.Blocks) {
    bool SeenNonPhi = false;
    for (unsigned Ord = 0; Ord != BB->Insts.size(); ++Ord) {
      Instruction &I = *BB->Insts[Ord];
      if (I.isPhi()) {
        if (SeenNonPhi)
          error(M, "phi after non-phi instruction in block " +
                       std::to_string(BB->Id));
      } else {
        SeenNonPhi = true;
      }
      checkInstruction(M, *BB, I, Ord);
    }
  }
}

void TSAVerifier::checkConst(TSAMethod &M, const Instruction &I) {
  Type *Ty = I.OpType;
  bool Ok = false;
  switch (I.C.K) {
  case ConstantValue::Kind::Int:
    Ok = Ty->isInt();
    break;
  case ConstantValue::Kind::Double:
    Ok = Ty->isDouble();
    break;
  case ConstantValue::Kind::Bool:
    Ok = Ty->isBoolean();
    break;
  case ConstantValue::Kind::Char:
    Ok = Ty->isChar();
    break;
  case ConstantValue::Kind::Null:
    Ok = Ty->isClass() || Ty->isArray();
    break;
  case ConstantValue::Kind::String:
    Ok = Ty->isArray() && Ty->getElemType()->isChar();
    break;
  }
  if (!Ok)
    error(M, "constant kind does not match its declared type plane");
}

void TSAVerifier::checkDowncast(TSAMethod &M, const Instruction &I) {
  Type *Src = I.AuxType, *Dst = I.OpType;
  if (!Src || !Dst || !(Src->isClass() || Src->isArray()) ||
      !(Dst->isClass() || Dst->isArray())) {
    error(M, "downcast requires reference types");
    return;
  }
  // Statically-safe directions only: widening along the class hierarchy
  // (identity included); arrays widen only to Object. Safety may be
  // erased (safe-ref -> ref) or preserved, but NEVER introduced — that is
  // nullcheck's exclusive privilege.
  bool Widens = false;
  if (Src == Dst)
    Widens = true;
  else if (Dst->isClass() && Src->isClass())
    Widens = Src->getClassSymbol()->isSubclassOf(Dst->getClassSymbol());
  else if (Dst->isClass() && Src->isArray())
    Widens = Dst->getClassSymbol()->Super == nullptr; // Object only.
  if (!Widens)
    error(M, "downcast does not widen: " + Src->getName() + " -> " +
                 Dst->getName());
  if (I.DstSafe && !I.SrcSafe)
    error(M, "downcast cannot introduce safety (ref -> safe-ref)");
}

void TSAVerifier::checkInstruction(TSAMethod &M, BasicBlock &BB,
                                   Instruction &I, unsigned Ordinal) {
  // Preloads are confined to the entry block (paper §5: parameters and
  // constants are pre-loaded into the initial basic block).
  if (I.isPreload() && &BB != M.getEntry()) {
    error(M, std::string(opcodeName(I.Op)) +
                 " preload outside of the entry block");
    return;
  }
  if (I.Op == Opcode::Const)
    checkConst(M, I);
  if (I.Op == Opcode::Param) {
    // Instance methods and constructors receive `this` as parameter 0;
    // declared parameters follow.
    bool IsInstance = M.Symbol && !M.Symbol->IsStatic;
    unsigned Shift = IsInstance ? 1 : 0;
    bool Ok = false;
    if (IsInstance && I.ParamIndex == 0)
      Ok = I.OpType == Ctx.Types.getClass(M.Symbol->Owner);
    else if (M.Symbol && I.ParamIndex >= Shift &&
             I.ParamIndex - Shift < M.Symbol->ParamTys.size())
      Ok = M.Symbol->ParamTys[I.ParamIndex - Shift] == I.OpType;
    if (!Ok)
      error(M, "parameter preload index/type mismatch");
  }
  if (I.Op == Opcode::Downcast)
    checkDowncast(M, I);
  if (I.Op == Opcode::Upcast &&
      !(I.OpType && (I.OpType->isClass() || I.OpType->isArray())))
    error(M, "upcast target must be a reference type");
  if ((I.Op == Opcode::GetStatic || I.Op == Opcode::SetStatic) &&
      (!I.Field || !I.Field->IsStatic))
    error(M, "static field access without a static field");
  if (I.Op == Opcode::New &&
      !(I.OpType && I.OpType->isClass() &&
        !I.OpType->getClassSymbol()->IsBuiltin))
    error(M, "new requires a user class type");
  if ((I.Op == Opcode::Primitive && primOpMayRaise(I.Prim)) ||
      (I.Op == Opcode::XPrimitive && !primOpMayRaise(I.Prim)))
    error(M, std::string("operation '") + primOpName(I.Prim) +
                 "' used with the wrong primitive/xprimitive opcode");

  // Operand count.
  unsigned Expected = expectedOperandCount(I);
  if (I.isPhi()) {
    if (I.Operands.size() != BB.Preds.size()) {
      error(M, "phi operand count " + std::to_string(I.Operands.size()) +
                   " does not match predecessor count " +
                   std::to_string(BB.Preds.size()) + " in block " +
                   std::to_string(BB.Id));
      return;
    }
  } else if (I.Operands.size() != Expected) {
    error(M, std::string(opcodeName(I.Op)) + " expects " +
                 std::to_string(Expected) + " operands, has " +
                 std::to_string(I.Operands.size()));
    return;
  }

  // Operand planes and availability.
  for (unsigned Idx = 0; Idx != I.Operands.size(); ++Idx) {
    Instruction *Op = I.Operands[Idx];
    if (!Op) {
      error(M, "null operand");
      continue;
    }
    std::string Err;
    std::optional<PlaneKey> Want = operandPlane(I, Idx, Ctx, &Err);
    if (!Want) {
      error(M, std::string(opcodeName(I.Op)) + ": " + Err);
      return;
    }
    std::optional<PlaneKey> Got = resultPlane(*Op, Ctx);
    if (!Got) {
      error(M, "operand has no result value");
      continue;
    }
    if (!(*Got == *Want)) {
      error(M, std::string(opcodeName(I.Op)) + " operand " +
                   std::to_string(Idx) + " is on plane " + Got->str() +
                   " but the instruction reads plane " + Want->str());
      continue;
    }
    if (I.isPhi()) {
      // Phi operand k must be available at the end of predecessor k.
      BasicBlock *Pred = BB.Preds[Idx];
      if (!isAvailableAt(Op, Pred,
                         static_cast<unsigned>(Pred->Insts.size())))
        error(M, "phi operand " + std::to_string(Idx) +
                     " does not dominate its incoming edge");
    } else if (!isAvailableAt(Op, &BB, Ordinal)) {
      error(M, std::string(opcodeName(I.Op)) + " operand " +
                   std::to_string(Idx) +
                   " does not dominate its use (referential integrity)");
    }
  }
}

//===----------------------------------------------------------------------===//
// CST value references
//===----------------------------------------------------------------------===//

void TSAVerifier::checkCSTValueRefs(TSAMethod &M) {
  // Walk the CST maintaining the current block, mirroring CFG derivation.
  std::function<BasicBlock *(const CSTSeq &, BasicBlock *)> Walk =
      [&](const CSTSeq &Seq, BasicBlock *Cur) -> BasicBlock * {
    for (const auto &Node : Seq) {
      switch (Node->K) {
      case CSTNode::Kind::Basic:
        Cur = Node->BB;
        break;
      case CSTNode::Kind::If: {
        const Instruction *Cond = Node->Cond;
        std::optional<PlaneKey> P = Cond ? resultPlane(*Cond, Ctx)
                                         : std::nullopt;
        if (!P || !(*P == PlaneKey::base(Ctx.Types.getBoolean())))
          error(M, "if condition is not a boolean value");
        else if (!Cur || !isAvailableAt(Cond, Cur,
                                        static_cast<unsigned>(
                                            Cur->Insts.size())))
          error(M, "if condition not available at the decision block");
        Walk(Node->Then, Cur);
        Walk(Node->Else, Cur);
        // After an if, control is at the join: the next Basic updates Cur.
        Cur = nullptr;
        break;
      }
      case CSTNode::Kind::Loop: {
        BasicBlock *Decision = Walk(Node->Header, Cur);
        const Instruction *Cond = Node->Cond;
        std::optional<PlaneKey> P = Cond ? resultPlane(*Cond, Ctx)
                                         : std::nullopt;
        if (!P || !(*P == PlaneKey::base(Ctx.Types.getBoolean())))
          error(M, "loop condition is not a boolean value");
        else if (!Decision ||
                 !isAvailableAt(Cond, Decision,
                                static_cast<unsigned>(
                                    Decision->Insts.size())))
          error(M, "loop condition not available at the loop decision block");
        Walk(Node->Body, Decision);
        Cur = nullptr;
        break;
      }
      case CSTNode::Kind::Try: {
        Walk(Node->Then, Cur);
        Walk(Node->Else, nullptr);
        Cur = nullptr;
        break;
      }
      case CSTNode::Kind::Return: {
        Type *Ret = M.Symbol ? M.Symbol->RetTy : nullptr;
        if (Node->RetVal) {
          std::optional<PlaneKey> P = resultPlane(*Node->RetVal, Ctx);
          if (!Ret || Ret->isVoid())
            error(M, "value returned from a void method");
          else if (!P || !(*P == PlaneKey::base(Ret)))
            error(M, "return value is on the wrong plane");
          else if (!Cur || !isAvailableAt(Node->RetVal, Cur,
                                          static_cast<unsigned>(
                                              Cur->Insts.size())))
            error(M, "return value not available at the returning block");
        } else if (Ret && !Ret->isVoid()) {
          error(M, "non-void method returns without a value");
        }
        break;
      }
      case CSTNode::Kind::Break:
      case CSTNode::Kind::Continue:
        break;
      }
    }
    return Cur;
  };
  Walk(M.Root, nullptr);
}
