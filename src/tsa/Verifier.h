//===- tsa/Verifier.h - SafeTSA well-formedness checks --------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verifier for SafeTSA modules.
///
/// The wire format makes most attacks *inexpressible* (the decoder cannot
/// produce an out-of-dominance (l, r) reference). This verifier provides
/// the residual checks the paper describes — "checking if a value has
/// already been defined, which can be implemented using simple counters" —
/// plus full plane-typing validation so that IR built programmatically
/// (by the generator, optimizer, or a hostile in-process producer) is held
/// to the same rules as decoded IR. Contrast with the bytecode module's
/// dataflow verifier, which must run a fixpoint abstract interpretation.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_TSA_VERIFIER_H
#define SAFETSA_TSA_VERIFIER_H

#include "tsa/Method.h"
#include "tsa/Signature.h"

#include <string>
#include <vector>

namespace safetsa {

class TSAVerifier {
public:
  explicit TSAVerifier(TSAModule &Module)
      : Module(Module), Ctx{*Module.Types, *Module.Table} {}

  /// Verifies the whole module; returns true when well-formed. Errors are
  /// collected (not aborted on) so tests can assert on specific messages.
  bool verify();

  /// Verifies a single method. Re-derives the CFG and renumbers planes,
  /// which is idempotent for well-formed methods.
  bool verifyMethod(TSAMethod &M);

  const std::vector<std::string> &getErrors() const { return Errors; }

private:
  /// Structural CST validation that must pass before CFG derivation is
  /// safe to run (block coverage, break/continue placement, sequencing).
  bool checkCSTStructure(TSAMethod &M);
  bool checkSeq(const CSTSeq &Seq, bool InLoop, bool IsLoopHeader,
                std::vector<BasicBlock *> &Covered, TSAMethod &M);

  void checkBlocks(TSAMethod &M);
  void checkInstruction(TSAMethod &M, BasicBlock &BB, Instruction &I,
                        unsigned Ordinal);
  void checkCSTValueRefs(TSAMethod &M);
  void checkDowncast(TSAMethod &M, const Instruction &I);
  void checkConst(TSAMethod &M, const Instruction &I);

  /// True when \p Def is usable as an operand at (Block, Ordinal).
  bool isAvailableAt(const Instruction *Def, const BasicBlock *Block,
                     unsigned Ordinal) const;

  void error(const TSAMethod &M, const std::string &Msg);

  TSAModule &Module;
  PlaneContext Ctx;
  std::vector<std::string> Errors;

  // Per-method instruction positions: block + ordinal within block.
  std::unordered_map<const Instruction *, std::pair<const BasicBlock *,
                                                    unsigned>>
      Pos;
};

/// The paper's residual consumer-side check, and nothing more: every
/// (l, r) reference must name an already-defined value — "checking if a
/// value has already been defined, which can be implemented using simple
/// counters holding the numbers of defined values for each type in each
/// basic block" (§9). Assumes CFG/dominators/plane numbering are present
/// (they are, after decode) and that plane typing is intact (the wire
/// format cannot express a plane violation). Used by bench_verify_time to
/// compare against the bytecode dataflow fixpoint.
bool counterCheckMethod(const TSAMethod &M, PlaneContext &Ctx);
bool counterCheckModule(const TSAModule &Module);

/// Validates the exception-edge discipline of one method (flags only in
/// try bodies, raising instructions last-in-subblock and flagged,
/// handlers reachable). Used by the full verifier and by the decoder.
bool checkExceptionDiscipline(const TSAMethod &M, std::string *Err);

} // namespace safetsa

#endif // SAFETSA_TSA_VERIFIER_H
