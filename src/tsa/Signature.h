//===- tsa/Signature.h - Implied plane selection --------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for SafeTSA's implied plane selection: for
/// every instruction, which plane each operand is fetched from and which
/// plane the result lands on. Generator, verifier, codec, and evaluator
/// all consult these functions, so "type separation" (paper §3) cannot
/// drift between components.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_TSA_SIGNATURE_H
#define SAFETSA_TSA_SIGNATURE_H

#include "sema/ClassTable.h"
#include "tsa/Instruction.h"

#include <optional>
#include <string>

namespace safetsa {

/// Shared context for plane computations.
struct PlaneContext {
  TypeContext &Types;
  ClassTable &Table;

  Type *objectType() { return Types.getClass(Table.getObjectClass()); }
};

/// Expected number of value operands of \p I (for calls this depends on
/// the method symbol; for phis, on the parent block's predecessor count,
/// which the caller must check separately — here phi returns its current
/// operand count).
unsigned expectedOperandCount(const Instruction &I);

/// Computes the plane operand \p Idx of \p I is fetched from. Operands
/// 0..Idx-1 must already be present (GetElt/SetElt index planes are
/// anchored to the decoded array operand). Returns std::nullopt and sets
/// \p Err when the instruction is malformed (e.g. field/type mismatch).
std::optional<PlaneKey> operandPlane(const Instruction &I, unsigned Idx,
                                     PlaneContext &Ctx, std::string *Err);

/// Computes the result plane of \p I, or std::nullopt when it produces no
/// value (stores, void calls).
std::optional<PlaneKey> resultPlane(const Instruction &I, PlaneContext &Ctx);

/// The plane an operation of \p Op reads its inputs from.
Type *primOpOperandType(PrimOp Op, PlaneContext &Ctx);
/// The plane an operation of \p Op writes its result to.
Type *primOpResultType(PrimOp Op, PlaneContext &Ctx);

const char *opcodeName(Opcode Op);

} // namespace safetsa

#endif // SAFETSA_TSA_SIGNATURE_H
