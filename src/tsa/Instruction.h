//===- tsa/Instruction.h - SafeTSA instructions ---------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SafeTSA instruction set and its register-plane model.
///
/// SafeTSA's "implied machine model" (paper §3) has a separate register
/// plane for every type and a complete set of planes per basic block.
/// Every instruction implicitly selects the planes of its operands and
/// result from its opcode and type parameters, so type safety is a
/// well-formedness property: a malicious encoder cannot make integer
/// addition consume a reference. In addition to the base plane of every
/// source type there is a safe-ref plane per reference type, populated
/// only by nullcheck (§4), and a safe-index plane per array *value*
/// (Appendix A), populated only by indexcheck. All memory operations
/// consume safe planes exclusively.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_TSA_INSTRUCTION_H
#define SAFETSA_TSA_INSTRUCTION_H

#include "sema/Symbols.h"
#include "support/SmallVector.h"

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <tuple>
#include <algorithm>
#include <vector>

namespace safetsa {

class Instruction;
class BasicBlock;

/// Identifies one register plane of the machine model.
///
/// Base planes exist for every source type; SafeRef planes for every
/// reference type; SafeIndex planes are anchored to the specific array
/// SSA value they certify an index for (Appendix A of the paper: "safe-
/// index types are actually bound to array values rather than to their
/// static types").
struct PlaneKey {
  enum class Kind : uint8_t { Base, SafeRef, SafeIndex };

  Kind K = Kind::Base;
  Type *Ty = nullptr;                  // Underlying type (array type for
                                       // SafeIndex, for diagnostics).
  const Instruction *Anchor = nullptr; // SafeIndex only: the array value.

  static PlaneKey base(Type *Ty) { return {Kind::Base, Ty, nullptr}; }
  static PlaneKey safeRef(Type *Ty) { return {Kind::SafeRef, Ty, nullptr}; }
  static PlaneKey safeIndex(Type *ArrayTy, const Instruction *Anchor) {
    return {Kind::SafeIndex, ArrayTy, Anchor};
  }

  friend bool operator==(const PlaneKey &A, const PlaneKey &B) {
    return A.K == B.K && A.Ty == B.Ty && A.Anchor == B.Anchor;
  }
  friend bool operator<(const PlaneKey &A, const PlaneKey &B) {
    return std::tie(A.K, A.Ty, A.Anchor) < std::tie(B.K, B.Ty, B.Anchor);
  }

  std::string str() const;
};

struct PlaneKeyHash {
  size_t operator()(const PlaneKey &K) const {
    size_t H = std::hash<const void *>()(K.Ty);
    H ^= std::hash<const void *>()(K.Anchor) + 0x9e3779b97f4a7c15ull +
         (H << 6) + (H >> 2);
    return H ^ (static_cast<size_t>(K.K) << 1);
  }
};

/// Interns PlaneKeys into dense uint32_t ids so per-operand plane
/// accounting is one array index instead of an ordered-map walk. Ids are
/// assigned in first-touch order (block order x instruction order), which
/// is deterministic; they never appear on the wire, so producer and
/// consumer interners need not agree.
///
/// Lookups sit on the per-operand decode/encode hot path, so the table is
/// a flat open-addressing probe array (no per-node allocation, one cache
/// line for the common hit) rather than a node-based hash map; clear()
/// keeps the storage so a reused interner allocates nothing in steady
/// state.
class PlaneInterner {
public:
  static constexpr uint32_t None = ~0u;

  uint32_t intern(const PlaneKey &K) {
    if ((Keys.size() + 1) * 4 > Slots.size() * 3)
      grow();
    size_t I = probeStart(K);
    size_t Mask = Slots.size() - 1;
    while (true) {
      uint32_t Id = Slots[I];
      if (Id == None) {
        Id = static_cast<uint32_t>(Keys.size());
        Slots[I] = Id;
        Keys.push_back(K);
        return Id;
      }
      if (Keys[Id] == K)
        return Id;
      I = (I + 1) & Mask;
    }
  }
  /// Id of \p K, or None when the plane holds no values in this method.
  uint32_t find(const PlaneKey &K) const {
    if (Slots.empty())
      return None;
    size_t I = probeStart(K);
    size_t Mask = Slots.size() - 1;
    while (true) {
      uint32_t Id = Slots[I];
      if (Id == None || Keys[Id] == K)
        return Id;
      I = (I + 1) & Mask;
    }
  }
  const PlaneKey &key(uint32_t Id) const { return Keys[Id]; }
  uint32_t size() const { return static_cast<uint32_t>(Keys.size()); }
  void clear() {
    std::fill(Slots.begin(), Slots.end(), None);
    Keys.clear();
  }

private:
  size_t probeStart(const PlaneKey &K) const {
    // Fibonacci scatter: Ty/Anchor are aligned pointers whose low bits
    // are mostly zero, so take the mixed high bits for the mask index.
    uint64_t H = PlaneKeyHash()(K) * 0x9e3779b97f4a7c15ull;
    return (H >> 32) & (Slots.size() - 1);
  }

  void grow() {
    size_t NewSize = Slots.empty() ? 16 : Slots.size() * 2;
    Slots.assign(NewSize, None);
    for (uint32_t Id = 0; Id != Keys.size(); ++Id) {
      size_t I = probeStart(Keys[Id]);
      while (Slots[I] != None)
        I = (I + 1) & (NewSize - 1);
      Slots[I] = Id;
    }
  }

  std::vector<uint32_t> Slots; ///< Probe table of ids; None = empty slot.
  std::vector<PlaneKey> Keys;  ///< Id -> key, in first-touch order.
};

/// SafeTSA opcodes. `primitive`/`xprimitive` carry a PrimOp selecting the
/// type-subordinate operation (paper §5); memory and call opcodes follow
/// §4 and §6. GetStatic/SetStatic extend the paper's getfield/setfield to
/// MJ's static fields (the paper routes globals through getfield/setfield
/// as well).
enum class Opcode : uint8_t {
  Const,      ///< Entry-block preloaded constant (not a "real" instruction).
  Param,      ///< Entry-block preloaded parameter.
  Phi,        ///< Merge; strictly type-separated (one plane in and out).
  Primitive,  ///< Non-raising type-subordinate operation.
  XPrimitive, ///< Raising type-subordinate operation (e.g. integer divide).
  NullCheck,  ///< ref -> safe-ref, with a runtime null test.
  IndexCheck, ///< (safe-ref array, int) -> safe-index, with a bounds test.
  Upcast,     ///< Checked cast (dynamic test; raises on failure).
  Downcast,   ///< Statically-safe cast; free at runtime (modeling only).
  GetField,   ///< (safe-ref) -> field value.
  SetField,   ///< (safe-ref, value); the only heap writers are SetField /
              ///< SetElt / SetStatic, constrained by the type table.
  GetElt,     ///< (safe-ref array, safe-index) -> element.
  SetElt,     ///< (safe-ref array, safe-index, value).
  GetStatic,  ///< () -> static field value.
  SetStatic,  ///< (value).
  ArrayLength,///< (safe-ref array) -> int.
  New,        ///< () -> fresh instance (fields zeroed).
  NewArray,   ///< (int length) -> fresh array; raises on negative length.
  Call,       ///< Statically-bound invocation (paper: xcall).
  Dispatch    ///< Vtable-dispatched invocation (paper: xdispatch).
};

/// Type-subordinate primitive operations. The suffix letter names the
/// owning type's plane: I = int, D = double, B = boolean, R = reference
/// (operations on the Object plane; operands of other static types reach
/// it via free downcasts). Conversions are operations of the source type.
enum class PrimOp : uint8_t {
  // int
  AddI,
  SubI,
  MulI,
  DivI, // xprimitive
  RemI, // xprimitive
  NegI,
  AndI,
  OrI,
  XorI,
  ShlI,
  ShrI,
  NotI,
  CmpLtI,
  CmpLeI,
  CmpGtI,
  CmpGeI,
  CmpEqI,
  CmpNeI,
  IntToDouble,
  IntToChar,
  // double
  AddD,
  SubD,
  MulD,
  DivD,
  NegD,
  CmpLtD,
  CmpLeD,
  CmpGtD,
  CmpGeD,
  CmpEqD,
  CmpNeD,
  DoubleToInt,
  // char
  CharToInt,
  // boolean
  NotB,
  CmpEqB,
  CmpNeB,
  // reference (Object plane)
  CmpEqR,
  CmpNeR,
  InstanceOf // AuxType = tested type.
};

const char *primOpName(PrimOp Op);
/// Number of value operands the primitive consumes.
unsigned primOpArity(PrimOp Op);
/// True when the op may raise and must be wrapped in xprimitive.
bool primOpMayRaise(PrimOp Op);

/// A literal preloaded into the entry block (the paper's constant pool).
struct ConstantValue {
  enum class Kind : uint8_t { Int, Double, Bool, Char, Null, String };
  Kind K = Kind::Int;
  int64_t IntVal = 0;
  double DblVal = 0.0;
  std::string StrVal; // String constants have MJ type char[].

  static ConstantValue makeInt(int64_t V) {
    ConstantValue C;
    C.K = Kind::Int;
    C.IntVal = V;
    return C;
  }
  static ConstantValue makeDouble(double V) {
    ConstantValue C;
    C.K = Kind::Double;
    C.DblVal = V;
    return C;
  }
  static ConstantValue makeBool(bool V) {
    ConstantValue C;
    C.K = Kind::Bool;
    C.IntVal = V;
    return C;
  }
  static ConstantValue makeChar(char V) {
    ConstantValue C;
    C.K = Kind::Char;
    C.IntVal = static_cast<unsigned char>(V);
    return C;
  }
  static ConstantValue makeNull() {
    ConstantValue C;
    C.K = Kind::Null;
    return C;
  }
  static ConstantValue makeString(std::string V) {
    ConstantValue C;
    C.K = Kind::String;
    C.StrVal = std::move(V);
    return C;
  }

  friend bool operator==(const ConstantValue &A, const ConstantValue &B) {
    if (A.K != B.K)
      return false;
    switch (A.K) {
    case Kind::Int:
    case Kind::Bool:
    case Kind::Char:
      return A.IntVal == B.IntVal;
    case Kind::Double:
      // Bit comparison: constants fold deterministically, and -0.0 != 0.0
      // as pool entries.
      return A.DblVal == B.DblVal &&
             std::signbit(A.DblVal) == std::signbit(B.DblVal);
    case Kind::Null:
      return true;
    case Kind::String:
      return A.StrVal == B.StrVal;
    }
    return false;
  }
};

/// One SafeTSA instruction; also the SSA value it produces (if any).
///
/// Operands hold direct Instruction pointers in memory; the (l, r)
/// dominator-relative encoding of the paper (§2) is computed during
/// externalization and regenerated during decoding, so referential
/// integrity is a property of the wire format while the in-memory form
/// stays convenient for optimization.
class Instruction {
public:
  Opcode Op = Opcode::Const;
  /// Primary type parameter; meaning depends on the opcode (constant type,
  /// primitive's owning type, checked type, class of field access, ...).
  Type *OpType = nullptr;
  /// Secondary type parameter: source type of casts, tested type of
  /// InstanceOf.
  Type *AuxType = nullptr;
  /// Source plane safety for Downcast (safe-ref -> ref erasure) and result
  /// safety for Downcast / Phi on safe-ref planes.
  bool SrcSafe = false;
  bool DstSafe = false;

  PrimOp Prim = PrimOp::AddI;       // Primitive / XPrimitive.
  ConstantValue C;                  // Const.
  unsigned ParamIndex = 0;          // Param.
  FieldSymbol *Field = nullptr;     // Get/SetField, Get/SetStatic.
  MethodSymbol *Method = nullptr;   // Call / Dispatch.

  /// Three inline slots cover every fixed-arity opcode (SetElt is the
  /// widest); only calls with several arguments spill to the heap.
  SmallVector<Instruction *, 3> Operands;

  BasicBlock *Parent = nullptr;
  /// Register number (r) on the result plane within the parent block;
  /// assigned by TSAMethod::finalize().
  unsigned PlaneIndex = 0;
  /// Interned id of the result plane in the owning method's interner
  /// (TSAMethod::Planes); PlaneInterner::None when the instruction
  /// produces no value. Assigned by TSAMethod::finalize().
  uint32_t PlaneId = ~0u;

  bool isPhi() const { return Op == Opcode::Phi; }
  bool isPreload() const {
    return Op == Opcode::Const || Op == Opcode::Param;
  }
  /// True when this instruction may raise a runtime exception.
  bool mayRaise() const;
  /// True when the instruction produces an SSA value.
  bool hasResult() const;
  /// True when the instruction writes memory or performs IO (and thus must
  /// not be removed by DCE even if unused).
  bool hasSideEffects() const;
};

} // namespace safetsa

#endif // SAFETSA_TSA_INSTRUCTION_H
