//===- opt/Optimizer.h - Producer-side optimizations ----------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's producer-side optimization pipeline (§8): constant
/// propagation, common subexpression elimination, and dead code
/// elimination, run before transmission.
///
/// CSE models hidden memory dependences with the paper's `Mem` variable:
/// every store/call produces a new memory state, loads are keyed by the
/// current state, and joins conservatively produce a fresh state. The
/// mechanism lives entirely inside the pass ("used solely during the
/// optimization phase and is not part of the transmitted code").
/// Because null checks and index checks are ordinary value-producing
/// instructions on safe planes, CSE removes redundant dynamic checks in a
/// tamper-proof way — the central claim of the paper's evaluation
/// (Figure 6).
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_OPT_OPTIMIZER_H
#define SAFETSA_OPT_OPTIMIZER_H

#include "tsa/Method.h"
#include "tsa/Signature.h"

namespace safetsa {

/// Which passes to run; Figure 5's "optimized" column uses all three.
struct OptOptions {
  bool ConstantPropagation = true;
  bool CSE = true;
  bool DCE = true;
  /// Field-sensitive memory states: stores to field f only clobber loads
  /// of f (the paper's §8 outlook, "partitioning Mem by field name").
  /// Off by default to match the paper's measured configuration.
  bool FieldSensitiveMem = false;
  /// Transport checked values across phi-joins (paper §4: "it enables the
  /// transport of null-checked and index-checked values across phi-joins
  /// ... all operands of a phi-function, as well as its result, always
  /// reside on the same register plane"): when every incoming value of a
  /// reference phi has an available nullcheck certificate, build a
  /// safe-ref phi of the certificates and retire the dominated rechecks.
  bool CheckTransport = true;
};

/// Counters for the ablation benchmarks.
struct OptStats {
  unsigned FoldedConstants = 0;
  unsigned CSERemoved = 0;
  unsigned CSERemovedNullChecks = 0;
  unsigned CSERemovedIndexChecks = 0;
  unsigned DCERemoved = 0;
  unsigned DCERemovedPhis = 0;
  unsigned TransportedChecks = 0; ///< Null checks retired via safe phis.

  OptStats &operator+=(const OptStats &O) {
    FoldedConstants += O.FoldedConstants;
    CSERemoved += O.CSERemoved;
    CSERemovedNullChecks += O.CSERemovedNullChecks;
    CSERemovedIndexChecks += O.CSERemovedIndexChecks;
    DCERemoved += O.DCERemoved;
    DCERemovedPhis += O.DCERemovedPhis;
    TransportedChecks += O.TransportedChecks;
    return *this;
  }
};

/// Optimizes every method of \p Module in place and re-finalizes the
/// numbering. The module must verify beforehand; it verifies afterwards.
OptStats optimizeModule(TSAModule &Module,
                        const OptOptions &Options = OptOptions());

/// Single-method entry point (used by tests).
OptStats optimizeMethod(TSAMethod &M, PlaneContext &Ctx,
                        const OptOptions &Options = OptOptions());

} // namespace safetsa

#endif // SAFETSA_OPT_OPTIMIZER_H
