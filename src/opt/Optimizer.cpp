//===- opt/Optimizer.cpp --------------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/Optimizer.h"

#include <map>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

using namespace safetsa;

namespace {

//===----------------------------------------------------------------------===//
// Constant materialization
//===----------------------------------------------------------------------===//

Instruction *findOrCreateConst(TSAMethod &M, const ConstantValue &C,
                               Type *Ty) {
  BasicBlock *Entry = M.getEntry();
  for (Instruction *I : Entry->Insts)
    if (I->Op == Opcode::Const && I->OpType == Ty && I->C == C)
      return I;
  Instruction *I = M.createInst(Opcode::Const);
  I->C = C;
  I->OpType = Ty;
  return Entry->append(I);
}

//===----------------------------------------------------------------------===//
// Constant propagation / folding
//===----------------------------------------------------------------------===//

bool foldPrim(PrimOp Op, const ConstantValue &A, const ConstantValue *B,
              ConstantValue &Out) {
  auto I32 = [](const ConstantValue &V) {
    return static_cast<int32_t>(V.IntVal);
  };
  switch (Op) {
  case PrimOp::AddI:
    Out = ConstantValue::makeInt(
        static_cast<int32_t>(int64_t(I32(A)) + I32(*B)));
    return true;
  case PrimOp::SubI:
    Out = ConstantValue::makeInt(
        static_cast<int32_t>(int64_t(I32(A)) - I32(*B)));
    return true;
  case PrimOp::MulI:
    Out = ConstantValue::makeInt(
        static_cast<int32_t>(int64_t(I32(A)) * I32(*B)));
    return true;
  case PrimOp::DivI:
    if (I32(*B) == 0)
      return false; // Preserve the runtime exception.
    if (I32(A) == INT32_MIN && I32(*B) == -1) {
      Out = ConstantValue::makeInt(I32(A));
      return true;
    }
    Out = ConstantValue::makeInt(I32(A) / I32(*B));
    return true;
  case PrimOp::RemI:
    if (I32(*B) == 0)
      return false;
    if (I32(A) == INT32_MIN && I32(*B) == -1) {
      Out = ConstantValue::makeInt(0);
      return true;
    }
    Out = ConstantValue::makeInt(I32(A) % I32(*B));
    return true;
  case PrimOp::NegI:
    Out = ConstantValue::makeInt(static_cast<int32_t>(-int64_t(I32(A))));
    return true;
  case PrimOp::AndI:
    Out = ConstantValue::makeInt(I32(A) & I32(*B));
    return true;
  case PrimOp::OrI:
    Out = ConstantValue::makeInt(I32(A) | I32(*B));
    return true;
  case PrimOp::XorI:
    Out = ConstantValue::makeInt(I32(A) ^ I32(*B));
    return true;
  case PrimOp::ShlI:
    Out = ConstantValue::makeInt(
        static_cast<int32_t>(int64_t(I32(A)) << (I32(*B) & 31)));
    return true;
  case PrimOp::ShrI:
    Out = ConstantValue::makeInt(I32(A) >> (I32(*B) & 31));
    return true;
  case PrimOp::NotI:
    Out = ConstantValue::makeInt(~I32(A));
    return true;
  case PrimOp::CmpLtI:
    Out = ConstantValue::makeBool(I32(A) < I32(*B));
    return true;
  case PrimOp::CmpLeI:
    Out = ConstantValue::makeBool(I32(A) <= I32(*B));
    return true;
  case PrimOp::CmpGtI:
    Out = ConstantValue::makeBool(I32(A) > I32(*B));
    return true;
  case PrimOp::CmpGeI:
    Out = ConstantValue::makeBool(I32(A) >= I32(*B));
    return true;
  case PrimOp::CmpEqI:
    Out = ConstantValue::makeBool(I32(A) == I32(*B));
    return true;
  case PrimOp::CmpNeI:
    Out = ConstantValue::makeBool(I32(A) != I32(*B));
    return true;
  case PrimOp::IntToDouble:
    Out = ConstantValue::makeDouble(static_cast<double>(I32(A)));
    return true;
  case PrimOp::IntToChar:
    Out = ConstantValue::makeChar(static_cast<char>(I32(A) & 0xff));
    return true;
  case PrimOp::AddD:
    Out = ConstantValue::makeDouble(A.DblVal + B->DblVal);
    return true;
  case PrimOp::SubD:
    Out = ConstantValue::makeDouble(A.DblVal - B->DblVal);
    return true;
  case PrimOp::MulD:
    Out = ConstantValue::makeDouble(A.DblVal * B->DblVal);
    return true;
  case PrimOp::DivD:
    Out = ConstantValue::makeDouble(A.DblVal / B->DblVal);
    return true;
  case PrimOp::NegD:
    Out = ConstantValue::makeDouble(-A.DblVal);
    return true;
  case PrimOp::CmpLtD:
    Out = ConstantValue::makeBool(A.DblVal < B->DblVal);
    return true;
  case PrimOp::CmpLeD:
    Out = ConstantValue::makeBool(A.DblVal <= B->DblVal);
    return true;
  case PrimOp::CmpGtD:
    Out = ConstantValue::makeBool(A.DblVal > B->DblVal);
    return true;
  case PrimOp::CmpGeD:
    Out = ConstantValue::makeBool(A.DblVal >= B->DblVal);
    return true;
  case PrimOp::CmpEqD:
    Out = ConstantValue::makeBool(A.DblVal == B->DblVal);
    return true;
  case PrimOp::CmpNeD:
    Out = ConstantValue::makeBool(A.DblVal != B->DblVal);
    return true;
  case PrimOp::DoubleToInt: {
    double D = A.DblVal;
    int32_t R;
    if (D != D)
      R = 0;
    else if (D >= 2147483647.0)
      R = INT32_MAX;
    else if (D <= -2147483648.0)
      R = INT32_MIN;
    else
      R = static_cast<int32_t>(D);
    Out = ConstantValue::makeInt(R);
    return true;
  }
  case PrimOp::CharToInt:
    Out = ConstantValue::makeInt(I32(A));
    return true;
  case PrimOp::NotB:
    Out = ConstantValue::makeBool(A.IntVal == 0);
    return true;
  case PrimOp::CmpEqB:
    Out = ConstantValue::makeBool((A.IntVal != 0) == (B->IntVal != 0));
    return true;
  case PrimOp::CmpNeB:
    Out = ConstantValue::makeBool((A.IntVal != 0) != (B->IntVal != 0));
    return true;
  default:
    return false; // Reference operations are not folded.
  }
}

/// Blocks inside a try body: removing a raising instruction there would
/// delete its exception edge and desynchronize the handler's phis, so the
/// passes leave such instructions in place (their *uses* may still be
/// replaced). Handlers and code outside try regions are unrestricted.
std::unordered_set<const BasicBlock *> collectTryBodyBlocks(
    const TSAMethod &M) {
  std::unordered_set<const BasicBlock *> Out;
  std::function<void(const CSTSeq &, bool)> Walk = [&](const CSTSeq &Seq,
                                                       bool InTry) {
    for (const auto &Node : Seq) {
      switch (Node->K) {
      case CSTNode::Kind::Basic:
        if (InTry)
          Out.insert(Node->BB);
        break;
      case CSTNode::Kind::Try:
        Walk(Node->Then, true);
        Walk(Node->Else, InTry);
        break;
      default:
        Walk(Node->Then, InTry);
        Walk(Node->Else, InTry);
        Walk(Node->Header, InTry);
        Walk(Node->Body, InTry);
        break;
      }
    }
  };
  Walk(M.Root, false);
  return Out;
}

unsigned runConstantPropagation(TSAMethod &M, PlaneContext &Ctx) {
  unsigned Folded = 0;
  bool Changed = true;
  std::unordered_set<Instruction *> Dead;
  std::unordered_set<const BasicBlock *> TryBlocks =
      collectTryBodyBlocks(M);
  while (Changed) {
    Changed = false;
    for (auto &BB : M.Blocks) {
      for (auto &IPtr : BB->Insts) {
        Instruction *I = IPtr;
        if (Dead.count(I))
          continue;
        if (I->Op != Opcode::Primitive && I->Op != Opcode::XPrimitive)
          continue;
        if (I->mayRaise() && TryBlocks.count(BB))
          continue; // Keep the exception edge intact.
        bool AllConst = true;
        for (Instruction *Op : I->Operands)
          if (Op->Op != Opcode::Const)
            AllConst = false;
        if (!AllConst || I->Operands.empty())
          continue;
        ConstantValue Out;
        const ConstantValue *B =
            I->Operands.size() > 1 ? &I->Operands[1]->C : nullptr;
        if (!foldPrim(I->Prim, I->Operands[0]->C, B, Out))
          continue;
        Type *ResTy = primOpResultType(I->Prim, Ctx);
        Instruction *C = findOrCreateConst(M, Out, ResTy);
        M.replaceAllUsesWith(I, C);
        Dead.insert(I);
        ++Folded;
        Changed = true;
      }
    }
  }
  if (!Dead.empty())
    M.eraseIf([&](const Instruction &I) { return Dead.count(
        const_cast<Instruction *>(&I)) != 0; });
  return Folded;
}

//===----------------------------------------------------------------------===//
// Memory-state analysis (the paper's Mem variable)
//===----------------------------------------------------------------------===//

/// Assigns each load a memory-state id such that two loads with equal
/// (key, id) observe the same memory. Joins and unprocessed predecessors
/// (loop back edges) conservatively start a fresh state, mirroring the
/// paper's "if the current value of Mem is different on two incoming
/// edges … a phi node must be inserted" without materializing Mem phis.
class MemAnalysis {
public:
  MemAnalysis(const TSAMethod &M, bool FieldSensitive) {
    run(M, FieldSensitive);
  }

  /// State id a load instruction executes under.
  uint64_t loadState(const Instruction *I) const {
    auto It = LoadStates.find(I);
    assert(It != LoadStates.end() && "not a load");
    return It->second;
  }

private:
  // Keys partitioning memory when field-sensitive: a FieldSymbol, or this
  // marker for "all array elements".
  static const void *arraysKey() {
    static const char Marker = 0;
    return &Marker;
  }

  struct State {
    uint64_t Epoch = 0;
    std::map<const void *, uint64_t> Versions;

    bool operator==(const State &O) const {
      return Epoch == O.Epoch && Versions == O.Versions;
    }
    uint64_t idFor(const void *Key) const {
      auto It = Versions.find(Key);
      uint64_t V = It == Versions.end() ? 0 : It->second;
      return (Epoch << 20) | V;
    }
  };

  void run(const TSAMethod &M, bool FieldSensitive) {
    uint64_t NextEpoch = 1;
    std::unordered_map<const BasicBlock *, State> Out;
    std::unordered_set<const BasicBlock *> Done;

    for (const auto &BB : M.Blocks) {
      State S;
      bool AllSame = !BB->Preds.empty();
      for (size_t K = 0; K < BB->Preds.size(); ++K) {
        if (!Done.count(BB->Preds[K])) {
          AllSame = false;
          break;
        }
        if (K == 0)
          S = Out[BB->Preds[K]];
        else if (!(Out[BB->Preds[K]] == S))
          AllSame = false;
      }
      if (!AllSame) {
        S = State();
        S.Epoch = NextEpoch++;
      }

      for (const auto &I : BB->Insts) {
        switch (I->Op) {
        case Opcode::GetField:
        case Opcode::GetStatic:
          LoadStates[I] =
              S.idFor(FieldSensitive ? static_cast<const void *>(I->Field)
                                     : nullptr);
          break;
        case Opcode::GetElt:
          LoadStates[I] =
              S.idFor(FieldSensitive ? arraysKey() : nullptr);
          break;
        case Opcode::SetField:
        case Opcode::SetStatic:
          if (FieldSensitive)
            ++S.Versions[I->Field];
          else
            ++S.Versions[nullptr];
          break;
        case Opcode::SetElt:
          if (FieldSensitive)
            ++S.Versions[arraysKey()];
          else
            ++S.Versions[nullptr];
          break;
        case Opcode::Call:
        case Opcode::Dispatch:
          // No interprocedural information: calls clobber all memory
          // ("each function call return[s] an updated value of Mem").
          S.Epoch = NextEpoch++;
          S.Versions.clear();
          break;
        default:
          break;
        }
      }
      Out[BB] = S;
      Done.insert(BB);
    }
  }

  std::unordered_map<const Instruction *, uint64_t> LoadStates;
};

//===----------------------------------------------------------------------===//
// Dominator-scoped CSE
//===----------------------------------------------------------------------===//

struct CSEKey {
  uint8_t Op = 0;
  uint8_t Prim = 0;
  uint8_t Flags = 0;
  const void *Sym = nullptr; // Type / field / nothing.
  const Instruction *A = nullptr;
  const Instruction *B = nullptr;
  uint64_t Mem = 0;

  auto tie() const { return std::tie(Op, Prim, Flags, Sym, A, B, Mem); }
  friend bool operator<(const CSEKey &X, const CSEKey &Y) {
    return X.tie() < Y.tie();
  }
};

class CSEPass {
public:
  CSEPass(TSAMethod &M, PlaneContext &Ctx, bool FieldSensitive,
          OptStats &Stats)
      : M(M), Ctx(Ctx), Mem(M, FieldSensitive), Stats(Stats) {}

  void run() {
    if (M.Blocks.empty())
      return;
    TryBlocks = collectTryBodyBlocks(M);
    // Dominator-tree children.
    Children.assign(M.Blocks.size(), {});
    for (const auto &BB : M.Blocks)
      if (BB->IDom)
        Children[BB->IDom->Id].push_back(BB);
    dfs(M.getEntry());
    if (!Dead.empty())
      M.eraseIf([&](const Instruction &I) {
        return Dead.count(&I) != 0;
      });
  }

private:
  /// Builds the value-number key for \p I; returns false for instructions
  /// that must not be unified (stores, calls, allocations, phis, preloads
  /// — the constant pool already unifies Consts).
  bool keyFor(const Instruction &I, CSEKey &Key) {
    Key.Op = static_cast<uint8_t>(I.Op);
    switch (I.Op) {
    case Opcode::Primitive:
    case Opcode::XPrimitive:
      // Integer divide / remainder raise on identical operands
      // identically, so unifying them is sound.
      Key.Prim = static_cast<uint8_t>(I.Prim);
      Key.Sym = I.AuxType; // InstanceOf target.
      Key.A = I.Operands[0];
      Key.B = I.Operands.size() > 1 ? I.Operands[1] : nullptr;
      return true;
    case Opcode::NullCheck:
      // Null-ness of an SSA value never changes: a dominating check
      // certifies all later uses (Figure 6's null-check column).
      Key.Sym = I.OpType;
      Key.A = I.Operands[0];
      return true;
    case Opcode::IndexCheck:
      // Arrays cannot be resized, so (array value, index value) is enough
      // (Appendix A; Figure 6's array-check column).
      Key.Sym = I.OpType;
      Key.A = I.Operands[0];
      Key.B = I.Operands[1];
      return true;
    case Opcode::Upcast:
    case Opcode::Downcast:
      Key.Sym = I.OpType;
      Key.Flags = static_cast<uint8_t>((I.SrcSafe ? 1 : 0) |
                                       (I.DstSafe ? 2 : 0));
      Key.A = I.Operands[0];
      Key.B = reinterpret_cast<const Instruction *>(I.AuxType);
      return true;
    case Opcode::ArrayLength:
      // Array lengths are immutable; no Mem component needed.
      Key.A = I.Operands[0];
      return true;
    case Opcode::GetField:
      Key.Sym = I.Field;
      Key.A = I.Operands[0];
      Key.Mem = Mem.loadState(&I);
      return true;
    case Opcode::GetStatic:
      Key.Sym = I.Field;
      Key.Mem = Mem.loadState(&I);
      return true;
    case Opcode::GetElt:
      Key.A = I.Operands[0];
      Key.B = I.Operands[1];
      Key.Mem = Mem.loadState(&I);
      return true;
    default:
      return false;
    }
  }

  void dfs(BasicBlock *BB) {
    std::vector<CSEKey> Inserted;
    for (auto &IPtr : BB->Insts) {
      Instruction *I = IPtr;
      if (Dead.count(I))
        continue;
      // Raising instructions inside try bodies anchor exception edges and
      // stay; they may still *provide* a value for later instructions.
      bool PinnedRaiser = I->mayRaise() && TryBlocks.count(BB);
      CSEKey Key;
      if (!keyFor(*I, Key))
        continue;
      auto It = Available.find(Key);
      if (PinnedRaiser) {
        if (It == Available.end()) {
          Available.emplace(Key, I);
          Inserted.push_back(Key);
        }
        continue;
      }
      if (It != Available.end()) {
        M.replaceAllUsesWith(I, It->second);
        Dead.insert(I);
        ++Stats.CSERemoved;
        if (I->Op == Opcode::NullCheck)
          ++Stats.CSERemovedNullChecks;
        if (I->Op == Opcode::IndexCheck)
          ++Stats.CSERemovedIndexChecks;
        continue;
      }
      Available.emplace(Key, I);
      Inserted.push_back(Key);
    }
    for (BasicBlock *Child : Children[BB->Id])
      dfs(Child);
    for (const CSEKey &Key : Inserted)
      Available.erase(Key);
  }

  TSAMethod &M;
  PlaneContext &Ctx;
  MemAnalysis Mem;
  OptStats &Stats;
  std::vector<std::vector<BasicBlock *>> Children;
  std::map<CSEKey, Instruction *> Available;
  std::unordered_set<const Instruction *> Dead;
  std::unordered_set<const BasicBlock *> TryBlocks;
};

//===----------------------------------------------------------------------===//
// Check transport across phi-joins (paper §4)
//===----------------------------------------------------------------------===//

/// For a reference phi whose every incoming value carries an available
/// nullcheck certificate, materializes a phi ON THE SAFE-REF PLANE of the
/// certificates and replaces dominated rechecks of the merged value. This
/// is the mechanism the paper §4 highlights: "it enables the transport of
/// null-checked and index-checked values across phi-joins" — check
/// removal that plain dominance-scoped CSE cannot see. Loop-carried
/// certificates work too: when a phi operand is the phi itself, the safe
/// phi references itself along the back edge.
unsigned runCheckTransport(TSAMethod &M, PlaneContext &Ctx,
                           OptStats &Stats) {
  std::unordered_set<const BasicBlock *> TryBlocks =
      collectTryBodyBlocks(M);

  // All nullchecks, by checked value.
  std::unordered_map<const Instruction *, std::vector<Instruction *>>
      ChecksOf;
  M.forEachInstruction([&](const Instruction &I) {
    if (I.Op == Opcode::NullCheck)
      ChecksOf[I.Operands[0]].push_back(const_cast<Instruction *>(&I));
  });

  unsigned Removed = 0;
  for (auto &BB : M.Blocks) {
    for (size_t PI = 0; PI != BB->Insts.size(); ++PI) {
      Instruction *P = BB->Insts[PI];
      if (!P->isPhi() || P->DstSafe || !P->OpType ||
          !(P->OpType->isClass() || P->OpType->isArray()))
        continue;

      // Rechecks of the merged value that the safe phi would replace
      // (skipping pinned in-try checks, whose edges must stay).
      std::vector<Instruction *> Rechecks;
      for (Instruction *D : ChecksOf[P])
        if (D->OpType == P->OpType &&
            BasicBlock::dominates(BB, D->Parent) &&
            !TryBlocks.count(D->Parent))
          Rechecks.push_back(D);
      if (Rechecks.empty())
        continue;

      // A certificate for each incoming value, available at the end of
      // the corresponding predecessor.
      std::vector<Instruction *> Certs(P->Operands.size(), nullptr);
      bool AllCovered = true;
      for (size_t K = 0; K != P->Operands.size() && AllCovered; ++K) {
        Instruction *V = P->Operands[K];
        if (V == P)
          continue; // Back edge: the safe phi certifies itself.
        BasicBlock *Pred = BB->Preds[K];
        for (Instruction *C : ChecksOf[V])
          if (C->OpType == P->OpType &&
              BasicBlock::dominates(C->Parent, Pred)) {
            Certs[K] = C;
            break;
          }
        if (!Certs[K])
          AllCovered = false;
      }
      if (!AllCovered)
        continue;

      Instruction *SafeRaw = M.createInst(Opcode::Phi);
      SafeRaw->OpType = P->OpType;
      SafeRaw->DstSafe = true;
      for (size_t K = 0; K != P->Operands.size(); ++K)
        SafeRaw->Operands.push_back(P->Operands[K] == P ? SafeRaw
                                                        : Certs[K]);
      SafeRaw->Parent = BB;
      // Insert right after P so the phi prefix stays contiguous.
      BB->Insts.insert(BB->Insts.begin() + PI + 1, SafeRaw);

      for (Instruction *D : Rechecks) {
        M.replaceAllUsesWith(D, SafeRaw);
        ++Removed;
      }
      std::unordered_set<const Instruction *> DeadSet(Rechecks.begin(),
                                                      Rechecks.end());
      M.eraseIf(
          [&](const Instruction &I) { return DeadSet.count(&I) != 0; });
      // Retired checks must also disappear from the certificate index.
      for (auto &[Val, List] : ChecksOf)
        std::erase_if(List, [&](Instruction *I) {
          return DeadSet.count(I) != 0;
        });
    }
  }
  Stats.TransportedChecks += Removed;
  return Removed;
}

//===----------------------------------------------------------------------===//
// DCE (liveness-based, Briggs-style phi pruning)
//===----------------------------------------------------------------------===//

void runDCE(TSAMethod &M, OptStats &Stats) {
  // Phase 1: collapse trivial phis (all operands the same value, possibly
  // including the phi itself) to fixpoint.
  bool Changed = true;
  std::unordered_set<const Instruction *> Dead;
  while (Changed) {
    Changed = false;
    for (auto &BB : M.Blocks) {
      for (auto &IPtr : BB->Insts) {
        Instruction *I = IPtr;
        if (!I->isPhi() || Dead.count(I))
          continue;
        Instruction *Unique = nullptr;
        bool Trivial = true;
        for (Instruction *Op : I->Operands) {
          if (Op == I)
            continue;
          if (Unique && Op != Unique) {
            Trivial = false;
            break;
          }
          Unique = Op;
        }
        if (!Trivial || !Unique)
          continue;
        M.replaceAllUsesWith(I, Unique);
        Dead.insert(I);
        ++Stats.DCERemoved;
        ++Stats.DCERemovedPhis;
        Changed = true;
      }
    }
  }

  // Phase 2: mark from roots (side effects, potential exceptions, CST
  // references), then sweep everything unmarked — this removes the
  // superfluous phis the single-pass construction inserts (paper §7:
  // "dead code elimination … leading to a reduction of 31% on average in
  // the number of phi instructions") plus unused pure values.
  std::unordered_set<const Instruction *> Live;
  std::vector<const Instruction *> Worklist;
  auto MarkRoot = [&](const Instruction *I) {
    if (I && !Dead.count(I) && Live.insert(I).second)
      Worklist.push_back(I);
  };

  M.forEachInstruction([&](const Instruction &I) {
    if (Dead.count(&I))
      return;
    if (I.hasSideEffects() || I.mayRaise())
      MarkRoot(&I);
  });
  std::function<void(const CSTSeq &)> MarkCST = [&](const CSTSeq &Seq) {
    for (const auto &Node : Seq) {
      MarkRoot(Node->Cond);
      MarkRoot(Node->RetVal);
      MarkCST(Node->Then);
      MarkCST(Node->Else);
      MarkCST(Node->Header);
      MarkCST(Node->Body);
    }
  };
  MarkCST(M.Root);

  while (!Worklist.empty()) {
    const Instruction *I = Worklist.back();
    Worklist.pop_back();
    for (const Instruction *Op : I->Operands)
      MarkRoot(Op);
  }

  M.forEachInstruction([&](const Instruction &I) {
    if (Dead.count(&I) || Live.count(&I))
      return;
    ++Stats.DCERemoved;
    if (I.isPhi())
      ++Stats.DCERemovedPhis;
    Dead.insert(&I);
  });

  if (!Dead.empty())
    M.eraseIf([&](const Instruction &I) { return Dead.count(&I) != 0; });
}

} // namespace

OptStats safetsa::optimizeMethod(TSAMethod &M, PlaneContext &Ctx,
                                 const OptOptions &Options) {
  OptStats Stats;
  // CSE and the fold/DCE bookkeeping rely on fresh dominator info.
  M.deriveCFG();
  if (Options.ConstantPropagation)
    Stats.FoldedConstants += runConstantPropagation(M, Ctx);
  if (Options.DCE) {
    // Collapse the construction's superfluous phis first: values hidden
    // behind trivial phis would otherwise defeat CSE's value matching.
    runDCE(M, Stats);
  }
  if (Options.CSE) {
    CSEPass Pass(M, Ctx, Options.FieldSensitiveMem, Stats);
    Pass.run();
  }
  if (Options.CheckTransport)
    runCheckTransport(M, Ctx, Stats);
  if (Options.DCE)
    runDCE(M, Stats);
  M.deriveCFG();
  M.finalize(Ctx);
  return Stats;
}

OptStats safetsa::optimizeModule(TSAModule &Module,
                                 const OptOptions &Options) {
  OptStats Stats;
  PlaneContext Ctx{*Module.Types, *Module.Table};
  for (auto &M : Module.Methods)
    Stats += optimizeMethod(*M, Ctx, Options);
  return Stats;
}
