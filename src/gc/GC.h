//===- gc/GC.h - Precise mark-sweep heap management -----------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Precise, safepoint-based, non-moving mark-sweep collection over the
/// runtime's index-addressed heap (std::vector<HeapCell> in
/// exec/Runtime.h). See DESIGN.md §13.
///
/// The design follows from the representation: SafeTSA references are
/// heap *indices* (uint32_t), not pointers, so the collector never needs
/// to move or rewrite anything — a swept cell's index simply goes onto a
/// free list and the next allocation reuses it. Outstanding refs in
/// frames, statics, and other cells stay valid verbatim (the monotonic
/// stable-address discipline of Siek & Vitousek's monotonic references),
/// and precision comes for free from the verifier: the plane tables that
/// finalize() builds say exactly which SSA values are references, so
/// lowering emits an exact per-unit reference-slot map and root
/// enumeration scans only those slots — reclaiming exactly the
/// unreachable cells, the heap-safety property of "The Meaning of Memory
/// Safety".
///
/// Collections only run at safepoints: the allocation trigger merely sets
/// a relaxed pending flag, and the interpreters poll it on back edges and
/// call entry, where every live reference is in a mapped slot. That keeps
/// the mutator's hot path at one relaxed load + branch and means
/// Runtime-internal allocation sequences (e.g. interning a string and
/// then registering it in the pool) can never be interrupted mid-way.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_GC_GC_H
#define SAFETSA_GC_GC_H

#include "support/ShardedCounter.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace safetsa {

struct HeapCell;

/// Collector policy knobs, exposed through ExecOptions / BatchOptions /
/// CodeServerOptions. Defaults are safe for every existing workload: the
/// collector is on, but with a budget far above what any test or corpus
/// program allocates, so it never fires unless asked to.
struct GcOptions {
  /// Live-heap size (bytes of cell payload, slots * sizeof(Value) plus
  /// the cell header) at which the allocation trigger arms the pending
  /// flag. The next safepoint then collects.
  size_t HeapBudget = 64u << 20;
  /// Testing: arm the pending flag every N allocations regardless of the
  /// budget (1 = collect at every safepoint reachable after every
  /// allocation). 0 disables stress mode.
  uint64_t StressEveryNAllocs = 0;
  /// Kill switch: never collect (grow-only heap, the pre-GC behaviour).
  /// Differential runs compare a Disable run against a stressed run.
  bool Disable = false;
};

/// Per-heap collection statistics (single-threaded, exact). The global
/// cross-runtime aggregate lives in gcCounters().
struct GcStats {
  uint64_t Cycles = 0;         ///< Completed collections.
  uint64_t CellsReclaimed = 0; ///< Cells swept onto the free list.
  uint64_t PauseNs = 0;        ///< Total stop-the-world mark+sweep time.
};

/// Handed to root providers during marking; mark() greys a reference.
/// Out-of-range and null refs are ignored, so providers can mark every
/// ref-kinded Value they hold without pre-filtering.
class GcMarker {
public:
  void mark(uint32_t Ref) {
    if (Ref != 0 && Ref < Marks.size() && !Marks[Ref]) {
      Marks[Ref] = 1;
      Worklist.push_back(Ref);
    }
  }

private:
  friend class GcHeap;
  GcMarker(std::vector<uint8_t> &Marks, std::vector<uint32_t> &Worklist)
      : Marks(Marks), Worklist(Worklist) {}
  std::vector<uint8_t> &Marks;
  std::vector<uint32_t> &Worklist;
};

/// Anything holding references that must keep cells alive: the Runtime
/// itself (statics + interned strings) and each executing interpreter
/// (its active frame stack). Providers register with the heap they feed
/// and are enumerated at every collection.
class GcRootProvider {
public:
  virtual ~GcRootProvider() = default;
  virtual void enumerateRoots(GcMarker &M) = 0;
};

/// The collector state for one Runtime heap. Owns the mark bitmap, the
/// free list of reusable cell indices, the live-byte accounting that
/// drives the allocation trigger, and the root-provider registry.
/// Single-mutator per heap (a Runtime is single-threaded by contract);
/// only the pending flag is atomic, so polls stay race-free when stats
/// readers look across threads.
class GcHeap {
public:
  /// Binds the collector to \p HeapV (the Runtime's cell vector) with
  /// \p RuntimeRoots (the Runtime's own statics/strings provider).
  /// Called once from the Runtime constructor.
  void attach(std::vector<HeapCell> *HeapV, GcRootProvider *RuntimeRoots);

  void setOptions(const GcOptions &O);
  const GcOptions &options() const { return Opts; }
  bool enabled() const { return !Opts.Disable; }

  /// The safepoint poll reads this: one relaxed load.
  bool pending() const { return Pending.load(std::memory_order_relaxed); }

  /// Hands out a cell index for a new allocation: a recycled free-list
  /// index when one exists, else a fresh push_back. Never returns 0 (the
  /// null cell). The returned cell is empty; the caller populates it and
  /// then reports its payload via onAllocated().
  uint32_t acquireIndex();

  /// Accounting + trigger for a just-populated cell of \p PayloadSlots
  /// Value slots. Arms the pending flag when the live size crosses the
  /// budget (or on the stress cadence); the collection itself is
  /// deferred to the next safepoint.
  void onAllocated(size_t PayloadSlots);

  /// Paranoid-mode validity check: \p Ref names a live (allocated, not
  /// swept, not null) cell.
  bool isLive(uint32_t Ref) const {
    return Ref != 0 && Ref < State.size() && State[Ref] != 0;
  }

  void addRootProvider(GcRootProvider *P) { Providers.push_back(P); }
  void removeRootProvider(GcRootProvider *P);

  /// Stop-the-world mark + sweep. Clears the pending flag; returns the
  /// number of cells reclaimed. No-op (returns 0) when disabled.
  uint64_t collect();

  size_t liveCells() const;
  size_t liveBytes() const { return LiveBytes; }
  const GcStats &stats() const { return Stats; }

private:
  void armPending() { Pending.store(true, std::memory_order_relaxed); }

  std::vector<HeapCell> *Heap = nullptr;
  GcOptions Opts;
  /// 1 = allocated (live until proven unreachable), 0 = never allocated
  /// or on the free list. Index 0 (the null cell) is permanently 0.
  std::vector<uint8_t> State;
  std::vector<uint8_t> Marks;
  std::vector<uint32_t> Worklist;
  std::vector<uint32_t> FreeList;
  std::vector<GcRootProvider *> Providers;
  std::atomic<bool> Pending{false};
  size_t LiveBytes = 0;
  size_t NextTrigger = 0;
  uint64_t AllocsSinceStress = 0;
  GcStats Stats;
};

/// Process-wide GC telemetry fed by every collection on every Runtime:
/// the striped-counter aggregate the serve layer's STATS verb reports
/// (GcCycles / GcCellsReclaimed / GcPauseNs). Striped like ProfileData's
/// counters so concurrent serve workers never contend on a cache line.
struct GcCounters {
  ShardedCounter Cycles;
  ShardedCounter CellsReclaimed;
  ShardedCounter PauseNs;
};
GcCounters &gcCounters();

} // namespace safetsa

#endif // SAFETSA_GC_GC_H
