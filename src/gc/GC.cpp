//===- gc/GC.cpp - Precise mark-sweep collection --------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/GC.h"

#include "exec/Runtime.h"

#include <algorithm>
#include <chrono>

using namespace safetsa;

GcCounters &safetsa::gcCounters() {
  static GcCounters C;
  return C;
}

/// Byte accounting for one cell: the header plus its Value payload. Only
/// relative consistency matters (the same formula at allocation and
/// sweep), so capacity slack is deliberately ignored.
static size_t cellBytes(size_t PayloadSlots) {
  return sizeof(HeapCell) + PayloadSlots * sizeof(Value);
}

void GcHeap::attach(std::vector<HeapCell> *HeapV,
                    GcRootProvider *RuntimeRoots) {
  Heap = HeapV;
  State.assign(Heap->size(), 0); // Pre-existing cells (cell 0) stay dead.
  Providers.push_back(RuntimeRoots);
  NextTrigger = Opts.HeapBudget;
}

void GcHeap::setOptions(const GcOptions &O) {
  Opts = O;
  NextTrigger = std::max(Opts.HeapBudget, LiveBytes);
}

void GcHeap::removeRootProvider(GcRootProvider *P) {
  Providers.erase(std::remove(Providers.begin(), Providers.end(), P),
                  Providers.end());
}

uint32_t GcHeap::acquireIndex() {
  if (!FreeList.empty()) {
    uint32_t Ref = FreeList.back();
    FreeList.pop_back();
    State[Ref] = 1;
    return Ref;
  }
  uint32_t Ref = static_cast<uint32_t>(Heap->size());
  Heap->emplace_back();
  State.push_back(1);
  return Ref;
}

void GcHeap::onAllocated(size_t PayloadSlots) {
  LiveBytes += cellBytes(PayloadSlots);
  if (Opts.Disable)
    return;
  if (LiveBytes >= NextTrigger)
    armPending();
  if (Opts.StressEveryNAllocs &&
      ++AllocsSinceStress >= Opts.StressEveryNAllocs) {
    AllocsSinceStress = 0;
    armPending();
  }
}

size_t GcHeap::liveCells() const {
  size_t N = 0;
  for (uint8_t S : State)
    N += S != 0;
  return N;
}

uint64_t GcHeap::collect() {
  Pending.store(false, std::memory_order_relaxed);
  if (Opts.Disable || !Heap)
    return 0;
  auto T0 = std::chrono::steady_clock::now();

  // Mark: grey every root, then drain the worklist through cell slots.
  // Transitive marking is iterative (no recursion) so arbitrarily deep
  // object graphs cannot overflow the native stack.
  Marks.assign(Heap->size(), 0);
  Worklist.clear();
  GcMarker Marker(Marks, Worklist);
  for (GcRootProvider *P : Providers)
    P->enumerateRoots(Marker);
  while (!Worklist.empty()) {
    uint32_t Ref = Worklist.back();
    Worklist.pop_back();
    for (const Value &V : (*Heap)[Ref].Slots)
      if (V.K == Value::Kind::Ref)
        Marker.mark(V.R);
  }

  // Sweep, in index order (deterministic free-list layout): every
  // allocated-but-unmarked cell is cleared and its index recycled. Cells
  // are never moved, so every surviving uint32_t ref stays valid.
  uint64_t Reclaimed = 0;
  for (uint32_t Ref = 1; Ref < Heap->size(); ++Ref) {
    if (State[Ref] == 0 || Marks[Ref])
      continue;
    size_t Payload = (*Heap)[Ref].Slots.size();
    (*Heap)[Ref] = HeapCell();
    State[Ref] = 0;
    FreeList.push_back(Ref);
    LiveBytes -= std::min(LiveBytes, cellBytes(Payload));
    ++Reclaimed;
  }

  // Re-arm: keep headroom above the surviving live set so a workload
  // whose live heap legitimately exceeds the budget makes progress
  // between collections instead of collecting at every safepoint.
  NextTrigger = std::max(Opts.HeapBudget, LiveBytes + LiveBytes / 2);

  uint64_t Pause = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
  ++Stats.Cycles;
  Stats.CellsReclaimed += Reclaimed;
  Stats.PauseNs += Pause;
  GcCounters &C = gcCounters();
  C.Cycles.add(1);
  C.CellsReclaimed.add(Reclaimed);
  C.PauseNs.add(Pause);
  return Reclaimed;
}
