//===- codec/Codec.h - SafeTSA externalization ----------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SafeTSA wire format (paper §7): a module externalizes as a symbol
/// sequence where every symbol is drawn from a finite alphabet determined
/// by the preceding context, packed with the equal-probability prefix code
/// (support/BitStream's truncated-binary bounded symbols).
///
/// Three phases per method body:
///   (1) the Control Structure Tree as grammar productions,
///   (2) the basic blocks in dominator-tree pre-order — opcodes, types,
///       and (l, r) operands, with only the *types* of phis,
///   (3) the phi operands (they may reference blocks transmitted later)
///       together with the CST condition/return value references.
///
/// Referential security is a property of this format: an (l, r) operand is
/// decoded by walking l steps up the dominator tree and reading r bounded
/// by the number of values the target block holds on the implied plane —
/// an out-of-region or wrongly-typed reference is not expressible. The
/// decoder additionally rebuilds its own type table: builtin/imported
/// entries never come from the wire, so they cannot be corrupted (§4).
///
/// The Naive mode writes the same symbols byte-aligned (LEB128) instead of
/// context-bounded; it exists for the encoding-size ablation benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_CODEC_CODEC_H
#define SAFETSA_CODEC_CODEC_H

#include "sema/ClassTable.h"
#include "tsa/Method.h"

#include <memory>
#include <string>
#include <vector>

namespace safetsa {

enum class CodecMode { Prefix, Naive };

/// Serializes \p Module. The module must be verified; deriveCFG/finalize
/// are re-run internally.
std::vector<uint8_t> encodeModule(TSAModule &Module,
                                  CodecMode Mode = CodecMode::Prefix);

/// A decoded mobile-code unit. The consumer owns a fresh type context and
/// class table (builtins generated implicitly, user classes declared from
/// the wire), plus the decoded SafeTSA module.
struct DecodedUnit {
  std::unique_ptr<TypeContext> Types;
  std::unique_ptr<ClassTable> Table;
  std::unique_ptr<TSAModule> Module;
};

/// Decodes a mobile-code unit. Returns nullptr and sets \p Err on any
/// malformed, truncated, or tampered input; never crashes on hostile
/// bytes. Decoded modules still pass through TSAVerifier in the driver
/// path as defense in depth, but decode success already implies
/// referential integrity.
std::unique_ptr<DecodedUnit> decodeModule(const std::vector<uint8_t> &Bytes,
                                          std::string *Err,
                                          CodecMode Mode = CodecMode::Prefix);

} // namespace safetsa

#endif // SAFETSA_CODEC_CODEC_H
