//===- codec/Codec.h - SafeTSA externalization ----------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SafeTSA wire format (paper §7): a module externalizes as a symbol
/// sequence where every symbol is drawn from a finite alphabet determined
/// by the preceding context, packed with the equal-probability prefix code
/// (support/BitStream's truncated-binary bounded symbols).
///
/// Three phases per method body:
///   (1) the Control Structure Tree as grammar productions,
///   (2) the basic blocks in dominator-tree pre-order — opcodes, types,
///       and (l, r) operands, with only the *types* of phis,
///   (3) the phi operands (they may reference blocks transmitted later)
///       together with the CST condition/return value references.
///
/// Referential security is a property of this format: an (l, r) operand is
/// decoded by walking l steps up the dominator tree and reading r bounded
/// by the number of values the target block holds on the implied plane —
/// an out-of-region or wrongly-typed reference is not expressible. The
/// decoder additionally rebuilds its own type table: builtin/imported
/// entries never come from the wire, so they cannot be corrupted (§4).
///
/// The Naive mode writes the same symbols byte-aligned (LEB128) instead of
/// context-bounded; it exists for the encoding-size ablation benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_CODEC_CODEC_H
#define SAFETSA_CODEC_CODEC_H

#include "sema/ClassTable.h"
#include "support/BitStream.h"
#include "tsa/Method.h"

#include <memory>
#include <string>
#include <vector>

namespace safetsa {

enum class CodecMode { Prefix, Naive };

/// Serializes \p Module. The module must be verified; deriveCFG/finalize
/// are re-run internally.
std::vector<uint8_t> encodeModule(TSAModule &Module,
                                  CodecMode Mode = CodecMode::Prefix);

/// A decoded mobile-code unit. The consumer owns a fresh type context and
/// class table (builtins generated implicitly, user classes declared from
/// the wire), plus the decoded SafeTSA module.
struct DecodedUnit {
  std::unique_ptr<TypeContext> Types;
  std::unique_ptr<ClassTable> Table;
  std::unique_ptr<TSAModule> Module;
};

struct DecodeOptions {
  CodecMode Mode = CodecMode::Prefix;
  /// Fused decode+verify (the default): the decoder enforces the complete
  /// verifier rule set during its phase-2/phase-3 walks, so a successful
  /// decode implies the module is verified — no TSAVerifier pass is
  /// needed. Most rules hold by construction of the (l, r) reference
  /// scheme; this flag gates only the residual semantic checks (downcast
  /// legality, return-value presence). Setting it false reproduces the
  /// legacy structural-only decoder, for differential testing against the
  /// decode-then-TSAVerifier pipeline and for benchmarking; legacy callers
  /// must run TSAVerifier + counterCheckModule themselves.
  bool FusedVerify = true;
  /// Decode bounded symbols through the precomputed per-alphabet tables.
  /// Setting it false forces the scalar bit-at-a-time reader — the
  /// pre-table decoder, kept as the legacy benchmark baseline and as a
  /// differential oracle for the table path (identical symbols and bit
  /// positions on every stream, hostile ones included).
  bool TableDecode = true;
};

/// Decodes a mobile-code unit from a non-owning byte span (batch drivers
/// decode straight out of a shared receive buffer). Returns nullptr and
/// sets \p Err on any malformed, truncated, or tampered input; never
/// crashes on hostile bytes. With Opts.FusedVerify (the default), decode
/// success means the module is fully verified.
std::unique_ptr<DecodedUnit> decodeModule(ByteSpan Bytes, std::string *Err,
                                          const DecodeOptions &Opts);

/// Convenience overload for owning buffers; decodes fused.
inline std::unique_ptr<DecodedUnit>
decodeModule(const std::vector<uint8_t> &Bytes, std::string *Err,
             CodecMode Mode = CodecMode::Prefix) {
  return decodeModule(ByteSpan(Bytes), Err, DecodeOptions{Mode, true});
}

} // namespace safetsa

#endif // SAFETSA_CODEC_CODEC_H
