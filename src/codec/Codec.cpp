//===- codec/Codec.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "codec/Codec.h"

#include "support/BitStream.h"
#include "tsa/Signature.h"
#include "tsa/Verifier.h"

#include <cstring>
#include <unordered_map>
#include <unordered_set>

using namespace safetsa;

namespace {

constexpr uint32_t Magic = 0x53545341; // "STSA"
constexpr uint16_t Version = 1;
constexpr uint64_t NumOpcodes = static_cast<uint64_t>(Opcode::Dispatch) + 1;
constexpr uint64_t NumPrimOps = static_cast<uint64_t>(PrimOp::InstanceOf) + 1;
constexpr uint64_t NumConstKinds =
    static_cast<uint64_t>(ConstantValue::Kind::String) + 1;

// Hostile-input resource caps.
constexpr uint64_t MaxClasses = 4096;
constexpr uint64_t MaxMembers = 1 << 16;
constexpr uint64_t MaxInstsPerBlock = 1 << 20;
constexpr unsigned MaxCSTDepth = 512;

// CST production symbols (phase 1 alphabet).
enum CSTSym : uint64_t {
  SymBasic = 0,
  SymIf,
  SymLoop,
  SymReturn,
  SymBreak,
  SymContinue,
  SymTry,
  SymEnd,
  NumCSTSyms
};

uint64_t zigzag(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^ static_cast<uint64_t>(V >> 63);
}
int64_t unzigzag(uint64_t V) {
  return static_cast<int64_t>(V >> 1) ^ -static_cast<int64_t>(V & 1);
}

/// Symbol emitter abstracting Prefix vs Naive packing.
class SymSink {
public:
  explicit SymSink(CodecMode Mode) : Mode(Mode) {}

  void sym(uint64_t V, uint64_t Bound) {
    assert(Bound >= 1 && V < Bound && "symbol outside its alphabet");
    if (Mode == CodecMode::Prefix)
      W.writeBounded(V, Bound);
    else
      W.writeVarUint(V);
  }
  void bit(bool B) {
    if (Mode == CodecMode::Prefix)
      W.writeBit(B);
    else
      W.writeVarUint(B);
  }
  void reserve(size_t NumBytes) { W.reserve(NumBytes); }
  void varuint(uint64_t V) { W.writeVarUint(V); }
  void varint(int64_t V) { W.writeVarUint(zigzag(V)); }
  void bits64(uint64_t V) { W.writeFixed(V, 64); }
  void bits(uint64_t V, unsigned N) { W.writeFixed(V, N); }
  void str(const std::string &S) { W.writeString(S); }

  std::vector<uint8_t> take() { return W.take(); }

private:
  CodecMode Mode;
  BitWriter W;
};

/// Symbol reader with a sticky failure flag.
class SymSource {
public:
  SymSource(ByteSpan Bytes, CodecMode Mode, bool TableDecode)
      : Mode(Mode), R(Bytes, TableDecode) {}

  bool failed() const { return Failed || R.hasOverrun(); }
  void fail(const char *Why) {
    if (!Failed)
      Reason = Why;
    Failed = true;
  }
  const char *reason() const { return Reason; }

  uint64_t sym(uint64_t Bound) {
    if (Bound == 0) {
      // An empty alphabet means the producer could not have emitted any
      // symbol here: the reference is inexpressible.
      fail("reference into an empty register plane");
      return 0;
    }
    if (Mode == CodecMode::Prefix)
      return R.readBounded(Bound);
    uint64_t V = R.readVarUint();
    if (V >= Bound) {
      fail("symbol outside its alphabet");
      return 0;
    }
    return V;
  }
  bool bit() {
    if (Mode == CodecMode::Prefix)
      return R.readBit();
    return R.readVarUint() != 0;
  }
  uint64_t varuint() { return R.readVarUint(); }
  int64_t varint() { return unzigzag(R.readVarUint()); }
  uint64_t bits64() { return R.readFixed(64); }
  uint64_t bits(unsigned N) { return R.readFixed(N); }
  std::string str() { return R.readString(); }

private:
  CodecMode Mode;
  BitReader R;
  bool Failed = false;
  const char *Reason = "truncated stream";
};

//===----------------------------------------------------------------------===//
// Encoder
//===----------------------------------------------------------------------===//

class Encoder {
public:
  Encoder(TSAModule &Module, CodecMode Mode)
      : Module(Module), Table(*Module.Table), Types(*Module.Types),
        Ctx{Types, Table}, S(Mode) {}

  std::vector<uint8_t> encode() {
    for (const auto &C : Table.getClasses()) {
      ClassIdx[C.get()] = static_cast<unsigned>(AllClasses.size());
      AllClasses.push_back(C.get());
    }
    // Per-class member-index maps, built once so wire references are O(1)
    // instead of a linear member scan per reference.
    for (ClassSymbol *C : AllClasses) {
      unsigned MIdx = 0;
      for (const auto &M : C->Methods)
        MethodIdx[M.get()] = MIdx++;
      unsigned SIdx = 0;
      for (const auto &F : C->Fields)
        if (F->IsStatic)
          StaticFieldIdx[F.get()] = SIdx++;
      NumStatics[C] = SIdx;
    }

    // Capacity hint: symbols are a handful of bits each; preloads, types,
    // and strings push the per-instruction average to a few bytes.
    size_t NumInsts = 0;
    for (const auto &M : Module.Methods)
      for (const auto &BB : M->Blocks)
        NumInsts += BB->Insts.size();
    S.reserve(NumInsts * 3 + AllClasses.size() * 32 + 64);

    S.bits(Magic, 32);
    S.bits(Version, 16);

    encodeClassSection();
    encodeStaticInits();

    S.varuint(Module.Methods.size());
    for (auto &M : Module.Methods) {
      M->deriveCFG();
      M->finalize(Ctx);
      encodeMethodRef(M->Symbol);
      encodeBody(*M);
    }
    return S.take();
  }

private:
  TSAModule &Module;
  ClassTable &Table;
  TypeContext &Types;
  PlaneContext Ctx;
  SymSink S;
  std::vector<ClassSymbol *> AllClasses;
  std::unordered_map<const ClassSymbol *, unsigned> ClassIdx;
  std::unordered_map<const MethodSymbol *, unsigned> MethodIdx;
  std::unordered_map<const FieldSymbol *, unsigned> StaticFieldIdx;
  std::unordered_map<const ClassSymbol *, unsigned> NumStatics;

  uint64_t numClasses() const { return AllClasses.size(); }

  void encodeTypeRef(Type *T) {
    unsigned Depth = 0;
    while (T->isArray()) {
      T = T->getElemType();
      ++Depth;
    }
    S.varuint(Depth);
    if (T->isPrim()) {
      S.bit(false);
      S.sym(static_cast<uint64_t>(T->getPrimKind()), 4);
    } else {
      assert(T->isClass() && "unexpected type in wire format");
      S.bit(true);
      S.sym(ClassIdx.at(T->getClassSymbol()), numClasses());
    }
  }

  void encodeMethodRef(const MethodSymbol *M) {
    S.sym(ClassIdx.at(M->Owner), numClasses());
    S.sym(MethodIdx.at(M), M->Owner->Methods.size());
  }

  void encodeConstant(const ConstantValue &C, Type *OpType) {
    S.sym(static_cast<uint64_t>(C.K), NumConstKinds);
    switch (C.K) {
    case ConstantValue::Kind::Int:
      S.varint(C.IntVal);
      break;
    case ConstantValue::Kind::Double: {
      uint64_t Bits;
      static_assert(sizeof(Bits) == sizeof(C.DblVal));
      std::memcpy(&Bits, &C.DblVal, sizeof(Bits));
      S.bits64(Bits);
      break;
    }
    case ConstantValue::Kind::Bool:
      S.bit(C.IntVal != 0);
      break;
    case ConstantValue::Kind::Char:
      S.bits(static_cast<uint64_t>(C.IntVal) & 0xff, 8);
      break;
    case ConstantValue::Kind::Null:
      encodeTypeRef(OpType); // Null constants carry their plane type.
      break;
    case ConstantValue::Kind::String:
      S.str(C.StrVal);
      break;
    }
  }

  void encodeClassSection() {
    std::vector<ClassSymbol *> Users;
    for (ClassSymbol *C : AllClasses)
      if (!C->IsBuiltin)
        Users.push_back(C);
    S.varuint(Users.size());
    for (ClassSymbol *C : Users)
      S.str(C->Name);
    for (ClassSymbol *C : Users) {
      S.sym(ClassIdx.at(C->Super), numClasses());
      unsigned NumFields = static_cast<unsigned>(C->Fields.size());
      S.varuint(NumFields);
      for (const auto &F : C->Fields) {
        S.str(F->Name);
        S.bit(F->IsStatic);
        S.bit(F->IsFinal);
        encodeTypeRef(F->Ty);
      }
      S.varuint(C->Methods.size());
      for (const auto &M : C->Methods) {
        S.str(M->Name);
        S.bit(M->IsStatic);
        S.bit(M->IsConstructor);
        bool IsVoid = M->RetTy->isVoid();
        S.bit(IsVoid);
        if (!IsVoid)
          encodeTypeRef(M->RetTy);
        S.varuint(M->ParamTys.size());
        for (Type *P : M->ParamTys)
          encodeTypeRef(P);
      }
    }
  }

  void encodeStaticInits() {
    S.varuint(Module.StaticInits.size());
    for (const auto &[F, C] : Module.StaticInits) {
      S.sym(ClassIdx.at(F->Owner), numClasses());
      // Index within the owner's own static fields.
      S.sym(StaticFieldIdx.at(F), NumStatics.at(F->Owner));
      encodeConstant(C, F->Ty);
    }
  }

  //===--------------------------------------------------------------------===//
  // Phase 1: CST productions
  //===--------------------------------------------------------------------===//

  /// \p TryDepth counts enclosing try bodies; inside one, every Basic
  /// node carries its exception-edge flag so producer and consumer derive
  /// identical CFGs (the flag is part of the CST grammar).
  void encodeSeq(const CSTSeq &Seq, unsigned TryDepth) {
    for (const auto &Node : Seq) {
      switch (Node->K) {
      case CSTNode::Kind::Basic:
        S.sym(SymBasic, NumCSTSyms);
        if (TryDepth > 0)
          S.bit(Node->RaisesToCatch);
        break;
      case CSTNode::Kind::If:
        S.sym(SymIf, NumCSTSyms);
        S.bit(!Node->Else.empty());
        encodeSeq(Node->Then, TryDepth);
        if (!Node->Else.empty())
          encodeSeq(Node->Else, TryDepth);
        break;
      case CSTNode::Kind::Try:
        S.sym(SymTry, NumCSTSyms);
        encodeSeq(Node->Then, TryDepth + 1); // Protected body.
        encodeSeq(Node->Else, TryDepth);     // Handler raises outward.
        break;
      case CSTNode::Kind::Loop:
        S.sym(SymLoop, NumCSTSyms);
        encodeSeq(Node->Header, TryDepth);
        encodeSeq(Node->Body, TryDepth);
        break;
      case CSTNode::Kind::Return:
        S.sym(SymReturn, NumCSTSyms);
        S.bit(Node->RetVal != nullptr);
        break;
      case CSTNode::Kind::Break:
        S.sym(SymBreak, NumCSTSyms);
        break;
      case CSTNode::Kind::Continue:
        S.sym(SymContinue, NumCSTSyms);
        break;
      }
    }
    S.sym(SymEnd, NumCSTSyms);
  }

  //===--------------------------------------------------------------------===//
  // Phase 2: blocks, instructions, non-phi operands
  //===--------------------------------------------------------------------===//

  /// Emits the (l, r) reference for \p Def used from \p UseBlock. The
  /// reference plane is Def's result plane (the module is verified, so
  /// operand and result planes agree); its interned id indexes the flat
  /// per-block counters directly. \p Running gives same-block bounds in
  /// phase 2 (values emitted so far); null => final counts (phase 3).
  void encodeRef(const Instruction *Def, const BasicBlock *UseBlock,
                 const std::vector<unsigned> *Running) {
    const BasicBlock *D = Def->Parent;
    assert(UseBlock->DomDepth >= D->DomDepth && "operand does not dominate");
    uint64_t L = UseBlock->DomDepth - D->DomDepth;
    S.sym(L, UseBlock->DomDepth + 1);
    uint32_t Plane = Def->PlaneId;
    assert(Plane != PlaneInterner::None && "reference to a value-less def");
    uint64_t Bound;
    if (Running && D == UseBlock)
      Bound = Plane < Running->size() ? (*Running)[Plane] : 0;
    else
      Bound = D->planeCount(Plane);
    assert(Def->PlaneIndex < Bound && "register number out of range");
    S.sym(Def->PlaneIndex, Bound);
  }

  void encodeBody(TSAMethod &M) {
    encodeSeq(M.Root, 0);

    std::vector<unsigned> Running;
    for (const auto &BB : M.Blocks) {
      S.varuint(BB->Insts.size());
      Running.assign(M.Planes.size(), 0);
      for (const auto &I : BB->Insts) {
        encodeInstruction(M, *BB, *I, Running);
        if (I->PlaneId != PlaneInterner::None)
          ++Running[I->PlaneId];
      }
    }

    encodePhase3(M);
  }

  void encodeInstruction(TSAMethod &M, const BasicBlock &BB,
                         const Instruction &I,
                         const std::vector<unsigned> &Running) {
    S.sym(static_cast<uint64_t>(I.Op), NumOpcodes);
    switch (I.Op) {
    case Opcode::Const:
      encodeConstant(I.C, I.OpType);
      break;
    case Opcode::Param: {
      unsigned Shift = M.Symbol->IsStatic ? 0 : 1;
      S.sym(I.ParamIndex, M.Symbol->ParamTys.size() + Shift);
      break;
    }
    case Opcode::Phi:
      encodeTypeRef(I.OpType);
      S.bit(I.DstSafe);
      return; // Operands follow in phase 3.
    case Opcode::Primitive:
    case Opcode::XPrimitive:
      S.sym(static_cast<uint64_t>(I.Prim), NumPrimOps);
      if (I.Prim == PrimOp::InstanceOf)
        encodeTypeRef(I.AuxType);
      break;
    case Opcode::NullCheck:
    case Opcode::IndexCheck:
    case Opcode::Upcast:
    case Opcode::ArrayLength:
    case Opcode::NewArray:
    case Opcode::GetElt:
    case Opcode::SetElt:
      encodeTypeRef(I.OpType);
      break;
    case Opcode::Downcast:
      encodeTypeRef(I.AuxType);
      S.bit(I.SrcSafe);
      encodeTypeRef(I.OpType);
      S.bit(I.DstSafe);
      break;
    case Opcode::GetField:
    case Opcode::SetField: {
      encodeTypeRef(I.OpType);
      // The field is named by its slot in the accessed class's layout —
      // bounded, so a field outside the class is inexpressible.
      ClassSymbol *C = I.OpType->getClassSymbol();
      S.sym(I.Field->Slot, C->InstanceLayout.size());
      break;
    }
    case Opcode::GetStatic:
    case Opcode::SetStatic:
      S.sym(ClassIdx.at(I.Field->Owner), numClasses());
      S.sym(StaticFieldIdx.at(I.Field), NumStatics.at(I.Field->Owner));
      break;
    case Opcode::New:
      S.sym(ClassIdx.at(I.OpType->getClassSymbol()), numClasses());
      break;
    case Opcode::Call:
    case Opcode::Dispatch:
      encodeMethodRef(I.Method);
      break;
    }

    for (unsigned K = 0; K != I.Operands.size(); ++K) {
#ifndef NDEBUG
      std::optional<PlaneKey> Plane = operandPlane(I, K, Ctx, nullptr);
      assert(Plane && "encoding an ill-typed instruction");
      assert(M.Planes.find(*Plane) == I.Operands[K]->PlaneId &&
             "operand plane disagrees with its definition");
#endif
      encodeRef(I.Operands[K], &BB, &Running);
    }
  }

  //===--------------------------------------------------------------------===//
  // Phase 3: phi operands and CST value references
  //===--------------------------------------------------------------------===//

  void encodePhase3(TSAMethod &M) {
    for (const auto &BB : M.Blocks) {
      for (const auto &I : BB->Insts) {
        if (!I->isPhi())
          continue;
        assert(I->Operands.size() == BB->Preds.size());
        for (size_t K = 0; K != I->Operands.size(); ++K)
          encodeRef(I->Operands[K], BB->Preds[K], nullptr);
      }
    }
    encodeCSTRefs(M, M.Root, nullptr);
  }

  const BasicBlock *encodeCSTRefs(TSAMethod &M, const CSTSeq &Seq,
                                  const BasicBlock *Cur) {
    for (const auto &Node : Seq) {
      switch (Node->K) {
      case CSTNode::Kind::Basic:
        Cur = Node->BB;
        break;
      case CSTNode::Kind::If:
        encodeRef(Node->Cond, Cur, nullptr);
        encodeCSTRefs(M, Node->Then, Cur);
        if (!Node->Else.empty())
          encodeCSTRefs(M, Node->Else, Cur);
        Cur = nullptr;
        break;
      case CSTNode::Kind::Loop: {
        const BasicBlock *Decision = encodeCSTRefs(M, Node->Header, Cur);
        encodeRef(Node->Cond, Decision, nullptr);
        encodeCSTRefs(M, Node->Body, Decision);
        Cur = nullptr;
        break;
      }
      case CSTNode::Kind::Try:
        encodeCSTRefs(M, Node->Then, Cur);
        encodeCSTRefs(M, Node->Else, nullptr);
        Cur = nullptr;
        break;
      case CSTNode::Kind::Return:
        if (Node->RetVal)
          encodeRef(Node->RetVal, Cur, nullptr);
        break;
      case CSTNode::Kind::Break:
      case CSTNode::Kind::Continue:
        break;
      }
    }
    return Cur;
  }
};

//===----------------------------------------------------------------------===//
// Decoder
//===----------------------------------------------------------------------===//

class Decoder {
public:
  Decoder(ByteSpan Bytes, const DecodeOptions &Opts)
      : S(Bytes, Opts.Mode, Opts.TableDecode), Fused(Opts.FusedVerify) {}

  std::unique_ptr<DecodedUnit> decode(std::string *Err) {
    auto Fail = [&](const char *Why) -> std::unique_ptr<DecodedUnit> {
      if (Err)
        *Err = Why;
      return nullptr;
    };

    if (S.bits(32) != Magic)
      return Fail("bad magic");
    if (S.bits(16) != Version)
      return Fail("unsupported version");

    auto Unit = std::make_unique<DecodedUnit>();
    Unit->Types = std::make_unique<TypeContext>();
    Types = Unit->Types.get();
    Unit->Table = std::make_unique<ClassTable>(*Types);
    Table = Unit->Table.get();
    Unit->Module = std::make_unique<TSAModule>();
    Unit->Module->Types = Types;
    Unit->Module->Table = Table;
    Ctx = std::make_unique<PlaneContext>(PlaneContext{*Types, *Table});

    if (!decodeClassSection())
      return Fail(S.reason());
    if (!decodeStaticInits(*Unit->Module))
      return Fail(S.reason());

    uint64_t NumBodies = S.varuint();
    if (NumBodies > MaxMembers || S.failed())
      return Fail("implausible body count");
    std::unordered_set<const MethodSymbol *> Seen;
    for (uint64_t I = 0; I != NumBodies; ++I) {
      MethodSymbol *M = decodeMethodRef();
      if (!M || M->isNative() || M->Owner->IsBuiltin) {
        S.fail("body for a builtin or native method");
        return Fail(S.reason());
      }
      if (!Seen.insert(M).second) {
        S.fail("duplicate method body");
        return Fail(S.reason());
      }
      auto Body = decodeBody(M);
      if (!Body)
        return Fail(S.reason());
      Unit->Module->Methods.push_back(std::move(Body));
    }
    if (S.failed())
      return Fail(S.reason());

    // Completeness: every declared non-native user method has a body, so
    // dispatch can never land in a missing implementation.
    for (ClassSymbol *C : AllClasses) {
      if (C->IsBuiltin)
        continue;
      for (const auto &M : C->Methods)
        if (!Seen.count(M.get())) {
          if (Err)
            *Err = "method declared without a body";
          return nullptr;
        }
    }
    return Unit;
  }

private:
  SymSource S;
  /// Fused decode+verify: enforce the residual verifier-only rules
  /// (downcast legality, return-value presence) during decoding, making a
  /// successful decode equivalent to decode + TSAVerifier.
  bool Fused;
  TypeContext *Types = nullptr;
  ClassTable *Table = nullptr;
  std::unique_ptr<PlaneContext> Ctx;
  std::vector<ClassSymbol *> AllClasses;
  /// Static fields per class, aligned with AllClasses; precomputed once
  /// so static-field wire references are O(1), not a member scan.
  std::vector<std::vector<FieldSymbol *>> StaticsByClass;
  DiagnosticEngine ScratchDiags;

  uint64_t numClasses() const { return AllClasses.size(); }

  Type *decodeTypeRef() {
    uint64_t Depth = S.varuint();
    if (Depth > 32) {
      S.fail("implausible array depth");
      return nullptr;
    }
    Type *T;
    if (!S.bit()) {
      T = Types->getPrim(static_cast<PrimTypeKind>(S.sym(4)));
    } else {
      uint64_t Idx = S.sym(numClasses());
      if (S.failed())
        return nullptr;
      T = Types->getClass(AllClasses[Idx]);
    }
    for (uint64_t I = 0; I != Depth && T; ++I)
      T = Types->getArray(T);
    return S.failed() ? nullptr : T;
  }

  MethodSymbol *decodeMethodRef() {
    uint64_t CIdx = S.sym(numClasses());
    if (S.failed())
      return nullptr;
    ClassSymbol *C = AllClasses[CIdx];
    if (C->Methods.empty()) {
      S.fail("method reference into a class with no methods");
      return nullptr;
    }
    uint64_t MIdx = S.sym(C->Methods.size());
    if (S.failed())
      return nullptr;
    return C->Methods[MIdx].get();
  }

  bool decodeConstant(ConstantValue &C, Type *&OpType) {
    uint64_t Kind = S.sym(NumConstKinds);
    if (S.failed())
      return false;
    C.K = static_cast<ConstantValue::Kind>(Kind);
    OpType = nullptr;
    switch (C.K) {
    case ConstantValue::Kind::Int:
      C.IntVal = S.varint();
      OpType = Types->getInt();
      break;
    case ConstantValue::Kind::Double: {
      uint64_t Bits = S.bits64();
      std::memcpy(&C.DblVal, &Bits, sizeof(C.DblVal));
      OpType = Types->getDouble();
      break;
    }
    case ConstantValue::Kind::Bool:
      C.IntVal = S.bit();
      OpType = Types->getBoolean();
      break;
    case ConstantValue::Kind::Char:
      C.IntVal = static_cast<int64_t>(S.bits(8));
      OpType = Types->getChar();
      break;
    case ConstantValue::Kind::Null:
      OpType = decodeTypeRef();
      if (OpType && !(OpType->isClass() || OpType->isArray())) {
        S.fail("null constant with a non-reference type");
        return false;
      }
      break;
    case ConstantValue::Kind::String:
      C.StrVal = S.str();
      OpType = Types->getArray(Types->getChar());
      break;
    }
    return !S.failed();
  }

  bool decodeClassSection() {
    // Builtins are implicit: they were created by the ClassTable
    // constructor and can never be redefined from the wire.
    for (const auto &C : Table->getClasses())
      AllClasses.push_back(C.get());

    uint64_t NumUsers = S.varuint();
    if (NumUsers > MaxClasses || S.failed()) {
      S.fail("implausible class count");
      return false;
    }
    std::vector<ClassSymbol *> Users;
    for (uint64_t I = 0; I != NumUsers; ++I) {
      std::string Name = S.str();
      if (S.failed())
        return false;
      ClassSymbol *C = Table->declareClass(Name, nullptr, ScratchDiags);
      if (!C) {
        S.fail("duplicate or reserved class name");
        return false;
      }
      Users.push_back(C);
      AllClasses.push_back(C);
    }

    for (ClassSymbol *C : Users) {
      uint64_t SuperIdx = S.sym(numClasses());
      if (S.failed())
        return false;
      ClassSymbol *Super = AllClasses[SuperIdx];
      if (Super == C || (Super->IsBuiltin && Super != Table->getObjectClass())) {
        S.fail("illegal superclass");
        return false;
      }
      C->Super = Super;

      uint64_t NumFields = S.varuint();
      if (NumFields > MaxMembers || S.failed()) {
        S.fail("implausible field count");
        return false;
      }
      for (uint64_t I = 0; I != NumFields; ++I) {
        auto F = std::make_unique<FieldSymbol>();
        F->Name = S.str();
        F->IsStatic = S.bit();
        F->IsFinal = S.bit();
        F->Ty = decodeTypeRef();
        F->Owner = C;
        if (!F->Ty || F->Ty->isVoid())
          return false;
        if (F->IsStatic)
          F->Slot = Table->allocateStaticSlot();
        C->Fields.push_back(std::move(F));
      }

      uint64_t NumMethods = S.varuint();
      if (NumMethods > MaxMembers || S.failed()) {
        S.fail("implausible method count");
        return false;
      }
      for (uint64_t I = 0; I != NumMethods; ++I) {
        auto M = std::make_unique<MethodSymbol>();
        M->Name = S.str();
        M->IsStatic = S.bit();
        M->IsConstructor = S.bit();
        bool IsVoid = S.bit();
        M->RetTy = IsVoid ? Types->getVoid() : decodeTypeRef();
        M->Owner = C;
        if (!M->RetTy)
          return false;
        if (M->IsConstructor && (M->IsStatic || !M->RetTy->isVoid())) {
          S.fail("malformed constructor declaration");
          return false;
        }
        uint64_t NumParams = S.varuint();
        if (NumParams > 255 || S.failed()) {
          S.fail("implausible parameter count");
          return false;
        }
        for (uint64_t P = 0; P != NumParams; ++P) {
          Type *T = decodeTypeRef();
          if (!T || T->isVoid())
            return false;
          M->ParamTys.push_back(T);
        }
        Table->registerMethod(M.get());
        C->Methods.push_back(std::move(M));
      }
    }

    // Superclass cycles would hang layout computation; every chain must
    // reach Object within the class count.
    for (ClassSymbol *C : Users) {
      unsigned Steps = 0;
      for (ClassSymbol *W = C; W; W = W->Super)
        if (++Steps > AllClasses.size() + 1) {
          S.fail("inheritance cycle");
          return false;
        }
    }

    std::string LayoutErr;
    for (ClassSymbol *C : Users)
      if (!ClassTable::computeClassLayout(C, &LayoutErr)) {
        S.fail("illegal override in class declarations");
        return false;
      }

    StaticsByClass.resize(AllClasses.size());
    for (size_t I = 0; I != AllClasses.size(); ++I)
      for (const auto &F : AllClasses[I]->Fields)
        if (F->IsStatic)
          StaticsByClass[I].push_back(F.get());
    return true;
  }

  bool decodeStaticInits(TSAModule &Module) {
    uint64_t Num = S.varuint();
    if (Num > MaxMembers || S.failed()) {
      S.fail("implausible static-initializer count");
      return false;
    }
    for (uint64_t I = 0; I != Num; ++I) {
      uint64_t CIdx = S.sym(numClasses());
      if (S.failed())
        return false;
      const std::vector<FieldSymbol *> &Statics = StaticsByClass[CIdx];
      uint64_t FIdx = S.sym(Statics.size());
      ConstantValue Val;
      Type *ConstTy = nullptr;
      if (S.failed() || !decodeConstant(Val, ConstTy))
        return false;
      Module.StaticInits.push_back({Statics[FIdx], Val});
    }
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Phase 1 decode: CST + blocks
  //===--------------------------------------------------------------------===//

  /// Decodes one CST sequence; returns false on malformed structure.
  /// \p CanFall reports whether control may fall out of the sequence.
  bool decodeSeq(TSAMethod &M, CSTSeq &Seq, bool InLoopBody, bool InHeader,
                 unsigned Depth, unsigned TryDepth, unsigned *Edges,
                 bool &CanFall) {
    if (Depth > MaxCSTDepth) {
      S.fail("CST nesting too deep");
      return false;
    }
    bool First = true;
    bool Reach = true;
    while (true) {
      uint64_t Sym = S.sym(NumCSTSyms);
      if (S.failed())
        return false;
      if (Sym == SymEnd)
        break;
      if (!Reach) {
        S.fail("unreachable CST node");
        return false;
      }
      if (First && Sym != SymBasic) {
        S.fail("CST sequence does not start with a basic block");
        return false;
      }
      First = false;

      CSTNode *Node = M.createNode();
      switch (Sym) {
      case SymBasic:
        Node->K = CSTNode::Kind::Basic;
        Node->BB = M.createBlock();
        if (TryDepth > 0) {
          Node->RaisesToCatch = S.bit();
          if (Node->RaisesToCatch && Edges)
            ++*Edges;
        }
        break;
      case SymTry: {
        if (InHeader) {
          S.fail("try inside a loop header");
          return false;
        }
        Node->K = CSTNode::Kind::Try;
        bool BodyFall = false, HandlerFall = false;
        unsigned BodyEdges = 0;
        if (!decodeSeq(M, Node->Then, InLoopBody, InHeader, Depth + 1,
                       TryDepth + 1, &BodyEdges, BodyFall))
          return false;
        if (BodyEdges == 0) {
          S.fail("try handler is unreachable");
          return false;
        }
        if (!decodeSeq(M, Node->Else, InLoopBody, InHeader, Depth + 1,
                       TryDepth, Edges, HandlerFall))
          return false;
        Reach = BodyFall || HandlerFall;
        break;
      }
      case SymIf: {
        Node->K = CSTNode::Kind::If;
        bool HasElse = S.bit();
        bool ThenFall = false, ElseFall = true;
        if (!decodeSeq(M, Node->Then, InLoopBody, InHeader, Depth + 1,
                       TryDepth, Edges, ThenFall))
          return false;
        if (HasElse && !decodeSeq(M, Node->Else, InLoopBody, InHeader,
                                  Depth + 1, TryDepth, Edges, ElseFall))
          return false;
        Reach = ThenFall || ElseFall;
        break;
      }
      case SymLoop: {
        if (InHeader) {
          S.fail("loop inside a loop header");
          return false;
        }
        Node->K = CSTNode::Kind::Loop;
        bool HeaderFall = false, BodyFall = false;
        if (!decodeSeq(M, Node->Header, false, /*InHeader=*/true, Depth + 1,
                       TryDepth, Edges, HeaderFall))
          return false;
        if (!HeaderFall) {
          S.fail("loop header cannot fall through");
          return false;
        }
        if (!decodeSeq(M, Node->Body, /*InLoopBody=*/true, false, Depth + 1,
                       TryDepth, Edges, BodyFall))
          return false;
        Reach = true; // The decision block's false edge always exists.
        break;
      }
      case SymReturn:
        if (InHeader) {
          S.fail("return inside a loop header");
          return false;
        }
        Node->K = CSTNode::Kind::Return;
        Node->RetVal = S.bit()
                           ? reinterpret_cast<Instruction *>(1) // Placeholder
                           : nullptr;
        Reach = false;
        break;
      case SymBreak:
      case SymContinue:
        if (!InLoopBody) {
          S.fail("break/continue outside of a loop body");
          return false;
        }
        Node->K = Sym == SymBreak ? CSTNode::Kind::Break
                                  : CSTNode::Kind::Continue;
        Reach = false;
        break;
      default:
        S.fail("bad CST production");
        return false;
      }
      Seq.push_back(Node);
    }
    if (First) {
      S.fail("empty CST sequence");
      return false;
    }
    CanFall = Reach;
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Reference decoding
  //===--------------------------------------------------------------------===//

  /// Per-block registers: the decoded value list of every plane, in
  /// definition order, indexed [block id][interned plane id]. Grown
  /// during phase 2; read by all phases. Plane ids come from the
  /// decoder's own interner (reset per method body); they are assigned in
  /// decode order, never read from the wire. Inline capacities cover the
  /// typical handful of planes and values per block without touching the
  /// heap.
  std::vector<SmallVector<SmallVector<Instruction *, 4>, 8>> Registers;
  PlaneInterner DecPlanes;

  void recordRegister(BasicBlock *BB, const PlaneKey &Plane,
                      Instruction *Def) {
    uint32_t Id = DecPlanes.intern(Plane);
    auto &Block = Registers[BB->Id];
    if (Id >= Block.size())
      Block.resize(Id + 1);
    // The phase-2 walk visits blocks and instructions in exactly
    // finalize()'s order, so the interned ids and per-plane indices match
    // what finalize() would assign; writing them here lets the fused path
    // skip that whole second pass over the method.
    Def->PlaneId = Id;
    Def->PlaneIndex = static_cast<unsigned>(Block[Id].size());
    if (Id >= BB->PlaneCounts.size())
      BB->PlaneCounts.resize(Id + 1, 0);
    ++BB->PlaneCounts[Id];
    Block[Id].push_back(Def);
  }

  Instruction *decodeRef(const BasicBlock *UseBlock, const PlaneKey &Plane) {
    return decodeRefById(UseBlock, DecPlanes.find(Plane));
  }

  /// Variant for callers that already know the interned plane id (phi
  /// operand decoding reuses the id recorded on the phi in phase 2),
  /// skipping the plane-table probe per operand.
  Instruction *decodeRefById(const BasicBlock *UseBlock, uint32_t Id) {
    if (!UseBlock) {
      S.fail("value reference with no context block");
      return nullptr;
    }
    uint64_t L = S.sym(UseBlock->DomDepth + 1);
    if (S.failed())
      return nullptr;
    const BasicBlock *D = UseBlock;
    for (uint64_t I = 0; I != L; ++I)
      D = D->IDom;
    auto &Block = Registers[D->Id];
    uint64_t Bound = Id < Block.size() ? Block[Id].size() : 0;
    uint64_t R = S.sym(Bound);
    if (S.failed())
      return nullptr;
    return Block[Id][R];
  }

  //===--------------------------------------------------------------------===//
  // Method bodies
  //===--------------------------------------------------------------------===//

  std::unique_ptr<TSAMethod> decodeBody(MethodSymbol *Symbol) {
    auto M = std::make_unique<TSAMethod>();
    M->Symbol = Symbol;

    bool CanFall = false;
    if (!decodeSeq(*M, M->Root, false, false, 0, 0, nullptr, CanFall))
      return nullptr;
    if (CanFall) {
      S.fail("control falls off the end of a method");
      return nullptr;
    }

    M->deriveCFG();

    // Reuse the register storage across the module's methods: clear the
    // per-plane value lists but keep their buffers, so steady-state
    // decoding allocates nothing here. Stale lists beyond this method's
    // block count are unreachable (block ids are dense from zero).
    if (Registers.size() < M->Blocks.size())
      Registers.resize(M->Blocks.size());
    for (size_t I = 0, E = M->Blocks.size(); I != E; ++I)
      for (auto &PlaneVals : Registers[I])
        PlaneVals.clear();
    DecPlanes.clear();

    // Phase 2.
    for (BasicBlock *BB : M->Blocks) {
      uint64_t NumInsts = S.varuint();
      if (NumInsts > MaxInstsPerBlock || S.failed()) {
        S.fail("implausible instruction count");
        return nullptr;
      }
      BB->Insts.reserve(NumInsts <= 1024 ? NumInsts : 1024);
      bool SeenNonPhi = false;
      for (uint64_t I = 0; I != NumInsts; ++I) {
        Instruction *Inst = decodeInstruction(*M, *BB, SeenNonPhi);
        if (!Inst)
          return nullptr;
        BB->append(Inst);
        if (auto Plane = resultPlane(*Inst, *Ctx))
          recordRegister(BB, *Plane, Inst);
      }
    }

    // The exception-edge discipline couples phase-1 flags with phase-2
    // instruction contents; reject mismatches before trusting the edges.
    std::string EdgeErr;
    if (!checkExceptionDiscipline(*M, &EdgeErr)) {
      S.fail("exception-edge discipline violation");
      return nullptr;
    }

    // Phase 3: phi operands. Phase 2 recorded each phi's interned plane
    // id, so the operand alphabet needs no plane recomputation here.
    // Phase 2 also rejected any phi after a non-phi, so phis form a
    // prefix of each block's instruction list.
    for (auto &BB : M->Blocks) {
      for (auto &I : BB->Insts) {
        if (!I->isPhi())
          break;
        for (BasicBlock *Pred : BB->Preds) {
          Instruction *Op = decodeRefById(Pred, I->PlaneId);
          if (!Op)
            return nullptr;
          I->Operands.push_back(Op);
        }
      }
    }

    // Phase 3: CST condition / return references.
    if (!decodeCSTRefs(*M, M->Root, nullptr).second)
      return nullptr;

    if (Fused) {
      // recordRegister already assigned PlaneId/PlaneIndex/PlaneCounts in
      // finalize()'s first-touch order; adopt the interner instead of
      // recomputing every instruction's result plane in a second pass.
      M->Planes = std::move(DecPlanes);
    } else {
      M->finalize(*Ctx);
    }
    return S.failed() ? nullptr : std::move(M);
  }

  std::pair<const BasicBlock *, bool>
  decodeCSTRefs(TSAMethod &M, CSTSeq &Seq, const BasicBlock *Cur) {
    for (auto &Node : Seq) {
      switch (Node->K) {
      case CSTNode::Kind::Basic:
        Cur = Node->BB;
        break;
      case CSTNode::Kind::If: {
        Node->Cond = decodeRef(Cur, PlaneKey::base(Types->getBoolean()));
        if (!Node->Cond)
          return {nullptr, false};
        if (!decodeCSTRefs(M, Node->Then, Cur).second)
          return {nullptr, false};
        if (!Node->Else.empty() &&
            !decodeCSTRefs(M, Node->Else, Cur).second)
          return {nullptr, false};
        Cur = nullptr;
        break;
      }
      case CSTNode::Kind::Loop: {
        auto [Decision, Ok] = decodeCSTRefs(M, Node->Header, Cur);
        if (!Ok)
          return {nullptr, false};
        Node->Cond = decodeRef(Decision, PlaneKey::base(Types->getBoolean()));
        if (!Node->Cond)
          return {nullptr, false};
        if (!decodeCSTRefs(M, Node->Body, Decision).second)
          return {nullptr, false};
        Cur = nullptr;
        break;
      }
      case CSTNode::Kind::Try:
        if (!decodeCSTRefs(M, Node->Then, Cur).second)
          return {nullptr, false};
        if (!decodeCSTRefs(M, Node->Else, nullptr).second)
          return {nullptr, false};
        Cur = nullptr;
        break;
      case CSTNode::Kind::Return:
        if (Node->RetVal) { // Placeholder set during phase 1.
          if (M.Symbol->RetTy->isVoid()) {
            S.fail("value returned from a void method");
            return {nullptr, false};
          }
          Node->RetVal = decodeRef(Cur, PlaneKey::base(M.Symbol->RetTy));
          if (!Node->RetVal)
            return {nullptr, false};
        } else if (Fused && !M.Symbol->RetTy->isVoid()) {
          S.fail("non-void method returns without a value");
          return {nullptr, false};
        }
        break;
      case CSTNode::Kind::Break:
      case CSTNode::Kind::Continue:
        break;
      }
    }
    return {Cur, true};
  }

  Instruction *decodeInstruction(TSAMethod &M, const BasicBlock &BB,
                                 bool &SeenNonPhi) {
    uint64_t OpSym = S.sym(NumOpcodes);
    if (S.failed())
      return nullptr;
    Instruction *I = M.createInst(static_cast<Opcode>(OpSym));
    I->Parent = const_cast<BasicBlock *>(&BB);

    if (I->isPreload() && &BB != M.getEntry()) {
      S.fail("preload outside of the entry block");
      return nullptr;
    }
    if (I->isPhi()) {
      if (SeenNonPhi) {
        S.fail("phi after non-phi instruction");
        return nullptr;
      }
    } else {
      SeenNonPhi = true;
    }

    switch (I->Op) {
    case Opcode::Const: {
      Type *Ty = nullptr;
      if (!decodeConstant(I->C, Ty))
        return nullptr;
      I->OpType = Ty;
      break;
    }
    case Opcode::Param: {
      unsigned Shift = M.Symbol->IsStatic ? 0 : 1;
      I->ParamIndex = static_cast<unsigned>(
          S.sym(M.Symbol->ParamTys.size() + Shift));
      if (S.failed())
        return nullptr;
      if (Shift && I->ParamIndex == 0)
        I->OpType = Types->getClass(M.Symbol->Owner);
      else
        I->OpType = M.Symbol->ParamTys[I->ParamIndex - Shift];
      break;
    }
    case Opcode::Phi:
      I->OpType = decodeTypeRef();
      if (!I->OpType)
        return nullptr;
      I->DstSafe = S.bit();
      if (I->DstSafe && !(I->OpType->isClass() || I->OpType->isArray())) {
        S.fail("safe-ref phi of a non-reference type");
        return nullptr;
      }
      return I; // Operands arrive in phase 3.
    case Opcode::Primitive:
    case Opcode::XPrimitive: {
      I->Prim = static_cast<PrimOp>(S.sym(NumPrimOps));
      if (S.failed())
        return nullptr;
      bool Raises = primOpMayRaise(I->Prim);
      if (Raises != (I->Op == Opcode::XPrimitive)) {
        S.fail("operation under the wrong primitive/xprimitive opcode");
        return nullptr;
      }
      if (I->Prim == PrimOp::InstanceOf) {
        I->AuxType = decodeTypeRef();
        if (!I->AuxType ||
            !(I->AuxType->isClass() || I->AuxType->isArray())) {
          S.fail("instanceof of a non-reference type");
          return nullptr;
        }
      }
      I->OpType = primOpOperandType(I->Prim, *Ctx);
      break;
    }
    case Opcode::NullCheck:
    case Opcode::Upcast:
      I->OpType = decodeTypeRef();
      if (!I->OpType || !(I->OpType->isClass() || I->OpType->isArray())) {
        S.fail("check/cast requires a reference type");
        return nullptr;
      }
      if (I->Op == Opcode::Upcast)
        I->AuxType = Ctx->objectType();
      break;
    case Opcode::IndexCheck:
    case Opcode::ArrayLength:
    case Opcode::GetElt:
    case Opcode::SetElt:
    case Opcode::NewArray:
      I->OpType = decodeTypeRef();
      if (!I->OpType || !I->OpType->isArray()) {
        S.fail("array operation on a non-array type");
        return nullptr;
      }
      break;
    case Opcode::Downcast: {
      I->AuxType = decodeTypeRef();
      I->SrcSafe = S.bit();
      I->OpType = decodeTypeRef();
      I->DstSafe = S.bit();
      if (!I->AuxType || !I->OpType)
        return nullptr;
      if (!(I->AuxType->isClass() || I->AuxType->isArray()) ||
          !(I->OpType->isClass() || I->OpType->isArray())) {
        S.fail("downcast of non-reference types");
        return nullptr;
      }
      // Full legality, mirroring TSAVerifier::checkDowncast: widening
      // along the class hierarchy only (arrays widen only to Object), and
      // safety may be erased or preserved but never introduced — that is
      // nullcheck's exclusive privilege.
      if (Fused) {
        Type *Src = I->AuxType, *Dst = I->OpType;
        bool Widens = false;
        if (Src == Dst)
          Widens = true;
        else if (Dst->isClass() && Src->isClass())
          Widens =
              Src->getClassSymbol()->isSubclassOf(Dst->getClassSymbol());
        else if (Dst->isClass() && Src->isArray())
          Widens = Dst->getClassSymbol()->Super == nullptr; // Object only.
        if (!Widens) {
          S.fail("downcast does not widen");
          return nullptr;
        }
        if (I->DstSafe && !I->SrcSafe) {
          S.fail("downcast cannot introduce safety");
          return nullptr;
        }
      }
      break;
    }
    case Opcode::GetField:
    case Opcode::SetField: {
      I->OpType = decodeTypeRef();
      if (!I->OpType || !I->OpType->isClass()) {
        S.fail("field access on a non-class type");
        return nullptr;
      }
      ClassSymbol *C = I->OpType->getClassSymbol();
      uint64_t Slot = S.sym(C->InstanceLayout.size());
      if (S.failed())
        return nullptr;
      I->Field = C->InstanceLayout[Slot];
      break;
    }
    case Opcode::GetStatic:
    case Opcode::SetStatic: {
      uint64_t CIdx = S.sym(numClasses());
      if (S.failed())
        return nullptr;
      const std::vector<FieldSymbol *> &Statics = StaticsByClass[CIdx];
      uint64_t Idx = S.sym(Statics.size());
      if (S.failed())
        return nullptr;
      I->Field = Statics[Idx];
      I->OpType = Types->getClass(AllClasses[CIdx]);
      break;
    }
    case Opcode::New: {
      uint64_t CIdx = S.sym(numClasses());
      if (S.failed())
        return nullptr;
      ClassSymbol *C = AllClasses[CIdx];
      if (C->IsBuiltin) {
        S.fail("new of a builtin class");
        return nullptr;
      }
      I->OpType = Types->getClass(C);
      break;
    }
    case Opcode::Call:
    case Opcode::Dispatch: {
      I->Method = decodeMethodRef();
      if (!I->Method)
        return nullptr;
      break;
    }
    }

    unsigned NumOps = expectedOperandCount(*I);
    for (unsigned K = 0; K != NumOps; ++K) {
      std::optional<PlaneKey> Plane = operandPlane(*I, K, *Ctx, nullptr);
      if (!Plane) {
        S.fail("ill-typed instruction");
        return nullptr;
      }
      Instruction *Op = decodeRef(&BB, *Plane);
      if (!Op)
        return nullptr;
      I->Operands.push_back(Op);
    }
    return I;
  }
};

} // namespace

std::vector<uint8_t> safetsa::encodeModule(TSAModule &Module,
                                           CodecMode Mode) {
  return Encoder(Module, Mode).encode();
}

std::unique_ptr<DecodedUnit> safetsa::decodeModule(ByteSpan Bytes,
                                                   std::string *Err,
                                                   const DecodeOptions &Opts) {
  return Decoder(Bytes, Opts).decode(Err);
}
