//===- ssagen/TSAGen.h - AST to SafeTSA generation ------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates SafeTSA form from the type-checked MJ AST in a single pass,
/// following the structured-language SSA construction of Brandis &
/// Mössenböck that the paper's compiler uses (§7): variable definitions
/// are tracked per path; phis are placed at if-joins, loop headers (for
/// variables assigned in the loop, pre-scanned), loop exits, and
/// break/continue merge points. Short-circuit operators are lowered to
/// if-else value merges (paper footnote 3). Parameters and constants are
/// preloaded into the entry block (§5); null checks and index checks are
/// made explicit at every access (§4).
///
//===----------------------------------------------------------------------===//

#ifndef SAFETSA_SSAGEN_TSAGEN_H
#define SAFETSA_SSAGEN_TSAGEN_H

#include "sema/ClassTable.h"
#include "tsa/Method.h"
#include "tsa/Signature.h"

#include <memory>

namespace safetsa {

/// Generation options.
struct TSAGenOptions {
  /// Insert phis eagerly at every merge point (loop headers get one per
  /// live variable, if-joins one per variable even when both paths agree),
  /// as a straightforward single-pass construction does. The superfluous
  /// ones are exactly what the paper's DCE removes ("a reduction of 31%
  /// on average in the number of phi instructions", §7). Disable for the
  /// pruned-construction ablation.
  bool EagerPhis = true;
};

/// Generates a TSAModule from a sema-annotated Program. The program must
/// have passed Sema without errors.
class TSAGenerator {
public:
  TSAGenerator(TypeContext &Types, ClassTable &Table,
               TSAGenOptions Options = TSAGenOptions())
      : Types(Types), Table(Table), Options(Options) {}

  std::unique_ptr<TSAModule> generate(const Program &P);

private:
  TypeContext &Types;
  ClassTable &Table;
  TSAGenOptions Options;
};

/// Folds a constant MJ expression (as validated by Sema::isConstantExpr)
/// to a ConstantValue. Used for static field initializers.
ConstantValue foldConstantExpr(const Expr &E);

} // namespace safetsa

#endif // SAFETSA_SSAGEN_TSAGEN_H
