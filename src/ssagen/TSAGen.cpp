//===- ssagen/TSAGen.cpp - AST to SafeTSA ---------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ssagen/TSAGen.h"

#include <algorithm>
#include <functional>
#include <set>

using namespace safetsa;

//===----------------------------------------------------------------------===//
// Constant folding (static field initializers)
//===----------------------------------------------------------------------===//

ConstantValue safetsa::foldConstantExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLiteral:
    return ConstantValue::makeInt(
        static_cast<const IntLiteralExpr &>(E).Value);
  case ExprKind::DoubleLiteral:
    return ConstantValue::makeDouble(
        static_cast<const DoubleLiteralExpr &>(E).Value);
  case ExprKind::BoolLiteral:
    return ConstantValue::makeBool(
        static_cast<const BoolLiteralExpr &>(E).Value);
  case ExprKind::CharLiteral:
    return ConstantValue::makeChar(
        static_cast<const CharLiteralExpr &>(E).Value);
  case ExprKind::NullLiteral:
    return ConstantValue::makeNull();
  case ExprKind::StringLiteral:
    return ConstantValue::makeString(
        static_cast<const StringLiteralExpr &>(E).Value);
  case ExprKind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(E);
    ConstantValue V = foldConstantExpr(*U.Operand);
    switch (U.Op) {
    case UnaryOp::Neg:
      if (V.K == ConstantValue::Kind::Double)
        return ConstantValue::makeDouble(-V.DblVal);
      return ConstantValue::makeInt(
          -static_cast<int32_t>(V.IntVal));
    case UnaryOp::Not:
      return ConstantValue::makeBool(!V.IntVal);
    case UnaryOp::BitNot:
      return ConstantValue::makeInt(~static_cast<int32_t>(V.IntVal));
    default:
      break;
    }
    return V;
  }
  case ExprKind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(E);
    ConstantValue L = foldConstantExpr(*B.Lhs);
    ConstantValue R = foldConstantExpr(*B.Rhs);
    bool IsDouble = E.Ty && E.Ty->isDouble();
    if (IsDouble) {
      double X = L.K == ConstantValue::Kind::Double
                     ? L.DblVal
                     : static_cast<double>(L.IntVal);
      double Y = R.K == ConstantValue::Kind::Double
                     ? R.DblVal
                     : static_cast<double>(R.IntVal);
      switch (B.Op) {
      case BinaryOp::Add:
        return ConstantValue::makeDouble(X + Y);
      case BinaryOp::Sub:
        return ConstantValue::makeDouble(X - Y);
      case BinaryOp::Mul:
        return ConstantValue::makeDouble(X * Y);
      case BinaryOp::Div:
        return ConstantValue::makeDouble(X / Y);
      default:
        break;
      }
      return ConstantValue::makeDouble(X);
    }
    int32_t X = static_cast<int32_t>(L.IntVal);
    int32_t Y = static_cast<int32_t>(R.IntVal);
    switch (B.Op) {
    case BinaryOp::Add:
      return ConstantValue::makeInt(X + Y);
    case BinaryOp::Sub:
      return ConstantValue::makeInt(X - Y);
    case BinaryOp::Mul:
      return ConstantValue::makeInt(X * Y);
    case BinaryOp::Div:
      return ConstantValue::makeInt(Y ? X / Y : 0);
    case BinaryOp::Rem:
      return ConstantValue::makeInt(Y ? X % Y : 0);
    case BinaryOp::BitAnd:
      return ConstantValue::makeInt(X & Y);
    case BinaryOp::BitOr:
      return ConstantValue::makeInt(X | Y);
    case BinaryOp::BitXor:
      return ConstantValue::makeInt(X ^ Y);
    case BinaryOp::Shl:
      return ConstantValue::makeInt(X << (Y & 31));
    case BinaryOp::Shr:
      return ConstantValue::makeInt(X >> (Y & 31));
    default:
      break;
    }
    return ConstantValue::makeInt(X);
  }
  case ExprKind::Cast:
    return foldConstantExpr(*static_cast<const CastExpr &>(E).Operand);
  default:
    assert(false && "not a constant expression");
    return ConstantValue::makeInt(0);
  }
}

//===----------------------------------------------------------------------===//
// Assigned-variable prescan (loop phi placement)
//===----------------------------------------------------------------------===//

namespace {

void collectAssignedExpr(const Expr &E, std::set<unsigned> &Out);

void collectAssignedStmt(const Stmt &S, std::set<unsigned> &Out) {
  switch (S.Kind) {
  case StmtKind::Block:
    for (const StmtPtr &C : static_cast<const BlockStmt &>(S).Stmts)
      collectAssignedStmt(*C, Out);
    break;
  case StmtKind::VarDecl: {
    const auto &V = static_cast<const VarDeclStmt &>(S);
    if (V.Symbol)
      Out.insert(V.Symbol->Index);
    if (V.Init)
      collectAssignedExpr(*V.Init, Out);
    break;
  }
  case StmtKind::Expr:
    collectAssignedExpr(*static_cast<const ExprStmt &>(S).E, Out);
    break;
  case StmtKind::If: {
    const auto &I = static_cast<const IfStmt &>(S);
    collectAssignedExpr(*I.Cond, Out);
    collectAssignedStmt(*I.Then, Out);
    if (I.Else)
      collectAssignedStmt(*I.Else, Out);
    break;
  }
  case StmtKind::While: {
    const auto &W = static_cast<const WhileStmt &>(S);
    collectAssignedExpr(*W.Cond, Out);
    collectAssignedStmt(*W.Body, Out);
    break;
  }
  case StmtKind::DoWhile: {
    const auto &W = static_cast<const DoWhileStmt &>(S);
    collectAssignedExpr(*W.Cond, Out);
    collectAssignedStmt(*W.Body, Out);
    break;
  }
  case StmtKind::For: {
    const auto &F = static_cast<const ForStmt &>(S);
    if (F.Init)
      collectAssignedStmt(*F.Init, Out);
    if (F.Cond)
      collectAssignedExpr(*F.Cond, Out);
    if (F.Update)
      collectAssignedExpr(*F.Update, Out);
    collectAssignedStmt(*F.Body, Out);
    break;
  }
  case StmtKind::Return: {
    const auto &R = static_cast<const ReturnStmt &>(S);
    if (R.Value)
      collectAssignedExpr(*R.Value, Out);
    break;
  }
  case StmtKind::Try: {
    const auto &T = static_cast<const TryStmt &>(S);
    collectAssignedStmt(*T.Body, Out);
    collectAssignedStmt(*T.Handler, Out);
    break;
  }
  default:
    break;
  }
}

/// Conservative syntactic test: could generating \p E emit an instruction
/// that may raise (calls, allocations, checks, integer division, checked
/// casts)?
bool exprMayRaise(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::Call:
  case ExprKind::NewObject:
  case ExprKind::NewArray:
  case ExprKind::Index:
    return true;
  case ExprKind::FieldAccess: {
    const auto &F = static_cast<const FieldAccessExpr &>(E);
    if (F.ResolvedField && F.ResolvedField->IsStatic)
      return exprMayRaise(*F.Base);
    return true; // Instance field or array length: nullcheck.
  }
  case ExprKind::Name: {
    const auto &N = static_cast<const NameExpr &>(E);
    return N.Resolution == NameResolution::FieldOfThis; // nullcheck(this)
  }
  case ExprKind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(E);
    return exprMayRaise(*U.Operand);
  }
  case ExprKind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(E);
    if ((B.Op == BinaryOp::Div || B.Op == BinaryOp::Rem) &&
        !B.Lhs->Ty->isDouble())
      return true;
    return exprMayRaise(*B.Lhs) || exprMayRaise(*B.Rhs);
  }
  case ExprKind::Assign: {
    const auto &A = static_cast<const AssignExpr &>(E);
    if ((A.Op == AssignExpr::OpKind::Div ||
         A.Op == AssignExpr::OpKind::Rem) &&
        !A.Target->Ty->isDouble())
      return true;
    return exprMayRaise(*A.Target) || exprMayRaise(*A.Value);
  }
  case ExprKind::Cast: {
    const auto &C = static_cast<const CastExpr &>(E);
    return C.Lowering == CastLowering::RefNarrow ||
           exprMayRaise(*C.Operand);
  }
  case ExprKind::Instanceof:
    return exprMayRaise(
        *static_cast<const InstanceofExpr &>(E).Operand);
  default:
    return false;
  }
}

bool stmtMayRaise(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Block:
    for (const StmtPtr &C : static_cast<const BlockStmt &>(S).Stmts)
      if (stmtMayRaise(*C))
        return true;
    return false;
  case StmtKind::VarDecl: {
    const auto &V = static_cast<const VarDeclStmt &>(S);
    return V.Init && exprMayRaise(*V.Init);
  }
  case StmtKind::Expr:
    return exprMayRaise(*static_cast<const ExprStmt &>(S).E);
  case StmtKind::If: {
    const auto &I = static_cast<const IfStmt &>(S);
    return exprMayRaise(*I.Cond) || stmtMayRaise(*I.Then) ||
           (I.Else && stmtMayRaise(*I.Else));
  }
  case StmtKind::While: {
    const auto &W = static_cast<const WhileStmt &>(S);
    return exprMayRaise(*W.Cond) || stmtMayRaise(*W.Body);
  }
  case StmtKind::DoWhile: {
    const auto &W = static_cast<const DoWhileStmt &>(S);
    return exprMayRaise(*W.Cond) || stmtMayRaise(*W.Body);
  }
  case StmtKind::For: {
    const auto &F = static_cast<const ForStmt &>(S);
    return (F.Init && stmtMayRaise(*F.Init)) ||
           (F.Cond && exprMayRaise(*F.Cond)) ||
           (F.Update && exprMayRaise(*F.Update)) || stmtMayRaise(*F.Body);
  }
  case StmtKind::Return: {
    const auto &R = static_cast<const ReturnStmt &>(S);
    return R.Value && exprMayRaise(*R.Value);
  }
  case StmtKind::Try:
    // Body exceptions are caught by the inner handler; only exceptions in
    // the handler itself escape to the enclosing context.
    return stmtMayRaise(*static_cast<const TryStmt &>(S).Handler);
  default:
    return false;
  }
}

void collectAssignedExpr(const Expr &E, std::set<unsigned> &Out) {
  switch (E.Kind) {
  case ExprKind::Assign: {
    const auto &A = static_cast<const AssignExpr &>(E);
    if (A.Target->Kind == ExprKind::Name) {
      const auto &N = static_cast<const NameExpr &>(*A.Target);
      if (N.Resolution == NameResolution::Local && N.ResolvedLocal)
        Out.insert(N.ResolvedLocal->Index);
    }
    collectAssignedExpr(*A.Target, Out);
    collectAssignedExpr(*A.Value, Out);
    break;
  }
  case ExprKind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(E);
    if (U.Op == UnaryOp::PreInc || U.Op == UnaryOp::PreDec ||
        U.Op == UnaryOp::PostInc || U.Op == UnaryOp::PostDec) {
      if (U.Operand->Kind == ExprKind::Name) {
        const auto &N = static_cast<const NameExpr &>(*U.Operand);
        if (N.Resolution == NameResolution::Local && N.ResolvedLocal)
          Out.insert(N.ResolvedLocal->Index);
      }
    }
    collectAssignedExpr(*U.Operand, Out);
    break;
  }
  case ExprKind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(E);
    collectAssignedExpr(*B.Lhs, Out);
    collectAssignedExpr(*B.Rhs, Out);
    break;
  }
  case ExprKind::FieldAccess:
    collectAssignedExpr(*static_cast<const FieldAccessExpr &>(E).Base, Out);
    break;
  case ExprKind::Index: {
    const auto &I = static_cast<const IndexExpr &>(E);
    collectAssignedExpr(*I.Base, Out);
    collectAssignedExpr(*I.Index, Out);
    break;
  }
  case ExprKind::Call: {
    const auto &C = static_cast<const CallExpr &>(E);
    if (C.Base)
      collectAssignedExpr(*C.Base, Out);
    for (const ExprPtr &A : C.Args)
      collectAssignedExpr(*A, Out);
    break;
  }
  case ExprKind::NewObject:
    for (const ExprPtr &A : static_cast<const NewObjectExpr &>(E).Args)
      collectAssignedExpr(*A, Out);
    break;
  case ExprKind::NewArray:
    collectAssignedExpr(*static_cast<const NewArrayExpr &>(E).Length, Out);
    break;
  case ExprKind::Cast:
    collectAssignedExpr(*static_cast<const CastExpr &>(E).Operand, Out);
    break;
  case ExprKind::Instanceof:
    collectAssignedExpr(*static_cast<const InstanceofExpr &>(E).Operand, Out);
    break;
  default:
    break;
  }
}

//===----------------------------------------------------------------------===//
// Per-method generator
//===----------------------------------------------------------------------===//

using VarMap = std::map<unsigned, Instruction *>;

struct LoopCtx {
  /// (local index, header phi) pairs, in local-index order.
  std::vector<std::pair<unsigned, Instruction *>> HeaderPhis;
  /// Reaching definitions at each break, in break order (== exit-block
  /// predecessor order after the decision block).
  std::vector<VarMap> BreakDefs;
  /// For-loop update expression: run before every back edge.
  const Expr *ForUpdate = nullptr;
  /// Do-while condition: test (and conditionally break) before continuing.
  const Expr *DoWhileCond = nullptr;
};

struct TryCtx {
  BasicBlock *CatchEntry = nullptr;
  /// (local index, catch-entry phi): one operand pushed per exception
  /// edge, mirroring the paper's "special exception-handling phi-node".
  std::vector<std::pair<unsigned, Instruction *>> CatchPhis;
  unsigned NumEdges = 0;
};

class MethodGen {
public:
  MethodGen(TypeContext &Types, ClassTable &Table, const MethodDecl &Decl,
            TSAModule &Module, const TSAGenOptions &Options)
      : Types(Types), Table(Table), Ctx{Types, Table}, Decl(Decl),
        Module(Module), Options(Options) {}

  std::unique_ptr<TSAMethod> run() {
    M = std::make_unique<TSAMethod>();
    M->Symbol = Decl.Symbol;

    Entry = M->createBlock();
    M->Root.push_back(M->createBasicNode(Entry));

    // Preload `this` and the declared parameters (paper §5).
    bool IsInstance = !Decl.Symbol->IsStatic;
    if (IsInstance) {
      ThisVal = preloadParam(0, Types.getClass(Decl.Symbol->Owner));
      ThisType = Types.getClass(Decl.Symbol->Owner);
    }
    unsigned Shift = IsInstance ? 1 : 0;
    for (size_t I = 0; I != Decl.Params.size(); ++I) {
      Instruction *P = preloadParam(static_cast<unsigned>(I) + Shift,
                                    Decl.Symbol->ParamTys[I]);
      Defs[Decl.Params[I].Symbol->Index] = P;
    }

    CurSeq = &M->Root;
    Reach = true;
    startBlock();
    genStmts(Decl.Body->Stmts);

    if (Reach) {
      assert(Decl.Symbol->RetTy->isVoid() &&
             "sema guarantees non-void methods always return");
      CSTNode *Ret = M->createNode();
      Ret->K = CSTNode::Kind::Return;
      CurSeq->push_back(std::move(Ret));
    }
    return std::move(M);
  }

private:
  TypeContext &Types;
  ClassTable &Table;
  PlaneContext Ctx;
  const MethodDecl &Decl;
  TSAModule &Module;
  const TSAGenOptions &Options;

  std::unique_ptr<TSAMethod> M;
  BasicBlock *Entry = nullptr;
  CSTSeq *CurSeq = nullptr;
  BasicBlock *CurBlock = nullptr;
  bool Reach = true;

  Instruction *ThisVal = nullptr;
  Type *ThisType = nullptr;
  VarMap Defs;
  std::vector<LoopCtx *> Loops;
  std::vector<TryCtx *> Tries;
  /// The CST node of the current block (for RaisesToCatch flagging).
  CSTNode *CurBasicNode = nullptr;
  std::vector<std::pair<std::pair<ConstantValue, Type *>, Instruction *>>
      ConstPool;

  //===--------------------------------------------------------------------===//
  // Emission helpers
  //===--------------------------------------------------------------------===//

  Instruction *emit(Instruction *I) {
    assert(CurBlock && "no current block");
    Instruction *Raw = CurBlock->append(I);
    // The paper's exception translation (§7): inside a try region, every
    // potentially-raising instruction ends its subblock, the subblock is
    // flagged with an exception edge to the innermost handler, and the
    // handler's phis receive the reaching definitions at this point.
    if (Raw->mayRaise() && !Tries.empty()) {
      TryCtx &TC = *Tries.back();
      for (auto &[Idx, Phi] : TC.CatchPhis)
        Phi->Operands.push_back(Defs.at(Idx));
      ++TC.NumEdges;
      assert(CurBasicNode && CurBasicNode->BB == CurBlock &&
             "current CST node out of sync");
      CurBasicNode->RaisesToCatch = true;
      startBlock(); // Begin the next linked subblock.
    }
    return Raw;
  }

  Instruction *make(Opcode Op) { return M->createInst(Op); }

  Instruction *preloadParam(unsigned Index, Type *Ty) {
    auto I = make(Opcode::Param);
    I->ParamIndex = Index;
    I->OpType = Ty;
    return Entry->append(std::move(I));
  }

  /// Interns a constant in the entry block (the paper's constant pool).
  Instruction *getConst(ConstantValue C, Type *Ty) {
    for (auto &Slot : ConstPool)
      if (Slot.first.second == Ty && Slot.first.first == C)
        return Slot.second;
    auto I = make(Opcode::Const);
    I->C = C;
    I->OpType = Ty;
    Instruction *Raw = Entry->append(std::move(I));
    ConstPool.push_back({{std::move(C), Ty}, Raw});
    return Raw;
  }

  Instruction *getIntConst(int64_t V) {
    return getConst(ConstantValue::makeInt(V), Types.getInt());
  }
  Instruction *getBoolConst(bool V) {
    return getConst(ConstantValue::makeBool(V), Types.getBoolean());
  }
  Instruction *getNullConst(Type *RefTy) {
    return getConst(ConstantValue::makeNull(), RefTy);
  }

  Instruction *defaultValue(Type *Ty) {
    if (Ty->isInt())
      return getIntConst(0);
    if (Ty->isDouble())
      return getConst(ConstantValue::makeDouble(0.0), Types.getDouble());
    if (Ty->isBoolean())
      return getBoolConst(false);
    if (Ty->isChar())
      return getConst(ConstantValue::makeChar('\0'), Types.getChar());
    return getNullConst(Ty);
  }

  Instruction *prim(PrimOp Op, SmallVector<Instruction *, 3> Ops,
                    Type *Aux = nullptr) {
    auto I = make(primOpMayRaise(Op) ? Opcode::XPrimitive
                                     : Opcode::Primitive);
    I->Prim = Op;
    I->OpType = primOpOperandType(Op, Ctx);
    I->AuxType = Aux;
    I->Operands = std::move(Ops);
    return emit(std::move(I));
  }

  Instruction *nullCheck(Instruction *Ref, Type *RefTy) {
    auto I = make(Opcode::NullCheck);
    I->OpType = RefTy;
    I->Operands = {Ref};
    return emit(std::move(I));
  }

  /// Free plane conversion (downcast). No-op when source and target planes
  /// coincide.
  Instruction *downcast(Instruction *V, Type *From, bool FromSafe, Type *To,
                        bool ToSafe) {
    if (From == To && FromSafe == ToSafe)
      return V;
    auto I = make(Opcode::Downcast);
    I->OpType = To;
    I->AuxType = From;
    I->SrcSafe = FromSafe;
    I->DstSafe = ToSafe;
    I->Operands = {V};
    return emit(std::move(I));
  }

  Instruction *toObjectPlane(Instruction *V, Type *From) {
    return downcast(V, From, false, Ctx.objectType(), false);
  }

  Instruction *makePhi(Type *Ty, SmallVector<Instruction *, 3> Ops,
                       BasicBlock *Block) {
    auto I = make(Opcode::Phi);
    I->OpType = Ty;
    I->Operands = std::move(Ops);
    return Block->append(std::move(I));
  }

  void startBlock() {
    CurBlock = M->createBlock();
    auto Node = M->createBasicNode(CurBlock);
    CurBasicNode = Node;
    CurSeq->push_back(std::move(Node));
  }

  //===--------------------------------------------------------------------===//
  // Merging
  //===--------------------------------------------------------------------===//

  Type *localType(unsigned Index) const {
    return Decl.Locals[Index]->Ty;
  }

  /// Merges reaching definitions from several predecessors (in predecessor
  /// order) into the current (just-started) block. With eager phis
  /// (paper-faithful single-pass construction) every merged variable gets
  /// a phi; otherwise only variables whose paths disagree do.
  VarMap mergeDefs(const std::vector<const VarMap *> &Incoming) {
    assert(!Incoming.empty() && "merging zero paths");
    if (Incoming.size() == 1)
      return *Incoming[0];
    VarMap Out;
    for (const auto &[Idx, First] : *Incoming[0]) {
      bool InAll = true;
      bool Same = true;
      SmallVector<Instruction *, 3> Ops;
      Ops.push_back(First);
      for (size_t K = 1; K < Incoming.size() && InAll; ++K) {
        auto It = Incoming[K]->find(Idx);
        if (It == Incoming[K]->end()) {
          InAll = false;
          break;
        }
        Ops.push_back(It->second);
        if (It->second != First)
          Same = false;
      }
      if (!InAll)
        continue;
      if (Same && !Options.EagerPhis)
        Out[Idx] = First;
      else
        Out[Idx] = makePhi(localType(Idx), std::move(Ops), CurBlock);
    }
    return Out;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void genStmts(const std::vector<StmtPtr> &Stmts) {
    for (const StmtPtr &S : Stmts) {
      if (!Reach)
        return; // Unreachable code after return/break/continue is dropped.
      genStmt(*S);
    }
  }

  /// Generates \p Body into \p Seq as a fresh sub-sequence; returns true
  /// when control can fall out the end. Restores the surrounding sequence
  /// and block.
  template <typename Fn> bool genArm(CSTSeq &Seq, Fn &&Body) {
    CSTSeq *SavedSeq = CurSeq;
    BasicBlock *SavedBlock = CurBlock;
    CSTNode *SavedNode = CurBasicNode;
    bool SavedReach = Reach;
    CurSeq = &Seq;
    Reach = true;
    startBlock();
    Body();
    bool Fell = Reach;
    CurSeq = SavedSeq;
    CurBlock = SavedBlock;
    CurBasicNode = SavedNode;
    Reach = SavedReach;
    return Fell;
  }

  void genStmt(const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Block:
      genStmts(static_cast<const BlockStmt &>(S).Stmts);
      return;
    case StmtKind::Empty:
      return;
    case StmtKind::VarDecl: {
      const auto &V = static_cast<const VarDeclStmt &>(S);
      Instruction *Init =
          V.Init ? genExpr(*V.Init) : defaultValue(V.Symbol->Ty);
      Defs[V.Symbol->Index] = Init;
      return;
    }
    case StmtKind::Expr:
      genExpr(*static_cast<const ExprStmt &>(S).E);
      return;
    case StmtKind::If:
      genIf(static_cast<const IfStmt &>(S));
      return;
    case StmtKind::While: {
      const auto &W = static_cast<const WhileStmt &>(S);
      genLoop(W.Cond.get(), *W.Body, /*ForUpdate=*/nullptr,
              /*DoWhileCond=*/nullptr);
      return;
    }
    case StmtKind::For: {
      const auto &F = static_cast<const ForStmt &>(S);
      if (F.Init)
        genStmt(*F.Init);
      genLoop(F.Cond.get(), *F.Body, F.Update.get(), nullptr);
      return;
    }
    case StmtKind::DoWhile: {
      // do { B } while (c)  ==  while (true) { B; if (!c) break; }
      // with continue re-testing c first (handled in genContinue).
      const auto &W = static_cast<const DoWhileStmt &>(S);
      genLoop(nullptr, *W.Body, nullptr, W.Cond.get());
      return;
    }
    case StmtKind::Return: {
      const auto &R = static_cast<const ReturnStmt &>(S);
      CSTNode *Node = M->createNode();
      Node->K = CSTNode::Kind::Return;
      if (R.Value)
        Node->RetVal = genExpr(*R.Value);
      CurSeq->push_back(std::move(Node));
      Reach = false;
      return;
    }
    case StmtKind::Break: {
      assert(!Loops.empty() && "sema guarantees break inside a loop");
      Loops.back()->BreakDefs.push_back(Defs);
      CSTNode *Node = M->createNode();
      Node->K = CSTNode::Kind::Break;
      CurSeq->push_back(std::move(Node));
      Reach = false;
      return;
    }
    case StmtKind::Continue:
      genContinue();
      return;
    case StmtKind::Try:
      genTry(static_cast<const TryStmt &>(S));
      return;
    }
  }

  void genTry(const TryStmt &S) {
    // A try whose body cannot raise needs no handler at all.
    if (!stmtMayRaise(*S.Body)) {
      genStmt(*S.Body);
      return;
    }

    std::set<unsigned> Assigned;
    collectAssignedStmt(*S.Body, Assigned);

    TryCtx TC;
    TC.CatchEntry = M->createBlock();
    // The "special exception-handling phi-node[s]": one per variable that
    // is live at try entry and assigned in the body; each exception edge
    // contributes the definitions reaching its raise point.
    VarMap Base = Defs;
    for (auto &[Idx, Def] : Base)
      if (Assigned.count(Idx)) {
        Instruction *Phi = makePhi(localType(Idx), {}, TC.CatchEntry);
        TC.CatchPhis.push_back({Idx, Phi});
      }

    CSTNode *Node = M->createNode();
    Node->K = CSTNode::Kind::Try;

    Tries.push_back(&TC);
    bool BodyFell = genArm(Node->Then, [&] { genStmt(*S.Body); });
    Tries.pop_back();
    VarMap BodyDefs = Defs;

    if (TC.NumEdges == 0) {
      // All potential raisers turned out unreachable: drop the handler
      // and splice the body into the enclosing sequence.
      std::erase_if(M->Blocks,
                    [&](const BasicBlock *B) { return B == TC.CatchEntry; });
      for (auto &Child : Node->Then)
        CurSeq->push_back(std::move(Child));
      if (!Node->Then.empty()) {
        // Restore the current-block notion to the body's trailing block.
        for (auto It = CurSeq->rbegin(); It != CurSeq->rend(); ++It)
          if ((*It)->K == CSTNode::Kind::Basic) {
            CurBlock = (*It)->BB;
            CurBasicNode = *It;
            break;
          }
      }
      Reach = BodyFell;
      return;
    }

    // Handler: starts in the pre-created catch-entry block, with the
    // catch phis as the reaching definitions of body-assigned variables.
    Defs = Base;
    for (auto &[Idx, Phi] : TC.CatchPhis)
      Defs[Idx] = Phi;
    bool CatchFell;
    VarMap CatchDefs;
    {
      CSTSeq *SavedSeq = CurSeq;
      BasicBlock *SavedBlock = CurBlock;
      CSTNode *SavedNode = CurBasicNode;
      bool SavedReach = Reach;
      CurSeq = &Node->Else;
      Reach = true;
      auto EntryNode = M->createBasicNode(TC.CatchEntry);
      CurBasicNode = EntryNode;
      CurBlock = TC.CatchEntry;
      CurSeq->push_back(std::move(EntryNode));
      genStmt(*S.Handler);
      CatchFell = Reach;
      CatchDefs = Defs;
      CurSeq = SavedSeq;
      CurBlock = SavedBlock;
      CurBasicNode = SavedNode;
      Reach = SavedReach;
    }

    CurSeq->push_back(std::move(Node));

    if (!BodyFell && !CatchFell) {
      Reach = false;
      return;
    }
    startBlock(); // Join; predecessor order: body exit, then handler exit.
    std::vector<const VarMap *> Incoming;
    if (BodyFell)
      Incoming.push_back(&BodyDefs);
    if (CatchFell)
      Incoming.push_back(&CatchDefs);
    Defs = mergeDefs(Incoming);
  }

  void genIf(const IfStmt &S) {
    Instruction *CondV = genExpr(*S.Cond);
    CSTNode *Node = M->createNode();
    Node->K = CSTNode::Kind::If;
    Node->Cond = CondV;

    VarMap Base = Defs;
    bool ThenFell = genArm(Node->Then, [&] { genStmt(*S.Then); });
    VarMap ThenDefs = std::move(Defs);
    Defs = Base;

    bool ElseFell = true;
    VarMap ElseDefs = Base;
    if (S.Else) {
      ElseFell = genArm(Node->Else, [&] { genStmt(*S.Else); });
      ElseDefs = std::move(Defs);
      Defs = Base;
    }

    CurSeq->push_back(std::move(Node));

    if (!ThenFell && !ElseFell) {
      Reach = false;
      return;
    }
    startBlock(); // Join; predecessors: then-exit (if any), else-exit.
    std::vector<const VarMap *> Incoming;
    if (ThenFell)
      Incoming.push_back(&ThenDefs);
    if (ElseFell)
      Incoming.push_back(&ElseDefs);
    Defs = mergeDefs(Incoming);
  }

  /// Shared structured-loop generation. \p Cond may be null (infinite /
  /// do-while loop => constant true). \p ForUpdate runs before each back
  /// edge; \p DoWhileCond turns the body tail and continues into
  /// "if (!c) break".
  void genLoop(const Expr *Cond, const Stmt &Body, const Expr *ForUpdate,
               const Expr *DoWhileCond) {
    std::set<unsigned> Assigned;
    collectAssignedStmt(Body, Assigned);
    if (Cond)
      collectAssignedExpr(*Cond, Assigned);
    if (ForUpdate)
      collectAssignedExpr(*ForUpdate, Assigned);
    if (DoWhileCond)
      collectAssignedExpr(*DoWhileCond, Assigned);

    CSTNode *Node = M->createNode();
    Node->K = CSTNode::Kind::Loop;

    LoopCtx LC;
    LC.ForUpdate = ForUpdate;
    LC.DoWhileCond = DoWhileCond;

    // Header: create phis for live variables, with the preheader
    // definition as first operand. Eager mode (paper-faithful single-pass
    // construction) creates one for *every* live variable; the superfluous
    // ones become trivial and are exactly what the paper's DCE pass
    // removes. Pruned mode restricts to variables assigned in the loop.
    genArm(Node->Header, [&] {
      for (auto &[Idx, Def] : Defs) {
        if (!Options.EagerPhis && !Assigned.count(Idx))
          continue;
        Instruction *Phi = makePhi(localType(Idx), {Def}, CurBlock);
        Defs[Idx] = Phi;
        LC.HeaderPhis.push_back({Idx, Phi});
      }
      Node->Cond = Cond ? genExpr(*Cond) : getBoolConst(true);
    });
    // genArm restored Defs' *map object*? No: Defs was mutated in place.
    // That is intended: the header phis become the reaching definitions
    // both inside and after the loop.
    VarMap AtDecision = Defs;

    Loops.push_back(&LC);
    bool BodyFell = genArm(Node->Body, [&] {
      genStmt(Body);
      if (Reach && DoWhileCond)
        genCondBreak(*DoWhileCond);
      if (Reach && ForUpdate)
        genExpr(*ForUpdate);
    });
    if (BodyFell)
      for (auto &[Idx, Phi] : LC.HeaderPhis)
        Phi->Operands.push_back(Defs.at(Idx));
    Loops.pop_back();

    CurSeq->push_back(std::move(Node));

    // Exit block: predecessors are the decision block then each break.
    startBlock();
    std::vector<const VarMap *> Incoming;
    Incoming.push_back(&AtDecision);
    for (const VarMap &B : LC.BreakDefs)
      Incoming.push_back(&B);
    Defs = mergeDefs(Incoming);
  }

  /// Emits "if (!c) break;" — the do-while tail.
  void genCondBreak(const Expr &Cond) {
    Instruction *CondV = genExpr(Cond);
    Instruction *NotV = prim(PrimOp::NotB, {CondV});
    CSTNode *Node = M->createNode();
    Node->K = CSTNode::Kind::If;
    Node->Cond = NotV;
    genArm(Node->Then, [&] {
      assert(!Loops.empty());
      Loops.back()->BreakDefs.push_back(Defs);
      CSTNode *Brk = M->createNode();
      Brk->K = CSTNode::Kind::Break;
      CurSeq->push_back(std::move(Brk));
      Reach = false;
    });
    CurSeq->push_back(std::move(Node));
    startBlock(); // Join: single fall-through predecessor (the decision
                  // block); definitions are unchanged.
  }

  void genContinue() {
    assert(!Loops.empty() && "sema guarantees continue inside a loop");
    LoopCtx &LC = *Loops.back();
    // For-loops run their update before the back edge; do-whiles re-test
    // the condition (both may assign variables).
    if (LC.ForUpdate)
      genExpr(*LC.ForUpdate);
    if (LC.DoWhileCond)
      genCondBreak(*LC.DoWhileCond);
    if (!Reach)
      return;
    for (auto &[Idx, Phi] : LC.HeaderPhis)
      Phi->Operands.push_back(Defs.at(Idx));
    CSTNode *Node = M->createNode();
    Node->K = CSTNode::Kind::Continue;
    CurSeq->push_back(std::move(Node));
    Reach = false;
  }

  //===--------------------------------------------------------------------===//
  // L-values
  //===--------------------------------------------------------------------===//

  struct LValue {
    enum class Kind : uint8_t { Local, Field, Elt, Static } K;
    unsigned LocalIdx = 0;
    FieldSymbol *F = nullptr;
    Instruction *SafeObj = nullptr;
    Instruction *SafeIdx = nullptr;
    Type *ObjType = nullptr; // Static type used as the access OpType.
  };

  LValue genLValue(const Expr &Target) {
    LValue LV;
    switch (Target.Kind) {
    case ExprKind::Name: {
      const auto &N = static_cast<const NameExpr &>(Target);
      switch (N.Resolution) {
      case NameResolution::Local:
        LV.K = LValue::Kind::Local;
        LV.LocalIdx = N.ResolvedLocal->Index;
        return LV;
      case NameResolution::FieldOfThis:
        LV.K = LValue::Kind::Field;
        LV.F = N.ResolvedField;
        LV.ObjType = ThisType;
        LV.SafeObj = nullCheck(ThisVal, ThisType);
        return LV;
      case NameResolution::StaticField:
        LV.K = LValue::Kind::Static;
        LV.F = N.ResolvedField;
        return LV;
      default:
        break;
      }
      assert(false && "unresolved name in codegen");
      return LV;
    }
    case ExprKind::FieldAccess: {
      const auto &F = static_cast<const FieldAccessExpr &>(Target);
      assert(!F.IsArrayLength && "length is not assignable");
      if (F.ResolvedField->IsStatic) {
        LV.K = LValue::Kind::Static;
        LV.F = F.ResolvedField;
        return LV;
      }
      Instruction *Obj = genExpr(*F.Base);
      LV.K = LValue::Kind::Field;
      LV.F = F.ResolvedField;
      LV.ObjType = F.Base->Ty;
      LV.SafeObj = nullCheck(Obj, LV.ObjType);
      return LV;
    }
    case ExprKind::Index: {
      const auto &I = static_cast<const IndexExpr &>(Target);
      Instruction *Arr = genExpr(*I.Base);
      Type *ArrTy = I.Base->Ty;
      Instruction *SafeArr = nullCheck(Arr, ArrTy);
      Instruction *Idx = genExpr(*I.Index);
      auto Check = make(Opcode::IndexCheck);
      Check->OpType = ArrTy;
      Check->Operands = {SafeArr, Idx};
      LV.K = LValue::Kind::Elt;
      LV.ObjType = ArrTy;
      LV.SafeObj = SafeArr;
      LV.SafeIdx = emit(std::move(Check));
      return LV;
    }
    default:
      assert(false && "expression is not an l-value");
      return LV;
    }
  }

  Instruction *loadLValue(const LValue &LV) {
    switch (LV.K) {
    case LValue::Kind::Local: {
      auto It = Defs.find(LV.LocalIdx);
      assert(It != Defs.end() && "use of undefined local");
      return It->second;
    }
    case LValue::Kind::Field: {
      auto I = make(Opcode::GetField);
      I->OpType = LV.ObjType;
      I->Field = LV.F;
      I->Operands = {LV.SafeObj};
      return emit(std::move(I));
    }
    case LValue::Kind::Elt: {
      auto I = make(Opcode::GetElt);
      I->OpType = LV.ObjType;
      I->Operands = {LV.SafeObj, LV.SafeIdx};
      return emit(std::move(I));
    }
    case LValue::Kind::Static: {
      auto I = make(Opcode::GetStatic);
      I->OpType = Types.getClass(LV.F->Owner);
      I->Field = LV.F;
      return emit(std::move(I));
    }
    }
    return nullptr;
  }

  void storeLValue(const LValue &LV, Instruction *V) {
    switch (LV.K) {
    case LValue::Kind::Local:
      Defs[LV.LocalIdx] = V;
      return;
    case LValue::Kind::Field: {
      auto I = make(Opcode::SetField);
      I->OpType = LV.ObjType;
      I->Field = LV.F;
      I->Operands = {LV.SafeObj, V};
      emit(std::move(I));
      return;
    }
    case LValue::Kind::Elt: {
      auto I = make(Opcode::SetElt);
      I->OpType = LV.ObjType;
      I->Operands = {LV.SafeObj, LV.SafeIdx, V};
      emit(std::move(I));
      return;
    }
    case LValue::Kind::Static: {
      auto I = make(Opcode::SetStatic);
      I->OpType = Types.getClass(LV.F->Owner);
      I->Field = LV.F;
      I->Operands = {V};
      emit(std::move(I));
      return;
    }
    }
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  /// Generates a structured value merge: if (CondV) GenThen else GenElse,
  /// producing a phi of the two results in the join block. Used for the
  /// short-circuit lowering of && and || (paper footnote 3).
  Instruction *genIfValue(Instruction *CondV,
                          const std::function<Instruction *()> &GenThen,
                          const std::function<Instruction *()> &GenElse,
                          Type *Ty) {
    CSTNode *Node = M->createNode();
    Node->K = CSTNode::Kind::If;
    Node->Cond = CondV;

    VarMap Base = Defs;
    Instruction *ThenV = nullptr, *ElseV = nullptr;
    genArm(Node->Then, [&] { ThenV = GenThen(); });
    VarMap ThenDefs = std::move(Defs);
    Defs = Base;
    genArm(Node->Else, [&] { ElseV = GenElse(); });
    VarMap ElseDefs = std::move(Defs);
    Defs = Base;

    CurSeq->push_back(std::move(Node));
    startBlock();
    Defs = mergeDefs({&ThenDefs, &ElseDefs});
    if (ThenV == ElseV)
      return ThenV;
    return makePhi(Ty, {ThenV, ElseV}, CurBlock);
  }

  PrimOp arithOp(BinaryOp Op, bool IsDouble) {
    switch (Op) {
    case BinaryOp::Add:
      return IsDouble ? PrimOp::AddD : PrimOp::AddI;
    case BinaryOp::Sub:
      return IsDouble ? PrimOp::SubD : PrimOp::SubI;
    case BinaryOp::Mul:
      return IsDouble ? PrimOp::MulD : PrimOp::MulI;
    case BinaryOp::Div:
      return IsDouble ? PrimOp::DivD : PrimOp::DivI;
    case BinaryOp::Rem:
      assert(!IsDouble && "no double remainder in MJ");
      return PrimOp::RemI;
    case BinaryOp::BitAnd:
      return PrimOp::AndI;
    case BinaryOp::BitOr:
      return PrimOp::OrI;
    case BinaryOp::BitXor:
      return PrimOp::XorI;
    case BinaryOp::Shl:
      return PrimOp::ShlI;
    case BinaryOp::Shr:
      return PrimOp::ShrI;
    case BinaryOp::Lt:
      return IsDouble ? PrimOp::CmpLtD : PrimOp::CmpLtI;
    case BinaryOp::Le:
      return IsDouble ? PrimOp::CmpLeD : PrimOp::CmpLeI;
    case BinaryOp::Gt:
      return IsDouble ? PrimOp::CmpGtD : PrimOp::CmpGtI;
    case BinaryOp::Ge:
      return IsDouble ? PrimOp::CmpGeD : PrimOp::CmpGeI;
    case BinaryOp::Eq:
      return IsDouble ? PrimOp::CmpEqD : PrimOp::CmpEqI;
    case BinaryOp::Ne:
      return IsDouble ? PrimOp::CmpNeD : PrimOp::CmpNeI;
    default:
      assert(false && "not an arithmetic operator");
      return PrimOp::AddI;
    }
  }

  Instruction *genExpr(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::IntLiteral:
      return getIntConst(static_cast<const IntLiteralExpr &>(E).Value);
    case ExprKind::DoubleLiteral:
      return getConst(ConstantValue::makeDouble(
                          static_cast<const DoubleLiteralExpr &>(E).Value),
                      Types.getDouble());
    case ExprKind::BoolLiteral:
      return getBoolConst(static_cast<const BoolLiteralExpr &>(E).Value);
    case ExprKind::CharLiteral:
      return getConst(ConstantValue::makeChar(
                          static_cast<const CharLiteralExpr &>(E).Value),
                      Types.getChar());
    case ExprKind::StringLiteral:
      return getConst(ConstantValue::makeString(
                          static_cast<const StringLiteralExpr &>(E).Value),
                      Types.getArray(Types.getChar()));
    case ExprKind::NullLiteral:
      return getNullConst(Ctx.objectType());
    case ExprKind::This:
      assert(ThisVal && "'this' in static context");
      return ThisVal;
    case ExprKind::Name:
    case ExprKind::FieldAccess: {
      // Array length is a read-only pseudo field.
      if (E.Kind == ExprKind::FieldAccess) {
        const auto &F = static_cast<const FieldAccessExpr &>(E);
        if (F.IsArrayLength) {
          Instruction *Arr = genExpr(*F.Base);
          Instruction *Safe = nullCheck(Arr, F.Base->Ty);
          auto I = make(Opcode::ArrayLength);
          I->OpType = F.Base->Ty;
          I->Operands = {Safe};
          return emit(std::move(I));
        }
      }
      LValue LV = genLValue(E);
      return loadLValue(LV);
    }
    case ExprKind::Index: {
      LValue LV = genLValue(E);
      return loadLValue(LV);
    }
    case ExprKind::Call:
      return genCall(static_cast<const CallExpr &>(E));
    case ExprKind::NewObject:
      return genNewObject(static_cast<const NewObjectExpr &>(E));
    case ExprKind::NewArray: {
      const auto &N = static_cast<const NewArrayExpr &>(E);
      Instruction *Len = genExpr(*N.Length);
      auto I = make(Opcode::NewArray);
      I->OpType = E.Ty;
      I->Operands = {Len};
      return emit(std::move(I));
    }
    case ExprKind::Unary:
      return genUnary(static_cast<const UnaryExpr &>(E));
    case ExprKind::Binary:
      return genBinary(static_cast<const BinaryExpr &>(E));
    case ExprKind::Assign:
      return genAssign(static_cast<const AssignExpr &>(E));
    case ExprKind::Cast:
      return genCast(static_cast<const CastExpr &>(E));
    case ExprKind::Instanceof: {
      const auto &I = static_cast<const InstanceofExpr &>(E);
      Instruction *V = genExpr(*I.Operand);
      V = toObjectPlane(V, valueType(*I.Operand));
      return prim(PrimOp::InstanceOf, {V}, I.ResolvedTarget);
    }
    }
    return nullptr;
  }

  /// The plane type a generated expression value lives on. Null literals
  /// are materialized on the Object plane.
  Type *valueType(const Expr &E) {
    if (E.Ty->isNull())
      return Ctx.objectType();
    return E.Ty;
  }

  Instruction *genUnary(const UnaryExpr &E) {
    switch (E.Op) {
    case UnaryOp::Neg: {
      Instruction *V = genExpr(*E.Operand);
      return prim(E.Operand->Ty->isDouble() ? PrimOp::NegD : PrimOp::NegI,
                  {V});
    }
    case UnaryOp::Not:
      return prim(PrimOp::NotB, {genExpr(*E.Operand)});
    case UnaryOp::BitNot:
      return prim(PrimOp::NotI, {genExpr(*E.Operand)});
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec: {
      bool IsInc = E.Op == UnaryOp::PreInc || E.Op == UnaryOp::PostInc;
      bool IsPost = E.Op == UnaryOp::PostInc || E.Op == UnaryOp::PostDec;
      LValue LV = genLValue(*E.Operand);
      Instruction *Old = loadLValue(LV);
      Type *Ty = E.Operand->Ty;
      Instruction *NewV = nullptr;
      if (Ty->isDouble()) {
        Instruction *One =
            getConst(ConstantValue::makeDouble(1.0), Types.getDouble());
        NewV = prim(IsInc ? PrimOp::AddD : PrimOp::SubD, {Old, One});
      } else if (Ty->isChar()) {
        Instruction *AsInt = prim(PrimOp::CharToInt, {Old});
        Instruction *Stepped = prim(IsInc ? PrimOp::AddI : PrimOp::SubI,
                                    {AsInt, getIntConst(1)});
        NewV = prim(PrimOp::IntToChar, {Stepped});
      } else {
        NewV = prim(IsInc ? PrimOp::AddI : PrimOp::SubI,
                    {Old, getIntConst(1)});
      }
      storeLValue(LV, NewV);
      return IsPost ? Old : NewV;
    }
    }
    return nullptr;
  }

  Instruction *genBinary(const BinaryExpr &E) {
    switch (E.Op) {
    case BinaryOp::LAnd: {
      Instruction *L = genExpr(*E.Lhs);
      return genIfValue(
          L, [&] { return genExpr(*E.Rhs); },
          [&] { return getBoolConst(false); }, Types.getBoolean());
    }
    case BinaryOp::LOr: {
      Instruction *L = genExpr(*E.Lhs);
      return genIfValue(
          L, [&] { return getBoolConst(true); },
          [&] { return genExpr(*E.Rhs); }, Types.getBoolean());
    }
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      Type *LTy = E.Lhs->Ty;
      if (LTy->isRef() || E.Rhs->Ty->isRef()) {
        Instruction *L = toObjectPlane(genExpr(*E.Lhs), valueType(*E.Lhs));
        Instruction *R = toObjectPlane(genExpr(*E.Rhs), valueType(*E.Rhs));
        return prim(E.Op == BinaryOp::Eq ? PrimOp::CmpEqR : PrimOp::CmpNeR,
                    {L, R});
      }
      if (LTy->isBoolean()) {
        Instruction *L = genExpr(*E.Lhs);
        Instruction *R = genExpr(*E.Rhs);
        return prim(E.Op == BinaryOp::Eq ? PrimOp::CmpEqB : PrimOp::CmpNeB,
                    {L, R});
      }
      break; // Numeric: fall through to the arithmetic path.
    }
    default:
      break;
    }
    Instruction *L = genExpr(*E.Lhs);
    Instruction *R = genExpr(*E.Rhs);
    bool IsDouble = E.Lhs->Ty->isDouble();
    return prim(arithOp(E.Op, IsDouble), {L, R});
  }

  Instruction *genAssign(const AssignExpr &E) {
    LValue LV = genLValue(*E.Target);
    if (E.Op == AssignExpr::OpKind::None) {
      Instruction *V = genExpr(*E.Value);
      storeLValue(LV, V);
      return V;
    }
    Instruction *Old = loadLValue(LV);
    Instruction *Rhs = genExpr(*E.Value);
    bool IsDouble = E.Target->Ty->isDouble();
    BinaryOp Op;
    switch (E.Op) {
    case AssignExpr::OpKind::Add:
      Op = BinaryOp::Add;
      break;
    case AssignExpr::OpKind::Sub:
      Op = BinaryOp::Sub;
      break;
    case AssignExpr::OpKind::Mul:
      Op = BinaryOp::Mul;
      break;
    case AssignExpr::OpKind::Div:
      Op = BinaryOp::Div;
      break;
    default:
      Op = BinaryOp::Rem;
      break;
    }
    Instruction *NewV = prim(arithOp(Op, IsDouble), {Old, Rhs});
    storeLValue(LV, NewV);
    return NewV;
  }

  Instruction *genCast(const CastExpr &E) {
    switch (E.Lowering) {
    case CastLowering::Identity:
      return genExpr(*E.Operand);
    case CastLowering::IntToDouble: {
      Instruction *V = genExpr(*E.Operand);
      if (E.Operand->Ty->isChar())
        V = prim(PrimOp::CharToInt, {V});
      return prim(PrimOp::IntToDouble, {V});
    }
    case CastLowering::CharToInt: {
      Instruction *V = genExpr(*E.Operand);
      return E.Operand->Ty->isChar() ? prim(PrimOp::CharToInt, {V}) : V;
    }
    case CastLowering::DoubleToInt:
      return prim(PrimOp::DoubleToInt, {genExpr(*E.Operand)});
    case CastLowering::IntToChar: {
      Instruction *V = genExpr(*E.Operand);
      if (E.Operand->Ty->isChar())
        return V;
      return prim(PrimOp::IntToChar, {V});
    }
    case CastLowering::DoubleToChar: {
      Instruction *V = prim(PrimOp::DoubleToInt, {genExpr(*E.Operand)});
      return prim(PrimOp::IntToChar, {V});
    }
    case CastLowering::RefWiden: {
      // Null literals are materialized directly on the target plane.
      if (E.Operand->Ty->isNull())
        return getNullConst(E.Ty);
      Instruction *V = genExpr(*E.Operand);
      return downcast(V, E.Operand->Ty, false, E.Ty, false);
    }
    case CastLowering::RefNarrow: {
      Instruction *V = genExpr(*E.Operand);
      V = toObjectPlane(V, valueType(*E.Operand));
      auto I = make(Opcode::Upcast);
      I->OpType = E.Ty;
      I->AuxType = Ctx.objectType();
      I->Operands = {V};
      return emit(std::move(I));
    }
    }
    return nullptr;
  }

  Instruction *genCall(const CallExpr &E) {
    SmallVector<Instruction *, 3> Args;
    Args.reserve(E.Args.size());
    for (const ExprPtr &A : E.Args)
      Args.push_back(genExpr(*A));

    MethodSymbol *Callee = E.ResolvedMethod;
    assert(Callee && "unresolved call in codegen");

    if (E.Dispatch == DispatchKind::Static) {
      auto I = make(Opcode::Call);
      I->Method = Callee;
      I->Operands = std::move(Args);
      return emit(std::move(I));
    }

    // Virtual dispatch: null-check the receiver at its static type (so the
    // certificate is shared with field accesses via CSE), then erase to
    // the method owner's safe plane.
    Instruction *Recv;
    Type *RecvTy;
    if (E.Base) {
      Recv = genExpr(*E.Base);
      RecvTy = E.Base->Ty;
    } else {
      assert(E.ImplicitThis && ThisVal);
      Recv = ThisVal;
      RecvTy = ThisType;
    }
    Instruction *Safe = nullCheck(Recv, RecvTy);
    Type *OwnerTy = Types.getClass(Callee->Owner);
    Safe = downcast(Safe, RecvTy, true, OwnerTy, true);

    auto I = make(Opcode::Dispatch);
    I->Method = Callee;
    I->Operands.reserve(Args.size() + 1);
    I->Operands.push_back(Safe);
    for (Instruction *A : Args)
      I->Operands.push_back(A);
    return emit(std::move(I));
  }

  Instruction *genNewObject(const NewObjectExpr &E) {
    SmallVector<Instruction *, 3> Args;
    Args.reserve(E.Args.size());
    for (const ExprPtr &A : E.Args)
      Args.push_back(genExpr(*A));

    auto NewI = make(Opcode::New);
    NewI->OpType = E.Ty;
    Instruction *Obj = emit(std::move(NewI));

    // Run instance-field initializers, root class first. (MJ semantics:
    // field initializers run at allocation, before the constructor body;
    // there are no explicit super() calls.)
    std::vector<ClassSymbol *> Chain;
    for (ClassSymbol *C = E.ResolvedClass; C && !C->IsBuiltin; C = C->Super)
      Chain.push_back(C);
    std::reverse(Chain.begin(), Chain.end());

    Instruction *SavedThis = ThisVal;
    Type *SavedThisType = ThisType;
    ThisVal = Obj;
    ThisType = E.Ty;
    for (ClassSymbol *C : Chain) {
      if (!C->Decl)
        continue;
      for (const FieldDecl &F : C->Decl->Fields) {
        if (F.IsStatic || !F.Init)
          continue;
        Instruction *V = genExpr(*F.Init);
        Instruction *Safe = nullCheck(Obj, E.Ty);
        auto Store = make(Opcode::SetField);
        Store->OpType = E.Ty;
        Store->Field = F.Symbol;
        Store->Operands = {Safe, V};
        emit(std::move(Store));
      }
    }
    ThisVal = SavedThis;
    ThisType = SavedThisType;

    if (E.ResolvedCtor) {
      auto CallI = make(Opcode::Call);
      CallI->Method = E.ResolvedCtor;
      CallI->Operands.reserve(Args.size() + 1);
      CallI->Operands.push_back(Obj);
      for (Instruction *A : Args)
        CallI->Operands.push_back(A);
      emit(std::move(CallI));
    }
    return Obj;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Module generation
//===----------------------------------------------------------------------===//

std::unique_ptr<TSAModule> TSAGenerator::generate(const Program &P) {
  auto Module = std::make_unique<TSAModule>();
  Module->Table = &Table;
  Module->Types = &Types;

  size_t NumBodies = 0;
  for (const auto &Class : P.Classes)
    for (const auto &Method : Class->Methods)
      if (Method->Symbol && Method->Body)
        ++NumBodies;
  Module->Methods.reserve(NumBodies);

  for (const auto &Class : P.Classes) {
    if (!Class->Symbol)
      continue;
    for (const FieldDecl &F : Class->Fields)
      if (F.IsStatic && F.Init && F.Symbol)
        Module->StaticInits.push_back({F.Symbol, foldConstantExpr(*F.Init)});
    for (const auto &Method : Class->Methods) {
      if (!Method->Symbol || !Method->Body)
        continue;
      MethodGen Gen(Types, Table, *Method, *Module, Options);
      Module->Methods.push_back(Gen.run());
    }
  }

  PlaneContext Ctx{Types, Table};
  for (auto &M : Module->Methods) {
    M->deriveCFG();
    M->finalize(Ctx);
  }
  return Module;
}
