//===- tests/lang_test.cpp - MJ language semantics matrix -----*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Feature-by-feature execution tests. Every case runs on BOTH back ends
/// (SafeTSA evaluator and bytecode interpreter) via a parameterized
/// fixture, so each expectation doubles as a differential check.
///
//===----------------------------------------------------------------------===//

#include "bytecode/BCCompiler.h"
#include "bytecode/BCInterp.h"
#include "driver/Compiler.h"
#include "exec/TSAInterp.h"
#include "tsa/Verifier.h"

#include <gtest/gtest.h>

using namespace safetsa;

namespace {

enum class Backend { TSA, Bytecode };

class LangTest : public ::testing::TestWithParam<Backend> {
protected:
  /// Compiles and runs `Src` on the parameterized backend; returns output.
  std::string run(const std::string &Src) {
    auto P = compileMJ("lang.mj", Src);
    EXPECT_TRUE(P->ok()) << P->renderDiagnostics();
    if (!P->ok())
      return "<compile error>";
    Runtime RT(*P->Table);
    ExecResult R;
    if (GetParam() == Backend::TSA) {
      TSAVerifier V(*P->TSA);
      EXPECT_TRUE(V.verify());
      TSAInterpreter I(*P->TSA, RT);
      R = I.runMain();
    } else {
      BCCompiler BCC(P->Types, *P->Table);
      auto BC = BCC.compile(P->AST);
      BCInterpreter I(*BC, RT, P->Types);
      R = I.runMain();
    }
    EXPECT_EQ(R.Err, RuntimeError::None) << runtimeErrorName(R.Err);
    return RT.getOutput();
  }

  /// Shorthand: body of static main, printing ints separated by spaces.
  std::string runMain(const std::string &Body,
                      const std::string &Extra = "") {
    return run("class Main { static void main() { " + Body + " } " +
               Extra + " }");
  }
};

//===----------------------------------------------------------------------===//
// Arithmetic
//===----------------------------------------------------------------------===//

TEST_P(LangTest, IntegerArithmetic) {
  EXPECT_EQ(runMain("IO.printInt(7 + 3 * 4 - 10 / 3 % 2);"), "18");
}

TEST_P(LangTest, IntegerOverflowWraps) {
  EXPECT_EQ(runMain("IO.printInt(2147483647 + 1);"), "-2147483648");
  EXPECT_EQ(runMain("IO.printInt(-2147483648 - 1);"), "2147483647");
  EXPECT_EQ(runMain("IO.printInt(100000 * 100000);"), "1410065408");
}

TEST_P(LangTest, IntegerDivisionTruncatesTowardZero) {
  EXPECT_EQ(runMain("IO.printInt(-7 / 2);"), "-3");
  EXPECT_EQ(runMain("IO.printInt(-7 % 2);"), "-1");
  EXPECT_EQ(runMain("IO.printInt(7 / -2);"), "-3");
}

TEST_P(LangTest, MinIntEdgeCases) {
  EXPECT_EQ(runMain("IO.printInt(-2147483648 / -1);"), "-2147483648");
  EXPECT_EQ(runMain("IO.printInt(-2147483648 % -1);"), "0");
  EXPECT_EQ(runMain("IO.printInt(-(-2147483648));"), "-2147483648");
}

TEST_P(LangTest, BitwiseOps) {
  EXPECT_EQ(runMain("IO.printInt(0xF0 & 0x3C);"), "48");
  EXPECT_EQ(runMain("IO.printInt(0xF0 | 0x0F);"), "255");
  EXPECT_EQ(runMain("IO.printInt(0xFF ^ 0x0F);"), "240");
  EXPECT_EQ(runMain("IO.printInt(~5);"), "-6");
  EXPECT_EQ(runMain("IO.printInt(1 << 10);"), "1024");
  EXPECT_EQ(runMain("IO.printInt(-16 >> 2);"), "-4");
}

TEST_P(LangTest, ShiftCountsMask31) {
  EXPECT_EQ(runMain("IO.printInt(1 << 33);"), "2");
  EXPECT_EQ(runMain("IO.printInt(256 >> 33);"), "128");
}

TEST_P(LangTest, DoubleArithmetic) {
  EXPECT_EQ(runMain("IO.printDouble(0.5 + 0.25);"), "0.75");
  EXPECT_EQ(runMain("IO.printDouble(1.0 / 4.0);"), "0.25");
  EXPECT_EQ(runMain("IO.printDouble(-2.5 * 2.0);"), "-5");
}

TEST_P(LangTest, MixedArithmeticPromotes) {
  EXPECT_EQ(runMain("IO.printDouble(1 / 2 + 0.5);"), "0.5");
  EXPECT_EQ(runMain("IO.printDouble(1 / 2.0);"), "0.5");
}

TEST_P(LangTest, NumericCasts) {
  EXPECT_EQ(runMain("IO.printInt((int) 3.99);"), "3");
  EXPECT_EQ(runMain("IO.printInt((int) -3.99);"), "-3");
  EXPECT_EQ(runMain("IO.printDouble((double) 7 / 2);"), "3.5");
  EXPECT_EQ(runMain("IO.printInt((char) 321);"), "65");
  EXPECT_EQ(runMain("IO.printChar((char) 66);"), "B");
}

TEST_P(LangTest, CharArithmetic) {
  EXPECT_EQ(runMain("IO.printInt('z' - 'a');"), "25");
  EXPECT_EQ(runMain("char c = 'a'; c++; IO.printChar(c);"), "b");
  EXPECT_EQ(runMain("IO.printBool('a' < 'b');"), "true");
}

//===----------------------------------------------------------------------===//
// Booleans and comparisons
//===----------------------------------------------------------------------===//

TEST_P(LangTest, Comparisons) {
  EXPECT_EQ(runMain("IO.printBool(3 < 4); IO.printBool(4 <= 4); "
                    "IO.printBool(5 > 4); IO.printBool(3 >= 4); "
                    "IO.printBool(3 == 3); IO.printBool(3 != 3);"),
            "truetruetruefalsetruefalse");
}

TEST_P(LangTest, DoubleComparisons) {
  EXPECT_EQ(runMain("IO.printBool(0.1 < 0.2); IO.printBool(1.5 == 1.5); "
                    "IO.printBool(2.0 >= 3.0);"),
            "truetruefalse");
}

TEST_P(LangTest, NaNComparesFalseEveryWay) {
  EXPECT_EQ(runMain("double z = 0.0; double nan = z / z; "
                    "IO.printBool(nan < 1.0); IO.printBool(nan <= 1.0); "
                    "IO.printBool(nan > 1.0); IO.printBool(nan >= 1.0); "
                    "IO.printBool(nan == nan); IO.printBool(nan != nan);"),
            "falsefalsefalsefalsefalsetrue");
}

TEST_P(LangTest, BooleanOps) {
  EXPECT_EQ(runMain("IO.printBool(!true); IO.printBool(true == false); "
                    "IO.printBool(true != false);"),
            "falsefalsetrue");
}

TEST_P(LangTest, ShortCircuitSkipsSideEffects) {
  std::string Extra = "static int calls; "
                      "static boolean note() { calls++; return true; }";
  EXPECT_EQ(runMain("boolean x = false && note(); "
                    "boolean y = true || note(); "
                    "IO.printInt(calls);",
                    Extra),
            "0");
  EXPECT_EQ(runMain("boolean x = true && note(); "
                    "boolean y = false || note(); "
                    "IO.printInt(calls);",
                    Extra),
            "2");
}

TEST_P(LangTest, ShortCircuitNesting) {
  EXPECT_EQ(runMain("int a = 5; "
                    "IO.printBool(a > 0 && a < 10 || a == 42);"),
            "true");
}

//===----------------------------------------------------------------------===//
// Control flow
//===----------------------------------------------------------------------===//

TEST_P(LangTest, WhileLoop) {
  EXPECT_EQ(runMain("int i = 0; int s = 0; while (i < 5) { s += i; i++; } "
                    "IO.printInt(s);"),
            "10");
}

TEST_P(LangTest, DoWhileRunsAtLeastOnce) {
  EXPECT_EQ(runMain("int i = 10; int n = 0; do { n++; i++; } "
                    "while (i < 5); IO.printInt(n);"),
            "1");
  EXPECT_EQ(runMain("int i = 0; int n = 0; do { n++; i++; } "
                    "while (i < 3); IO.printInt(n);"),
            "3");
}

TEST_P(LangTest, ForWithBreakContinue) {
  EXPECT_EQ(runMain("int s = 0; for (int i = 0; i < 10; i++) { "
                    "if (i == 7) break; if (i % 2 == 0) continue; s += i; } "
                    "IO.printInt(s);"),
            "9"); // 1 + 3 + 5
}

TEST_P(LangTest, ContinueRunsForUpdate) {
  // A for-loop whose body always continues must still terminate.
  EXPECT_EQ(runMain("int n = 0; for (int i = 0; i < 4; i++) { n++; "
                    "continue; } IO.printInt(n);"),
            "4");
}

TEST_P(LangTest, ContinueInDoWhileRechecksCondition) {
  EXPECT_EQ(runMain("int i = 0; int n = 0; do { i++; if (i == 2) continue; "
                    "n = n + i; } while (i < 4); IO.printInt(n);"),
            "8"); // 1 + 3 + 4
}

TEST_P(LangTest, NestedLoopsWithBreak) {
  EXPECT_EQ(runMain("int hits = 0; for (int i = 0; i < 4; i++) { "
                    "for (int j = 0; j < 4; j++) { if (j > i) break; "
                    "hits++; } } IO.printInt(hits);"),
            "10");
}

TEST_P(LangTest, InfiniteLoopWithBreak) {
  EXPECT_EQ(runMain("int i = 0; while (true) { i++; if (i == 5) break; } "
                    "IO.printInt(i);"),
            "5");
}

TEST_P(LangTest, EmptyForClauses) {
  EXPECT_EQ(runMain("int i = 0; for (;;) { if (i >= 3) break; i++; } "
                    "IO.printInt(i);"),
            "3");
}

TEST_P(LangTest, LoopCarriedShortCircuitCondition) {
  // Short-circuit in a loop condition exercises the CST loop-header seq.
  EXPECT_EQ(runMain("int[] a = new int[4]; a[3] = 9; int i = 0; "
                    "while (i < a.length && a[i] == 0) i++; "
                    "IO.printInt(i);"),
            "3");
}

//===----------------------------------------------------------------------===//
// Assignment forms
//===----------------------------------------------------------------------===//

TEST_P(LangTest, AssignmentIsAnExpression) {
  EXPECT_EQ(runMain("int a; int b; a = b = 5; IO.printInt(a + b);"), "10");
}

TEST_P(LangTest, CompoundAssignments) {
  EXPECT_EQ(runMain("int a = 10; a += 5; a -= 3; a *= 2; a /= 4; a %= 4; "
                    "IO.printInt(a);"),
            "2");
}

TEST_P(LangTest, CompoundOnArrayEvaluatesIndexOnce) {
  std::string Extra = "static int calls; "
                      "static int idx() { calls++; return 2; }";
  EXPECT_EQ(runMain("int[] a = new int[4]; a[2] = 5; a[idx()] += 10; "
                    "IO.printInt(a[2]); IO.printChar(' '); "
                    "IO.printInt(calls);",
                    Extra),
            "15 1");
}

TEST_P(LangTest, PrePostIncrement) {
  EXPECT_EQ(runMain("int i = 5; IO.printInt(i++); IO.printInt(i); "
                    "IO.printInt(++i); IO.printInt(--i); "
                    "IO.printInt(i--); IO.printInt(i);"),
            "567665");
}

TEST_P(LangTest, IncrementOnFieldsAndArrays) {
  std::string Extra = "int f;";
  EXPECT_EQ(run("class C { int f; } class Main { static void main() { "
                "C c = new C(); c.f++; c.f++; IO.printInt(c.f++); "
                "IO.printInt(c.f); int[] a = new int[2]; a[1]++; "
                "IO.printInt(++a[1]); } }"),
            "232");
}

TEST_P(LangTest, DoubleIncrement) {
  EXPECT_EQ(runMain("double d = 1.5; d++; IO.printDouble(d);"), "2.5");
}

//===----------------------------------------------------------------------===//
// Objects
//===----------------------------------------------------------------------===//

TEST_P(LangTest, FieldsDefaultToZero) {
  EXPECT_EQ(run("class C { int i; double d; boolean b; char c; C next; } "
                "class Main { static void main() { C x = new C(); "
                "IO.printInt(x.i); IO.printDouble(x.d); IO.printBool(x.b); "
                "IO.printBool(x.next == null); } }"),
            "00falsetrue");
}

TEST_P(LangTest, FieldInitializersRunRootFirst) {
  EXPECT_EQ(run("class A { int a = 5; int b = a + 1; } "
                "class B extends A { int c = b * 2; } "
                "class Main { static void main() { B x = new B(); "
                "IO.printInt(x.a); IO.printInt(x.b); IO.printInt(x.c); } }"),
            "5612");
}

TEST_P(LangTest, ConstructorOverloads) {
  EXPECT_EQ(run("class P { int x; int y; "
                "P() { x = 1; y = 2; } "
                "P(int a) { x = a; y = a; } "
                "P(int a, int b) { x = a; y = b; } } "
                "class Main { static void main() { "
                "IO.printInt(new P().x + new P(7).y + new P(3, 4).y); } }"),
            "12");
}

TEST_P(LangTest, VirtualDispatchUsesDynamicType) {
  EXPECT_EQ(run("class A { int f() { return 1; } "
                "int twice() { return f() * 2; } } "
                "class B extends A { int f() { return 10; } } "
                "class Main { static void main() { A a = new B(); "
                "IO.printInt(a.twice()); } }"),
            "20"); // Dispatch through `this` inside twice() picks B.f.
}

TEST_P(LangTest, ThreeLevelOverride) {
  EXPECT_EQ(run("class A { int f() { return 1; } } "
                "class B extends A { int f() { return 2; } } "
                "class C extends B { int f() { return 3; } } "
                "class Main { static void main() { A[] xs = new A[3]; "
                "xs[0] = new A(); xs[1] = new B(); xs[2] = new C(); "
                "int s = 0; for (int i = 0; i < 3; i++) s = s * 10 + "
                "xs[i].f(); IO.printInt(s); } }"),
            "123");
}

TEST_P(LangTest, InheritedMethodSeesSubclassFields) {
  EXPECT_EQ(run("class A { int v; int get() { return v; } } "
                "class B extends A { void setUp() { v = 42; } } "
                "class Main { static void main() { B b = new B(); "
                "b.setUp(); IO.printInt(b.get()); } }"),
            "42");
}

TEST_P(LangTest, InstanceofAndCasts) {
  EXPECT_EQ(run("class A {} class B extends A {} class C extends A {} "
                "class Main { static void main() { A x = new B(); "
                "IO.printBool(x instanceof B); "
                "IO.printBool(x instanceof C); "
                "IO.printBool(x instanceof A); "
                "IO.printBool(null instanceof A); "
                "B b = (B) x; IO.printBool(b == x); } }"),
            "truefalsetruefalsetrue");
}

TEST_P(LangTest, ReferenceEquality) {
  EXPECT_EQ(run("class A {} class Main { static void main() { "
                "A x = new A(); A y = new A(); A z = x; "
                "IO.printBool(x == y); IO.printBool(x == z); "
                "IO.printBool(x != null); IO.printBool(null == null); } }"),
            "falsetruetruetrue");
}

TEST_P(LangTest, StaticFieldsAreShared) {
  EXPECT_EQ(run("class Counter { static int n; "
                "static void bump() { n++; } } "
                "class Main { static void main() { Counter.bump(); "
                "Counter.bump(); Counter.bump(); "
                "IO.printInt(Counter.n); } }"),
            "3");
}

TEST_P(LangTest, StaticInitializers) {
  EXPECT_EQ(run("class K { static int a = 42; static double d = 2.5; "
                "static boolean b = true; static char c = 'x'; } "
                "class Main { static void main() { IO.printInt(K.a); "
                "IO.printDouble(K.d); IO.printBool(K.b); "
                "IO.printChar(K.c); } }"),
            "422.5truex");
}

TEST_P(LangTest, RecursionWorks) {
  EXPECT_EQ(run("class Main { static int fib(int n) { if (n < 2) return "
                "n; return fib(n - 1) + fib(n - 2); } "
                "static void main() { IO.printInt(fib(15)); } }"),
            "610");
}

TEST_P(LangTest, MutualRecursion) {
  EXPECT_EQ(run("class Main { "
                "static boolean even(int n) { if (n == 0) return true; "
                "return odd(n - 1); } "
                "static boolean odd(int n) { if (n == 0) return false; "
                "return even(n - 1); } "
                "static void main() { IO.printBool(even(10)); "
                "IO.printBool(odd(7)); } }"),
            "truetrue");
}

//===----------------------------------------------------------------------===//
// Arrays and strings
//===----------------------------------------------------------------------===//

TEST_P(LangTest, ArraysOfAllElementTypes) {
  EXPECT_EQ(runMain("int[] a = new int[2]; double[] d = new double[2]; "
                    "boolean[] b = new boolean[2]; char[] c = new char[2]; "
                    "a[0] = 7; d[1] = 1.5; b[0] = true; c[1] = 'q'; "
                    "IO.printInt(a[0] + a[1]); IO.printDouble(d[1]); "
                    "IO.printBool(b[0]); IO.printChar(c[1]);"),
            "71.5trueq");
}

TEST_P(LangTest, ArraysOfReferences) {
  EXPECT_EQ(run("class P { int v; P(int x) { v = x; } } "
                "class Main { static void main() { P[] ps = new P[3]; "
                "IO.printBool(ps[0] == null); ps[1] = new P(9); "
                "IO.printInt(ps[1].v); } }"),
            "true9");
}

TEST_P(LangTest, JaggedArrays) {
  EXPECT_EQ(runMain("int[][] m = new int[3][]; "
                    "for (int i = 0; i < 3; i++) m[i] = new int[i + 1]; "
                    "m[2][2] = 5; IO.printInt(m[0].length + m[1].length + "
                    "m[2].length + m[2][2]);"),
            "11");
}

TEST_P(LangTest, StringLiteralsAreCharArrays) {
  EXPECT_EQ(runMain("char[] s = \"abc\"; IO.printInt(s.length); "
                    "IO.printChar(s[1]); IO.printStr(s);"),
            "3babc");
}

TEST_P(LangTest, ZeroLengthArray) {
  EXPECT_EQ(runMain("int[] a = new int[0]; IO.printInt(a.length);"), "0");
}

TEST_P(LangTest, ArrayAliasing) {
  EXPECT_EQ(runMain("int[] a = new int[3]; int[] b = a; b[1] = 7; "
                    "IO.printInt(a[1]);"),
            "7");
}

INSTANTIATE_TEST_SUITE_P(BothBackends, LangTest,
                         ::testing::Values(Backend::TSA, Backend::Bytecode),
                         [](const ::testing::TestParamInfo<Backend> &Info) {
                           return Info.param == Backend::TSA ? "SafeTSA"
                                                             : "Bytecode";
                         });

} // namespace
